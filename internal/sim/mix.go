package sim

// Mix hashes an arbitrary sequence of words into a single 64-bit value
// with the splitmix64 finaliser, one absorption round per word.
//
// It exists for *coordinate-based* seed derivation: callers that need one
// independent PRNG stream per point in a parameter space (for example a
// crash campaign's (campaign seed, system, fault type, attempt index))
// derive each stream's seed as Mix(coordinates...). Because the result
// depends only on the words passed in — never on how many draws some
// other stream consumed — changing the shape of one region of the space
// cannot perturb the streams of another. Contrast a shared seed counter,
// where inserting one extra run shifts every later stream.
//
// Mix is not cryptographic; it is a fast, well-dispersed hash whose
// output is stable forever (campaigns cite seeds, and a seed must
// reproduce the same run on any future version of this code).
func Mix(parts ...uint64) uint64 {
	// Initial state: fractional bits of sqrt(2), so Mix() of no words is
	// not zero and single-word mixes do not degenerate to splitmix64(0..).
	x := uint64(0x6a09e667f3bcc908)
	for _, p := range parts {
		// Advance by the golden-ratio gamma before absorbing, so that
		// position matters: Mix(a, b) and Mix(b, a) disperse differently.
		x += 0x9e3779b97f4a7c15
		z := x ^ p
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		x = z ^ (z >> 31)
	}
	return x
}
