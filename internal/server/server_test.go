package server

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"rio/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 4
	}
	if cfg.DiskMB == 0 {
		cfg.DiskMB = 8
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func do(t *testing.T, s *Server, req *wire.Request) *wire.Response {
	t.Helper()
	resp := s.Do(req)
	if resp == nil {
		t.Fatal("nil response")
	}
	return resp
}

func TestBasicOps(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, Seed: 7})

	if r := do(t, s, &wire.Request{ID: 1, Op: wire.OpWrite, Shard: -1, Path: "/a", Data: []byte("hello")}); r.Status != wire.StatusOK || r.Size != 5 {
		t.Fatalf("write: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 2, Op: wire.OpRead, Shard: -1, Path: "/a"}); r.Status != wire.StatusOK || !bytes.Equal(r.Data, []byte("hello")) {
		t.Fatalf("read: %+v", r)
	}
	// Append (offset -1) then read back the concatenation.
	if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpWrite, Shard: -1, Path: "/a", Offset: -1, Data: []byte(", rio")}); r.Status != wire.StatusOK {
		t.Fatalf("append: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpRead, Shard: -1, Path: "/a"}); string(r.Data) != "hello, rio" || r.Size != 10 {
		t.Fatalf("read after append: %+v", r)
	}
	// Ranged read.
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpRead, Shard: -1, Path: "/a", Offset: 7, Len: 3}); string(r.Data) != "rio" {
		t.Fatalf("ranged read: %+v", r)
	}
	// Stat.
	if r := do(t, s, &wire.Request{ID: 6, Op: wire.OpStat, Shard: -1, Path: "/a"}); r.Status != wire.StatusOK || r.Size != 10 || r.Flags&wire.FlagDir != 0 {
		t.Fatalf("stat: %+v", r)
	}
	// Open creates when absent, succeeds when present.
	if r := do(t, s, &wire.Request{ID: 7, Op: wire.OpOpen, Shard: -1, Path: "/b"}); r.Status != wire.StatusOK {
		t.Fatalf("open create: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 8, Op: wire.OpOpen, Shard: -1, Path: "/b"}); r.Status != wire.StatusOK {
		t.Fatalf("open existing: %+v", r)
	}
	// Mkdir + stat dir flag.
	if r := do(t, s, &wire.Request{ID: 9, Op: wire.OpMkdir, Shard: -1, Path: "/d"}); r.Status != wire.StatusOK {
		t.Fatalf("mkdir: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 10, Op: wire.OpStat, Shard: -1, Path: "/d"}); r.Flags&wire.FlagDir == 0 {
		t.Fatalf("stat dir: %+v", r)
	}
	// Typed errors.
	if r := do(t, s, &wire.Request{ID: 11, Op: wire.OpRead, Shard: -1, Path: "/nope"}); r.Status != wire.StatusNotFound {
		t.Fatalf("read missing: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 12, Op: wire.OpRead, Shard: -1, Path: "/d"}); r.Status != wire.StatusIsDir {
		t.Fatalf("read dir: %+v", r)
	}
	// Remove.
	if r := do(t, s, &wire.Request{ID: 13, Op: wire.OpRm, Shard: -1, Path: "/b"}); r.Status != wire.StatusOK {
		t.Fatalf("rm: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 14, Op: wire.OpStat, Shard: -1, Path: "/b"}); r.Status != wire.StatusNotFound {
		t.Fatalf("stat removed: %+v", r)
	}
	// Sync (fan to every shard by index).
	for i := 0; i < s.NumShards(); i++ {
		if r := do(t, s, &wire.Request{ID: 15, Op: wire.OpSync, Shard: int32(i)}); r.Status != wire.StatusOK {
			t.Fatalf("sync shard %d: %+v", i, r)
		}
	}
}

func TestMvSameShardAndAcrossShards(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, Seed: 7})
	// Find two paths on the same shard and one on a different shard.
	var a, b, other string
	a = "/mv-src"
	for i := 0; ; i++ {
		p := fmt.Sprintf("/mv-dst-%d", i)
		if s.ShardOf(p) == s.ShardOf(a) && b == "" {
			b = p
		}
		if s.ShardOf(p) != s.ShardOf(a) && other == "" {
			other = p
		}
		if b != "" && other != "" {
			break
		}
	}
	if r := do(t, s, &wire.Request{ID: 1, Op: wire.OpWrite, Shard: -1, Path: a, Data: []byte("x")}); r.Status != wire.StatusOK {
		t.Fatalf("write: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 2, Op: wire.OpMv, Shard: -1, Path: a, Path2: b}); r.Status != wire.StatusOK {
		t.Fatalf("mv same shard: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpRead, Shard: -1, Path: b}); string(r.Data) != "x" {
		t.Fatalf("read moved: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpMv, Shard: -1, Path: b, Path2: other}); r.Status != wire.StatusCrossShard {
		t.Fatalf("cross-shard mv must answer the typed status: %+v", r)
	}
}

func TestRouteValidation(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 7})
	cases := []*wire.Request{
		{ID: 1, Op: wire.OpInvalid},
		{ID: 2, Op: wire.OpRead, Shard: -1},                  // no path
		{ID: 3, Op: wire.OpCrash, Shard: 9},                  // shard out of range
		{ID: 4, Op: wire.OpWarmboot, Shard: -1},              // admin needs a shard
		{ID: 5, Op: wire.OpMv, Shard: -1, Path: "/only-one"}, // mv needs two paths
	}
	for _, req := range cases {
		if r := do(t, s, req); r.Status != wire.StatusInvalid {
			t.Fatalf("req %d: got %v, want invalid", req.ID, r.Status)
		}
	}
	// Paths distribute across both shards.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[s.ShardOf(fmt.Sprintf("/k%d", i))] = true
	}
	if len(seen) != 2 {
		t.Fatalf("64 paths landed on %d of 2 shards", len(seen))
	}
}

// TestQueueFullSheds stalls the single shard behind a gate, fills its
// queue exactly, and checks the next request is shed with the
// retryable status while every queued request is still answered.
func TestQueueFullSheds(t *testing.T) {
	const depth = 8
	gate := make(chan struct{})
	var once sync.Once
	cfg := Config{Shards: 1, QueueDepth: depth, Seed: 7,
		testGate: func(int) { <-gate }}
	s := newTestServer(t, cfg)
	// Registered after newTestServer so it runs first (LIFO): Close
	// blocks on the shard goroutine, which blocks on the gate.
	t.Cleanup(func() { once.Do(func() { close(gate) }) })

	var wg sync.WaitGroup
	resps := make([]*wire.Response, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i] = s.Do(&wire.Request{ID: uint64(i), Op: wire.OpOpen, Shard: -1,
				Path: fmt.Sprintf("/q%d", i)})
		}()
	}
	// Wait until all depth tasks are actually queued (the shard is
	// gated, so the queue only ever grows).
	for len(s.shards[0].ch) < depth {
		runtime.Gosched()
	}
	if r := s.Do(&wire.Request{ID: 99, Op: wire.OpOpen, Shard: -1, Path: "/overflow"}); r.Status != wire.StatusAgain {
		t.Fatalf("overflow request: got %v, want again", r.Status)
	}
	once.Do(func() { close(gate) })
	wg.Wait()
	for i, r := range resps {
		if r.Status != wire.StatusOK {
			t.Fatalf("queued request %d: %+v", i, r)
		}
	}
	m := s.Metrics()
	if m.Shards[0].Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Shards[0].Rejected)
	}
	if m.Shards[0].MaxBatch < 2 {
		t.Fatalf("a gated full queue should drain in batches, max batch = %d", m.Shards[0].MaxBatch)
	}
}

// TestGracefulDrain checks Close's contract: already-queued requests
// are answered, new ones are refused, all goroutines exit.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	cfg := Config{Shards: 1, QueueDepth: 16, Seed: 7, testGate: func(int) { <-gate }}
	s := newTestServer(t, cfg)
	t.Cleanup(func() { once.Do(func() { close(gate) }) })

	const n = 8
	var wg sync.WaitGroup
	resps := make([]*wire.Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i] = s.Do(&wire.Request{ID: uint64(i), Op: wire.OpWrite, Shard: -1,
				Path: fmt.Sprintf("/g%d", i), Data: []byte("z")})
		}()
	}
	for len(s.shards[0].ch) < n {
		runtime.Gosched()
	}
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	once.Do(func() { close(gate) })
	<-closed
	wg.Wait()
	for i, r := range resps {
		if r.Status != wire.StatusOK {
			t.Fatalf("drained request %d: %+v", i, r)
		}
	}
	if r := s.Do(&wire.Request{ID: 99, Op: wire.OpOpen, Shard: -1, Path: "/late"}); r.Status != wire.StatusClosed {
		t.Fatalf("post-close request: got %v, want closed", r.Status)
	}
}

func TestCrashWarmbootSingleShard(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, Seed: 7})
	// A path on shard 2 and one on another shard.
	onCrashed, onHealthy := "", ""
	for i := 0; onCrashed == "" || onHealthy == ""; i++ {
		p := fmt.Sprintf("/f%d", i)
		if s.ShardOf(p) == 2 && onCrashed == "" {
			onCrashed = p
		}
		if s.ShardOf(p) != 2 && onHealthy == "" {
			onHealthy = p
		}
	}
	if r := do(t, s, &wire.Request{ID: 1, Op: wire.OpWrite, Shard: -1, Path: onCrashed, Data: []byte("durable")}); r.Status != wire.StatusOK {
		t.Fatalf("write: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 2, Op: wire.OpCrash, Shard: 2}); r.Status != wire.StatusOK {
		t.Fatalf("crash: %+v", r)
	}
	// Down shard answers retryable; healthy shard keeps serving.
	if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpRead, Shard: -1, Path: onCrashed}); r.Status != wire.StatusAgain {
		t.Fatalf("read on down shard: got %v, want again", r.Status)
	}
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpWrite, Shard: -1, Path: onHealthy, Data: []byte("fine")}); r.Status != wire.StatusOK {
		t.Fatalf("write on healthy shard: %+v", r)
	}
	// Double crash is an error, not a second panic.
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpCrash, Shard: 2}); r.Status != wire.StatusInvalid {
		t.Fatalf("double crash: got %v, want invalid", r.Status)
	}
	if r := do(t, s, &wire.Request{ID: 6, Op: wire.OpWarmboot, Shard: 2}); r.Status != wire.StatusOK {
		t.Fatalf("warmboot: %+v", r)
	}
	// The acknowledged write survived the crash (Rio's guarantee).
	if r := do(t, s, &wire.Request{ID: 7, Op: wire.OpRead, Shard: -1, Path: onCrashed}); string(r.Data) != "durable" {
		t.Fatalf("read after warmboot: %+v", r)
	}
	m := s.Metrics()
	if m.Shards[2].Crashes != 1 || m.Shards[2].Warmboots != 1 || m.Shards[2].Down {
		t.Fatalf("shard 2 metrics: %+v", m.Shards[2])
	}
}

// transcript runs a fixed serialized workload and returns the
// concatenated encodings of every response. Non-OK statuses are
// allowed only where the workload expects them (the shard-1 outage
// window); anything else fails the test — a transcript of identical
// error responses would vacuously "match".
func transcript(t *testing.T, s *Server) []byte {
	t.Helper()
	var out []byte
	id := uint64(0)
	victim := 1 % s.NumShards() // shard crashed mid-script
	downNow := false
	next := func(req *wire.Request) {
		id++
		req.ID = id
		resp := s.Do(req)
		expectAgain := downNow && req.Op != wire.OpCrash && req.Op != wire.OpWarmboot &&
			s.ShardOf(req.Path) == victim
		if expectAgain {
			if resp.Status != wire.StatusAgain {
				t.Fatalf("op %d %v %s during outage: %+v", id, req.Op, req.Path, resp)
			}
		} else if resp.Status != wire.StatusOK {
			t.Fatalf("op %d %v %s: %+v", id, req.Op, req.Path, resp)
		}
		out = append(out, wire.AppendResponse(nil, resp)...)
	}
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("/det/k%02d", i)
		next(&wire.Request{Op: wire.OpWrite, Shard: -1, Path: p,
			Data: bytes.Repeat([]byte{byte(i)}, 256+i)})
	}
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("/det/k%02d", i)
		next(&wire.Request{Op: wire.OpStat, Shard: -1, Path: p})
		next(&wire.Request{Op: wire.OpRead, Shard: -1, Path: p})
	}
	next(&wire.Request{Op: wire.OpCrash, Shard: int32(victim)})
	downNow = true
	for i := 0; i < 8; i++ { // outage window: victim-shard paths bounce, others serve
		next(&wire.Request{Op: wire.OpStat, Shard: -1, Path: fmt.Sprintf("/det/k%02d", i)})
	}
	next(&wire.Request{Op: wire.OpWarmboot, Shard: int32(victim)})
	downNow = false
	for i := 0; i < 40; i++ {
		next(&wire.Request{Op: wire.OpRead, Shard: -1, Path: fmt.Sprintf("/det/k%02d", i)})
	}
	for i := 0; i < s.NumShards(); i++ {
		next(&wire.Request{Op: wire.OpSync, Shard: int32(i)})
	}
	return out
}

// TestSerializedDeterministic is the acceptance check: a fixed seed and
// a serialized (single-client) load produce byte-identical response
// streams across two fresh servers. The paper's determinism story must
// survive the serving layer.
func TestSerializedDeterministic(t *testing.T) {
	a := transcript(t, newTestServer(t, Config{Shards: 4, Seed: 1996}))
	b := transcript(t, newTestServer(t, Config{Shards: 4, Seed: 1996}))
	if !bytes.Equal(a, b) {
		t.Fatalf("transcripts differ: %d vs %d bytes", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty transcript")
	}
	// A different seed should still work but is allowed to differ; a
	// different shard count changes routing and must not crash.
	c := transcript(t, newTestServer(t, Config{Shards: 1, Seed: 1996}))
	if len(c) == 0 {
		t.Fatal("empty single-shard transcript")
	}
}

func TestMetricsAccounting(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 7})
	const n = 20
	for i := 0; i < n; i++ {
		do(t, s, &wire.Request{ID: uint64(i), Op: wire.OpWrite, Shard: -1,
			Path: fmt.Sprintf("/m%d", i), Data: []byte("abcd")})
	}
	m := s.Metrics()
	if m.Ops != n {
		t.Fatalf("ops = %d, want %d", m.Ops, n)
	}
	if m.Bytes != n*4 {
		t.Fatalf("bytes = %d, want %d", m.Bytes, n*4)
	}
	var batches uint64
	for _, sh := range m.Shards {
		batches += sh.Batches
	}
	if batches == 0 || batches > n {
		t.Fatalf("batches = %d", batches)
	}
	if m.Shards[0].Ops+m.Shards[1].Ops != n {
		t.Fatalf("shard ops %d + %d != %d", m.Shards[0].Ops, m.Shards[1].Ops, n)
	}
	tbl := m.Table()
	if tbl == "" || len(tbl) < 10 {
		t.Fatal("empty metrics table")
	}
}
