package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Protpair enforces the paper's sanctioned-write window (§3): a frame's
// write protection may be dropped — SetFrameProtection(f, false) — only
// for the brief span of a sanctioned store, and must be re-raised on
// every return path of the same function. The accepted shapes are a
// matching `defer ...SetFrameProtection(f, true)` (covers all paths by
// construction) or a later matching call with no `return` between the
// two (the straight-line open-copy-close idiom). A frame that
// legitimately leaves the window open (e.g. the frame is being freed and
// its protection dropped with it) carries `//riolint:protpair <reason>`.
//
// Matching is by the source text of the frame argument: the re-protect
// must name the same frame expression the unprotect did.
var Protpair = &Analyzer{
	Name:      "protpair",
	Directive: "protpair",
	Doc:       "SetFrameProtection(f, false) must be paired with re-protection on all return paths",
	Run:       runProtpair,
}

// unprotectNames are the recognized protection-toggle entry points: the
// MMU primitive plus any kernel-level wrapper that grows the same
// signature (frame, protected bool).
var unprotectNames = map[string]bool{
	"SetFrameProtection": true,
}

type protEvent struct {
	frameKey string // normalized source of the frame argument
	pos      token.Pos
	deferred bool
}

type protContext struct {
	unprot  []protEvent
	prot    []protEvent
	returns []token.Pos
}

func runProtpair(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkProtContext(p, fn.Body)
				}
			case *ast.FuncLit:
				checkProtContext(p, fn.Body)
			}
			return true
		})
	}
}

// checkProtContext analyzes one function body. Nested function literals
// are their own contexts (a re-protect in a closure that may never run
// does not close the window), except deferred literals, which run on all
// return paths of *this* context.
func checkProtContext(p *Pass, body *ast.BlockStmt) {
	ctx := &protContext{}
	collectProtEvents(p, body, ctx, false)

	for _, u := range ctx.unprot {
		if deferredProtFor(ctx, u.frameKey) {
			continue
		}
		nearest := token.Pos(-1)
		for _, pr := range ctx.prot {
			if pr.frameKey == u.frameKey && pr.pos > u.pos && (nearest == -1 || pr.pos < nearest) {
				nearest = pr.pos
			}
		}
		if nearest == -1 {
			p.Reportf(u.pos,
				"frame %s is unprotected here and never re-protected in this function; close the write window (a defer of SetFrameProtection(%s, true) covers every return path) or annotate //riolint:protpair <reason>",
				u.frameKey, u.frameKey)
			continue
		}
		for _, ret := range ctx.returns {
			if ret > u.pos && ret < nearest {
				p.Reportf(u.pos,
					"frame %s is unprotected here but the return at line %d escapes before the re-protection at line %d; use defer, or re-protect on that path",
					u.frameKey, p.Fset.Position(ret).Line, p.Fset.Position(nearest).Line)
				break
			}
		}
	}
}

func deferredProtFor(ctx *protContext, frameKey string) bool {
	for _, pr := range ctx.prot {
		if pr.deferred && pr.frameKey == frameKey {
			return true
		}
	}
	return false
}

// collectProtEvents gathers protection toggles and returns from body,
// stopping at nested (non-deferred) function literals.
func collectProtEvents(p *Pass, body ast.Node, ctx *protContext, deferred bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its own context
		case *ast.DeferStmt:
			if ev, ok := protCall(p, s.Call); ok {
				ev.deferred = true
				if isProtectValue(p, s.Call) {
					ctx.prot = append(ctx.prot, ev)
				} else {
					ctx.unprot = append(ctx.unprot, ev)
				}
				return false
			}
			// defer func() { ... SetFrameProtection(f, true) ... }()
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				collectProtEvents(p, lit.Body, ctx, true)
			}
			return false
		case *ast.ReturnStmt:
			if !deferred {
				ctx.returns = append(ctx.returns, s.Pos())
			}
		case *ast.CallExpr:
			if ev, ok := protCall(p, s); ok {
				ev.deferred = deferred
				if isProtectValue(p, s) {
					ctx.prot = append(ctx.prot, ev)
				} else {
					ctx.unprot = append(ctx.unprot, ev)
				}
			}
		}
		return true
	})
}

// protCall recognizes a call to a protection-toggle function with a
// constant bool second argument and returns its event (deferred unset).
// Calls with a non-constant flag — notably the toggle primitive's own
// definition forwarding its parameter — are not events.
func protCall(p *Pass, call *ast.CallExpr) (protEvent, bool) {
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return protEvent{}, false
	}
	if !unprotectNames[name] || len(call.Args) != 2 {
		return protEvent{}, false
	}
	if _, ok := constBool(p, call.Args[1]); !ok {
		return protEvent{}, false
	}
	return protEvent{frameKey: types.ExprString(call.Args[0]), pos: call.Pos()}, true
}

func isProtectValue(p *Pass, call *ast.CallExpr) bool {
	v, _ := constBool(p, call.Args[1])
	return v
}

func constBool(p *Pass, e ast.Expr) (bool, bool) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}
