package workload

import (
	"fmt"
	"strings"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/sim"
)

// The three performance workloads of Table 2. Each runs against a mounted
// machine and reports the simulated elapsed time of its timed phases.
// Sizes are scaled down from the paper (whose cp+rm tree was the 40 MB
// Digital Unix source); Scale multiplies the defaults.
//
// "User CPU" — the time the benchmark processes themselves burn between
// system calls (cp's read/write loop, the compiler, shell script
// interpretation) — is charged directly to the clock. It is what keeps the
// memory-resident configurations from looking infinitely fast and sets the
// floor that Table 2's MFS row represents.

// writeAll writes data to a file in 8 KB chunks, as cp(1) does — chunked
// writing is what separates write-through-on-write (sync per chunk) from
// write-through-on-close (one batched flush).
func writeAll(f *fs.File, data []byte) error {
	for off := 0; off < len(data); off += fs.BlockSize {
		end := off + fs.BlockSize
		if end > len(data) {
			end = len(data)
		}
		if _, err := f.WriteAt(data[off:end], int64(off)); err != nil {
			return err
		}
	}
	return nil
}

func readAll(fsys *fs.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Tree describes a synthetic source tree.
type Tree struct {
	Dirs  []string
	Files []TreeFile
}

// TreeFile is one file of a synthetic tree.
type TreeFile struct {
	Path string
	Size int
	Seed uint64
}

// TotalBytes sums the tree's file sizes.
func (t *Tree) TotalBytes() int {
	n := 0
	for _, f := range t.Files {
		n += f.Size
	}
	return n
}

// MakeTree builds a deterministic source-tree description of roughly
// targetBytes under root. File sizes follow a source-code-like mix of
// small headers and larger sources.
func MakeTree(root string, targetBytes int, seed uint64) *Tree {
	rng := sim.NewRand(seed)
	t := &Tree{Dirs: []string{root}}
	ndirs := 8
	for d := 0; d < ndirs; d++ {
		t.Dirs = append(t.Dirs, fmt.Sprintf("%s/dir%02d", root, d))
	}
	total := 0
	for i := 0; total < targetBytes; i++ {
		var size int
		switch p := rng.Float64(); {
		case p < 0.4:
			size = rng.Range(200, 2000) // headers, makefiles
		case p < 0.85:
			size = rng.Range(2000, 20000) // typical sources
		default:
			size = rng.Range(20000, 80000) // big generated files
		}
		dir := t.Dirs[1+rng.Intn(ndirs)]
		t.Files = append(t.Files, TreeFile{
			Path: fmt.Sprintf("%s/f%04d.c", dir, i),
			Size: size,
			Seed: rng.Uint64() | 1,
		})
		total += size
	}
	return t
}

// BuildTree materialises the tree on the file system.
func BuildTree(fsys *fs.FS, t *Tree) error {
	for _, d := range t.Dirs {
		if err := fsys.Mkdir(d); err != nil && err != fs.ErrExists {
			return err
		}
	}
	for _, tf := range t.Files {
		f, err := fsys.Create(tf.Path)
		if err != nil {
			return err
		}
		if err := writeAll(f, kernel.FillBytes(tf.Size, tf.Seed)); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// CpRm is the paper's cp+rm workload: recursively copy a source tree, then
// recursively remove the copy.
type CpRm struct {
	// TreeBytes is the source-tree size (the paper used the 40 MB Digital
	// Unix source; default 4 MB).
	TreeBytes int
	Seed      uint64
	// UserCPUPerFile and UserCPUPerByte model cp/rm process time.
	UserCPUPerFile sim.Duration
	UserCPUPerByte sim.Duration
}

// DefaultCpRm returns the standard configuration.
func DefaultCpRm() *CpRm {
	return &CpRm{
		TreeBytes:      4 << 20,
		Seed:           1996,
		UserCPUPerFile: 2 * sim.Millisecond,
		UserCPUPerByte: 90, // ~11 MB/s user-side processing
	}
}

func (w *CpRm) userCPU(m *machine.Machine, files, bytes int) {
	m.Engine.Clock.Advance(sim.Duration(files)*w.UserCPUPerFile +
		sim.Duration(bytes)*w.UserCPUPerByte)
}

// Run executes the workload; the returned durations are (copy, remove).
// The source tree is built untimed, as the paper's tree pre-existed. For
// disk-backed configurations the caches are then dropped: the benchmark
// starts on a freshly booted machine whose tree lives on disk. MFS keeps
// the tree in memory (it has nowhere else), and so does Rio — its file
// cache *survives* reboots, which is part of why it matches MFS here.
func (w *CpRm) Run(m *machine.Machine) (cp, rm sim.Duration, err error) {
	tree := MakeTree("/src", w.TreeBytes, w.Seed)
	if err := BuildTree(m.FS, tree); err != nil {
		return 0, 0, fmt.Errorf("cp+rm setup: %w", err)
	}
	if err := m.FS.DropCaches(); err != nil {
		return 0, 0, err
	}

	// cp walks directory by directory (find order), not creation order —
	// which is what scatters the read pattern across the disk.
	byDir := map[string][]TreeFile{}
	for _, tf := range tree.Files {
		d := tf.Path[:strings.LastIndex(tf.Path, "/")]
		byDir[d] = append(byDir[d], tf)
	}
	var walk []TreeFile
	for _, d := range tree.Dirs[1:] {
		walk = append(walk, byDir[d]...)
	}

	// Timed phase 1: recursive copy.
	t0 := m.Engine.Clock.Now()
	if err := m.FS.Mkdir("/dst"); err != nil {
		return 0, 0, err
	}
	for _, d := range tree.Dirs[1:] {
		if err := m.FS.Mkdir("/dst" + d[len("/src"):]); err != nil {
			return 0, 0, err
		}
	}
	for _, tf := range walk {
		data, err := readAll(m.FS, tf.Path)
		if err != nil {
			return 0, 0, err
		}
		dst := "/dst" + tf.Path[len("/src"):]
		f, err := m.FS.Create(dst)
		if err != nil {
			return 0, 0, err
		}
		if err := writeAll(f, data); err != nil {
			return 0, 0, err
		}
		if err := f.Close(); err != nil {
			return 0, 0, err
		}
		w.userCPU(m, 1, len(data))
	}
	t1 := m.Engine.Clock.Now()

	// Timed phase 2: recursive remove of the copy.
	for _, tf := range walk {
		if err := m.FS.Unlink("/dst" + tf.Path[len("/src"):]); err != nil {
			return 0, 0, err
		}
		w.userCPU(m, 1, 0)
	}
	for i := len(tree.Dirs) - 1; i >= 1; i-- {
		if err := m.FS.Rmdir("/dst" + tree.Dirs[i][len("/src"):]); err != nil {
			return 0, 0, err
		}
	}
	if err := m.FS.Rmdir("/dst"); err != nil {
		return 0, 0, err
	}
	t2 := m.Engine.Clock.Now()
	return t1.Sub(t0), t2.Sub(t1), nil
}

// Sdet models SPEC SDM's Sdet: concurrent scripts of shell-like software
// development activity (creates, edits, reads, scans, deletes), heavily
// metadata-bound.
type Sdet struct {
	Scripts      int // the paper ran 5 scripts
	OpsPerScript int
	Seed         uint64
	// ThinkTime is user/shell CPU per script operation.
	ThinkTime sim.Duration
}

// DefaultSdet returns the 5-script configuration.
func DefaultSdet() *Sdet {
	return &Sdet{
		Scripts:      5,
		OpsPerScript: 220,
		Seed:         5309,
		ThinkTime:    1 * sim.Millisecond,
	}
}

// Run executes the scripts round-robin (the time-sliced interleaving of a
// multi-user system) and returns the makespan.
func (w *Sdet) Run(m *machine.Machine) (sim.Duration, error) {
	rng := sim.NewRand(w.Seed)
	t0 := m.Engine.Clock.Now()
	type script struct {
		dir   string
		files []string
		n     int
	}
	scripts := make([]*script, w.Scripts)
	for i := range scripts {
		dir := fmt.Sprintf("/sdet%d", i)
		if err := m.FS.Mkdir(dir); err != nil {
			return 0, err
		}
		scripts[i] = &script{dir: dir}
	}
	for done := 0; done < w.Scripts; {
		done = 0
		for _, s := range scripts {
			if s.n >= w.OpsPerScript {
				done++
				continue
			}
			s.n++
			m.Engine.Clock.Advance(w.ThinkTime)
			if err := w.step(m, rng, s.dir, &s.files); err != nil {
				return 0, err
			}
		}
	}
	return m.Engine.Clock.Now().Sub(t0), nil
}

func (w *Sdet) step(m *machine.Machine, rng *sim.Rand, dir string, files *[]string) error {
	switch p := rng.Float64(); {
	case p < 0.30 || len(*files) == 0: // create a file
		name := fmt.Sprintf("%s/w%05d", dir, rng.Intn(1<<20))
		f, err := m.FS.Create(name)
		if err == fs.ErrExists {
			return nil
		}
		if err != nil {
			return err
		}
		if err := writeAll(f, kernel.FillBytes(rng.Range(500, 12000), rng.Uint64()|1)); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		*files = append(*files, name)
	case p < 0.50: // edit: append to a file
		name := (*files)[rng.Intn(len(*files))]
		f, err := m.FS.Open(name)
		if err != nil {
			return err
		}
		st, err := m.FS.Stat(name)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(kernel.FillBytes(rng.Range(100, 4000), rng.Uint64()|1), st.Size); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	case p < 0.70: // read a file
		name := (*files)[rng.Intn(len(*files))]
		if _, err := readAll(m.FS, name); err != nil {
			return err
		}
	case p < 0.85: // scan the directory (ls -l)
		ents, err := m.FS.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if _, err := m.FS.Stat(dir + "/" + e.Name); err != nil {
				return err
			}
		}
	default: // delete a file
		i := rng.Intn(len(*files))
		name := (*files)[i]
		if err := m.FS.Unlink(name); err != nil {
			return err
		}
		(*files)[i] = (*files)[len(*files)-1]
		*files = (*files)[:len(*files)-1]
	}
	return nil
}

// Andrew models the Andrew benchmark's five phases: make directories, copy
// the sources, stat every file, read every file, and compile — the last
// dominated by CPU, as the paper notes.
type Andrew struct {
	TreeBytes int
	Seed      uint64
	// CompileCPUPerByte is compiler CPU charged per source byte.
	CompileCPUPerByte sim.Duration
	// UserCPUPerFile covers the non-compile phases' tool overhead.
	UserCPUPerFile sim.Duration
}

// DefaultAndrew returns the standard configuration.
func DefaultAndrew() *Andrew {
	return &Andrew{
		TreeBytes:         600 << 10, // the Andrew tree is small
		Seed:              1988,
		CompileCPUPerByte: 5 * sim.Microsecond, // ~200 KB/s compile rate
		UserCPUPerFile:    1 * sim.Millisecond,
	}
}

// writeChunked writes data in small chunks, as compilers and assemblers
// emit output — the many small write(2) calls are what make the "sync"
// mount so painful on Andrew.
func writeChunked(f *fs.File, data []byte, chunk int) error {
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := f.WriteAt(data[off:end], int64(off)); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the five phases and returns the total elapsed time.
func (w *Andrew) Run(m *machine.Machine) (sim.Duration, error) {
	tree := MakeTree("/andrew-src", w.TreeBytes, w.Seed)
	if err := BuildTree(m.FS, tree); err != nil {
		return 0, err
	}
	if err := m.FS.DropCaches(); err != nil {
		return 0, err
	}
	if err := m.FS.Mkdir("/tmp"); err != nil {
		return 0, err
	}
	t0 := m.Engine.Clock.Now()

	// Phase 1: mkdir.
	if err := m.FS.Mkdir("/andrew"); err != nil {
		return 0, err
	}
	for _, d := range tree.Dirs[1:] {
		if err := m.FS.Mkdir("/andrew" + d[len("/andrew-src"):]); err != nil {
			return 0, err
		}
	}
	// Phase 2: copy.
	for _, tf := range tree.Files {
		data, err := readAll(m.FS, tf.Path)
		if err != nil {
			return 0, err
		}
		dst := "/andrew" + tf.Path[len("/andrew-src"):]
		f, err := m.FS.Create(dst)
		if err != nil {
			return 0, err
		}
		if err := writeAll(f, data); err != nil {
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		m.Engine.Clock.Advance(w.UserCPUPerFile)
	}
	// Phase 3: stat everything (find/ls/du).
	for pass := 0; pass < 2; pass++ {
		for _, tf := range tree.Files {
			if _, err := m.FS.Stat("/andrew" + tf.Path[len("/andrew-src"):]); err != nil {
				return 0, err
			}
			m.Engine.Clock.Advance(w.UserCPUPerFile / 4)
		}
	}
	// Phase 4: read everything (grep/wc).
	for _, tf := range tree.Files {
		if _, err := readAll(m.FS, "/andrew"+tf.Path[len("/andrew-src"):]); err != nil {
			return 0, err
		}
		m.Engine.Clock.Advance(w.UserCPUPerFile / 2)
	}
	// Phase 5: compile — CPU-heavy, but also I/O-chatty: each cc run
	// emits preprocessor and assembler temporaries (written in small
	// chunks, as real tool pipelines do), then the object, then unlinks
	// the temporaries.
	var objs []string
	for i, tf := range tree.Files {
		src := "/andrew" + tf.Path[len("/andrew-src"):]
		data, err := readAll(m.FS, src)
		if err != nil {
			return 0, err
		}
		m.Engine.Clock.Advance(sim.Duration(len(data)) * w.CompileCPUPerByte)

		tmpI := fmt.Sprintf("/tmp/cc%04d.i", i)
		tmpS := fmt.Sprintf("/tmp/cc%04d.s", i)
		for _, tmp := range []struct {
			path string
			size int
		}{
			{tmpI, len(data) + len(data)/4}, // preprocessed source
			{tmpS, len(data) / 2},           // assembly
		} {
			f, err := m.FS.Create(tmp.path)
			if err != nil {
				return 0, err
			}
			if err := writeChunked(f, kernel.FillBytes(tmp.size, sim.Mix(tf.Seed, uint64(len(tmp.path)))), 2048); err != nil {
				return 0, err
			}
			if err := f.Close(); err != nil {
				return 0, err
			}
		}

		obj := fmt.Sprintf("/andrew/obj%04d.o", i)
		f, err := m.FS.Create(obj)
		if err != nil {
			return 0, err
		}
		if err := writeChunked(f, kernel.FillBytes(len(data)*6/10, sim.Mix(tf.Seed, 0xb1)), 2048); err != nil {
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		if err := m.FS.Unlink(tmpI); err != nil {
			return 0, err
		}
		if err := m.FS.Unlink(tmpS); err != nil {
			return 0, err
		}
		objs = append(objs, obj)
	}
	// Link.
	totalObj := 0
	for _, o := range objs {
		data, err := readAll(m.FS, o)
		if err != nil {
			return 0, err
		}
		totalObj += len(data)
	}
	m.Engine.Clock.Advance(sim.Duration(totalObj) * w.CompileCPUPerByte / 4)
	f, err := m.FS.Create("/andrew/a.out")
	if err != nil {
		return 0, err
	}
	if err := writeAll(f, kernel.FillBytes(totalObj/2, 0xa0a7)); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return m.Engine.Clock.Now().Sub(t0), nil
}
