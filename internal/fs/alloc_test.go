package fs

import (
	"testing"

	"rio/internal/cache"
	"rio/internal/disk"
	"rio/internal/kernel"
	"rio/internal/mem"
	"rio/internal/mmu"
	"rio/internal/registry"
	"rio/internal/sim"
)

// newAllocFS hand-builds a mounted FS for white-box allocator tests
// (importing internal/machine here would be an import cycle).
func newAllocFS(t *testing.T) *FS {
	t.Helper()
	d := disk.New(2048*BlockSize, disk.DefaultParams())
	if _, err := Mkfs(d, 256, 0); err != nil {
		t.Fatal(err)
	}
	m := mem.New(768 * mem.PageSize)
	u := mmu.New(m)
	k := kernel.New(m, u, kernel.BuildText())
	k.FastPath = true
	reg, err := registry.New(k, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(k, reg, 160, 384)
	f, err := Mount(k, c, d, sim.NewEngine(nil), DefaultPolicy(PolicyRio), DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// ballocRefPeek is the bit-at-a-time first-fit scan the word-scan balloc
// replaced, made non-mutating: it reports which block balloc must return
// next without claiming it.
func ballocRefPeek(f *FS) (int64, error) {
	span := f.SB.JournalStart - f.SB.DataStart
	for probe := int64(0); probe < span; probe++ {
		block := f.SB.DataStart + (f.blkHint-f.SB.DataStart+probe)%span
		bb, bit := f.bitmapBlockOf(block)
		b, err := f.metaBuf(bb)
		if err != nil {
			return 0, err
		}
		img := f.C.Contents(b)
		if img[bit/8]&(1<<(bit%8)) == 0 {
			return block, nil
		}
	}
	return 0, ErrNoSpace
}

// TestBallocMatchesBitScanReference drives a long pseudo-random
// alloc/free churn — including full exhaustion — and checks at every
// step that the word-scan allocator returns exactly the block the
// original bit-scan would have chosen, and that the per-bitmap-block
// free-count summary stays exact.
func TestBallocMatchesBitScanReference(t *testing.T) {
	f := newAllocFS(t)
	rng := sim.NewRand(42)
	var held []int64
	sawFull := false
	for i := 0; i < 12000; i++ {
		if len(held) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(held))
			if err := f.bfree(held[j]); err != nil {
				t.Fatalf("step %d: bfree(%d): %v", i, held[j], err)
			}
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
			continue
		}
		want, werr := ballocRefPeek(f)
		got, gerr := f.balloc()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("step %d: ref err %v, balloc err %v", i, werr, gerr)
		}
		if gerr != nil {
			sawFull = true
			// Disk full in both views: release a batch and keep churning.
			for n := 0; n < 64 && len(held) > 0; n++ {
				j := rng.Intn(len(held))
				if err := f.bfree(held[j]); err != nil {
					t.Fatal(err)
				}
				held[j] = held[len(held)-1]
				held = held[:len(held)-1]
			}
			continue
		}
		if got != want {
			t.Fatalf("step %d: balloc returned %d, bit-scan reference wants %d", i, got, want)
		}
		held = append(held, got)
	}
	if !sawFull {
		t.Fatal("churn never exhausted the disk; exhaustion path untested")
	}
	// The summary must agree with a fresh count of every known bitmap block.
	for bi := range f.bmFree {
		if f.bmFree[bi] < 0 {
			continue
		}
		b, err := f.metaBuf(f.SB.BitmapStart + int64(bi))
		if err != nil {
			t.Fatal(err)
		}
		if want := f.countBmFree(bi, f.C.Contents(b)); f.bmFree[bi] != want {
			t.Fatalf("bmFree[%d] = %d, recount = %d", bi, f.bmFree[bi], want)
		}
	}
}

func TestFirstZeroBit(t *testing.T) {
	img := make([]byte, 32) // 256 bits
	set := func(b int64) { img[b/8] |= 1 << (b % 8) }
	cases := []struct {
		prep     func()
		from, to int64
		want     int64
	}{
		{func() {}, 0, 256, 0},
		{func() { set(0) }, 0, 256, 1},
		{func() {
			for b := int64(1); b < 64; b++ {
				set(b)
			}
		}, 0, 256, 64}, // full first word skipped in one compare
		{func() { set(64) }, 0, 256, 65},
		{func() {}, 65, 66, 65},
		{func() { set(65) }, 65, 66, -1}, // window exhausted
		{func() {
			for b := int64(66); b < 256; b++ {
				set(b)
			}
		}, 66, 256, -1}, // rest of image allocated
		{func() {}, 256, 256, -1}, // empty window
	}
	for i, c := range cases {
		c.prep()
		if got := firstZeroBit(img, c.from, c.to); got != c.want {
			t.Fatalf("case %d: firstZeroBit[%d,%d) = %d, want %d", i, c.from, c.to, got, c.want)
		}
	}
}

// TestDcacheLRU pins the bound and the deterministic eviction order.
func TestDcacheLRU(t *testing.T) {
	dc := newDcache()
	for i := 0; i < dcacheCap+10; i++ {
		dc.put(1, name(i), uint32(i+2))
	}
	if dc.Len() != dcacheCap {
		t.Fatalf("len %d, want cap %d", dc.Len(), dcacheCap)
	}
	// The 10 oldest entries were evicted, the rest survive.
	for i := 0; i < 10; i++ {
		if _, ok := dc.get(1, name(i)); ok {
			t.Fatalf("entry %d should have been evicted", i)
		}
	}
	for i := 10; i < dcacheCap+10; i++ {
		ino, ok := dc.get(1, name(i))
		if !ok || ino != uint32(i+2) {
			t.Fatalf("entry %d: got %d,%v", i, ino, ok)
		}
	}
	// A get refreshes recency: touch the oldest survivor, insert one
	// more, and the *second*-oldest must go instead.
	dc.get(1, name(10))
	dc.put(1, name(dcacheCap+10), 9999)
	if _, ok := dc.get(1, name(10)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := dc.get(1, name(11)); ok {
		t.Fatal("LRU entry survived")
	}
	// invalidate removes exactly the named entry, nil-safe throughout.
	dc.invalidate(1, name(12))
	if _, ok := dc.get(1, name(12)); ok {
		t.Fatal("invalidated entry still cached")
	}
	var nildc *dcache
	nildc.put(1, "x", 2)
	nildc.invalidate(1, "x")
	if _, ok := nildc.get(1, "x"); ok {
		t.Fatal("nil dcache returned a hit")
	}
	if nildc.Len() != 0 {
		t.Fatal("nil dcache has entries")
	}
}

func name(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}
