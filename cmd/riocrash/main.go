// Command riocrash reproduces Table 1 of the Rio paper: the crash-test
// campaign that measures how often operating-system crashes corrupt
// permanent file data on three systems — a disk-based write-through
// baseline, Rio without protection (warm reboot only), and Rio with
// protection.
//
// Usage:
//
//	riocrash [-runs N] [-seed S] [-workers W] [-disk-faults] [-json PATH] [-quiet]
//
// The paper ran 50 crashing runs per (fault type, system) cell — 1950
// crashes in 6 machine-months. The simulator replays the same protocol in
// minutes; -runs scales the per-cell count and -workers fans the runs out
// across cores. Every run's seed is derived purely from (campaign seed,
// system, fault, attempt), so the table is identical at any worker count.
//
// -disk-faults adds the double-fault dimension: recovery runs against a
// disk injecting transient, latent, and misdirected storage faults, and
// a second crash interrupts each warm reboot at a seed-derived step. The
// recovery columns report how the restart protocol coped.
//
// -txn switches to the transactional campaign: runs hammer multi-file
// commits through the WAL-free transaction layer instead of memTest,
// and the report's headline column counts torn transactions — commits
// only partially visible after recovery — which must be zero on both
// Rio systems under every fault type. -runs then sets attempts per
// cell (there is no crash quota).
//
// -scenario <file> runs one declarative scenario spec (see
// internal/scenario and cmd/rioscn) instead of the built-in campaign:
// the spec chooses workload, fault plan, crash schedule, and topology,
// and the resulting report is byte-identical at any -workers value.
//
// -fleet switches to the fleet campaign: each run boots a replicated
// fleet (internal/fleet), acks writes, injects one fleet-level fault —
// machine kill, primary partition, backup loss, OS crash, or a
// pairwise partition that strands a deposed primary with live client
// links — and demands every acked write read back byte-equal with no
// stale reads served. -runs sets the total plan count (kinds cycle by
// index, so runs >= 5 covers all five); the headline Lost and Stale
// columns must be zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rio"
	"rio/internal/crashtest"
	"rio/internal/crashtest/fleetcampaign"
	"rio/internal/scenario"
)

// scenarioMode parses and runs one scenario file, printing its
// corruption and latency tables and gating on the zero columns.
func scenarioMode(file string, workers int, quiet bool) {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riocrash:", err)
		os.Exit(1)
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riocrash: %s: %v\n", file, err)
		os.Exit(1)
	}
	r := &scenario.Runner{Workers: workers, Now: time.Now}
	if !quiet {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	res, err := r.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riocrash: %s: %v\n", file, err)
		os.Exit(1)
	}
	fmt.Print(res.Table())
	if lt := res.LatencyTable(); lt != "" {
		fmt.Println()
		fmt.Print(lt)
	}
	if err := res.Gate(); err != nil {
		fmt.Fprintln(os.Stderr, "riocrash: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("scenario passed: zero acked-write loss, zero torn commits, zero stale reads")
}

// fleetMode runs the fleet campaign and prints its report.
func fleetMode(runs int, seed uint64, workers int, quiet bool) {
	cfg := fleetcampaign.Config{Seed: seed, Runs: runs, Workers: workers}
	if !quiet {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	fmt.Fprintf(os.Stderr, "running %d fleet crash plans (%d fault kinds, cycling)...\n",
		runs, fleetcampaign.NumKinds)
	rep, err := fleetcampaign.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riocrash:", err)
		os.Exit(1)
	}
	fmt.Println("Fleet crash campaign (acked-write survival across machine loss)")
	fmt.Println()
	fmt.Print(rep.Table())
	fmt.Println()
	if errs := rep.Errors(); len(errs) != 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "riocrash: harness error:", e)
		}
		os.Exit(1)
	}
	if n := rep.TotalLost(); n != 0 {
		fmt.Printf("FAIL: %d acked writes lost\n", n)
		os.Exit(1)
	}
	if n := rep.TotalStale(); n != 0 {
		fmt.Printf("FAIL: %d stale reads served by deposed primaries\n", n)
		os.Exit(1)
	}
	fmt.Println("zero acked writes lost, zero stale reads: replication survived every machine kill, partition, and OS crash")
}

// txnCampaign runs the transactional variant and prints its report.
func txnCampaign(runs int, seed uint64, workers int, diskFaults, quiet bool) {
	cfg := crashtest.DefaultTxnCampaignConfig(seed)
	cfg.AttemptsPerCell = runs
	cfg.Workers = workers
	cfg.Run.DiskFaults = diskFaults
	if !quiet {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	fmt.Fprintf(os.Stderr, "running %d txn runs per cell x %d faults x %d systems...\n",
		runs, 13, len(crashtest.TxnSystems))
	rep, err := crashtest.RunTxnCampaign(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riocrash:", err)
		os.Exit(1)
	}
	fmt.Println("Transactional crash campaign (torn/corrupted/crashes per cell)")
	fmt.Println()
	fmt.Print(rep.Table())
	fmt.Println()
	if errs := rep.Errors(); len(errs) != 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "riocrash: harness error:", e)
		}
		os.Exit(1)
	}
	if n := rep.TotalTorn(); n != 0 {
		fmt.Printf("FAIL: %d torn transactions\n", n)
		os.Exit(1)
	}
	if n := rep.TotalAborted(); n != 0 {
		fmt.Printf("FAIL: %d aborted recoveries\n", n)
		os.Exit(1)
	}
	fmt.Println("zero torn transactions: every commit was all-or-nothing across recovery")
}

func main() {
	runs := flag.Int("runs", 50, "crashing runs per (fault, system) cell")
	seed := flag.Uint64("seed", 1, "campaign seed (reproducible)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = all cores)")
	diskFaults := flag.Bool("disk-faults", false, "inject storage faults and a second crash during recovery")
	txnMode := flag.Bool("txn", false, "run the transactional campaign (torn-commit hunt) instead of memTest")
	fleetFlag := flag.Bool("fleet", false, "run the fleet campaign (machine-loss survival) instead of memTest; -runs = total plans")
	scenarioFile := flag.String("scenario", "", "run one declarative scenario spec file instead of the built-in campaign")
	jsonPath := flag.String("json", "", "write the full report as JSON to this path")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress")
	flag.Parse()

	if *txnMode && *fleetFlag {
		fmt.Fprintln(os.Stderr, "riocrash: -txn and -fleet are mutually exclusive")
		os.Exit(2)
	}
	if *scenarioFile != "" {
		if *txnMode || *fleetFlag {
			fmt.Fprintln(os.Stderr, "riocrash: -scenario is exclusive with -txn and -fleet (the spec picks the campaign)")
			os.Exit(2)
		}
		scenarioMode(*scenarioFile, *workers, *quiet)
		return
	}
	if *fleetFlag {
		fleetMode(*runs, *seed, *workers, *quiet)
		return
	}
	if *txnMode {
		txnCampaign(*runs, *seed, *workers, *diskFaults, *quiet)
		return
	}

	opts := rio.CampaignOptions{RunsPerCell: *runs, Seed: *seed, Workers: *workers, DiskFaults: *diskFaults}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	// Fail on an unwritable -json path now, not after a long campaign.
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riocrash:", err)
			os.Exit(1)
		}
		jsonFile = f
	}

	fmt.Fprintf(os.Stderr, "running %d crashes per cell x 13 faults x 3 systems...\n", *runs)
	res, err := rio.RunCrashCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riocrash:", err)
		os.Exit(1)
	}

	if jsonFile != nil {
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "riocrash: encoding report:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if _, err := jsonFile.Write(data); err == nil {
			err = jsonFile.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "riocrash: writing report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote JSON report to %s\n", *jsonPath)
	}

	fmt.Println("Table 1: Comparing Disk and Memory Reliability")
	fmt.Println("(corruptions per cell; blank = none)")
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()

	names := res.SystemNames()
	for i, name := range names {
		crashes, corrupted := res.Totals(i)
		rate := 0.0
		if crashes > 0 {
			rate = 100 * float64(corrupted) / float64(crashes)
		}
		mttf := res.MTTFYears(i)
		mttfs := "unbounded at this sample size"
		if mttf > 0 {
			mttfs = fmt.Sprintf("%.1f years", mttf)
		}
		fmt.Printf("%-12s %d of %d crashes corrupted data (%.1f%%); MTTF at 1 crash/2 months: %s\n",
			name, corrupted, crashes, rate, mttfs)
	}
	fmt.Println()
	fmt.Printf("Rio protection trapped an illegal file-cache store in %d crashes\n",
		res.ProtectionInvocations())
	fmt.Println()
	if *diskFaults {
		fmt.Println("Recovery under storage faults + second crash (totals per system):")
		fmt.Print(res.RecoveryTable())
		fmt.Println()
	}
	fmt.Println("Crash manifestations (Rio with protection):")
	fmt.Print(res.CrashKindBreakdown(rio.SystemRioProt))
	fmt.Println()

	sum := res.Summary()
	fmt.Printf("campaign: %d runs (%d crashes, %d discarded, %d errors) on %d workers in %v — %.1f runs/s, %.0f%% discard rate, %d speculative\n",
		sum.Runs, sum.Crashes, sum.Discarded, sum.Errors, sum.Workers,
		sum.WallTime.Round(10*time.Millisecond), sum.RunsPerSec, 100*sum.DiscardRate, sum.SpeculativeRuns)
	fmt.Println()
	fmt.Println("Paper reference: disk 7/650 (1.1%), Rio w/o protection 10/650 (1.5%),")
	fmt.Println("Rio w/ protection 4/650 (0.6%); 8 protection invocations; MTTF 15y / 11y.")
}
