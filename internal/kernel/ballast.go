package kernel

import "rio/internal/kvm"

// Ballast procedures: the rest of the kernel.
//
// In Digital Unix, the file-cache data path is a sliver of millions of
// instructions of scheduler, VM, networking, and driver code. Injected
// faults overwhelmingly land in — and crash from — code that never touches
// the file cache. A simulated kernel consisting only of the data path
// would overstate how often a random fault corrupts files.
//
// These procedures restore the proportion: they execute on every system
// call (Kernel.BackgroundTick), carry the same kinds of loads, stores,
// branches, asserts, and calls as the core procedures — so every fault
// model finds targets in them — but operate on a scratch statistics block
// in the kernel heap, never on file-cache pages. A fault landing here
// crashes the machine (assert, wild access, runaway loop) without touching
// permanent data, exactly like a fault in the scheduler.
//
// Scratch block layout (allocated at boot, magic-checked like any kernel
// structure):
//
//	+0   magic (scratchMagic)
//	+8   tick counter
//	+16  run-queue depth
//	+24  priority accumulator
//	+32  time (low word)
//	+40  time (carry word)
//	+48  rng state
//	+56  table base (address of +64)
//	+64  table of 8 words (accounting buckets)
//	+128 hash input area (64 bytes)
const (
	scratchMagic = 0x5CEDA7A
	scratchSize  = 256
)

// appendBallast assembles the ballast procedures into a.
func appendBallast(a *kvm.Asm) {
	// sched_tick(stats=r1): bump the tick counter, recompute a priority
	// sum over the accounting table.
	a.Proc("sched_tick")
	a.Ld(4, 1, 0)
	a.MovI(5, scratchMagic)
	a.EndProlog()
	a.Assert(4, 5)
	a.Ld(6, 1, 8)
	a.AddI(6, 6, 1)
	a.St(1, 8, 6)
	a.Ld(7, 1, 56) // table base
	a.MovI(8, 0)   // i
	a.MovI(9, 8)   // count
	a.MovI(4, 0)   // sum
	a.Label("sched_loop")
	a.BgeL(8, 9, "sched_done")
	a.ShlI(5, 8, 3)
	a.Add(5, 7, 5)
	a.Ld(6, 5, 0)
	a.Add(4, 4, 6)
	a.AddI(8, 8, 1)
	a.JmpL("sched_loop")
	a.Label("sched_done")
	a.St(1, 24, 4)
	a.Ret()

	// timekeep(stats=r1): 64-bit time increment with carry propagation.
	a.Proc("timekeep")
	a.Ld(4, 1, 0)
	a.MovI(5, scratchMagic)
	a.EndProlog()
	a.Assert(4, 5)
	a.Ld(6, 1, 32)
	a.AddI(6, 6, 1024) // tick quantum
	a.St(1, 32, 6)
	a.MovI(7, 0)
	a.MovHi(7, 1) // 1<<32 threshold
	a.BltL(6, 7, "tk_done")
	a.Sub(6, 6, 7)
	a.St(1, 32, 6)
	a.Ld(8, 1, 40)
	a.AddI(8, 8, 1)
	a.St(1, 40, 8)
	a.Label("tk_done")
	a.Ret()

	// queue_rotate(stats=r1): rotate the accounting table one slot, a
	// stand-in for run-queue manipulation. Loads through a derived base
	// register (a pointer-fault site).
	a.Proc("queue_rotate")
	a.Ld(7, 1, 56) // table base
	a.MovI(8, 0)
	a.EndProlog()
	a.Ld(9, 7, 0) // save slot 0
	a.MovI(5, 7)  // seven shifts
	a.Label("qr_loop")
	a.BgeL(8, 5, "qr_done")
	a.ShlI(6, 8, 3)
	a.Add(6, 7, 6)
	a.Ld(4, 6, 8) // next slot
	a.St(6, 0, 4)
	a.AddI(8, 8, 1)
	a.JmpL("qr_loop")
	a.Label("qr_done")
	a.ShlI(6, 8, 3)
	a.Add(6, 7, 6)
	a.St(6, 0, 9) // slot 7 = old slot 0
	a.Ret()

	// strhash(stats=r1): hash the 64-byte input area into a bucket,
	// byte loop with relational branches (off-by-one sites).
	a.Proc("strhash")
	a.MovI(4, 0) // i
	a.MovI(0, 0) // h
	a.EndProlog()
	a.AddI(6, 1, 128) // input base
	a.MovI(5, 64)
	a.Label("sh_loop")
	a.BgeL(4, 5, "sh_done")
	a.Add(7, 6, 4)
	a.LdB(8, 7, 0)
	a.ShlI(9, 0, 5)
	a.Sub(9, 9, 0)
	a.Add(0, 9, 8)
	a.AddI(4, 4, 1)
	a.JmpL("sh_loop")
	a.Label("sh_done")
	a.MovI(5, 7)
	a.And(9, 0, 5) // bucket = h & 7
	a.Ld(7, 1, 56)
	a.ShlI(9, 9, 3)
	a.Add(7, 7, 9)
	a.Ld(8, 7, 0)
	a.AddI(8, 8, 1)
	a.St(7, 0, 8)
	a.Ret()

	// rand_stir(stats=r1): advance the xorshift state.
	a.Proc("rand_stir")
	a.Ld(4, 1, 48)
	a.MovI(5, 0)
	a.EndProlog()
	a.BneL(4, 5, "rs_ok")
	a.MovI(4, 0x5eed)
	a.Label("rs_ok")
	a.ShlI(6, 4, 13)
	a.Xor(4, 4, 6)
	a.ShrI(6, 4, 7)
	a.Xor(4, 4, 6)
	a.ShlI(6, 4, 17)
	a.Xor(4, 4, 6)
	a.St(1, 48, 4)
	a.Ret()

	// proc_account(stats=r1): charge the current "process" — scaled
	// arithmetic on two table buckets, with a bounds assert.
	a.Proc("proc_account")
	a.Ld(4, 1, 0)
	a.MovI(5, scratchMagic)
	a.EndProlog()
	a.Assert(4, 5)
	a.Ld(6, 1, 48)
	a.MovI(5, 7)
	a.And(6, 6, 5) // bucket index 0..7
	a.MovI(7, 8)
	a.BltL(6, 7, "pa_ok") // bounds check (consistency)
	a.MovI(8, 0)
	a.MovI(9, 1)
	a.Assert(8, 9) // unreachable unless corrupted: panic
	a.Label("pa_ok")
	a.Ld(7, 1, 56)
	a.ShlI(6, 6, 3)
	a.Add(7, 7, 6)
	a.Ld(8, 7, 0)
	a.ShlI(9, 8, 1)
	a.Sub(9, 9, 8) // *1 dance keeps data deps long
	a.AddI(9, 9, 3)
	a.St(7, 0, 9)
	a.Ret()

	// intr_poll(stats=r1): poll loop with an early-exit branch, reading
	// the hash input area as a fake device ring.
	a.Proc("intr_poll")
	a.MovI(4, 0)
	a.MovI(5, 8)
	a.EndProlog()
	a.AddI(6, 1, 128)
	a.Label("ip_loop")
	a.BgeL(4, 5, "ip_done")
	a.ShlI(7, 4, 3)
	a.Add(7, 6, 7)
	a.Ld(8, 7, 0)
	a.MovI(9, 0)
	a.BneL(8, 9, "ip_done") // "work found" early exit
	a.AddI(4, 4, 1)
	a.JmpL("ip_loop")
	a.Label("ip_done")
	a.St(1, 16, 4)
	a.Ret()

	// ctx_switch(stats=r1): spill/reload flurry through the stack, then
	// dispatch into sched_tick — gives call/return and push/pop fault
	// sites.
	a.Proc("ctx_switch")
	a.Ld(4, 1, 8)
	a.Ld(5, 1, 24)
	a.EndProlog()
	a.Push(4)
	a.Push(5)
	a.Push(1)
	a.Call("rand_stir")
	a.Pop(1)
	a.Pop(5)
	a.Pop(4)
	a.Add(6, 4, 5)
	a.St(1, 24, 6)
	a.Ret()

	// vm_scan(stats=r1): a bounded scan mimicking page-table sweeps:
	// derived addressing plus a consistency check on the walk length.
	a.Proc("vm_scan")
	a.MovI(4, 0)
	a.MovI(9, 0)
	a.EndProlog()
	a.Ld(7, 1, 56)
	a.MovI(5, 8)
	a.Label("vs_loop")
	a.BgeL(4, 5, "vs_done")
	a.ShlI(6, 4, 3)
	a.Add(6, 7, 6)
	a.Ld(8, 6, 0)
	a.MovI(0, 0)
	a.BeqL(8, 0, "vs_skip")
	a.AddI(9, 9, 1)
	a.Label("vs_skip")
	a.AddI(4, 4, 1)
	a.JmpL("vs_loop")
	a.Label("vs_done")
	a.MovI(5, 9)
	a.BleL(9, 5, "vs_ok") // walk count sane (trivially true unless corrupted)
	a.MovI(8, 0)
	a.MovI(0, 1)
	a.Assert(8, 0)
	a.Label("vs_ok")
	a.Ret()
}

// BallastProcs lists the background procedures in dispatch order.
var BallastProcs = []string{
	"sched_tick", "timekeep", "queue_rotate", "strhash",
	"rand_stir", "proc_account", "intr_poll", "ctx_switch", "vm_scan",
}

// initScratch allocates and initialises the background scratch block.
func (k *Kernel) initScratch() {
	addr, err := k.Heap.Malloc(scratchSize)
	if err != nil || addr == 0 {
		panic("kernel: cannot allocate scratch block")
	}
	k.scratch = addr
	store := func(off int, v uint64) {
		if trap := k.MMU.Store64(addr+uint64(off), v); trap != nil {
			panic(trap)
		}
	}
	store(0, scratchMagic)
	store(48, 0x5eed)
	store(56, addr+64)
	for i := 0; i < 8; i++ {
		store(64+8*i, uint64(i+1))
	}
}

// BackgroundTick runs a slice of the kernel's background machinery — the
// part of a real kernel where most injected faults actually land. Called
// once per system call by the file-system layer.
func (k *Kernel) BackgroundTick() error {
	if k.crash != nil {
		return ErrCrashed
	}
	if k.FastPath {
		// Perf runs charge equivalent work without interpreting.
		k.SyntheticSteps += 120
		return nil
	}
	for i := 0; i < 3; i++ {
		proc := BallastProcs[int(k.tickSeq)%len(BallastProcs)]
		k.tickSeq++
		if err := k.Exec(proc, k.scratch); err != nil {
			return err
		}
	}
	return nil
}
