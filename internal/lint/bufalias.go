package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Bufalias enforces the pooled-buffer aliasing discipline that gates the
// zero-copy serving path (ROADMAP "cache frame → wire frame with no
// intermediate copy"). The hot path hands out views of reused storage —
// kernel.scratchBytes returns a slice of the kernel's bulk buffer, the
// fs block pool and readBuf recycle block-sized buffers, and
// cache.ReadInto / kernel.StageOutInto / cache.ContentsAt fill a
// caller-owned destination — and every one of those views has a
// sanctioned window: it is valid until the next bulk op, the next
// read, or the pool reuse. An alias that outlives the window is silent
// corruption (the buffer's bytes change under the holder), and the
// compiler cannot see it; with the interprocedural summaries riolint
// can.
//
// Rules, tracked through calls via the Program's summaries:
//
//   - A pooled alias (anything reaching kernel bulkBuf/bulkBuf2/zeroBuf,
//     fs readBuf, or the fs block pool, directly or through a function
//     that returns one) must not be stored in a field, global, or other
//     heap location, sent on a channel, or handed to a goroutine.
//     Returning one is allowed — that propagates the window to the
//     caller, and the caller is tracked in turn.
//   - putPooledBlock releases a block back to the pool; using the
//     released value afterwards (including releasing it twice) is a
//     use-after-free against the pool.
//   - The Into-style entry points (ReadInto, StageOutInto, ContentsAt)
//     are the zero-copy contract surface: their destination parameters
//     must not escape at all, because callers will pass pooled response
//     buffers. The contract is checked at the function, so every future
//     implementation keeps it.
//
// Custody transfers that are correct by design (e.g. handing a pooled
// block to the async-write queue that releases it on drain) carry
// //riolint:bufalias <reason>.
var Bufalias = &Analyzer{
	Name:      "bufalias",
	Directive: "bufalias",
	Doc:       "pooled/frame-aliased buffers must not outlive their window: no heap stores, channel sends, goroutine hand-offs, or use after release",
	Run:       runBufalias,
}

// poolFields are the struct fields whose reads yield a pooled alias.
var poolFields = map[string]bool{
	"bulkBuf":   true, // kernel bulk scratch
	"bulkBuf2":  true, // kernel second scratch (memcmp)
	"zeroBuf":   true, // kernel zero page
	"readBuf":   true, // fs read-path block buffer
	"blockPool": true, // fs recycled block buffers
	"frameBufs": true, // server recycled wire-frame buffers (zero-copy reads)
}

// releaseFuncs return a pooled buffer to its pool: calling one is not an
// escape, and the argument is dead afterwards.
var releaseFuncs = map[string]bool{
	"putPooledBlock": true,
	"putFrameBuf":    true, // server frame pool release
	"ReleaseFrame":   true, // exported wrapper over putFrameBuf
}

// intoContracts are the Into-style functions whose destination buffers
// must never escape (the zero-copy serving contract).
var intoContracts = map[string]bool{
	"ReadInto":     true,
	"StageOutInto": true,
	"ContentsAt":   true,
	"ReadDirect":   true, // cache frame -> caller buffer, one copy
	"ReadInoAt":    true, // fs/rio direct-read entry over ReadDirect
}

func runBufalias(p *Pass) {
	prog := p.Prog
	if prog == nil {
		return
	}
	prog.build()
	for _, node := range prog.order {
		if node.Pkg != p.Pkg {
			continue
		}
		for _, ev := range prog.events[node.Obj] {
			if ev.taint&(1<<rootBit) == 0 || ev.flow == FlowReturn || ev.intoPool {
				continue
			}
			p.Reportf(ev.pos,
				"pooled buffer %s: the alias outlives the pool's reuse window and its bytes will change underneath the holder; copy them, or annotate the sanctioned custody transfer",
				ev.desc)
		}
		checkUseAfterRelease(p, node)
		checkIntoContract(p, prog, node)
	}
}

// checkIntoContract verifies that an Into-style function's slice
// parameters do not escape: callers pass pooled response buffers as the
// destination, so any retention breaks the zero-copy window.
func checkIntoContract(p *Pass, prog *Program, node *FuncNode) {
	if !intoContracts[node.Obj.Name()] {
		return
	}
	sum := prog.summaries[node.Obj]
	if sum == nil {
		return
	}
	sig := node.Obj.Type().(*types.Signature)
	for i, fl := range sum.Params {
		fl &= FlowHeap | FlowSend | FlowGo // returning dst hands back what the caller had
		if fl == 0 || i >= sig.Params().Len() {
			continue
		}
		prm := sig.Params().At(i)
		if _, isSlice := prm.Type().Underlying().(*types.Slice); !isSlice {
			continue
		}
		p.Reportf(node.Decl.Name.Pos(),
			"%s must not retain its destination buffer, but parameter %s is %s; the zero-copy serving path passes pooled response buffers here",
			node.Obj.Name(), prm.Name(), fl)
	}
}

// checkUseAfterRelease flags reads of a buffer after it was handed back
// to the pool. Matching is textual (types.ExprString) so selector
// arguments like w.data are tracked too; a rebinding assignment to the
// released expression ends the tracking.
func checkUseAfterRelease(p *Pass, node *FuncNode) {
	type release struct {
		key  string
		end  token.Pos
		line int
	}
	var rels []release
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !releaseFuncs[calleeName(call)] || len(call.Args) != 1 {
			return true
		}
		switch unparen(call.Args[0]).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			rels = append(rels, release{
				key:  types.ExprString(unparen(call.Args[0])),
				end:  call.End(),
				line: p.Fset.Position(call.Pos()).Line,
			})
		}
		return true
	})
	if len(rels) == 0 {
		return
	}
	// Positions that are assignment left-hand sides: a rebind, not a use.
	lhsPos := make(map[token.Pos]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				lhsPos[l.Pos()] = true
			}
		}
		return true
	})
	for _, r := range rels {
		var first ast.Expr
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return true
			}
			if e.Pos() <= r.end || types.ExprString(e) != r.key {
				return true
			}
			if first == nil || e.Pos() < first.Pos() {
				first = e
			}
			return true
		})
		if first == nil || lhsPos[first.Pos()] {
			continue // never used again, or rebound to a fresh buffer
		}
		p.Reportf(first.Pos(),
			"pooled buffer %s used after being released to the pool (released at line %d); the pool may already have handed it to another writer",
			r.key, r.line)
	}
}
