// Package warmreboot implements Rio's reboot paths.
//
// Warm reboot (§2.2 of the paper) happens in two steps. Before the VM and
// file system initialise, the booting kernel dumps all of physical memory
// (the paper dumps to the swap partition; we hold the dump in the
// simulator) and restores dirty *metadata* buffers straight to their disk
// blocks using the disk addresses stored in the registry — so the file
// system is intact before fsck checks it. After the system is fully booted,
// a user-level process walks the dump and restores the dirty UBC pages
// through normal system calls (open/write).
//
// Because the dump is taken from a freshly booting, healthy system rather
// than the dying one, it "always works" — unlike a crash dump.
package warmreboot

import (
	"fmt"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/mem"
	"rio/internal/registry"
)

// Report describes what a warm reboot found and restored.
type Report struct {
	// Entries is the number of valid registry entries in the dump.
	Entries int
	// BadEntries failed the registry's per-entry CRC (garbage skipped).
	BadEntries int
	// MetaRestored / DataRestored count dirty buffers written back.
	MetaRestored int
	DataRestored int
	// Changing counts buffers that were mid-write at crash time; their
	// checksums cannot classify them.
	Changing int
	// ChecksumMismatches are non-changing buffers whose contents no
	// longer match their registry checksum: direct corruption, detected.
	ChecksumMismatches int
	// OrphanData counts dirty data pages whose file could not be found
	// after the metadata restore.
	OrphanData int
	// SkippedInvalid counts entries with out-of-range frames/blocks.
	SkippedInvalid int
	// Fsck is the consistency-check report after the metadata restore.
	Fsck fs.FsckReport
}

func (r *Report) String() string {
	return fmt.Sprintf("warm reboot: %d entries (%d bad), %d meta + %d data restored, %d changing, %d checksum mismatches, %d orphans",
		r.Entries, r.BadEntries, r.MetaRestored, r.DataRestored,
		r.Changing, r.ChecksumMismatches, r.OrphanData)
}

// Warm performs a warm reboot of a crashed machine in place: dump memory,
// restore metadata to disk, fsck, boot a fresh kernel, and restore the UBC
// through system calls. On return the machine is booted and its file
// system reflects the pre-crash file cache.
func Warm(m *machine.Machine) (*Report, error) {
	// Step 1: dump all of physical memory before anything reinitialises.
	return FromDump(m, m.Mem.Dump())
}

// FromDump performs the warm-reboot restore from an explicit memory image
// — either the in-place dump Warm takes at boot, or a dump a UPS wrote to
// the swap disk as the power failed (the paper's §1 power-outage story).
func FromDump(m *machine.Machine, dump []byte) (*Report, error) {
	rep := &Report{}

	// The registry lives at a machine-fixed location; take its frame
	// list before tearing the old kernel's state down.
	regFrames := m.Reg.Frames()

	entries, bad := registry.Parse(dump, regFrames)
	rep.Entries = len(entries)
	rep.BadEntries = bad

	nframes := m.Mem.NumFrames()
	pageOf := func(frame uint32) []byte {
		base := mem.FrameBase(int(frame))
		return dump[base : base+mem.PageSize]
	}

	// Classify and verify every entry first.
	var metaDirty, dataDirty []registry.ParsedEntry
	for _, e := range entries {
		if int(e.Frame) >= nframes || e.Size > mem.PageSize {
			rep.SkippedInvalid++
			continue
		}
		if e.Flags&registry.FlagChanging != 0 {
			rep.Changing++
		} else if e.Cksum != 0 {
			if kernel.CksumBytes(pageOf(e.Frame)) != e.Cksum {
				rep.ChecksumMismatches++
			}
		}
		if e.Flags&registry.FlagDirty == 0 {
			continue // clean: the disk copy is current
		}
		switch e.Kind {
		case registry.KindMeta:
			metaDirty = append(metaDirty, e)
		case registry.KindData:
			dataDirty = append(dataDirty, e)
		}
	}

	// Step 2: restore dirty metadata straight to disk, pre-fsck.
	for _, e := range metaDirty {
		// Block 0 is the superblock, which is never cached: a registry
		// entry claiming it is corrupt, and restoring it would destroy
		// the volume.
		if e.Block < 1 || e.Block*fs.SectorsPerBlock >= int64(m.Disk.NumSectors()) {
			rep.SkippedInvalid++
			continue
		}
		m.Disk.Commit(int(e.Block)*fs.SectorsPerBlock, pageOf(e.Frame))
		rep.MetaRestored++
	}

	// Step 3: fsck the (now metadata-complete) volume.
	fsckRep, err := fs.Fsck(m.Disk)
	if err != nil {
		return rep, fmt.Errorf("warmreboot: fsck: %w", err)
	}
	rep.Fsck = fsckRep

	// Step 4: boot a fresh kernel. Pool frame contents are irrelevant now
	// — everything needed is in the dump.
	if err := m.Boot(nil); err != nil {
		return rep, fmt.Errorf("warmreboot: boot: %w", err)
	}

	// Step 5: user-level restore of UBC pages via normal system calls.
	paths, err := inodePaths(m.FS)
	if err != nil {
		return rep, err
	}
	for _, e := range dataDirty {
		path, ok := paths[e.Ino]
		if !ok {
			rep.OrphanData++
			continue
		}
		f, err := m.FS.Open(path)
		if err != nil {
			rep.OrphanData++
			continue
		}
		n := int(e.Size)
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if n > 0 {
			if _, err := f.WriteAt(pageOf(e.Frame)[:n], e.Off); err != nil {
				f.Close()
				return rep, fmt.Errorf("warmreboot: restore %s@%d: %w", path, e.Off, err)
			}
		}
		f.Close()
		rep.DataRestored++
	}
	return rep, nil
}

// inodePaths walks the mounted tree building an inode -> path index for the
// user-level UBC restorer.
func inodePaths(fsys *fs.FS) (map[uint32]string, error) {
	out := make(map[uint32]string)
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				if err := walk(p); err != nil {
					return err
				}
			} else {
				out[e.Ino] = p
			}
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return nil, err
	}
	return out, nil
}

// Cold performs a cold reboot: memory is lost (scrambled), the volume is
// fsck'd, and a fresh kernel boots. This is the disk-based baseline's
// recovery path — only what reached the disk survives.
func Cold(m *machine.Machine, seed uint64) (fs.FsckReport, error) {
	m.Mem.Scramble(seed)
	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		return rep, err
	}
	if err := m.Boot(nil); err != nil {
		return rep, err
	}
	return rep, nil
}
