package warmreboot

import (
	"bytes"
	"testing"

	"rio/internal/cache"
	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/registry"
)

func TestWarmRebootOrphanData(t *testing.T) {
	// A dirty UBC page whose file's metadata never became durable (we
	// sabotage the registry's metadata entries) cannot be restored; the
	// reboot must count it as an orphan rather than fail.
	m := rioMachine(t, false)
	put(t, m, "/doomed", kernel.FillBytes(fs.BlockSize, 5))

	// Drop every metadata entry from the registry, simulating a file
	// whose namespace never reached any durable form.
	for slot := 0; slot < m.Reg.Cap(); slot++ {
		if e, ok := m.Reg.Get(slot); ok && e.Kind == registry.KindMeta {
			if err := m.Reg.Free(slot); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Kernel.Panic("crash")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	// The page cannot be restored to its file, but it must not be
	// dropped either: it lands in /lost+found, reassembled by inode.
	if rep.Salvaged == 0 {
		t.Fatalf("orphan not salvaged: %v", rep)
	}
	ents, err := m.FS.ReadDir("/lost+found")
	if err != nil || len(ents) == 0 {
		t.Fatalf("no salvage files (err=%v): %v", err, rep)
	}
	f, err := m.FS.Open("/lost+found/" + ents[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, fs.BlockSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("reading salvage file: %v", err)
	}
	if !bytes.Equal(buf, kernel.FillBytes(fs.BlockSize, 5)) {
		t.Fatal("salvaged bytes do not match the lost page")
	}
}

func TestWarmRebootOrphanDroppedWithoutSalvage(t *testing.T) {
	// With salvage disabled the same page is counted as an orphan — the
	// pre-salvage accounting contract still holds.
	m := rioMachine(t, false)
	put(t, m, "/doomed", kernel.FillBytes(fs.BlockSize, 5))
	for slot := 0; slot < m.Reg.Cap(); slot++ {
		if e, ok := m.Reg.Get(slot); ok && e.Kind == registry.KindMeta {
			if err := m.Reg.Free(slot); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Kernel.Panic("crash")
	m.CrashFinish()
	opts := DefaultOptions()
	opts.Salvage = false
	rep, err := FromDumpOpts(m, m.Mem.Dump(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanData == 0 || rep.Salvaged != 0 {
		t.Fatalf("orphan not counted with salvage off: %v", rep)
	}
}

func TestWarmRebootSizeClamped(t *testing.T) {
	// A registry entry claiming more valid bytes than a page holds is
	// invalid and must be skipped, not sliced out of range.
	m := rioMachine(t, false)
	put(t, m, "/f", []byte("short"))
	var slot = -1
	for s := 0; s < m.Reg.Cap(); s++ {
		if e, ok := m.Reg.Get(s); ok && e.Kind == registry.KindData {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Fatal("no data entry")
	}
	if err := m.Reg.Mutate(slot, func(e *registry.Entry) {
		e.Size = 1 << 20 // impossible
	}); err != nil {
		t.Fatal(err)
	}
	m.Kernel.Panic("crash")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedInvalid == 0 {
		t.Fatalf("oversized entry not skipped: %v", rep)
	}
}

func TestWarmRebootChangingBufferRestoredBestEffort(t *testing.T) {
	// A buffer flagged "changing" (sanctioned write was in flight) cannot
	// be classified by its checksum, but its contents are still restored.
	m := rioMachine(t, false)
	data := kernel.FillBytes(fs.BlockSize, 9)
	put(t, m, "/f", data)
	var slot = -1
	for s := 0; s < m.Reg.Cap(); s++ {
		if e, ok := m.Reg.Get(s); ok && e.Kind == registry.KindData {
			slot = s
			break
		}
	}
	if err := m.Reg.Mutate(slot, func(e *registry.Entry) {
		e.Flags |= registry.FlagChanging
	}); err != nil {
		t.Fatal(err)
	}
	m.Kernel.Panic("crash mid-write")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changing == 0 {
		t.Fatalf("changing buffer not counted: %v", rep)
	}
	if rep.ChecksumMismatches != 0 {
		t.Fatalf("changing buffer wrongly checksum-classified: %v", rep)
	}
	if !bytes.Equal(get(t, m, "/f"), data) {
		t.Fatal("changing buffer not restored")
	}
}

func TestCleanBuffersNotRestored(t *testing.T) {
	// Buffers whose disk copy is current (clean) are skipped entirely:
	// the write-through config has nothing dirty at crash time.
	m := rioMachine(t, false)
	put(t, m, "/f", []byte("data"))
	// Flush everything by hand, as if an idle write-back had completed.
	for _, kind := range []cache.Kind{cache.Meta, cache.Data} {
		for _, b := range m.Cache.DirtyBufs(kind) {
			if b.Block < 0 {
				continue
			}
			m.Disk.Commit(int(b.Block)*fs.SectorsPerBlock, m.Cache.Contents(b))
			if err := m.Cache.MarkClean(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Kernel.Panic("crash")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MetaRestored != 0 || rep.DataRestored != 0 {
		t.Fatalf("clean buffers restored: %v", rep)
	}
	if string(get(t, m, "/f")) != "data" {
		t.Fatal("data lost")
	}
}
