// Package registry implements Rio's registry: the protected area of memory
// that describes every file-cache buffer so a warm reboot can find,
// identify, and restore them (§2.2 of the paper).
//
// The paper's registry keeps, for each 8 KB file-cache page, the physical
// memory address, file id (device and inode number), file offset, and size
// — about 40 bytes per page. Our entries are 64 bytes (we add a per-entry
// checksum of the buffer contents, flags, and a CRC over the entry itself
// so that warm reboot can reject garbage entries).
//
// Entries live in dedicated physical frames that are flagged and — when
// protection is on — write-protected like the file cache itself. All
// registry mutation goes through this package, which briefly opens the
// frame's write permission around each sanctioned store, mirroring the file
// cache's own discipline.
package registry

import (
	"fmt"

	"rio/internal/kernel"
	"rio/internal/mem"
	"rio/internal/mmu"
)

// EntrySize is the serialized size of one registry entry.
const EntrySize = 64

// entryMagic marks a live entry on its first two bytes.
const entryMagic = 0x5210

// Kind distinguishes what a registered buffer caches.
type Kind uint8

const (
	// KindMeta is a buffer-cache block (directories, inodes, superblock,
	// bitmap). Warm reboot restores these straight to their disk blocks
	// before fsck runs.
	KindMeta Kind = 1
	// KindData is a UBC page of regular-file data. Warm reboot restores
	// these through normal system calls after the system boots.
	KindData Kind = 2
)

// Entry flags.
const (
	// FlagDirty marks the buffer as newer than its disk copy; clean
	// buffers need no restoration.
	FlagDirty = 1 << 0
	// FlagChanging marks a sanctioned write in progress; if the system
	// crashes now the buffer cannot be classified by its checksum.
	FlagChanging = 1 << 1
)

// Entry is one registry record.
type Entry struct {
	Kind  Kind
	Flags uint8
	Frame uint32 // physical frame holding the buffer data
	Ino   uint32 // file inode number (KindData)
	Size  uint32 // valid bytes in the buffer
	Block int64  // disk block number (KindMeta; -1 if unassigned)
	Off   int64  // byte offset within the file (KindData)
	Cksum uint64 // kernel checksum of the buffer contents
}

// marshal serializes e (without the trailing CRC).
func (e Entry) marshal(buf []byte) {
	put16 := func(off int, v uint16) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
	}
	put32 := func(off int, v uint32) {
		for i := 0; i < 4; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put16(0, entryMagic)
	buf[2] = byte(e.Kind)
	buf[3] = e.Flags
	put32(4, e.Frame)
	put32(8, e.Ino)
	put32(12, e.Size)
	put64(16, uint64(e.Block))
	put64(24, uint64(e.Off))
	put64(32, e.Cksum)
	// bytes 40..47 reserved (zero)
	crc := kernel.CksumBytes(buf[:48])
	put64(48, crc)
	// bytes 56..63 reserved (zero)
}

// unmarshal parses an entry, validating magic and CRC.
func unmarshal(buf []byte) (Entry, bool) {
	get16 := func(off int) uint16 { return uint16(buf[off]) | uint16(buf[off+1])<<8 }
	get32 := func(off int) uint32 {
		var v uint32
		for i := 0; i < 4; i++ {
			v |= uint32(buf[off+i]) << (8 * i)
		}
		return v
	}
	get64 := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(buf[off+i]) << (8 * i)
		}
		return v
	}
	if get16(0) != entryMagic {
		return Entry{}, false
	}
	if get64(48) != kernel.CksumBytes(buf[:48]) {
		return Entry{}, false
	}
	e := Entry{
		Kind:  Kind(buf[2]),
		Flags: buf[3],
		Frame: get32(4),
		Ino:   get32(8),
		Size:  get32(12),
		Block: int64(get64(16)),
		Off:   int64(get64(24)),
		Cksum: get64(32),
	}
	if e.Kind != KindMeta && e.Kind != KindData {
		return Entry{}, false
	}
	return e, true
}

// Registry manages the registry area during normal operation.
type Registry struct {
	k      *kernel.Kernel
	frames []int
	cap    int
	free   []int
	live   map[int]Entry // slot -> last written entry (in-core mirror)

	// scratch is Mutate's working entry. Handing fn a pointer to a
	// stack local would force the local to the heap (fn is opaque to
	// escape analysis), and the write hot path mutates the registry
	// twice per block; a registry is owned by one machine goroutine,
	// so a single reusable entry is safe.
	scratch Entry

	// Protect: bracket registry stores with frame protection toggles.
	Protect bool
}

// New allocates nframes registry frames from the kernel's pool, zeroes
// them, and (if protect) write-protects them. Registry frames are always
// the first allocations after boot so that warm reboot can find them by
// convention (see Frames).
func New(k *kernel.Kernel, nframes int, protect bool) (*Registry, error) {
	if nframes <= 0 {
		return nil, fmt.Errorf("registry: need at least one frame")
	}
	r := &Registry{k: k, Protect: protect, live: make(map[int]Entry)}
	for i := 0; i < nframes; i++ {
		f := k.AllocFrame(kernel.FrameRegistry)
		if f < 0 {
			return nil, fmt.Errorf("registry: out of frames")
		}
		k.Mem.Frame(f).Registry = true
		// Zero the frame so stale bytes never parse as entries.
		k.Mem.WriteAt(mem.FrameBase(f), make([]byte, mem.PageSize))
		if protect {
			k.MMU.SetFrameProtection(f, true)
		}
		r.frames = append(r.frames, f)
	}
	r.cap = nframes * (mem.PageSize / EntrySize)
	for s := r.cap - 1; s >= 0; s-- {
		r.free = append(r.free, s)
	}
	return r, nil
}

// Frames returns the physical frames holding the registry, in order.
func (r *Registry) Frames() []int { return r.frames }

// Cap returns the registry capacity in entries.
func (r *Registry) Cap() int { return r.cap }

// LiveCount returns the number of allocated slots.
func (r *Registry) LiveCount() int { return len(r.live) }

// slotAddr returns (frame, KSEG address) of a slot.
func (r *Registry) slotAddr(slot int) (int, uint64) {
	perFrame := mem.PageSize / EntrySize
	f := r.frames[slot/perFrame]
	off := (slot % perFrame) * EntrySize
	return f, mmu.PhysToKSEG(mem.FrameBase(f) + uint64(off))
}

// store writes raw entry bytes through the MMU with the protection
// open/close discipline.
func (r *Registry) store(slot int, buf []byte) error {
	f, addr := r.slotAddr(slot)
	if r.Protect {
		r.k.MMU.SetFrameProtection(f, false)
		defer r.k.MMU.SetFrameProtection(f, true)
	}
	if trap := r.k.MMU.WriteBytes(addr, buf); trap != nil {
		return trap
	}
	return nil
}

// Alloc claims a slot and writes e into it.
func (r *Registry) Alloc(e Entry) (int, error) {
	if len(r.free) == 0 {
		return -1, fmt.Errorf("registry: full (%d entries)", r.cap)
	}
	slot := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	if err := r.Update(slot, e); err != nil {
		r.free = append(r.free, slot)
		return -1, err
	}
	return slot, nil
}

// Update rewrites slot with e.
func (r *Registry) Update(slot int, e Entry) error {
	var buf [EntrySize]byte
	e.marshal(buf[:])
	if err := r.store(slot, buf[:]); err != nil {
		return err
	}
	r.live[slot] = e
	return nil
}

// Get returns the in-core mirror of slot.
func (r *Registry) Get(slot int) (Entry, bool) {
	e, ok := r.live[slot]
	return e, ok
}

// Mutate applies fn to the slot's entry and rewrites it. Typical uses:
// set/clear FlagChanging, update the checksum after a sanctioned write.
func (r *Registry) Mutate(slot int, fn func(*Entry)) error {
	e, ok := r.live[slot]
	if !ok {
		return fmt.Errorf("registry: mutate of free slot %d", slot)
	}
	r.scratch = e
	fn(&r.scratch)
	return r.Update(slot, r.scratch)
}

// Free releases a slot, zeroing its bytes so it can never be mistaken for a
// live entry during warm reboot.
func (r *Registry) Free(slot int) error {
	if _, ok := r.live[slot]; !ok {
		return fmt.Errorf("registry: double free of slot %d", slot)
	}
	delete(r.live, slot)
	if err := r.store(slot, make([]byte, EntrySize)); err != nil {
		return err
	}
	r.free = append(r.free, slot)
	return nil
}

// ParsedEntry is an entry recovered from a memory dump.
type ParsedEntry struct {
	Entry
	Slot int
}

// Parse scans a full-memory dump for registry entries in the given frames
// (the warm-reboot path). Entries that fail the magic or CRC check are
// counted in bad and skipped — a corrupted registry region must never
// cause garbage restoration. The dump and the frame list both come from
// a crashed kernel, so neither is trusted: a truncated dump, a negative
// frame index, or a frame past the dump's end writes off that frame's
// slots as bad instead of panicking mid-recovery.
func Parse(dump []byte, frames []int) (entries []ParsedEntry, bad int) {
	perFrame := mem.PageSize / EntrySize
	for fi, f := range frames {
		// Bounds-check in frame units, not byte offsets: FrameBase of a
		// huge index wraps uint64 and would alias a small offset, slipping
		// past any check phrased as base+PageSize <= len(dump).
		if f < 0 || uint64(len(dump)) < mem.PageSize ||
			uint64(f) > (uint64(len(dump))-mem.PageSize)/mem.PageSize {
			bad += perFrame
			continue
		}
		base := mem.FrameBase(f)
		for s := 0; s < perFrame; s++ {
			off := base + uint64(s*EntrySize)
			raw := dump[off : off+EntrySize]
			if allZero(raw) {
				continue
			}
			e, ok := unmarshal(raw)
			if !ok {
				bad++
				continue
			}
			entries = append(entries, ParsedEntry{Entry: e, Slot: fi*perFrame + s})
		}
	}
	return entries, bad
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
