// Fixture: the sanctioned uses bufalias must NOT flag — working on a
// pooled buffer inside its window, copying the bytes out, propagating
// the window by returning the alias, releasing a block exactly once,
// an Into-style function that only fills its destination, and an
// annotated custody transfer.
package kernelpool

type kern struct {
	bulkBuf []byte
}

func (k *kern) scratchBytes(n int) []byte { return k.bulkBuf[:n] }

type fsT struct {
	blockPool [][]byte
	pending   [][]byte
}

func (f *fsT) getPooledBlock() []byte {
	if n := len(f.blockPool); n > 0 {
		b := f.blockPool[n-1]
		f.blockPool = f.blockPool[:n-1]
		return b
	}
	return make([]byte, 512)
}

func (f *fsT) putPooledBlock(b []byte) {
	if len(f.blockPool) < 64 {
		f.blockPool = append(f.blockPool, b)
	}
}

// sumInWindow uses the scratch strictly inside its window.
func sumInWindow(k *kern) int {
	b := k.scratchBytes(8)
	total := 0
	for _, v := range b {
		total += int(v)
	}
	return total
}

type srv struct {
	held []byte
}

// copyOut keeps bytes, not the alias: storing the copy is fine.
func copyOut(s *srv, k *kern) {
	b := k.scratchBytes(8)
	cp := make([]byte, len(b))
	copy(cp, b)
	s.held = cp
}

// wrap may return the alias: that propagates the window to the caller,
// and the caller is tracked in turn.
func wrap(k *kern) []byte { return k.scratchBytes(32) }

// useWrapped consumes the propagated alias inside the window.
func useWrapped(k *kern) byte {
	return wrap(k)[0]
}

// fillOnly writes into its argument without retaining it, so callers
// may hand it pooled buffers.
func fillOnly(dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
}

// releaseOnce uses a block, releases it, and never touches it again.
func releaseOnce(f *fsT) {
	b := f.getPooledBlock()
	fillOnly(b)
	f.putPooledBlock(b)
}

// rebindAfterPut releases a block and rebinds the name to fresh memory:
// the released alias is gone, so later uses are of the new buffer.
func rebindAfterPut(f *fsT) byte {
	b := f.getPooledBlock()
	f.putPooledBlock(b)
	b = make([]byte, 1)
	return b[0]
}

// queueOwned models the fs async-write queue: custody of the block
// moves to pending until a drain releases it, annotated as sanctioned.
func (f *fsT) queueOwned() {
	cp := f.getPooledBlock()
	//riolint:bufalias fixture custody transfer: pending owns cp until drained
	f.pending = append(f.pending, cp)
}

type cacheT struct {
	data []byte
}

// ReadInto fills dst and forgets it: the zero-copy contract holds.
func (c *cacheT) ReadInto(off int, dst []byte) {
	copy(dst, c.data[off:])
}

// framePoolT mimics internal/server's wire-frame pool.
type framePoolT struct {
	frameBufs [][]byte
}

func (p *framePoolT) get() []byte {
	if n := len(p.frameBufs); n > 0 {
		b := p.frameBufs[n-1]
		p.frameBufs = p.frameBufs[:n-1]
		return b
	}
	return make([]byte, 0, 4096)
}

func (p *framePoolT) putFrameBuf(b []byte) {
	if len(p.frameBufs) < 64 {
		p.frameBufs = append(p.frameBufs, b[:0])
	}
}

// serveFrame is the sanctioned frame lifecycle: get, fill via the
// zero-copy contract surface, return the alias (the window propagates
// to the caller, who is tracked in turn).
func serveFrame(p *framePoolT, c *cacheT) []byte {
	frame := p.get()
	frame = append(frame, make([]byte, 16)...)
	c.ReadDirect(0, frame[4:12])
	return frame
}

// releaseFrameOnce fills a frame, releases it exactly once, never
// touches it again.
func releaseFrameOnce(p *framePoolT, c *cacheT) {
	frame := serveFrame(p, c)
	p.putFrameBuf(frame)
}

// ReadDirect fills dst and forgets it: the zero-copy contract holds.
func (c *cacheT) ReadDirect(off int, dst []byte) {
	copy(dst, c.data[off:])
}
