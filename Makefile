# Tier-1 gate: `make check` runs the same commands CI should — build,
# vet, tests, and the race detector over the concurrent campaign
# scheduler (scripts/check.sh is the single source of truth).

.PHONY: check build test race bench

check:
	sh scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/crashtest/...

bench:
	go test -run '^$$' -bench . -benchtime 1x .
