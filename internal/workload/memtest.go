// Package workload implements the paper's workloads: memTest (the
// crash-test oracle workload of §3.2), and the three performance workloads
// of Table 2 — cp+rm, Sdet, and Andrew.
package workload

import (
	"bytes"
	"fmt"
	"sort"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// OpKind labels memTest operations.
type OpKind int

const (
	OpCreate OpKind = iota
	OpAppend
	OpOverwrite
	OpRead
	OpDelete
	OpMkdir
	OpStat
	OpSymlink
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpAppend:
		return "append"
	case OpOverwrite:
		return "overwrite"
	case OpRead:
		return "read"
	case OpDelete:
		return "delete"
	case OpMkdir:
		return "mkdir"
	case OpStat:
		return "stat"
	case OpSymlink:
		return "symlink"
	default:
		return "?"
	}
}

// OpRecord describes one memTest operation; the record of the op in flight
// when a crash hits tells Verify which byte range is indeterminate.
type OpRecord struct {
	Kind OpKind
	Path string
	Off  int64
	Len  int64
	// PrevSize is the file size before an append/overwrite (the verifier
	// accepts any size between PrevSize and the post-op size).
	PrevSize int64
}

// Corruption describes one verified mismatch between the oracle and the
// recovered file system.
type Corruption struct {
	Path   string
	Detail string
}

func (c Corruption) String() string { return c.Path + ": " + c.Detail }

// MemTest is the repeatable oracle workload: a PRNG-driven stream of file
// and directory creations, deletions, reads, and writes whose correct
// state is known at every instant.
type MemTest struct {
	// WriteThrough makes memTest call fsync after every write, as the
	// paper's disk-based baseline runs do.
	WriteThrough bool
	// MaxBytes bounds the file-set size (the paper used 100 MB; scaled
	// here).
	MaxBytes int

	rng       *sim.Rand
	oracle    map[string][]byte
	names     []string // deterministic ordering of oracle keys
	links     map[string]string
	linkNames []string
	dirs      []string
	steps     int
	total     int

	// InFlight is the op that was executing when the last Step returned
	// an error (nil after every successful Step).
	InFlight *OpRecord

	// ReadMismatches counts online read verification failures (data
	// returned to the "application" that disagreed with the oracle).
	ReadMismatches int
}

// NewMemTest returns a memTest stream for the given seed.
func NewMemTest(seed uint64, maxBytes int) *MemTest {
	return &MemTest{
		MaxBytes: maxBytes,
		rng:      sim.NewRand(seed),
		oracle:   make(map[string][]byte),
		links:    make(map[string]string),
		dirs:     []string{""},
	}
}

// Steps returns the number of completed operations.
func (mt *MemTest) Steps() int { return mt.steps }

// FileCount returns the current oracle file count.
func (mt *MemTest) FileCount() int { return len(mt.oracle) }

func (mt *MemTest) dirPath() string {
	return mt.dirs[mt.rng.Intn(len(mt.dirs))]
}

// pickFile returns a uniformly random live file. Selection uses the names
// slice, never map iteration, so a given seed always produces the same
// stream — crash runs must be replayable from their seed.
func (mt *MemTest) pickFile() string {
	if len(mt.names) == 0 {
		return ""
	}
	return mt.names[mt.rng.Intn(len(mt.names))]
}

func (mt *MemTest) addName(p string) { mt.names = append(mt.names, p) }
func (mt *MemTest) removeName(p string) {
	for i, n := range mt.names {
		if n == p {
			mt.names[i] = mt.names[len(mt.names)-1]
			mt.names = mt.names[:len(mt.names)-1]
			return
		}
	}
}

// Step executes the next operation against fsys. On a crash the error is
// returned and InFlight records the interrupted op.
func (mt *MemTest) Step(fsys *fs.FS) error {
	mt.steps++
	r := mt.rng.Float64()
	switch {
	case r < 0.22 || len(mt.oracle) == 0:
		return mt.doCreate(fsys)
	case r < 0.45:
		return mt.doAppend(fsys)
	case r < 0.60:
		return mt.doOverwrite(fsys)
	case r < 0.75:
		return mt.doRead(fsys)
	case r < 0.85:
		return mt.doDelete(fsys)
	case r < 0.90:
		return mt.doMkdir(fsys)
	case r < 0.95:
		return mt.doSymlink(fsys)
	default:
		return mt.doStat(fsys)
	}
}

// noteBytes enforces MaxBytes by deleting a file when over budget.
func (mt *MemTest) overBudget() bool { return mt.total > mt.MaxBytes }

func (mt *MemTest) content(n int) []byte {
	return kernel.FillBytes(n, mt.rng.Uint64()|1)
}

func (mt *MemTest) doCreate(fsys *fs.FS) error {
	if mt.overBudget() {
		return mt.doDelete(fsys)
	}
	name := fmt.Sprintf("%s/mt%06d", mt.dirPath(), mt.steps)
	size := mt.pickSize()
	data := mt.content(size)
	mt.InFlight = &OpRecord{Kind: OpCreate, Path: name, Len: int64(size)}
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if mt.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	mt.oracle[name] = data
	mt.addName(name)
	mt.total += size
	mt.InFlight = nil
	return nil
}

// pickSize draws a file/write size skewed towards small files with an
// occasional multi-block one, echoing real file-size distributions.
func (mt *MemTest) pickSize() int {
	switch p := mt.rng.Float64(); {
	case p < 0.5:
		return mt.rng.Range(1, 2048)
	case p < 0.85:
		return mt.rng.Range(2048, fs.BlockSize)
	default:
		return mt.rng.Range(fs.BlockSize, 3*fs.BlockSize)
	}
}

func (mt *MemTest) doAppend(fsys *fs.FS) error {
	path := mt.pickFile()
	if path == "" {
		return mt.doCreate(fsys)
	}
	old := mt.oracle[path]
	data := mt.content(mt.pickSize())
	mt.InFlight = &OpRecord{Kind: OpAppend, Path: path,
		Off: int64(len(old)), Len: int64(len(data)), PrevSize: int64(len(old))}
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, int64(len(old))); err != nil {
		return err
	}
	if mt.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	mt.oracle[path] = append(append([]byte{}, old...), data...)
	mt.total += len(data)
	mt.InFlight = nil
	return nil
}

func (mt *MemTest) doOverwrite(fsys *fs.FS) error {
	path := mt.pickFile()
	if path == "" {
		return mt.doCreate(fsys)
	}
	old := mt.oracle[path]
	if len(old) == 0 {
		return mt.doAppend(fsys)
	}
	off := int64(mt.rng.Intn(len(old)))
	n := mt.rng.Range(1, len(old)-int(off))
	data := mt.content(n)
	mt.InFlight = &OpRecord{Kind: OpOverwrite, Path: path,
		Off: off, Len: int64(n), PrevSize: int64(len(old))}
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		return err
	}
	if mt.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	fresh := append([]byte{}, old...)
	copy(fresh[off:], data)
	mt.oracle[path] = fresh
	mt.InFlight = nil
	return nil
}

func (mt *MemTest) doRead(fsys *fs.FS) error {
	path := mt.pickFile()
	if path == "" {
		return mt.doCreate(fsys)
	}
	want := mt.oracle[path]
	mt.InFlight = &OpRecord{Kind: OpRead, Path: path}
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	buf := make([]byte, len(want))
	if _, err := f.ReadAt(buf, 0); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !bytes.Equal(buf, want) {
		mt.ReadMismatches++
	}
	mt.InFlight = nil
	return nil
}

func (mt *MemTest) doDelete(fsys *fs.FS) error {
	path := mt.pickFile()
	if path == "" {
		return mt.doCreate(fsys)
	}
	mt.InFlight = &OpRecord{Kind: OpDelete, Path: path}
	if err := fsys.Unlink(path); err != nil {
		return err
	}
	mt.total -= len(mt.oracle[path])
	delete(mt.oracle, path)
	mt.removeName(path)
	mt.InFlight = nil
	return nil
}

func (mt *MemTest) doMkdir(fsys *fs.FS) error {
	if len(mt.dirs) >= 8 {
		return mt.doStat(fsys)
	}
	name := fmt.Sprintf("%s/d%03d", mt.dirPath(), len(mt.dirs))
	mt.InFlight = &OpRecord{Kind: OpMkdir, Path: name}
	if err := fsys.Mkdir(name); err != nil {
		return err
	}
	mt.dirs = append(mt.dirs, name)
	mt.InFlight = nil
	return nil
}

// doSymlink creates a link to a live file (and occasionally retires one),
// exercising the symbolic-link metadata the paper notes lives in the
// buffer cache.
func (mt *MemTest) doSymlink(fsys *fs.FS) error {
	if len(mt.linkNames) > 12 {
		link := mt.linkNames[mt.rng.Intn(len(mt.linkNames))]
		mt.InFlight = &OpRecord{Kind: OpDelete, Path: link}
		if err := fsys.Unlink(link); err != nil {
			return err
		}
		delete(mt.links, link)
		for i, n := range mt.linkNames {
			if n == link {
				mt.linkNames[i] = mt.linkNames[len(mt.linkNames)-1]
				mt.linkNames = mt.linkNames[:len(mt.linkNames)-1]
				break
			}
		}
		mt.InFlight = nil
		return nil
	}
	target := mt.pickFile()
	if target == "" {
		return mt.doCreate(fsys)
	}
	name := fmt.Sprintf("%s/mtln%06d", mt.dirPath(), mt.steps)
	mt.InFlight = &OpRecord{Kind: OpSymlink, Path: name}
	if err := fsys.Symlink(target, name); err != nil {
		return err
	}
	mt.links[name] = target
	mt.linkNames = append(mt.linkNames, name)
	mt.InFlight = nil
	// Online check: read through the link and compare to the oracle.
	f, err := fsys.Open(name)
	if err != nil {
		return err
	}
	want := mt.oracle[target]
	buf := make([]byte, len(want))
	if _, err := f.ReadAt(buf, 0); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !bytes.Equal(buf, want) {
		mt.ReadMismatches++
	}
	return nil
}

func (mt *MemTest) doStat(fsys *fs.FS) error {
	path := mt.pickFile()
	if path == "" {
		return mt.doCreate(fsys)
	}
	mt.InFlight = &OpRecord{Kind: OpStat, Path: path}
	st, err := fsys.Stat(path)
	if err != nil {
		return err
	}
	if st.Size != int64(len(mt.oracle[path])) {
		mt.ReadMismatches++
	}
	mt.InFlight = nil
	return nil
}

// Verify compares the recovered file system against the oracle, excluding
// the byte range (and existence) touched by the in-flight op. It mirrors
// the paper's procedure of replaying memTest to the crash point and
// diffing the reconstructed directory against the restored one.
func (mt *MemTest) Verify(fsys *fs.FS) []Corruption {
	var out []Corruption
	inflight := func(path string) *OpRecord {
		if mt.InFlight != nil && mt.InFlight.Path == path {
			return mt.InFlight
		}
		return nil
	}

	// Verification reads go through the real cache and I/O stack, so
	// their order is simulation state; walk the oracle in sorted path
	// order, not map order.
	paths := make([]string, 0, len(mt.oracle))
	for path := range mt.oracle {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		want := mt.oracle[path]
		fl := inflight(path)
		if fl != nil && fl.Kind == OpDelete {
			continue // may be gone or present; both fine
		}
		f, err := fsys.Open(path)
		if err != nil {
			out = append(out, Corruption{path, "missing: " + err.Error()})
			continue
		}
		st, err := fsys.Stat(path)
		if err != nil {
			out = append(out, Corruption{path, "stat failed: " + err.Error()})
			f.Close()
			continue
		}
		// Size check.
		okSize := st.Size == int64(len(want))
		if fl != nil && (fl.Kind == OpAppend || fl.Kind == OpOverwrite) {
			lo, hi := fl.PrevSize, int64(len(want))
			if fl.Off+fl.Len > hi {
				hi = fl.Off + fl.Len
			}
			okSize = st.Size >= lo && st.Size <= hi
		}
		if !okSize {
			out = append(out, Corruption{path,
				fmt.Sprintf("size %d, want %d", st.Size, len(want))})
			f.Close()
			continue
		}
		n := st.Size
		if int64(len(want)) < n {
			n = int64(len(want))
		}
		got := make([]byte, n)
		if _, err := f.ReadAt(got, 0); err != nil {
			out = append(out, Corruption{path, "read failed: " + err.Error()})
			f.Close()
			continue
		}
		f.Close()
		// Byte compare, masking the in-flight range.
		var lo, hi int64 = -1, -1
		if fl != nil && (fl.Kind == OpAppend || fl.Kind == OpOverwrite) {
			lo, hi = fl.Off, fl.Off+fl.Len
		}
		for i := int64(0); i < n; i++ {
			if i >= lo && i < hi {
				continue
			}
			if got[i] != want[i] {
				out = append(out, Corruption{path,
					fmt.Sprintf("byte %d: got %#x, want %#x", i, got[i], want[i])})
				break
			}
		}
	}

	// Symbolic links: each recorded link must still point at its target
	// (sorted order, for the same reason as above).
	links := make([]string, 0, len(mt.links))
	for link := range mt.links {
		links = append(links, link)
	}
	sort.Strings(links)
	for _, link := range links {
		target := mt.links[link]
		if fl := inflight(link); fl != nil {
			continue // creation or deletion was in flight; either state is fine
		}
		got, err := fsys.Readlink(link)
		if err != nil {
			out = append(out, Corruption{link, "link lost: " + err.Error()})
			continue
		}
		if got != target {
			out = append(out, Corruption{link,
				fmt.Sprintf("link target %q, want %q", got, target)})
		}
	}

	// Files that exist but shouldn't.
	seen := map[string]bool{}
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				walk(p)
				continue
			}
			if e.IsSymlink {
				if _, ok := mt.links[p]; ok {
					continue
				}
				fl := inflight(p)
				if fl != nil && (fl.Kind == OpSymlink || fl.Kind == OpDelete) {
					continue
				}
				if isMemTestPath(p) {
					out = append(out, Corruption{p, "unexpected symlink"})
				}
				continue
			}
			seen[p] = true
			if _, ok := mt.oracle[p]; !ok {
				fl := inflight(p)
				if fl != nil && fl.Kind == OpCreate {
					continue // create was in flight; existing is fine
				}
				if !isMemTestPath(p) {
					continue // not ours (static files etc.)
				}
				out = append(out, Corruption{p, "unexpected file"})
			}
		}
	}
	walk("/")
	return out
}

// isMemTestPath reports whether memTest owns the path.
func isMemTestPath(p string) bool {
	for i := 0; i+2 < len(p); i++ {
		if p[i] == '/' && p[i+1] == 'm' && p[i+2] == 't' {
			return true
		}
	}
	return false
}
