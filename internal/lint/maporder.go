package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `for … range` over a map value in determinism-critical
// packages when the loop body has order-sensitive effects: Go randomizes
// map iteration order per run, so any effect whose outcome depends on
// visit order (appends, calls with side effects, channel sends, returns,
// non-commutative writes to outer variables) makes the result differ
// between identical seeded runs. This is the PR-2 bug class: map order
// leaked through cache.DropFileData and kernel.FramesOf into free-list
// order, and from there into the disk-op order that a fault plan keys on.
//
// Benign bodies are not flagged: purely local computation, commutative
// accumulation into outer numeric variables (n += x, n++), writes to
// distinct keys of another map indexed by the range key, and deletes.
// The canonical fix — append into a slice, then sort it immediately
// after the loop — is recognized and passes. Anything else needs
// `//riolint:ordered <reason>`.
var Maporder = &Analyzer{
	Name:      "maporder",
	Directive: "ordered",
	Doc:       "order-sensitive effects inside range-over-map loops in determinism-critical packages",
	Run:       runMaporder,
}

// mapEffect is one order-sensitive effect found in a range body.
type mapEffect struct {
	pos  token.Pos
	desc string
	// appendTo is the outer variable receiving an append, if this effect
	// is one; such effects are forgiven when the target is sorted right
	// after the loop.
	appendTo types.Object
}

func runMaporder(p *Pass) {
	if !detPackages[p.Pkg.Name] {
		return
	}
	for _, f := range p.Pkg.Files {
		// Range statements occur only in statement lists; visiting every
		// list also hands us the statements that follow each loop, which
		// the sorted-after exoneration needs.
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, stmt := range list {
				rng := asRangeStmt(stmt)
				if rng == nil {
					continue
				}
				checkMapRange(p, rng, list[i+1:])
			}
			return true
		})
	}
}

func asRangeStmt(stmt ast.Stmt) *ast.RangeStmt {
	if l, ok := stmt.(*ast.LabeledStmt); ok {
		stmt = l.Stmt
	}
	rng, _ := stmt.(*ast.RangeStmt)
	return rng
}

func checkMapRange(p *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	effects := collectMapEffects(p, rng)
	if len(effects) == 0 {
		return
	}
	// Collect-then-sort: if every effect is an append and every appended
	// slice is sorted immediately after the loop, order is laundered out.
	allSorted := true
	for _, e := range effects {
		if e.appendTo == nil || !sortedAfter(p, rest, e.appendTo) {
			allSorted = false
			break
		}
	}
	if allSorted {
		return
	}
	descs := make([]string, 0, 3)
	for _, e := range effects {
		line := p.Fset.Position(e.pos).Line
		descs = append(descs, fmt.Sprintf("%s (line %d)", e.desc, line))
		if len(descs) == 3 {
			break
		}
	}
	more := ""
	if n := len(effects) - len(descs); n > 0 {
		more = fmt.Sprintf(" and %d more", n)
	}
	p.Reportf(rng.Pos(),
		"iteration order of map %s is random but the loop body is order-sensitive: %s%s; iterate sorted keys, sort the result, or annotate //riolint:ordered <reason>",
		types.ExprString(rng.X), strings.Join(descs, ", "), more)
}

// collectMapEffects walks a range body and returns its order-sensitive
// effects. Function literals are walked too: their bodies run (or leak)
// per iteration.
func collectMapEffects(p *Pass, rng *ast.RangeStmt) []mapEffect {
	isLocal := func(obj types.Object) bool {
		return obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End())
	}
	keyObj := definedVar(p, rng.Key)
	localBase := func(e ast.Expr) (types.Object, bool) {
		id := baseIdent(e)
		if id == nil {
			return nil, false // unresolvable target: assume the worst
		}
		if id.Name == "_" {
			return nil, true
		}
		obj := p.ObjectOf(id)
		return obj, isLocal(obj)
	}

	var effects []mapEffect
	add := func(pos token.Pos, format string, args ...any) {
		effects = append(effects, mapEffect{pos: pos, desc: fmt.Sprintf(format, args...)})
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			add(s.Pos(), "channel send")

		case *ast.ReturnStmt:
			add(s.Pos(), "return inside the loop (which iteration returns depends on order)")

		case *ast.IncDecStmt:
			// ++/-- on anything is commutative accumulation.
			return true

		case *ast.AssignStmt:
			checkMapAssign(p, s, keyObj, localBase, &effects)
			// Walk the RHS for calls, but the assignment itself is handled.
			for _, r := range s.Rhs {
				ast.Inspect(r, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok {
						checkMapCall(p, c, rng, localBase, add)
					}
					return true
				})
			}
			return false

		case *ast.CallExpr:
			checkMapCall(p, s, rng, localBase, add)
			return true
		}
		return true
	})
	return effects
}

// checkMapAssign classifies one assignment inside a range-over-map body.
func checkMapAssign(p *Pass, s *ast.AssignStmt, keyObj types.Object,
	localBase func(ast.Expr) (types.Object, bool), effects *[]mapEffect) {
	for i, lhs := range s.Lhs {
		obj, local := localBase(lhs)
		if local {
			continue
		}
		if obj == nil {
			*effects = append(*effects, mapEffect{pos: lhs.Pos(),
				desc: fmt.Sprintf("write to %s", types.ExprString(lhs))})
			continue
		}
		// x = append(x, ...): forgivable if x is sorted after the loop.
		if len(s.Rhs) == len(s.Lhs) {
			if call, ok := unparen(s.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(p, call, "append") {
				*effects = append(*effects, mapEffect{pos: s.Pos(),
					desc: fmt.Sprintf("append to %s", obj.Name()), appendTo: obj})
				continue
			}
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
			// Commutative on numbers (min/max/sum-style accumulators);
			// string += is concatenation and stays order-sensitive.
			if t := p.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
					continue
				}
			}
		case token.ASSIGN, token.DEFINE:
			// m[key] = v writes a distinct element per iteration.
			if idx, ok := unparen(lhs).(*ast.IndexExpr); ok && keyObj != nil && usesObject(p, idx.Index, keyObj) {
				continue
			}
		}
		*effects = append(*effects, mapEffect{pos: s.Pos(),
			desc: fmt.Sprintf("write to outer %s", obj.Name())})
	}
}

// checkMapCall classifies one call inside a range-over-map body.
func checkMapCall(p *Pass, call *ast.CallExpr, rng *ast.RangeStmt,
	localBase func(ast.Expr) (types.Object, bool), add func(token.Pos, string, ...any)) {
	// Conversions are pure.
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := p.ObjectOf(id).(*types.Builtin); isB {
			switch id.Name {
			case "append":
				// Handled at the assignment; a bare append is a no-op.
				return
			case "copy":
				if len(call.Args) == 2 {
					if _, local := localBase(call.Args[0]); local {
						return
					}
					add(call.Pos(), "copy into outer %s", types.ExprString(call.Args[0]))
				}
				return
			case "panic":
				// Aborts the loop; which violation paniced first is not a
				// simulated outcome.
				return
			default:
				// len, cap, make, new, delete, min, max, ... are order-blind.
				return
			}
		}
	}
	add(call.Pos(), "call to %s", types.ExprString(call.Fun))
}

// sortedAfter reports whether obj is passed to a sort.* / slices.* call
// in one of the statements directly following the loop.
func sortedAfter(p *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fo := p.ObjectOf(sel.Sel)
		if fo == nil || fo.Pkg() == nil || (fo.Pkg().Path() != "sort" && fo.Pkg().Path() != "slices") {
			continue
		}
		for _, arg := range call.Args {
			if id := baseIdent(arg); id != nil && p.ObjectOf(id) == obj {
				return true
			}
		}
	}
	return false
}

// definedVar returns the object of a range key/value identifier.
func definedVar(p *Pass, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.ObjectOf(id)
}

// usesObject reports whether expr mentions obj.
func usesObject(p *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := p.ObjectOf(id).(*types.Builtin)
	return isB
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
