package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module (or a
// standalone fixture directory).
type Package struct {
	Path  string // import path ("rio/internal/cache")
	Name  string // package name ("cache")
	Dir   string // absolute directory
	Files []*ast.File
	// Sources holds each file's raw lines, for suppression-comment
	// placement (filename as reported by the FileSet).
	Sources map[string][]string
	Types   *types.Package
	Info    *types.Info

	imports []string // module-internal import paths (load order)
}

// A Loader parses and type-checks packages with a shared FileSet and a
// shared source importer for the standard library (go/importer "source":
// stdlib dependencies are type-checked from GOROOT sources — slow on
// first touch, cached after — keeping riolint free of x/tools and of the
// go command).
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds in-package _test.go files (external foo_test
	// packages are always skipped).
	IncludeTests bool

	std    types.Importer
	byPath map[string]*Package
	// Type-checked results are cached so repeated loads — every
	// analyzer pass of a riolint run, every fixture test sharing the
	// package loader — parse and type-check each package once.
	modCache map[string][]*Package
	dirCache map[string]*Package
}

// NewLoader returns a Loader with an empty package cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		byPath:   make(map[string]*Package),
		modCache: make(map[string][]*Package),
		dirCache: make(map[string]*Package),
	}
}

// cacheKey distinguishes loads whose file sets differ.
func (l *Loader) cacheKey(path string) string {
	if l.IncludeTests {
		return path + "|tests"
	}
	return path
}

// modImporter resolves module-internal imports from the loader's cache
// (already type-checked, thanks to topological order) and everything
// else from the standard library.
type modImporter struct {
	l          *Loader
	modulePath string
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/") {
		p := m.l.byPath[path]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("internal package %s not loaded (import cycle?)", path)
		}
		return p.Types, nil
	}
	return m.l.std.Import(path)
}

// LoadModule discovers, parses, and type-checks every package under the
// module rooted at root (the directory holding go.mod), in dependency
// order. testdata, hidden, and underscore-prefixed directories are
// skipped, as the go tool does.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if cached, ok := l.modCache[l.cacheKey(root)]; ok {
		return cached, nil
	}
	modulePath, err := modulePathOf(root)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		pkg, err := l.parseDir(path, importPathFor(modulePath, root, path))
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ordered, err := topoSort(pkgs, modulePath)
	if err != nil {
		return nil, err
	}
	for _, pkg := range ordered {
		if err := l.check(pkg, modulePath); err != nil {
			return nil, err
		}
	}
	l.modCache[l.cacheKey(root)] = ordered
	return ordered, nil
}

// LoadDir parses and type-checks a single directory as a standalone
// package (fixture directories under testdata, which LoadModule skips).
// Module-internal imports are not resolvable from here; fixtures import
// only the standard library.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if cached, ok := l.dirCache[l.cacheKey(dir)]; ok {
		return cached, nil
	}
	pkg, err := l.parseDir(dir, "fixture/"+filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err := l.check(pkg, "\x00no-module"); err != nil {
		return nil, err
	}
	l.dirCache[l.cacheKey(dir)] = pkg
	return pkg, nil
}

// parseDir parses the Go files of one directory, or returns (nil, nil)
// if it holds none. Mixed package names (excluding external test
// packages) are an error.
func (l *Loader) parseDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir, Sources: make(map[string][]string)}
	importSet := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			if strings.HasSuffix(f.Name.Name, "_test") {
				continue // external test package: out of scope
			}
			return nil, fmt.Errorf("lint: %s: mixed package names %q and %q", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Sources[l.Fset.Position(f.Pos()).Filename] = strings.Split(string(src), "\n")
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	for imp := range importSet {
		pkg.imports = append(pkg.imports, imp)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// check type-checks one package; its module-internal imports must
// already be in the cache.
func (l *Loader) check(pkg *Package, modulePath string) error {
	var errs []error
	conf := types.Config{
		Importer: &modImporter{l: l, modulePath: modulePath},
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(pkg.Path, l.Fset, pkg.Files, pkg.Info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("lint: type errors in %s:\n\t%s", pkg.Path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return fmt.Errorf("lint: %s: %v", pkg.Path, err)
	}
	pkg.Types = tpkg
	l.byPath[pkg.Path] = pkg
	return nil
}

// modulePathOf reads the module path from root/go.mod.
func modulePathOf(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

func importPathFor(modulePath, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

// topoSort orders packages so that every module-internal import precedes
// its importer.
func topoSort(pkgs []*Package, modulePath string) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	const (
		white = iota
		grey
		black
	)
	state := make(map[*Package]int)
	var ordered []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(chain, " -> "), p.Path)
		}
		state[p] = grey
		for _, imp := range p.imports {
			if imp != modulePath && !strings.HasPrefix(imp, modulePath+"/") {
				continue
			}
			dep := byPath[imp]
			if dep == nil {
				return fmt.Errorf("lint: %s imports %s, which was not found in the module", p.Path, imp)
			}
			if err := visit(dep, append(chain, p.Path)); err != nil {
				return err
			}
		}
		state[p] = black
		ordered = append(ordered, p)
		return nil
	}
	// Deterministic order regardless of WalkDir quirks.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	for _, p := range pkgs {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
