// Perftable: regenerate the paper's Table 2 at reduced scale.
//
// Runs cp+rm, Sdet, and Andrew under all eight file-system configurations
// and prints the timing table plus the headline speedups (Rio vs the
// write-through, default-UFS, and delayed baselines).
//
// Run: go run ./examples/perftable
package main

import (
	"fmt"
	"log"
	"os"

	"rio"
)

func main() {
	res, err := rio.RunPerfTable(rio.PerfOptions{
		Scale:    0.5, // half-size workloads: quick but representative
		Progress: func(s string) { fmt.Fprintln(os.Stderr, s) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 2 (simulated time, scaled workloads)")
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()

	sp := res.Speedups()
	fmt.Printf("Rio vs write-through-on-write: %.1fx / %.1fx / %.1fx (paper band: 4-22x)\n",
		sp.VsWriteThroughWrite[0], sp.VsWriteThroughWrite[1], sp.VsWriteThroughWrite[2])
	fmt.Printf("Rio vs default UFS:            %.1fx / %.1fx / %.1fx (paper band: 2-14x)\n",
		sp.VsUFS[0], sp.VsUFS[1], sp.VsUFS[2])
	fmt.Printf("Rio vs delayed UFS:            %.1fx / %.1fx / %.1fx (paper band: 1-3x)\n",
		sp.VsDelayed[0], sp.VsDelayed[1], sp.VsDelayed[2])
	fmt.Printf("Rio vs memory file system:     %.2fx / %.2fx / %.2fx (paper: ~1x)\n",
		sp.VsMFS[0], sp.VsMFS[1], sp.VsMFS[2])
}
