package warmreboot

import (
	"bytes"
	"testing"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/mem"
	"rio/internal/mmu"
)

func rioMachine(t *testing.T, protect bool) *machine.Machine {
	t.Helper()
	pol := fs.DefaultPolicy(fs.PolicyRio)
	pol.Protect = protect
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func put(t *testing.T, m *machine.Machine, path string, data []byte) {
	t.Helper()
	f, err := m.FS.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func get(t *testing.T, m *machine.Machine, path string) []byte {
	t.Helper()
	f, err := m.FS.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	st, _ := m.FS.Stat(path)
	buf := make([]byte, st.Size)
	f.ReadAt(buf, 0)
	f.Close()
	return buf
}

func TestWarmRebootRecoversDirtyFiles(t *testing.T) {
	for _, protect := range []bool{false, true} {
		m := rioMachine(t, protect)
		preWrites := m.Disk.Stats.Writes // mkfs commits count as writes
		m.FS.Mkdir("/dir")
		a := kernel.FillBytes(3*fs.BlockSize+17, 11)
		b := []byte("small file contents")
		put(t, m, "/dir/a", a)
		put(t, m, "/b", b)

		// Nothing reached the disk (Rio), then the system "crashes".
		if m.Disk.Stats.Writes != preWrites {
			t.Fatal("precondition: Rio wrote to disk")
		}
		m.Kernel.Panic("injected test crash")
		m.CrashFinish()

		rep, err := Warm(m)
		if err != nil {
			t.Fatalf("protect=%v: %v", protect, err)
		}
		if rep.MetaRestored == 0 || rep.DataRestored == 0 {
			t.Fatalf("protect=%v: nothing restored: %v", protect, rep)
		}
		if rep.ChecksumMismatches != 0 {
			t.Fatalf("protect=%v: phantom corruption: %v", protect, rep)
		}
		if got := get(t, m, "/dir/a"); !bytes.Equal(got, a) {
			t.Fatalf("protect=%v: /dir/a corrupted after warm reboot", protect)
		}
		if got := get(t, m, "/b"); !bytes.Equal(got, b) {
			t.Fatalf("protect=%v: /b corrupted after warm reboot", protect)
		}
	}
}

func TestWarmRebootSurvivesDeletes(t *testing.T) {
	m := rioMachine(t, true)
	put(t, m, "/keep", []byte("keep me"))
	put(t, m, "/kill", []byte("delete me"))
	if err := m.FS.Unlink("/kill"); err != nil {
		t.Fatal(err)
	}
	m.Kernel.Panic("crash")
	m.CrashFinish()
	if _, err := Warm(m); err != nil {
		t.Fatal(err)
	}
	if string(get(t, m, "/keep")) != "keep me" {
		t.Fatal("survivor lost")
	}
	if _, err := m.FS.Open("/kill"); err != fs.ErrNotFound {
		t.Fatalf("deleted file resurrected: %v", err)
	}
}

func TestWarmRebootDetectsWildStore(t *testing.T) {
	// Protection off; a wild store corrupts a file page; the checksum
	// mechanism must notice at reboot.
	m := rioMachine(t, false)
	put(t, m, "/f", kernel.FillBytes(fs.BlockSize, 3))
	b := m.Cache.LookupData(2, 0) // ino 2 = first file
	if b == nil {
		// inode numbering may differ; find any data buffer
		all := m.Cache.All(1)
		if len(all) == 0 {
			t.Fatal("no data buffers")
		}
		b = all[0]
	}
	m.Mem.FlipBit(mem.FrameBase(b.Frame)+100, 4) // direct corruption
	m.Kernel.Panic("crash")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches == 0 {
		t.Fatalf("wild store not detected: %v", rep)
	}
}

func TestWarmRebootIgnoresGarbageRegistry(t *testing.T) {
	m := rioMachine(t, false)
	put(t, m, "/f", []byte("data"))
	// Corrupt one registry entry.
	f := m.Reg.Frames()[0]
	m.Mem.FlipBit(mem.FrameBase(f)+8, 2)
	m.Kernel.Panic("crash")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadEntries == 0 {
		t.Fatal("corrupt registry entry not rejected")
	}
}

func TestWarmRebootMidWriteShadow(t *testing.T) {
	// Crash during a metadata shadow update: warm reboot must see either
	// the old or the new metadata, never a torn block. We simulate the
	// "during" state by flipping the registry to the shadow manually —
	// easier: verify that after many create+crash cycles the volume is
	// always consistent.
	m := rioMachine(t, true)
	for i := 0; i < 5; i++ {
		put(t, m, "/f"+string(rune('a'+i)), []byte{byte(i)})
		m.Kernel.Panic("crash")
		m.CrashFinish()
		rep, err := Warm(m)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Fsck.Clean() {
			t.Fatalf("iteration %d: volume inconsistent after warm reboot: %v", i, rep.Fsck)
		}
	}
	// All five files intact.
	for i := 0; i < 5; i++ {
		got := get(t, m, "/f"+string(rune('a'+i)))
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("file %d lost", i)
		}
	}
}

func TestColdRebootLosesMemory(t *testing.T) {
	m := rioMachine(t, false)
	put(t, m, "/memonly", []byte("never hit disk"))
	m.Kernel.Panic("crash")
	m.CrashFinish()
	if _, err := Cold(m, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Open("/memonly"); err != fs.ErrNotFound {
		t.Fatalf("cold reboot kept memory-only file: %v", err)
	}
}

func TestColdRebootKeepsDiskData(t *testing.T) {
	// Write-through system: data on disk survives a cold reboot.
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyUFSWTWrite))
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	put(t, m, "/durable", []byte("written through"))
	m.Kernel.Panic("crash")
	m.CrashFinish()
	if _, err := Cold(m, 7); err != nil {
		t.Fatal(err)
	}
	if string(get(t, m, "/durable")) != "written through" {
		t.Fatal("write-through data lost on cold reboot")
	}
}

func TestWarmRebootAfterRealProtectionCrash(t *testing.T) {
	// End-to-end: a genuine wild store trips protection, the machine
	// halts, warm reboot recovers everything.
	m := rioMachine(t, true)
	data := kernel.FillBytes(2*fs.BlockSize, 21)
	put(t, m, "/precious", data)

	// Wild store into a protected UBC frame via KSEG (as a buggy kernel
	// procedure would).
	frames := m.Kernel.FramesOf(kernel.FrameUBC)
	if len(frames) == 0 {
		t.Fatal("no UBC frames")
	}
	trap := m.MMU.StoreByte(mmu.PhysToKSEG(mem.FrameBase(frames[0])+50), 0xde)
	if trap == nil {
		t.Fatal("protection did not trap the wild store")
	}
	m.Kernel.Panic("protection trap: " + trap.Error())
	m.CrashFinish()

	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches != 0 {
		t.Fatalf("corruption slipped through protection: %v", rep)
	}
	if got := get(t, m, "/precious"); !bytes.Equal(got, data) {
		t.Fatal("file corrupted despite protection")
	}
}

func TestWarmRebootEmptyCache(t *testing.T) {
	m := rioMachine(t, false)
	m.Kernel.Panic("immediate crash")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataRestored != 0 {
		t.Fatalf("restored phantom data: %v", rep)
	}
	// FS still usable.
	put(t, m, "/after", []byte("ok"))
}
