package fs_test

import (
	"bytes"
	"errors"
	"testing"

	"rio/internal/disk"
	"rio/internal/fs"
	"rio/internal/ioretry"
)

// TestRetriesSurviveTransientFaults mounts over a disk with a steady
// transient error rate and checks the file system still round-trips data
// correctly: every failed command is retried behind the syscall layer.
func TestRetriesSurviveTransientFaults(t *testing.T) {
	m := boot(t, fs.PolicyUFS) // UFS: plenty of synchronous disk traffic
	m.Disk.SetFaultPlan(&disk.FaultPlan{Seed: 42, TransientRead: 0.1, TransientWrite: 0.1})
	data := bytes.Repeat([]byte("survive-transients "), 600)
	for i := 0; i < 8; i++ {
		writeFile(t, m, "/t"+string(rune('a'+i)), data)
	}
	m.FS.Sync()
	m.Disk.SetFaultPlan(nil)
	for i := 0; i < 8; i++ {
		if got := readFile(t, m, "/t"+string(rune('a'+i))); !bytes.Equal(got, data) {
			t.Fatalf("file %d corrupted under transient faults", i)
		}
	}
	if m.FS.Retry.Stats.Retries == 0 {
		t.Fatal("10% fault rate but the retry layer never fired")
	}
	if m.FS.Degraded() {
		t.Fatalf("transients alone degraded the mount: %+v", m.FS.Retry.Stats)
	}
}

// TestDegradedModeRejectsMutations exhausts the error budget and checks
// every mutating syscall returns ErrReadOnly while reads keep working.
func TestDegradedModeRejectsMutations(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	writeFile(t, m, "/keep", []byte("still readable"))
	m.FS.Sync()

	// Force the budget to zero by charging failures directly — the unit
	// contract (budget exhausted => degraded => ErrReadOnly) is what this
	// test pins down, not a particular fault pattern.
	m.FS.Retry.Pol = ioretry.Policy{MaxRetries: 0, Budget: 1}
	m.Disk.SetFaultPlan(&disk.FaultPlan{Seed: 7, TransientWrite: 1})
	f, err := m.FS.Create("/doomed")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("this write will fail through to the device"))
	f.Close()
	m.FS.Sync()
	m.Disk.SetFaultPlan(nil)
	if !m.FS.Degraded() {
		t.Fatalf("budget 1 not exhausted: %+v", m.FS.Retry.Stats)
	}

	if _, err := m.FS.Create("/nope"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Create in degraded mode: %v", err)
	}
	if err := m.FS.Mkdir("/nodir"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Mkdir in degraded mode: %v", err)
	}
	if err := m.FS.Unlink("/keep"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Unlink in degraded mode: %v", err)
	}
	if err := m.FS.Rename("/keep", "/kept"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Rename in degraded mode: %v", err)
	}
	if err := m.FS.Symlink("/keep", "/link"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Symlink in degraded mode: %v", err)
	}
	kf, err := m.FS.Open("/keep")
	if err != nil {
		t.Fatalf("Open for read in degraded mode: %v", err)
	}
	if _, err := kf.WriteAt([]byte("x"), 0); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("WriteAt in degraded mode: %v", err)
	}
	kf.Close()
	if got := readFile(t, m, "/keep"); !bytes.Equal(got, []byte("still readable")) {
		t.Fatal("read path broken in degraded mode")
	}
}

// TestFsckToleratesFaultyDisk runs fsck over a formatted volume on a disk
// with transient faults and checks it completes (retrying as needed)
// rather than mis-repairing.
func TestFsckToleratesFaultyDisk(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	writeFile(t, m, "/a", bytes.Repeat([]byte("x"), 3*fs.BlockSize))
	m.FS.Sync()
	m.FS.Unmount()
	m.Disk.SetFaultPlan(&disk.FaultPlan{Seed: 5, TransientRead: 0.2, TransientWrite: 0.2})
	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		t.Fatalf("fsck on transiently-faulty disk: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("clean volume mis-repaired under transients: %v", rep)
	}
	if rep.IOErrors != 0 {
		t.Fatalf("transients should all clear within retry bound: %v", rep)
	}
}
