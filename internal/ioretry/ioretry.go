// Package ioretry gives storage clients bounded, simulated-time retries
// over a faulty disk, plus a per-mount error budget that escalates to a
// read-only degraded mode when the device proves too sick to trust.
//
// The policy follows what production kernels actually do when a command
// fails: retry transients a few times with backoff (bus resets and ECC
// hiccups usually clear), do not retry latent sector errors (the medium
// is gone; only a rewrite helps), and once failures pile up past a
// budget, stop accepting writes rather than spread damage — the
// graceful-degradation half of the ROADMAP's reliability story that the
// paper's perfect-disk model never needed.
//
// All delays advance the simulated clock, never the wall clock, so
// retried campaigns stay deterministic and fast.
package ioretry

import (
	"rio/internal/disk"
	"rio/internal/sim"
)

// Clock is the slice of sim.Clock a Retrier needs. A nil clock is
// allowed (delays are skipped), which keeps unit tests trivial.
type Clock interface {
	Advance(d sim.Duration)
}

// Policy bounds the retry loop and the mount's tolerance for failure.
type Policy struct {
	// MaxRetries is the number of re-attempts after the first failure
	// of a transient error (so an op runs at most 1+MaxRetries times).
	MaxRetries int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay.
	BaseDelay sim.Duration
	MaxDelay  sim.Duration
	// Budget is the number of operations that may ultimately fail
	// (after retries) before the mount degrades to read-only.
	// Zero means an unlimited budget (never degrade).
	Budget int
}

// DefaultPolicy matches a patient mid-90s SCSI driver: a handful of
// retries spanning a few disk revolutions, and a budget small enough
// that a dying device is benched before it eats the volume.
func DefaultPolicy() Policy {
	return Policy{
		MaxRetries: 4,
		BaseDelay:  2 * sim.Millisecond,
		MaxDelay:   32 * sim.Millisecond,
		Budget:     16,
	}
}

// Stats counts retry-layer activity for one mount.
type Stats struct {
	Ops            uint64 // operations submitted through Do
	Retries        uint64 // individual re-attempts issued
	RetrySuccesses uint64 // ops that failed at least once, then succeeded
	Failures       uint64 // ops that ultimately failed (budget charged)
	LatentFailures uint64 // of Failures, unretryable latent-sector errors
	BackoffTime    sim.Duration
}

// Retrier wraps a mount's disk operations with the retry policy and
// tracks its error budget. Not safe for concurrent use — neither is the
// simulated machine it serves.
type Retrier struct {
	Pol       Policy
	Clock     Clock
	Stats     Stats
	spent     int
	degraded  bool
	onDegrade func()
}

// New returns a Retrier with the given policy. clk may be nil.
func New(pol Policy, clk Clock) *Retrier {
	return &Retrier{Pol: pol, Clock: clk}
}

// OnDegrade registers a callback invoked exactly once, at the moment the
// budget is exhausted and the mount flips to degraded mode.
func (r *Retrier) OnDegrade(fn func()) { r.onDegrade = fn }

// Degraded reports whether the error budget is exhausted: the mount
// should refuse new mutations and serve reads best-effort.
func (r *Retrier) Degraded() bool { return r.degraded }

// BudgetRemaining returns how many more ultimate failures the mount
// absorbs before degrading (-1 for an unlimited budget).
func (r *Retrier) BudgetRemaining() int {
	if r.Pol.Budget <= 0 {
		return -1
	}
	if r.spent >= r.Pol.Budget {
		return 0
	}
	return r.Pol.Budget - r.spent
}

// backoff charges the n-th retry's delay (n counts from 0) to the
// simulated clock.
func (r *Retrier) backoff(n int) {
	d := r.Pol.BaseDelay << uint(n)
	if r.Pol.MaxDelay > 0 && d > r.Pol.MaxDelay {
		d = r.Pol.MaxDelay
	}
	if d <= 0 {
		return
	}
	r.Stats.BackoffTime += d
	if r.Clock != nil {
		r.Clock.Advance(d)
	}
}

// charge records an ultimate failure against the budget.
func (r *Retrier) charge() {
	r.Stats.Failures++
	r.spent++
	if r.Pol.Budget > 0 && r.spent >= r.Pol.Budget && !r.degraded {
		r.degraded = true
		if r.onDegrade != nil {
			r.onDegrade()
		}
	}
}

// Do runs op, retrying transient disk errors up to MaxRetries times with
// exponential simulated-time backoff. Latent sector errors are never
// retried — rereading a destroyed sector cannot succeed. The returned
// error is the last attempt's. An ultimate failure spends one unit of
// the mount's error budget; when the budget hits zero the Retrier flips
// to Degraded and stays there.
func (r *Retrier) Do(op func() error) error {
	r.Stats.Ops++
	err := op()
	if err == nil {
		return nil
	}
	if disk.IsLatent(err) {
		r.Stats.LatentFailures++
		r.charge()
		return err
	}
	for n := 0; n < r.Pol.MaxRetries && disk.IsTransient(err); n++ {
		r.backoff(n)
		r.Stats.Retries++
		if err = op(); err == nil {
			r.Stats.RetrySuccesses++
			return nil
		}
	}
	if disk.IsLatent(err) {
		r.Stats.LatentFailures++
	}
	r.charge()
	return err
}
