package machine_test

import (
	"strings"
	"testing"

	"rio/internal/fault"
	"rio/internal/fs"
	"rio/internal/machine"
	"rio/internal/mem"
	"rio/internal/mmu"
	"rio/internal/sim"
	"rio/internal/workload"
)

func tracedMachine(t *testing.T, seed uint64) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyRio))
	opt.FastPath = false
	opt.Seed = seed
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Kernel.VM.Budget = 300_000
	m.EnableTrace(512)
	return m
}

func TestPostmortemOfLiveMachineFails(t *testing.T) {
	m := tracedMachine(t, 1)
	if _, err := m.BuildPostmortem(10); err == nil {
		t.Fatal("postmortem of live machine allowed")
	}
}

func TestPostmortemWithoutTracerFails(t *testing.T) {
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyRio))
	opt.FastPath = false
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Kernel.Panic("x")
	if _, err := m.BuildPostmortem(10); err == nil {
		t.Fatal("postmortem without tracer allowed")
	}
}

func TestPostmortemAfterInjectedCrash(t *testing.T) {
	// Find a seed that crashes quickly under a pointer fault and check
	// the report contents.
	for seed := uint64(1); seed < 20; seed++ {
		m := tracedMachine(t, seed)
		mt := workload.NewMemTest(seed, 1<<20)
		for i := 0; i < 10; i++ {
			if err := mt.Step(m.FS); err != nil {
				t.Fatal(err)
			}
		}
		if err := fault.Inject(m, fault.Pointer, fault.DefaultCount, sim.NewRand(seed)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150 && m.Crashed() == nil; i++ {
			_ = mt.Step(m.FS)
		}
		if m.Crashed() == nil {
			continue
		}
		pm, err := m.BuildPostmortem(20)
		if err != nil {
			t.Fatal(err)
		}
		if pm.CrashKind == "" || pm.Proc == "" {
			t.Fatalf("incomplete postmortem: %+v", pm)
		}
		out := pm.Format()
		for _, want := range []string{"crash:", "registers:", "execution tail:"} {
			if !strings.Contains(out, want) {
				t.Fatalf("report missing %q:\n%s", want, out)
			}
		}
		if len(pm.Tail) == 0 {
			t.Fatal("empty execution tail")
		}
		return
	}
	t.Skip("no seed crashed within budget")
}

func TestClassifyStore(t *testing.T) {
	m := tracedMachine(t, 3)
	// Heap.
	if c := m.ClassifyStore(0x20000000 + 64); c != machine.StoreHeap {
		// HeapBase = (1<<16)*8192 = 0x20000000
		t.Fatalf("heap store classified %v", c)
	}
	// Stack.
	if c := m.ClassifyStore(uint64(1<<8)*mem.PageSize + 64); c != machine.StoreStack {
		t.Fatalf("stack store classified %v", c)
	}
	// Unmapped virtual.
	if c := m.ClassifyStore(0x123456789000); c != machine.StoreUnmapped {
		t.Fatalf("wild store classified %v", c)
	}
	// KSEG beyond memory.
	if c := m.ClassifyStore(mmu.PhysToKSEG(uint64(m.Mem.Size()) + 8192)); c != machine.StoreUnmapped {
		t.Fatalf("kseg-out store classified %v", c)
	}
	// A real UBC frame via KSEG.
	f, err := m.FS.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Close()
	b := m.Cache.LookupData(f.Ino, 0)
	if b == nil {
		t.Fatal("no data buffer")
	}
	if c := m.ClassifyStore(mmu.PhysToKSEG(mem.FrameBase(b.Frame))); c != machine.StoreUBC {
		t.Fatalf("ubc store classified %v", c)
	}
	// A metadata frame through its dyn mapping.
	mb := m.Cache.All(0)
	if len(mb) == 0 {
		t.Fatal("no meta buffers")
	}
	if c := m.ClassifyStore(mb[0].Addr); c != machine.StoreMeta {
		t.Fatalf("meta store classified %v", c)
	}
	// Registry frame.
	regFrame := m.Reg.Frames()[0]
	if c := m.ClassifyStore(mmu.PhysToKSEG(mem.FrameBase(regFrame))); c != machine.StoreRegistry {
		t.Fatalf("registry store classified %v", c)
	}
}

func TestTracerRecordsStores(t *testing.T) {
	m := tracedMachine(t, 5)
	f, err := m.FS.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 4096))
	f.Close()
	tr := m.Kernel.VM.Trace
	if tr.Steps() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	stores := tr.Stores()
	if len(stores) == 0 {
		t.Fatal("no stores recorded")
	}
	// Formatting names procedures. The last instructions are Close's
	// background ballast; the copy loops sit a few hundred entries back.
	out := tr.Format(m.Text, 0)
	if !strings.Contains(out, "bcopy") && !strings.Contains(out, "write_block") {
		t.Fatalf("trace lacks copy-path procedures:\n%s", out)
	}
}
