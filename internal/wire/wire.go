// Package wire is riod's request/response codec: a length-prefixed
// binary framing with fixed-width headers and explicitly bounded
// variable-length fields.
//
// The format is deliberately dumb — big-endian integers, u16/u32 length
// prefixes, no compression, no versioned schema — because the decoder
// sits on the server's untrusted edge and must be total: any byte
// string either decodes to a well-formed message or returns an error.
// Every declared length is checked against both a protocol maximum and
// the bytes actually present *before* any allocation happens, so a
// hostile frame can neither panic the decoder nor make it allocate more
// than the frame it sent (see FuzzDecodeRequest).
//
// A frame on the stream is a u32 payload length followed by the
// payload. Request payloads and response payloads are distinct message
// types; the transport knows which it is expecting.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op identifies a request operation.
type Op uint8

// The wire operations. Data ops route to a shard by path hash; the two
// admin ops (OpCrash, OpWarmboot) target Request.Shard explicitly.
const (
	OpInvalid   Op = iota
	OpOpen         // ensure Path exists (create an empty file if absent)
	OpRead         // read Len bytes of Path at Offset (Len 0 = whole file)
	OpWrite        // write Data to Path at Offset (-1 = append), creating it
	OpMkdir        // create directory Path
	OpRm           // unlink file / remove empty directory Path
	OpMv           // rename Path to Path2
	OpStat         // stat Path
	OpSync         // schedule the shard's dirty buffers for write-back
	OpCrash        // admin: crash shard Request.Shard (kernel panic, no sync)
	OpWarmboot     // admin: warm-reboot shard Request.Shard
	OpTxnBegin     // open a transaction on the target shard; Response.Size returns the handle
	OpTxnCommit    // atomically apply every op staged under Request.Txn
	OpTxnAbort     // discard every op staged under Request.Txn

	// Fleet replication ops (primary <-> backup and coordinator <-> node
	// traffic; see internal/fleet). Their payloads ride in Data as
	// checksummed sub-frames with their own strict bounds, so the base
	// codec stays total over them like any other op.
	OpReplBatch // primary -> backup: apply one sequence-numbered op batch (Shard = global shard)
	OpReplPull  // backup -> primary: replay retained tail batches from Offset = seq
	OpSnapshot  // backup -> primary: fetch a shard snapshot chunk at Offset (Size = total)
	OpHeartbeat // coordinator -> node: liveness probe; Data carries the routing table
	opMax
)

var opNames = [...]string{
	OpInvalid: "invalid", OpOpen: "open", OpRead: "read", OpWrite: "write",
	OpMkdir: "mkdir", OpRm: "rm", OpMv: "mv", OpStat: "stat",
	OpSync: "sync", OpCrash: "crash", OpWarmboot: "warmboot",
	OpTxnBegin: "txn-begin", OpTxnCommit: "txn-commit", OpTxnAbort: "txn-abort",
	OpReplBatch: "repl-batch", OpReplPull: "repl-pull",
	OpSnapshot: "snapshot", OpHeartbeat: "heartbeat",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// Status is a response's outcome code. Errors are typed so clients can
// branch without parsing message strings; StatusAgain is the one
// retryable code (the shard exists but cannot serve right now).
type Status uint8

// Response statuses.
const (
	StatusOK       Status = iota
	StatusAgain           // EAGAIN: queue full or shard crashed; retry with backoff
	StatusNotFound        // no such file or directory
	StatusExists          // path already exists
	StatusIsDir           // operation needs a file, path is a directory
	StatusNotDir          // path component is not a directory
	StatusNotEmpty        // directory not empty
	StatusNoSpace         // no space / no inodes on the shard's volume
	StatusReadOnly        // shard volume degraded to read-only
	StatusInvalid         // malformed or inapplicable request
	StatusClosed          // server is draining or stopped; not retryable
	StatusIO              // other shard-side failure (see Msg)
	// StatusCrossShard: the operation names paths (or a transaction) on
	// two different shards; single-shard atomicity cannot cover it. The
	// dedicated code is the seam a future two-phase cross-shard protocol
	// plugs into — clients can distinguish "unsupported topology" from a
	// real failure.
	StatusCrossShard
	StatusNoTxn    // Request.Txn names no open transaction on its shard
	StatusTxnLimit // transaction table or staged-op budget exhausted
	// StatusMoved: the receiver no longer serves the request's shard —
	// the fleet coordinator promoted a different primary. Msg carries the
	// new primary's address verbatim (at most MaxMsg bytes); clients
	// re-route and re-send. Also fences a deposed primary's replication
	// frames: a backup that has seen a newer epoch refuses old-epoch
	// batches with this status.
	StatusMoved
	// StatusTimeout: the server gave up waiting — a bounded drain expired
	// at shutdown, or a peer deadline fired. Not retryable against the
	// same endpoint; the request's fate on the shard is unknown.
	StatusTimeout
	statusMax
)

var statusNames = [...]string{
	StatusOK: "ok", StatusAgain: "again", StatusNotFound: "not-found",
	StatusExists: "exists", StatusIsDir: "is-dir", StatusNotDir: "not-dir",
	StatusNotEmpty: "not-empty", StatusNoSpace: "no-space",
	StatusReadOnly: "read-only", StatusInvalid: "invalid",
	StatusClosed: "closed", StatusIO: "io-error",
	StatusCrossShard: "cross-shard", StatusNoTxn: "no-txn",
	StatusTxnLimit: "txn-limit", StatusMoved: "moved",
	StatusTimeout: "timeout",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Retryable reports whether the request may succeed if simply re-sent
// after a backoff (the EAGAIN discipline riod's clients follow).
func (s Status) Retryable() bool { return s == StatusAgain }

// Protocol limits. DecodeRequest/DecodeResponse reject any declared
// length beyond these before allocating, so a frame can never make the
// decoder hold more memory than MaxFrame.
const (
	MaxPath  = 4096    // bytes per path
	MaxData  = 1 << 20 // bytes per read or write payload
	MaxMsg   = 4096    // bytes per response message
	MaxFrame = MaxData + 2*MaxPath + MaxMsg + 64
)

// Response flags (stat results).
const (
	FlagDir     uint8 = 1 << 0
	FlagSymlink uint8 = 1 << 1
)

// Request is one client operation.
type Request struct {
	ID     uint64 // echoed verbatim in the response
	Op     Op
	Shard  int32  // admin-op target; -1 (route by path) for data ops
	Offset int64  // read/write offset; -1 on write = append
	Len    uint32 // read length; 0 = whole file (capped at MaxData)
	// Txn is a transaction handle from OpTxnBegin. Zero means no
	// transaction. On a write/mkdir/rm/mv it stages the op instead of
	// executing it; OpTxnCommit/OpTxnAbort name the transaction to
	// resolve. The high 32 bits carry the owning shard.
	Txn   uint64
	Path  string
	Path2 string // mv destination
	Data  []byte // write payload
}

// Response is the outcome of one request.
type Response struct {
	ID     uint64
	Status Status
	Flags  uint8  // stat: FlagDir / FlagSymlink
	Size   int64  // stat size, bytes written, or file size on read
	Data   []byte // read payload
	Msg    string // human-readable error detail (empty on StatusOK)
}

// Decode errors.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrTooLong   = errors.New("wire: declared length exceeds protocol limit")
	ErrTrailing  = errors.New("wire: trailing bytes after message")
	ErrFrame     = errors.New("wire: frame exceeds maximum size")
)

// Fixed header bytes of each message type (everything except the three
// variable-length fields and their length prefixes).
const (
	requestFixed  = 8 + 1 + 4 + 8 + 4 + 8 // ID, Op, Shard, Offset, Len, Txn
	responseFixed = 8 + 1 + 1 + 8         // ID, Status, Flags, Size
)

// RequestSize returns the exact encoded size of r, so encoders can
// reserve capacity once instead of growing through append.
func RequestSize(r *Request) int {
	return requestFixed + 2 + len(r.Path) + 2 + len(r.Path2) + 4 + len(r.Data)
}

// ResponseSize returns the exact encoded size of r.
func ResponseSize(r *Response) int {
	return responseFixed + 4 + len(r.Data) + 2 + len(r.Msg)
}

// grow returns dst with room for at least n more bytes, reallocating at
// most once (append's doubling can reallocate twice for a cold buffer
// growing past a megabyte payload).
func grow(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	out := make([]byte, len(dst), len(dst)+n)
	copy(out, dst)
	return out
}

// AppendRequest appends r's encoding to dst and returns the result.
func AppendRequest(dst []byte, r *Request) []byte {
	dst = grow(dst, RequestSize(r))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Op))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Shard))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Offset))
	dst = binary.BigEndian.AppendUint32(dst, r.Len)
	dst = binary.BigEndian.AppendUint64(dst, r.Txn)
	dst = appendString16(dst, r.Path)
	dst = appendString16(dst, r.Path2)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Data)))
	return append(dst, r.Data...)
}

// DecodeRequest decodes exactly one request from buf. The entire buffer
// must be consumed; trailing bytes are an error.
func DecodeRequest(buf []byte) (*Request, error) {
	c := cursor{buf: buf}
	var r Request
	r.ID = c.u64()
	r.Op = Op(c.u8())
	r.Shard = int32(c.u32())
	r.Offset = int64(c.u64())
	r.Len = c.u32()
	r.Txn = c.u64()
	r.Path = c.str16(MaxPath)
	r.Path2 = c.str16(MaxPath)
	r.Data = c.bytes32(MaxData)
	if err := c.finish(); err != nil {
		return nil, err
	}
	if !r.Op.Valid() {
		return nil, fmt.Errorf("wire: unknown op %d", uint8(r.Op))
	}
	if r.Len > MaxData {
		return nil, fmt.Errorf("wire: read length %d exceeds %d: %w", r.Len, MaxData, ErrTooLong)
	}
	return &r, nil
}

// AppendResponse appends r's encoding to dst and returns the result.
func AppendResponse(dst []byte, r *Response) []byte {
	dst = grow(dst, ResponseSize(r))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Status), r.Flags)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Size))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Data)))
	dst = append(dst, r.Data...)
	return appendString16(dst, r.Msg)
}

// AppendResponseFrame appends a complete wire frame — u32 length prefix
// plus r's encoding — to dst, growing dst at most once. The batching
// writer uses it to pack many responses into one buffer for a single
// scatter-gather write.
func AppendResponseFrame(dst []byte, r *Response) []byte {
	size := ResponseSize(r)
	dst = grow(dst, 4+size)
	dst = binary.BigEndian.AppendUint32(dst, uint32(size))
	return AppendResponse(dst, r)
}

// ReserveResponseFrame appends a response frame for r whose data region
// is left unwritten: the frame declares dataLen data bytes (r.Data must
// be empty — its bytes do not exist yet) and the returned offset names
// the region dst[off:off+dataLen] the caller fills afterwards. Because
// Data precedes Msg in the encoding, the rest of the frame is already
// complete, so a read can serialize straight from a cache frame into
// the wire buffer with no intermediate copy. dataLen must be within
// MaxData (enforced: this is the serving path's own frame assembly, and
// an oversized region would build an undecodable frame).
func ReserveResponseFrame(dst []byte, r *Response, dataLen int) (buf []byte, off int) {
	if dataLen < 0 || dataLen > MaxData {
		panic(fmt.Sprintf("wire: reserve %d data bytes outside [0, MaxData]", dataLen))
	}
	size := responseFixed + 4 + dataLen + 2 + len(r.Msg)
	dst = grow(dst, 4+size)
	dst = binary.BigEndian.AppendUint32(dst, uint32(size))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Status), r.Flags)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Size))
	dst = binary.BigEndian.AppendUint32(dst, uint32(dataLen))
	off = len(dst)
	dst = dst[:off+dataLen]
	return appendString16(dst, r.Msg), off
}

// DecodeResponse decodes exactly one response from buf.
func DecodeResponse(buf []byte) (*Response, error) {
	c := cursor{buf: buf}
	var r Response
	r.ID = c.u64()
	r.Status = Status(c.u8())
	r.Flags = c.u8()
	r.Size = int64(c.u64())
	r.Data = c.bytes32(MaxData)
	r.Msg = c.str16(MaxMsg)
	if err := c.finish(); err != nil {
		return nil, err
	}
	if r.Status >= statusMax {
		return nil, fmt.Errorf("wire: unknown status %d", uint8(r.Status))
	}
	return &r, nil
}

// WriteFrame writes a u32 length prefix followed by payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrame
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame. A declared length beyond
// max is rejected before any allocation, bounding what a hostile peer
// can make the reader hold.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, ErrFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func appendString16(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// cursor is a bounds-checked sequential reader. The first failure
// sticks; every later read returns zero values.
type cursor struct {
	buf []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.buf) || c.off+n < c.off {
		c.err = ErrTruncated
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// str16 reads a u16-prefixed string of at most max bytes. The length is
// validated against the remaining buffer before the string is
// materialised, so a lying prefix cannot over-allocate.
func (c *cursor) str16(max int) string {
	b := c.take(2)
	if b == nil {
		return ""
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > max {
		if c.err == nil {
			c.err = ErrTooLong
		}
		return ""
	}
	s := c.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// bytes32 reads a u32-prefixed byte slice of at most max bytes, copied
// out of the frame so the caller may retain it.
func (c *cursor) bytes32(max int) []byte {
	b := c.take(4)
	if b == nil {
		return nil
	}
	n := int64(binary.BigEndian.Uint32(b))
	if n > int64(max) {
		if c.err == nil {
			c.err = ErrTooLong
		}
		return nil
	}
	p := c.take(int(n))
	if p == nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

func (c *cursor) finish() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.buf) {
		return ErrTrailing
	}
	return nil
}
