// Package mmu implements the simulated memory-management unit: page tables,
// a TLB, the KSEG physical-address window, and Rio's protection machinery.
//
// The paper's protection story hinges on two access paths into memory:
//
//   - Virtual addresses, translated through the page tables/TLB, where
//     write-permission bits can protect file-cache pages.
//   - KSEG physical addresses, which on a stock Alpha bypass the TLB
//     entirely — and through which Digital Unix reaches the bulk of the
//     file cache (the UBC).
//
// Rio sets a bit in the ABOX CPU control register so that KSEG addresses
// are mapped through the TLB too, making them checkable. This package
// models that bit as MapAllThroughTLB. With it off, a wild store issued
// through KSEG silently corrupts any frame; with it on, stores to
// write-protected frames trap. A third mode, CodePatching, models the
// software fallback for CPUs that cannot force KSEG through the TLB: every
// kernel store is preceded by an inserted check (same protection outcome,
// 20-50% slower; reproduced as a cost-model ablation).
package mmu

import (
	"fmt"

	"rio/internal/mem"
)

// KSEGBase is the start of the simulated KSEG window. A KSEG address k maps
// to physical address k - KSEGBase. (On the real Alpha, KSEG is selected by
// the two top address bits being 10; a simple offset keeps simulated
// addresses readable.)
const KSEGBase uint64 = 1 << 40

// IsKSEG reports whether addr lies in the KSEG window.
func IsKSEG(addr uint64) bool { return addr >= KSEGBase }

// PhysToKSEG converts a physical address to its KSEG alias.
func PhysToKSEG(phys uint64) uint64 { return phys + KSEGBase }

// KSEGToPhys converts a KSEG address to the physical address it names.
func KSEGToPhys(addr uint64) uint64 { return addr - KSEGBase }

// TrapKind classifies an MMU trap.
type TrapKind int

const (
	// TrapIllegalAddress is an access to an unmapped virtual page or a
	// physical address outside of installed memory. On a 64-bit machine
	// most wild pointers land here — the paper credits this implicit check
	// with stopping most crashes before they corrupt anything.
	TrapIllegalAddress TrapKind = iota
	// TrapProtection is a store to a write-protected page: either a
	// read-only PTE or a Rio-protected file-cache/registry frame.
	TrapProtection
)

func (k TrapKind) String() string {
	switch k {
	case TrapIllegalAddress:
		return "illegal address"
	case TrapProtection:
		return "protection violation"
	default:
		return fmt.Sprintf("TrapKind(%d)", int(k))
	}
}

// Trap describes an MMU fault. It implements error.
type Trap struct {
	Kind  TrapKind
	Addr  uint64
	Write bool
}

func (t *Trap) Error() string {
	op := "load"
	if t.Write {
		op = "store"
	}
	return fmt.Sprintf("mmu: %s trap on %s to %#x", t.Kind, op, t.Addr)
}

// PTE is a page-table entry mapping one virtual page to a physical frame.
type PTE struct {
	Frame    int  // physical frame number
	Writable bool // page-table write permission
	Valid    bool
}

// Stats counts MMU activity; the performance model charges time per event.
type Stats struct {
	VirtLoads  uint64
	VirtStores uint64
	KSEGLoads  uint64
	KSEGStores uint64
	TLBHits    uint64
	TLBMisses  uint64
	ProtToggle uint64 // protection open/close operations
	ProtChecks uint64 // code-patching per-store checks
	Traps      uint64
}

const tlbEntries = 64 // direct-mapped, like a small 21064-era DTB

type tlbEntry struct {
	vpage    uint64
	frame    int
	writable bool // PTE writable AND frame not Rio-protected, at fill time
	valid    bool
}

// MMU translates and checks memory accesses against a Memory.
type MMU struct {
	Mem *mem.Memory

	// MapAllThroughTLB models the ABOX control-register bit: when true,
	// KSEG stores are checked against frame protection (and charged a TLB
	// lookup); when false they bypass all checks, as on a stock kernel.
	MapAllThroughTLB bool

	// CodePatching models the software-check fallback: protection is
	// enforced on KSEG stores by inserted code rather than the TLB. It is
	// functionally equivalent to MapAllThroughTLB for stores but charges a
	// check on *every* kernel store (see Stats.ProtChecks).
	CodePatching bool

	// EnforceProtection is the master switch for Rio protection. When
	// false, frame WriteProtected bits are ignored entirely (the "Rio
	// without protection" configuration).
	EnforceProtection bool

	Stats Stats

	ptes map[uint64]PTE
	tlb  [tlbEntries]tlbEntry
}

// New returns an MMU over m with an empty page table. All protection modes
// default off, matching a stock kernel.
func New(m *mem.Memory) *MMU {
	return &MMU{Mem: m, ptes: make(map[uint64]PTE)}
}

// Map installs a PTE for virtual page vpage (a page number, not an
// address) pointing at the given physical frame.
func (u *MMU) Map(vpage uint64, frame int, writable bool) {
	if frame < 0 || frame >= u.Mem.NumFrames() {
		panic(fmt.Sprintf("mmu: mapping to bad frame %d", frame))
	}
	u.ptes[vpage] = PTE{Frame: frame, Writable: writable, Valid: true}
	u.flushVPage(vpage)
}

// Unmap removes the PTE for vpage.
func (u *MMU) Unmap(vpage uint64) {
	delete(u.ptes, vpage)
	u.flushVPage(vpage)
}

// Lookup returns the PTE for vpage, if any.
func (u *MMU) Lookup(vpage uint64) (PTE, bool) {
	p, ok := u.ptes[vpage]
	return p, ok
}

// MappedPages returns the number of installed PTEs.
func (u *MMU) MappedPages() int { return len(u.ptes) }

// SetFrameProtection sets or clears Rio write protection on a physical
// frame and performs the TLB shootdown a real kernel would need. This is
// the "open/close write permission" primitive file-cache procedures call
// around sanctioned writes.
func (u *MMU) SetFrameProtection(frame int, protected bool) {
	u.Mem.Frame(frame).WriteProtected = protected
	u.Stats.ProtToggle++
	u.flushFrame(frame)
}

func (u *MMU) flushVPage(vpage uint64) {
	e := &u.tlb[vpage%tlbEntries]
	if e.valid && e.vpage == vpage {
		e.valid = false
	}
}

func (u *MMU) flushFrame(frame int) {
	for i := range u.tlb {
		if u.tlb[i].valid && u.tlb[i].frame == frame {
			u.tlb[i].valid = false
		}
	}
}

// FlushTLB invalidates the whole TLB.
func (u *MMU) FlushTLB() {
	for i := range u.tlb {
		u.tlb[i].valid = false
	}
}

// frameProtected reports whether Rio protection currently forbids stores to
// the frame.
func (u *MMU) frameProtected(frame int) bool {
	if !u.EnforceProtection {
		return false
	}
	f := u.Mem.Frame(frame)
	return f.WriteProtected
}

// translateVirt translates a virtual address, consulting the TLB.
func (u *MMU) translateVirt(addr uint64, write bool) (uint64, *Trap) {
	vpage := addr >> mem.PageShift
	off := addr & (mem.PageSize - 1)

	if write && u.CodePatching {
		// Software fault isolation checks every kernel store, not just
		// KSEG ones — that blanket cost is why the paper prefers the
		// TLB-based scheme when the CPU supports it.
		u.Stats.ProtChecks++
	}
	e := &u.tlb[vpage%tlbEntries]
	if e.valid && e.vpage == vpage {
		u.Stats.TLBHits++
		if write && !e.writable {
			u.Stats.Traps++
			// Distinguish PTE read-only from Rio protection for reporting.
			kind := TrapProtection
			return 0, &Trap{Kind: kind, Addr: addr, Write: true}
		}
		return mem.FrameBase(e.frame) + off, nil
	}
	u.Stats.TLBMisses++

	pte, ok := u.ptes[vpage]
	if !ok || !pte.Valid {
		u.Stats.Traps++
		return 0, &Trap{Kind: TrapIllegalAddress, Addr: addr, Write: write}
	}
	writable := pte.Writable && !u.frameProtected(pte.Frame)
	*e = tlbEntry{vpage: vpage, frame: pte.Frame, writable: writable, valid: true}
	if write && !writable {
		u.Stats.Traps++
		return 0, &Trap{Kind: TrapProtection, Addr: addr, Write: true}
	}
	return mem.FrameBase(pte.Frame) + off, nil
}

// translateKSEG resolves a KSEG address, applying protection according to
// the configured mode.
func (u *MMU) translateKSEG(addr uint64, write bool) (uint64, *Trap) {
	phys := KSEGToPhys(addr)
	if !u.Mem.Contains(phys) {
		u.Stats.Traps++
		return 0, &Trap{Kind: TrapIllegalAddress, Addr: addr, Write: write}
	}
	if write {
		checked := u.MapAllThroughTLB || u.CodePatching
		if u.CodePatching {
			u.Stats.ProtChecks++
		}
		if checked && u.frameProtected(mem.FrameOf(phys)) {
			u.Stats.Traps++
			return 0, &Trap{Kind: TrapProtection, Addr: addr, Write: true}
		}
	}
	return phys, nil
}

// Translate resolves addr (virtual or KSEG) to a physical address, checking
// permissions for the given access direction.
func (u *MMU) Translate(addr uint64, write bool) (uint64, *Trap) {
	if IsKSEG(addr) {
		return u.translateKSEG(addr, write)
	}
	return u.translateVirt(addr, write)
}

// LoadByte reads one byte through address translation.
func (u *MMU) LoadByte(addr uint64) (byte, *Trap) {
	phys, trap := u.Translate(addr, false)
	if trap != nil {
		return 0, trap
	}
	u.countLoad(addr)
	return u.Mem.Byte(phys), nil
}

// StoreByte writes one byte through address translation and protection.
func (u *MMU) StoreByte(addr uint64, b byte) *Trap {
	phys, trap := u.Translate(addr, true)
	if trap != nil {
		return trap
	}
	u.countStore(addr)
	u.Mem.SetByte(phys, b)
	return nil
}

// Load64 reads a little-endian 64-bit word. The access may not straddle a
// page boundary on the virtual side; straddling is treated as an illegal
// address (real Alphas require aligned loads — close enough, and it keeps
// wild unaligned pointers trapping).
func (u *MMU) Load64(addr uint64) (uint64, *Trap) {
	if addr%8 != 0 {
		u.Stats.Traps++
		return 0, &Trap{Kind: TrapIllegalAddress, Addr: addr}
	}
	phys, trap := u.Translate(addr, false)
	if trap != nil {
		return 0, trap
	}
	u.countLoad(addr)
	return u.Mem.Word64(phys), nil
}

// Store64 writes a little-endian 64-bit word, aligned.
func (u *MMU) Store64(addr uint64, v uint64) *Trap {
	if addr%8 != 0 {
		u.Stats.Traps++
		return &Trap{Kind: TrapIllegalAddress, Addr: addr, Write: true}
	}
	phys, trap := u.Translate(addr, true)
	if trap != nil {
		return trap
	}
	u.countStore(addr)
	u.Mem.SetWord64(phys, v)
	return nil
}

// ReadBytes copies n bytes starting at addr into buf, page by page.
func (u *MMU) ReadBytes(addr uint64, buf []byte) *Trap {
	for len(buf) > 0 {
		phys, trap := u.Translate(addr, false)
		if trap != nil {
			return trap
		}
		n := int(mem.PageSize - (addr & (mem.PageSize - 1)))
		if n > len(buf) {
			n = len(buf)
		}
		u.countLoad(addr)
		u.Mem.ReadAt(phys, buf[:n])
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

// ViewBytes returns a direct read-only view of [addr, addr+n) when the
// range lies within a single page, with exactly the translation and
// load accounting ReadBytes would perform for it. A range that spans
// pages returns (nil, nil): virtually contiguous pages need not be
// physically contiguous, so the caller falls back to a copy. Callers
// must not write through or retain the view — it aliases the frame
// itself (the checksum path reads it in place and drops it).
func (u *MMU) ViewBytes(addr uint64, n int) ([]byte, *Trap) {
	if n <= 0 || int(mem.PageSize-(addr&(mem.PageSize-1))) < n {
		return nil, nil
	}
	phys, trap := u.Translate(addr, false)
	if trap != nil {
		return nil, trap
	}
	u.countLoad(addr)
	return u.Mem.Slice(phys, n), nil
}

// WriteBytes copies buf to addr, page by page, with protection checks per
// page.
func (u *MMU) WriteBytes(addr uint64, buf []byte) *Trap {
	for len(buf) > 0 {
		phys, trap := u.Translate(addr, true)
		if trap != nil {
			return trap
		}
		n := int(mem.PageSize - (addr & (mem.PageSize - 1)))
		if n > len(buf) {
			n = len(buf)
		}
		u.countStore(addr)
		u.Mem.WriteAt(phys, buf[:n])
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

func (u *MMU) countLoad(addr uint64) {
	if IsKSEG(addr) {
		u.Stats.KSEGLoads++
	} else {
		u.Stats.VirtLoads++
	}
}

func (u *MMU) countStore(addr uint64) {
	if IsKSEG(addr) {
		u.Stats.KSEGStores++
	} else {
		u.Stats.VirtStores++
	}
}
