// Fixture: correctly ordered replication replorder must NOT flag —
// the canonical exec → advance → persist → replicate → ack path, the
// fenced read path, status-guarded refusals, epoch adoption persisted
// directly or through a helper, and epochs loaded from stable storage.
package fleet

type resp struct {
	Status int
}

type node struct {
	seq   uint64
	epoch uint64
}

func (n *node) persistSeq() error    { return nil }
func (n *node) confirmPeers(r *resp) {}
func (n *node) readFence() *resp     { return nil }
func (n *node) mutating(op int) bool { return op != 0 }

func Exec(op int) *resp { return &resp{} }

// serveClient is the canonical primary path: fence, serve reads, and
// for writes exec, advance, persist, replicate, then ack.
func (n *node) serveClient(op int) *resp {
	if f := n.readFence(); f != nil {
		return f
	}
	if !n.mutating(op) {
		return Exec(op)
	}
	r := Exec(op)
	if r.Status != 0 {
		return r // refusing a failed op is not an ack
	}
	n.seq++
	_ = n.persistSeq()
	n.confirmPeers(r)
	return r
}

// adoptDirect persists the adopted epoch immediately.
func (n *node) adoptDirect(e uint64) {
	if e >= n.epoch {
		n.epoch = e
		_ = n.persistSeq()
	}
}

// adoptViaHelper persists through a helper: the reach is seen through
// the call graph.
func (n *node) adoptViaHelper(e uint64) {
	n.epoch = e
	n.saveMeta()
}

func (n *node) saveMeta() {
	_ = n.persistSeq()
}

func load() uint64 { return 0 }

// restore assigns the epoch from stable storage: a load, not an
// adoption.
func (n *node) restore() {
	n.epoch = load()
}

// replBatch is the backup apply path: adopt-and-persist the frame's
// epoch, execute, then advance and persist.
func (n *node) replBatch(e uint64, ops []int) *resp {
	if e > n.epoch {
		n.epoch = e
		_ = n.persistSeq()
	}
	for _, op := range ops {
		r := Exec(op)
		if r.Status != 0 {
			return r
		}
	}
	n.seq++
	_ = n.persistSeq()
	return &resp{}
}
