// Command riod serves Rio file caches over a wire protocol: S
// independent simulated Rio machines (shards), each on its own
// goroutine, behind bounded per-shard queues with batch draining.
// Requests route to a shard by path hash; writes are durable the
// moment they are acknowledged (Rio's guarantee), and a shard can be
// administratively crashed and warm-rebooted under live load while the
// rest keep serving.
//
// Usage:
//
//	riod [-addr :7979] [-shards 4] [-policy rio] [-seed 1]
//	     [-queue 128] [-batch 32] [-mem MB] [-disk MB] [-net tcp|memory]
//	     [-peers N] [-replicas R] [-pprof host:port]
//
// -pprof serves net/http/pprof on the given address (loopback
// recommended) for profiling the serving path under live load:
//
//	riod -pprof localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// With -net tcp (the default) riod listens until SIGINT/SIGTERM, then
// drains: queued requests are answered, new ones refused, and the
// per-shard metrics table is printed on the way out.
//
// With -net memory riod runs a fixed, serialized workload against the
// in-process transport — including a crash and warm reboot of shard 0
// — and prints a transcript digest plus the metrics table. Because the
// load is serialized and the simulation is deterministic, the digest
// is byte-stable for a given seed and shard count: two runs printing
// the same line are running the same server.
//
// With -peers N (N > 0) riod boots a replicated fleet instead of a
// single server: N nodes, each shard placed on -replicas of them via
// rendezvous hashing, a primary acking writes only after its backups
// confirm (internal/fleet). The fleet runs a deterministic smoke — a
// write/read workload, then a machine kill of shard 0's primary, a
// promotion, and a byte-equality check on every acked write — and
// prints the digest plus fleet metrics. Exit status is nonzero if any
// acked write fails to read back.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"rio"
	"rio/internal/fleet"
	"rio/internal/server"
	"rio/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7979", "TCP listen address")
	netMode := flag.String("net", "tcp", "transport: tcp or memory (in-process deterministic smoke)")
	shards := flag.Int("shards", 4, "independent Rio machines")
	policy := flag.String("policy", "rio", "file-system policy per shard")
	seed := flag.Uint64("seed", 1, "base seed (shard i boots with sim.Mix(seed, i))")
	queue := flag.Int("queue", 128, "per-shard queue depth (full queue answers EAGAIN)")
	batch := flag.Int("batch", 32, "max requests per shard drain cycle")
	memMB := flag.Int("mem", 16, "memory per shard, MB")
	diskMB := flag.Int("disk", 32, "disk per shard, MB")
	peers := flag.Int("peers", 0, "fleet mode: boot this many replicated nodes (0 = single server)")
	replicas := flag.Int("replicas", 2, "replicas per shard in fleet mode (primary + R-1 backups)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	if *peers > 0 {
		runFleetSmoke(fleet.Config{
			Nodes: *peers, Replicas: *replicas, Shards: *shards,
			Seed: *seed, Policy: rio.Policy(*policy),
			MemoryMB: *memMB, DiskMB: *diskMB,
		})
		return
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank
			// import above.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "riod: pprof:", err)
			}
		}()
		fmt.Printf("riod: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	srv, err := server.New(server.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		MaxBatch:   *batch,
		Policy:     rio.Policy(*policy),
		Seed:       *seed,
		MemoryMB:   *memMB,
		DiskMB:     *diskMB,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "riod:", err)
		os.Exit(1)
	}

	switch *netMode {
	case "tcp":
		runTCP(srv, *addr)
	case "memory":
		runMemorySmoke(srv, *shards)
	default:
		fmt.Fprintf(os.Stderr, "riod: unknown -net %q (want tcp or memory)\n", *netMode)
		os.Exit(2)
	}
}

func runTCP(srv *server.Server, addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riod:", err)
		os.Exit(1)
	}
	fmt.Printf("riod: %d shards serving on %s (SIGINT drains and stops)\n",
		srv.NumShards(), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "riod: serve:", err)
	}
	srv.Close()
	fmt.Println("riod: drained")
	fmt.Print(srv.Metrics().Table())
}

// runMemorySmoke drives a fixed workload through the in-process
// transport and prints a deterministic digest of every response.
func runMemorySmoke(srv *server.Server, shards int) {
	defer srv.Close()
	digest := fnv.New64a()
	var statuses [16]int
	id := uint64(0)
	do := func(req *wire.Request) *wire.Response {
		id++
		req.ID = id
		resp := srv.Do(req)
		digest.Write(wire.AppendResponse(nil, resp))
		if int(resp.Status) < len(statuses) {
			statuses[resp.Status]++
		}
		return resp
	}

	const files = 64
	for i := 0; i < files; i++ {
		do(&wire.Request{Op: wire.OpWrite, Shard: -1,
			Path: fmt.Sprintf("/smoke/f%02d", i),
			Data: []byte(fmt.Sprintf("rio smoke payload %02d", i))})
	}
	for i := 0; i < files; i++ {
		p := fmt.Sprintf("/smoke/f%02d", i)
		do(&wire.Request{Op: wire.OpStat, Shard: -1, Path: p})
		do(&wire.Request{Op: wire.OpRead, Shard: -1, Path: p})
	}
	// Crash shard 0 and show the EAGAIN surface: requests for shard 0
	// bounce, others keep serving, then a warm reboot restores every
	// acknowledged write.
	do(&wire.Request{Op: wire.OpCrash, Shard: 0})
	for i := 0; i < files; i++ {
		do(&wire.Request{Op: wire.OpStat, Shard: -1, Path: fmt.Sprintf("/smoke/f%02d", i)})
	}
	do(&wire.Request{Op: wire.OpWarmboot, Shard: 0})
	lost := 0
	for i := 0; i < files; i++ {
		r := do(&wire.Request{Op: wire.OpRead, Shard: -1, Path: fmt.Sprintf("/smoke/f%02d", i)})
		if r.Status != wire.StatusOK {
			lost++
		}
	}
	for i := 0; i < shards; i++ {
		do(&wire.Request{Op: wire.OpSync, Shard: int32(i)})
	}

	fmt.Printf("riod memory smoke: %d ops, transcript digest %016x\n", id, digest.Sum64())
	fmt.Printf("  statuses: ok %d, again %d (shard-0 outage), other %d; files lost after warmboot: %d\n",
		statuses[wire.StatusOK], statuses[wire.StatusAgain],
		int(id)-statuses[wire.StatusOK]-statuses[wire.StatusAgain], lost)
	fmt.Print(srv.Metrics().Table())
	if lost != 0 {
		fmt.Fprintln(os.Stderr, "riod: acknowledged writes lost across warm reboot")
		os.Exit(1)
	}
}

// runFleetSmoke boots a replicated fleet and runs a deterministic
// machine-loss drill: write, kill shard 0's primary, let the
// coordinator promote, and verify every acked write reads back
// byte-equal from the survivors. Serialized traffic + deterministic
// simulation means the digest is byte-stable per (seed, peers,
// replicas, shards).
func runFleetSmoke(cfg fleet.Config) {
	f, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riod:", err)
		os.Exit(1)
	}
	cl := f.Client(nil)
	digest := fnv.New64a()
	ops := 0
	do := func(req *wire.Request) *wire.Response {
		ops++
		resp, err := cl.Do(req)
		if err != nil {
			// An unreachable node mid-failover; fold the miss into the
			// digest as a zero-status marker and let the caller retry.
			digest.Write([]byte{0xFF})
			return nil
		}
		digest.Write([]byte{byte(resp.Status)})
		digest.Write(resp.Data)
		return resp
	}

	const files = 64
	payload := func(i int) []byte { return []byte(fmt.Sprintf("rio fleet payload %02d", i)) }
	acked := 0
	for i := 0; i < files; i++ {
		r := do(&wire.Request{Op: wire.OpWrite, Shard: -1,
			Path: fmt.Sprintf("/smoke/f%02d", i), Data: payload(i)})
		if r != nil && r.Status == wire.StatusOK {
			acked++
		}
	}

	// Machine loss: shard 0's primary dies outright — memory, protected
	// cache and all. The coordinator notices via missed heartbeats and
	// promotes the most-advanced backup.
	victim := f.Table().Routes[0].Primary
	f.Kill(victim)
	for i := 0; i < 4; i++ {
		f.Tick()
	}

	lost := 0
	for i := 0; i < files; i++ {
		want := payload(i)
		ok := false
		for round := 0; round < 8 && !ok; round++ {
			r := do(&wire.Request{Op: wire.OpRead, Shard: -1, Path: fmt.Sprintf("/smoke/f%02d", i)})
			if r != nil && r.Status == wire.StatusOK && string(r.Data) == string(want) {
				ok = true
				break
			}
			f.Tick()
		}
		if !ok {
			lost++
		}
	}

	m := f.Metrics()
	nm := f.NodeMetrics()
	fmt.Printf("riod fleet smoke: %d nodes x %d replicas, %d ops, transcript digest %016x\n",
		cfg.Nodes, cfg.Replicas, ops, digest.Sum64())
	fmt.Printf("  killed %s; promotions %d, reconfigs %d, repairs %d; acked %d/%d, lost after machine loss: %d\n",
		victim, m.Promotions, m.Reconfigs, m.Repairs, acked, files, lost)
	fmt.Printf("  replication: sent %d, applied %d, dups %d, replays %d, fenced %d, snapshots %d; client redirects %d, retries %d\n",
		nm.ReplSent, nm.ReplApplied, nm.ReplDups, nm.Replays, nm.Fenced,
		nm.SnapshotsSent, cl.Stats.Redirects, cl.Stats.Retries)
	if acked != files || lost != 0 {
		fmt.Fprintln(os.Stderr, "riod: acknowledged writes lost across machine loss")
		os.Exit(1)
	}
}
