package fleet

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rio"
	"rio/internal/server"
	"rio/internal/sim"
	"rio/internal/txn"
	"rio/internal/wire"
)

// Fleet metadata lives inside each replica's protected cache, so it
// survives an OS crash exactly like user data: the (epoch, seq) file is
// what lets a warm-rebooted replica rejoin at the right position
// instead of demanding a full snapshot.
const (
	fleetDir = "/.fleet"
	seqPath  = "/.fleet/seq"
)

// Replication bounds. The tail ring is the in-flight window: a backup
// more than tailLen batches behind cannot be caught up by replay and
// needs a snapshot; a primary retries each frame replRetries times
// before reporting the backup suspect.
const (
	defaultTailLen     = 64
	defaultReplRetries = 3
)

// NodeConfig boots one fleet machine.
type NodeConfig struct {
	ID               string
	Shards           int // global shard count (fleet-wide constant)
	Seed             uint64
	Policy           rio.Policy
	MemoryMB, DiskMB int
	Transport        Transport
	TailLen          int
	ReplRetries      int
	// RetryDelay and Sleep are the bounded-retry backoff seam for
	// replication sends. The in-process transport fails instantly, so
	// the defaults (zero delay, no sleep) keep campaigns wall-clock
	// free; a TCP fleet sets both.
	RetryDelay time.Duration
	Sleep      func(time.Duration)
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.TailLen <= 0 {
		c.TailLen = defaultTailLen
	}
	if c.ReplRetries <= 0 {
		c.ReplRetries = defaultReplRetries
	}
	return c
}

// Node is one machine of the fleet: a replica (primary or backup) for
// each global shard placed on it, plus the node's view of the routing
// table. Replicas are independent — one lock and one rio.System each,
// the fleet's translation of the shard-per-goroutine discipline.
type Node struct {
	cfg NodeConfig

	mu   sync.Mutex
	reps map[int]*replica
	view *Table

	met NodeMetrics
}

// NodeMetrics counts one node's replication traffic.
type NodeMetrics struct {
	ReplSent      uint64 // frames acknowledged by a backup
	ReplRetries   uint64 // send attempts beyond the first
	ReplApplied   uint64 // frames this node applied as a backup
	ReplDups      uint64 // duplicate frames acknowledged without applying
	Replays       uint64 // tail frames re-sent to close a backup's gap
	Fenced        uint64 // stale-epoch frames refused with StatusMoved
	Redirects     uint64 // client requests answered StatusMoved
	Degraded      uint64 // writes applied locally but unacked (backup unreachable)
	ReadFences    uint64 // reads served after every active backup confirmed the epoch
	Crashes       uint64
	Warmboots     uint64
	SnapshotsSent uint64
}

// tailEnt is one retained replication frame.
type tailEnt struct {
	seq   uint64
	frame []byte
}

// replica is one shard's local copy. Its own lock serializes every
// touch of sys; the only cross-replica lock order is primary-then-
// backup for the same shard, so no cycle can form.
type replica struct {
	mu    sync.Mutex
	shard int
	sys   *rio.System

	role    Role
	epoch   uint64
	seq     uint64
	backups []string        // active peers (primary only; sorted)
	suspect map[string]bool // peers that failed replication (primary only)
	tail    []tailEnt
	down    bool // OS-crashed, awaiting warm reboot
}

// NewNode boots a node with no replicas; the coordinator installs them
// (fresh at fleet boot, by snapshot on rejoin).
func NewNode(cfg NodeConfig) *Node {
	return &Node{cfg: cfg.withDefaults(), reps: make(map[int]*replica)}
}

// ID returns the node's fleet-wide name (its client-visible address in
// a TCP fleet — StatusMoved redirects carry it verbatim).
func (n *Node) ID() string { return n.cfg.ID }

// shardIDs returns the node's replica shards in ascending order — the
// one iteration order every status report and bulk operation uses.
func (n *Node) shardIDs() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]int, 0, len(n.reps))
	for s := range n.reps {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	return ids
}

func (n *Node) replicaFor(shard int) *replica {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reps[shard]
}

// newSystem boots a fresh simulated machine for one shard replica.
func (n *Node) newSystem(shard int) (*rio.System, error) {
	return rio.New(rio.Config{
		Policy:   n.cfg.Policy,
		Seed:     sim.Mix(n.cfg.Seed, uint64(shard), strHash(n.cfg.ID)),
		MemoryMB: n.cfg.MemoryMB,
		DiskMB:   n.cfg.DiskMB,
	})
}

// AddReplica creates an empty replica for shard with the given role and
// epoch — fleet boot only; later joins go through InstallSnapshot.
func (n *Node) AddReplica(shard int, role Role, epoch uint64, backups []string) error {
	sys, err := n.newSystem(shard)
	if err != nil {
		return err
	}
	r := &replica{shard: shard, sys: sys, role: role, epoch: epoch,
		backups: append([]string(nil), backups...), suspect: make(map[string]bool)}
	if err := r.persistSeq(); err != nil {
		return err
	}
	n.mu.Lock()
	n.reps[shard] = r
	n.mu.Unlock()
	return nil
}

// Wipe drops every replica — the machine lost its memory. Only the
// coordinator calls it, after Kill and before a snapshot reinstall.
func (n *Node) Wipe() {
	n.mu.Lock()
	n.reps = make(map[int]*replica)
	n.mu.Unlock()
}

// persistSeq writes the replica's (epoch, seq) into the protected
// cache. Ordering matters on the backup path: the op is applied first,
// then the counter — a crash between the two leaves the counter one
// low, and the primary's tail replay re-applies an op that is
// idempotent by construction (absolute offsets only on the wire).
func (r *replica) persistSeq() error {
	if err := server.MkdirAll(r.sys, fleetDir); err != nil {
		return err
	}
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], r.epoch)
	binary.BigEndian.PutUint64(buf[8:], r.seq)
	return r.sys.WriteFile(seqPath, buf[:])
}

// loadSeq restores (epoch, seq) after a warm reboot.
func (r *replica) loadSeq() error {
	buf, err := r.sys.ReadFile(seqPath)
	if err != nil {
		return err
	}
	if len(buf) != 16 {
		return fmt.Errorf("fleet: seq file is %d bytes, want 16", len(buf))
	}
	r.epoch = binary.BigEndian.Uint64(buf[:8])
	r.seq = binary.BigEndian.Uint64(buf[8:])
	return nil
}

// tailAppend retains frame in the replay window.
func (r *replica) tailAppend(seq uint64, frame []byte, limit int) {
	r.tail = append(r.tail, tailEnt{seq: seq, frame: frame})
	if len(r.tail) > limit {
		r.tail = r.tail[len(r.tail)-limit:]
	}
}

// Serve handles one request arriving over the transport — from a
// client, a primary replicating, or the coordinator heartbeating.
func (n *Node) Serve(from string, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpHeartbeat:
		return n.serveHeartbeat(req)
	case wire.OpReplBatch:
		return n.serveReplBatch(req)
	case wire.OpReplPull:
		return n.serveReplPull(req)
	case wire.OpSnapshot:
		return n.serveSnapshot(req)
	case wire.OpCrash, wire.OpWarmboot:
		return n.serveAdmin(req)
	}
	return n.serveClient(req)
}

// serveHeartbeat adopts the coordinator's routing table and reports
// every local replica's position. This is how a deposed primary learns
// who to redirect to, and how the coordinator learns who is most
// advanced before a promotion.
func (n *Node) serveHeartbeat(req *wire.Request) *wire.Response {
	if len(req.Data) > 0 {
		t, err := DecodeTable(req.Data)
		if err != nil {
			return &wire.Response{ID: req.ID, Status: wire.StatusInvalid, Msg: err.Error()}
		}
		n.applyView(t)
	}
	return &wire.Response{ID: req.ID, Status: wire.StatusOK, Data: EncodeStatus(n.Status())}
}

// applyView reconciles local replicas against the coordinator's table.
// A newer epoch is authority: it can demote this node's primary (it
// was deposed while partitioned), change a primary's active backup
// set, or evict the replica entirely.
func (n *Node) applyView(t *Table) {
	n.mu.Lock()
	n.view = t
	n.mu.Unlock()
	for _, shard := range n.shardIDs() {
		r := n.replicaFor(shard)
		var route *Route
		for i := range t.Routes {
			if t.Routes[i].Shard == shard {
				route = &t.Routes[i]
				break
			}
		}
		if route == nil {
			continue
		}
		r.mu.Lock()
		if route.Epoch >= r.epoch {
			raised := route.Epoch > r.epoch
			r.epoch = route.Epoch
			switch {
			case route.Primary == n.cfg.ID:
				r.role = RolePrimary
				r.backups = append(r.backups[:0], route.Backups...)
				sort.Strings(r.backups)
				// Peers evicted from the route are no longer owed acks.
				for s := range r.suspect {
					if !contains(r.backups, s) {
						delete(r.suspect, s)
					}
				}
			case contains(route.Backups, n.cfg.ID):
				r.role = RoleBackup
			default:
				r.role = RoleDeposed
			}
			if raised && !r.down {
				// Persist the adopted epoch now, not on the next write: a
				// just-promoted primary that warm-reboots before its first
				// write would otherwise reload the stale epoch, emit fenced
				// frames, and depose itself until the next heartbeat. Best
				// effort — on failure the next persistSeq covers it.
				_ = r.persistSeq()
			}
		}
		r.mu.Unlock()
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Status reports every replica's position, ascending by shard.
func (n *Node) Status() []ReplicaStatus {
	var out []ReplicaStatus
	for _, shard := range n.shardIDs() {
		r := n.replicaFor(shard)
		r.mu.Lock()
		st := ReplicaStatus{Shard: shard, Role: r.role, Epoch: r.epoch, Seq: r.seq}
		for s, v := range r.suspect {
			if v {
				st.Suspect = append(st.Suspect, s)
			}
		}
		sort.Strings(st.Suspect)
		r.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Metrics snapshots the node's counters.
func (n *Node) Metrics() NodeMetrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.met
}

func (n *Node) count(f func(*NodeMetrics)) {
	n.mu.Lock()
	f(&n.met)
	n.mu.Unlock()
}

// movedTo answers StatusMoved naming shard's primary per this node's
// latest routing view — the redirect RetryClient follows.
func (n *Node) movedTo(req *wire.Request, shard int) *wire.Response {
	n.mu.Lock()
	addr := ""
	if n.view != nil {
		for i := range n.view.Routes {
			if n.view.Routes[i].Shard == shard {
				addr = n.view.Routes[i].Primary
				break
			}
		}
	}
	n.mu.Unlock()
	n.count(func(m *NodeMetrics) { m.Redirects++ })
	return &wire.Response{ID: req.ID, Status: wire.StatusMoved, Msg: addr}
}

// mutating reports whether op changes filesystem state and must be
// replicated before the client may be acknowledged.
func mutating(op wire.Op) bool {
	switch op {
	case wire.OpOpen, wire.OpWrite, wire.OpMkdir, wire.OpRm, wire.OpMv:
		return true
	}
	return false
}

// serveClient runs one client op against the local primary replica for
// its path's shard: execute locally, replicate the executed op to every
// active backup, and only then acknowledge — the ack is the fleet's
// durability promise, so it cannot precede the peers' copies.
func (n *Node) serveClient(req *wire.Request) *wire.Response {
	fail := func(st wire.Status, msg string) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: msg}
	}
	switch req.Op {
	case wire.OpTxnBegin, wire.OpTxnCommit, wire.OpTxnAbort:
		return fail(wire.StatusInvalid, "fleet nodes do not serve transactions (single-node riod does)")
	}
	if req.Txn != 0 {
		return fail(wire.StatusInvalid, "fleet nodes do not serve transactions (single-node riod does)")
	}
	if req.Path == "" {
		return fail(wire.StatusInvalid, fmt.Sprintf("%v needs a path", req.Op))
	}
	p, ok := txn.CanonicalPath(req.Path)
	if !ok {
		return fail(wire.StatusInvalid, fmt.Sprintf("malformed path %q", req.Path))
	}
	req.Path = p
	if req.Path2 != "" {
		p2, ok := txn.CanonicalPath(req.Path2)
		if !ok {
			return fail(wire.StatusInvalid, fmt.Sprintf("malformed path %q", req.Path2))
		}
		req.Path2 = p2
	}
	if reservedFleetPath(req.Path) || reservedFleetPath(req.Path2) {
		return fail(wire.StatusInvalid, fleetDir+" is reserved for replication metadata")
	}
	shard := ShardOf(req.Path, n.cfg.Shards)
	if req.Op == wire.OpMv && ShardOf(req.Path2, n.cfg.Shards) != shard {
		return fail(wire.StatusCrossShard, "mv across shards is not supported")
	}

	// Append offsets are the client's to resolve: an op whose effect
	// depends on current file size is not idempotent under retry — a
	// degraded write answered StatusAgain would be re-applied at a new
	// offset and duplicate its bytes. fleet.Client resolves the offset
	// once (Stat) and pins it; anything else is refused outright.
	if req.Op == wire.OpWrite && req.Offset < 0 {
		return fail(wire.StatusInvalid,
			"fleet requires absolute write offsets (client resolves appends; retries must be idempotent)")
	}

	r := n.replicaFor(shard)
	if r == nil {
		return n.movedTo(req, shard)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != RolePrimary {
		return n.movedTo(req, shard)
	}
	if r.down {
		return fail(wire.StatusAgain, fmt.Sprintf("node %s shard %d down (awaiting warmboot)", n.cfg.ID, shard))
	}

	if !mutating(req.Op) {
		if resp := n.readFence(r, req); resp != nil {
			return resp
		}
		return server.Exec(r.sys, req)
	}

	resp := server.Exec(r.sys, req)
	if crashed, why := r.sys.Crashed(); crashed {
		r.down = true
		return fail(wire.StatusAgain, fmt.Sprintf("node %s shard %d crashed: %s", n.cfg.ID, shard, why))
	}
	if resp.Status != wire.StatusOK {
		return resp // refused deterministically; nothing to replicate
	}

	r.seq++
	if err := r.persistSeq(); err != nil {
		return fail(wire.StatusIO, "persist seq: "+err.Error())
	}
	frame, err := EncodeBatch(&Batch{Epoch: r.epoch, Seq: r.seq, Ops: []*wire.Request{req}})
	if err != nil {
		return fail(wire.StatusIO, err.Error())
	}
	r.tailAppend(r.seq, frame, n.cfg.TailLen)

	// Ack-after-replicate: every active, non-suspect backup must hold
	// the frame before the client hears OK. A peer that cannot be
	// reached within the bounded retries makes the write "applied but
	// unacked" — the client sees StatusAgain and retries (idempotent by
	// the absolute-offset rule), while the coordinator's next tick
	// evicts the dead peer and the retry acks against the new epoch.
	degraded, fenced := n.confirmPeers(r, req, frame, false)
	if fenced != nil {
		return fenced
	}
	if degraded != "" {
		n.count(func(m *NodeMetrics) { m.Degraded++ })
		return fail(wire.StatusAgain, fmt.Sprintf(
			"shard %d write applied but backup %s unreachable; awaiting reconfiguration", shard, degraded))
	}
	return resp
}

// confirmPeers delivers frame to every active, non-suspect backup of r.
// degraded names a peer that could not confirm (now marked suspect);
// fenced is the StatusMoved redirect when a backup refused us as a
// stale epoch — this node has been deposed.
func (n *Node) confirmPeers(r *replica, req *wire.Request, frame []byte, fence bool) (degraded string, fenced *wire.Response) {
	for _, b := range r.backups {
		if b == n.cfg.ID || r.suspect[b] {
			if r.suspect[b] {
				degraded = b
			}
			continue
		}
		if ok, moved := n.replicateTo(r, b, frame, fence); !ok {
			if moved {
				return "", n.movedTo(req, r.shard)
			}
			r.suspect[b] = true
			degraded = b
		}
	}
	return degraded, nil
}

// readFence re-proves this replica's primacy before a read is served.
// A deposed primary under a pairwise partition — cut off from its
// peers and the coordinator but still reachable by clients — would
// otherwise serve arbitrarily stale reads after a promotion it never
// heard about. The fence is a zero-op frame pushed through the same
// epoch check as replication: every active backup must confirm our
// epoch, exactly the set a write would have to ack through. nil means
// the read may be served; a coordinator-blessed solo replica (empty
// backup set at the current epoch) serves without peers, which is as
// fenced as the fleet can be.
func (n *Node) readFence(r *replica, req *wire.Request) *wire.Response {
	if len(r.backups) == 0 {
		return nil
	}
	frame, err := EncodeBatch(&Batch{Epoch: r.epoch, Seq: r.seq})
	if err != nil {
		return &wire.Response{ID: req.ID, Status: wire.StatusIO, Msg: err.Error()}
	}
	degraded, fenced := n.confirmPeers(r, req, frame, true)
	if fenced != nil {
		return fenced
	}
	if degraded != "" {
		return &wire.Response{ID: req.ID, Status: wire.StatusAgain, Msg: fmt.Sprintf(
			"shard %d read fence: backup %s unreachable; awaiting reconfiguration", r.shard, degraded)}
	}
	n.count(func(m *NodeMetrics) { m.ReadFences++ })
	return nil
}

// replicateTo delivers frame to backup b with bounded retries,
// replaying the tail to close a sequence gap. fenced reports that b
// refused us as a stale epoch — this node has been deposed. fence
// marks a zero-op probe, which confirms the epoch but is not a
// replicated data frame and stays out of the ReplSent count.
func (n *Node) replicateTo(r *replica, b string, frame []byte, fence bool) (ok, fenced bool) {
	req := &wire.Request{Op: wire.OpReplBatch, Shard: int32(r.shard), Data: frame}
	for attempt := 0; attempt <= n.cfg.ReplRetries; attempt++ {
		if attempt > 0 {
			n.count(func(m *NodeMetrics) { m.ReplRetries++ })
			if n.cfg.Sleep != nil && n.cfg.RetryDelay > 0 {
				n.cfg.Sleep(n.cfg.RetryDelay << (attempt - 1))
			}
		}
		resp, err := n.cfg.Transport.Send(n.cfg.ID, b, req)
		if err != nil {
			continue
		}
		switch resp.Status {
		case wire.StatusOK:
			if !fence {
				n.count(func(m *NodeMetrics) { m.ReplSent++ })
			}
			return true, false
		case wire.StatusMoved:
			r.role = RoleDeposed
			return false, true
		case wire.StatusAgain:
			// The backup is behind (resp.Size = its seq): replay the
			// retained tail to close the gap, then retry the frame. A gap
			// older than the tail window needs a snapshot — the
			// coordinator's job, so report the peer suspect.
			if !n.replayTail(r, b, uint64(resp.Size)) {
				return false, false
			}
		default:
			return false, false
		}
	}
	return false, false
}

// replayTail re-sends retained frames with seq > from to b, in order.
// False when the window no longer reaches back to from.
func (n *Node) replayTail(r *replica, b string, from uint64) bool {
	if len(r.tail) == 0 || r.tail[0].seq > from+1 {
		return false
	}
	for _, ent := range r.tail {
		if ent.seq <= from {
			continue
		}
		resp, err := n.cfg.Transport.Send(n.cfg.ID, b,
			&wire.Request{Op: wire.OpReplBatch, Shard: int32(r.shard), Data: ent.frame})
		if err != nil || resp.Status != wire.StatusOK {
			return false
		}
		n.count(func(m *NodeMetrics) { m.Replays++ })
	}
	return true
}

// serveReplBatch applies one replication frame as a backup. Epoch
// fencing first — a frame from a deposed primary is refused with
// StatusMoved so the sender learns its place — then duplicate and gap
// detection by sequence number, then the ops run through the same
// server.Exec the primary used.
func (n *Node) serveReplBatch(req *wire.Request) *wire.Response {
	fail := func(st wire.Status, msg string) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: msg}
	}
	r := n.replicaFor(int(req.Shard))
	if r == nil {
		return fail(wire.StatusNotFound, fmt.Sprintf("node %s holds no replica of shard %d", n.cfg.ID, req.Shard))
	}
	b, err := DecodeBatch(req.Data)
	if err != nil {
		return fail(wire.StatusInvalid, err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		return fail(wire.StatusAgain, fmt.Sprintf("shard %d down (awaiting warmboot)", r.shard))
	}
	if b.Epoch < r.epoch || (r.role == RolePrimary && b.Epoch == r.epoch) {
		// A stale primary. Tell it where the shard lives now.
		n.count(func(m *NodeMetrics) { m.Fenced++ })
		return n.movedTo(req, r.shard)
	}
	if b.Epoch > r.epoch {
		// A newer configuration reached us through the data path before
		// the heartbeat did; adopt it. Whoever sends frames at the
		// newest epoch is the primary, so we are a backup. Persist the
		// adopted epoch immediately — fence frames and duplicates return
		// below without reaching the apply path's persist, and an epoch
		// held only in memory regresses across a warm reboot.
		r.epoch = b.Epoch
		r.role = RoleBackup
		if err := r.persistSeq(); err != nil {
			return fail(wire.StatusIO, "persist epoch: "+err.Error())
		}
	}
	if len(b.Ops) == 0 {
		// A read fence: the sender only needed the epoch check above.
		// Answer with our position and leave seq/tail untouched.
		return &wire.Response{ID: req.ID, Status: wire.StatusOK, Size: int64(r.seq)}
	}
	if b.Seq <= r.seq {
		n.count(func(m *NodeMetrics) { m.ReplDups++ })
		return &wire.Response{ID: req.ID, Status: wire.StatusOK, Size: int64(r.seq)}
	}
	if b.Seq != r.seq+1 {
		return &wire.Response{ID: req.ID, Status: wire.StatusAgain, Size: int64(r.seq),
			Msg: fmt.Sprintf("shard %d gap: have seq %d, got %d", r.shard, r.seq, b.Seq)}
	}
	for _, op := range b.Ops {
		opResp := server.Exec(r.sys, op)
		if crashed, why := r.sys.Crashed(); crashed {
			r.down = true
			return fail(wire.StatusAgain, fmt.Sprintf("shard %d crashed applying frame: %s", r.shard, why))
		}
		if opResp.Status != wire.StatusOK {
			// The primary executed this op successfully; a typed refusal
			// here means the replicas have diverged. Refuse the frame so
			// the primary reports us suspect and the coordinator repairs
			// us by snapshot, rather than paper over it.
			return fail(wire.StatusIO, fmt.Sprintf(
				"shard %d replica diverged applying %v %s: %s", r.shard, op.Op, op.Path, opResp.Msg))
		}
	}
	r.seq = b.Seq
	if err := r.persistSeq(); err != nil {
		return fail(wire.StatusIO, "persist seq: "+err.Error())
	}
	r.tailAppend(r.seq, req.Data, n.cfg.TailLen)
	n.count(func(m *NodeMetrics) { m.ReplApplied++ })
	return &wire.Response{ID: req.ID, Status: wire.StatusOK, Size: int64(r.seq)}
}

// serveReplPull returns retained tail frames with seq > req.Offset,
// concatenated as u32-length-prefixed frames. Size carries the
// replica's current seq; StatusNotFound means the window no longer
// reaches back that far and the puller needs a snapshot.
func (n *Node) serveReplPull(req *wire.Request) *wire.Response {
	r := n.replicaFor(int(req.Shard))
	if r == nil {
		return &wire.Response{ID: req.ID, Status: wire.StatusNotFound,
			Msg: fmt.Sprintf("node %s holds no replica of shard %d", n.cfg.ID, req.Shard)}
	}
	from := uint64(req.Offset)
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < r.seq && (len(r.tail) == 0 || r.tail[0].seq > from+1) {
		return &wire.Response{ID: req.ID, Status: wire.StatusNotFound, Size: int64(r.seq),
			Msg: fmt.Sprintf("shard %d tail starts past seq %d; snapshot required", r.shard, from)}
	}
	var data []byte
	for _, ent := range r.tail {
		if ent.seq <= from {
			continue
		}
		need := 4 + len(ent.frame)
		if len(data)+need > wire.MaxData {
			break // caller pulls again from the last seq it decoded
		}
		data = binary.BigEndian.AppendUint32(data, uint32(len(ent.frame)))
		data = append(data, ent.frame...)
	}
	return &wire.Response{ID: req.ID, Status: wire.StatusOK, Size: int64(r.seq), Data: data}
}

// serveAdmin crashes or warm-reboots one local replica — the OS-crash
// path. The protected cache survives (this is Rio), so a warm reboot
// restores the tree, reloads (epoch, seq) from it, and the replica
// resumes exactly where it acked.
func (n *Node) serveAdmin(req *wire.Request) *wire.Response {
	fail := func(st wire.Status, msg string) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: msg}
	}
	r := n.replicaFor(int(req.Shard))
	if r == nil {
		return fail(wire.StatusNotFound, fmt.Sprintf("node %s holds no replica of shard %d", n.cfg.ID, req.Shard))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch req.Op {
	case wire.OpCrash:
		if r.down {
			return fail(wire.StatusInvalid, fmt.Sprintf("shard %d already down", r.shard))
		}
		r.sys.Crash("fleet: administrative crash op")
		r.down = true
		n.count(func(m *NodeMetrics) { m.Crashes++ })
		return &wire.Response{ID: req.ID, Status: wire.StatusOK}
	default: // OpWarmboot
		rep, err := r.sys.WarmReboot()
		if err != nil {
			return fail(wire.StatusIO, "warm reboot failed: "+err.Error())
		}
		if err := r.loadSeq(); err != nil {
			return fail(wire.StatusIO, "fleet seq lost across reboot: "+err.Error())
		}
		r.down = false
		n.count(func(m *NodeMetrics) { m.Warmboots++ })
		return &wire.Response{ID: req.ID, Status: wire.StatusOK,
			Size: int64(rep.MetaRestored + rep.DataRestored)}
	}
}

// CrashNode OS-crashes every replica on the node (ascending shard
// order); WarmbootNode reboots them all. Together they are the "the OS
// went down, the machine did not" campaign case — no data is lost and
// no promotion is necessary, exactly the paper's warm-reboot story.
func (n *Node) CrashNode() {
	for _, shard := range n.shardIDs() {
		n.serveAdmin(&wire.Request{Op: wire.OpCrash, Shard: int32(shard)})
	}
}

// WarmbootNode reboots every replica; it returns the first error.
func (n *Node) WarmbootNode() error {
	for _, shard := range n.shardIDs() {
		resp := n.serveAdmin(&wire.Request{Op: wire.OpWarmboot, Shard: int32(shard)})
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("shard %d: %s", shard, resp.Msg)
		}
	}
	return nil
}

// reservedFleetPath reports whether p is under the fleet metadata
// prefix (p is canonical).
func reservedFleetPath(p string) bool {
	return p == fleetDir || strings.HasPrefix(p, fleetDir+"/")
}
