// Fixture: the replication-protocol orderings replorder must catch —
// acking before replication confirmed, persisting the sequence number
// before the op executed, serving reads without (or after, or ignoring)
// the fence, and adopting an epoch without persisting it (the PR-7
// review bug, reconstructed).
package fleet

type resp struct {
	Status int
}

type node struct {
	seq   uint64
	epoch uint64
}

func (n *node) persistSeq() error    { return nil }
func (n *node) confirmPeers(r *resp) {}
func (n *node) readFence() *resp     { return nil }
func (n *node) mutating(op int) bool { return op != 0 }

func Exec(op int) *resp { return &resp{} }

// ackEarly returns the executed op's response on a branch that skips
// replication: a machine loss after this return drops an acked write.
func (n *node) ackEarly(fast bool, op int) *resp {
	r := Exec(op)
	n.seq++
	_ = n.persistSeq()
	if fast {
		return r // want replorder "acked before every active backup confirmed"
	}
	n.confirmPeers(r)
	return r
}

// persistEarly advances and persists seq before executing: a crash
// between persist and exec makes tail replay skip the op.
func (n *node) persistEarly(op int) *resp {
	n.seq++
	_ = n.persistSeq() // want replorder "persisted before the op executed"
	r := Exec(op)
	n.confirmPeers(r)
	return r
}

// serveUnfenced branches on mutability but never fences: a deposed
// primary serves stale reads.
func (n *node) serveUnfenced(op int) *resp {
	if !n.mutating(op) { // want replorder "never calls readFence"
		return Exec(op)
	}
	return n.apply(op)
}

// apply is the properly ordered mutating path serveUnfenced defers to.
func (n *node) apply(op int) *resp {
	r := Exec(op)
	if r.Status != 0 {
		return r
	}
	n.seq++
	_ = n.persistSeq()
	n.confirmPeers(r)
	return r
}

// fenceLate fences only after the read already executed.
func (n *node) fenceLate(op int) *resp {
	if n.mutating(op) {
		return nil
	}
	r := Exec(op)
	if f := n.readFence(); f != nil { // want replorder "readFence runs after an op already executed"
		return f
	}
	return r
}

// fenceDropped calls the fence and ignores its verdict.
func (n *node) fenceDropped(op int) *resp {
	n.readFence() // want replorder "readFence result discarded"
	return Exec(op)
}

// promote adopts a higher epoch in volatile state only: a warm reboot
// reloads the old epoch and the replica re-serves a fenced role.
func (n *node) promote(e uint64) {
	if e >= n.epoch {
		n.epoch = e // want replorder "adopted epoch is never persisted"
	}
}
