// Package machine assembles a complete simulated system: physical memory,
// MMU, disk, kernel, Rio registry, the two file caches, and a mounted file
// system. Everything above this package (crash campaigns, the performance
// harness, the public API) manipulates whole machines.
package machine

import (
	"fmt"

	"rio/internal/cache"
	"rio/internal/disk"
	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/kvm"
	"rio/internal/mem"
	"rio/internal/mmu"
	"rio/internal/registry"
	"rio/internal/sim"
)

// Options configures a machine. The zero value is unusable; start from
// DefaultOptions.
type Options struct {
	// MemPages is physical memory size in 8 KB pages.
	MemPages int
	// DiskBlocks is disk capacity in 8 KB file-system blocks.
	DiskBlocks int64
	// NInodes is the inode-table capacity.
	NInodes int64
	// JournalBlocks reserves a journal region (used by the AdvFS policy).
	JournalBlocks int64
	// RegistryFrames is the size of the Rio registry area.
	RegistryFrames int
	// MetaCap / DataCap bound the buffer cache and UBC, in pages.
	MetaCap, DataCap int

	Policy     fs.Policy
	Costs      fs.Costs
	DiskParams disk.Params

	// FastPath runs bulk kernel operations as Go copies (perf runs);
	// crash campaigns leave it false so faults act on interpreted code.
	FastPath bool
	// Checksums maintains registry content checksums (crash campaigns).
	Checksums bool
	// CodePatching selects the software-check protection ablation instead
	// of mapping KSEG through the TLB.
	CodePatching bool

	// Seed drives all machine-local randomness.
	Seed uint64
}

// DefaultOptions returns a mid-sized machine suitable for tests and crash
// campaigns.
func DefaultOptions(pol fs.Policy) Options {
	return Options{
		MemPages:       768,
		DiskBlocks:     2048,
		NInodes:        1024,
		JournalBlocks:  0,
		RegistryFrames: 5, // 640 entries >= MetaCap+DataCap
		MetaCap:        160,
		DataCap:        384,
		Policy:         pol,
		Costs:          fs.DefaultCosts(),
		DiskParams:     disk.DefaultParams(),
		Checksums:      true,
		Seed:           1,
	}
}

// Machine is a fully assembled simulated system.
type Machine struct {
	Opt    Options
	Mem    *mem.Memory
	MMU    *mmu.MMU
	Disk   *disk.Disk
	Swap   *disk.Disk // optional UPS dump target (AttachSwap)
	Kernel *kernel.Kernel
	Reg    *registry.Registry
	Cache  *cache.Cache
	FS     *fs.FS
	Engine *sim.Engine
	Rng    *sim.Rand
	Text   *kvm.Text
}

// New formats a fresh disk and boots a machine on it. text may be nil to
// use the pristine kernel text.
func New(opt Options, text *kvm.Text) (*Machine, error) {
	if opt.Policy.Kind == fs.PolicyAdvFS && opt.JournalBlocks == 0 {
		opt.JournalBlocks = 64
	}
	d := disk.New(int(opt.DiskBlocks)*fs.BlockSize, opt.DiskParams)
	if _, err := fs.Mkfs(d, opt.NInodes, opt.JournalBlocks); err != nil {
		return nil, err
	}
	m := &Machine{
		Opt:  opt,
		Mem:  mem.New(opt.MemPages * mem.PageSize),
		Disk: d,
		Rng:  sim.NewRand(opt.Seed),
	}
	if err := m.Boot(text); err != nil {
		return nil, err
	}
	return m, nil
}

// protectionOn reports whether this configuration enforces Rio protection.
func (o Options) protectionOn() bool {
	return o.Policy.Kind == fs.PolicyRio && o.Policy.Protect
}

// Boot (re)builds the kernel and all software state over the machine's
// existing memory and disk. Pool frame contents are preserved, which is
// what makes a warm reboot possible; callers that want a cold boot call
// Mem.Scramble first.
func (m *Machine) Boot(text *kvm.Text) error {
	if text == nil {
		text = kernel.BuildText()
	}
	m.Text = text
	m.Mem.ClearFlags()

	u := mmu.New(m.Mem)
	if m.Opt.protectionOn() {
		u.EnforceProtection = true
		if m.Opt.CodePatching {
			u.CodePatching = true
		} else {
			u.MapAllThroughTLB = true
		}
	}
	m.MMU = u
	m.Kernel = kernel.New(m.Mem, u, text)
	m.Kernel.FastPath = m.Opt.FastPath

	reg, err := registry.New(m.Kernel, m.Opt.RegistryFrames, m.Opt.protectionOn())
	if err != nil {
		return err
	}
	m.Reg = reg

	c := cache.New(m.Kernel, reg, m.Opt.MetaCap, m.Opt.DataCap)
	c.Protect = m.Opt.protectionOn()
	c.Checksums = m.Opt.Checksums
	m.Cache = c

	m.Engine = sim.NewEngine(nil)
	fsys, err := fs.Mount(m.Kernel, c, m.Disk, m.Engine, m.Opt.Policy, m.Opt.Costs)
	if err != nil {
		return err
	}
	m.FS = fsys
	return nil
}

// Crashed returns the kernel's crash record, if any.
func (m *Machine) Crashed() *kernel.Crash { return m.Kernel.Crashed() }

// CrashFinish completes a crash: the stock panic path may flush dirty
// buffers (never under Rio), and the disk queue is resolved (in-flight
// sector torn, queued writes lost).
func (m *Machine) CrashFinish() {
	c := m.Kernel.Crashed()
	if c == nil {
		panic("machine: CrashFinish without a crash")
	}
	// A hung kernel does not run its panic routine; every other crash
	// kind reaches panic(), which on stock kernels syncs dirty buffers.
	if c.Kind != kernel.CrashHang {
		m.FS.OnPanic()
	}
	m.FS.CrashIO(m.Rng)
}

// Elapsed returns the simulated time since boot.
func (m *Machine) Elapsed() sim.Duration {
	return sim.Duration(m.Engine.Clock.Now())
}

// String describes the configuration.
func (m *Machine) String() string {
	prot := ""
	if m.Opt.protectionOn() {
		prot = "+protection"
	}
	return fmt.Sprintf("machine(%s%s, %d pages, %d blocks)",
		m.Opt.Policy.Kind, prot, m.Opt.MemPages, m.Opt.DiskBlocks)
}
