package fs

import (
	"fmt"

	"rio/internal/disk"
	"rio/internal/ioretry"
)

// FsckReport summarises what the consistency check found and repaired.
type FsckReport struct {
	BadDirents   int // directory entries pointing at free/invalid inodes
	OrphanInodes int // allocated inodes unreachable from the root
	BadPointers  int // block pointers out of range or doubly referenced
	BitmapFixes  int // allocation-bitmap bits that disagreed with reality
	IOErrors     int // block reads/writes that failed even after retries
}

// Clean reports whether the volume needed no repairs. I/O errors are
// tracked separately: a device failure is not a repair, but callers that
// care about completeness should inspect IOErrors too.
func (r FsckReport) Clean() bool {
	return r.BadDirents == 0 && r.OrphanInodes == 0 && r.BadPointers == 0 && r.BitmapFixes == 0
}

func (r FsckReport) String() string {
	return fmt.Sprintf("fsck: %d bad dirents, %d orphan inodes, %d bad pointers, %d bitmap fixes, %d I/O errors",
		r.BadDirents, r.OrphanInodes, r.BadPointers, r.BitmapFixes, r.IOErrors)
}

// Fsck checks and repairs an unmounted volume in place, like fsck(8) at
// boot. It walks the directory tree from the root, removes directory
// entries that reference free or invalid inodes, frees unreachable inodes,
// clears out-of-range or duplicate block pointers, and rebuilds the
// allocation bitmap from the reachable tree.
//
// Fsck guarantees a *consistent* volume, not an *intact* one: data that
// never reached the disk is simply gone, which is why a write-through
// system and Rio's warm reboot both matter.
func Fsck(d *disk.Disk) (FsckReport, error) {
	var rep FsckReport
	sb, err := ReadSuperblock(d)
	if err != nil {
		return rep, err
	}
	if sb.NBlocks != int64(d.NumSectors()/SectorsPerBlock) {
		return rep, fmt.Errorf("fs: superblock claims %d blocks, disk has %d",
			sb.NBlocks, d.NumSectors()/SectorsPerBlock)
	}

	// Boot-time retry loop: transient device errors get a few attempts,
	// but fsck runs before any mount exists, so there is no clock to
	// charge and no budget to degrade — a block that stays unreadable is
	// treated as zeroes (its references will be repaired away), and a
	// repair write that stays rejected is dropped. Both are counted.
	retry := ioretry.New(ioretry.Policy{MaxRetries: 4}, nil)
	readBlock := func(block int64) []byte {
		buf := make([]byte, BlockSize)
		err := retry.Do(func() error {
			_, err := d.Read(blockSector(block), buf)
			return err
		})
		if err != nil {
			rep.IOErrors++
		}
		return buf
	}
	writeBlock := func(block int64, img []byte) {
		err := retry.Do(func() error {
			return d.Commit(blockSector(block), img)
		})
		if err != nil {
			rep.IOErrors++
		}
	}

	// Load the inode table.
	inodeBlocks := sb.BitmapStart - sb.InodeStart
	inodes := make([]Inode, sb.NInodes)
	imgs := make([][]byte, inodeBlocks)
	imgDirty := make([]bool, inodeBlocks)
	for b := int64(0); b < inodeBlocks; b++ {
		imgs[b] = readBlock(sb.InodeStart + b)
		for s := 0; s < InodesPerBlock; s++ {
			ino := b*InodesPerBlock + int64(s)
			if ino >= sb.NInodes {
				break
			}
			inodes[ino].unmarshal(imgs[b][s*InodeSize : (s+1)*InodeSize])
		}
	}

	validData := func(block int64) bool {
		return block >= sb.DataStart && block < sb.JournalStart
	}

	// blockOwner tracks which blocks the reachable tree references.
	blockOwner := make(map[int64]uint32)
	// claimBlocks validates an inode's pointers, clearing bad ones.
	claimBlocks := func(ino uint32, n *Inode) bool {
		changed := false
		claim := func(p *int32) {
			if *p == 0 {
				return
			}
			b := int64(*p)
			if !validData(b) {
				rep.BadPointers++
				*p = 0
				changed = true
				return
			}
			if _, dup := blockOwner[b]; dup {
				rep.BadPointers++
				*p = 0
				changed = true
				return
			}
			blockOwner[b] = ino
		}
		for i := range n.Direct {
			claim(&n.Direct[i])
		}
		if n.Indirect != 0 {
			ib := int64(n.Indirect)
			if !validData(ib) {
				rep.BadPointers++
				n.Indirect = 0
				changed = true
			} else if _, dup := blockOwner[ib]; dup {
				rep.BadPointers++
				n.Indirect = 0
				changed = true
			} else {
				blockOwner[ib] = ino
				img := readBlock(ib)
				indDirty := false
				for e := 0; e < PtrsPerBlock; e++ {
					var ptr uint32
					for i := 0; i < 4; i++ {
						ptr |= uint32(img[e*4+i]) << (8 * i)
					}
					if ptr == 0 {
						continue
					}
					pb := int64(ptr)
					if !validData(pb) {
						rep.BadPointers++
						for i := 0; i < 4; i++ {
							img[e*4+i] = 0
						}
						indDirty = true
						continue
					}
					if _, dup := blockOwner[pb]; dup {
						rep.BadPointers++
						for i := 0; i < 4; i++ {
							img[e*4+i] = 0
						}
						indDirty = true
						continue
					}
					blockOwner[pb] = ino
				}
				if indDirty {
					writeBlock(ib, img)
				}
			}
		}
		return changed
	}

	markInodeDirty := func(ino uint32) {
		b := int64(ino) / InodesPerBlock
		s := int(int64(ino) % InodesPerBlock)
		inodes[ino].marshal(imgs[b][s*InodeSize : (s+1)*InodeSize])
		imgDirty[b] = true
	}

	// Walk the tree.
	reachable := make(map[uint32]bool)
	queue := []uint32{sb.RootIno}
	reachable[sb.RootIno] = true
	if inodes[sb.RootIno].Mode != ModeDir {
		// A destroyed root directory: re-create it empty.
		inodes[sb.RootIno] = Inode{Mode: ModeDir, Nlink: 1}
		markInodeDirty(sb.RootIno)
		rep.OrphanInodes++
	}
	for len(queue) > 0 {
		dirIno := queue[0]
		queue = queue[1:]
		dir := &inodes[dirIno]
		if claimBlocks(dirIno, dir) {
			markInodeDirty(dirIno)
		}
		// Scan entries across the directory's claimed blocks.
		scanBlock := func(db int64) {
			if db == 0 {
				return
			}
			img := readBlock(db)
			dirty := false
			for s := 0; s < DirentsPerBlock; s++ {
				de := unmarshalDirent(img[s*DirentSize : (s+1)*DirentSize])
				if de.Ino == 0 {
					continue
				}
				bad := int64(de.Ino) >= sb.NInodes ||
					inodes[de.Ino].Mode == ModeFree ||
					reachable[de.Ino] // second link; we only support one
				if bad {
					rep.BadDirents++
					for i := 0; i < DirentSize; i++ {
						img[s*DirentSize+i] = 0
					}
					dirty = true
					continue
				}
				reachable[de.Ino] = true
				if inodes[de.Ino].Mode == ModeDir {
					queue = append(queue, de.Ino)
				} else {
					if claimBlocks(de.Ino, &inodes[de.Ino]) {
						markInodeDirty(de.Ino)
					}
				}
			}
			if dirty {
				writeBlock(db, img)
			}
		}
		for i := range dir.Direct {
			scanBlock(int64(dir.Direct[i]))
		}
		if dir.Indirect != 0 {
			img := readBlock(int64(dir.Indirect))
			for e := 0; e < PtrsPerBlock; e++ {
				var ptr uint32
				for i := 0; i < 4; i++ {
					ptr |= uint32(img[e*4+i]) << (8 * i)
				}
				scanBlock(int64(ptr))
			}
		}
	}

	// Free unreachable inodes.
	for ino := uint32(1); int64(ino) < sb.NInodes; ino++ {
		if inodes[ino].Mode != ModeFree && !reachable[ino] {
			rep.OrphanInodes++
			inodes[ino] = Inode{Mode: ModeFree}
			markInodeDirty(ino)
		}
	}

	// Flush repaired inode blocks.
	for b := int64(0); b < inodeBlocks; b++ {
		if imgDirty[b] {
			writeBlock(sb.InodeStart+b, imgs[b])
		}
	}

	// Rebuild the bitmap from reachability.
	bitmapBlocks := sb.DataStart - sb.BitmapStart
	for bb := int64(0); bb < bitmapBlocks; bb++ {
		img := readBlock(sb.BitmapStart + bb)
		fresh := make([]byte, BlockSize)
		first := bb * BlockSize * 8
		for i := int64(0); i < BlockSize*8; i++ {
			block := first + i
			used := block < sb.DataStart ||
				(block >= sb.JournalStart && block < sb.NBlocks)
			if _, ok := blockOwner[block]; ok {
				used = true
			}
			if used {
				fresh[i/8] |= 1 << (i % 8)
			}
		}
		for i := range fresh {
			if fresh[i] != img[i] {
				// Count bit differences.
				diff := fresh[i] ^ img[i]
				for diff != 0 {
					rep.BitmapFixes++
					diff &= diff - 1
				}
			}
		}
		writeBlock(sb.BitmapStart+bb, fresh)
	}
	return rep, nil
}
