package sim

import "testing"

func TestMixDeterministic(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix is not a pure function")
	}
}

func TestMixPositionSensitive(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix ignores word order")
	}
	if Mix(0, 1) == Mix(1, 0) {
		t.Fatal("Mix ignores zero-word position")
	}
	if Mix(1) == Mix(1, 0) || Mix() == Mix(0) {
		t.Fatal("Mix ignores word count")
	}
}

func TestMixDispersion(t *testing.T) {
	// Neighbouring coordinates — the crash campaign's (seed, sys, fault,
	// attempt) lattice — must land on distinct, well-spread seeds.
	seen := make(map[uint64]bool)
	n := 0
	for sys := uint64(0); sys < 3; sys++ {
		for ft := uint64(0); ft < 13; ft++ {
			for a := uint64(0); a < 500; a++ {
				v := Mix(1, sys, ft, a)
				if seen[v] {
					t.Fatalf("collision at (%d,%d,%d)", sys, ft, a)
				}
				seen[v] = true
				n++
			}
		}
	}
	if len(seen) != n {
		t.Fatal("dispersion accounting broken")
	}
}

func TestMixFeedsIndependentStreams(t *testing.T) {
	// Seeds one apart must still yield uncorrelated generator output —
	// the property the campaign relies on for cell independence.
	a := NewRand(Mix(9, 0, 0, 0))
	b := NewRand(Mix(9, 0, 0, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Bool() == b.Bool() {
			same++
		}
	}
	if same < 16 || same > 48 {
		t.Fatalf("adjacent-coordinate streams look correlated: %d/64 agree", same)
	}
}
