// Package protfix is the protpair clean fixture: the accepted window
// shapes — defer-paired, straight-line paired, defer via closure — plus
// a reasoned suppression for a frame that legitimately stays writable.
package protfix

type mmu struct{}

func (m *mmu) SetFrameProtection(frame int, protected bool) {}

type kern struct {
	mmu mmu
}

func store(frame int) error { return nil }

// writeBlockDefer closes the window on every return path by defer.
func (k *kern) writeBlockDefer(frame int) error {
	k.mmu.SetFrameProtection(frame, false)
	defer k.mmu.SetFrameProtection(frame, true)
	return store(frame)
}

// writeBlockDeferClosure closes it from a deferred closure.
func (k *kern) writeBlockDeferClosure(frame int) error {
	k.mmu.SetFrameProtection(frame, false)
	defer func() {
		k.mmu.SetFrameProtection(frame, true)
	}()
	return store(frame)
}

// writeBlockStraight is the open-copy-close idiom with no return between
// the toggles.
func (k *kern) writeBlockStraight(frame int) {
	k.mmu.SetFrameProtection(frame, false)
	store(frame)
	k.mmu.SetFrameProtection(frame, true)
}

// freeFrame mirrors the kernel's FreeFrame: the frame is leaving cache
// service, so dropping protection without re-raising it is the point.
func (k *kern) freeFrame(frame int) {
	//riolint:protpair freed frame returns to the pool unprotected by design
	k.mmu.SetFrameProtection(frame, false)
}
