// Package cache is a maporder violating fixture. dropFileData is a
// regression-test reconstruction of the PR-2 motivating bug: map
// iteration order decided the order buffers were removed, which decided
// free-list order, which decided the disk-op order a fault plan keyed
// on — identical seeded runs diverged.
package cache

type buf struct {
	fileBlock int64
}

type store struct {
	data  map[int64]*buf
	freed []int64
	sum   int64
	last  int64
	log   chan int64
}

func (s *store) remove(b *buf) {
	s.freed = append(s.freed, b.fileBlock)
}

// dropFileData removes victims straight out of map order: the PR-2 bug.
func (s *store) dropFileData(from int64) {
	for _, b := range s.data { // want maporder "order-sensitive"
		if b.fileBlock >= from {
			s.remove(b)
		}
	}
}

// announce leaks map order through a channel.
func (s *store) announce() {
	for k := range s.data { // want maporder "order-sensitive"
		s.log <- k
	}
}

// lastKey publishes whichever key the runtime happened to visit last.
func (s *store) lastKey() {
	for k := range s.data { // want maporder "order-sensitive"
		s.last = k
	}
}

// firstOver returns an arbitrary matching element: first-match depends
// on iteration order.
func (s *store) firstOver(from int64) *buf {
	for _, b := range s.data { // want maporder "order-sensitive"
		if b.fileBlock >= from {
			return b
		}
	}
	return nil
}

// collectUnsorted appends in map order and never sorts, so the caller
// sees a randomly ordered slice.
func (s *store) collectUnsorted() []int64 {
	var out []int64
	for k := range s.data { // want maporder "order-sensitive"
		out = append(out, k)
	}
	return out
}

var _ = (&store{}).dropFileData
