package scenario

import (
	"bytes"
	"testing"
)

// mustRun parses, runs at the given worker count, and returns the
// canonical JSON report.
func mustRun(t *testing.T, spec string, workers int) ([]byte, *Result) {
	t.Helper()
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: workers}
	res, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	js, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return js, res
}

// checkWorkerInvariance is the tentpole's core promise: the report is
// byte-identical at 1 and 8 workers.
func checkWorkerInvariance(t *testing.T, spec string) *Result {
	t.Helper()
	js1, res := mustRun(t, spec, 1)
	js8, _ := mustRun(t, spec, 8)
	if !bytes.Equal(js1, js8) {
		t.Fatalf("report differs between -workers 1 and -workers 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", js1, js8)
	}
	return res
}

func TestCrashScenarioWorkerInvariance(t *testing.T) {
	res := checkWorkerInvariance(t, `{
		"name":"crash-inv","kind":"crash","seed":11,"runs":4,
		"workload":{"name":"hotkey","keys":24,"skew":1.1},
		"faults":{"types":["kernel text"]},
		"schedule":{"warmup_ops":10,"max_ops":120},
		"topology":{"systems":["rio-prot"]}}`)
	if res.Totals.Runs != 4 {
		t.Fatalf("runs folded: %d", res.Totals.Runs)
	}
	if len(res.Cells) != 1 || res.Cells[0].Label != "rio-prot/kernel text" {
		t.Fatalf("cells: %+v", res.Cells)
	}
	if res.Cells[0].Crashed+res.Cells[0].Discarded+res.Cells[0].Errors != 4 {
		t.Fatalf("cell accounting: %+v", res.Cells[0])
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("rio-prot scenario breached the gate: %v", err)
	}
}

func TestServerScenarioWorkerInvariance(t *testing.T) {
	res := checkWorkerInvariance(t, `{
		"name":"server-inv","kind":"server","seed":13,"runs":3,
		"workload":{"name":"hotkey","keys":24,"skew":1.0},
		"schedule":{"max_ops":80,"crash_at":20,"outage_ops":20},
		"topology":{"shards":2}}`)
	c := res.Cells[0]
	if c.Acked == 0 {
		t.Fatal("no writes acked")
	}
	if c.Unacked == 0 {
		t.Fatal("outage never refused a write; the crash window missed the load")
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("server scenario breached the gate: %v", err)
	}
}

func TestFleetScenarioWorkerInvariance(t *testing.T) {
	res := checkWorkerInvariance(t, `{
		"name":"fleet-inv","kind":"fleet","seed":17,"runs":4,
		"topology":{"fleet_faults":["os-crash","kill-primary"]}}`)
	if len(res.Cells) != 2 {
		t.Fatalf("cells: %+v", res.Cells)
	}
	if res.Totals.Checked == 0 {
		t.Fatal("no acked writes verified")
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("fleet scenario breached the gate: %v", err)
	}
}

func TestTxnScenarioRuns(t *testing.T) {
	js1, res := mustRun(t, `{
		"name":"txn","kind":"crash","seed":19,"runs":2,
		"workload":{"name":"txntest","accounts":4},
		"faults":{"types":["kernel heap"]},
		"schedule":{"warmup_ops":4,"max_ops":60}}`, 2)
	if len(js1) == 0 {
		t.Fatal("empty report")
	}
	if res.Totals.Torn != 0 {
		t.Fatalf("torn commits: %d", res.Totals.Torn)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("txn cells: %+v", res.Cells)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	r := &Runner{}
	if _, err := r.Run(&Spec{Name: "x", Kind: "crash", Runs: -1}); err == nil {
		t.Fatal("invalid spec ran")
	}
}

func TestTableAndLatency(t *testing.T) {
	_, res := mustRun(t, `{
		"name":"tbl","kind":"fleet","seed":23,"runs":2,
		"topology":{"fleet_faults":["os-crash"]}}`, 1)
	tbl := res.Table()
	if tbl == "" || res.LatencyTable() != "" {
		t.Fatalf("table %q, latency without clock should be empty: %q", tbl, res.LatencyTable())
	}
}
