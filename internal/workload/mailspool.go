package workload

import (
	"encoding/binary"
	"fmt"
	"sort"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// MailSpool is maildir-shaped small-file churn: messages are written
// into /spool/tmp and renamed into /spool/new (the classic
// write-then-rename atomic delivery), then consumed with a read plus
// unlink. It is the canonical many-small-files metadata workload — the
// population turns over constantly, so almost all of the state is
// recently dirtied metadata, exactly the traffic the paper says lives
// (and dies) in the file cache.
//
// The contract Check enforces: a delivered message (rename acked) must
// be present and byte-exact in new/ — gone means the ack was a lie
// (Lost). A consumed message (unlink acked) must stay gone —
// reappearing means the consume rolled back (Lost, the mail gets
// re-delivered). A message visible in both tmp/ and new/ outside the
// one in-flight delivery is a rename half-applied (Torn). Frames that
// fail their checksum are Corruptions.
//
// Message frame: magic u64 | id u64 | plen u32 | payload | cksum u64
type MailSpool struct {
	// WriteThrough fsyncs each message before its delivering rename.
	WriteThrough bool
	// MaxQueue bounds the live message count; above it, consumes are
	// forced so the spool churns instead of growing.
	MaxQueue int

	seed  uint64
	rng   *sim.Rand
	next  uint64   // next message id to deliver
	live  []uint64 // delivered, unconsumed ids (deterministic order)
	dead  []uint64 // consumed ids (bounded; for resurrection checks)
	steps int

	inFlight *spoolOp

	// ReadMismatches counts online consume-side payload mismatches.
	ReadMismatches int
}

// spoolOp is the one in-flight spool operation.
type spoolOp struct {
	id    uint64
	phase int // spWrite, spRename, spUnlink
}

const (
	spWrite = iota
	spRename
	spUnlink
)

const (
	spoolMagic  = 0x52696f53706f6f6c // "RioSpool"
	spoolHeader = 8 + 8 + 4
	spoolDead   = 64 // resurrection watch-list bound
)

// NewMailSpool returns the spool workload.
func NewMailSpool(seed uint64, maxQueue int) *MailSpool {
	if maxQueue < 1 {
		maxQueue = 32
	}
	return &MailSpool{
		MaxQueue: maxQueue,
		seed:     seed,
		rng:      sim.NewRand(sim.Mix(seed, 0x5000147E)),
		next:     1,
	}
}

// Name implements Workload.
func (ms *MailSpool) Name() string { return "mailspool" }

func (ms *MailSpool) tmpPath(id uint64) string { return fmt.Sprintf("/spool/tmp/m%08d", id) }
func (ms *MailSpool) newPath(id uint64) string { return fmt.Sprintf("/spool/new/m%08d", id) }

// plen is the message-body length for id — small, maildir-shaped.
func (ms *MailSpool) plen(id uint64) int {
	return 64 + int(sim.Mix(ms.seed, id)%3072)
}

// frame builds the message image for id.
func (ms *MailSpool) frame(id uint64) []byte {
	p := kernel.FillBytes(ms.plen(id), sim.Mix(ms.seed, id, 0x3A11)|1)
	buf := make([]byte, 0, spoolHeader+len(p)+8)
	buf = binary.BigEndian.AppendUint64(buf, spoolMagic)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
	buf = append(buf, p...)
	return binary.BigEndian.AppendUint64(buf, fnv64(buf[8:]))
}

// Setup creates the spool directories.
func (ms *MailSpool) Setup(fsys *fs.FS) error {
	for _, d := range []string{"/spool", "/spool/tmp", "/spool/new"} {
		if err := fsys.Mkdir(d); err != nil && err != fs.ErrExists {
			return err
		}
	}
	return nil
}

// Step delivers, consumes, or rescans.
func (ms *MailSpool) Step(fsys *fs.FS) error {
	ms.steps++
	switch r := ms.rng.Float64(); {
	case (r < 0.5 && len(ms.live) < ms.MaxQueue) || len(ms.live) == 0:
		return ms.doDeliver(fsys)
	case r < 0.9:
		return ms.doConsume(fsys)
	default:
		return ms.doRescan(fsys)
	}
}

// doDeliver writes the message into tmp/ and renames it into new/ —
// delivery is acked only after the rename returns.
func (ms *MailSpool) doDeliver(fsys *fs.FS) error {
	id := ms.next
	ms.inFlight = &spoolOp{id: id, phase: spWrite}
	f, err := fsys.Create(ms.tmpPath(id))
	if err != nil {
		return err
	}
	if _, err := f.Write(ms.frame(id)); err != nil {
		return err
	}
	if ms.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	ms.inFlight.phase = spRename
	if err := fsys.Rename(ms.tmpPath(id), ms.newPath(id)); err != nil {
		return err
	}
	ms.next = id + 1
	ms.live = append(ms.live, id)
	ms.inFlight = nil
	return nil
}

// doConsume reads one live message (verifying the body online) and
// unlinks it.
func (ms *MailSpool) doConsume(fsys *fs.FS) error {
	if len(ms.live) == 0 {
		return ms.doDeliver(fsys)
	}
	i := ms.rng.Intn(len(ms.live))
	id := ms.live[i]
	ms.inFlight = &spoolOp{id: id, phase: spUnlink}
	f, err := fsys.Open(ms.newPath(id))
	if err != nil {
		return err
	}
	want := ms.frame(id)
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for j := range want {
		if got[j] != want[j] {
			ms.ReadMismatches++
			break
		}
	}
	if err := fsys.Unlink(ms.newPath(id)); err != nil {
		return err
	}
	ms.live = append(ms.live[:i], ms.live[i+1:]...)
	ms.dead = append(ms.dead, id)
	if len(ms.dead) > spoolDead {
		ms.dead = ms.dead[len(ms.dead)-spoolDead:]
	}
	ms.inFlight = nil
	return nil
}

// doRescan lists new/ and checks the live count online, the periodic
// queue scan every spool daemon runs.
func (ms *MailSpool) doRescan(fsys *fs.FS) error {
	ents, err := fsys.ReadDir("/spool/new")
	if err != nil {
		return err
	}
	if len(ents) != len(ms.live) {
		ms.ReadMismatches++
	}
	return nil
}

// Check implements Workload.
func (ms *MailSpool) Check(fsys *fs.FS) Verdict {
	v := Verdict{Checked: len(ms.live)}
	fl := ms.inFlight

	// Index what is actually on disk (sorted; ReadDir order is not part
	// of the oracle).
	inNew := ms.listIDs(fsys, "/spool/new")
	inTmp := ms.listIDs(fsys, "/spool/tmp")

	// Every acked-delivered, unconsumed message must be in new/ and
	// byte-exact.
	for _, id := range ms.live {
		if fl != nil && fl.id == id && fl.phase == spUnlink {
			continue // consume in flight: present or gone, both fine
		}
		if !inNew[id] {
			v.Lost++
			v.Corruptions = append(v.Corruptions, Corruption{ms.newPath(id),
				"acked delivery lost"})
			continue
		}
		if d := ms.checkFrame(fsys, ms.newPath(id), id); d != "" {
			v.Corruptions = append(v.Corruptions, Corruption{ms.newPath(id), d})
		}
	}

	// tmp/ must hold at most the one in-flight delivery; a message in
	// both tmp/ and new/ is a torn rename.
	for _, id := range sortedIDs(inTmp) {
		inFlightHere := fl != nil && fl.id == id && (fl.phase == spWrite || fl.phase == spRename)
		if inNew[id] && !inFlightHere {
			v.Torn++
			v.Corruptions = append(v.Corruptions, Corruption{ms.tmpPath(id),
				"torn delivery: message in both tmp/ and new/"})
			continue
		}
		if !inFlightHere {
			v.Corruptions = append(v.Corruptions, Corruption{ms.tmpPath(id),
				"stray tmp message (no delivery in flight)"})
		}
	}

	// Consumed messages must stay consumed.
	for _, id := range ms.dead {
		if fl != nil && fl.id == id {
			continue
		}
		if inNew[id] {
			v.Lost++
			v.Corruptions = append(v.Corruptions, Corruption{ms.newPath(id),
				"consumed message resurrected (acked unlink rolled back)"})
		}
	}

	// new/ must hold nothing beyond the oracle's live set (plus the
	// in-flight delivery or consume).
	liveSet := make(map[uint64]bool, len(ms.live))
	for _, id := range ms.live {
		liveSet[id] = true
	}
	deadSet := make(map[uint64]bool, len(ms.dead))
	for _, id := range ms.dead {
		deadSet[id] = true
	}
	for _, id := range sortedIDs(inNew) {
		if liveSet[id] || deadSet[id] {
			continue // dead handled above
		}
		if fl != nil && fl.id == id {
			continue // delivery in flight: landing early is fine
		}
		v.Corruptions = append(v.Corruptions, Corruption{ms.newPath(id),
			"unexpected message (never delivered or long consumed)"})
	}
	return v
}

// listIDs returns the message ids present under dir.
func (ms *MailSpool) listIDs(fsys *fs.FS, dir string) map[uint64]bool {
	out := map[uint64]bool{}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return out
	}
	for _, e := range ents {
		var id uint64
		if n, err := fmt.Sscanf(e.Name, "m%d", &id); n == 1 && err == nil {
			out[id] = true
		}
	}
	return out
}

// sortedIDs flattens a presence set into ascending order so conviction
// order (and hence report bytes) is deterministic.
func sortedIDs(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkFrame reads the message at path and diffs it against the
// oracle frame for id; returns a non-empty detail on mismatch.
func (ms *MailSpool) checkFrame(fsys *fs.FS, path string, id uint64) string {
	want := ms.frame(id)
	f, err := fsys.Open(path)
	if err != nil {
		return "unreadable: " + err.Error()
	}
	defer f.Close()
	st, err := fsys.Stat(path)
	if err != nil {
		return "stat failed: " + err.Error()
	}
	if st.Size != int64(len(want)) {
		return fmt.Sprintf("size %d, want %d", st.Size, len(want))
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		return "read failed: " + err.Error()
	}
	for j := range want {
		if got[j] != want[j] {
			return fmt.Sprintf("byte %d: got %#x, want %#x", j, got[j], want[j])
		}
	}
	return ""
}
