// Package scenario is the declarative campaign surface: a small,
// bounds-checked spec describing workload × fault plan × crash/kill
// schedule × topology, compiled into one of the deterministic campaign
// runners (single-machine crashtest, the sharded server, or the
// replicated fleet). A spec plus a worker count fully determines the
// report bytes: every seed in the compiled campaign derives from the
// spec's seed via sim.Mix, results land in per-plan slots, and folds
// walk plan order — so `rioscn -workers 1` and `-workers 8` emit
// identical JSON, and any campaign cell is reproducible from the spec
// file alone.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rio/internal/crashtest"
	"rio/internal/crashtest/fleetcampaign"
	"rio/internal/fault"
)

// MaxSpecBytes bounds a parseable spec. Specs are hand-written
// configuration; anything larger is hostile or a mistake.
const MaxSpecBytes = 1 << 16

// Kind selects the execution engine.
const (
	KindCrash  = "crash"  // single-machine fault-injection campaign
	KindServer = "server" // sharded riod crash-under-load
	KindFleet  = "fleet"  // replicated fleet machine-loss campaign
)

// Spec is one scenario. The zero value of every optional field means
// "engine default"; Validate fills defaults in place so a validated
// spec is also the canonical one.
type Spec struct {
	// Name labels the report row; defaults to the file stem in rioscn.
	Name string `json:"name"`
	// Kind picks the engine: crash, server, or fleet.
	Kind string `json:"kind"`
	// Seed roots every derived stream. 0 is a valid seed.
	Seed uint64 `json:"seed"`
	// Runs is the number of campaign plans (cells × attempts are
	// derived from it per kind).
	Runs int `json:"runs"`

	Workload WorkloadSpec `json:"workload"`
	Faults   FaultSpec    `json:"faults"`
	Schedule ScheduleSpec `json:"schedule"`
	Topology TopologySpec `json:"topology"`
}

// WorkloadSpec names and sizes the workload. Only the fields the named
// workload uses are consulted; Validate rejects mis-sized ones.
type WorkloadSpec struct {
	// Name: memtest, txntest, metacache, mailspool, hotkey, or scan.
	Name string `json:"name"`
	// Bytes is memtest's file-set budget.
	Bytes int `json:"bytes,omitempty"`
	// Accounts is txntest's account count.
	Accounts int `json:"accounts,omitempty"`
	// Files is metacache's source-file count.
	Files int `json:"files,omitempty"`
	// Queue is mailspool's live-message bound.
	Queue int `json:"queue,omitempty"`
	// Keys is hotkey's key-space size (also the server workload's).
	Keys int `json:"keys,omitempty"`
	// Skew is the zipf exponent for metacache/hotkey/server streams.
	Skew float64 `json:"skew,omitempty"`
	// EpochLen is hotkey's steps-per-flash-crowd.
	EpochLen int `json:"epoch_len,omitempty"`
	// Segments and BatchesPerSeg size the scan workload.
	Segments      int `json:"segments,omitempty"`
	BatchesPerSeg int `json:"batches_per_seg,omitempty"`
}

// FaultSpec is the crash kind's fault plan.
type FaultSpec struct {
	// Types restricts the injected fault types (crashtest names, e.g.
	// "kernel text"). Empty = all of fault.AllTypes.
	Types []string `json:"types,omitempty"`
	// Count is faults injected per run (default fault.DefaultCount).
	Count int `json:"count,omitempty"`
	// DiskFaults turns on double-fault mode: recovery runs against a
	// faulty disk and a second crash interrupts the warm reboot.
	DiskFaults bool `json:"disk_faults,omitempty"`
}

// ScheduleSpec shapes the op stream around the fault.
type ScheduleSpec struct {
	// WarmupOps run before fault injection (crash kind).
	WarmupOps int `json:"warmup_ops,omitempty"`
	// MaxOps bounds post-injection ops (crash kind) or total ops per
	// run (server kind).
	MaxOps int `json:"max_ops,omitempty"`
	// CrashAt is the server kind's op index for the shard crash.
	CrashAt int `json:"crash_at,omitempty"`
	// OutageOps is how many ops the server kind runs before the
	// warm reboot of the crashed shard.
	OutageOps int `json:"outage_ops,omitempty"`
}

// TopologySpec places the run on hardware.
type TopologySpec struct {
	// Systems restricts the crash kind's Table 1 columns ("disk-based",
	// "rio-noprot", "rio-prot"). Empty = all three (txntest: the two
	// rio columns).
	Systems []string `json:"systems,omitempty"`
	// Shards is the server/fleet shard count.
	Shards int `json:"shards,omitempty"`
	// Nodes and Replicas size the fleet.
	Nodes    int `json:"nodes,omitempty"`
	Replicas int `json:"replicas,omitempty"`
	// FleetFaults restricts the fleet kind's fault kinds
	// ("kill-primary", "partition-primary", "kill-backup", "os-crash",
	// "partition-pair"). Empty = all five.
	FleetFaults []string `json:"fleet_faults,omitempty"`
}

// bounds for hand-written configuration; anything past these is a typo
// or an attack, not a bigger experiment.
const (
	maxRuns     = 100_000
	maxOps      = 1_000_000
	maxObjects  = 1 << 20 // files/keys/accounts/segments/queue
	maxBytes    = 1 << 30
	maxSkew     = 8.0
	maxTopology = 64
)

// Parse decodes and validates a spec. Unknown fields, trailing data,
// oversized input, and out-of-bounds values are all errors; the
// returned spec has every default filled in, so Encode(Parse(x)) is
// the canonical form of x.
func Parse(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("scenario: spec is %d bytes, max %d", len(data), MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	// Trailing garbage after the spec object is an error, not ignored.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode renders the canonical form: defaults filled, two-space
// indent, trailing newline. Parse(Encode(s)) round-trips exactly.
func (s *Spec) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Validate bounds-checks the spec and fills engine defaults in place.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if len(s.Name) > 128 {
		return fmt.Errorf("scenario: name longer than 128 bytes")
	}
	switch s.Kind {
	case KindCrash, KindServer, KindFleet:
	default:
		return fmt.Errorf("scenario: unknown kind %q (want crash, server, or fleet)", s.Kind)
	}
	if s.Runs <= 0 {
		return fmt.Errorf("scenario: runs must be positive")
	}
	if s.Runs > maxRuns {
		return fmt.Errorf("scenario: runs %d exceeds %d", s.Runs, maxRuns)
	}
	if err := s.Workload.validate(s.Kind); err != nil {
		return err
	}
	if err := s.Faults.validate(s.Kind); err != nil {
		return err
	}
	if err := s.Schedule.validate(s.Kind); err != nil {
		return err
	}
	return s.Topology.validate(s.Kind, s.Workload.Name)
}

func boundObj(name string, v *int, def, max int) error {
	if *v == 0 {
		*v = def
	}
	if *v < 0 || *v > max {
		return fmt.Errorf("scenario: %s %d out of bounds [1,%d]", name, *v, max)
	}
	return nil
}

func (w *WorkloadSpec) validate(kind string) error {
	if kind == KindFleet {
		if w.Name != "" {
			return fmt.Errorf("scenario: fleet scenarios use the built-in replication workload; workload.name must be empty")
		}
		return nil
	}
	switch w.Name {
	case "memtest", "txntest", "metacache", "mailspool", "hotkey", "scan":
	case "":
		w.Name = "memtest"
	default:
		return fmt.Errorf("scenario: unknown workload %q", w.Name)
	}
	if kind == KindServer && w.Name != "memtest" && w.Name != "hotkey" {
		return fmt.Errorf("scenario: server scenarios drive a key stream; workload must be hotkey (or memtest for defaults), not %q", w.Name)
	}
	if err := boundObj("workload.bytes", &w.Bytes, 1<<21, maxBytes); err != nil {
		return err
	}
	if err := boundObj("workload.accounts", &w.Accounts, 8, maxObjects); err != nil {
		return err
	}
	if err := boundObj("workload.files", &w.Files, 12, maxObjects); err != nil {
		return err
	}
	if err := boundObj("workload.queue", &w.Queue, 24, maxObjects); err != nil {
		return err
	}
	if err := boundObj("workload.keys", &w.Keys, 48, maxObjects); err != nil {
		return err
	}
	if err := boundObj("workload.epoch_len", &w.EpochLen, 100, maxOps); err != nil {
		return err
	}
	if err := boundObj("workload.segments", &w.Segments, 3, 4096); err != nil {
		return err
	}
	if err := boundObj("workload.batches_per_seg", &w.BatchesPerSeg, 8, 4096); err != nil {
		return err
	}
	if w.Skew < 0 || w.Skew > maxSkew {
		return fmt.Errorf("scenario: workload.skew %v out of bounds [0,%v]", w.Skew, maxSkew)
	}
	if w.Skew == 0 && (w.Name == "hotkey" || w.Name == "metacache") {
		w.Skew = 1.1
	}
	return nil
}

func (f *FaultSpec) validate(kind string) error {
	if kind != KindCrash {
		if len(f.Types) > 0 || f.Count != 0 || f.DiskFaults {
			return fmt.Errorf("scenario: faults apply only to crash scenarios")
		}
		return nil
	}
	if f.Count == 0 {
		f.Count = fault.DefaultCount
	}
	if f.Count < 0 || f.Count > 10_000 {
		return fmt.Errorf("scenario: faults.count %d out of bounds [1,10000]", f.Count)
	}
	if len(f.Types) > len(fault.AllTypes) {
		return fmt.Errorf("scenario: faults.types lists %d entries, only %d exist", len(f.Types), len(fault.AllTypes))
	}
	for _, name := range f.Types {
		if _, err := faultByName(name); err != nil {
			return err
		}
	}
	return nil
}

func (sc *ScheduleSpec) validate(kind string) error {
	switch kind {
	case KindCrash:
		if sc.CrashAt != 0 || sc.OutageOps != 0 {
			return fmt.Errorf("scenario: schedule.crash_at/outage_ops apply only to server scenarios")
		}
		if err := boundObj("schedule.warmup_ops", &sc.WarmupOps, 30, maxOps); err != nil {
			return err
		}
		return boundObj("schedule.max_ops", &sc.MaxOps, 250, maxOps)
	case KindServer:
		if sc.WarmupOps != 0 {
			return fmt.Errorf("scenario: schedule.warmup_ops applies only to crash scenarios")
		}
		if err := boundObj("schedule.max_ops", &sc.MaxOps, 200, maxOps); err != nil {
			return err
		}
		if err := boundObj("schedule.crash_at", &sc.CrashAt, sc.MaxOps/4, maxOps); err != nil {
			return err
		}
		if err := boundObj("schedule.outage_ops", &sc.OutageOps, sc.MaxOps/4, maxOps); err != nil {
			return err
		}
		if sc.CrashAt+sc.OutageOps >= sc.MaxOps {
			return fmt.Errorf("scenario: crash_at %d + outage_ops %d must leave ops before max_ops %d",
				sc.CrashAt, sc.OutageOps, sc.MaxOps)
		}
		return nil
	default: // fleet: the campaign derives its own write counts
		if sc.WarmupOps != 0 || sc.MaxOps != 0 || sc.CrashAt != 0 || sc.OutageOps != 0 {
			return fmt.Errorf("scenario: schedule fields apply only to crash/server scenarios")
		}
		return nil
	}
}

func (t *TopologySpec) validate(kind, wl string) error {
	switch kind {
	case KindCrash:
		if t.Shards != 0 || t.Nodes != 0 || t.Replicas != 0 || len(t.FleetFaults) > 0 {
			return fmt.Errorf("scenario: crash scenarios take only topology.systems")
		}
		if len(t.Systems) == 0 {
			if wl == "txntest" {
				t.Systems = []string{"rio-noprot", "rio-prot"}
			} else {
				t.Systems = []string{"disk-based", "rio-noprot", "rio-prot"}
			}
		}
		if len(t.Systems) > len(crashtest.Systems) {
			return fmt.Errorf("scenario: topology.systems lists %d entries, only %d exist",
				len(t.Systems), len(crashtest.Systems))
		}
		for _, name := range t.Systems {
			sys, err := systemByName(name)
			if err != nil {
				return err
			}
			if wl == "txntest" && sys == crashtest.DiskWT {
				return fmt.Errorf("scenario: txntest runs on the rio systems only (transactions live in the protected cache)")
			}
		}
		return nil
	case KindServer:
		if len(t.Systems) > 0 || t.Nodes != 0 || t.Replicas != 0 || len(t.FleetFaults) > 0 {
			return fmt.Errorf("scenario: server scenarios take only topology.shards")
		}
		return boundObj("topology.shards", &t.Shards, 4, maxTopology)
	default: // fleet
		if len(t.Systems) > 0 {
			return fmt.Errorf("scenario: topology.systems applies only to crash scenarios")
		}
		if err := boundObj("topology.nodes", &t.Nodes, 3, maxTopology); err != nil {
			return err
		}
		if err := boundObj("topology.shards", &t.Shards, 2, maxTopology); err != nil {
			return err
		}
		if err := boundObj("topology.replicas", &t.Replicas, 2, maxTopology); err != nil {
			return err
		}
		if t.Replicas > t.Nodes {
			return fmt.Errorf("scenario: replicas %d exceed nodes %d", t.Replicas, t.Nodes)
		}
		if len(t.FleetFaults) > int(fleetcampaign.NumKinds) {
			return fmt.Errorf("scenario: topology.fleet_faults lists %d entries, only %d exist",
				len(t.FleetFaults), fleetcampaign.NumKinds)
		}
		for _, name := range t.FleetFaults {
			if _, err := fleetFaultByName(name); err != nil {
				return err
			}
		}
		return nil
	}
}

// faultByName resolves a crashtest fault-type name.
func faultByName(name string) (fault.Type, error) {
	for _, ft := range fault.AllTypes {
		if ft.String() == name {
			return ft, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown fault type %q", name)
}

// systemByName resolves a Table 1 column name.
func systemByName(name string) (crashtest.System, error) {
	for _, sys := range crashtest.Systems {
		if sys.String() == name {
			return sys, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown system %q", name)
}

// fleetFaultByName resolves a fleet fault-kind name.
func fleetFaultByName(name string) (fleetcampaign.FaultKind, error) {
	for k := fleetcampaign.FaultKind(0); k < fleetcampaign.NumKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown fleet fault kind %q", name)
}
