package workload

import (
	"testing"

	"rio/internal/fs"
	"rio/internal/machine"
)

func perfMachine(t *testing.T, kind fs.PolicyKind) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(kind))
	opt.FastPath = true
	opt.MemPages = 1536
	opt.DataCap = 768
	opt.MetaCap = 256
	opt.RegistryFrames = 9
	opt.DiskBlocks = 4096
	opt.NInodes = 2048
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCpRmRuns(t *testing.T) {
	w := DefaultCpRm()
	w.TreeBytes = 512 << 10
	m := perfMachine(t, fs.PolicyRio)
	cp, rm, err := w.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if cp <= 0 || rm <= 0 {
		t.Fatalf("cp=%v rm=%v", cp, rm)
	}
	// After rm, the destination tree is gone; the source remains.
	if _, err := m.FS.Stat("/dst"); err != fs.ErrNotFound {
		t.Fatalf("/dst survived rm: %v", err)
	}
	if _, err := m.FS.Stat("/src"); err != nil {
		t.Fatalf("/src destroyed: %v", err)
	}
}

func TestCpRmCopiesFaithfully(t *testing.T) {
	w := DefaultCpRm()
	w.TreeBytes = 256 << 10
	m := perfMachine(t, fs.PolicyUFS)
	tree := MakeTree("/src", w.TreeBytes, w.Seed)
	// Run builds its own tree with the same seed, so spot-check a file's
	// copy before the rm phase by re-running the copy manually.
	if err := BuildTree(m.FS, tree); err != nil {
		t.Fatal(err)
	}
	src, err := readAll(m.FS, tree.Files[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(src) != tree.Files[0].Size {
		t.Fatalf("tree file size %d want %d", len(src), tree.Files[0].Size)
	}
}

func TestSdetRuns(t *testing.T) {
	w := DefaultSdet()
	w.OpsPerScript = 40
	m := perfMachine(t, fs.PolicyUFS)
	d, err := w.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no elapsed time")
	}
	// The five script directories exist.
	for i := 0; i < w.Scripts; i++ {
		if _, err := m.FS.Stat("/sdet" + itoa(i)); err != nil {
			t.Fatalf("script dir %d missing: %v", i, err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestAndrewRuns(t *testing.T) {
	w := DefaultAndrew()
	w.TreeBytes = 100 << 10
	m := perfMachine(t, fs.PolicyRio)
	d, err := w.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no elapsed time")
	}
	// The linked binary exists; the temporaries are gone.
	if _, err := m.FS.Stat("/andrew/a.out"); err != nil {
		t.Fatalf("a.out missing: %v", err)
	}
	ents, err := m.FS.ReadDir("/tmp")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d compiler temporaries leaked", len(ents))
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	run := func() [3]int64 {
		w := DefaultCpRm()
		w.TreeBytes = 256 << 10
		m := perfMachine(t, fs.PolicyUFS)
		cp, rm, err := w.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		s := DefaultSdet()
		s.OpsPerScript = 25
		m2 := perfMachine(t, fs.PolicyUFS)
		sd, err := s.Run(m2)
		if err != nil {
			t.Fatal(err)
		}
		return [3]int64{int64(cp), int64(rm), int64(sd)}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("workloads not deterministic: %v vs %v", a, b)
	}
}

func TestMakeTreeShape(t *testing.T) {
	tr := MakeTree("/x", 1<<20, 3)
	if len(tr.Dirs) < 2 {
		t.Fatal("no subdirectories")
	}
	if tr.TotalBytes() < 1<<20 {
		t.Fatal("under target")
	}
	small, big := 0, 0
	for _, f := range tr.Files {
		if f.Size < 2000 {
			small++
		}
		if f.Size > 20000 {
			big++
		}
	}
	if small == 0 || big == 0 {
		t.Fatalf("size mix wrong: %d small, %d big of %d", small, big, len(tr.Files))
	}
}
