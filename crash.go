package rio

import (
	"fmt"
	"time"

	"rio/internal/crashtest"
	"rio/internal/disk"
	"rio/internal/fault"
	"rio/internal/sim"
	"rio/internal/warmreboot"
)

// FaultType names one of the paper's thirteen fault models (§3.1).
type FaultType string

// The fault models, in the paper's Table 1 order.
const (
	FaultKernelText   FaultType = "kernel-text"
	FaultKernelHeap   FaultType = "kernel-heap"
	FaultKernelStack  FaultType = "kernel-stack"
	FaultDestReg      FaultType = "destination-reg"
	FaultSrcReg       FaultType = "source-reg"
	FaultDeleteBranch FaultType = "delete-branch"
	FaultDeleteRandom FaultType = "delete-random-inst"
	FaultInit         FaultType = "initialization"
	FaultPointer      FaultType = "pointer"
	FaultAlloc        FaultType = "allocation"
	FaultCopyOverrun  FaultType = "copy-overrun"
	FaultOffByOne     FaultType = "off-by-one"
	FaultSync         FaultType = "synchronization"
)

// FaultTypes lists all thirteen models.
func FaultTypes() []FaultType {
	return []FaultType{
		FaultKernelText, FaultKernelHeap, FaultKernelStack,
		FaultDestReg, FaultSrcReg, FaultDeleteBranch, FaultDeleteRandom,
		FaultInit, FaultPointer, FaultAlloc, FaultCopyOverrun,
		FaultOffByOne, FaultSync,
	}
}

var faultMap = map[FaultType]fault.Type{
	FaultKernelText: fault.TextFlip, FaultKernelHeap: fault.HeapFlip,
	FaultKernelStack: fault.StackFlip, FaultDestReg: fault.DestReg,
	FaultSrcReg: fault.SrcReg, FaultDeleteBranch: fault.DeleteBranch,
	FaultDeleteRandom: fault.DeleteRandom, FaultInit: fault.Init,
	FaultPointer: fault.Pointer, FaultAlloc: fault.Alloc,
	FaultCopyOverrun: fault.CopyOverrun, FaultOffByOne: fault.OffByOne,
	FaultSync: fault.Sync,
}

// InjectFault applies the paper's standard dose (20 faults) of the given
// model to the running system. The system must have been built with
// Config.Interpreted so the faults act on live kernel code.
func (s *System) InjectFault(t FaultType) error {
	ft, ok := faultMap[t]
	if !ok {
		return fmt.Errorf("rio: unknown fault type %q", t)
	}
	if !s.cfg.Interpreted {
		return fmt.Errorf("rio: fault injection requires Config.Interpreted")
	}
	return fault.Inject(s.m, ft, fault.DefaultCount, s.m.Rng.Fork())
}

// Crash halts the machine immediately (as a kernel panic with the given
// reason), completing crash-time I/O semantics: queued disk writes are
// lost, an in-flight sector is torn, and — on non-Rio systems — the dying
// kernel flushes dirty buffers as stock panic() does.
func (s *System) Crash(reason string) {
	if s.m.Crashed() == nil {
		s.m.Kernel.Panic(reason)
	}
	s.m.CrashFinish()
}

// RebootReport summarises a warm reboot.
type RebootReport struct {
	// RegistryEntries found in the memory dump; BadEntries failed CRC.
	RegistryEntries int
	BadEntries      int
	// MetaRestored / DataRestored are dirty buffers written back to the
	// file system.
	MetaRestored int
	DataRestored int
	// ChecksumMismatches is detected direct corruption.
	ChecksumMismatches int
	// Changing buffers were mid-write at crash time.
	Changing int
	// FsckClean reports whether the volume needed no repairs.
	FsckClean bool
	// FsckSummary is the consistency-check report.
	FsckSummary string
}

// WarmReboot performs Rio's two-step warm reboot: dump memory, restore
// dirty metadata to disk, fsck, boot, then restore the UBC through normal
// system calls. The System is usable again afterwards.
func (s *System) WarmReboot() (*RebootReport, error) {
	if s.m.Crashed() == nil {
		// A clean warm reboot is legal (machine maintenance).
		s.m.Kernel.Panic("administrative reboot")
		s.m.CrashFinish()
	}
	rep, err := warmreboot.Warm(s.m)
	if err != nil {
		return nil, err
	}
	if rep.VolumeLost {
		return nil, fmt.Errorf("rio: volume lost during warm reboot: %s", rep.Fsck.String())
	}
	return &RebootReport{
		RegistryEntries:    rep.Entries,
		BadEntries:         rep.BadEntries,
		MetaRestored:       rep.MetaRestored,
		DataRestored:       rep.DataRestored,
		ChecksumMismatches: rep.ChecksumMismatches,
		Changing:           rep.Changing,
		FsckClean:          rep.Fsck.Clean(),
		FsckSummary:        rep.Fsck.String(),
	}, nil
}

// ColdReboot loses memory (as a machine without Rio would), checks the
// disk, and boots fresh: only data that reached the disk survives.
func (s *System) ColdReboot() error {
	_, err := warmreboot.Cold(s.m, s.m.Rng.Uint64())
	return err
}

// AttachUPS adds an uninterruptible power supply with a swap disk sized to
// hold a full memory dump — the paper's one-line answer to power outages.
func (s *System) AttachUPS() error {
	return s.m.AttachSwap(disk.DefaultParams())
}

// PowerFail simulates a power outage. With a UPS attached the machine
// dumps memory to the swap disk before going dark (the returned duration
// is what the battery had to cover); without one, memory is simply lost.
// Recover with RecoverFromUPS (or ColdReboot if there was no UPS).
func (s *System) PowerFail() (batteryTime time.Duration, err error) {
	d, err := s.m.PowerFail(s.m.Rng.Uint64())
	return time.Duration(d), err
}

// RecoverFromUPS boots the machine and restores the file cache from the
// swap-disk dump the UPS saved, exactly as a warm reboot would from RAM.
func (s *System) RecoverFromUPS() (*RebootReport, error) {
	dump, err := s.m.ReadSwapDump()
	if err != nil {
		return nil, err
	}
	rep, err := warmreboot.FromDump(s.m, dump)
	if err != nil {
		return nil, err
	}
	if rep.VolumeLost {
		return nil, fmt.Errorf("rio: volume lost during recovery: %s", rep.Fsck.String())
	}
	return &RebootReport{
		RegistryEntries:    rep.Entries,
		BadEntries:         rep.BadEntries,
		MetaRestored:       rep.MetaRestored,
		DataRestored:       rep.DataRestored,
		ChecksumMismatches: rep.ChecksumMismatches,
		Changing:           rep.Changing,
		FsckClean:          rep.Fsck.Clean(),
		FsckSummary:        rep.Fsck.String(),
	}, nil
}

// --- Table 1 campaign ---

// System column indices for CampaignResult accessors, in Table 1 order.
// Use these instead of literal 0/1/2 so call sites cannot silently point
// at the wrong column if system order ever changes.
const (
	SystemDiskWT    = int(crashtest.DiskWT)    // disk-based write-through
	SystemRioNoProt = int(crashtest.RioNoProt) // Rio without protection
	SystemRioProt   = int(crashtest.RioProt)   // Rio with protection
)

// CampaignOptions configures a crash-test campaign.
type CampaignOptions struct {
	// RunsPerCell is the number of crashing runs per (system, fault)
	// cell; the paper used 50. Default 50.
	RunsPerCell int
	// Seed reproduces a campaign exactly. Default 1.
	Seed uint64
	// Workers is the number of goroutines running crash tests
	// concurrently; 0 uses all available cores (GOMAXPROCS). Each run's
	// seed is derived purely from (Seed, system, fault, attempt), so the
	// result is the same at any worker count.
	Workers int
	// Progress, if non-nil, receives one line per completed cell plus
	// throttled campaign-level updates; calls are serialised.
	Progress func(string)
	// DiskFaults turns the campaign into a double-fault experiment:
	// recovery runs against a disk injecting transient, latent, and
	// misdirected storage faults, and a second crash interrupts the warm
	// reboot at a seed-derived step (the recovery then restarts from the
	// same memory dump). See CampaignResult.RecoveryTable for the extra
	// columns this populates.
	DiskFaults bool
}

// CampaignResult is a completed Table 1 reproduction.
type CampaignResult struct {
	rep *crashtest.Report
}

// Table renders the result in the paper's Table 1 layout.
func (r *CampaignResult) Table() string { return r.rep.Table() }

// RecoveryTable renders the double-fault recovery columns: per system,
// how many recoveries were interrupted by a second crash, aborted,
// quarantined pages, salvaged pages, and volumes lost. All zeros unless
// the campaign ran with CampaignOptions.DiskFaults.
func (r *CampaignResult) RecoveryTable() string { return r.rep.RecoveryTable() }

// SystemNames returns the three column labels.
func (r *CampaignResult) SystemNames() []string {
	return []string{"disk-based", "rio-noprot", "rio-prot"}
}

// Totals returns (crashes, corruptions) for a column (0=disk write-through,
// 1=Rio without protection, 2=Rio with protection).
func (r *CampaignResult) Totals(system int) (crashes, corrupted int) {
	return r.rep.Totals(crashtest.System(system))
}

// ProtectionInvocations counts crashes where Rio's protection trapped an
// illegal file-cache store (the paper observed 8).
func (r *CampaignResult) ProtectionInvocations() int {
	return r.rep.ProtectionInvocations(crashtest.RioProt)
}

// CrashKindBreakdown summarises how a system's crashes manifested.
func (r *CampaignResult) CrashKindBreakdown(system int) string {
	return r.rep.CrashKindBreakdown(crashtest.System(system))
}

// CampaignSummary is campaign-level observability: totals, rates, and
// throughput. Counting fields are deterministic for a given seed and
// config; WallTime, RunsPerSec, and SpeculativeRuns depend on the host
// and worker count.
type CampaignSummary struct {
	Runs        int // runs merged into the table (crashes + discards + errors)
	Crashes     int
	Discarded   int
	Errors      int
	Corrupted   int
	Workers     int
	DiscardRate float64 // fraction of runs that did not crash
	ErrorRate   float64 // fraction of runs that hit harness errors
	WallTime    time.Duration
	RunsPerSec  float64
	// SpeculativeRuns is parallel overshoot: runs executed but dropped
	// because their cell reached RunsPerCell first. Zero at Workers=1.
	SpeculativeRuns int
	// Double-fault recovery totals (zero unless DiskFaults was on).
	RecoveryInterrupted int // recoveries a second crash interrupted
	RecoveryAborted     int // recoveries that errored out (should be zero)
	QuarantinedPages    int // pages recovery could not restore
	SalvagedPages       int // orphaned pages preserved under /lost+found
	VolumesLost         int // runs whose volume fsck could not certify
}

// Summary returns the campaign's aggregate statistics.
func (r *CampaignResult) Summary() CampaignSummary {
	s := r.rep.Summary
	return CampaignSummary{
		Runs:            s.Runs,
		Crashes:         s.Crashes,
		Discarded:       s.Discarded,
		Errors:          s.Errors,
		Corrupted:       s.Corrupted,
		Workers:         s.Workers,
		DiscardRate:     s.DiscardRate,
		ErrorRate:       s.ErrorRate,
		WallTime:        s.WallTime,
		RunsPerSec:      s.RunsPerSec,
		SpeculativeRuns: s.SpeculativeRuns,

		RecoveryInterrupted: s.Interrupted,
		RecoveryAborted:     s.Aborted,
		QuarantinedPages:    s.Quarantined,
		SalvagedPages:       s.Salvaged,
		VolumesLost:         s.VolumeLost,
	}
}

// JSON renders the full report — summary, every cell (in Table 1 order,
// with per-cell attempt counts and CPU time), and the rendered table —
// as indented JSON for downstream tooling.
func (r *CampaignResult) JSON() ([]byte, error) { return r.rep.JSON() }

// MTTFYears converts a column's corruption rate into the paper's §3.3
// mean-time-to-failure illustration (one crash every two months). A
// negative result means no corruption was observed at this sample size.
func (r *CampaignResult) MTTFYears(system int) float64 {
	crashes, corrupted := r.Totals(system)
	return crashtest.MTTFYears(corrupted, crashes)
}

// RunCrashCampaign reproduces Table 1: for each of the thirteen fault
// types and each of the three systems, crash the machine repeatedly and
// measure how often permanent file data is corrupted. Runs execute on a
// worker pool (see CampaignOptions.Workers); results are identical at
// any worker count.
func RunCrashCampaign(opts CampaignOptions) (*CampaignResult, error) {
	cfg := crashtest.DefaultCampaignConfig(1)
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.RunsPerCell > 0 {
		cfg.RunsPerCell = opts.RunsPerCell
	}
	cfg.Workers = opts.Workers
	cfg.Progress = opts.Progress
	cfg.Run.DiskFaults = opts.DiskFaults
	rep, err := crashtest.RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return &CampaignResult{rep: rep}, nil
}

// CrashOnce runs a single crash test — inject a fault into a fresh
// machine, run until it crashes, recover, verify — and reports what
// happened. system is 0 (disk write-through), 1 (Rio without protection),
// or 2 (Rio with protection).
func CrashOnce(system int, t FaultType, seed uint64) (CrashRunResult, error) {
	ft, ok := faultMap[t]
	if !ok {
		return CrashRunResult{}, fmt.Errorf("rio: unknown fault type %q", t)
	}
	res, err := crashtest.RunOne(crashtest.System(system), ft,
		crashtest.DefaultRunConfig(seed))
	if err != nil {
		return CrashRunResult{}, err
	}
	out := CrashRunResult{
		Crashed:           res.Crashed,
		CrashKind:         res.CrashKind.String(),
		Corrupted:         res.Corrupted,
		ChecksumDetected:  res.ChecksumDetected,
		ProtectionInvoked: res.ProtectionInvoked,
	}
	for _, c := range res.Corruptions {
		out.Details = append(out.Details, c.String())
	}
	if !res.Crashed {
		out.CrashKind = ""
	}
	return out, nil
}

// CrashRunResult is the outcome of CrashOnce.
type CrashRunResult struct {
	Crashed           bool
	CrashKind         string
	Corrupted         bool
	ChecksumDetected  bool
	ProtectionInvoked bool
	Details           []string
}

// ensure sim is linked for the public API surface (durations).
var _ = sim.Second
