// Package sim is the walltime clean fixture: time types, constants, and
// arithmetic are free; the one host-clock read is an annotated telemetry
// seam, mirroring the tree's sanctioned site (crashtest's hostClock).
package sim

import "time"

// tick is a duration constant — no clock is read.
const tick = 2 * time.Second

// clock is an injectable time source; simulation code takes readings
// from it, never from the host.
type clock interface {
	Now() time.Time
}

// hostClock is the telemetry implementation; the annotation sanctions
// its single host-clock read.
type hostClock struct{}

func (hostClock) Now() time.Time {
	//riolint:walltime telemetry seam: rates reported to the operator are host wall-clock by design
	return time.Now()
}

// span does duration arithmetic on readings already taken.
func span(a, b time.Time) time.Duration {
	d := b.Sub(a)
	if d < tick {
		return tick
	}
	return d
}
