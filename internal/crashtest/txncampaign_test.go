package crashtest

import (
	"strings"
	"testing"

	"rio/internal/fault"
)

func TestRunTxnOneRejectsDiskWT(t *testing.T) {
	if _, err := RunTxnOne(DiskWT, fault.TextFlip, DefaultRunConfig(1)); err == nil {
		t.Fatal("DiskWT accepted; transactions need the protected cache")
	}
}

func TestRunTxnOneCleanWithoutCrash(t *testing.T) {
	cfg := DefaultRunConfig(12345)
	cfg.MaxOps = 8
	res, err := RunTxnOne(RioProt, fault.Alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed && (res.Corrupted || res.Torn || len(res.Corruptions) > 0) {
		t.Fatalf("non-crashing run claims damage: %+v", res)
	}
}

func TestRunTxnOneDeterministic(t *testing.T) {
	cfg := DefaultRunConfig(777)
	cfg.MaxOps = 80
	cfg.DiskFaults = true
	a, err := RunTxnOne(RioNoProt, fault.TextFlip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTxnOne(RioNoProt, fault.TextFlip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashed != b.Crashed || a.Corrupted != b.Corrupted || a.Torn != b.Torn ||
		a.OpsToCrash != b.OpsToCrash || a.CrashKind != b.CrashKind ||
		a.RecoveryInterrupted != b.RecoveryInterrupted ||
		a.TxnRecoveryInterrupted != b.TxnRecoveryInterrupted ||
		a.Quarantined != b.Quarantined || a.Salvaged != b.Salvaged {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// The headline acceptance: the torn column must be zero — a commit is
// either fully visible after recovery or not at all — and recovery
// must never abort, across every fault type on both Rio systems with
// storage faults and second crashes injected during recovery.
func TestTxnCampaignZeroTorn(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	cfg := DefaultTxnCampaignConfig(2026)
	cfg.AttemptsPerCell = 2
	cfg.Run.MaxOps = 80
	cfg.Run.DiskFaults = true
	rep, err := RunTxnCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if errs := rep.Errors(); len(errs) != 0 {
		t.Fatalf("harness errors: %v", errs)
	}
	if n := rep.TotalTorn(); n != 0 {
		t.Fatalf("%d torn transactions:\n%s", n, rep.Table())
	}
	if n := rep.TotalAborted(); n != 0 {
		t.Fatalf("%d aborted recoveries:\n%s", n, rep.Table())
	}
	crashes := 0
	for _, sys := range rep.Systems {
		for _, ft := range rep.Faults {
			crashes += rep.Cells[sys][ft].Crashes
		}
	}
	if crashes == 0 {
		t.Fatal("no run crashed; campaign is vacuous")
	}
	tbl := rep.Table()
	if !strings.Contains(tbl, "Total") || !strings.Contains(tbl, "copy overrun") {
		t.Fatalf("table malformed:\n%s", tbl)
	}
}

// The report must be byte-identical at any worker count: run seeds are
// pure functions of (campaign seed, system, fault, attempt) and the
// fold walks fixed slots in fixed order.
func TestTxnCampaignWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	base := DefaultTxnCampaignConfig(99)
	base.AttemptsPerCell = 2
	base.Run.MaxOps = 60
	base.Run.DiskFaults = true
	base.Faults = []fault.Type{fault.TextFlip, fault.CopyOverrun, fault.Pointer}

	one := base
	one.Workers = 1
	a, err := RunTxnCampaign(one)
	if err != nil {
		t.Fatal(err)
	}
	eight := base
	eight.Workers = 8
	b, err := RunTxnCampaign(eight)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatalf("worker count changed the table:\n--- workers=1\n%s--- workers=8\n%s", a.Table(), b.Table())
	}
	for _, sys := range a.Systems {
		for _, ft := range a.Faults {
			ca, cb := *a.Cells[sys][ft], *b.Cells[sys][ft]
			if ca != cb {
				t.Fatalf("%v/%v diverged: %+v vs %+v", sys, ft, ca, cb)
			}
		}
	}
}
