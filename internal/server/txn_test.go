package server

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"rio/internal/wire"
)

// begin opens a transaction pinned to path's shard and returns its
// handle.
func begin(t *testing.T, s *Server, path string) uint64 {
	t.Helper()
	r := do(t, s, &wire.Request{ID: 1, Op: wire.OpTxnBegin, Shard: -1, Path: path})
	if r.Status != wire.StatusOK || r.Size == 0 {
		t.Fatalf("txn-begin: %+v", r)
	}
	return uint64(r.Size)
}

func TestTxnCommitIsAtomicAndVisible(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Seed: 7})
	tx := begin(t, s, "/t/a")

	// Nothing staged is visible before commit.
	for _, req := range []*wire.Request{
		{ID: 2, Op: wire.OpWrite, Shard: -1, Txn: tx, Path: "/t/a", Data: []byte("alpha")},
		{ID: 3, Op: wire.OpMkdir, Shard: -1, Txn: tx, Path: "/t/dir"},
		{ID: 4, Op: wire.OpWrite, Shard: -1, Txn: tx, Path: "/t/dir/b", Offset: 100, Data: []byte("beta")},
	} {
		if r := do(t, s, req); r.Status != wire.StatusOK {
			t.Fatalf("stage %d: %+v", req.ID, r)
		}
	}
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpRead, Shard: -1, Path: "/t/a"}); r.Status != wire.StatusNotFound {
		t.Fatalf("staged write visible before commit: %+v", r)
	}

	if r := do(t, s, &wire.Request{ID: 6, Op: wire.OpTxnCommit, Shard: -1, Txn: tx}); r.Status != wire.StatusOK || r.Size != 3 {
		t.Fatalf("commit: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 7, Op: wire.OpRead, Shard: -1, Path: "/t/a"}); string(r.Data) != "alpha" {
		t.Fatalf("committed write: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 8, Op: wire.OpRead, Shard: -1, Path: "/t/dir/b", Offset: 100}); string(r.Data) != "beta" {
		t.Fatalf("committed offset write: %+v", r)
	}
	// The handle is spent: a second commit answers no-txn.
	if r := do(t, s, &wire.Request{ID: 9, Op: wire.OpTxnCommit, Shard: -1, Txn: tx}); r.Status != wire.StatusNoTxn {
		t.Fatalf("double commit: %+v", r)
	}
	m := s.Metrics()
	if m.Shards[0].TxnCommits != 1 {
		t.Fatalf("txn_commits = %d, want 1", m.Shards[0].TxnCommits)
	}
}

func TestTxnAbortDiscardsStagedOps(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Seed: 7})
	tx := begin(t, s, "/t/x")
	if r := do(t, s, &wire.Request{ID: 2, Op: wire.OpWrite, Shard: -1, Txn: tx, Path: "/t/x", Data: []byte("never")}); r.Status != wire.StatusOK {
		t.Fatalf("stage: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpTxnAbort, Shard: -1, Txn: tx}); r.Status != wire.StatusOK {
		t.Fatalf("abort: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpStat, Shard: -1, Path: "/t/x"}); r.Status != wire.StatusNotFound {
		t.Fatalf("aborted write visible: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpTxnCommit, Shard: -1, Txn: tx}); r.Status != wire.StatusNoTxn {
		t.Fatalf("commit after abort: %+v", r)
	}
	if m := s.Metrics(); m.Shards[0].TxnAborts != 1 {
		t.Fatalf("txn_aborts = %d, want 1", m.Shards[0].TxnAborts)
	}
}

func TestTxnRenameAndRemoveCommit(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Seed: 7})
	// Seed non-transactional state to move and remove.
	if r := do(t, s, &wire.Request{ID: 1, Op: wire.OpWrite, Shard: -1, Path: "/t/old", Data: []byte("payload")}); r.Status != wire.StatusOK {
		t.Fatalf("seed: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 2, Op: wire.OpWrite, Shard: -1, Path: "/t/victim", Data: []byte("doomed")}); r.Status != wire.StatusOK {
		t.Fatalf("seed: %+v", r)
	}
	tx := begin(t, s, "/t/old")
	if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpMv, Shard: -1, Txn: tx, Path: "/t/old", Path2: "/t/new"}); r.Status != wire.StatusOK {
		t.Fatalf("stage mv: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpRm, Shard: -1, Txn: tx, Path: "/t/victim"}); r.Status != wire.StatusOK {
		t.Fatalf("stage rm: %+v", r)
	}
	// Neither has happened yet.
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpRead, Shard: -1, Path: "/t/victim"}); string(r.Data) != "doomed" {
		t.Fatalf("staged rm leaked: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 6, Op: wire.OpTxnCommit, Shard: -1, Txn: tx}); r.Status != wire.StatusOK {
		t.Fatalf("commit: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 7, Op: wire.OpRead, Shard: -1, Path: "/t/new"}); string(r.Data) != "payload" {
		t.Fatalf("renamed file: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 8, Op: wire.OpStat, Shard: -1, Path: "/t/old"}); r.Status != wire.StatusNotFound {
		t.Fatalf("rename source lingers: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 9, Op: wire.OpStat, Shard: -1, Path: "/t/victim"}); r.Status != wire.StatusNotFound {
		t.Fatalf("removed file lingers: %+v", r)
	}
}

func TestTxnTypedStatuses(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 7})

	// Unknown handle: no-txn (shard 0's handle space, never minted).
	if r := do(t, s, &wire.Request{ID: 1, Op: wire.OpTxnCommit, Shard: -1, Txn: 99}); r.Status != wire.StatusNoTxn {
		t.Fatalf("unknown commit: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 2, Op: wire.OpTxnAbort, Shard: -1, Txn: 99}); r.Status != wire.StatusNoTxn {
		t.Fatalf("unknown abort: %+v", r)
	}

	// A staged path hashing off the transaction's shard: cross-shard.
	home := pathOnShard(t, s, 0, "txn-home")
	away := pathOnShard(t, s, 1, "txn-away")
	tx := begin(t, s, home)
	if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpWrite, Shard: -1, Txn: tx, Path: away, Data: []byte("x")}); r.Status != wire.StatusCrossShard {
		t.Fatalf("cross-shard stage: %+v", r)
	}

	// Handle naming a shard out of range: invalid before any shard sees it.
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpTxnCommit, Shard: -1, Txn: 7 << 32}); r.Status != wire.StatusInvalid {
		t.Fatalf("out-of-range handle: %+v", r)
	}

	// Append writes are refused inside a transaction.
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpWrite, Shard: -1, Txn: tx, Path: home, Offset: -1, Data: []byte("x")}); r.Status != wire.StatusInvalid {
		t.Fatalf("append in txn: %+v", r)
	}

	// Reads are not transactional.
	if r := do(t, s, &wire.Request{ID: 6, Op: wire.OpRead, Shard: -1, Txn: tx, Path: home}); r.Status != wire.StatusInvalid {
		t.Fatalf("read in txn: %+v", r)
	}

	// The transaction log's namespace is reserved.
	if r := do(t, s, &wire.Request{ID: 7, Op: wire.OpWrite, Shard: -1, Path: "/.txn/log", Data: []byte("x")}); r.Status != wire.StatusInvalid {
		t.Fatalf("reserved path write: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 8, Op: wire.OpRead, Shard: -1, Path: "/.txn/log"}); r.Status != wire.StatusInvalid {
		t.Fatalf("reserved path read: %+v", r)
	}

}

func TestTxnOpLimit(t *testing.T) {
	// One shard so every staged path lands on the transaction's shard.
	s := newTestServer(t, Config{Shards: 1, Seed: 7})
	tx := begin(t, s, "/t/limit")
	var r *wire.Response
	for i := 0; i <= maxTxnOps; i++ {
		r = do(t, s, &wire.Request{ID: 9, Op: wire.OpMkdir, Shard: -1, Txn: tx,
			Path: fmt.Sprintf("/t/limit-d%04d", i)})
		if r.Status != wire.StatusOK {
			break
		}
	}
	if r.Status != wire.StatusTxnLimit {
		t.Fatalf("op-limit overflow: %+v", r)
	}
}

// Committed transactions survive a crash + warm reboot in full;
// transactions still open at crash time vanish in full. Rio's guarantee
// lifted to multi-op atomicity.
func TestTxnCommitSurvivesCrashOpenTxnDies(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 7})
	home := pathOnShard(t, s, 0, "txn-crash")
	sibling := pathOnShard(t, s, 0, "txn-crash-sib")

	tx := begin(t, s, home)
	for id, req := range []*wire.Request{
		{Op: wire.OpWrite, Shard: -1, Txn: tx, Path: home, Data: []byte("committed-1")},
		{Op: wire.OpWrite, Shard: -1, Txn: tx, Path: sibling, Data: []byte("committed-2")},
	} {
		req.ID = uint64(id + 2)
		if r := do(t, s, req); r.Status != wire.StatusOK {
			t.Fatalf("stage: %+v", r)
		}
	}
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpTxnCommit, Shard: -1, Txn: tx}); r.Status != wire.StatusOK {
		t.Fatalf("commit: %+v", r)
	}

	// A second transaction stages but never commits.
	open := begin(t, s, home)
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpWrite, Shard: -1, Txn: open, Path: home, Data: []byte("uncommitted")}); r.Status != wire.StatusOK {
		t.Fatalf("stage open txn: %+v", r)
	}

	if r := do(t, s, &wire.Request{ID: 6, Op: wire.OpCrash, Shard: 0}); r.Status != wire.StatusOK {
		t.Fatalf("crash: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 7, Op: wire.OpWarmboot, Shard: 0}); r.Status != wire.StatusOK {
		t.Fatalf("warmboot: %+v", r)
	}

	// The committed transaction's effects are all there.
	if r := do(t, s, &wire.Request{ID: 8, Op: wire.OpRead, Shard: -1, Path: home}); string(r.Data) != "committed-1" {
		t.Fatalf("committed write after reboot: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 9, Op: wire.OpRead, Shard: -1, Path: sibling}); string(r.Data) != "committed-2" {
		t.Fatalf("committed write after reboot: %+v", r)
	}
	// The open transaction died with the crash: its handle is gone, and
	// committing it now cannot resurrect the staged write.
	if r := do(t, s, &wire.Request{ID: 10, Op: wire.OpTxnCommit, Shard: -1, Txn: open}); r.Status != wire.StatusNoTxn {
		t.Fatalf("open txn survived crash: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 11, Op: wire.OpRead, Shard: -1, Path: home}); string(r.Data) != "committed-1" {
		t.Fatalf("uncommitted data leaked: %+v", r)
	}
}

// Wraparound regression: with the tag space shrunk to a handful of
// values, a long-lived pipelined connection wraps its counter many
// times over. Every response must still land on its own caller — a
// pending-map collision would cross-deliver or wedge a request forever.
func TestMuxClientTagWraparound(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 7})
	addr := listenAndServe(t, s)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewMuxClient(conn)
	defer cl.Close()
	cl.tagMask = 3 // four tags: wrap every fourth request

	const workers = 3 // stay under the 4-tag space so allocation succeeds
	const rounds = 32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				path := fmt.Sprintf("/wrap-w%d-r%02d", w, r)
				payload := []byte(fmt.Sprintf("payload-%d-%d", w, r))
				resp, err := cl.Do(&wire.Request{ID: 42, Op: wire.OpWrite, Shard: -1, Path: path, Data: payload})
				if err != nil {
					errs[w] = err
					return
				}
				if resp.Status != wire.StatusOK || resp.ID != 42 {
					errs[w] = fmt.Errorf("write %s: %+v", path, resp)
					return
				}
				resp, err = cl.Do(&wire.Request{ID: 42, Op: wire.OpRead, Shard: -1, Path: path})
				if err != nil {
					errs[w] = err
					return
				}
				if string(resp.Data) != string(payload) {
					errs[w] = fmt.Errorf("read %s: got %q want %q — cross-delivered response", path, resp.Data, payload)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// A saturated tag space must fail the next Do cleanly instead of
// silently reusing a pending tag.
func TestMuxClientTagExhaustion(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	cl := NewMuxClient(c1)
	defer cl.Close()
	cl.tagMask = 1 // two tags
	cl.mu.Lock()
	cl.pending[0] = make(chan *wire.Response, 1)
	cl.pending[1] = make(chan *wire.Response, 1)
	cl.mu.Unlock()
	if _, err := cl.Do(&wire.Request{ID: 1, Op: wire.OpOpen, Shard: -1, Path: "/x"}); err == nil {
		t.Fatal("Do on a saturated tag space must error")
	}
}

// Aliases of the reserved /.txn prefix — spellings the fs would resolve
// to the same files — must be refused, not just the literal prefix: a
// client write through an alias could forge the commit log.
func TestReservedPathAliasesRefused(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 7})
	aliases := []string{
		"/.txn", "/.txn/log", ".txn", ".txn/log", "//.txn/log", "/.txn/log/", "/.txn//log",
	}
	for _, p := range aliases {
		for _, op := range []wire.Op{wire.OpWrite, wire.OpRead, wire.OpRm, wire.OpStat} {
			r := do(t, s, &wire.Request{ID: 1, Op: op, Shard: -1, Path: p, Data: []byte("forged")})
			if r.Status != wire.StatusInvalid {
				t.Errorf("%v %q: status %v, want %v", op, p, r.Status, wire.StatusInvalid)
			}
		}
		r := do(t, s, &wire.Request{ID: 2, Op: wire.OpMv, Shard: -1, Path: "/x", Path2: p})
		if r.Status != wire.StatusInvalid && r.Status != wire.StatusCrossShard {
			t.Errorf("mv dst %q: status %v, want invalid (or cross-shard)", p, r.Status)
		}
	}
}

// Path aliases must also route and serve as one file: a write through
// one spelling reads back through another, on every shard layout.
func TestPathCanonicalizationUnifiesAliases(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, Seed: 7})
	if r := do(t, s, &wire.Request{ID: 1, Op: wire.OpWrite, Shard: -1, Path: "p/q", Data: []byte("via-alias")}); r.Status != wire.StatusOK {
		t.Fatalf("write p/q: %+v", r)
	}
	for _, alias := range []string{"/p/q", "p/q", "//p/q", "/p/q/"} {
		r := do(t, s, &wire.Request{ID: 2, Op: wire.OpRead, Shard: -1, Path: alias})
		if r.Status != wire.StatusOK || string(r.Data) != "via-alias" {
			t.Fatalf("read %q: %+v", alias, r)
		}
	}
	// Malformed components are refused outright, as the fs would.
	for _, bad := range []string{"/p/../q", "/p/./q", "/p//q"} {
		if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpRead, Shard: -1, Path: bad}); r.Status != wire.StatusInvalid {
			t.Fatalf("read %q: status %v, want %v", bad, r.Status, wire.StatusInvalid)
		}
	}
}

// A commit the tree's shape rejects (rm of a non-empty directory) must
// answer its typed status once and leave the shard fully serviceable:
// later commits succeed and warmboot stays clean. One bad transaction
// must not poison the log.
func TestTxnDeterministicFailureDoesNotPoisonShard(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Seed: 7})
	if r := do(t, s, &wire.Request{ID: 1, Op: wire.OpWrite, Shard: -1, Path: "/full/child", Data: []byte("x")}); r.Status != wire.StatusOK {
		t.Fatalf("seed: %+v", r)
	}

	tx := begin(t, s, "/full")
	if r := do(t, s, &wire.Request{ID: 2, Op: wire.OpRm, Shard: -1, Txn: tx, Path: "/full"}); r.Status != wire.StatusOK {
		t.Fatalf("stage rm: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 3, Op: wire.OpTxnCommit, Shard: -1, Txn: tx}); r.Status != wire.StatusNotEmpty {
		t.Fatalf("commit of doomed rm: status %v, want %v (%+v)", r.Status, wire.StatusNotEmpty, r)
	}

	// The shard is not poisoned: a fresh commit applies cleanly.
	tx2 := begin(t, s, "/t/after")
	if r := do(t, s, &wire.Request{ID: 4, Op: wire.OpWrite, Shard: -1, Txn: tx2, Path: "/t/after", Data: []byte("alive")}); r.Status != wire.StatusOK {
		t.Fatalf("stage: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 5, Op: wire.OpTxnCommit, Shard: -1, Txn: tx2}); r.Status != wire.StatusOK {
		t.Fatalf("commit after refused commit: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 6, Op: wire.OpRead, Shard: -1, Path: "/t/after"}); string(r.Data) != "alive" {
		t.Fatalf("read after refused commit: %+v", r)
	}

	// Warmboot must not replay the refused record — even once the
	// obstruction is gone, a commit answered as failed may never apply.
	if r := do(t, s, &wire.Request{ID: 7, Op: wire.OpRm, Shard: -1, Path: "/full/child"}); r.Status != wire.StatusOK {
		t.Fatalf("clear obstruction: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 8, Op: wire.OpWarmboot, Shard: 0}); r.Status != wire.StatusOK {
		t.Fatalf("warmboot after refused commit: %+v", r)
	}
	if r := do(t, s, &wire.Request{ID: 9, Op: wire.OpStat, Shard: -1, Path: "/full"}); r.Status != wire.StatusOK {
		t.Fatalf("/full vanished: the refused rm was replayed (%+v)", r)
	}
	if r := do(t, s, &wire.Request{ID: 10, Op: wire.OpRead, Shard: -1, Path: "/t/after"}); string(r.Data) != "alive" {
		t.Fatalf("committed state lost across warmboot: %+v", r)
	}
}
