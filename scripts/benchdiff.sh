#!/bin/sh
# benchdiff.sh — compare two riobench core-op reports.
#
#   scripts/benchdiff.sh OLD.json NEW.json   diff two existing reports
#   scripts/benchdiff.sh OLD.json            fresh run vs OLD.json
#   scripts/benchdiff.sh                     fresh run vs BENCH_core.json
#                                            at git HEAD
#
# Wraps `riobench -diff`, which prints per-op ns/op, allocs/op, and
# sim-µs/op deltas. The serve-path allocation budget is a hard gate: the
# run fails if the NEW report's served-read exceeds 1 alloc/op (the
# zero-copy read path's whole contract). Everything else is a diff for
# the reader to judge.
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

case $# in
2)
	old=$1
	new=$2
	;;
1)
	old=$1
	new=$tmpdir/new.json
	echo "benchdiff: running riobench for the NEW side..." >&2
	go run ./cmd/riobench -out "$new" >/dev/null
	;;
0)
	old=$tmpdir/old.json
	git show HEAD:BENCH_core.json >"$old" 2>/dev/null || {
		echo "benchdiff: no BENCH_core.json at git HEAD; pass OLD.json explicitly" >&2
		exit 2
	}
	new=$tmpdir/new.json
	echo "benchdiff: running riobench for the NEW side..." >&2
	go run ./cmd/riobench -out "$new" >/dev/null
	;;
*)
	echo "usage: scripts/benchdiff.sh [OLD.json [NEW.json]]" >&2
	exit 2
	;;
esac

go run ./cmd/riobench -diff -gate-allocs served-read=1 "$old" "$new"
