package server

import (
	"errors"
	"net"
	"sync"
	"time"

	"rio/internal/wire"
)

// connInflight bounds how many decoded requests one connection may have
// outstanding inside the server at once. Pipelined clients past this
// depth see backpressure on the TCP stream itself (the reader stops
// pulling frames), not an error — the bound exists so one connection
// cannot hold unbounded decoded frames in memory.
const connInflight = 64

// Connection deadline defaults (Config.IdleTimeout / WriteTimeout; a
// negative value disables). A serving goroutine must never be pinned
// forever by a peer that went silent — a hung client, or a machine on
// the wrong side of a network partition, would otherwise hold its
// reader goroutine and up to connInflight decoded requests until
// process exit.
const (
	defaultIdleTimeout  = 5 * time.Minute
	defaultWriteTimeout = 30 * time.Second
)

// Serve accepts connections on ln and serves each on its own
// goroutine until ln is closed (Accept then returns an error) — the
// caller owns the listener's lifecycle. Connections are pipelined: the
// reader keeps pulling frames while earlier requests are still in the
// shard queues, so one connection can keep many shards busy at once.
// Responses are written as they complete, matched to requests by the
// echoed ID — a synchronous client (one request in flight) observes
// exactly the old one-in, one-out behaviour.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one connection. Three roles share the socket: this
// goroutine reads and decodes frames, a bounded pool of dispatch
// goroutines (at most connInflight) runs each request through the shard
// queues, and a single writer goroutine serializes response frames back
// onto the stream. Responses leave in completion order, not arrival
// order; the echoed request ID is the tag a pipelined client matches
// on. Any transport or decode error ends the connection: the framing
// carries no resync marker, so after a bad frame the stream cannot be
// trusted.
//
// Both directions carry deadlines: the reader arms an idle timeout
// before each frame (a peer that sends nothing for IdleTimeout is
// dropped), and the writer arms a per-frame write deadline (a peer
// that stops draining its receive window cannot block the writer
// forever). Either deadline firing closes the connection.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	idle, write := s.cfg.IdleTimeout, s.cfg.WriteTimeout

	// The writer owns the socket's write side. A write failure or
	// deadline closes the connection (unblocking the reader) but keeps
	// draining the channel so dispatchers never block on a dead peer.
	out := make(chan *wire.Response, connInflight)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		buf := make([]byte, 0, 4096)
		broken := false
		for resp := range out {
			if broken {
				continue
			}
			if write > 0 {
				conn.SetWriteDeadline(time.Now().Add(write))
			}
			if err := wire.WriteFrame(conn, wire.AppendResponse(buf[:0], resp)); err != nil {
				broken = true
				conn.Close()
			}
		}
	}()

	inflight := make(chan struct{}, connInflight)
	var dispatchWG sync.WaitGroup
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		payload, err := wire.ReadFrame(conn, wire.MaxFrame)
		if err != nil {
			break
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// The ID is unknowable from a frame that did not decode;
			// answer ID 0 so the peer sees why, then drop the stream.
			out <- &wire.Response{Status: wire.StatusInvalid, Msg: "bad request frame: " + err.Error()}
			break
		}
		inflight <- struct{}{}
		dispatchWG.Add(1)
		go func() {
			defer dispatchWG.Done()
			out <- s.Do(req)
			<-inflight
		}()
	}
	dispatchWG.Wait()
	close(out)
	writerWG.Wait()
}
