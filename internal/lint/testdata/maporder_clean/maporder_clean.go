// Package cache is the maporder clean fixture: every range-over-map
// here is order-benign, uses the canonical collect-then-sort fix, or
// carries a reasoned suppression.
package cache

import "sort"

type buf struct {
	fileBlock int64
	dirty     bool
}

type store struct {
	data   map[int64]*buf
	freed  []int64
	mirror map[int64]int64
}

func (s *store) remove(b *buf) {
	s.freed = append(s.freed, b.fileBlock)
}

// dropFileData is the fixed PR-2 shape: collect in map order, sort, then
// apply effects in deterministic order.
func (s *store) dropFileData(from int64) {
	var victims []*buf
	for _, b := range s.data {
		if b.fileBlock >= from {
			victims = append(victims, b)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].fileBlock < victims[j].fileBlock })
	for _, b := range victims {
		s.remove(b)
	}
}

// stats only accumulates commutatively.
func (s *store) stats() (n int, sum int64) {
	for k, b := range s.data {
		n++
		sum += k
		if b.dirty {
			sum -= 1
		}
	}
	return n, sum
}

// rekey writes a distinct element of another map per iteration.
func (s *store) rekey() {
	for k, b := range s.data {
		s.mirror[k] = b.fileBlock
	}
}

// prune deletes while ranging, which the spec sanctions and which is
// order-blind.
func (s *store) prune(from int64) {
	for k, b := range s.data {
		if b.fileBlock >= from {
			delete(s.data, k)
		}
	}
}

// countBig keeps all per-iteration work local and accumulates only
// commutatively.
func (s *store) countBig() int {
	n := 0
	for _, b := range s.data {
		scaled := b.fileBlock * 2
		if scaled > 1<<40 {
			n++
		}
	}
	return n
}

// anyKey hands back an arbitrary key; the suppression documents why
// order is benign.
func (s *store) anyKey() (int64, bool) {
	//riolint:ordered caller asks for an arbitrary representative; all keys are equivalent
	for k := range s.data {
		return k, true
	}
	return 0, false
}
