// Package sim provides the deterministic simulation substrate shared by the
// rest of the Rio reproduction: a simulated clock, a discrete-event queue,
// and a seeded pseudo-random number generator.
//
// Everything in the simulator that would be non-deterministic on real
// hardware — time, scheduling, fault placement, workload content — is driven
// from this package so that every crash test and every performance run is
// exactly reproducible from its seed.
package sim

import "fmt"

// Duration is simulated time in nanoseconds. It mirrors time.Duration but is
// a distinct type so that simulated time can never be accidentally mixed
// with wall-clock time.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.3gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Time is an absolute simulated timestamp (nanoseconds since boot).
type Time int64

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Clock is a simulated clock. The zero value is a clock at time zero.
//
// The clock only moves when the simulation advances it; there is no
// background ticking. Components that model latency (the disk, the CPU cost
// model) advance the clock explicitly.
type Clock struct {
	now Time
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: simulated time is monotonic.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic("sim: clock advanced backwards")
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock forward to t if t is in the future; it is a
// no-op otherwise.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Used when a simulated machine reboots and
// a fresh timeline begins.
func (c *Clock) Reset() { c.now = 0 }
