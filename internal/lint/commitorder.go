package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Commitorder enforces the transaction layer's crash-safety protocol
// (DESIGN.md §7c): within any one function that touches commit
// records, the first Publish must precede the first Apply, the first
// Apply must precede the first Erase, and a commit may be acked
// (ackCommit) only after both Publish and Apply. The ordering is the
// whole atomicity argument — an ack before the record is durable, or
// an erase before the record is fully applied, opens exactly the
// torn-commit window the WAL-free design exists to close — and it is
// invisible to the compiler, so riolint pins it.
//
// Recognition is structural, in the SquirrelFS typestate spirit: the
// protocol verbs are the methods Publish/Apply/Erase on any named type
// called Log (internal/txn's commit log, or a fixture double), and the
// ack is any call named ackCommit. A function that legitimately runs a
// verb early carries //riolint:commitorder <reason>.
var Commitorder = &Analyzer{
	Name:      "commitorder",
	Directive: "commitorder",
	Doc:       "commit records must follow publish -> apply -> erase, acked only after publish+apply",
	Run:       runCommitorder,
}

func runCommitorder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCommitContext(p, fn.Body)
				}
			case *ast.FuncLit:
				checkCommitContext(p, fn.Body)
			}
			return true
		})
	}
}

// commitEvents are the first occurrence of each protocol verb in one
// function body (token.NoPos when absent).
type commitEvents struct {
	publish token.Pos
	apply   token.Pos
	erase   token.Pos
	ack     token.Pos
}

func checkCommitContext(p *Pass, body *ast.BlockStmt) {
	var ev commitEvents
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // nested literals are their own contexts
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch name := calleeName(call); name {
		case "Publish", "Apply", "Erase":
			if !isLogMethod(p, call) {
				return true
			}
			slot := map[string]*token.Pos{
				"Publish": &ev.publish, "Apply": &ev.apply, "Erase": &ev.erase,
			}[name]
			if *slot == token.NoPos {
				*slot = call.Pos()
			}
		case "ackCommit":
			if ev.ack == token.NoPos {
				ev.ack = call.Pos()
			}
		}
		return true
	})

	before := func(a, b token.Pos) bool { return a != token.NoPos && b != token.NoPos && a < b }

	// One diagnostic per misplaced verb: the publish-relative message
	// subsumes the apply-relative one when both would fire.
	switch {
	case before(ev.ack, ev.publish):
		p.Reportf(ev.ack,
			"commit acked before its record was published (publish at line %d); a crash between them tears the transaction — order Publish, Apply, Erase, then ackCommit",
			p.Fset.Position(ev.publish).Line)
	case before(ev.ack, ev.apply):
		p.Reportf(ev.ack,
			"commit acked before its record was applied (apply at line %d); the ack promises a state that does not exist yet",
			p.Fset.Position(ev.apply).Line)
	}
	switch {
	case before(ev.erase, ev.publish):
		p.Reportf(ev.erase,
			"log erased before the batch was published (publish at line %d); Publish replaces the log itself — an explicit erase first can only drop someone else's record",
			p.Fset.Position(ev.publish).Line)
	case before(ev.erase, ev.apply):
		p.Reportf(ev.erase,
			"log erased before its record was applied (apply at line %d); a crash between them loses the committed transaction",
			p.Fset.Position(ev.apply).Line)
	}
	if before(ev.apply, ev.publish) {
		p.Reportf(ev.apply,
			"record applied before it was published (publish at line %d); a crash between them leaves a partial application no recovery can complete",
			p.Fset.Position(ev.publish).Line)
	}
}

// calleeName extracts the called function or method's name.
func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// isLogMethod reports whether call is a method call on a value whose
// type is a named type called Log (possibly through a pointer).
func isLogMethod(p *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Log"
}
