// Quickstart: the Rio pitch in thirty lines.
//
// Write a file on a Rio machine — no sync, no write-back, nothing touches
// the disk — then crash the operating system and warm-reboot. The file
// comes back intact, because Rio's registry + warm reboot make the file
// cache itself permanent storage.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rio"
)

func main() {
	sys, err := rio.New(rio.Config{Policy: rio.PolicyRio})
	if err != nil {
		log.Fatal(err)
	}
	baseline := sys.Stats().DiskBytesWritten // mkfs formatting

	// Every write is synchronously permanent the moment it returns —
	// Table 2's "after write, synchronous" row — yet no disk I/O happens.
	if err := sys.Mkdir("/inbox"); err != nil {
		log.Fatal(err)
	}
	if err := sys.WriteFile("/inbox/mail", []byte("the authors' mail lived on a Rio server")); err != nil {
		log.Fatal(err)
	}
	f, err := sys.Create("/inbox/draft")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte("unsaved work...")); err != nil {
		log.Fatal(err)
	}
	if err := f.Sync(); err != nil { // returns immediately under Rio
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("wrote 2 files; disk writes since boot: %d bytes\n",
		st.DiskBytesWritten-baseline)

	// The operating system crashes with the only copy in memory.
	sys.Crash("null pointer dereference in some driver")
	fmt.Println("kernel crashed; memory preserved, disk untouched")

	// Warm reboot: dump memory, restore the registry's dirty buffers,
	// fsck, boot, replay the UBC through normal system calls.
	rep, err := sys.WarmReboot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm reboot restored %d metadata + %d data buffers (fsck clean: %v)\n",
		rep.MetaRestored, rep.DataRestored, rep.FsckClean)

	for _, path := range []string{"/inbox/mail", "/inbox/draft"} {
		data, err := sys.ReadFile(path)
		if err != nil {
			log.Fatalf("%s lost: %v", path, err)
		}
		fmt.Printf("%s: %q\n", path, data)
	}
	fmt.Println("every write survived — write-back performance, write-through reliability")
}
