package workload

import (
	"fmt"

	"rio/internal/fs"
	"rio/internal/txn"
)

// Workload is the common contract every scenario-drivable workload
// implements: Setup prepares its file tree, Step executes one operation
// of the stream (deterministic in the workload's seed), and Check
// classifies the recovered file system into a typed Verdict after a
// crash plus recovery. A workload must be crash-aware: Step may return
// mid-op when the kernel panics, and Check must mask exactly the one
// in-flight operation while convicting everything else.
type Workload interface {
	Name() string
	Setup(fsys *fs.FS) error
	Step(fsys *fs.FS) error
	Check(fsys *fs.FS) Verdict
}

// Verdict is the typed outcome of a workload's post-recovery check.
// The three counters separate the failure modes the campaigns gate on:
//
//   - Corruptions: state that is detectably wrong — frames that fail
//     their checksum, bytes that contradict the oracle, files that
//     should not exist. The Table 1 corruption count.
//   - Lost: acknowledged state that silently rolled back — an op the
//     workload completed before the crash whose effect is gone. Rio's
//     headline promise is that this stays zero.
//   - Torn: a multi-step operation visible half-applied — a rename
//     showing on both sides, accounts at mixed commit ids. The
//     transaction layer's promise is that this stays zero.
type Verdict struct {
	Checked     int          `json:"checked"`
	Lost        int          `json:"lost"`
	Torn        int          `json:"torn"`
	Corruptions []Corruption `json:"corruptions,omitempty"`
}

// Clean reports whether the verdict found nothing wrong.
func (v Verdict) Clean() bool {
	return v.Lost == 0 && v.Torn == 0 && len(v.Corruptions) == 0
}

// Merge folds another verdict into v.
func (v *Verdict) Merge(o Verdict) {
	v.Checked += o.Checked
	v.Lost += o.Lost
	v.Torn += o.Torn
	v.Corruptions = append(v.Corruptions, o.Corruptions...)
}

// fnv64 is FNV-1a-64, the frame checksum shared by the framed
// workloads (hotkey, mailspool, metacache, scan).
func fnv64(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// --- MemTest as a Workload ---

// Name implements Workload.
func (mt *MemTest) Name() string { return "memtest" }

// Setup implements Workload; memTest builds its tree lazily in Step.
func (mt *MemTest) Setup(fsys *fs.FS) error { return nil }

// Check implements Workload by wrapping Verify: memTest's oracle diff
// reports detected corruption; a missing oracle file is corruption too
// (Verify already masks the in-flight op).
func (mt *MemTest) Check(fsys *fs.FS) Verdict {
	return Verdict{
		Checked:     len(mt.oracle) + len(mt.links),
		Corruptions: mt.Verify(fsys),
	}
}

// --- TxnTest as a Workload ---

// Name implements Workload.
func (tt *TxnTest) Name() string { return "txntest" }

// Step implements Workload: one full commit cycle.
func (tt *TxnTest) Step(fsys *fs.FS) error { return tt.Commit(fsys) }

// Check implements Workload. The transaction layer's recovery is part
// of the workload's own contract, so Check first rolls the log forward
// (a published-but-unapplied record is pending state, not corruption)
// and then classifies the accounts: mixed ids are a torn commit, a
// consistent-but-pre-ack id is a lost acked commit. When the
// roll-forward itself quarantined a record the storage was damaged in
// a way recovery already detected, so mixed ids are downgraded to
// detected corruption rather than a torn-commit conviction — the same
// rule the transactional campaign applies.
func (tt *TxnTest) Check(fsys *fs.FS) Verdict {
	v := Verdict{Checked: tt.Accounts}
	l := txn.NewLog(fsys)
	st, err := l.RecoverOpts(txn.Options{
		Crashed: func() bool { return fsys.K.Crashed() != nil },
	})
	if err != nil {
		v.Corruptions = append(v.Corruptions,
			Corruption{txn.Dir, "txn roll-forward failed: " + err.Error()})
		return v
	}
	tv := tt.Verify(fsys)
	v.Corruptions = append(v.Corruptions, tv.Failures...)
	if st.Quarantined > 0 {
		v.Corruptions = append(v.Corruptions, Corruption{txn.Dir,
			fmt.Sprintf("%d txn records quarantined (storage damage)", st.Quarantined)})
		return v
	}
	if tv.Mixed {
		v.Torn++
	}
	if tv.LostAcked {
		v.Lost++
	}
	return v
}
