package fleetcampaign

import (
	"reflect"
	"testing"
)

func TestPlanDeterministic(t *testing.T) {
	for i := 0; i < 16; i++ {
		a := PlanFor(77, i)
		b := PlanFor(77, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("plan %d not deterministic: %+v vs %+v", i, a, b)
		}
		if a.Kind != FaultKind(i%NumKinds) {
			t.Fatalf("plan %d: kind %v, want %v", i, a.Kind, FaultKind(i%NumKinds))
		}
		if a.PreWrites < 4 || a.PreWrites > 8 || a.PostWrites < 4 || a.PostWrites > 8 {
			t.Fatalf("plan %d: write counts out of range: %+v", i, a)
		}
	}
	if PlanFor(77, 0).Seed == PlanFor(78, 0).Seed {
		t.Fatal("different campaign seeds produced the same plan seed")
	}
}

func TestFaultKindStrings(t *testing.T) {
	want := []string{"kill-primary", "partition-primary", "kill-backup", "os-crash", "partition-pair"}
	for i, w := range want {
		if got := FaultKind(i).String(); got != w {
			t.Fatalf("kind %d: %q, want %q", i, got, w)
		}
	}
}

// TestRunOneEachKind runs one plan per fault kind and demands the gate
// the whole layer exists for: nothing acked is ever lost.
func TestRunOneEachKind(t *testing.T) {
	for i := 0; i < NumKinds; i++ {
		p := PlanFor(1996, i)
		res := RunOne(p)
		if res.Err != "" {
			t.Fatalf("%v: harness error: %s", p.Kind, res.Err)
		}
		if res.Lost != 0 {
			t.Fatalf("%v: lost %d acked writes (acked=%d)", p.Kind, res.Lost, res.Acked)
		}
		if res.Stale != 0 {
			t.Fatalf("%v: %d stale reads served by a deposed primary", p.Kind, res.Stale)
		}
		if res.Acked == 0 {
			t.Fatalf("%v: nothing acked — the run exercised nothing", p.Kind)
		}
		switch p.Kind {
		case KillPrimary:
			if res.Promotions == 0 {
				t.Fatalf("kill-primary: no promotion happened (reconfigs=%d)", res.Reconfigs)
			}
		case OSCrash:
			if res.Promotions != 0 {
				t.Fatalf("os-crash: warm reboot should not trigger promotion, got %d", res.Promotions)
			}
		case PartitionPair:
			if res.Promotions == 0 {
				t.Fatalf("partition-pair: no promotion happened (reconfigs=%d)", res.Reconfigs)
			}
		}
	}
}

// TestCampaignWorkerInvariance is the determinism acceptance criterion:
// the report — every byte of it — must not depend on the worker count.
func TestCampaignWorkerInvariance(t *testing.T) {
	run := func(workers int) *Report {
		rep, err := Run(Config{Seed: 424242, Runs: 2 * NumKinds, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep
	}
	r1 := run(1)
	r4 := run(4)
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("reports differ across worker counts:\n1 worker:\n%s\n4 workers:\n%s", r1.Table(), r4.Table())
	}
	if r1.Table() != r4.Table() {
		t.Fatalf("tables differ across worker counts:\n%s\nvs\n%s", r1.Table(), r4.Table())
	}
	if r1.TotalLost() != 0 {
		t.Fatalf("campaign lost %d acked writes:\n%s", r1.TotalLost(), r1.Table())
	}
	if r1.TotalStale() != 0 {
		t.Fatalf("campaign served %d stale reads:\n%s", r1.TotalStale(), r1.Table())
	}
	if r1.TotalErrors() != 0 {
		t.Fatalf("campaign had harness errors: %v", r1.Errors())
	}
	total := 0
	for i := range r1.Cells {
		if r1.Cells[i].Runs != 2 {
			t.Fatalf("kind %v ran %d times, want 2 (%d runs cycling %d kinds)", FaultKind(i), r1.Cells[i].Runs, 2*NumKinds, NumKinds)
		}
		total += r1.Cells[i].Runs
	}
	if total != r1.Runs {
		t.Fatalf("cells account for %d runs, report says %d", total, r1.Runs)
	}
}

func TestCampaignRejectsZeroRuns(t *testing.T) {
	if _, err := Run(Config{Seed: 1}); err == nil {
		t.Fatal("Runs=0 accepted")
	}
}
