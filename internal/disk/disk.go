// Package disk implements the simulated magnetic disk the file system
// mounts on.
//
// The disk is the only storage that survives a cold boot. Its behaviour
// matters to the reproduction in three ways:
//
//   - Latency: the 1996-era cost gap between memory and disk drives every
//     row of Table 2. The model charges positioning time (seek + rotation)
//     plus transfer time, with positioning skipped for sequential access
//     (which is what makes journaling's log writes cheap).
//   - Crash semantics: a sector being written when the system crashes may
//     be torn, exactly the vulnerability window the paper concedes for
//     disks (§2.1).
//   - The interface is narrow and explicit (I/O control blocks, not store
//     instructions) — which is *why* disks rarely suffer direct corruption.
//     Only this package's methods can change disk contents.
package disk

import (
	"fmt"

	"rio/internal/sim"
)

// SectorSize is the simulated sector size in bytes.
const SectorSize = 512

// Params configures the disk performance model. The defaults approximate a
// 1996 fast-SCSI drive like those on the DEC 3000/600.
type Params struct {
	// Positioning is the average seek + rotational latency charged for a
	// non-sequential access.
	Positioning sim.Duration
	// SequentialThreshold: an access within this many sectors after the
	// previous one counts as sequential and pays TrackSwitch instead of
	// Positioning.
	SequentialThreshold int
	// TrackSwitch is the (small) cost charged for sequential access.
	TrackSwitch sim.Duration
	// BytesPerSecond is the media transfer rate.
	BytesPerSecond int64
	// FixedOverhead is per-request controller/command overhead.
	FixedOverhead sim.Duration
}

// DefaultParams returns the 1996-era default model.
func DefaultParams() Params {
	return Params{
		Positioning:         10 * sim.Millisecond,
		SequentialThreshold: 64,
		TrackSwitch:         1 * sim.Millisecond,
		BytesPerSecond:      5 << 20, // 5 MB/s
		FixedOverhead:       500 * sim.Microsecond,
	}
}

// Stats counts disk activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	BusyTime     sim.Duration
	SeqWrites    uint64
	RandWrites   uint64
}

// Request is a queued asynchronous write.
type Request struct {
	Sector int
	Data   []byte // len multiple of SectorSize
	Done   func() // optional completion callback
}

// Disk is a simulated disk. Contents persist until Format is called; they
// survive simulated crashes and reboots (modulo torn in-flight sectors).
type Disk struct {
	params  Params
	data    []byte
	Stats   Stats
	last    int // last accessed sector, for sequentiality
	queue   []Request
	started bool // head of queue is mid-transfer (tearable on crash)

	// Fault injection (see fault.go). plan == nil means a perfect disk.
	plan       *FaultPlan
	faultOps   uint64       // per-disk operation index for fault decisions
	latent     map[int]bool // sectors unreadable until rewritten
	FaultStats FaultStats
}

// New returns a disk with capacity bytes (rounded down to whole sectors),
// using params for the latency model.
func New(capacity int, params Params) *Disk {
	n := capacity / SectorSize
	if n <= 0 {
		panic("disk: capacity smaller than one sector")
	}
	if params.BytesPerSecond <= 0 {
		panic("disk: non-positive transfer rate")
	}
	return &Disk{params: params, data: make([]byte, n*SectorSize), last: -1 << 30}
}

// NumSectors returns the disk capacity in sectors.
func (d *Disk) NumSectors() int { return len(d.data) / SectorSize }

// Params returns the latency model in use.
func (d *Disk) Params() Params { return d.params }

func (d *Disk) checkRange(sector, sectors int) {
	if sector < 0 || sectors < 0 || sector+sectors > d.NumSectors() {
		panic(fmt.Sprintf("disk: access [%d,+%d) out of range (disk has %d sectors)",
			sector, sectors, d.NumSectors()))
	}
}

// AccessTime returns the simulated service time for n bytes at sector,
// without performing any I/O. Higher layers use it to model asynchronous
// queues whose content is applied later via Commit.
func (d *Disk) AccessTime(sector, n int) sim.Duration {
	return d.accessTime(sector, n)
}

// Commit applies data at sector without charging service time: it is the
// completion of an asynchronous request whose time was already accounted
// when it was queued. Under an active FaultPlan it can fail transiently
// (nothing written) or be silently misdirected to a wrong sector.
func (d *Disk) Commit(sector int, data []byte) error {
	if len(data)%SectorSize != 0 {
		panic("disk: commit length not a sector multiple")
	}
	ns := len(data) / SectorSize
	d.checkRange(sector, ns)
	target, err := d.writeFault("commit", sector, ns)
	if err != nil {
		return err
	}
	copy(d.data[target*SectorSize:], data)
	d.clearLatent(target, ns)
	d.last = sector + ns
	d.Stats.Writes++
	d.Stats.BytesWritten += uint64(len(data))
	return nil
}

// Tear overwrites the first sector of a request with garbage — the fate of
// a write in flight at crash time.
func (d *Disk) Tear(sector int, rng *sim.Rand) {
	d.checkRange(sector, 1)
	torn := make([]byte, SectorSize)
	rng.Bytes(torn)
	copy(d.data[sector*SectorSize:], torn)
}

// accessTime returns the simulated service time for n bytes at sector.
func (d *Disk) accessTime(sector, n int) sim.Duration {
	t := d.params.FixedOverhead
	gap := sector - d.last
	if gap >= 0 && gap <= d.params.SequentialThreshold {
		t += d.params.TrackSwitch
	} else {
		t += d.params.Positioning
	}
	t += sim.Duration(int64(n) * int64(sim.Second) / d.params.BytesPerSecond)
	return t
}

// Read copies sectors [sector, sector+len(buf)/SectorSize) into buf and
// returns the simulated service time. len(buf) must be a sector multiple.
// A non-nil error means no data was transferred; the time charged models
// the failed command (positioning happened, the transfer did not). A
// latent-sector error (IsLatent) persists until the sector is rewritten;
// a transient error (IsTransient) may clear on retry.
func (d *Disk) Read(sector int, buf []byte) (sim.Duration, error) {
	if len(buf)%SectorSize != 0 {
		panic("disk: read length not a sector multiple")
	}
	ns := len(buf) / SectorSize
	d.checkRange(sector, ns)
	t := d.accessTime(sector, len(buf))
	d.last = sector + ns
	d.Stats.Reads++
	d.Stats.BusyTime += t
	if err := d.readFault(sector, ns); err != nil {
		return t, err
	}
	copy(buf, d.data[sector*SectorSize:])
	d.Stats.BytesRead += uint64(len(buf))
	return t, nil
}

// Write synchronously writes buf at sector and returns the service time.
// A non-nil error means nothing was written (transient failure). A
// misdirected write returns nil — the drive believes it succeeded — but
// lands the data on a wrong sector, leaving the target stale.
func (d *Disk) Write(sector int, buf []byte) (sim.Duration, error) {
	if len(buf)%SectorSize != 0 {
		panic("disk: write length not a sector multiple")
	}
	ns := len(buf) / SectorSize
	d.checkRange(sector, ns)
	t := d.accessTime(sector, len(buf))
	gap := sector - d.last
	if gap >= 0 && gap <= d.params.SequentialThreshold {
		d.Stats.SeqWrites++
	} else {
		d.Stats.RandWrites++
	}
	d.last = sector + ns
	d.Stats.BusyTime += t
	target, err := d.writeFault("write", sector, ns)
	if err != nil {
		return t, err
	}
	copy(d.data[target*SectorSize:], buf)
	d.clearLatent(target, ns)
	d.Stats.Writes++
	d.Stats.BytesWritten += uint64(len(buf))
	return t, nil
}

// Enqueue adds an asynchronous write to the device queue. The data slice is
// copied. Call Service to retire queued writes; a crash with a non-empty
// queue loses the queue and may tear the in-flight sector.
func (d *Disk) Enqueue(req Request) {
	if len(req.Data)%SectorSize != 0 {
		panic("disk: queued write length not a sector multiple")
	}
	d.checkRange(req.Sector, len(req.Data)/SectorSize)
	cp := make([]byte, len(req.Data))
	copy(cp, req.Data)
	req.Data = cp
	d.queue = append(d.queue, req)
	d.started = d.started || len(d.queue) == 1
}

// QueueLen returns the number of writes still queued.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Service retires up to max queued writes (all of them if max < 0),
// returning the total simulated service time. The file-system layer decides
// when the queue drains (idle time, sync, update daemon). On a write
// failure the failed request stays at the head of the queue — a later
// Service call retries it — and the error is returned with the time spent
// so far.
func (d *Disk) Service(max int) (sim.Duration, error) {
	var total sim.Duration
	for len(d.queue) > 0 && max != 0 {
		req := d.queue[0]
		t, err := d.Write(req.Sector, req.Data)
		total += t
		if err != nil {
			d.started = true
			return total, err
		}
		d.queue = d.queue[1:]
		if req.Done != nil {
			req.Done()
		}
		if max > 0 {
			max--
		}
	}
	d.started = len(d.queue) > 0
	return total, nil
}

// Crash models a system crash: all queued writes are lost, and if a write
// was in flight its first sector is torn (overwritten with garbage), the
// same vulnerability window a real disk has.
func (d *Disk) Crash(rng *sim.Rand) {
	if d.started && len(d.queue) > 0 {
		req := d.queue[0]
		torn := make([]byte, SectorSize)
		rng.Bytes(torn)
		copy(d.data[req.Sector*SectorSize:], torn)
	}
	d.queue = nil
	d.started = false
}

// Format zeroes the disk and clears the queue. Writing every sector also
// heals any latent sector errors, as a full-surface rewrite would.
func (d *Disk) Format() {
	for i := range d.data {
		d.data[i] = 0
	}
	d.queue = nil
	d.started = false
	d.last = -1 << 30
	d.latent = nil
	if d.plan != nil {
		d.latent = make(map[int]bool)
	}
}

// Snapshot returns a copy of the full disk contents (test oracles).
func (d *Disk) Snapshot() []byte {
	out := make([]byte, len(d.data))
	copy(out, d.data)
	return out
}

// Restore overwrites disk contents from a snapshot.
func (d *Disk) Restore(snap []byte) {
	if len(snap) != len(d.data) {
		panic("disk: snapshot size mismatch")
	}
	copy(d.data, snap)
}
