package kvm

import (
	"fmt"

	"rio/internal/mmu"
)

// ExceptionKind classifies why execution stopped abnormally. Each kind maps
// onto a crash manifestation observed in the paper's experiments.
type ExceptionKind int

const (
	// ExcTrap is an MMU trap (illegal address or protection violation).
	// On a 64-bit machine most injected faults die here first.
	ExcTrap ExceptionKind = iota
	// ExcIllegalInstr is a fetch of an undecodable opcode or a PC outside
	// kernel text (e.g. a corrupted return address).
	ExcIllegalInstr
	// ExcAssert is a failed kernel consistency check (OpAssert) — the
	// "kernel consistency error messages" of the paper.
	ExcAssert
	// ExcBudget means the instruction budget was exhausted: the kernel is
	// spinning or deadlocked. Treated as a hang/watchdog crash.
	ExcBudget
	// ExcIntrinsic is a panic raised by an intrinsic (allocator
	// consistency check, lock owner mismatch, ...).
	ExcIntrinsic
	// ExcStackOverflow is SP running off the kernel stack.
	ExcStackOverflow
)

func (k ExceptionKind) String() string {
	switch k {
	case ExcTrap:
		return "mmu trap"
	case ExcIllegalInstr:
		return "illegal instruction"
	case ExcAssert:
		return "consistency check failed"
	case ExcBudget:
		return "instruction budget exceeded (hang)"
	case ExcIntrinsic:
		return "intrinsic panic"
	case ExcStackOverflow:
		return "kernel stack overflow"
	default:
		return fmt.Sprintf("ExceptionKind(%d)", int(k))
	}
}

// Exception describes abnormal termination of kernel execution.
type Exception struct {
	Kind   ExceptionKind
	PC     int
	Trap   *mmu.Trap // set when Kind == ExcTrap
	Reason string    // human-readable detail
}

func (e *Exception) Error() string {
	s := fmt.Sprintf("kvm: %s at pc=%d", e.Kind, e.PC)
	if e.Trap != nil {
		s += ": " + e.Trap.Error()
	}
	if e.Reason != "" {
		s += ": " + e.Reason
	}
	return s
}

// Intrinsics is the kernel runtime interface the VM calls through OpIntr.
// The handler reads arguments from vm.Reg[1..3], writes any result to
// vm.Reg[0], and returns a non-nil Exception to panic the kernel.
type Intrinsics interface {
	Intrinsic(vm *VM, num int32) *Exception
}

// retSentinel is the return address pushed by Exec; popping it ends the
// run. It is far outside any text range, so if a corrupted return address
// overwrites it the fetch traps instead.
const retSentinel = uint64(1) << 62

// VM executes kernel procedures.
type VM struct {
	Text *Text
	MMU  *mmu.MMU
	Reg  [NumRegs]uint64

	// Intr handles OpIntr instructions; nil makes OpIntr an illegal
	// instruction.
	Intr Intrinsics

	// EntryHooks run when the PC enters the keyed address at a call; fault
	// models use them (e.g. the copy-overrun fault inflates bcopy's length
	// argument at its entry).
	EntryHooks map[int]func(*VM)

	// Budget is the maximum number of instructions one Exec may retire
	// before it is declared hung. Zero means DefaultBudget.
	Budget uint64

	// Steps counts instructions retired across all Execs (CPU accounting).
	Steps uint64

	// Trace, when non-nil, records retired instructions and stores for
	// post-mortem fault-propagation analysis.
	Trace *Tracer

	// RegNoise, when non-nil, overwrites most non-argument registers with
	// pseudo-random garbage at each Exec. Between two top-level kernel
	// entries a real kernel's register file has been churned by
	// scheduler, interrupt, and unrelated-subsystem code; without noise,
	// this small kernel's registers would unrealistically always hold
	// recent file-cache pointers, inflating the damage stale-register
	// faults can do. Crash campaigns set this; unit tests leave it nil.
	RegNoise func() (val uint64, use bool)

	stackTop   uint64 // initial SP for each Exec
	stackLimit uint64 // lowest legal SP
	pc         int
}

// DefaultBudget is the per-Exec instruction cap: generous enough for any
// legitimate kernel operation on an 8 KB block, small enough to detect
// runaway loops quickly. It plays the role of the paper's ten-minute
// timeout after which a non-crashing run is discarded.
const DefaultBudget = 2_000_000

// New returns a VM executing text against the given MMU.
func New(text *Text, u *mmu.MMU) *VM {
	return &VM{Text: text, MMU: u, EntryHooks: make(map[int]func(*VM))}
}

// SetStack configures the kernel stack: top is the initial SP (stacks grow
// down), limit is the lowest address SP may reach.
func (v *VM) SetStack(top, limit uint64) {
	if top <= limit {
		panic("kvm: stack top must exceed limit")
	}
	v.stackTop, v.stackLimit = top, limit
}

// PC returns the current program counter (for post-mortem inspection).
func (v *VM) PC() int { return v.pc }

// Exec runs the named procedure with args in r1..rN until it returns,
// halts, or raises an exception. Registers other than SP and the argument
// registers deliberately retain their previous (stale) contents — that is
// what makes the "initialization" fault model dangerous, as in a real
// kernel where uninitialised locals hold whatever the last frame left.
func (v *VM) Exec(proc string, args ...uint64) *Exception {
	p, ok := v.Text.Proc(proc)
	if !ok {
		panic(fmt.Sprintf("kvm: Exec of unknown procedure %q", proc))
	}
	if len(args) > 14 {
		panic("kvm: too many arguments")
	}
	if v.RegNoise != nil {
		for r := len(args) + 1; r < SP; r++ {
			if val, use := v.RegNoise(); use {
				v.Reg[r] = val
			}
		}
	}
	for i, a := range args {
		v.Reg[1+i] = a
	}
	v.Reg[SP] = v.stackTop
	v.pc = p.Entry
	if err := v.push(retSentinel); err != nil {
		return err
	}
	return v.run()
}

func (v *VM) push(val uint64) *Exception {
	sp := v.Reg[SP] - 8
	if sp < v.stackLimit {
		return &Exception{Kind: ExcStackOverflow, PC: v.pc}
	}
	if trap := v.MMU.Store64(sp, val); trap != nil {
		return &Exception{Kind: ExcTrap, PC: v.pc, Trap: trap}
	}
	v.Reg[SP] = sp
	return nil
}

func (v *VM) pop() (uint64, *Exception) {
	val, trap := v.MMU.Load64(v.Reg[SP])
	if trap != nil {
		return 0, &Exception{Kind: ExcTrap, PC: v.pc, Trap: trap}
	}
	v.Reg[SP] += 8
	return val, nil
}

func (v *VM) run() *Exception {
	budget := v.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	for n := uint64(0); ; n++ {
		if n >= budget {
			return &Exception{Kind: ExcBudget, PC: v.pc}
		}
		if v.pc < 0 || v.pc >= v.Text.Len() {
			return &Exception{Kind: ExcIllegalInstr, PC: v.pc,
				Reason: "pc outside kernel text"}
		}
		in := Decode(v.Text.Word(v.pc))
		if !in.Op.Valid() {
			return &Exception{Kind: ExcIllegalInstr, PC: v.pc,
				Reason: fmt.Sprintf("opcode %d", uint8(in.Op))}
		}
		v.Steps++
		next := v.pc + 1
		r := &v.Reg

		if v.Trace != nil {
			e := TraceEntry{PC: v.pc, Word: v.Text.Word(v.pc)}
			switch in.Op {
			case OpSt:
				e.Store = true
				e.Addr = r[in.Rs1] + uint64(int64(in.Imm))
				e.Val = r[in.Rs2]
			case OpStB:
				e.Store = true
				e.Addr = r[in.Rs1] + uint64(int64(in.Imm))
				e.Val = uint64(byte(r[in.Rs2]))
			case OpPush:
				e.Store = true
				e.Addr = r[SP] - 8
				e.Val = r[in.Rs1]
			}
			v.Trace.record(e)
		}

		switch in.Op {
		case OpNop:
		case OpMovI:
			r[in.Rd] = uint64(int64(in.Imm))
		case OpMovHi:
			r[in.Rd] = (r[in.Rd] & 0xffffffff) | uint64(uint32(in.Imm))<<32
		case OpMov:
			r[in.Rd] = r[in.Rs1]
		case OpAdd:
			r[in.Rd] = r[in.Rs1] + r[in.Rs2]
		case OpSub:
			r[in.Rd] = r[in.Rs1] - r[in.Rs2]
		case OpAddI:
			r[in.Rd] = r[in.Rs1] + uint64(int64(in.Imm))
		case OpAnd:
			r[in.Rd] = r[in.Rs1] & r[in.Rs2]
		case OpOr:
			r[in.Rd] = r[in.Rs1] | r[in.Rs2]
		case OpXor:
			r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
		case OpShlI:
			r[in.Rd] = r[in.Rs1] << (uint32(in.Imm) & 63)
		case OpShrI:
			r[in.Rd] = r[in.Rs1] >> (uint32(in.Imm) & 63)
		case OpLd:
			val, trap := v.MMU.Load64(r[in.Rs1] + uint64(int64(in.Imm)))
			if trap != nil {
				return &Exception{Kind: ExcTrap, PC: v.pc, Trap: trap}
			}
			r[in.Rd] = val
		case OpSt:
			if trap := v.MMU.Store64(r[in.Rs1]+uint64(int64(in.Imm)), r[in.Rs2]); trap != nil {
				return &Exception{Kind: ExcTrap, PC: v.pc, Trap: trap}
			}
		case OpLdB:
			val, trap := v.MMU.LoadByte(r[in.Rs1] + uint64(int64(in.Imm)))
			if trap != nil {
				return &Exception{Kind: ExcTrap, PC: v.pc, Trap: trap}
			}
			r[in.Rd] = uint64(val)
		case OpStB:
			if trap := v.MMU.StoreByte(r[in.Rs1]+uint64(int64(in.Imm)), byte(r[in.Rs2])); trap != nil {
				return &Exception{Kind: ExcTrap, PC: v.pc, Trap: trap}
			}
		case OpBeq:
			if r[in.Rs1] == r[in.Rs2] {
				next = v.pc + 1 + int(in.Imm)
			}
		case OpBne:
			if r[in.Rs1] != r[in.Rs2] {
				next = v.pc + 1 + int(in.Imm)
			}
		case OpBlt:
			if int64(r[in.Rs1]) < int64(r[in.Rs2]) {
				next = v.pc + 1 + int(in.Imm)
			}
		case OpBge:
			if int64(r[in.Rs1]) >= int64(r[in.Rs2]) {
				next = v.pc + 1 + int(in.Imm)
			}
		case OpBle:
			if int64(r[in.Rs1]) <= int64(r[in.Rs2]) {
				next = v.pc + 1 + int(in.Imm)
			}
		case OpBgt:
			if int64(r[in.Rs1]) > int64(r[in.Rs2]) {
				next = v.pc + 1 + int(in.Imm)
			}
		case OpJmp:
			next = v.pc + 1 + int(in.Imm)
		case OpCall:
			if err := v.push(uint64(v.pc + 1)); err != nil {
				return err
			}
			next = int(in.Imm)
			if hook := v.EntryHooks[next]; hook != nil {
				hook(v)
			}
		case OpRet:
			ret, err := v.pop()
			if err != nil {
				return err
			}
			if ret == retSentinel {
				return nil
			}
			next = int(ret)
		case OpPush:
			if err := v.push(r[in.Rs1]); err != nil {
				return err
			}
		case OpPop:
			val, err := v.pop()
			if err != nil {
				return err
			}
			r[in.Rd] = val
		case OpIntr:
			if v.Intr == nil {
				return &Exception{Kind: ExcIllegalInstr, PC: v.pc,
					Reason: "intrinsic with no handler"}
			}
			v.pc = next // intrinsics see the post-instruction PC
			if exc := v.Intr.Intrinsic(v, in.Imm); exc != nil {
				return exc
			}
			continue
		case OpAssert:
			if r[in.Rs1] != r[in.Rs2] {
				return &Exception{Kind: ExcAssert, PC: v.pc,
					Reason: fmt.Sprintf("r%d(%#x) != r%d(%#x)",
						in.Rs1, r[in.Rs1], in.Rs2, r[in.Rs2])}
			}
		case OpHalt:
			return nil
		}
		v.pc = next
	}
}
