package disk

import (
	"bytes"
	"testing"

	"rio/internal/sim"
)

func newDisk(sectors int) *Disk {
	return New(sectors*SectorSize, DefaultParams())
}

func sector(b byte) []byte {
	s := make([]byte, SectorSize)
	for i := range s {
		s[i] = b
	}
	return s
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newDisk(16)
	d.Write(3, sector(0xaa))
	buf := make([]byte, SectorSize)
	d.Read(3, buf)
	if !bytes.Equal(buf, sector(0xaa)) {
		t.Fatal("round trip mismatch")
	}
}

func TestMultiSectorIO(t *testing.T) {
	d := newDisk(16)
	data := append(sector(1), sector(2)...)
	d.Write(5, data)
	buf := make([]byte, 2*SectorSize)
	d.Read(5, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("multi-sector mismatch")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDisk(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Write(3, append(sector(0), sector(0)...))
}

func TestNonSectorMultiplePanics(t *testing.T) {
	d := newDisk(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Write(0, make([]byte, 100))
}

func TestLatencySequentialVsRandom(t *testing.T) {
	d := newDisk(1000)
	// First write: random positioning.
	t1, _ := d.Write(0, sector(0))
	// Adjacent write: sequential, cheaper.
	t2, _ := d.Write(1, sector(0))
	// Far write: random again.
	t3, _ := d.Write(900, sector(0))
	if t2 >= t1 {
		t.Fatalf("sequential (%v) not cheaper than first random (%v)", t2, t1)
	}
	if t3 <= t2 {
		t.Fatalf("random (%v) not dearer than sequential (%v)", t3, t2)
	}
	if d.Stats.SeqWrites != 1 || d.Stats.RandWrites != 2 {
		t.Fatalf("seq/rand = %d/%d", d.Stats.SeqWrites, d.Stats.RandWrites)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	p := DefaultParams()
	d := New(1<<20, p)
	small, _ := d.Write(0, sector(0))
	d.last = -1 << 30 // reset sequentiality
	big, _ := d.Write(0, make([]byte, 64*SectorSize))
	if big <= small {
		t.Fatalf("64-sector write (%v) not slower than 1-sector (%v)", big, small)
	}
}

func TestAsyncQueueServicing(t *testing.T) {
	d := newDisk(16)
	done := 0
	d.Enqueue(Request{Sector: 1, Data: sector(7), Done: func() { done++ }})
	d.Enqueue(Request{Sector: 2, Data: sector(8), Done: func() { done++ }})
	if d.QueueLen() != 2 {
		t.Fatalf("queue len = %d", d.QueueLen())
	}
	busy, _ := d.Service(-1)
	if busy <= 0 {
		t.Fatal("no busy time charged")
	}
	if done != 2 || d.QueueLen() != 0 {
		t.Fatalf("done=%d queue=%d", done, d.QueueLen())
	}
	buf := make([]byte, SectorSize)
	d.Read(1, buf)
	if buf[0] != 7 {
		t.Fatal("queued write not applied")
	}
}

func TestEnqueueCopiesData(t *testing.T) {
	d := newDisk(4)
	data := sector(1)
	d.Enqueue(Request{Sector: 0, Data: data})
	data[0] = 99 // caller mutates after enqueue
	d.Service(-1)
	buf := make([]byte, SectorSize)
	d.Read(0, buf)
	if buf[0] != 1 {
		t.Fatal("Enqueue did not copy data")
	}
}

func TestServiceLimit(t *testing.T) {
	d := newDisk(16)
	for i := 0; i < 5; i++ {
		d.Enqueue(Request{Sector: i, Data: sector(byte(i))})
	}
	d.Service(2)
	if d.QueueLen() != 3 {
		t.Fatalf("queue len = %d after Service(2)", d.QueueLen())
	}
}

func TestCrashDropsQueueAndTearsInFlight(t *testing.T) {
	d := newDisk(16)
	d.Write(1, sector(0x11)) // committed data
	d.Enqueue(Request{Sector: 1, Data: sector(0x22)})
	d.Enqueue(Request{Sector: 2, Data: sector(0x33)})
	d.Crash(sim.NewRand(42))
	if d.QueueLen() != 0 {
		t.Fatal("crash left queue")
	}
	buf := make([]byte, SectorSize)
	d.Read(1, buf)
	// In-flight sector torn: neither old nor new value.
	if bytes.Equal(buf, sector(0x11)) || bytes.Equal(buf, sector(0x22)) {
		t.Fatal("in-flight sector not torn")
	}
	// Sector 2 write simply lost; old contents (zero) remain.
	d.Read(2, buf)
	if !bytes.Equal(buf, sector(0)) {
		t.Fatal("queued-but-not-started write altered disk")
	}
}

func TestCrashWithEmptyQueueHarmless(t *testing.T) {
	d := newDisk(4)
	d.Write(0, sector(5))
	d.Crash(sim.NewRand(1))
	buf := make([]byte, SectorSize)
	d.Read(0, buf)
	if !bytes.Equal(buf, sector(5)) {
		t.Fatal("crash with empty queue altered committed data")
	}
}

func TestFormat(t *testing.T) {
	d := newDisk(4)
	d.Write(0, sector(9))
	d.Enqueue(Request{Sector: 1, Data: sector(1)})
	d.Format()
	if d.QueueLen() != 0 {
		t.Fatal("Format left queue")
	}
	buf := make([]byte, SectorSize)
	d.Read(0, buf)
	if !bytes.Equal(buf, sector(0)) {
		t.Fatal("Format did not zero disk")
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := newDisk(4)
	d.Write(2, sector(0x5c))
	snap := d.Snapshot()
	d.Write(2, sector(0))
	d.Restore(snap)
	buf := make([]byte, SectorSize)
	d.Read(2, buf)
	if !bytes.Equal(buf, sector(0x5c)) {
		t.Fatal("restore mismatch")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newDisk(8)
	d.Write(0, sector(1))
	d.Read(0, make([]byte, SectorSize))
	s := d.Stats
	if s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesWritten != SectorSize || s.BytesRead != SectorSize {
		t.Fatalf("byte stats %+v", s)
	}
	if s.BusyTime <= 0 {
		t.Fatal("no busy time")
	}
}

func TestBadConstructionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, DefaultParams()) },
		func() { New(SectorSize, Params{}) }, // zero transfer rate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
