package registry

import (
	"testing"
	"testing/quick"

	"rio/internal/kernel"
	"rio/internal/mem"
	"rio/internal/mmu"
)

func boot(t *testing.T, protect bool) (*kernel.Kernel, *Registry) {
	t.Helper()
	m := mem.New(128 * mem.PageSize)
	u := mmu.New(m)
	if protect {
		u.EnforceProtection = true
		u.MapAllThroughTLB = true
	}
	k := kernel.New(m, u, kernel.BuildText())
	r, err := New(k, 2, protect)
	if err != nil {
		t.Fatal(err)
	}
	return k, r
}

func sampleEntry() Entry {
	return Entry{
		Kind:  KindData,
		Flags: FlagDirty,
		Frame: 77,
		Ino:   12,
		Size:  8192,
		Block: 345,
		Off:   16384,
		Cksum: 0xfeedbead,
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(kindSel bool, flags uint8, frame, ino, size uint32, block, off int64, ck uint64) bool {
		e := Entry{
			Kind: KindMeta, Flags: flags, Frame: frame, Ino: ino,
			Size: size, Block: block, Off: off, Cksum: ck,
		}
		if kindSel {
			e.Kind = KindData
		}
		var buf [EntrySize]byte
		e.marshal(buf[:])
		got, ok := unmarshal(buf[:])
		return ok && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	var buf [EntrySize]byte
	sampleEntry().marshal(buf[:])
	// Flip each byte in turn; every flip must invalidate the entry or
	// still parse to something CRC-consistent (only possible for reserved
	// zero bytes which are not covered... they are covered: 40..47 are in
	// the CRC range, 56..63 are not but are also not parsed).
	for i := 0; i < 56; i++ {
		b := buf
		b[i] ^= 0x40
		if _, ok := unmarshal(b[:]); ok {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestAllocUpdateFreeCycle(t *testing.T) {
	_, r := boot(t, false)
	slot, err := r.Alloc(sampleEntry())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get(slot); !ok || got != sampleEntry() {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if err := r.Mutate(slot, func(e *Entry) { e.Cksum = 1; e.Flags |= FlagChanging }); err != nil {
		t.Fatal(err)
	}
	e, _ := r.Get(slot)
	if e.Cksum != 1 || e.Flags&FlagChanging == 0 {
		t.Fatalf("mutate lost: %+v", e)
	}
	if err := r.Free(slot); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(slot); ok {
		t.Fatal("freed slot still live")
	}
	if err := r.Free(slot); err == nil {
		t.Fatal("double free allowed")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	_, r := boot(t, false)
	n := 0
	for {
		if _, err := r.Alloc(sampleEntry()); err != nil {
			break
		}
		n++
	}
	if n != r.Cap() {
		t.Fatalf("allocated %d, cap %d", n, r.Cap())
	}
	if r.LiveCount() != n {
		t.Fatalf("live %d != %d", r.LiveCount(), n)
	}
}

func TestEntriesSurviveInMemoryAndParse(t *testing.T) {
	k, r := boot(t, false)
	var want []Entry
	for i := 0; i < 10; i++ {
		e := sampleEntry()
		e.Ino = uint32(i)
		if _, err := r.Alloc(e); err != nil {
			t.Fatal(err)
		}
		want = append(want, e)
	}
	// Simulate crash: dump memory, parse registry from the dump.
	dump := k.Mem.Dump()
	got, bad := Parse(dump, r.Frames())
	if bad != 0 {
		t.Fatalf("bad entries: %d", bad)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(got), len(want))
	}
	seen := map[uint32]bool{}
	for _, e := range got {
		seen[e.Ino] = true
	}
	for _, e := range want {
		if !seen[e.Ino] {
			t.Fatalf("entry ino=%d lost", e.Ino)
		}
	}
}

func TestParseSkipsCorruptEntries(t *testing.T) {
	k, r := boot(t, false)
	s1, _ := r.Alloc(sampleEntry())
	e2 := sampleEntry()
	e2.Ino = 99
	r.Alloc(e2)
	// Corrupt the first entry's bytes directly (wild store simulation).
	perFrame := mem.PageSize / EntrySize
	f := r.Frames()[s1/perFrame]
	addr := mem.FrameBase(f) + uint64((s1%perFrame)*EntrySize)
	k.Mem.FlipBit(addr+5, 3)

	got, bad := Parse(k.Mem.Dump(), r.Frames())
	if bad != 1 {
		t.Fatalf("bad = %d, want 1", bad)
	}
	if len(got) != 1 || got[0].Ino != 99 {
		t.Fatalf("got %+v", got)
	}
}

func TestFreedSlotNotParsed(t *testing.T) {
	k, r := boot(t, false)
	slot, _ := r.Alloc(sampleEntry())
	if err := r.Free(slot); err != nil {
		t.Fatal(err)
	}
	got, bad := Parse(k.Mem.Dump(), r.Frames())
	if len(got) != 0 || bad != 0 {
		t.Fatalf("parsed %d entries (%d bad) after free", len(got), bad)
	}
}

func TestProtectionGuardsRegistry(t *testing.T) {
	k, r := boot(t, true)
	slot, err := r.Alloc(sampleEntry())
	if err != nil {
		t.Fatalf("sanctioned registry write failed under protection: %v", err)
	}
	// A wild store into a registry frame must trap.
	f := r.Frames()[0]
	addr := mmu.PhysToKSEG(mem.FrameBase(f))
	if trap := k.MMU.StoreByte(addr, 0xff); trap == nil {
		t.Fatal("wild store into protected registry frame succeeded")
	}
	// Sanctioned updates still work.
	if err := r.Mutate(slot, func(e *Entry) { e.Cksum = 7 }); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryFramesFlagged(t *testing.T) {
	k, r := boot(t, false)
	for _, f := range r.Frames() {
		if !k.Mem.Frame(f).Registry {
			t.Fatalf("frame %d not flagged Registry", f)
		}
	}
}

func TestRegistryOverhead(t *testing.T) {
	// The paper reports ~40 bytes of registry per 8 KB page; our entry is
	// 64 bytes. Check the overhead stays under 1%.
	ratio := float64(EntrySize) / float64(mem.PageSize)
	if ratio > 0.01 {
		t.Fatalf("registry overhead %.3f%% too large", ratio*100)
	}
}

func TestParseTruncatedDump(t *testing.T) {
	_, r := boot(t, false)
	r.Alloc(sampleEntry())
	// A dump shorter than the registry frames must not panic.
	short := make([]byte, mem.PageSize) // frame base is beyond this
	_, bad := Parse(short, r.Frames())
	if bad == 0 {
		t.Fatal("truncated dump not flagged")
	}
}

func TestMutateFreeSlotFails(t *testing.T) {
	_, r := boot(t, false)
	if err := r.Mutate(3, func(*Entry) {}); err == nil {
		t.Fatal("mutate of free slot allowed")
	}
}
