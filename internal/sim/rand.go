package sim

// Rand is a small, fast, deterministic PRNG (splitmix64 seeding a
// xoshiro256** core). It deliberately does not use math/rand so that the
// stream is stable across Go releases: crash-test campaigns cite seeds, and
// a seed must reproduce the same crash forever.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances a seed and returns the next output; used to expand a
// single 64-bit seed into the 256-bit xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a generator seeded from seed. Distinct seeds give
// independent streams; the zero seed is valid.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a 64-bit seed.
func (r *Rand) Seed(seed uint64) {
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair pseudo-random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Range returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	var w uint64
	for i := range b {
		if i%8 == 0 {
			w = r.Uint64()
		}
		b[i] = byte(w)
		w >>= 8
	}
}

// Fork derives an independent child generator from the current state.
// The parent stream advances by one draw. Useful for giving each subsystem
// (fault injector, workload, disk) its own stream so that adding draws in
// one does not perturb the others.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
