package server

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations at ~10µs, 10 at ~1000µs, 1 at ~100000µs.
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Microsecond)
	}
	h.Observe(100000 * time.Microsecond)
	if h.Count() != 111 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 8 || p50 > 16 {
		t.Fatalf("p50 = %v, want within [8,16]µs bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 512 || p99 > 131072 {
		t.Fatalf("p99 = %v, want in the tail", p99)
	}
	if max := h.Quantile(1.0); max < 65536 {
		t.Fatalf("p100 = %v, want in the overflow observation's bucket", max)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Observe(time.Microsecond * 4)
		b.Observe(time.Millisecond * 4)
	}
	a.Merge(&b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if p50 := a.Quantile(0.50); p50 > 1000 {
		t.Fatalf("merged p50 = %v, want in the fast half", p50)
	}
	if p95 := a.Quantile(0.95); p95 < 1000 {
		t.Fatalf("merged p95 = %v, want in the slow half", p95)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(24 * time.Hour) // far past the last bucket
	h.Observe(-time.Second)   // negative clamps to bucket 0
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if v := h.Quantile(1); v <= 0 {
		t.Fatalf("overflow quantile = %v", v)
	}
	if n := h.Overflow(); n != 1 {
		t.Fatalf("overflow count = %d, want 1", n)
	}
}

// A quantile that resolves in the overflow bucket must return the
// bucket's lower bound, not interpolate toward a 2^25µs ceiling no
// observation is known to respect — that interpolation understated p99
// whenever the tail outran the histogram.
func TestHistogramOverflowQuantileIsLowerBound(t *testing.T) {
	lo, _ := bucketBounds(histBuckets - 1)
	var h Histogram
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(100 * time.Second) // one overflow observation
	for _, q := range []float64{0.95, 0.99, 1} {
		if v := h.Quantile(q); v != lo {
			t.Fatalf("Quantile(%v) = %v, want overflow lower bound %v", q, v, lo)
		}
	}
	if v := h.Quantile(0.5); v >= lo {
		t.Fatalf("p50 = %v leaked into the overflow bucket", v)
	}
	if n := h.Overflow(); n != 1 {
		t.Fatalf("overflow count = %d, want 1", n)
	}
}
