module rio

go 1.22
