package warmreboot

import (
	"testing"

	"rio/internal/workload"
)

// TestWarmRebootDropsNameCache crashes a machine mid-workload and checks
// that warm reboot leaves no stale name-resolution state: the remounted
// FS starts with an empty dcache (lookups resolve from recovered
// directory blocks, not remembered mappings), and the memTest oracle —
// which knows every path and its contents — finds no corruption, which
// it would if a stale (dir, name) → ino mapping survived the reboot.
func TestWarmRebootDropsNameCache(t *testing.T) {
	for _, protect := range []bool{false, true} {
		m := rioMachine(t, protect)
		mt := workload.NewMemTest(77, 1<<20)
		for i := 0; i < 400; i++ {
			if err := mt.Step(m.FS); err != nil {
				t.Fatalf("protect=%v step %d: %v", protect, i, err)
			}
		}
		if m.FS.Stats.DcacheHits == 0 {
			t.Fatal("workload never exercised the dcache")
		}

		m.Kernel.Panic("injected crash with a hot name cache")
		m.CrashFinish()
		if _, err := Warm(m); err != nil {
			t.Fatalf("protect=%v: warm reboot: %v", protect, err)
		}

		// Warm remounted a fresh FS (empty dcache) and then re-created the
		// recovered files through ordinary syscalls; any hits counted now
		// come from that restore pass, on entries the restore itself
		// inserted — never from pre-crash state, whose FS (and cache) was
		// discarded with the old mount.
		if bad := mt.Verify(m.FS); len(bad) != 0 {
			t.Fatalf("protect=%v: oracle found corruption after reboot: %v",
				protect, bad)
		}
		// And the verification pass itself must have warmed the fresh
		// cache through the normal path — proving lookups, not leftovers,
		// populate it.
		if mt.FileCount() > 0 && m.FS.Stats.DcacheMisses == 0 {
			t.Fatalf("protect=%v: verify pass never missed the fresh dcache", protect)
		}
	}
}
