package server

import (
	"fmt"
	"net"
	"testing"
	"time"

	"rio/internal/wire"
)

// The jittered backoff schedule must be a pure function of (policy,
// attempt): same seed, same schedule, byte for byte — and every delay
// must respect the hard cap, jitter included.
func TestRetryPolicyDelayDeterministicAndCapped(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 12, BaseDelay: time.Millisecond,
		MaxDelay: 64 * time.Millisecond, Seed: 1996}
	var first []time.Duration
	for n := 0; n < pol.MaxRetries; n++ {
		first = append(first, pol.Delay(n))
	}
	for round := 0; round < 3; round++ {
		for n := 0; n < pol.MaxRetries; n++ {
			if d := pol.Delay(n); d != first[n] {
				t.Fatalf("round %d attempt %d: %v != first run's %v (schedule not deterministic)", round, n, d, first[n])
			}
		}
	}
	for n, d := range first {
		if d > pol.MaxDelay {
			t.Fatalf("attempt %d: delay %v exceeds hard cap %v", n, d, pol.MaxDelay)
		}
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", n, d)
		}
	}
	// Jitter must actually spread schedules: two seeds should disagree
	// somewhere (with 12 attempts the chance of a full collision is
	// negligible; a failure here means the seed is being ignored).
	pol2 := pol
	pol2.Seed = 7
	same := true
	for n := 0; n < pol.MaxRetries; n++ {
		if pol2.Delay(n) != first[n] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two different seeds produced identical schedules: jitter is not seed-derived")
	}
	// Saturated attempts stay within [Max/2, Max].
	if d := pol.Delay(1000); d > pol.MaxDelay || d < pol.MaxDelay/2 {
		t.Fatalf("saturated delay %v outside [%v, %v]", d, pol.MaxDelay/2, pol.MaxDelay)
	}
	// Without a seed the schedule is the plain capped exponential.
	plain := RetryPolicy{MaxRetries: 8, BaseDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond}
	want := []time.Duration{1, 2, 4, 8, 16, 16, 16, 16}
	for n, w := range want {
		if d := plain.Delay(n); d != w*time.Millisecond {
			t.Fatalf("plain attempt %d: %v, want %v", n, d, w*time.Millisecond)
		}
	}
}

// movedClient answers StatusMoved(addr) until the caller "dials" the
// right address, then serves OK — the shape of a fleet promotion.
type movedClient struct {
	addr    string
	primary string
	calls   *int
}

func (m *movedClient) Do(req *wire.Request) (*wire.Response, error) {
	*m.calls++
	if m.addr != m.primary {
		return &wire.Response{ID: req.ID, Status: wire.StatusMoved, Msg: m.primary}, nil
	}
	return &wire.Response{ID: req.ID, Status: wire.StatusOK, Size: 7}, nil
}
func (m *movedClient) Close() error { return nil }

func TestRetryClientFollowsMoved(t *testing.T) {
	calls := 0
	rc := &RetryClient{
		C: &movedClient{addr: "old", primary: "new", calls: &calls},
		Redial: func(addr string) (Client, error) {
			return &movedClient{addr: addr, primary: "new", calls: &calls}, nil
		},
	}
	resp, err := rc.Do(&wire.Request{ID: 9, Op: wire.OpStat, Shard: -1, Path: "/x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || resp.Size != 7 {
		t.Fatalf("redirect not followed: %+v", resp)
	}
	if rc.Stats.Redirects != 1 {
		t.Fatalf("Redirects = %d, want 1", rc.Stats.Redirects)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (one moved, one ok)", calls)
	}
}

func TestRetryClientBoundsRedirectLoop(t *testing.T) {
	calls := 0
	// Every hop answers Moved: a routing loop. Do must fail with a
	// typed error after maxRedirects hops, not spin.
	rc := &RetryClient{
		C: &movedClient{addr: "a", primary: "never", calls: &calls},
		Redial: func(addr string) (Client, error) {
			return &movedClient{addr: "b", primary: "never", calls: &calls}, nil
		},
	}
	if _, err := rc.Do(&wire.Request{ID: 1, Op: wire.OpStat, Shard: -1, Path: "/x"}); err == nil {
		t.Fatal("unbounded redirect loop did not error")
	}
	if calls > maxRedirects+1 {
		t.Fatalf("%d attempts for a %d-hop bound", calls, maxRedirects)
	}
}

// Without a Redial hook, StatusMoved passes through untouched — a
// plain client treats it like any terminal status.
func TestRetryClientMovedPassthrough(t *testing.T) {
	calls := 0
	rc := &RetryClient{C: &movedClient{addr: "old", primary: "new", calls: &calls}}
	resp, err := rc.Do(&wire.Request{ID: 1, Op: wire.OpStat, Shard: -1, Path: "/x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusMoved || resp.Msg != "new" {
		t.Fatalf("got %+v, want moved passthrough", resp)
	}
}

// A shard whose goroutine never opens its gate simulates a wedged
// simulator: Close with a DrainTimeout must fail the queued requests
// with StatusTimeout and return, instead of hanging shutdown forever.
func TestCloseDrainTimeoutFailsQueued(t *testing.T) {
	gate := make(chan struct{})
	srv, err := New(Config{
		Shards: 2, QueueDepth: 8, DrainTimeout: 100 * time.Millisecond,
		testGate: func(shard int) {
			if shard == 0 {
				<-gate // never opened: shard 0 wedges before its first drain
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find paths that route to the wedged shard.
	var paths []string
	for i := 0; len(paths) < 3; i++ {
		p := fmt.Sprintf("/wedge/%d", i)
		if srv.ShardOf(p) == 0 {
			paths = append(paths, p)
		}
	}
	resps := make(chan *wire.Response, len(paths))
	for _, p := range paths {
		go func() {
			resps <- srv.Do(&wire.Request{ID: 1, Op: wire.OpOpen, Shard: -1, Path: p})
		}()
	}
	// Wait until all three tasks are actually queued on the wedged shard
	// so Close's timeout drain is what answers them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.shards[0].mu.Lock()
		n := len(srv.shards[0].ch)
		srv.shards[0].mu.Unlock()
		if n == len(paths) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never queued on the wedged shard")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung despite DrainTimeout")
	}
	for range paths {
		select {
		case r := <-resps:
			if r.Status != wire.StatusTimeout {
				t.Fatalf("queued request got %v (%s), want StatusTimeout", r.Status, r.Msg)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request never answered")
		}
	}
	close(gate) // release the wedged goroutine so the test process exits clean
}

// A connection whose peer goes silent must not pin its serving
// goroutine forever: the idle deadline closes it from the server side.
func TestServeConnIdleTimeout(t *testing.T) {
	srv, err := New(Config{Shards: 1, IdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A healthy request proves the connection works, then we stall.
	cl := &TCPClient{conn: conn, buf: make([]byte, 0, 256)}
	if resp, err := cl.Do(&wire.Request{ID: 1, Op: wire.OpOpen, Shard: -1, Path: "/alive"}); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("healthy request: %v %+v", err, resp)
	}
	// Stall: send nothing. The server must hang up within the idle
	// timeout (plus slack); a blocked read on our side sees EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	start := time.Now()
	_, err = conn.Read(one[:])
	if err == nil {
		t.Fatal("server sent unsolicited bytes to a stalled client")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("server kept a stalled connection open %v (idle timeout 100ms)", waited)
	}
}
