package disk

import (
	"bytes"
	"reflect"
	"testing"
)

// hotPlan has rates high enough that a few hundred ops see every fault
// kind, with no MaxFaults cap.
func hotPlan(seed uint64) *FaultPlan {
	return &FaultPlan{
		Seed:           seed,
		TransientRead:  0.2,
		TransientWrite: 0.2,
		LatentRate:     0.1,
		MisdirectRate:  0.1,
	}
}

func TestNilPlanPerfectDisk(t *testing.T) {
	d := newDisk(64)
	for i := 0; i < 64; i++ {
		if _, err := d.Write(i, sector(byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	buf := make([]byte, SectorSize)
	for i := 0; i < 64; i++ {
		if _, err := d.Read(i, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("sector %d corrupted without a fault plan", i)
		}
	}
	if d.FaultStats.Total() != 0 {
		t.Fatalf("faults injected with nil plan: %+v", d.FaultStats)
	}
}

// TestFaultPlanDeterministic runs the same op sequence on two disks with
// the same plan and requires identical errors, stats, and final contents.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() (*Disk, []string) {
		d := newDisk(128)
		p := hotPlan(77)
		d.SetFaultPlan(p)
		var errs []string
		buf := make([]byte, SectorSize)
		for i := 0; i < 300; i++ {
			s := (i * 13) % 120
			var err error
			if i%2 == 0 {
				_, err = d.Write(s, sector(byte(i)))
			} else {
				_, err = d.Read(s, buf)
			}
			if err != nil {
				errs = append(errs, err.Error())
			}
		}
		return d, errs
	}
	d1, e1 := run()
	d2, e2 := run()
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("error sequences differ:\n%v\n%v", e1, e2)
	}
	if len(e1) == 0 {
		t.Fatal("hot plan injected nothing in 300 ops")
	}
	if d1.FaultStats != d2.FaultStats {
		t.Fatalf("stats differ: %+v vs %+v", d1.FaultStats, d2.FaultStats)
	}
	if !bytes.Equal(d1.Snapshot(), d2.Snapshot()) {
		t.Fatal("disk contents differ after identical faulty runs")
	}
}

func TestLatentSectorPersistsUntilRewrite(t *testing.T) {
	d := newDisk(64)
	d.SetFaultPlan(&FaultPlan{Seed: 1, LatentRate: 1}) // every read plants one
	buf := make([]byte, SectorSize)
	if _, err := d.Read(5, buf); !IsLatent(err) {
		t.Fatalf("expected latent error, got %v", err)
	}
	// Retrying the read is futile: latent persists, even after the plan
	// is removed (the medium does not heal).
	d.SetFaultPlan(nil)
	if _, err := d.Read(5, buf); !IsLatent(err) {
		t.Fatalf("latent sector healed without rewrite: %v", err)
	}
	if d.LatentSectors() != 1 {
		t.Fatalf("LatentSectors = %d", d.LatentSectors())
	}
	// A rewrite remaps the sector and the read succeeds.
	if _, err := d.Write(5, sector(0x42)); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if _, err := d.Read(5, buf); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
	if buf[0] != 0x42 {
		t.Fatal("rewritten data not readable")
	}
	if d.LatentSectors() != 0 || d.FaultStats.Cleared != 1 {
		t.Fatalf("latent not cleared: %d sectors, stats %+v", d.LatentSectors(), d.FaultStats)
	}
}

func TestTransientErrorClearsOnRetry(t *testing.T) {
	d := newDisk(64)
	// Transient-only plan at 50%: within a few retries one succeeds, and
	// the successes/failures are deterministic per op index.
	d.SetFaultPlan(&FaultPlan{Seed: 3, TransientWrite: 0.5})
	wrote := false
	for i := 0; i < 20; i++ {
		_, err := d.Write(9, sector(0x9a))
		if err == nil {
			wrote = true
			break
		}
		if !IsTransient(err) {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	if !wrote {
		t.Fatal("20 retries all failed at 50% transient rate (seed-dependent; pick another seed)")
	}
	buf := make([]byte, SectorSize)
	d.SetFaultPlan(nil)
	if _, err := d.Read(9, buf); err != nil || buf[0] != 0x9a {
		t.Fatalf("retried write not durable: err=%v buf[0]=%#x", err, buf[0])
	}
}

func TestMisdirectedWriteCorruptsSilently(t *testing.T) {
	d := newDisk(64)
	for i := 0; i < 64; i++ {
		d.Write(i, sector(0xee))
	}
	d.SetFaultPlan(&FaultPlan{Seed: 11, MisdirectRate: 1})
	if _, err := d.Write(10, sector(0x77)); err != nil {
		t.Fatalf("misdirected write reported failure: %v", err)
	}
	if d.FaultStats.Misdirects != 1 {
		t.Fatalf("misdirects = %d", d.FaultStats.Misdirects)
	}
	d.SetFaultPlan(nil)
	buf := make([]byte, SectorSize)
	d.Read(10, buf)
	if buf[0] == 0x77 {
		t.Fatal("target sector received the data despite misdirect")
	}
	// The payload landed somewhere else on the disk.
	found := false
	for i := 0; i < 64; i++ {
		d.Read(i, buf)
		if buf[0] == 0x77 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("misdirected payload vanished entirely")
	}
}

func TestMaxFaultsBound(t *testing.T) {
	d := newDisk(64)
	d.SetFaultPlan(&FaultPlan{Seed: 5, TransientWrite: 1, MaxFaults: 3})
	fails := 0
	for i := 0; i < 50; i++ {
		if _, err := d.Write(i%60, sector(1)); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("MaxFaults=3 but %d faults injected", fails)
	}
}

func TestCommitFaultsAndServiceRetry(t *testing.T) {
	d := newDisk(64)
	d.SetFaultPlan(&FaultPlan{Seed: 21, TransientWrite: 0.5})
	// Commit can fail transiently and report it.
	sawErr := false
	for i := 0; i < 30; i++ {
		if err := d.Commit(4, sector(byte(i))); err != nil {
			if !IsTransient(err) {
				t.Fatalf("commit error kind: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no commit faults at 50% rate in 30 ops")
	}

	// Service leaves a failed request at the queue head so a retry can
	// finish the drain.
	done := 0
	d.Enqueue(Request{Sector: 1, Data: sector(0xa1), Done: func() { done++ }})
	d.Enqueue(Request{Sector: 2, Data: sector(0xa2), Done: func() { done++ }})
	d.Enqueue(Request{Sector: 3, Data: sector(0xa3), Done: func() { done++ }})
	for tries := 0; d.QueueLen() > 0; tries++ {
		if tries > 100 {
			t.Fatal("queue never drained")
		}
		if _, err := d.Service(-1); err != nil && !IsTransient(err) {
			t.Fatalf("service error kind: %v", err)
		}
	}
	if done != 3 {
		t.Fatalf("done callbacks = %d", done)
	}
	d.SetFaultPlan(nil)
	buf := make([]byte, SectorSize)
	for i, want := range []byte{0xa1, 0xa2, 0xa3} {
		d.Read(i+1, buf)
		if buf[0] != want {
			t.Fatalf("sector %d = %#x, want %#x", i+1, buf[0], want)
		}
	}
}
