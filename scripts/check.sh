#!/bin/sh
# Tier-1 gate: build, vet, full test suite, and the race detector over the
# concurrent campaign scheduler. Run via `make check` or directly.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# riolint enforces the invariants vet can't see: deterministic iteration,
# no host clock/randomness in sim packages, paired protection windows,
# sim.Mix-only seed derivation, pooled-buffer aliasing windows, the
# fleet's exec→persist→replicate→ack ordering, and bounds-checked wire
# decodes. A finding fails the gate; fix it or suppress with a reasoned
# //riolint: comment (see DESIGN.md). The -json report (findings plus
# per-analyzer wall time) lands in riolint.json, uploaded as a CI
# artifact; on failure the findings are echoed to the log.
go run ./cmd/riolint -json ./... > riolint.json || { cat riolint.json; exit 1; }
go test ./...
# The campaign scheduler fans runs across goroutines; guard it with the
# race detector (this re-runs the real mini-campaigns under -race, so it
# is the slowest step — add -short here if a quick pre-commit loop is
# needed; the scheduler concurrency tests still run in short mode).
go test -race -timeout 60m ./internal/crashtest/...
# The recovery path (warm reboot restart protocol, disk fault plans,
# retrying I/O) is what the double-fault campaign leans on; race-check it
# too — these packages are fast even under the detector.
go test -race -timeout 10m ./internal/warmreboot/... ./internal/disk/... ./internal/ioretry/...
# The serving layer is the one place real goroutines share state (shard
# queues, metrics, close/drain); the wire codec fuzz seeds ride along.
# The transaction layer (commit records, publish/apply/erase, the
# TxnTest torn-state oracle) joins the race gate: its campaign fans out
# across workers and its server integration rides the shard goroutines.
go test -race -timeout 10m ./internal/server/... ./internal/wire/... ./internal/txn/... ./internal/workload/...
# The fleet layer replicates shards across nodes: replica locks, the
# in-process transport, and the coordinator's tick all run under real
# concurrency in the campaign, so it joins the race gate.
go test -race -timeout 10m ./internal/fleet/...
# Transactional crash campaign smoke: a small fixed-seed torn-commit
# hunt with storage faults and double crashes; riocrash -txn exits
# nonzero on any torn transaction or aborted recovery. (The commitorder
# analyzer fixtures run in the riolint step and go test above.)
go run ./cmd/riocrash -txn -runs 2 -seed 1996 -disk-faults -quiet
# Fleet campaign smoke: five seed-derived plans (the kind cycle makes
# that exactly one of each fault kind, including the pairwise partition
# that probes for stale reads from a deposed primary); riocrash -fleet
# exits nonzero if any acked write is lost or any stale read is served.
go run ./cmd/riocrash -fleet -runs 5 -seed 1996 -quiet
# Scenario suite smoke: every checked-in scenario runs at -workers 1
# and -workers 4 and the canonical JSON reports must diff clean — the
# scenario engine's byte-identical-at-any-worker-count guarantee,
# enforced on real specs. rioscn exits nonzero if any scenario loses an
# acked write, tears a commit, or serves a stale read. The -workers 4
# reports land in scenario-reports/, uploaded as a CI artifact.
make scenarios
# Server smoke benchmark: rioload against riod's in-process transport,
# with a 1-shard baseline — fails if the run errors; the report lands in
# BENCH_server.json (uploaded as a CI artifact).
make serve-bench
# Core-op microbenchmarks: riobench against one simulated machine,
# compared to the previous BENCH_core.json snapshot when one exists —
# fails if the run errors; the report is uploaded as a CI artifact.
make bench-core
