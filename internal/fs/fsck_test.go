package fs_test

import (
	"testing"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/sim"
)

// buildVolume creates a populated, unmounted volume and returns its
// machine (disk holds the tree; memory irrelevant).
func buildVolume(t *testing.T, seed uint64) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyUFS))
	opt.FastPath = true
	opt.Seed = seed
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(seed)
	m.FS.Mkdir("/a")
	m.FS.Mkdir("/a/b")
	m.FS.Mkdir("/c")
	for i := 0; i < 25; i++ {
		dir := []string{"", "/a", "/a/b", "/c"}[rng.Intn(4)]
		f, err := m.FS.Create(dir + "/f" + itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		f.Write(kernel.FillBytes(rng.Range(100, 3*fs.BlockSize), rng.Uint64()|1))
		f.Close()
	}
	m.FS.Symlink("/a/f1", "/c/ln")
	m.FS.Unmount()
	return m
}

// corruptDisk applies n random single-byte corruptions to the volume's
// metadata region (inode table, bitmap, low data blocks where directories
// live), sparing the superblock so the volume stays recognisable.
func corruptDisk(m *machine.Machine, rng *sim.Rand, n int) {
	sb, err := fs.ReadSuperblock(m.Disk)
	if err != nil {
		return
	}
	lo := int(sb.InodeStart) * fs.SectorsPerBlock * 512
	hi := int(sb.DataStart+40) * fs.SectorsPerBlock * 512
	snap := m.Disk.Snapshot()
	for i := 0; i < n; i++ {
		pos := lo + rng.Intn(hi-lo)
		snap[pos] ^= byte(1 << rng.Intn(8))
	}
	m.Disk.Restore(snap)
}

// TestFsckTotalUnderCorruption: for many random corruption patterns, fsck
// must terminate without error, a second fsck must find nothing further
// (idempotence), and the repaired volume must mount and support new work.
func TestFsckTotalUnderCorruption(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		m := buildVolume(t, seed)
		rng := sim.NewRand(seed * 977)
		corruptDisk(m, rng, rng.Range(1, 40))

		if _, err := fs.Fsck(m.Disk); err != nil {
			// A corrupted superblock is the only legal hard failure, and
			// we spared block 0.
			t.Fatalf("seed %d: fsck failed: %v", seed, err)
		}
		rep2, err := fs.Fsck(m.Disk)
		if err != nil {
			t.Fatalf("seed %d: second fsck failed: %v", seed, err)
		}
		if !rep2.Clean() {
			t.Fatalf("seed %d: fsck not idempotent: %v", seed, rep2)
		}

		// The repaired volume must mount and accept new files.
		m.Mem.Scramble(seed)
		if err := m.Boot(nil); err != nil {
			t.Fatalf("seed %d: mount after fsck: %v", seed, err)
		}
		f, err := m.FS.Create("/post-fsck")
		if err != nil {
			t.Fatalf("seed %d: create after fsck: %v", seed, err)
		}
		if _, err := f.Write([]byte("still works")); err != nil {
			t.Fatalf("seed %d: write after fsck: %v", seed, err)
		}
		f.Close()
		if string(readFile(t, m, "/post-fsck")) != "still works" {
			t.Fatalf("seed %d: readback after fsck", seed)
		}
	}
}

// TestFsckSurvivorsReadable: files whose metadata survives corruption are
// still readable after repair; files fsck removed are cleanly absent (no
// torn directory entries).
func TestFsckSurvivorsConsistent(t *testing.T) {
	m := buildVolume(t, 42)
	rng := sim.NewRand(4242)
	corruptDisk(m, rng, 12)
	if _, err := fs.Fsck(m.Disk); err != nil {
		t.Fatal(err)
	}
	m.Mem.Scramble(7)
	if err := m.Boot(nil); err != nil {
		t.Fatal(err)
	}
	// Walk the tree: every visible file must read fully without error.
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := m.FS.ReadDir(dir)
		if err != nil {
			t.Fatalf("readdir %s: %v", dir, err)
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			switch {
			case e.IsDir:
				walk(p)
			case e.IsSymlink:
				if _, err := m.FS.Readlink(p); err != nil {
					t.Fatalf("readlink %s: %v", p, err)
				}
			default:
				if e.Size > 1<<24 {
					t.Fatalf("%s: implausible size %d survived fsck", p, e.Size)
				}
				f, err := m.FS.Open(p)
				if err != nil {
					t.Fatalf("open %s: %v", p, err)
				}
				buf := make([]byte, e.Size)
				if _, err := f.ReadAt(buf, 0); err != nil {
					t.Fatalf("read %s: %v", p, err)
				}
				f.Close()
			}
		}
	}
	walk("/")
}

// TestFsckDuplicateBlockReference: two inodes claiming one block is
// resolved by clearing the later reference.
func TestFsckDuplicateBlockReference(t *testing.T) {
	m := buildVolume(t, 9)
	sb, _ := fs.ReadSuperblock(m.Disk)

	// Find two file inodes and alias the second's first block to the
	// first's.
	blk := make([]byte, fs.BlockSize)
	m.Disk.Read(int(sb.InodeStart)*fs.SectorsPerBlock, blk)
	type slot struct{ idx, direct int }
	var files []slot
	for i := 2; i < fs.InodesPerBlock; i++ {
		nBytes := blk[i*fs.InodeSize : (i+1)*fs.InodeSize]
		mode := uint32(nBytes[0]) | uint32(nBytes[1])<<8
		if mode == fs.ModeFile {
			var d0 uint32
			for b := 0; b < 4; b++ {
				d0 |= uint32(nBytes[16+b]) << (8 * b)
			}
			if d0 != 0 {
				files = append(files, slot{i, int(d0)})
			}
		}
	}
	if len(files) < 2 {
		t.Skip("not enough files in first inode block")
	}
	// Alias: file[1].direct[0] = file[0].direct[0].
	dst := files[1].idx*fs.InodeSize + 16
	v := uint32(files[0].direct)
	for b := 0; b < 4; b++ {
		blk[dst+b] = byte(v >> (8 * b))
	}
	m.Disk.Commit(int(sb.InodeStart)*fs.SectorsPerBlock, blk)

	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadPointers == 0 {
		t.Fatalf("duplicate block not detected: %v", rep)
	}
	rep2, _ := fs.Fsck(m.Disk)
	if !rep2.Clean() {
		t.Fatalf("not idempotent: %v", rep2)
	}
}

// TestFsckReportString formats.
func TestFsckReportString(t *testing.T) {
	r := fs.FsckReport{BadDirents: 1, OrphanInodes: 2, BadPointers: 3, BitmapFixes: 4}
	if r.Clean() {
		t.Fatal("dirty report claims clean")
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}
