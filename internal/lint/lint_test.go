package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loader is shared by every test in the package: the source importer
// type-checks stdlib dependencies from GOROOT sources, which is slow on
// first touch and cached per Loader.
var loader = NewLoader()

// wantRe matches a fixture expectation: `// want <analyzer> "<substr>"`
// trailing the line a diagnostic must land on.
var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

type wantDiag struct {
	file     string
	line     int
	analyzer string
	substr   string
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func wantsOf(pkg *Package) []wantDiag {
	var wants []wantDiag
	for file, lines := range pkg.Sources {
		for i, src := range lines {
			for _, m := range wantRe.FindAllStringSubmatch(src, -1) {
				wants = append(wants, wantDiag{file: file, line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package and asserts an
// exact bidirectional match between diagnostics and want comments: every
// want is hit, and every diagnostic was wanted.
func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags := Run(loader.Fset, []*Package{pkg}, []*Analyzer{a})
	wants := wantsOf(pkg)
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", name, d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: missing %s diagnostic containing %q",
				name, filepath.Base(w.file), w.line, w.analyzer, w.substr)
		}
	}
}

func TestMaporderFixtures(t *testing.T) {
	checkFixture(t, Maporder, "maporder_bad")
	checkFixture(t, Maporder, "maporder_clean")
}

func TestWalltimeFixtures(t *testing.T) {
	checkFixture(t, Walltime, "walltime_bad")
	checkFixture(t, Walltime, "walltime_clean")
}

func TestProtpairFixtures(t *testing.T) {
	checkFixture(t, Protpair, "protpair_bad")
	checkFixture(t, Protpair, "protpair_clean")
}

func TestSeedflowFixtures(t *testing.T) {
	checkFixture(t, Seedflow, "seedflow_bad")
	checkFixture(t, Seedflow, "seedflow_clean")
}

func TestCommitorderFixtures(t *testing.T) {
	checkFixture(t, Commitorder, "commitorder_bad")
	checkFixture(t, Commitorder, "commitorder_clean")
}

func TestBufaliasFixtures(t *testing.T) {
	checkFixture(t, Bufalias, "bufalias_bad")
	checkFixture(t, Bufalias, "bufalias_clean")
}

func TestReplorderFixtures(t *testing.T) {
	checkFixture(t, Replorder, "replorder_bad")
	checkFixture(t, Replorder, "replorder_clean")
}

func TestWireboundsFixtures(t *testing.T) {
	checkFixture(t, Wirebounds, "wirebounds_bad")
	checkFixture(t, Wirebounds, "wirebounds_clean")
}

// TestTreeClean is the gate the CLI enforces in scripts/check.sh: the
// full suite reports nothing on the real tree. Any true positive must be
// fixed (or annotated with a reasoned //riolint: comment) in the same
// change that introduces it.
func TestTreeClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(loader.Fset, pkgs, All())
	for _, d := range diags {
		t.Errorf("riolint finding on the tree: %s", d)
	}
}

// TestNoStaleSuppressions sweeps the tree's //riolint: comments: every
// directive must name a known analyzer, carry a reason, and still
// suppress a live finding (the engine reports violations under the
// "riolint" pseudo-analyzer). It also pins that the tree has at least
// one suppression, so the sweep cannot vacuously pass.
func TestNoStaleSuppressions(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	total := 0
	for _, pkg := range pkgs {
		total += len(parseSuppressions(loader.Fset, pkg).all)
	}
	if total == 0 {
		t.Fatalf("no //riolint: suppressions found in the tree; the stale-suppression sweep is vacuous")
	}
	for _, d := range Run(loader.Fset, pkgs, All()) {
		if d.Analyzer == "riolint" {
			t.Errorf("suppression hygiene: %s", d)
		}
	}
}
