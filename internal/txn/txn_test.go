package txn

import (
	"bytes"
	"reflect"
	"testing"

	"rio/internal/fs"
	"rio/internal/machine"
)

func rioMachine(t *testing.T) *machine.Machine {
	t.Helper()
	pol := fs.DefaultPolicy(fs.PolicyRio)
	pol.Protect = true
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sampleRecords() []Record {
	return []Record{
		{ID: 1, Ops: []Op{
			{Kind: OpMkdir, Path: "/t"},
			{Kind: OpWrite, Path: "/t/a", Off: 0, Data: []byte("alpha-content")},
		}},
		{ID: 2, Ops: []Op{
			{Kind: OpWrite, Path: "/t/b", Off: 4096, Data: bytes.Repeat([]byte{0x5a}, 1000)},
			{Kind: OpRename, Path: "/t/a", Path2: "/t/a2"},
		}},
		{ID: 3, Ops: []Op{
			{Kind: OpRemove, Path: "/t/b"},
		}},
	}
}

func encodeAll(recs []Record) []byte {
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecords()
	got := ParseAll(encodeAll(want))
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		// nil vs empty Data both encode to length 0.
		for j := range want[i].Ops {
			if want[i].Ops[j].Data == nil {
				want[i].Ops[j].Data = got[i].Ops[j].Data
			}
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// A log truncated at any byte offset must parse to an exact prefix of
// the original records — a torn trailing frame is discarded, never
// mis-parsed into a record no one sealed.
func TestParseTornTailAtEveryOffset(t *testing.T) {
	want := sampleRecords()
	full := encodeAll(want)
	// Frame boundaries, for deciding how many complete records a
	// truncation retains.
	bounds := make([]int, 0, len(want)+1)
	n := 0
	bounds = append(bounds, 0)
	for i := range want {
		n = len(AppendRecord(make([]byte, 0, n), &want[i])) + bounds[i]
		bounds = append(bounds, n)
	}
	for cut := 0; cut <= len(full); cut++ {
		got := ParseAll(full[:cut])
		complete := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				complete++
			}
		}
		if len(got) != complete {
			t.Fatalf("cut at %d: parsed %d records, want %d complete frames",
				cut, len(got), complete)
		}
		for i := range got {
			if got[i].ID != want[i].ID || len(got[i].Ops) != len(want[i].Ops) {
				t.Fatalf("cut at %d: record %d mangled: %+v", cut, i, got[i])
			}
		}
	}
}

// A single flipped bit anywhere in a frame must fail that frame's
// checksum: the parse never surfaces altered content as a valid record.
func TestParseDetectsCorruption(t *testing.T) {
	want := sampleRecords()
	full := encodeAll(want)
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x01
		for i, rec := range ParseAll(mut) {
			// Any record the parse does return must be byte-identical to
			// an original: the flip either killed its frame or landed in
			// a later one.
			if i >= len(want) || !reflect.DeepEqual(rec.Ops, ParseAll(full)[i].Ops) || rec.ID != want[i].ID {
				t.Fatalf("flip at %d: surfaced altered record %d: %+v", off, i, rec)
			}
		}
	}
}

func readBack(t *testing.T, fsys *fs.FS, path string) []byte {
	t.Helper()
	st, err := fsys.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return buf
}

// checkFinal asserts the state sampleRecords converges to: /t/a renamed
// to /t/a2 with its content, /t/b removed.
func checkFinal(t *testing.T, fsys *fs.FS) {
	t.Helper()
	if got := readBack(t, fsys, "/t/a2"); !bytes.Equal(got, []byte("alpha-content")) {
		t.Fatalf("/t/a2 content %q", got)
	}
	if _, err := fsys.Stat("/t/a"); err != fs.ErrNotFound {
		t.Fatalf("/t/a should be renamed away: %v", err)
	}
	if _, err := fsys.Stat("/t/b"); err != fs.ErrNotFound {
		t.Fatalf("/t/b should be removed: %v", err)
	}
}

func TestApplyIdempotent(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	recs := sampleRecords()
	for round := 0; round < 3; round++ {
		for i := range recs {
			if err := l.Apply(&recs[i]); err != nil {
				t.Fatalf("round %d record %d: %v", round, i, err)
			}
		}
		checkFinal(t, m.FS)
	}
	// Partial re-application converges too: replay just the first
	// record, then the rest.
	if err := l.Apply(&recs[0]); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := l.Apply(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	checkFinal(t, m.FS)
}

func TestPublishRecoverErase(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	if err := l.Publish(sampleRecords()); err != nil {
		t.Fatal(err)
	}
	st, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || st.Applied != 3 {
		t.Fatalf("stats %+v", st)
	}
	checkFinal(t, m.FS)
	if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
		t.Fatalf("log not erased: %v", err)
	}
	// Recovery after erase is a no-op.
	st, err = l.Recover()
	if err != nil || st.Records != 0 {
		t.Fatalf("second recover: %+v, %v", st, err)
	}
}

// A log torn at any byte offset (crash mid-publish) must recover to a
// consistent prefix of the group, and recovery must never error.
func TestRecoverTornLogAtEveryOffset(t *testing.T) {
	recs := sampleRecords()
	full := encodeAll(recs)
	for cut := 0; cut <= len(full); cut++ {
		m := rioMachine(t)
		l := NewLog(m.FS)
		if err := m.FS.Mkdir(Dir); err != nil {
			t.Fatal(err)
		}
		f, err := m.FS.Create(LogPath)
		if err != nil {
			t.Fatal(err)
		}
		if cut > 0 {
			if _, err := f.WriteAt(full[:cut], 0); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		st, err := l.Recover()
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if st.Applied != st.Records {
			t.Fatalf("cut at %d: applied %d of %d", cut, st.Applied, st.Records)
		}
		if cut == len(full) {
			checkFinal(t, m.FS)
		}
		if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
			t.Fatalf("cut at %d: log not erased", cut)
		}
	}
}

// Recovery interrupted before every step and then restarted from
// scratch must converge to the same final state — the crash-at-every-
// step idempotency test, mirroring warmreboot's restart protocol.
func TestRecoverCrashAtEveryStep(t *testing.T) {
	for step := 1; step <= 8; step++ {
		m := rioMachine(t)
		l := NewLog(m.FS)
		if err := l.Publish(sampleRecords()); err != nil {
			t.Fatal(err)
		}
		_, err := l.RecoverOpts(Options{CrashAtStep: step})
		if err != nil && err != ErrInterrupted {
			t.Fatalf("step %d: %v", step, err)
		}
		interrupted := err == ErrInterrupted
		// Restart: the full recovery must complete and converge.
		if _, err := l.Recover(); err != nil {
			t.Fatalf("step %d: restarted recovery: %v", step, err)
		}
		checkFinal(t, m.FS)
		if _, err := m.FS.Stat(LogPath); err != fs.ErrNotFound {
			t.Fatalf("step %d: log not erased", step)
		}
		if step > 8 && interrupted {
			t.Fatalf("step %d still interrupts; widen the loop", step)
		}
	}
}

// If a crash costs the log file its metadata, warm reboot salvages the
// orphaned pages into /lost+found; recovery must find the frames there,
// roll them forward, and consume the salvage file.
func TestRecoverFromSalvage(t *testing.T) {
	m := rioMachine(t)
	l := NewLog(m.FS)
	if err := m.FS.Mkdir("/lost+found"); err != nil {
		t.Fatal(err)
	}
	f, err := m.FS.Create("/lost+found/ino-42")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(encodeAll(sampleRecords()), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A non-log salvage file must be left alone.
	g, err := m.FS.Create("/lost+found/ino-7")
	if err != nil {
		t.Fatal(err)
	}
	g.WriteAt([]byte("ordinary orphaned user data"), 0)
	g.Close()

	st, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.SalvageLogs != 1 || st.Applied != 3 {
		t.Fatalf("stats %+v", st)
	}
	checkFinal(t, m.FS)
	if _, err := m.FS.Stat("/lost+found/ino-42"); err != fs.ErrNotFound {
		t.Fatal("consumed salvage log not removed")
	}
	if got := readBack(t, m.FS, "/lost+found/ino-7"); string(got) != "ordinary orphaned user data" {
		t.Fatal("non-log salvage file disturbed")
	}
}

// Oversize declared lengths must be rejected before allocation.
func TestParseRejectsOversize(t *testing.T) {
	rec := Record{ID: 9, Ops: []Op{{Kind: OpWrite, Path: "/x", Data: []byte("d")}}}
	buf := AppendRecord(nil, &rec)
	// nops sits after magic(8)+cksum(8)+id(8) = offset 24.
	mut := append([]byte(nil), buf...)
	mut[24], mut[25], mut[26], mut[27] = 0xff, 0xff, 0xff, 0xff
	if got := ParseAll(mut); len(got) != 0 {
		t.Fatalf("oversize nops parsed: %+v", got)
	}
}
