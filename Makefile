# Tier-1 gate: `make check` runs the same commands CI should — build,
# vet, tests, and the race detector over the concurrent campaign
# scheduler (scripts/check.sh is the single source of truth).

.PHONY: check build lint test race bench crash-recovery serve-bench

check:
	sh scripts/check.sh

build:
	go build ./...

# riolint: the repo's own static-analysis suite (internal/lint) — enforces
# the determinism and protection-discipline invariants the compiler can't
# see. Clean tree is a tier-1 gate; see DESIGN.md "Enforced invariants".
lint:
	go run ./cmd/riolint ./...

test:
	go test ./...

race:
	go test -race ./internal/crashtest/... ./internal/warmreboot/... ./internal/disk/...

bench:
	go test -run '^$$' -bench . -benchtime 1x .

# Double-fault campaign smoke test: a small fixed-seed campaign with
# storage faults and second crashes enabled, diffed against the golden
# report in testdata (the campaign: summary line carries wall time and
# is filtered). Regenerate the golden with `make crash-recovery-golden`
# after an intentional behaviour change.
crash-recovery:
	go run ./cmd/riocrash -runs 2 -seed 1996 -workers 4 -disk-faults -quiet 2>/dev/null \
		| grep -v '^campaign:' | diff -u testdata/crash-recovery.golden -
	@echo "crash-recovery: output matches golden"

# Server smoke benchmark: riod's shard fabric under rioload via the
# in-process transport — 8 closed-loop clients for 10s against 4 shards,
# plus a 1-shard baseline at the same client count (the acceptance bar:
# 4 shards must beat 1). Writes BENCH_server.json (throughput, p50/p95/p99).
serve-bench:
	go run ./cmd/rioload -net memory -shards 4 -clients 8 -duration 10s \
		-compare 1 -out BENCH_server.json

crash-recovery-golden:
	mkdir -p testdata
	go run ./cmd/riocrash -runs 2 -seed 1996 -workers 4 -disk-faults -quiet 2>/dev/null \
		| grep -v '^campaign:' > testdata/crash-recovery.golden
