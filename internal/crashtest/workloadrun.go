package crashtest

import (
	"fmt"

	"rio/internal/disk"
	"rio/internal/fault"
	"rio/internal/kernel"
	"rio/internal/sim"
	"rio/internal/txn"
	"rio/internal/warmreboot"
	"rio/internal/workload"
)

// WorkloadFactory builds a fresh workload instance for one crash run.
// The seed is the run's workload stream (derived from the run seed
// exactly as RunOne derives memTest's); writeThrough is true on the
// disk-based write-through column, where the workload must fsync its
// completed writes to be entitled to durability convictions.
type WorkloadFactory func(seed uint64, writeThrough bool) workload.Workload

// WorkloadResult is the outcome of one generic-workload crash run: the
// RunOne observability fields plus the workload's typed verdict.
type WorkloadResult struct {
	System System
	Fault  fault.Type
	Seed   uint64

	Crashed     bool
	CrashKind   kernel.CrashKind
	CrashReason string
	OpsToCrash  int

	// Verdict is the workload's own classification of the recovered
	// tree. Torn/Lost convictions are downgraded to detected corruption
	// when recovery did not certify the storage clean (the same rule the
	// transactional campaign applies): damage the system itself flagged
	// is a detected storage failure, not a silent consistency breach.
	Verdict   workload.Verdict
	Corrupted bool
	// TornMasked / LostMasked count convictions downgraded by that
	// rule, so the report still shows the raw signal.
	TornMasked int
	LostMasked int

	StaticCorrupted     bool
	ChecksumDetected    bool
	ProtectionInvoked   bool
	RecoveryInterrupted bool
	RecoveryAborted     bool
	Quarantined         int
	Salvaged            int
	VolumeLost          bool
}

// RunWorkloadOne is RunOne generalised over the workload library: boot
// the chosen system, warm the workload up, inject the fault, run to
// the crash, recover (cold+fsck or warm reboot, with the double-fault
// disk plan when configured), and let the workload classify what
// survived. The seed discipline is identical to RunOne — one root
// stream forked in the same order — so a scenario cell is replayable
// from (sys, fault, seed) alone.
func RunWorkloadOne(sys System, ft fault.Type, cfg RunConfig, mk WorkloadFactory) (res WorkloadResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("crashtest: simulator panic (sys=%v fault=%v seed=%d): %v",
				sys, ft, cfg.Seed, r)
		}
	}()
	res = WorkloadResult{System: sys, Fault: ft, Seed: cfg.Seed}
	root := sim.NewRand(cfg.Seed)
	faultRng := root.Fork()
	wlSeed := root.Uint64()

	m, err := buildMachine(sys, cfg)
	if err != nil {
		return res, err
	}
	if err := setupStatic(m); err != nil {
		return res, fmt.Errorf("crashtest: static setup: %w", err)
	}

	w := mk(wlSeed, sys == DiskWT)
	if err := w.Setup(m.FS); err != nil {
		return res, fmt.Errorf("crashtest: workload setup: %w", err)
	}

	for i := 0; i < cfg.WarmupOps; i++ {
		if err := w.Step(m.FS); err != nil {
			return res, fmt.Errorf("crashtest: warmup step %d: %w", i, err)
		}
	}

	if err := fault.Inject(m, ft, cfg.FaultCount, faultRng); err != nil {
		return res, err
	}

	for i := 0; i < cfg.MaxOps; i++ {
		err := w.Step(m.FS)
		if c := m.Crashed(); c != nil {
			res.Crashed = true
			res.CrashKind = c.Kind
			res.CrashReason = c.Reason
			res.OpsToCrash = i + 1
			res.ProtectionInvoked = c.Kind == kernel.CrashProtection
			break
		}
		if err != nil {
			// Error without a kernel crash: the op failed but the system
			// limps on; the workload state machine treats it as un-acked.
			continue
		}
	}
	if !res.Crashed {
		return res, nil // discarded by the campaign
	}

	m.CrashFinish()

	if cfg.DiskFaults {
		plan := disk.DefaultFaultPlan(sim.Mix(cfg.Seed, diskFaultSalt))
		m.Disk.SetFaultPlan(&plan)
	}

	switch sys {
	case DiskWT:
		if _, err := warmreboot.Cold(m, sim.Mix(cfg.Seed, coldBootSalt)); err != nil {
			m.Disk.SetFaultPlan(nil)
			res.Corrupted = true
			res.Verdict.Corruptions = append(res.Verdict.Corruptions,
				workload.Corruption{Path: "/", Detail: "volume unrecoverable: " + err.Error()})
			return res, nil
		}
	default:
		dump := m.Mem.Dump()
		opts := warmreboot.DefaultOptions()
		if cfg.DiskFaults {
			opts.CrashAtStep = int(sim.Mix(cfg.Seed, recoveryCrashSalt) % recoveryCrashWindow)
		}
		rep, err := warmreboot.FromDumpOpts(m, dump, opts)
		if err == warmreboot.ErrInterrupted {
			res.RecoveryInterrupted = true
			rep, err = warmreboot.FromDump(m, dump)
		}
		if err != nil {
			m.Disk.SetFaultPlan(nil)
			res.RecoveryAborted = true
			res.Corrupted = true
			res.Verdict.Corruptions = append(res.Verdict.Corruptions,
				workload.Corruption{Path: "/", Detail: "warm reboot failed: " + err.Error()})
			return res, nil
		}
		res.ChecksumDetected = rep.ChecksumMismatches > 0
		res.Quarantined = rep.MetaFailed + rep.DataFailed
		res.Salvaged = rep.Salvaged
		if rep.VolumeLost {
			m.Disk.SetFaultPlan(nil)
			res.VolumeLost = true
			res.Corrupted = true
			res.Verdict.Corruptions = append(res.Verdict.Corruptions,
				workload.Corruption{Path: "/", Detail: "volume lost: " + rep.Fsck.String()})
			return res, nil
		}
	}
	m.Disk.SetFaultPlan(nil)

	res.Verdict = w.Check(m.FS)
	res.StaticCorrupted = checkStatic(m)

	// The recovery-clean rule: only a run whose recovery certified the
	// storage intact can convict the stack of a silent Torn/Lost breach.
	recoveryClean := !res.ChecksumDetected && res.Quarantined == 0 && res.Salvaged == 0
	for _, c := range res.Verdict.Corruptions {
		if c.Path == txn.Dir { // the TxnTest adapter reports quarantined records here
			recoveryClean = false
		}
	}
	if !recoveryClean {
		res.TornMasked, res.LostMasked = res.Verdict.Torn, res.Verdict.Lost
		res.Verdict.Torn, res.Verdict.Lost = 0, 0
		if res.TornMasked > 0 || res.LostMasked > 0 {
			res.Verdict.Corruptions = append(res.Verdict.Corruptions, workload.Corruption{
				Path: "/", Detail: fmt.Sprintf(
					"recovery reported damage: %d torn / %d lost downgraded to detected corruption",
					res.TornMasked, res.LostMasked)})
		}
	}
	res.Corrupted = len(res.Verdict.Corruptions) > 0 || res.StaticCorrupted
	return res, nil
}
