package server

import (
	"fmt"
	"net"
	"sync"
	"time"

	"rio/internal/sim"
	"rio/internal/wire"
)

// Client is the transport-independent face of a riod server: tests and
// the load generator speak to an in-process server and a TCP server
// through the same interface.
type Client interface {
	// Do submits one request and blocks for its response. A non-nil
	// error means the transport failed; server-side failures come back
	// as typed statuses in the response.
	Do(req *wire.Request) (*wire.Response, error)
	Close() error
}

// MemClient is the in-process transport: calls land directly on the
// server with no sockets or frames in between. Deterministic given a
// deterministic caller, which is what the golden-transcript tests use.
type MemClient struct{ S *Server }

// Do implements Client.
func (c MemClient) Do(req *wire.Request) (*wire.Response, error) { return c.S.Do(req), nil }

// Close implements Client (the server's lifecycle is the caller's).
func (c MemClient) Close() error { return nil }

// TCPClient is a synchronous wire-protocol client over one TCP
// connection. Not safe for concurrent use; closed-loop load clients
// hold one each.
type TCPClient struct {
	conn net.Conn
	buf  []byte
}

// DialTCP connects to a riod server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{conn: conn, buf: make([]byte, 0, 4096)}, nil
}

// Do implements Client.
func (c *TCPClient) Do(req *wire.Request) (*wire.Response, error) {
	if err := wire.WriteFrame(c.conn, wire.AppendRequest(c.buf[:0], req)); err != nil {
		return nil, err
	}
	payload, err := wire.ReadFrame(c.conn, wire.MaxFrame)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResponse(payload)
}

// Close implements Client.
func (c *TCPClient) Close() error { return c.conn.Close() }

// MuxClient is a pipelined wire-protocol client: many goroutines share
// one TCP connection, each with its own request in flight. Do rewrites
// the request ID to a connection-unique tag before sending and matches
// the response by that tag (the server echoes IDs verbatim but answers
// in completion order), then restores the caller's ID on both request
// and response — callers never see the tags. Safe for concurrent use.
type MuxClient struct {
	conn net.Conn

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte

	mu      sync.Mutex
	nextTag uint64
	tagMask uint64 // bounds the tag space; 0 means full 64-bit. Test seam.
	pending map[uint64]chan *wire.Response
	err     error // sticky transport error; set once, fails all later Dos
}

// DialMux connects to a riod server for pipelined use.
func DialMux(addr string) (*MuxClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewMuxClient(conn), nil
}

// NewMuxClient wraps an established connection and starts the response
// reader. The client owns conn from here on.
func NewMuxClient(conn net.Conn) *MuxClient {
	m := &MuxClient{
		conn:    conn,
		wbuf:    make([]byte, 0, 4096),
		pending: make(map[uint64]chan *wire.Response),
	}
	go m.readLoop()
	return m
}

// readLoop delivers responses to waiting Dos by tag until the stream
// fails, then fails every outstanding and future call with the error.
func (m *MuxClient) readLoop() {
	for {
		payload, err := wire.ReadFrame(m.conn, wire.MaxFrame)
		if err != nil {
			m.fail(err)
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[resp.ID]
		if ok {
			delete(m.pending, resp.ID)
		}
		m.mu.Unlock()
		if !ok {
			// A tag nobody is waiting for means the stream is out of
			// step with our bookkeeping; nothing later can be trusted.
			m.fail(fmt.Errorf("server: response for unknown tag %d", resp.ID))
			return
		}
		ch <- resp
	}
}

// fail marks the client broken and wakes every outstanding Do.
func (m *MuxClient) fail(err error) {
	m.conn.Close()
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	for tag, ch := range m.pending {
		delete(m.pending, tag)
		close(ch)
	}
	m.mu.Unlock()
}

// Do implements Client. It may be called from many goroutines at once;
// each call blocks only for its own response.
func (m *MuxClient) Do(req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	// Mint a tag no in-flight request holds. On a long-lived connection
	// the counter wraps (the mask shrinks the space so tests can force
	// it in bounded time), and handing out a still-pending tag would
	// cross-deliver one request's response to another — so probe until
	// a free tag turns up, and fail cleanly if the space is saturated.
	mask := m.tagMask
	if mask == 0 {
		mask = ^uint64(0)
	}
	var tag uint64
	for tries := uint64(0); ; tries++ {
		if tries > mask {
			m.mu.Unlock()
			return nil, fmt.Errorf("server: tag space exhausted (%d requests in flight)", len(m.pending))
		}
		m.nextTag++
		tag = m.nextTag & mask
		if _, busy := m.pending[tag]; !busy {
			break
		}
	}
	m.pending[tag] = ch
	m.mu.Unlock()

	orig := req.ID
	req.ID = tag
	m.wmu.Lock()
	m.wbuf = wire.AppendRequest(m.wbuf[:0], req)
	err := wire.WriteFrame(m.conn, m.wbuf)
	m.wmu.Unlock()
	req.ID = orig
	if err != nil {
		m.mu.Lock()
		delete(m.pending, tag)
		m.mu.Unlock()
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		m.mu.Lock()
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	resp.ID = orig
	return resp, nil
}

// Close implements Client. Outstanding Dos fail with net.ErrClosed.
func (m *MuxClient) Close() error { return m.conn.Close() }

// RetryPolicy bounds a client's EAGAIN loop. It is ioretry.Policy's
// shape on the client side of the wire — bounded attempts, exponential
// backoff, a cap — with wall-clock delays, because load clients live
// outside the simulation.
type RetryPolicy struct {
	// MaxRetries is re-submissions after the first attempt.
	MaxRetries int
	// BaseDelay backs off the first retry; each further retry doubles
	// it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay is a hard cap: no computed delay — doubled or jittered —
	// ever exceeds it. Zero means uncapped.
	MaxDelay time.Duration
	// Seed, when nonzero, spreads each delay uniformly over
	// [delay/2, delay] with sim.Mix(Seed, attempt). Without jitter,
	// every client blocked on the same dead primary re-sends on the
	// same schedule, and the promoted primary takes the whole herd in
	// one synchronized burst; with it, each seed gets its own
	// deterministic, desynchronized schedule.
	Seed uint64
}

// DefaultRetryPolicy rides out a shard warm reboot: ~10 attempts
// backing off 1ms -> 128ms covers several hundred milliseconds of
// outage before giving up. Callers that fan out many clients should
// set a distinct Seed per client to avoid a synchronized retry storm.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 10, BaseDelay: time.Millisecond, MaxDelay: 128 * time.Millisecond}
}

// Delay returns the backoff before retry attempt n (0-based): BaseDelay
// doubled n times, jittered into [d/2, d] when Seed is set, and never
// above MaxDelay. It is a pure function of (policy, n) — the schedule a
// seed produces is deterministic, reproducible, and testable without
// sleeping.
func (p RetryPolicy) Delay(n int) time.Duration {
	d := p.BaseDelay
	// Shift without overflow: past 62 doublings (or past the cap) the
	// exponential is saturated anyway.
	for i := 0; i < n; i++ {
		if d >= p.MaxDelay && p.MaxDelay > 0 {
			break
		}
		if d > 1<<62-1-d { // d*2 would overflow
			d = 1<<62 - 1
			break
		}
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Seed != 0 && d > 1 {
		half := d / 2
		d = half + time.Duration(sim.Mix(p.Seed, uint64(n))%uint64(half+1))
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// RetryStats counts what the retry loop absorbed.
type RetryStats struct {
	Retries   uint64 // re-submissions issued
	Exhausted uint64 // requests that stayed retryable after MaxRetries
	Redirects uint64 // StatusMoved hops followed
	Backoff   time.Duration
}

// maxRedirects bounds how many StatusMoved hops one Do will follow. A
// correct coordinator converges in one hop; the bound exists so a
// routing loop (two nodes each pointing at the other mid-promotion)
// costs a typed error, not a hang.
const maxRedirects = 4

// RetryClient wraps a Client with the EAGAIN discipline: responses
// whose status is Retryable are re-submitted with exponential backoff
// (jittered and capped per Pol). All other responses, and transport
// errors, pass through — except StatusMoved when Redial is set, which
// is followed transparently: the client re-dials the address the
// redirect names and re-sends there. Not safe for concurrent use
// (wraps a single-connection client).
type RetryClient struct {
	C     Client
	Pol   RetryPolicy
	Stats RetryStats

	// Redial, when set, follows StatusMoved redirects: it dials the
	// address carried in Response.Msg and returns a client for it; the
	// old client is closed and replaced. Works over any transport —
	// DialTCP, DialMux, or an in-process resolver.
	Redial func(addr string) (Client, error)

	// sleep is the backoff seam; tests and deterministic harnesses
	// replace it. nil means time.Sleep.
	sleep func(time.Duration)
}

// SetSleep replaces the backoff sleep (nil restores time.Sleep). The
// fleet campaign injects a no-op so retry schedules stay bounded by
// attempt count, not wall time.
func (r *RetryClient) SetSleep(fn func(time.Duration)) { r.sleep = fn }

// Do implements Client.
func (r *RetryClient) Do(req *wire.Request) (*wire.Response, error) {
	resp, err := r.doMoved(req)
	if err != nil {
		return resp, err
	}
	for n := 0; n < r.Pol.MaxRetries && resp.Status.Retryable(); n++ {
		if d := r.Pol.Delay(n); d > 0 {
			r.Stats.Backoff += d
			if r.sleep != nil {
				r.sleep(d)
			} else {
				time.Sleep(d)
			}
		}
		r.Stats.Retries++
		if resp, err = r.doMoved(req); err != nil {
			return resp, err
		}
	}
	if resp.Status.Retryable() {
		r.Stats.Exhausted++
	}
	return resp, nil
}

// doMoved issues one attempt, following a bounded chain of StatusMoved
// redirects when a Redial hook is present.
func (r *RetryClient) doMoved(req *wire.Request) (*wire.Response, error) {
	resp, err := r.C.Do(req)
	for hops := 0; err == nil && resp.Status == wire.StatusMoved && r.Redial != nil; hops++ {
		if hops >= maxRedirects {
			return resp, fmt.Errorf("server: %d redirects without converging (last: %q)", hops, resp.Msg)
		}
		next, derr := r.Redial(resp.Msg)
		if derr != nil {
			return resp, fmt.Errorf("server: following redirect to %q: %w", resp.Msg, derr)
		}
		r.C.Close()
		r.C = next
		r.Stats.Redirects++
		resp, err = r.C.Do(req)
	}
	return resp, err
}

// Close implements Client.
func (r *RetryClient) Close() error { return r.C.Close() }
