// Command riotrace runs one traced crash experiment and prints a
// post-mortem: what fault was injected, how the kernel died, the tail of
// executed instructions, and where the final stores landed — the
// fault-propagation analysis the paper's authors deferred as future work
// (§3.3, footnote 2).
//
// Usage:
//
//	riotrace [-fault copy-overrun] [-policy rio|rio-noprotect] [-seed S] [-tail N]
package main

import (
	"flag"
	"fmt"
	"os"

	"rio"
	"rio/internal/fault"
	"rio/internal/fs"
	"rio/internal/machine"
	"rio/internal/sim"
	"rio/internal/workload"
)

func main() {
	faultName := flag.String("fault", "copy-overrun", "fault model (see rio.FaultTypes)")
	policy := flag.String("policy", "rio", "rio or rio-noprotect")
	seed := flag.Uint64("seed", 1, "run seed")
	tail := flag.Int("tail", 40, "instructions of execution tail to print")
	maxOps := flag.Int("maxops", 400, "operations to run before giving up")
	flag.Parse()

	var ft fault.Type
	found := false
	for i, name := range rio.FaultTypes() {
		if string(name) == *faultName {
			ft = fault.AllTypes[i]
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "riotrace: unknown fault %q; known:\n", *faultName)
		for _, name := range rio.FaultTypes() {
			fmt.Fprintln(os.Stderr, " ", name)
		}
		os.Exit(1)
	}

	pol := fs.DefaultPolicy(fs.PolicyRio)
	switch *policy {
	case "rio":
	case "rio-noprotect":
		pol.Protect = false
	default:
		fmt.Fprintln(os.Stderr, "riotrace: policy must be rio or rio-noprotect")
		os.Exit(1)
	}

	opt := machine.DefaultOptions(pol)
	opt.FastPath = false
	opt.Seed = *seed
	m, err := machine.New(opt, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riotrace:", err)
		os.Exit(1)
	}
	m.Kernel.VM.Budget = 400_000
	m.EnableTrace(4096)

	mt := workload.NewMemTest(sim.Mix(*seed, 0xABCD), 1<<21)
	for i := 0; i < 30; i++ {
		if err := mt.Step(m.FS); err != nil {
			fmt.Fprintln(os.Stderr, "riotrace: warmup:", err)
			os.Exit(1)
		}
	}

	if err := fault.Inject(m, ft, fault.DefaultCount, sim.NewRand(*seed)); err != nil {
		fmt.Fprintln(os.Stderr, "riotrace:", err)
		os.Exit(1)
	}
	fmt.Printf("injected %q into a %s machine (seed %d); running memTest...\n\n",
		*faultName, *policy, *seed)

	ops := 0
	for ; ops < *maxOps; ops++ {
		_ = mt.Step(m.FS)
		if m.Crashed() != nil {
			break
		}
	}
	if m.Crashed() == nil {
		fmt.Printf("no crash within %d operations — the faults never triggered fatally\n", *maxOps)
		fmt.Println("(the paper discarded such runs too; try another -seed)")
		return
	}
	fmt.Printf("crashed after %d operations\n\n", ops+1)

	pm, err := m.BuildPostmortem(*tail)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riotrace:", err)
		os.Exit(1)
	}
	fmt.Print(pm.Format())
}
