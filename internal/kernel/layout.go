package kernel

import "rio/internal/mem"

// Virtual memory layout of the simulated kernel.
//
// The layout is deliberately *sparse*, as on the paper's 64-bit Alphas:
// the handful of mapped regions sit far apart in a huge virtual space, so
// a corrupted pointer — a swapped register, a stale base, an off-by-a-lot
// sum — almost always lands on an unmapped page and traps. The paper
// credits exactly this implicit check with stopping most faults before
// they damage anything ("particularly on a 64-bit machine, most errors are
// first detected by issuing an illegal address", §3.3).
//
// Physical placement is compact (low frames), independent of the virtual
// scatter: vpage bases and frame bases are mapped pairwise at boot.
const (
	// Kernel stack: 4 pages. Page 0 is never mapped (null guard).
	stackFirstVPage = 1 << 8
	stackFirstFrame = 1
	StackPages      = 4

	// Kernel heap (buffer headers, allocator chain).
	heapFirstVPage = 1 << 16
	heapFirstFrame = 8
	HeapPages      = 24

	// Staging region: copyin/copyout landing area.
	stagingFirstVPage = 1 << 20
	stagingFirstFrame = 40
	StagingPages      = 17 // 16 data pages + 1 page of slack for straddles

	// Dynamically mapped region: metadata buffers, one page per buffer.
	dynFirstVPage = 1 << 24

	// reservedFrames is the count of low frames claimed by fixed regions;
	// everything above is the page pool.
	reservedFrames = stagingFirstFrame + StagingPages
)

// Derived virtual addresses.
const (
	StackLimit  = uint64(stackFirstVPage) * mem.PageSize
	StackTop    = uint64(stackFirstVPage+StackPages) * mem.PageSize
	HeapBase    = uint64(heapFirstVPage) * mem.PageSize
	HeapSize    = HeapPages * mem.PageSize
	StagingBase = uint64(stagingFirstVPage) * mem.PageSize
	StagingSize = StagingPages * mem.PageSize
	DynBase     = uint64(dynFirstVPage) * mem.PageSize
)

// Physical bases of the fixed regions (trusted DMA-style paths and fault
// targeting use these).
const (
	StackPhysBase   = uint64(stackFirstFrame) * mem.PageSize
	HeapPhysBase    = uint64(heapFirstFrame) * mem.PageSize
	StagingPhysBase = uint64(stagingFirstFrame) * mem.PageSize
)

// HeapPhys translates a heap virtual address to its physical address.
func HeapPhys(vaddr uint64) uint64 { return HeapPhysBase + (vaddr - HeapBase) }

// StackPhys translates a stack virtual address to its physical address.
func StackPhys(vaddr uint64) uint64 { return StackPhysBase + (vaddr - StackLimit) }

// FrameClass labels what a physical frame is used for, for accounting and
// for fault targeting (heap bit-flips pick heap frames, etc.).
type FrameClass int

const (
	FrameFree FrameClass = iota
	FrameStack
	FrameHeap
	FrameStaging
	FrameMeta     // buffer cache (metadata) page
	FrameUBC      // unified buffer cache (file data) page
	FrameRegistry // Rio registry page
)

func (c FrameClass) String() string {
	switch c {
	case FrameFree:
		return "free"
	case FrameStack:
		return "stack"
	case FrameHeap:
		return "heap"
	case FrameStaging:
		return "staging"
	case FrameMeta:
		return "meta"
	case FrameUBC:
		return "ubc"
	case FrameRegistry:
		return "registry"
	default:
		return "?"
	}
}
