package workload

import (
	"encoding/binary"
	"fmt"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// MetaCache reproduces the classic "derived cache in front of an
// authoritative file set" consumer (filedatacache's shape): a tree of
// source files under /src, and a cache of derived metadata under
// /mcache keyed by (path, version, size). The simulator's fs records
// no mtimes, so the source frame carries an explicit version stamp in
// the same role: a cache entry is a hit only when its recorded
// (version, size) matches the source's current frame, exactly as
// filedatacache keys on (mtime, size).
//
// The discipline under crash is correct-or-miss: after recovery a
// cache entry may be stale — its recorded version no longer matches
// the source — and that is a miss, never corruption. What must not
// happen is a *lying hit*: an entry whose key matches the current
// source but whose digest disagrees with the source's content, which
// would hand the application derived data for bytes that were never
// there. Check convicts exactly that, plus frames smashed outside the
// one in-flight op and acked state that rolled back.
//
// Source frame:  magic u64 | ver u64 | plen u32 | payload | cksum u64
// Cache entry:   magic u64 | ver u64 | size u32 | digest u64 | cksum u64
// Payloads are a pure function of (seed, file, ver), so any decoded
// version is checkable against the oracle.
type MetaCache struct {
	// Files is the source-file count; Skew biases update/lookup
	// popularity through the shared KeyCDF.
	Files int
	// WriteThrough fsyncs after every completed write, for the
	// disk-based baseline column.
	WriteThrough bool

	seed uint64
	rng  *sim.Rand
	cdf  KeyCDF

	// srcVer[i] is the last source version whose write completed;
	// 0 = never created. cacheVer[i] is the version the completed
	// cache entry records; -1 = absent (never filled or evicted).
	srcVer   []uint64
	cacheVer []int64
	steps    int

	// inFlight is the op interrupted by a crash: phase distinguishes
	// the source rewrite from the cache fill.
	inFlight *mcOp

	// ReadMismatches counts online lookup failures (a hit whose digest
	// disagreed with the payload just read).
	ReadMismatches int
}

// mcOp records one in-flight metacache operation.
type mcOp struct {
	file  int
	ver   uint64 // version being written
	phase int    // mcSrc or mcCache
}

const (
	mcSrc = iota
	mcCache
)

const (
	mcSrcMagic   = 0x52696f4d63537263 // "RioMcSrc"
	mcCacheMagic = 0x52696f4d63456e74 // "RioMcEnt"
	mcSrcHeader  = 8 + 8 + 4
	mcEntryLen   = 8 + 8 + 4 + 8 + 8
)

// NewMetaCache returns the workload over `files` source files.
func NewMetaCache(seed uint64, files int, skew float64) *MetaCache {
	if files < 1 {
		files = 16
	}
	return &MetaCache{
		Files:    files,
		seed:     seed,
		rng:      sim.NewRand(sim.Mix(seed, 0x4D43A11E)),
		cdf:      NewKeyCDF(files, skew),
		srcVer:   make([]uint64, files),
		cacheVer: make([]int64, files),
	}
}

// Name implements Workload.
func (mc *MetaCache) Name() string { return "metacache" }

func (mc *MetaCache) srcPath(i int) string   { return fmt.Sprintf("/src/f%04d", i) }
func (mc *MetaCache) cachePath(i int) string { return fmt.Sprintf("/mcache/f%04d", i) }

// plen is the per-file payload length — constant per file so rewrites
// are exactly in place and cannot leave stale frame tails.
func (mc *MetaCache) plen(i int) int {
	return 128 + int(sim.Mix(mc.seed, uint64(i))%1024)
}

// payload is the oracle content of (file, ver).
func (mc *MetaCache) payload(i int, ver uint64) []byte {
	return kernel.FillBytes(mc.plen(i), sim.Mix(mc.seed, uint64(i), ver)|1)
}

// srcFrame builds the source file image for (file, ver).
func (mc *MetaCache) srcFrame(i int, ver uint64) []byte {
	p := mc.payload(i, ver)
	buf := make([]byte, 0, mcSrcHeader+len(p)+8)
	buf = binary.BigEndian.AppendUint64(buf, mcSrcMagic)
	buf = binary.BigEndian.AppendUint64(buf, ver)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
	buf = append(buf, p...)
	return binary.BigEndian.AppendUint64(buf, fnv64(buf[8:]))
}

// entryFrame builds the cache entry recording (ver, size, digest) for
// file i — the derived metadata the cache exists to serve.
func (mc *MetaCache) entryFrame(i int, ver uint64) []byte {
	p := mc.payload(i, ver)
	buf := make([]byte, 0, mcEntryLen)
	buf = binary.BigEndian.AppendUint64(buf, mcCacheMagic)
	buf = binary.BigEndian.AppendUint64(buf, ver)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
	buf = binary.BigEndian.AppendUint64(buf, fnv64(p))
	return binary.BigEndian.AppendUint64(buf, fnv64(buf[8:]))
}

// writeFile rewrites path with img in place (fixed-size frames) and
// fsyncs when the workload runs write-through. Frames never shrink, so
// Open-or-Create plus a full-image WriteAt is an exact replacement.
func (mc *MetaCache) writeFile(fsys *fs.FS, path string, img []byte) error {
	f, err := fsys.Open(path)
	if err == fs.ErrNotFound {
		f, err = fsys.Create(path)
	}
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		return err
	}
	if mc.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	return f.Close()
}

// Setup creates the two directories. Files appear on first update.
func (mc *MetaCache) Setup(fsys *fs.FS) error {
	for i := range mc.cacheVer {
		mc.cacheVer[i] = -1
	}
	if err := fsys.Mkdir("/src"); err != nil && err != fs.ErrExists {
		return err
	}
	if err := fsys.Mkdir("/mcache"); err != nil && err != fs.ErrExists {
		return err
	}
	return nil
}

// Step executes one operation: update (rewrite source, refill cache),
// lookup (read source, validate the cache hit), or evict (drop the
// cache entry).
func (mc *MetaCache) Step(fsys *fs.FS) error {
	mc.steps++
	i := mc.cdf.Pick(mc.rng)
	switch r := mc.rng.Float64(); {
	case r < 0.45 || mc.srcVer[i] == 0:
		return mc.doUpdate(fsys, i)
	case r < 0.85:
		return mc.doLookup(fsys, i)
	default:
		return mc.doEvict(fsys, i)
	}
}

// doUpdate bumps file i to the next version: source first, then the
// derived entry — the order every real derived cache uses, so a crash
// between the two leaves a detectably stale entry, not a lying one.
func (mc *MetaCache) doUpdate(fsys *fs.FS, i int) error {
	ver := mc.srcVer[i] + 1
	mc.inFlight = &mcOp{file: i, ver: ver, phase: mcSrc}
	if err := mc.writeFile(fsys, mc.srcPath(i), mc.srcFrame(i, ver)); err != nil {
		return err
	}
	mc.srcVer[i] = ver
	mc.inFlight.phase = mcCache
	if err := mc.writeFile(fsys, mc.cachePath(i), mc.entryFrame(i, ver)); err != nil {
		return err
	}
	mc.cacheVer[i] = int64(ver)
	mc.inFlight = nil
	return nil
}

// doLookup is the cache's read path: stat the source, consult the
// entry; on a key match the digest must agree with the payload (a
// lying hit is counted online), on a miss or stale key the entry is
// refilled.
func (mc *MetaCache) doLookup(fsys *fs.FS, i int) error {
	if mc.srcVer[i] == 0 {
		return mc.doUpdate(fsys, i)
	}
	src, err := mc.readFrame(fsys, mc.srcPath(i))
	if err != nil {
		return err
	}
	srcVer := binary.BigEndian.Uint64(src[8:])
	ent, err := mc.readFrame(fsys, mc.cachePath(i))
	if err == fs.ErrNotFound || (err == nil && binary.BigEndian.Uint64(ent[8:]) != srcVer) {
		// Miss or stale: refill, the derived-cache slow path.
		mc.inFlight = &mcOp{file: i, ver: srcVer, phase: mcCache}
		if werr := mc.writeFile(fsys, mc.cachePath(i), mc.entryFrame(i, srcVer)); werr != nil {
			return werr
		}
		mc.cacheVer[i] = int64(srcVer)
		mc.inFlight = nil
		return nil
	}
	if err != nil {
		return err
	}
	// Hit: the recorded digest must match the bytes we just read.
	plen := int(binary.BigEndian.Uint32(src[16:]))
	if fnv64(src[mcSrcHeader:mcSrcHeader+plen]) != binary.BigEndian.Uint64(ent[20:]) {
		mc.ReadMismatches++
	}
	return nil
}

// doEvict drops the cache entry, exercising the rebuild path.
func (mc *MetaCache) doEvict(fsys *fs.FS, i int) error {
	if mc.cacheVer[i] < 0 {
		return mc.doLookup(fsys, i)
	}
	mc.inFlight = &mcOp{file: i, ver: uint64(mc.cacheVer[i]), phase: mcCache}
	if err := fsys.Unlink(mc.cachePath(i)); err != nil {
		return err
	}
	mc.cacheVer[i] = -1
	mc.inFlight = nil
	return nil
}

// readFrame reads a whole file; the caller decodes it.
func (mc *MetaCache) readFrame(fsys *fs.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size <= 0 || st.Size > 1<<20 {
		return nil, fmt.Errorf("implausible size %d", st.Size)
	}
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Check implements Workload: every source must decode at its acked (or
// in-flight) version with oracle-exact bytes, and every cache entry
// must be absent, internally valid at a version the oracle acked, or
// the in-flight fill — with the cardinal rule that an entry keying the
// current source version must carry the current digest.
func (mc *MetaCache) Check(fsys *fs.FS) Verdict {
	var v Verdict
	fl := mc.inFlight
	for i := 0; i < mc.Files; i++ {
		if mc.srcVer[i] == 0 && (fl == nil || fl.file != i) {
			continue // never created
		}
		v.Checked++
		srcInFlight := fl != nil && fl.file == i && fl.phase == mcSrc
		cacheInFlight := fl != nil && fl.file == i && fl.phase == mcCache

		// Source file.
		curVer := mc.srcVer[i] // post-crash authoritative version, refined below
		src, err := mc.readFrame(fsys, mc.srcPath(i))
		okVers := map[uint64]bool{mc.srcVer[i]: true}
		if srcInFlight {
			okVers[fl.ver] = true
			delete(okVers, 0)
		}
		switch {
		case err != nil:
			if !(srcInFlight && mc.srcVer[i] == 0) {
				v.Corruptions = append(v.Corruptions,
					Corruption{mc.srcPath(i), "unreadable: " + err.Error()})
				if mc.srcVer[i] > 0 {
					v.Lost++
				}
				continue
			}
			continue // creation was in flight; absent is fine
		default:
			ver, derr := mc.decodeSrc(i, src)
			if derr != "" {
				if !srcInFlight {
					v.Corruptions = append(v.Corruptions, Corruption{mc.srcPath(i), derr})
				}
				continue // undecodable source: no key to hold the cache to
			}
			if !okVers[ver] {
				if ver < mc.srcVer[i] {
					v.Lost++
					v.Corruptions = append(v.Corruptions, Corruption{mc.srcPath(i),
						fmt.Sprintf("acked version lost: at v%d, acked v%d", ver, mc.srcVer[i])})
				} else {
					v.Corruptions = append(v.Corruptions, Corruption{mc.srcPath(i),
						fmt.Sprintf("phantom version v%d (acked v%d)", ver, mc.srcVer[i])})
				}
				continue
			}
			curVer = ver
		}

		// Cache entry.
		ent, err := mc.readFrame(fsys, mc.cachePath(i))
		if err != nil {
			// Absent or unreadable: a miss. Losing an acked entry is a
			// rebuildable miss by design (correct-or-miss), so absence
			// is never corruption — that is the whole point of keying
			// derived state.
			continue
		}
		ever, size, digest, derr := mc.decodeEntry(ent)
		if derr != "" {
			if !cacheInFlight {
				v.Corruptions = append(v.Corruptions, Corruption{mc.cachePath(i), derr})
			}
			continue
		}
		if ever == curVer {
			// A hit after recovery: the derived metadata must be true.
			p := mc.payload(i, curVer)
			if int(size) != len(p) || digest != fnv64(p) {
				v.Corruptions = append(v.Corruptions, Corruption{mc.cachePath(i),
					fmt.Sprintf("lying hit: entry keys v%d but digest disagrees", ever)})
			}
			continue
		}
		// Stale entry = miss; it must still be an entry the oracle
		// could have written (internally consistent with some real
		// version), else its bytes were smashed.
		p := mc.payload(i, ever)
		if ever > mc.srcVer[i]+1 || int(size) != len(p) || digest != fnv64(p) {
			v.Corruptions = append(v.Corruptions, Corruption{mc.cachePath(i),
				fmt.Sprintf("smashed entry at v%d", ever)})
		}
	}
	return v
}

// decodeSrc validates a source frame end to end; returns the version
// or a non-empty failure detail.
func (mc *MetaCache) decodeSrc(i int, b []byte) (uint64, string) {
	want := mcSrcHeader + mc.plen(i) + 8
	if len(b) != want {
		return 0, fmt.Sprintf("size %d, want %d", len(b), want)
	}
	if binary.BigEndian.Uint64(b) != mcSrcMagic {
		return 0, "bad magic"
	}
	if binary.BigEndian.Uint64(b[want-8:]) != fnv64(b[8:want-8]) {
		return 0, "checksum mismatch"
	}
	ver := binary.BigEndian.Uint64(b[8:])
	if int(binary.BigEndian.Uint32(b[16:])) != mc.plen(i) {
		return 0, "length field mismatch"
	}
	p := mc.payload(i, ver)
	for j := range p {
		if b[mcSrcHeader+j] != p[j] {
			return 0, fmt.Sprintf("payload byte %d disagrees with oracle for v%d", j, ver)
		}
	}
	return ver, ""
}

// decodeEntry validates a cache entry frame; returns (ver, size,
// digest) or a non-empty failure detail.
func (mc *MetaCache) decodeEntry(b []byte) (uint64, uint32, uint64, string) {
	if len(b) != mcEntryLen {
		return 0, 0, 0, fmt.Sprintf("entry size %d, want %d", len(b), mcEntryLen)
	}
	if binary.BigEndian.Uint64(b) != mcCacheMagic {
		return 0, 0, 0, "bad entry magic"
	}
	if binary.BigEndian.Uint64(b[mcEntryLen-8:]) != fnv64(b[8:mcEntryLen-8]) {
		return 0, 0, 0, "entry checksum mismatch"
	}
	return binary.BigEndian.Uint64(b[8:]), binary.BigEndian.Uint32(b[16:]),
		binary.BigEndian.Uint64(b[20:]), ""
}
