package kvm

import (
	"testing"

	"rio/internal/mem"
	"rio/internal/mmu"
)

// splitmix64 for the fuzz streams (local copy; sim would be an import
// cycle risk and the stream here needs no stability guarantees).
func next(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestInterpreterTotalOnRandomText is the fault injector's safety net: the
// VM must never Go-panic, hang, or escape its sandbox no matter what the
// instruction words contain — fault injection mutates text arbitrarily,
// and every outcome must be a clean exception or normal completion.
func TestInterpreterTotalOnRandomText(t *testing.T) {
	seed := uint64(0xF0CC)
	for round := 0; round < 400; round++ {
		n := 4 + int(next(&seed)%60)
		a := NewAsm()
		a.Proc("fuzz")
		for i := 0; i < n; i++ {
			a.Nop()
		}
		a.Halt()
		text := a.MustAssemble()
		for pc := 0; pc < n; pc++ {
			text.SetWord(pc, next(&seed))
		}

		m := mem.New(16 * mem.PageSize)
		u := mmu.New(m)
		for p := 0; p < 4; p++ {
			u.Map(uint64(p), p, true)
		}
		v := New(text, u)
		v.SetStack(4*mem.PageSize, 3*mem.PageSize)
		v.Budget = 50_000
		// Poison registers so random code has lively inputs.
		for r := range v.Reg {
			v.Reg[r] = next(&seed)
		}
		exc := v.Exec("fuzz") // must return, never panic or run away
		_ = exc
	}
}

// TestInterpreterTotalOnMutatedKernel fuzzes realistic text: random bit
// flips over an assembled program with calls, loops and stack traffic.
func TestInterpreterTotalOnMutatedKernel(t *testing.T) {
	build := func() *Text {
		a := NewAsm()
		a.Proc("leaf")
		a.Add(0, 1, 2)
		a.Ret()
		a.Proc("main")
		a.MovI(1, 0)
		a.MovI(2, 64)
		a.EndProlog()
		loop := a.Here()
		a.Push(1)
		a.Call("leaf")
		a.Pop(1)
		a.St(15, -8, 0) // scribble near SP (legal)
		a.AddI(1, 1, 1)
		a.Blt(1, 2, loop)
		a.Ret()
		return a.MustAssemble()
	}
	seed := uint64(0xBEEF)
	for round := 0; round < 600; round++ {
		text := build()
		for k := 0; k < 1+int(next(&seed)%6); k++ {
			pc := int(next(&seed)) % text.Len()
			if pc < 0 {
				pc = -pc
			}
			text.FlipBit(pc%text.Len(), uint(next(&seed)%64))
		}
		m := mem.New(16 * mem.PageSize)
		u := mmu.New(m)
		for p := 0; p < 4; p++ {
			u.Map(uint64(p), p, true)
		}
		v := New(text, u)
		v.SetStack(4*mem.PageSize, 3*mem.PageSize)
		v.Budget = 100_000
		_ = v.Exec("main")
	}
}
