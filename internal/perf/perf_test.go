package perf

import (
	"strings"
	"testing"

	"rio/internal/fs"
	"rio/internal/sim"
	"rio/internal/workload"
)

// smallConfig shrinks the workloads for fast unit tests; shape assertions
// use the full default config in TestTable2Shape.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.CpRm = workload.DefaultCpRm()
	cfg.CpRm.TreeBytes = 1 << 20
	cfg.Sdet = workload.DefaultSdet()
	cfg.Sdet.OpsPerScript = 60
	cfg.Andrew = workload.DefaultAndrew()
	cfg.Andrew.TreeBytes = 150 << 10
	return cfg
}

func TestRowsCoverTable2(t *testing.T) {
	rows := Rows()
	if len(rows) != 8 {
		t.Fatalf("Table 2 has 8 rows, got %d", len(rows))
	}
	kinds := map[fs.PolicyKind]int{}
	for _, r := range rows {
		kinds[r.Policy.Kind]++
	}
	if kinds[fs.PolicyRio] != 2 {
		t.Fatal("need Rio with and without protection")
	}
	for _, k := range []fs.PolicyKind{fs.PolicyMFS, fs.PolicyUFSDelayed,
		fs.PolicyAdvFS, fs.PolicyUFS, fs.PolicyUFSWTClose, fs.PolicyUFSWTWrite} {
		if kinds[k] != 1 {
			t.Fatalf("missing policy %v", k)
		}
	}
}

func TestRunRowSmall(t *testing.T) {
	cfg := smallConfig()
	row, err := cfg.RunRow(Rows()[0]) // MFS
	if err != nil {
		t.Fatal(err)
	}
	if row.CpRmCp <= 0 || row.CpRmRm <= 0 || row.Sdet <= 0 || row.Andrew <= 0 {
		t.Fatalf("non-positive durations: %+v", row)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table is slow")
	}
	cfg := DefaultConfig()
	rows, err := cfg.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	r := ComputeRatios(rows)

	// The paper's headline claims, as bands:
	// "4-22 times as fast as a write-through file system"
	for i, v := range r.VsWriteThroughWrite {
		if v < 4 || v > 30 {
			t.Errorf("vs write-through-on-write, workload %d: %.1fx outside [4,30]", i, v)
		}
	}
	// "2-14 times as fast as a standard Unix file system"
	for i, v := range r.VsUFS {
		if v < 2 || v > 16 {
			t.Errorf("vs UFS, workload %d: %.1fx outside [2,16]", i, v)
		}
	}
	// "1-3 times as fast as an optimized system that risks losing 30
	// seconds of data and metadata"
	for i, v := range r.VsDelayed {
		if v < 0.8 || v > 4 {
			t.Errorf("vs delayed UFS, workload %d: %.1fx outside [0.8,4]", i, v)
		}
	}
	// "performs as fast as a memory file system" (within ~20%)
	for i, v := range r.VsMFS {
		if v < 0.75 || v > 1.25 {
			t.Errorf("vs MFS, workload %d: %.2fx outside [0.75,1.25]", i, v)
		}
	}

	// Ordering within each workload column: MFS fastest-ish, WT-write
	// slowest.
	byLabel := map[string]Row{}
	for _, row := range rows {
		byLabel[row.Spec.Label] = row
	}
	for _, get := range []func(Row) sim.Duration{
		func(r Row) sim.Duration { return r.CpRm() },
		func(r Row) sim.Duration { return r.Sdet },
		func(r Row) sim.Duration { return r.Andrew },
	} {
		mfs := get(byLabel["Memory File System"])
		ufs := get(byLabel["UFS"])
		wtw := get(byLabel["UFS write-through on write"])
		rio := get(byLabel["Rio with protection"])
		if !(wtw > ufs && ufs > mfs) {
			t.Errorf("ordering broken: wtw=%v ufs=%v mfs=%v", wtw, ufs, mfs)
		}
		if rio > 2*mfs {
			t.Errorf("Rio (%v) far from MFS (%v)", rio, mfs)
		}
	}
}

func TestProtectionEssentiallyFree(t *testing.T) {
	cfg := smallConfig()
	without, with, err := cfg.ProtectionOverhead()
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(with)/float64(without) - 1
	if overhead < 0 || overhead > 0.05 {
		t.Fatalf("protection overhead %.1f%%, want ~0-5%%", overhead*100)
	}
}

func TestCodePatchingCostly(t *testing.T) {
	cfg := smallConfig()
	tlb, patched, err := cfg.CodePatchingOverhead()
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(patched)/float64(tlb) - 1
	if overhead < 0.15 || overhead > 0.60 {
		t.Fatalf("code patching overhead %.1f%%, want the paper's 20-50%% band", overhead*100)
	}
}

func TestFormatTable(t *testing.T) {
	cfg := smallConfig()
	row, err := cfg.RunRow(Rows()[6]) // Rio without protection
	if err != nil {
		t.Fatal(err)
	}
	out := Format([]Row{row})
	if !strings.Contains(out, "Rio without protection") ||
		!strings.Contains(out, "Sdet") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestDeterministicRows(t *testing.T) {
	cfg := smallConfig()
	a, err := cfg.RunRow(Rows()[3])
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.RunRow(Rows()[3])
	if err != nil {
		t.Fatal(err)
	}
	if a.CpRmCp != b.CpRmCp || a.Sdet != b.Sdet || a.Andrew != b.Andrew {
		t.Fatalf("perf rows not deterministic: %+v vs %+v", a, b)
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	// MakeTree from the same seed is identical.
	t1 := workload.MakeTree("/x", 1<<20, 9)
	t2 := workload.MakeTree("/x", 1<<20, 9)
	if len(t1.Files) != len(t2.Files) || t1.TotalBytes() != t2.TotalBytes() {
		t.Fatal("MakeTree not deterministic")
	}
	for i := range t1.Files {
		if t1.Files[i] != t2.Files[i] {
			t.Fatal("tree files differ")
		}
	}
	if t1.TotalBytes() < 1<<20 {
		t.Fatal("tree under target size")
	}
}
