package fault

import (
	"testing"

	"rio/internal/fs"
	"rio/internal/kvm"
	"rio/internal/machine"
	"rio/internal/sim"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyRio))
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func textWords(m *machine.Machine) []uint64 {
	out := make([]uint64, m.Text.Len())
	for i := range out {
		out[i] = m.Text.Word(i)
	}
	return out
}

func diffCount(a, b []uint64) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func TestTypeStrings(t *testing.T) {
	if len(AllTypes) != 13 {
		t.Fatalf("paper has 13 fault types, we have %d", len(AllTypes))
	}
	seen := map[string]bool{}
	for _, ft := range AllTypes {
		s := ft.String()
		if s == "" || seen[s] {
			t.Fatalf("bad/duplicate name for %d: %q", int(ft), s)
		}
		seen[s] = true
	}
}

func TestTextMutatingFaultsChangeText(t *testing.T) {
	for _, ft := range []Type{TextFlip, DestReg, SrcReg, DeleteBranch, DeleteRandom, Init, Pointer, OffByOne} {
		m := newMachine(t)
		before := textWords(m)
		if err := Inject(m, ft, DefaultCount, sim.NewRand(7)); err != nil {
			t.Fatalf("%v: %v", ft, err)
		}
		if diffCount(before, textWords(m)) == 0 {
			t.Errorf("%v mutated nothing", ft)
		}
	}
}

func TestStructuralDensityCap(t *testing.T) {
	// Structural faults must be capped well below the raw count of 20 on
	// a kernel this size.
	m := newMachine(t)
	before := textWords(m)
	if err := Inject(m, DeleteRandom, 20, sim.NewRand(3)); err != nil {
		t.Fatal(err)
	}
	n := diffCount(before, textWords(m))
	if n == 0 || n > 1+m.Text.Len()/64 {
		t.Fatalf("structural mutations = %d, cap = %d", n, 1+m.Text.Len()/64)
	}
}

func TestDeleteBranchOnlyNopsBranches(t *testing.T) {
	m := newMachine(t)
	before := textWords(m)
	Inject(m, DeleteBranch, DefaultCount, sim.NewRand(11))
	for i := range before {
		if before[i] != m.Text.Word(i) {
			was := kvm.Decode(before[i])
			now := kvm.Decode(m.Text.Word(i))
			if !(was.Op.IsBranch() || was.Op == kvm.OpJmp) || now.Op != kvm.OpNop {
				t.Fatalf("pc %d: %v -> %v", i, was, now)
			}
		}
	}
}

func TestOffByOneSwapsRelationalOps(t *testing.T) {
	m := newMachine(t)
	before := textWords(m)
	Inject(m, OffByOne, DefaultCount, sim.NewRand(13))
	changed := 0
	for i := range before {
		if before[i] != m.Text.Word(i) {
			was := kvm.Decode(before[i])
			now := kvm.Decode(m.Text.Word(i))
			if relationalSwap(was.Op) != now.Op {
				t.Fatalf("pc %d: %v -> %v not a relational swap", i, was, now)
			}
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no swaps")
	}
}

func TestInitNopsPrologues(t *testing.T) {
	m := newMachine(t)
	Inject(m, Init, DefaultCount, sim.NewRand(17))
	// At least one procedure's full prologue is NOPed.
	found := false
	for _, p := range m.Text.Procs() {
		all := true
		for pc := p.Entry; pc < p.Entry+p.Prolog; pc++ {
			if m.Text.At(pc).Op != kvm.OpNop {
				all = false
				break
			}
		}
		if all {
			found = true
		}
	}
	if !found {
		t.Fatal("no prologue deleted")
	}
}

func TestPointerDeletesDefBeforeUse(t *testing.T) {
	m := newMachine(t)
	before := textWords(m)
	Inject(m, Pointer, DefaultCount, sim.NewRand(19))
	// Every change must be a NOPed instruction that previously wrote a
	// register used as a base by a later memory access in the same proc.
	for i := range before {
		if before[i] == m.Text.Word(i) {
			continue
		}
		was := kvm.Decode(before[i])
		if m.Text.At(i).Op != kvm.OpNop {
			t.Fatalf("pc %d mutated to non-nop", i)
		}
		if !hasDest(was) {
			t.Fatalf("pc %d: deleted %v does not define a register", i, was)
		}
	}
}

func TestHeapFlipChangesHeapMemory(t *testing.T) {
	m := newMachine(t)
	// Snapshot the heap frames.
	before := m.Mem.Dump()
	Inject(m, HeapFlip, DefaultCount, sim.NewRand(23))
	after := m.Mem.Dump()
	diff := 0
	for i := range before {
		if before[i] != after[i] {
			diff++
		}
	}
	if diff == 0 || diff > DefaultCount {
		t.Fatalf("heap flip changed %d bytes", diff)
	}
}

func TestBehaviouralFaultsArmHooks(t *testing.T) {
	m := newMachine(t)
	Inject(m, Alloc, DefaultCount, sim.NewRand(29))
	if m.Kernel.Heap.PrematureFree == nil {
		t.Fatal("allocation fault not armed")
	}

	m2 := newMachine(t)
	Inject(m2, CopyOverrun, DefaultCount, sim.NewRand(31))
	bcopy := m2.Text.MustProc("bcopy")
	if m2.Kernel.VM.EntryHooks[bcopy.Entry] == nil {
		t.Fatal("copy overrun not armed")
	}

	m3 := newMachine(t)
	Inject(m3, Sync, DefaultCount, sim.NewRand(37))
	if m3.Kernel.Locks.ElideAcquire == nil || m3.Kernel.Locks.ElideRelease == nil {
		t.Fatal("sync fault not armed")
	}

	m4 := newMachine(t)
	Inject(m4, StackFlip, DefaultCount, sim.NewRand(41))
	if len(m4.Kernel.VM.EntryHooks) == 0 {
		t.Fatal("stack flip not armed")
	}
}

func TestCopyOverrunDistribution(t *testing.T) {
	// Drive the armed hook and check the overrun length distribution
	// matches the paper's 50/44/6 split.
	m := newMachine(t)
	rng := sim.NewRand(43)
	armCopyOverrun(m, rng)
	bcopy := m.Text.MustProc("bcopy")
	hook := m.Kernel.VM.EntryHooks[bcopy.Entry]

	one, mid, big, fired := 0, 0, 0, 0
	const trials = 3_000_000
	for i := 0; i < trials; i++ {
		m.Kernel.VM.Reg[3] = 0
		hook(m.Kernel.VM)
		over := int(m.Kernel.VM.Reg[3])
		if over == 0 {
			continue
		}
		fired++
		switch {
		case over == 1:
			one++
		case over <= 1024:
			mid++
		default:
			big++
		}
	}
	if fired == 0 {
		t.Fatal("hook never fired")
	}
	fOne := float64(one) / float64(fired)
	fMid := float64(mid) / float64(fired)
	fBig := float64(big) / float64(fired)
	if fOne < 0.4 || fOne > 0.6 || fMid < 0.34 || fMid > 0.54 || fBig < 0.02 || fBig > 0.12 {
		t.Fatalf("overrun distribution %0.2f/%0.2f/%0.2f, want ~0.50/0.44/0.06", fOne, fMid, fBig)
	}
	// Cadence: first firing after 150-600 calls, repeats every 600-2400.
	rate := float64(trials) / float64(fired)
	if rate < 400 || rate > 2600 {
		t.Fatalf("overrun cadence ~every %.0f calls", rate)
	}
}

func TestInjectionDeterminism(t *testing.T) {
	for _, ft := range []Type{TextFlip, DestReg, Pointer, OffByOne} {
		m1 := newMachine(t)
		m2 := newMachine(t)
		Inject(m1, ft, DefaultCount, sim.NewRand(99))
		Inject(m2, ft, DefaultCount, sim.NewRand(99))
		if diffCount(textWords(m1), textWords(m2)) != 0 {
			t.Fatalf("%v injection not deterministic", ft)
		}
	}
}

func TestUnknownTypeErrors(t *testing.T) {
	m := newMachine(t)
	if err := Inject(m, Type(99), 1, sim.NewRand(1)); err == nil {
		t.Fatal("unknown fault type accepted")
	}
}
