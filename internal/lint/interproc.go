package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is riolint's interprocedural layer: a module-wide call graph
// over the already-type-checked packages plus per-function dataflow
// summaries. The per-function analyzers (maporder, protpair, ...) see one
// body at a time; the summaries let bufalias and replorder reason about
// what happens to a value after it is passed somewhere else — which
// parameters escape to the heap, a channel, or a goroutine, which returns
// alias which parameters, and whether a function hands back a pooled
// buffer. Everything stays stdlib-only: the graph is built from
// types.Info the Loader already produced.

// Flow classifies how a value leaves a function.
type Flow uint8

const (
	// FlowReturn: the value (or an alias of it) is returned.
	FlowReturn Flow = 1 << iota
	// FlowHeap: the value is stored somewhere that outlives the call —
	// a package-level variable, a field of a pointer, a captured
	// container.
	FlowHeap
	// FlowSend: the value is sent on a channel.
	FlowSend
	// FlowGo: the value is handed to a new goroutine.
	FlowGo
)

func (f Flow) String() string {
	switch {
	case f&FlowHeap != 0:
		return "stored"
	case f&FlowSend != 0:
		return "sent on a channel"
	case f&FlowGo != 0:
		return "handed to a goroutine"
	case f&FlowReturn != 0:
		return "returned"
	}
	return "kept"
}

// A Summary is one function's externally visible dataflow: for each
// regular parameter, how it escapes; and whether the function's results
// can alias a pooled buffer (bufalias's root set).
type Summary struct {
	Params      []Flow
	ReturnsRoot bool
}

func (s *Summary) equal(o *Summary) bool {
	if s.ReturnsRoot != o.ReturnsRoot || len(s.Params) != len(o.Params) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// A FuncNode is one function (or method) with a body in the analyzed
// packages.
type FuncNode struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Callees []*types.Func // static callees inside the analyzed packages
}

// A Program is the interprocedural view of one Run: every function with
// a body, its call graph, and (once build has run) its summaries and
// escape events. Analyzers share it through Pass.Prog.
type Program struct {
	fset  *token.FileSet
	funcs map[*types.Func]*FuncNode
	order []*FuncNode // deterministic: sorted by source position

	built     bool
	summaries map[*types.Func]*Summary
	events    map[*types.Func][]escapeEvent
	reach     map[string]map[*types.Func]bool
}

// An escapeEvent is one place a tracked value leaves its function. The
// taint bitset says which values: bits 0..62 are parameter indices, bit
// 63 (rootBit) marks a pooled-buffer alias.
type escapeEvent struct {
	pos   token.Pos
	flow  Flow
	taint uint64
	desc  string
	// intoPool marks a heap store whose target is itself a pool field:
	// the pool's own bookkeeping (get/put resizing blockPool, refilling
	// readBuf) returns an alias to the pool rather than leaking it.
	intoPool bool
}

const rootBit = 63

func buildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	pr := &Program{
		fset:  fset,
		funcs: make(map[*types.Func]*FuncNode),
		reach: make(map[string]map[*types.Func]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				seen := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(pkg.Info, call); callee != nil && !seen[callee] {
						seen[callee] = true
						node.Callees = append(node.Callees, callee)
					}
					return true
				})
				sort.Slice(node.Callees, func(i, j int) bool {
					return node.Callees[i].FullName() < node.Callees[j].FullName()
				})
				pr.funcs[obj] = node
				pr.order = append(pr.order, node)
			}
		}
	}
	sort.Slice(pr.order, func(i, j int) bool {
		pi, pj := fset.Position(pr.order[i].Decl.Pos()), fset.Position(pr.order[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return pr
}

// staticCallee resolves a call to the *types.Func it invokes, or nil for
// builtins, conversions, function values, and interface calls with no
// static target.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: wire.DecodeRequest.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// build computes every function's summary to a fixpoint, then records
// the final escape events. Summaries only grow (flows accumulate), so
// iteration terminates; the bound is a backstop.
func (pr *Program) build() {
	if pr.built {
		return
	}
	pr.built = true
	pr.summaries = make(map[*types.Func]*Summary, len(pr.order))
	for _, n := range pr.order {
		sig := n.Obj.Type().(*types.Signature)
		pr.summaries[n.Obj] = &Summary{Params: make([]Flow, sig.Params().Len())}
	}
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, n := range pr.order {
			_, sum := pr.analyzeFunc(n)
			if !pr.summaries[n.Obj].equal(sum) {
				pr.summaries[n.Obj] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	pr.events = make(map[*types.Func][]escapeEvent, len(pr.order))
	for _, n := range pr.order {
		evs, _ := pr.analyzeFunc(n)
		pr.events[n.Obj] = evs
	}
}

// summaryOf returns fn's computed summary, or nil for functions outside
// the analyzed packages (stdlib, interface methods): those are assumed
// non-retaining, a documented limitation.
func (pr *Program) summaryOf(fn *types.Func) *Summary {
	return pr.summaries[fn]
}

// reachesName reports whether fn can (transitively) call any function
// whose name is name, through static calls inside the analyzed packages.
func (pr *Program) reachesName(fn *types.Func, name string) bool {
	memo := pr.reach[name]
	if memo == nil {
		memo = make(map[*types.Func]bool)
		pr.reach[name] = memo
	}
	var visit func(f *types.Func, seen map[*types.Func]bool) bool
	visit = func(f *types.Func, seen map[*types.Func]bool) bool {
		if done, ok := memo[f]; ok {
			return done
		}
		if f.Name() == name {
			memo[f] = true
			return true
		}
		if seen[f] {
			return false // cycle: no memo write, resolved by another path
		}
		seen[f] = true
		node := pr.funcs[f]
		if node == nil {
			memo[f] = false
			return false
		}
		for _, c := range node.Callees {
			if visit(c, seen) {
				memo[f] = true
				return true
			}
		}
		memo[f] = false
		return false
	}
	return visit(fn, make(map[*types.Func]bool))
}

// analyzeFunc runs the taint walk over one function body: local taints
// to a fixpoint, then the resulting escape events and summary.
func (pr *Program) analyzeFunc(node *FuncNode) ([]escapeEvent, *Summary) {
	info := node.Pkg.Info
	st := &taintState{
		pr:       pr,
		info:     info,
		paramIdx: make(map[types.Object]int),
		vars:     make(map[types.Object]uint64),
		events:   make(map[string]*escapeEvent),
	}
	idx := 0
	if node.Decl.Type.Params != nil {
		for _, field := range node.Decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					st.paramIdx[obj] = idx
				}
				idx++
			}
		}
	}
	st.sum = &Summary{Params: make([]Flow, idx)}
	if node.Decl.Recv != nil && len(node.Decl.Recv.List) == 1 {
		field := node.Decl.Recv.List[0]
		if len(field.Names) == 1 {
			st.recvObj = info.Defs[field.Names[0]]
			if t := info.TypeOf(field.Type); t != nil {
				_, st.recvPtr = t.Underlying().(*types.Pointer)
			}
		}
	}
	if node.Decl.Type.Results != nil {
		for _, field := range node.Decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					st.resultObjs = append(st.resultObjs, obj)
				}
			}
		}
	}
	st.bodyPos, st.bodyEnd = node.Decl.Body.Pos(), node.Decl.Body.End()
	for i := 0; i < 16; i++ {
		st.changed = false
		st.walk(node.Decl.Body)
		if !st.changed {
			break
		}
	}
	evs := make([]escapeEvent, 0, len(st.events))
	for _, e := range st.events {
		evs = append(evs, *e)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].pos != evs[j].pos {
			return evs[i].pos < evs[j].pos
		}
		if evs[i].flow != evs[j].flow {
			return evs[i].flow < evs[j].flow
		}
		return evs[i].desc < evs[j].desc
	})
	return evs, st.sum
}

// taintState is the per-function walk: which locals alias a parameter or
// a pooled buffer, accumulated flow-insensitively to a fixpoint.
type taintState struct {
	pr         *Program
	info       *types.Info
	paramIdx   map[types.Object]int
	recvObj    types.Object
	recvPtr    bool
	resultObjs []types.Object
	vars       map[types.Object]uint64
	sum        *Summary
	events     map[string]*escapeEvent
	bodyPos    token.Pos
	bodyEnd    token.Pos
	changed    bool
}

func (st *taintState) objOf(id *ast.Ident) types.Object {
	return st.info.ObjectOf(id)
}

func (st *taintState) setVar(obj types.Object, t uint64) {
	if obj == nil || t == 0 {
		return
	}
	if st.vars[obj]&t != t {
		st.vars[obj] |= t
		st.changed = true
	}
}

// escape records that a value with taint t leaves the function via flow.
func (st *taintState) escape(pos token.Pos, flow Flow, t uint64, desc string) {
	st.escapeInto(pos, flow, t, desc, false)
}

func (st *taintState) escapeInto(pos token.Pos, flow Flow, t uint64, desc string, intoPool bool) {
	if t == 0 {
		return
	}
	for i := range st.sum.Params {
		if i < rootBit && t&(1<<uint(i)) != 0 && st.sum.Params[i]&flow != flow {
			st.sum.Params[i] |= flow
			st.changed = true
		}
	}
	if flow == FlowReturn && t&(1<<rootBit) != 0 && !st.sum.ReturnsRoot {
		st.sum.ReturnsRoot = true
		st.changed = true
	}
	key := fmt.Sprintf("%d|%d|%s", pos, flow, desc)
	ev := st.events[key]
	if ev == nil {
		ev = &escapeEvent{pos: pos, flow: flow, desc: desc, intoPool: intoPool}
		st.events[key] = ev
	}
	ev.taint |= t
}

// isPoolTarget reports whether a store destination is itself one of the
// pooled-buffer fields (blockPool, readBuf, ...): the pool's own
// bookkeeping, not a leak.
func (st *taintState) isPoolTarget(lhs ast.Expr) bool {
	switch l := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return poolFields[l.Sel.Name]
	case *ast.IndexExpr:
		if sel, ok := unparen(l.X).(*ast.SelectorExpr); ok {
			return poolFields[sel.Sel.Name]
		}
	}
	return false
}

func (st *taintState) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			st.assign(s)
		case *ast.RangeStmt:
			if t := st.taintOf(s.X); t != 0 && s.Value != nil {
				if id, ok := unparen(s.Value).(*ast.Ident); ok {
					st.setVar(st.objOf(id), t)
				}
			}
		case *ast.SendStmt:
			st.escape(s.Pos(), FlowSend, st.taintOf(s.Value), "sent on a channel")
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				st.escape(s.Pos(), FlowReturn, st.taintOf(r), "returned")
			}
			for _, obj := range st.resultObjs {
				st.escape(s.Pos(), FlowReturn, st.vars[obj], "returned")
			}
		case *ast.GoStmt:
			t := st.taintOf(s.Call.Fun)
			for _, a := range s.Call.Args {
				t |= st.taintOf(a)
			}
			st.escape(s.Pos(), FlowGo, t, "handed to a goroutine")
		case *ast.DeferStmt:
			// A defer runs before return: its args don't outlive the
			// function, so only the callee's own retention matters.
			st.callEffects(s.Call)
		case *ast.CallExpr:
			st.callEffects(s)
		}
		return true
	})
}

// localObj reports whether obj is function-local state (declared inside
// the body, a parameter variable, or a by-value receiver): stores into
// it stay inside the frame.
func (st *taintState) localObj(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if obj.Pos() >= st.bodyPos && obj.Pos() < st.bodyEnd {
		return true
	}
	if _, ok := st.paramIdx[obj]; ok {
		return true
	}
	return obj == st.recvObj && !st.recvPtr
}

func (st *taintState) assign(s *ast.AssignStmt) {
	n := len(s.Lhs)
	rhsT := make([]uint64, n)
	switch {
	case len(s.Rhs) == n:
		for i := range s.Rhs {
			rhsT[i] = st.taintOf(s.Rhs[i])
		}
	case len(s.Rhs) == 1:
		// Multi-value call/comma-ok: over-approximate with the union.
		t := st.taintOf(s.Rhs[0])
		for i := range rhsT {
			rhsT[i] = t
		}
	}
	for i, lhs := range s.Lhs {
		t := rhsT[i]
		if t == 0 {
			continue
		}
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := st.objOf(l)
			if obj == nil {
				continue
			}
			if st.localObj(obj) {
				st.setVar(obj, t)
			} else {
				st.escape(lhs.Pos(), FlowHeap, t, "stored in package-level "+l.Name)
			}
		default:
			// Store through a selector/index/star. Storing into a local
			// container keeps the alias in the frame (the container now
			// carries the taint, and escapes if it later escapes); a
			// store through a pointer-like parameter, a pointer
			// receiver, or any non-local base outlives the call.
			base := baseIdent(lhs)
			var obj types.Object
			if base != nil {
				obj = st.objOf(base)
			}
			heapStore := func() {
				st.escapeInto(lhs.Pos(), FlowHeap, t, "stored in "+types.ExprString(lhs), st.isPoolTarget(lhs))
			}
			switch {
			case obj == nil:
				heapStore()
			case isParam(st.paramIdx, obj):
				if pointerish(obj.Type()) {
					heapStore()
				} else {
					st.setVar(obj, t)
				}
			case st.localObj(obj):
				st.setVar(obj, t)
			default:
				heapStore()
			}
		}
	}
}

// callEffects applies the callee's summary to tainted arguments: passing
// a tracked value to a function that stores/sends/spawns it is an escape
// at the call site.
func (st *taintState) callEffects(call *ast.CallExpr) {
	callee := staticCallee(st.info, call)
	if callee == nil {
		return
	}
	if releaseFuncs[callee.Name()] {
		return // sanctioned pool release, not an escape
	}
	sum := st.pr.summaries[callee]
	if sum == nil {
		return // outside the program: assumed non-retaining
	}
	sig := callee.Type().(*types.Signature)
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= len(sum.Params) {
			break
		}
		fl := sum.Params[pi]
		if fl == 0 {
			continue
		}
		t := st.taintOf(arg)
		if t == 0 {
			continue
		}
		name := callee.Name()
		if fl&FlowHeap != 0 {
			st.escape(arg.Pos(), FlowHeap, t, "passed to "+name+", which retains it")
		}
		if fl&FlowSend != 0 {
			st.escape(arg.Pos(), FlowSend, t, "passed to "+name+", which sends it on a channel")
		}
		if fl&FlowGo != 0 {
			st.escape(arg.Pos(), FlowGo, t, "passed to "+name+", which hands it to a goroutine")
		}
	}
}

// taintOf computes the taint bitset of an expression: which parameters
// and pool roots it may alias.
func (st *taintState) taintOf(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	if t := st.info.TypeOf(e); t != nil && !refLike(t) {
		return 0 // bytes, ints, strings: copies, not aliases
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := st.objOf(x)
		if obj == nil {
			return 0
		}
		t := st.vars[obj]
		if pi, ok := st.paramIdx[obj]; ok && pi < rootBit {
			t |= 1 << uint(pi)
		}
		return t
	case *ast.SelectorExpr:
		if st.isPoolRead(x) {
			return 1 << rootBit
		}
		return st.taintOf(x.X)
	case *ast.CallExpr:
		return st.callResultTaint(x)
	case *ast.IndexExpr:
		return st.taintOf(x.X)
	case *ast.SliceExpr:
		return st.taintOf(x.X)
	case *ast.StarExpr:
		return st.taintOf(x.X)
	case *ast.ParenExpr:
		return st.taintOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return st.taintOf(x.X)
		}
		return 0
	case *ast.TypeAssertExpr:
		return st.taintOf(x.X)
	case *ast.CompositeLit:
		var t uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= st.taintOf(kv.Value)
			} else {
				t |= st.taintOf(el)
			}
		}
		return t
	case *ast.FuncLit:
		// A closure carries every tracked value it captures.
		var t uint64
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := st.objOf(id); obj != nil {
					t |= st.vars[obj]
					if pi, ok := st.paramIdx[obj]; ok && pi < rootBit {
						t |= 1 << uint(pi)
					}
				}
			}
			return true
		})
		return t
	}
	return 0
}

func (st *taintState) callResultTaint(call *ast.CallExpr) uint64 {
	if tv, ok := st.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: aliasing passes through ([]byte(x), Frame(x)).
		if len(call.Args) == 1 {
			return st.taintOf(call.Args[0])
		}
		return 0
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.objOf(id).(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var t uint64
				for _, a := range call.Args {
					t |= st.taintOf(a)
				}
				return t
			}
			return 0 // len, cap, make, copy, min, max: no aliasing out
		}
	}
	callee := staticCallee(st.info, call)
	if callee == nil {
		return 0
	}
	sum := st.pr.summaries[callee]
	if sum == nil {
		return 0
	}
	var t uint64
	if sum.ReturnsRoot {
		t |= 1 << rootBit
	}
	sig := callee.Type().(*types.Signature)
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi < len(sum.Params) && sum.Params[pi]&FlowReturn != 0 {
			t |= st.taintOf(arg)
		}
	}
	return t
}

// isPoolRead reports whether sel reads one of the pooled-buffer roots
// (kernel scratch, fs block pool, fs readBuf) as a struct field.
func (st *taintState) isPoolRead(sel *ast.SelectorExpr) bool {
	if !poolFields[sel.Sel.Name] {
		return false
	}
	s, ok := st.info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// refLike reports whether values of type t can alias underlying storage:
// assigning one around propagates the alias rather than copying bytes.
func refLike(t types.Type) bool {
	return refLike1(t, make(map[types.Type]bool))
}

func refLike1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return refLike1(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike1(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if refLike1(u.At(i).Type(), seen) {
				return true
			}
		}
		return false
	}
	// Pointer, slice, map, chan, func, interface.
	return true
}

func isParam(paramIdx map[types.Object]int, obj types.Object) bool {
	_, ok := paramIdx[obj]
	return ok
}

// pointerish reports whether a value of type t shares storage with its
// origin (so stores through it outlive a by-value copy).
func pointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}
