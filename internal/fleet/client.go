package fleet

import (
	"fmt"
	"time"

	"rio/internal/txn"
	"rio/internal/wire"
)

// ClientStats counts what the routing loop absorbed.
type ClientStats struct {
	Redirects uint64 // StatusMoved hops followed
	Retries   uint64 // re-sends after unreachable / StatusAgain
	Refreshes uint64 // routing-table refreshes from the coordinator
}

// Client routes requests to shard primaries and rides out fleet churn:
// StatusMoved redirects are followed (and remembered), unreachable
// primaries and StatusAgain trigger a routing refresh and a bounded
// retry. The zero value is unusable; Fleet.Client builds one.
//
// Not safe for concurrent use — one client per load goroutine, like the
// server-side TCPClient.
type Client struct {
	tr      Transport
	shards  int
	view    map[int]string // shard -> primary address
	refresh func() *Table  // coordinator's current table
	sleep   func(time.Duration)

	// MaxAttempts bounds the whole retry loop per Do (default 16).
	MaxAttempts int
	// RetryDelay spaces attempts when sleep is set.
	RetryDelay time.Duration

	Stats ClientStats
}

// Client returns a routing client bootstrapped from the fleet's current
// table. sleep may be nil (no backoff — the in-process campaign wants
// attempt-bounded, wall-clock-free retries).
func (f *Fleet) Client(sleep func(time.Duration)) *Client {
	c := &Client{
		tr:          f.tr,
		shards:      f.cfg.Shards,
		view:        make(map[int]string),
		refresh:     f.Table,
		sleep:       sleep,
		MaxAttempts: 16,
	}
	c.adopt(f.Table())
	return c
}

func (c *Client) adopt(t *Table) {
	for _, r := range t.Routes {
		c.view[r.Shard] = r.Primary
	}
}

// Do routes one request and rides out redirects, dead primaries, and
// reconfiguration windows, up to MaxAttempts sends. The response a
// caller finally sees is either terminal or the last retryable status
// when the budget ran out — mirroring server.RetryClient's contract.
func (c *Client) Do(req *wire.Request) (*wire.Response, error) {
	p, ok := txn.CanonicalPath(req.Path)
	if !ok {
		return nil, fmt.Errorf("fleet: malformed path %q", req.Path)
	}
	// Resolve append offsets here, once, before the first send, and pin
	// the result into the caller's request. From then on every retry —
	// this loop's or a caller re-submitting the same request — rewrites
	// the same absolute offset instead of appending again, which is what
	// makes a degraded write ("applied but unacked", StatusAgain) safe
	// to re-send. Fleet nodes refuse Offset < 0 outright for the same
	// reason. The price: two clients appending to one path concurrently
	// may resolve the same offset and overwrite rather than interleave.
	if req.Op == wire.OpWrite && req.Offset < 0 {
		st, err := c.Do(&wire.Request{Op: wire.OpStat, Shard: req.Shard, Path: p})
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case wire.StatusOK:
			req.Offset = st.Size
		case wire.StatusNotFound:
			req.Offset = 0
		default:
			return st, nil
		}
	}
	shard := ShardOf(p, c.shards)
	var last *wire.Response
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.Stats.Retries++
			if c.sleep != nil && c.RetryDelay > 0 {
				c.sleep(c.RetryDelay)
			}
		}
		addr := c.view[shard]
		if addr == "" {
			c.Stats.Refreshes++
			c.adopt(c.refresh())
			addr = c.view[shard]
			if addr == "" {
				lastErr = fmt.Errorf("fleet: no route for shard %d", shard)
				continue
			}
		}
		resp, err := c.tr.Send(ClientName, addr, req)
		if err != nil {
			// The primary's machine is gone or the link is cut. Ask the
			// coordinator where the shard lives now.
			lastErr = err
			c.Stats.Refreshes++
			c.adopt(c.refresh())
			continue
		}
		last, lastErr = resp, nil
		switch resp.Status {
		case wire.StatusMoved:
			c.Stats.Redirects++
			if resp.Msg != "" {
				c.view[shard] = resp.Msg
			} else {
				c.Stats.Refreshes++
				c.adopt(c.refresh())
			}
		case wire.StatusAgain:
			// Replication degraded or a replica mid-warmboot; the
			// coordinator's next tick reconfigures. Refresh and retry.
			c.Stats.Refreshes++
			c.adopt(c.refresh())
		default:
			return resp, nil
		}
	}
	if last != nil {
		return last, nil
	}
	return nil, lastErr
}
