// Txnstore: the transaction-processing case the paper's introduction
// motivates, in two generations.
//
// The first generation is a tiny write-ahead-logged key/value store:
// each commit appends a framed log record and calls fsync — the classic
// pattern whose throughput is limited by synchronous disk writes. On
// Rio, fsync returns immediately because memory already is stable
// storage, so the same WAL runs at memory speed. Each record carries a
// length and checksum frame, so recovery replays exactly the complete
// prefix of the log and discards a torn tail — a torn record is an
// unacked commit, never surfaced as data.
//
// The second generation drops the WAL entirely: commits go through the
// transaction layer (internal/txn), which publishes a commit record
// into the protected cache, applies it to the real files, and erases
// it. Multi-key transactions become atomic across crashes — after a
// warm reboot the log rolls forward and either every write of a
// transaction is visible or none — with no redundant log write on the
// data path beyond the record itself.
//
// Run: go run ./examples/txnstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"

	"rio"
	"rio/internal/txn"
)

// WAL framing: u32 payload length | u64 FNV-1a checksum | payload.
const walHeader = 4 + 8

func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// Store is a WAL-backed key/value store on a simulated machine.
type Store struct {
	sys *rio.System
	log *rio.File
	off int64
	kv  map[string]string
}

// OpenStore initialises the store on a fresh volume.
func OpenStore(sys *rio.System) (*Store, error) {
	f, err := sys.Create("/wal")
	if err != nil {
		return nil, err
	}
	return &Store{sys: sys, log: f, kv: map[string]string{}}, nil
}

// Commit durably applies one put: append the framed record, fsync
// (the durability point — the ack), then apply.
func (s *Store) Commit(key, val string) error {
	payload := []byte(key + "=" + val)
	rec := make([]byte, 0, walHeader+len(payload))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.BigEndian.AppendUint64(rec, fnv1a(payload))
	rec = append(rec, payload...)
	if _, err := s.log.WriteAt(rec, s.off); err != nil {
		return err
	}
	if err := s.log.Sync(); err != nil { // durability point
		return err
	}
	s.off += int64(len(rec))
	s.kv[key] = val
	return nil
}

// parseWAL walks the framed log and returns the complete records'
// payloads plus the number of torn tail bytes discarded. A record
// counts only if its full frame is present and its checksum matches;
// the first short or corrupt frame ends the replay — everything after
// it was never acked, so dropping it is safe, and surfacing it would
// hand the caller a value no commit ever returned for.
func parseWAL(data []byte) (payloads [][]byte, torn int) {
	off := 0
	for {
		if off+walHeader > len(data) {
			return payloads, len(data) - off
		}
		plen := int(binary.BigEndian.Uint32(data[off:]))
		sum := binary.BigEndian.Uint64(data[off+4:])
		if off+walHeader+plen > len(data) {
			return payloads, len(data) - off
		}
		payload := data[off+walHeader : off+walHeader+plen]
		if fnv1a(payload) != sum {
			return payloads, len(data) - off
		}
		payloads = append(payloads, payload)
		off += walHeader + plen
	}
}

// Recover rebuilds the in-memory table from the log after a reboot,
// discarding a torn tail (torn reports how many bytes were dropped).
func Recover(sys *rio.System) (s *Store, records, torn int, err error) {
	data, err := sys.ReadFile("/wal")
	if err != nil {
		return nil, 0, 0, err
	}
	f, err := sys.Open("/wal")
	if err != nil {
		return nil, 0, 0, err
	}
	payloads, torn := parseWAL(data)
	s = &Store{sys: sys, log: f, off: int64(len(data) - torn), kv: map[string]string{}}
	for _, p := range payloads {
		for i := 0; i < len(p); i++ {
			if p[i] == '=' {
				s.kv[string(p[:i])] = string(p[i+1:])
				break
			}
		}
	}
	return s, len(payloads), torn, nil
}

// TxnStore is the WAL-free generation: every key lives in its own file
// under /kv, and a commit is one transaction-layer record covering all
// its puts — published, applied, erased, in that order.
type TxnStore struct {
	sys  *rio.System
	next uint64
}

// OpenTxnStore initialises the store on a fresh volume.
func OpenTxnStore(sys *rio.System) (*TxnStore, error) {
	if err := sys.Mkdir("/kv"); err != nil {
		return nil, err
	}
	return &TxnStore{sys: sys}, nil
}

// Commit atomically applies a set of puts: all become visible and
// durable together, or none do.
func (t *TxnStore) Commit(puts map[string]string) error {
	t.next++
	rec := txn.Record{ID: t.next}
	// Map order does not matter for correctness here — every op lands
	// regardless — but deterministic demos read better.
	keys := make([]string, 0, len(puts))
	for k := range puts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// Remove-then-write inside one record gives replace semantics:
		// OpWrite alone writes at offset 0 and would leave the tail of a
		// longer old value behind. Replay is idempotent — re-running the
		// remove of a missing file is a no-op.
		rec.Ops = append(rec.Ops,
			txn.Op{Kind: txn.OpRemove, Path: "/kv/" + k},
			txn.Op{Kind: txn.OpWrite, Path: "/kv/" + k, Data: []byte(puts[k])})
	}
	l := txn.NewLog(t.sys.Machine().FS)
	if err := l.Publish([]txn.Record{rec}); err != nil {
		return err
	}
	if err := l.Apply(&rec); err != nil {
		return err
	}
	return l.Erase()
}

// Get reads one key.
func (t *TxnStore) Get(key string) (string, error) {
	v, err := t.sys.ReadFile("/kv/" + key)
	return string(v), err
}

// txnRecover rolls the transaction log forward after a reboot:
// committed records complete, torn tails are discarded.
func txnRecover(sys *rio.System) (txn.RecoverStats, error) {
	return txn.NewLog(sys.Machine().FS).Recover()
}

func benchWAL(policy rio.Policy, txns int) (tps float64) {
	s, err := rio.New(rio.Config{Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	store, err := OpenStore(s)
	if err != nil {
		log.Fatal(err)
	}
	start := s.Elapsed()
	for i := 0; i < txns; i++ {
		key := fmt.Sprintf("account%03d", i%100)
		val := fmt.Sprintf("balance=%d", 1000+i)
		if err := store.Commit(key, val); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := s.Elapsed() - start
	return float64(txns) / elapsed.Seconds()
}

func benchTxn(txns int) (tps float64, sys *rio.System, st *TxnStore) {
	s, err := rio.New(rio.Config{Policy: rio.PolicyRio})
	if err != nil {
		log.Fatal(err)
	}
	store, err := OpenTxnStore(s)
	if err != nil {
		log.Fatal(err)
	}
	start := s.Elapsed()
	for i := 0; i < txns; i++ {
		// A transfer: two accounts move in lockstep, atomically.
		from := fmt.Sprintf("account%03d", i%100)
		to := fmt.Sprintf("account%03d", (i+50)%100)
		err := store.Commit(map[string]string{
			from: fmt.Sprintf("balance=%d", 1000-i),
			to:   fmt.Sprintf("balance=%d", 1000+i),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed := s.Elapsed() - start
	return float64(txns) / elapsed.Seconds(), s, store
}

func main() {
	const txns = 500

	diskTPS := benchWAL(rio.PolicyUFSWTWrite, txns)
	fmt.Printf("write-through disk WAL commits: %8.0f txn/s\n", diskTPS)

	rioTPS := benchWAL(rio.PolicyRio, txns)
	fmt.Printf("Rio WAL commits:                %8.0f txn/s (%.0fx)\n",
		rioTPS, rioTPS/diskTPS)

	txnTPS, sys, store := benchTxn(txns)
	fmt.Printf("Rio WAL-free txn commits:       %8.0f txn/s (%.0fx, two-key transfers)\n",
		txnTPS, txnTPS/diskTPS)

	// Same durability, stronger atomicity: crash the OS and warm
	// reboot. The transaction layer's log rolls forward, and every
	// transfer is either fully visible or fully absent — accounts
	// never tear.
	sys.Crash("scheduler deadlock")
	if _, err := sys.WarmReboot(); err != nil {
		log.Fatal(err)
	}
	if _, err := txnRecover(sys); err != nil {
		log.Fatal(err)
	}
	last := txns - 1
	from, err := store.Get(fmt.Sprintf("account%03d", last%100))
	if err != nil {
		log.Fatal(err)
	}
	to, err := store.Get(fmt.Sprintf("account%03d", (last+50)%100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after OS crash + warm reboot: last transfer intact (%s / %s)\n", from, to)
	if from != fmt.Sprintf("balance=%d", 1000-last) || to != fmt.Sprintf("balance=%d", 1000+last) {
		log.Fatal("atomicity violated!")
	}
	fmt.Println("every committed transaction survived, no transfer torn")
}
