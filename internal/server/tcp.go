package server

import (
	"errors"
	"net"

	"rio/internal/wire"
)

// Serve accepts connections on ln and serves each on its own
// goroutine until ln is closed (Accept then returns an error) — the
// caller owns the listener's lifecycle. Each connection is served
// synchronously: one frame in, one frame out, in order. Concurrency
// comes from connections, matching riod's closed-loop clients; the
// shard queues below multiplex them.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one connection's request loop. Any transport or
// decode error ends the connection: the framing carries no resync
// marker, so after a bad frame the stream cannot be trusted.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	buf := make([]byte, 0, 4096)
	for {
		payload, err := wire.ReadFrame(conn, wire.MaxFrame)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// The ID is unknowable from a frame that did not decode;
			// answer ID 0 so the peer sees why, then drop the stream.
			bad := &wire.Response{Status: wire.StatusInvalid, Msg: "bad request frame: " + err.Error()}
			wire.WriteFrame(conn, wire.AppendResponse(buf[:0], bad))
			return
		}
		resp := s.Do(req)
		if err := wire.WriteFrame(conn, wire.AppendResponse(buf[:0], resp)); err != nil {
			return
		}
	}
}
