// Package fleet extends Rio's durability story from OS crashes to
// machine loss. The paper's warm reboot recovers every acked write
// when the operating system goes down, because the file cache's memory
// survives the reboot; when the *machine* goes down — power loss,
// hardware failure — that memory is gone. The fleet answers with the
// classic systems move: keep each shard's protected cache alive on R
// machines, acknowledge a write only after every active peer holds it,
// and promote a backup when the primary's machine is lost.
//
// The layer is built from the same parts as the single-node server:
// each replica is one rio.System (single-threaded, one lock per
// replica), ops are executed through server.Exec on primary and backup
// alike — the same function over the same op sequence is what makes a
// backup's tree byte-equal to its primary's — and replication rides the
// riod wire protocol (OpReplBatch frames inside Request.Data), so a
// backup on another process or another machine is the same code path as
// a backup in the next goroutine.
package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"rio/internal/wire"
)

// Replication frame layout, carried in wire.Request.Data of an
// OpReplBatch:
//
//	magic u32 | epoch u64 | seq u64 | nops u32 | nops×(u32 len, op bytes) | fnv64
//
// Each op is one wire.AppendRequest encoding — the exact request the
// primary executed, with append offsets already resolved to absolute so
// the backup's execution cannot diverge. The trailing FNV-1a 64 covers
// everything before it: replication crosses machines, and a frame that
// arrives damaged must be refused, not applied.
const frameMagic uint32 = 0x52464C31 // "RFL1"

// Batch is one replication unit: the ops a primary executed under one
// sequence number.
type Batch struct {
	Epoch uint64
	Seq   uint64
	Ops   []*wire.Request
}

// maxFrameOps bounds ops per frame; with the wire's per-op bounds this
// keeps any frame under wire.MaxData with room to spare.
const maxFrameOps = 64

// EncodeBatch renders b as a checksummed frame. It fails rather than
// emit a frame larger than wire.MaxData — callers split batches first.
// A zero-op batch is a fence probe: it carries only (epoch, seq), and a
// backup applies nothing — it just answers the epoch check.
func EncodeBatch(b *Batch) ([]byte, error) {
	if len(b.Ops) > maxFrameOps {
		return nil, fmt.Errorf("fleet: batch of %d ops (want 0..%d)", len(b.Ops), maxFrameOps)
	}
	buf := make([]byte, 0, 256)
	buf = binary.BigEndian.AppendUint32(buf, frameMagic)
	buf = binary.BigEndian.AppendUint64(buf, b.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, b.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.Ops)))
	for _, op := range b.Ops {
		enc := wire.AppendRequest(nil, op)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	h := fnv.New64a()
	h.Write(buf)
	buf = binary.BigEndian.AppendUint64(buf, h.Sum64())
	if len(buf) > wire.MaxData {
		return nil, fmt.Errorf("fleet: frame of %d bytes exceeds wire.MaxData", len(buf))
	}
	return buf, nil
}

// DecodeBatch parses and verifies one frame. Any structural damage —
// short buffer, bad magic, bad checksum, an op that does not decode —
// is an error; a backup never applies a frame it cannot fully verify.
func DecodeBatch(buf []byte) (*Batch, error) {
	const head = 4 + 8 + 8 + 4
	if len(buf) < head+8 {
		return nil, fmt.Errorf("fleet: frame truncated (%d bytes)", len(buf))
	}
	body, sum := buf[:len(buf)-8], binary.BigEndian.Uint64(buf[len(buf)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("fleet: frame checksum mismatch")
	}
	if m := binary.BigEndian.Uint32(body); m != frameMagic {
		return nil, fmt.Errorf("fleet: bad frame magic %#x", m)
	}
	b := &Batch{
		Epoch: binary.BigEndian.Uint64(body[4:]),
		Seq:   binary.BigEndian.Uint64(body[12:]),
	}
	nops := binary.BigEndian.Uint32(body[20:])
	if nops > maxFrameOps {
		return nil, fmt.Errorf("fleet: frame declares %d ops", nops)
	}
	rest := body[head:]
	for i := uint32(0); i < nops; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("fleet: frame truncated in op %d", i)
		}
		n := binary.BigEndian.Uint32(rest)
		if n > wire.MaxData {
			return nil, fmt.Errorf("fleet: frame op %d declares %d bytes (max %d)", i, n, wire.MaxData)
		}
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("fleet: frame truncated in op %d body", i)
		}
		op, err := wire.DecodeRequest(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("fleet: frame op %d: %w", i, err)
		}
		b.Ops = append(b.Ops, op)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("fleet: %d trailing bytes after frame ops", len(rest))
	}
	return b, nil
}

// Route is one shard's replica set at one configuration epoch. Primary
// first in spirit: Primary serves clients and replicates; Backups hold
// the shard and stand for promotion.
type Route struct {
	Shard   int
	Epoch   uint64
	Primary string
	Backups []string
}

// Table is the coordinator's routing view, carried to every node in
// heartbeat frames so deposed primaries learn where to redirect.
type Table struct {
	Routes []Route // ascending by Shard
}

// EncodeTable renders t for a heartbeat's Data.
func EncodeTable(t *Table) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(t.Routes)))
	for _, r := range t.Routes {
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Shard))
		buf = binary.BigEndian.AppendUint64(buf, r.Epoch)
		buf = appendStr(buf, r.Primary)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Backups)))
		for _, b := range r.Backups {
			buf = appendStr(buf, b)
		}
	}
	return buf
}

// DecodeTable parses a heartbeat routing table.
func DecodeTable(buf []byte) (*Table, error) {
	d := dec{buf: buf}
	n := d.u32()
	if n > 1<<16 {
		return nil, fmt.Errorf("fleet: table declares %d routes", n)
	}
	t := &Table{}
	for i := uint32(0); i < n; i++ {
		r := Route{Shard: int(d.u32()), Epoch: d.u64(), Primary: d.str()}
		nb := d.u16()
		for j := uint16(0); j < nb; j++ {
			r.Backups = append(r.Backups, d.str())
		}
		t.Routes = append(t.Routes, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("fleet: %d trailing bytes after table", len(d.buf))
	}
	return t, nil
}

// ReplicaStatus is one replica's position, reported in heartbeat
// responses; the coordinator promotes the most-advanced backup by
// (Epoch, Seq) and repairs divergence it sees here.
type ReplicaStatus struct {
	Shard   int
	Role    Role
	Epoch   uint64
	Seq     uint64
	Suspect []string // backups this primary could not reach (sorted)
}

// Role is a replica's place in its shard's replica set.
type Role uint8

const (
	RoleBackup Role = iota
	RolePrimary
	// RoleDeposed marks a former primary fenced by a newer epoch; it
	// serves only StatusMoved until the coordinator reinstalls it.
	RoleDeposed
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	case RoleDeposed:
		return "deposed"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// EncodeStatus renders a node's per-replica status for a heartbeat
// response (ascending by shard).
func EncodeStatus(sts []ReplicaStatus) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(sts)))
	for _, st := range sts {
		buf = binary.BigEndian.AppendUint32(buf, uint32(st.Shard))
		buf = append(buf, byte(st.Role))
		buf = binary.BigEndian.AppendUint64(buf, st.Epoch)
		buf = binary.BigEndian.AppendUint64(buf, st.Seq)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(st.Suspect)))
		for _, s := range st.Suspect {
			buf = appendStr(buf, s)
		}
	}
	return buf
}

// DecodeStatus parses a heartbeat response's status blob.
func DecodeStatus(buf []byte) ([]ReplicaStatus, error) {
	d := dec{buf: buf}
	n := d.u32()
	if n > 1<<16 {
		return nil, fmt.Errorf("fleet: status declares %d replicas", n)
	}
	var sts []ReplicaStatus
	for i := uint32(0); i < n; i++ {
		st := ReplicaStatus{Shard: int(d.u32()), Role: Role(d.u8()), Epoch: d.u64(), Seq: d.u64()}
		ns := d.u16()
		for j := uint16(0); j < ns; j++ {
			st.Suspect = append(st.Suspect, d.str())
		}
		sts = append(sts, st)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("fleet: %d trailing bytes after status", len(d.buf))
	}
	return sts, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// dec is a sticky-error big-endian reader for the fleet's small blobs.
type dec struct {
	buf []byte
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("fleet: blob truncated (want %d bytes, have %d)", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *dec) str() string {
	n := d.u16()
	b := d.take(int(n))
	return string(b)
}
