# Tier-1 gate: `make check` runs the same commands CI should — build,
# vet, tests, and the race detector over the concurrent campaign
# scheduler (scripts/check.sh is the single source of truth).

.PHONY: check build lint test race bench bench-core crash-recovery crash-txn crash-fleet serve-bench scenarios

check:
	sh scripts/check.sh

build:
	go build ./...

# riolint: the repo's own static-analysis suite (internal/lint) — enforces
# the determinism and protection-discipline invariants the compiler can't
# see. Clean tree is a tier-1 gate; see DESIGN.md "Enforced invariants".
lint:
	go run ./cmd/riolint ./...

test:
	go test ./...

race:
	go test -race ./internal/crashtest/... ./internal/warmreboot/... ./internal/disk/... ./internal/fleet/...

bench:
	go test -run '^$$' -bench . -benchtime 1x .

# Core-op microbenchmarks: riobench measures create/unlink/lookup-deep/
# read/write against one simulated machine (host ns/op, allocs/op, and
# simulated µs/op) and writes BENCH_core.json. When a previous snapshot
# exists it is embedded as the baseline, so the fresh report carries its
# own before/after deltas — in CI that compares the run against the
# checked-in snapshot. scripts/benchdiff.sh diffs any two reports.
bench-core:
	@if [ -f BENCH_core.json ]; then \
		cp BENCH_core.json /tmp/bench_core_prev.json; \
		go run ./cmd/riobench -out BENCH_core.json -baseline /tmp/bench_core_prev.json; \
	else \
		go run ./cmd/riobench -out BENCH_core.json; \
	fi

# Double-fault campaign smoke test: a small fixed-seed campaign with
# storage faults and second crashes enabled, diffed against the golden
# report in testdata (the campaign: summary line carries wall time and
# is filtered). Regenerate the golden with `make crash-recovery-golden`
# after an intentional behaviour change.
crash-recovery:
	go run ./cmd/riocrash -runs 2 -seed 1996 -workers 4 -disk-faults -quiet 2>/dev/null \
		| grep -v '^campaign:' | diff -u testdata/crash-recovery.golden -
	@echo "crash-recovery: output matches golden"

# Server smoke benchmark: riod's shard fabric under rioload via the
# in-process transport — 8 connections with 8 pipelined request streams
# each for 10s against 4 shards, plus a 1-shard baseline at the same
# load (the acceptance bar: 4 shards must beat 1, and batch draining
# must actually coalesce: avg_batch > 1.5). The trailing -tcp-probe
# re-serves the same server over loopback TCP so the report also
# carries the scatter-gather writer's frames-per-writev distribution.
# Writes BENCH_server.json (throughput, p50/p95/p99, per-shard
# batching, writev batch sizes).
serve-bench:
	go run ./cmd/rioload -net memory -shards 4 -clients 8 -pipeline 8 \
		-duration 10s -compare 1 -tcp-probe 2s -out BENCH_server.json

# Transactional campaign: the torn-commit hunt. Every multi-file commit
# must be all-or-nothing after crash + recovery; exits nonzero if any
# transaction tears or any recovery aborts.
crash-txn:
	go run ./cmd/riocrash -txn -runs 10 -seed 1996 -disk-faults

# Fleet campaign: machine-loss survival. 55 seed-derived plans (11 per
# fault kind: machine kill, primary partition, backup loss, OS crash,
# pairwise partition); exits nonzero if any acked write fails to read
# back byte-equal or a deposed primary serves a stale read.
crash-fleet:
	go run ./cmd/riocrash -fleet -runs 55 -seed 1996

# Scenario suite smoke: run every checked-in scenario (scenarios/*.json)
# through rioscn twice — once at 1 worker, once at 4 — and diff the
# canonical JSON reports byte-for-byte. Proves the tentpole guarantee
# (any campaign cell reproduces byte-identically at any worker count)
# on every spec the repo ships, and exits nonzero if any scenario
# breaches its zero gates (lost acked writes, torn commits, stale
# reads). The -workers 4 reports land in scenario-reports/, uploaded as
# a CI artifact.
scenarios:
	rm -rf scenario-reports scenario-reports-w1
	go run ./cmd/rioscn -workers 1 -quiet -no-timing -json-dir scenario-reports-w1 scenarios >/dev/null
	go run ./cmd/rioscn -workers 4 -quiet -json-dir scenario-reports scenarios
	diff -r scenario-reports-w1 scenario-reports
	rm -rf scenario-reports-w1
	@echo "scenarios: reports byte-identical at -workers 1 and -workers 4"

crash-recovery-golden:
	mkdir -p testdata
	go run ./cmd/riocrash -runs 2 -seed 1996 -workers 4 -disk-faults -quiet 2>/dev/null \
		| grep -v '^campaign:' > testdata/crash-recovery.golden
