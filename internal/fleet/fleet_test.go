package fleet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"rio/internal/wire"
)

func testFleet(t *testing.T, nodes, shards, replicas int) *Fleet {
	t.Helper()
	f, err := New(Config{Nodes: nodes, Shards: shards, Replicas: replicas, Seed: 1996})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustWrite(t *testing.T, c *Client, path string, data []byte) {
	t.Helper()
	resp, err := c.Do(&wire.Request{Op: wire.OpWrite, Shard: -1, Offset: 0, Path: path, Data: data})
	if err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("write %s: %v (%s)", path, resp.Status, resp.Msg)
	}
}

func mustRead(t *testing.T, c *Client, path string, want []byte) {
	t.Helper()
	resp, err := c.Do(&wire.Request{Op: wire.OpRead, Shard: -1, Path: path})
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("read %s: %v (%s)", path, resp.Status, resp.Msg)
	}
	if !bytes.Equal(resp.Data, want) {
		t.Fatalf("read %s: got %d bytes, want %d (content mismatch)", path, len(resp.Data), len(want))
	}
}

func fill(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + salt
	}
	return b
}

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{Epoch: 3, Seq: 41, Ops: []*wire.Request{
		{ID: 1, Op: wire.OpWrite, Shard: -1, Offset: 128, Path: "/a/b", Data: []byte("payload")},
		{ID: 2, Op: wire.OpMkdir, Shard: -1, Path: "/dir"},
	}}
	frame, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Seq != 41 || len(got.Ops) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Ops[0].Path != "/a/b" || !bytes.Equal(got.Ops[0].Data, []byte("payload")) {
		t.Fatalf("op 0 mangled: %+v", got.Ops[0])
	}
	// Any flipped byte must fail the checksum (or a structural check) —
	// replication crosses machines and damaged frames must never apply.
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, err := DecodeBatch(mut); err == nil {
			t.Fatalf("corrupted byte %d decoded without error", i)
		}
	}
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeBatch(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

// A zero-op batch is the read-fence probe: it must round-trip like any
// frame, carrying only (epoch, seq).
func TestFenceFrameRoundTrip(t *testing.T) {
	frame, err := EncodeBatch(&Batch{Epoch: 9, Seq: 1234})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 9 || got.Seq != 1234 || len(got.Ops) != 0 {
		t.Fatalf("fence frame round trip: %+v", got)
	}
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, err := DecodeBatch(mut); err == nil {
			t.Fatalf("corrupted fence byte %d decoded without error", i)
		}
	}
}

// A frame op that declares more bytes than wire.MaxData must be refused
// by the protocol-maximum check before any slice is sized from the wire
// — even when the frame's checksum is valid, so this is not corruption
// but a malicious or buggy peer. Regression test for the missing bound
// the wirebounds analyzer flagged here.
func TestBatchRejectsOversizedOpLength(t *testing.T) {
	body := binary.BigEndian.AppendUint32(nil, frameMagic)
	body = binary.BigEndian.AppendUint64(body, 3)  // epoch
	body = binary.BigEndian.AppendUint64(body, 41) // seq
	body = binary.BigEndian.AppendUint32(body, 1)  // nops
	body = binary.BigEndian.AppendUint32(body, uint32(wire.MaxData+1))
	h := fnv.New64a()
	h.Write(body)
	frame := binary.BigEndian.AppendUint64(body, h.Sum64())
	_, err := DecodeBatch(frame)
	if err == nil {
		t.Fatal("op declaring more than wire.MaxData bytes decoded without error")
	}
	if !strings.Contains(err.Error(), "declares") {
		t.Fatalf("want the protocol-maximum error, got: %v", err)
	}
}

func TestTableAndStatusRoundTrip(t *testing.T) {
	tab := &Table{Routes: []Route{
		{Shard: 0, Epoch: 7, Primary: "node2", Backups: []string{"node0", "node1"}},
		{Shard: 1, Epoch: 1, Primary: "node0", Backups: nil},
	}}
	got, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tab) {
		t.Fatalf("table round trip:\n got %+v\nwant %+v", got, tab)
	}
	sts := []ReplicaStatus{
		{Shard: 0, Role: RolePrimary, Epoch: 7, Seq: 99, Suspect: []string{"node1"}},
		{Shard: 1, Role: RoleBackup, Epoch: 1, Seq: 3},
	}
	gotSts, err := DecodeStatus(EncodeStatus(sts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSts, sts) {
		t.Fatalf("status round trip:\n got %+v\nwant %+v", gotSts, sts)
	}
}

// Placement must be a pure function of (seed, node set, shard) and must
// move only the lost node's shards when a node disappears.
func TestPlaceDeterministicAndStable(t *testing.T) {
	nodes := []string{"node0", "node1", "node2", "node3"}
	for shard := 0; shard < 16; shard++ {
		a := Place(42, nodes, shard, 2)
		b := Place(42, []string{"node3", "node1", "node0", "node2"}, shard, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d: placement depends on input order: %v vs %v", shard, a, b)
		}
		if a[0] == a[1] {
			t.Fatalf("shard %d: duplicate replica %v", shard, a)
		}
		// Removing a node not in the set must not move the shard.
		for _, gone := range nodes {
			if gone == a[0] || gone == a[1] {
				continue
			}
			var rest []string
			for _, n := range nodes {
				if n != gone {
					rest = append(rest, n)
				}
			}
			c := Place(42, rest, shard, 2)
			if !reflect.DeepEqual(a, c) {
				t.Fatalf("shard %d: removing bystander %s moved placement %v -> %v", shard, gone, a, c)
			}
		}
	}
}

// The basic loop: writes ack, reads see them, and each acked write is
// on every replica (snapshot the backup and check).
func TestFleetWriteReplicates(t *testing.T) {
	f := testFleet(t, 3, 2, 2)
	cl := f.Client(nil)
	for i := 0; i < 8; i++ {
		mustWrite(t, cl, fmt.Sprintf("/data/k%02d", i), fill(100+i, byte(i)))
	}
	for i := 0; i < 8; i++ {
		mustRead(t, cl, fmt.Sprintf("/data/k%02d", i), fill(100+i, byte(i)))
	}
	nm := f.NodeMetrics()
	if nm.ReplSent == 0 || nm.ReplApplied != nm.ReplSent {
		t.Fatalf("replication did not run: %+v", nm)
	}
	// Every backup replica holds what its primary holds.
	for _, rt := range f.Table().Routes {
		prim := f.Node(rt.Primary).replicaFor(rt.Shard)
		prim.mu.Lock()
		want, err := buildSnapshot(prim)
		prim.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range rt.Backups {
			rep := f.Node(b).replicaFor(rt.Shard)
			rep.mu.Lock()
			got, err := buildSnapshot(rep)
			rep.mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("shard %d: backup %s diverged from primary %s", rt.Shard, b, rt.Primary)
			}
		}
	}
}

// Machine loss of a primary: the coordinator notices via missed
// heartbeats, promotes the backup, clients follow the redirect, and
// every previously acked write reads back byte-equal.
func TestFleetSurvivesPrimaryKill(t *testing.T) {
	f := testFleet(t, 3, 2, 2)
	cl := f.Client(nil)
	acked := map[string][]byte{}
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("/pre/k%02d", i)
		acked[p] = fill(64+i, byte(i))
		mustWrite(t, cl, p, acked[p])
	}
	victim := f.Table().Routes[0].Primary
	f.Kill(victim)
	for i := 0; i < 4; i++ { // MissThreshold=3 to declare, one more to repair
		f.Tick()
	}
	if got := f.Table().Routes[0].Primary; got == victim {
		t.Fatalf("shard 0 primary still the killed node %s", victim)
	}
	if f.Metrics().Promotions == 0 {
		t.Fatal("no promotion recorded")
	}
	// Every acked write survives the machine loss.
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("/pre/k%02d", i)
		mustRead(t, cl, p, acked[p])
	}
	// And the fleet takes new writes (repair restored R=2 from the spare).
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/post/k%02d", i)
		mustWrite(t, cl, p, fill(32+i, byte(i)))
		mustRead(t, cl, p, fill(32+i, byte(i)))
	}
	if cl.Stats.Redirects+cl.Stats.Refreshes == 0 {
		t.Fatal("client never rerouted — the kill was invisible?")
	}
}

// A fully partitioned primary is indistinguishable from a dead one
// until the partition heals: promotion happens, and on heal the old
// primary is fenced by the new epoch — its replication frames get
// StatusMoved and it serves only redirects.
func TestFleetPartitionFencesOldPrimary(t *testing.T) {
	f := testFleet(t, 3, 2, 2)
	cl := f.Client(nil)
	mustWrite(t, cl, "/a", fill(50, 1))
	old := f.Table().Routes[0].Primary
	f.Isolate(old)
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	next := f.Table().Routes[0].Primary
	if next == old {
		t.Fatalf("no promotion away from isolated %s", old)
	}
	mustWrite(t, cl, "/b", fill(51, 2))

	f.Rejoin(old)
	// The old primary still believes it owns shard 0. Its next
	// replication attempt must be fenced, after which it redirects.
	shard0 := f.Table().Routes[0]
	var pathOnShard0 string
	for i := 0; ; i++ {
		p := fmt.Sprintf("/fence/k%02d", i)
		if ShardOf(p, 2) == 0 {
			pathOnShard0 = p
			break
		}
	}
	resp := f.Node(old).Serve(ClientName,
		&wire.Request{Op: wire.OpWrite, Shard: -1, Offset: 0, Path: pathOnShard0, Data: []byte("stale")})
	if resp.Status != wire.StatusMoved && resp.Status != wire.StatusAgain {
		t.Fatalf("stale primary accepted a write: %v (%s)", resp.Status, resp.Msg)
	}
	f.Tick() // heartbeat reconciles the rejoined node's view
	resp = f.Node(old).Serve(ClientName,
		&wire.Request{Op: wire.OpWrite, Shard: -1, Offset: 0, Path: pathOnShard0, Data: []byte("stale")})
	if resp.Status != wire.StatusMoved {
		t.Fatalf("deposed primary did not redirect: %v (%s)", resp.Status, resp.Msg)
	}
	if resp.Msg != shard0.Primary {
		t.Fatalf("redirect to %q, want current primary %q", resp.Msg, shard0.Primary)
	}
	// Acked writes from before and during the partition both survive.
	mustRead(t, cl, "/a", fill(50, 1))
	mustRead(t, cl, "/b", fill(51, 2))
}

// Losing a backup degrades writes (ack-after-replicate refuses to lie)
// until the coordinator evicts the dead peer and re-replicates onto a
// spare; no acked write is lost and service resumes.
func TestFleetSurvivesBackupKill(t *testing.T) {
	f := testFleet(t, 3, 2, 2)
	cl := f.Client(nil)
	mustWrite(t, cl, "/pre", fill(40, 9))
	rt := f.Table().Routes[0]
	victim := rt.Backups[0]
	f.Kill(victim)

	// The very next write to shard 0 cannot ack (its backup is gone):
	// a direct, attempt-bounded client send sees StatusAgain.
	one := f.Client(nil)
	one.MaxAttempts = 1
	var p0 string
	for i := 0; ; i++ {
		p := fmt.Sprintf("/deg/k%02d", i)
		if ShardOf(p, 2) == 0 {
			p0 = p
			break
		}
	}
	resp, err := one.Do(&wire.Request{Op: wire.OpWrite, Shard: -1, Offset: 0, Path: p0, Data: fill(8, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusAgain {
		t.Fatalf("write acked with a dead backup: %v (%s)", resp.Status, resp.Msg)
	}

	// Eviction (suspect report) and repair (snapshot onto the spare)
	// happen on the next ticks; then the same write acks.
	f.Tick()
	f.Tick()
	mustWrite(t, cl, p0, fill(8, 3))
	mustRead(t, cl, "/pre", fill(40, 9))
	mustRead(t, cl, p0, fill(8, 3))
	if f.Metrics().Reconfigs == 0 {
		t.Fatal("dead backup never evicted")
	}
}

// An OS crash is not a machine loss: the protected cache survives, warm
// reboot restores the tree and the replication position, and no
// promotion or snapshot is needed.
func TestFleetOSCrashWarmboots(t *testing.T) {
	f := testFleet(t, 3, 2, 2)
	cl := f.Client(nil)
	acked := map[string][]byte{}
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/os/k%02d", i)
		acked[p] = fill(90+i, byte(i))
		mustWrite(t, cl, p, acked[p])
	}
	victim := f.Table().Routes[0].Primary
	n := f.Node(victim)
	st := n.Status()
	n.CrashNode()
	if err := n.WarmbootNode(); err != nil {
		t.Fatalf("warmboot: %v", err)
	}
	if got := n.Status(); !reflect.DeepEqual(got, st) {
		t.Fatalf("replica positions changed across warm reboot:\n got %+v\nwant %+v", got, st)
	}
	for p, want := range map[string][]byte{"/os/k00": acked["/os/k00"]} {
		mustRead(t, cl, p, want)
	}
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/os/k%02d", i)
		mustRead(t, cl, p, acked[p])
	}
	if f.Table().Routes[0].Primary != victim {
		t.Fatal("warm reboot triggered a promotion; it must not")
	}
	mustWrite(t, cl, "/os/after", fill(10, 1))
	mustRead(t, cl, "/os/after", fill(10, 1))
}

// Snapshot + install must reproduce the tree byte-for-byte, and a
// revived (empty) machine must be repaired back into the replica set.
// R=3 on 3 nodes, so the killed node's capacity cannot be replaced by
// a spare — the revived machine itself must be recruited back.
func TestFleetReviveRepairsBySnapshot(t *testing.T) {
	f := testFleet(t, 3, 2, 3)
	cl := f.Client(nil)
	for i := 0; i < 6; i++ {
		mustWrite(t, cl, fmt.Sprintf("/sn/k%02d", i), fill(70+i, byte(i)))
	}
	victim := f.Table().Routes[0].Primary
	f.Kill(victim)
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	f.Revive(victim)
	f.Tick()
	// The revived machine must hold a fresh replica of every shard it
	// was recruited for, byte-identical to the primary.
	reinstalled := 0
	for _, rt := range f.Table().Routes {
		if !contains(rt.Backups, victim) && rt.Primary != victim {
			continue
		}
		reinstalled++
		prim := f.Node(rt.Primary).replicaFor(rt.Shard)
		prim.mu.Lock()
		want, err := buildSnapshot(prim)
		prim.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		rep := f.Node(victim).replicaFor(rt.Shard)
		if rep == nil {
			t.Fatalf("revived node recruited for shard %d but holds no replica", rt.Shard)
		}
		rep.mu.Lock()
		got, err := buildSnapshot(rep)
		rep.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shard %d: reinstalled replica diverges from primary", rt.Shard)
		}
	}
	if reinstalled == 0 {
		t.Fatal("revived node never recruited back into any replica set")
	}
	if f.Metrics().Repairs == 0 {
		t.Fatal("no snapshot repair recorded")
	}
	for i := 0; i < 6; i++ {
		mustRead(t, cl, fmt.Sprintf("/sn/k%02d", i), fill(70+i, byte(i)))
	}
}

// Append retries must be idempotent end to end: the node refuses
// relative offsets outright, the client resolves the append offset once
// and pins it into the request, and a caller re-sending that same
// request across a degraded window ("applied but unacked") rewrites the
// same bytes instead of appending them again.
func TestFleetAppendRetryIdempotent(t *testing.T) {
	f := testFleet(t, 3, 1, 2) // one shard: every path lands on it
	cl := f.Client(nil)
	head := fill(40, 1)
	tail := fill(24, 2)
	mustWrite(t, cl, "/log", head)

	// A raw relative offset never reaches execution — re-resolving it on
	// retry is exactly how appends used to duplicate.
	prim := f.Table().Routes[0].Primary
	raw := f.Node(prim).Serve(ClientName,
		&wire.Request{Op: wire.OpWrite, Shard: -1, Offset: -1, Path: "/log", Data: tail})
	if raw.Status != wire.StatusInvalid {
		t.Fatalf("relative offset accepted by the node: %v (%s)", raw.Status, raw.Msg)
	}

	// The client resolves the offset once and writes it back into the
	// request, so the request itself becomes retry-safe.
	req := &wire.Request{Op: wire.OpWrite, Shard: -1, Offset: -1, Path: "/log", Data: tail}
	resp, err := cl.Do(req)
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("append: %v %v", err, resp)
	}
	if req.Offset != int64(len(head)) {
		t.Fatalf("append offset not pinned: %d, want %d", req.Offset, len(head))
	}
	want := append(append([]byte(nil), head...), tail...)
	mustRead(t, cl, "/log", want)

	// Kill the backup and re-send the very same request: the primary
	// applies it (at the pinned offset) but cannot ack — the degraded
	// window. The caller's retry after reconfiguration must leave the
	// file byte-identical, not longer.
	f.Kill(f.Table().Routes[0].Backups[0])
	one := f.Client(nil)
	one.MaxAttempts = 1
	resp, err = one.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusAgain {
		t.Fatalf("degraded append: got %v (%s), want StatusAgain", resp.Status, resp.Msg)
	}
	f.Tick() // evict the dead backup
	f.Tick() // repair onto the spare
	resp, err = cl.Do(req)
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("append retry after reconfiguration: %v %v", err, resp)
	}
	mustRead(t, cl, "/log", want)
}

// A pairwise partition leaves the old primary reachable by clients but
// blind to its peers and the coordinator. After the promotion it never
// heard about, it must refuse reads (the read fence) rather than serve
// stale bytes, and after healing it must redirect.
func TestFleetPairwiseCutReadFenced(t *testing.T) {
	f := testFleet(t, 3, 1, 2)
	cl := f.Client(nil)
	v1 := fill(64, 3)
	mustWrite(t, cl, "/a", v1)

	old := f.Table().Routes[0].Primary
	tr := f.Transport()
	for _, id := range f.NodeIDs() {
		if id != old {
			tr.Cut(old, id)
		}
	}
	tr.Cut(old, CoordName) // clients still reach old
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	if f.Table().Routes[0].Primary == old {
		t.Fatalf("no promotion away from pair-partitioned %s", old)
	}

	// Rewrite /a through the new primary; same length, different bytes.
	v2 := append([]byte(nil), v1...)
	for i := range v2 {
		v2[i] ^= 0x5A
	}
	fresh := f.Client(nil)
	mustWrite(t, fresh, "/a", v2)

	// The old primary still believes it owns the shard and clients can
	// still reach it. Serving this read would return v1 — stale.
	resp := f.Node(old).Serve(ClientName, &wire.Request{Op: wire.OpRead, Shard: -1, Path: "/a"})
	if resp.Status == wire.StatusOK {
		t.Fatalf("deposed primary served a read: %d bytes (stale=%v)",
			len(resp.Data), !bytes.Equal(resp.Data, v2))
	}

	// After healing, the heartbeat reconciles it and reads redirect.
	f.Rejoin(old)
	f.Tick()
	resp = f.Node(old).Serve(ClientName, &wire.Request{Op: wire.OpRead, Shard: -1, Path: "/a"})
	if resp.Status != wire.StatusMoved {
		t.Fatalf("healed deposed primary: got %v (%s), want StatusMoved", resp.Status, resp.Msg)
	}
	mustRead(t, cl, "/a", v2)
}

// An epoch adopted on promotion must be persisted immediately, not on
// the next write: a promoted primary that warm-reboots before writing
// must come back at the promoted epoch, or its frames would be fenced
// and the shard would blip unavailable until the next heartbeat.
func TestFleetPromotedEpochSurvivesWarmboot(t *testing.T) {
	f := testFleet(t, 3, 1, 2)
	cl := f.Client(nil)
	mustWrite(t, cl, "/pre", fill(32, 7))

	old := f.Table().Routes[0].Primary
	f.Kill(old)
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	next := f.Table().Routes[0].Primary
	if next == old {
		t.Fatal("no promotion happened")
	}
	n := f.Node(next)
	before := n.Status()
	n.CrashNode()
	if err := n.WarmbootNode(); err != nil {
		t.Fatalf("warmboot: %v", err)
	}
	after := n.Status()
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("promoted epoch regressed across warm reboot:\n got %+v\nwant %+v", after, before)
	}
	// No deposition blip: the rebooted primary serves immediately.
	mustWrite(t, cl, "/post", fill(16, 8))
	mustRead(t, cl, "/pre", fill(32, 7))
	mustRead(t, cl, "/post", fill(16, 8))
}

// Fleet nodes refuse the transaction ops — transactions are the
// single-node server's feature, and silently accepting them without
// replicating staged state would be a lie.
func TestFleetRefusesTxnOps(t *testing.T) {
	f := testFleet(t, 2, 1, 2)
	prim := f.Table().Routes[0].Primary
	for _, op := range []wire.Op{wire.OpTxnBegin, wire.OpTxnCommit, wire.OpTxnAbort} {
		resp := f.Node(prim).Serve(ClientName, &wire.Request{Op: op, Shard: -1, Path: "/x", Txn: 1})
		if resp.Status != wire.StatusInvalid {
			t.Fatalf("%v: got %v, want StatusInvalid", op, resp.Status)
		}
	}
}

// The reserved metadata prefix is unreachable from clients.
func TestFleetReservedPath(t *testing.T) {
	f := testFleet(t, 2, 1, 2)
	cl := f.Client(nil)
	for _, p := range []string{"/.fleet/seq", "/.fleet", ".fleet/seq", "/.fleet/seq/"} {
		resp, err := cl.Do(&wire.Request{Op: wire.OpWrite, Shard: -1, Offset: 0, Path: p, Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusInvalid {
			t.Fatalf("write to %q: got %v, want StatusInvalid", p, resp.Status)
		}
	}
	// A path with an empty component never reaches the reservation
	// check: it is refused as malformed at routing time.
	if _, err := cl.Do(&wire.Request{Op: wire.OpWrite, Shard: -1, Path: "//.fleet//seq", Data: []byte("x")}); err == nil {
		t.Fatal("malformed alias of the reserved path was routed")
	}
}
