// Package protfix is a protpair violating fixture. writeBlockUnpaired
// is a regression-test reconstruction of the motivating invariant
// violation: the write-permission window opens and never closes, so the
// frame sits writable for the rest of the run and any wild store lands
// silently — exactly what the paper's protection discipline exists to
// prevent.
package protfix

type mmu struct{}

func (m *mmu) SetFrameProtection(frame int, protected bool) {}

type kern struct {
	mmu mmu
}

func store(frame int) error { return nil }

// writeBlockUnpaired opens the window and forgets to close it.
func (k *kern) writeBlockUnpaired(frame int) {
	k.mmu.SetFrameProtection(frame, false) // want protpair "never re-protected"
	store(frame)
}

// writeBlockEscapes closes the window on the happy path only: the error
// return escapes with the frame still writable.
func (k *kern) writeBlockEscapes(frame int) error {
	k.mmu.SetFrameProtection(frame, false) // want protpair "escapes"
	if err := store(frame); err != nil {
		return err
	}
	k.mmu.SetFrameProtection(frame, true)
	return nil
}

// writeBlockWrongFrame re-protects a different frame than it opened.
func (k *kern) writeBlockWrongFrame(a, b int) {
	k.mmu.SetFrameProtection(a, false) // want protpair "never re-protected"
	store(a)
	k.mmu.SetFrameProtection(b, true)
}

// closureDoesNotCount stashes the re-protect in a closure that may never
// run; the window is not provably closed on any path.
func (k *kern) closureDoesNotCount(frame int) func() {
	k.mmu.SetFrameProtection(frame, false) // want protpair "never re-protected"
	return func() {
		k.mmu.SetFrameProtection(frame, true)
	}
}
