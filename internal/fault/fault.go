// Package fault implements the paper's thirteen fault models (§3.1).
//
// The models fall into three groups, mirroring the paper's taxonomy:
//
//	bit flips        — kernel text, heap, and stack bit flips
//	low-level faults — corrupt source/destination registers, delete
//	                   branches, delete random instructions
//	high-level faults— imitations of specific C programming errors:
//	                   missing initialisation, corrupted pointers,
//	                   premature free (allocation management), bcopy
//	                   overruns, off-by-one comparisons, and elided lock
//	                   operations (synchronization)
//
// Text-level faults mutate the kernel's instruction words in place, exactly
// as the paper's injector modified Digital Unix object code. Behavioural
// faults (allocation, copy overrun, synchronization) arm hooks on the
// kernel runtime that fire on a random cadence during subsequent execution.
package fault

import (
	"fmt"

	"rio/internal/kernel"
	"rio/internal/kvm"
	"rio/internal/machine"
	"rio/internal/sim"
)

// Type enumerates the fault models.
type Type int

const (
	TextFlip     Type = iota // flip a bit in kernel text
	HeapFlip                 // flip a bit in the kernel heap
	StackFlip                // flip a bit in the kernel stack
	DestReg                  // change an instruction's destination register
	SrcReg                   // change an instruction's source register
	DeleteBranch             // delete a branch instruction
	DeleteRandom             // delete a random instruction
	Init                     // delete a procedure's initialisation prologue
	Pointer                  // delete the instruction computing a base register
	Alloc                    // malloc prematurely frees the new block
	CopyOverrun              // bcopy copies extra bytes
	OffByOne                 // > becomes >=, < becomes <=, and so on
	Sync                     // lock acquire/release elided

	NumTypes // sentinel
)

// AllTypes lists every fault model, in the paper's Table 1 order.
var AllTypes = []Type{
	TextFlip, HeapFlip, StackFlip,
	DestReg, SrcReg, DeleteBranch, DeleteRandom,
	Init, Pointer, Alloc, CopyOverrun, OffByOne, Sync,
}

var typeNames = [...]string{
	"kernel text", "kernel heap", "kernel stack",
	"destination reg", "source reg", "delete branch", "delete random inst",
	"initialization", "pointer", "allocation", "copy overrun",
	"off-by-one", "synchronization",
}

func (t Type) String() string {
	if t >= 0 && int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// DefaultCount is how many faults one run injects (the paper injects 20
// per run to raise the odds that one is triggered).
const DefaultCount = 20

// Inject applies count faults of type t to a booted machine. Text faults
// mutate m.Text immediately; behavioural faults arm runtime hooks whose
// cadence is scaled to this simulator's call volumes (the paper's "every
// 1000-4000 calls ≈ every 15 seconds" on a real kernel).
//
// Structural text faults (register rewrites, deleted instructions,
// off-by-one swaps) are capped at a density proportional to this kernel's
// text size: the paper's 20 faults land in millions of instructions, most
// never executed before the crash, while every instruction here runs on
// every operation.
func Inject(m *machine.Machine, t Type, count int, rng *sim.Rand) error {
	structural := count
	if max := 1 + m.Text.Len()/64; structural > max {
		structural = max
	}
	switch t {
	case TextFlip:
		all := make([]int, m.Text.Len())
		for pc := range all {
			all[pc] = pc
		}
		for i := 0; i < count; i++ {
			m.Text.FlipBit(pickPC(m, rng, all), uint(rng.Intn(64)))
		}
	case HeapFlip:
		// Target live kernel objects (buffer headers, allocator chain),
		// as in a real kernel whose heap is dense with such structures.
		blocks := m.Kernel.Heap.AllocatedBlocks()
		for i := 0; i < count; i++ {
			var addr uint64
			if len(blocks) > 0 && rng.Float64() < 0.8 {
				b := blocks[rng.Intn(len(blocks))]
				// Include the 16-byte header preceding the payload.
				addr = b[0] - 16 + uint64(rng.Intn(int(b[1])+16))
			} else {
				addr = kernel.HeapBase + uint64(rng.Intn(kernel.HeapSize))
			}
			m.Mem.FlipBit(kernel.HeapPhys(addr), uint(rng.Intn(8)))
		}
	case StackFlip:
		armStackFlip(m, rng)
	case DestReg:
		mutateInstrs(m, structural, rng, hasDest, func(in *kvm.Instr) {
			in.Rd = uint8(rng.Intn(kvm.NumRegs))
		})
	case SrcReg:
		mutateInstrs(m, structural, rng, hasSource, func(in *kvm.Instr) {
			if rng.Bool() {
				in.Rs1 = uint8(rng.Intn(kvm.NumRegs))
			} else {
				in.Rs2 = uint8(rng.Intn(kvm.NumRegs))
			}
		})
	case DeleteBranch:
		mutateInstrs(m, structural, rng,
			func(in kvm.Instr) bool { return in.Op.IsBranch() || in.Op == kvm.OpJmp },
			func(in *kvm.Instr) { *in = kvm.Instr{Op: kvm.OpNop} })
	case DeleteRandom:
		all := make([]int, m.Text.Len())
		for pc := range all {
			all[pc] = pc
		}
		for i := 0; i < structural; i++ {
			m.Text.SetWord(pickPC(m, rng, all), kvm.Instr{Op: kvm.OpNop}.Encode())
		}
	case Init:
		var entries []int
		for _, p := range m.Text.Procs() {
			entries = append(entries, p.Entry)
		}
		for i := 0; i < structural; i++ {
			entry := pickPC(m, rng, entries)
			p, _ := m.Text.ProcAt(entry)
			for pc := p.Entry; pc < p.Entry+p.Prolog; pc++ {
				m.Text.SetWord(pc, kvm.Instr{Op: kvm.OpNop}.Encode())
			}
		}
	case Pointer:
		injectPointer(m, structural, rng)
	case Alloc:
		armAllocFault(m, rng)
	case CopyOverrun:
		armCopyOverrun(m, rng)
	case OffByOne:
		// Branch-level proportionality: nearly half of this kernel's
		// relational comparisons guard file-cache copy boundaries, where
		// a swapped <= silently moves one extra byte on *every* copy. In
		// a real kernel such guard branches are a minuscule fraction of
		// all comparisons, so an off-by-one fault almost never lands on
		// one. Two mutations with a 97% ballast preference keep the
		// per-guard exposure at the paper's scale (see DESIGN.md §4b).
		n := structural
		if n > 2 {
			n = 2
		}
		mutateInstrsBias(m, n, rng, 0.97,
			func(in kvm.Instr) bool { return relationalSwap(in.Op) != in.Op },
			func(in *kvm.Instr) { in.Op = relationalSwap(in.Op) })
	case Sync:
		armSyncFault(m, rng)
	default:
		return fmt.Errorf("fault: unknown type %d", t)
	}
	return nil
}

// BallastBias is the probability that a text-targeting fault lands in the
// kernel's background (ballast) code rather than the file-cache data path.
// The simulated kernel's text is roughly half data path by construction;
// in Digital Unix the data path was a vanishing fraction of millions of
// instructions, so a uniformly placed fault almost always hit unrelated
// code. The bias restores that proportion without inflating the simulator.
const BallastBias = 0.85

// ballastStart returns the first instruction address of the ballast
// region (procedures after the core file-cache path).
func ballastStart(m *machine.Machine) int {
	if p, ok := m.Text.Proc(kernel.BallastProcs[0]); ok {
		return p.Entry
	}
	return m.Text.Len()
}

// pickPC selects a fault site from candidates with the ballast bias.
func pickPC(m *machine.Machine, rng *sim.Rand, candidates []int) int {
	return pickPCBias(m, rng, candidates, BallastBias)
}

// pickPCBias selects a fault site preferring ballast code with the given
// probability.
func pickPCBias(m *machine.Machine, rng *sim.Rand, candidates []int, bias float64) int {
	split := ballastStart(m)
	var core, ballast []int
	for _, pc := range candidates {
		if pc >= split {
			ballast = append(ballast, pc)
		} else {
			core = append(core, pc)
		}
	}
	if len(ballast) > 0 && (len(core) == 0 || rng.Float64() < bias) {
		return ballast[rng.Intn(len(ballast))]
	}
	return core[rng.Intn(len(core))]
}

func hasDest(in kvm.Instr) bool {
	switch in.Op {
	case kvm.OpMovI, kvm.OpMovHi, kvm.OpMov, kvm.OpAdd, kvm.OpSub,
		kvm.OpAddI, kvm.OpAnd, kvm.OpOr, kvm.OpXor, kvm.OpShlI,
		kvm.OpShrI, kvm.OpLd, kvm.OpLdB, kvm.OpPop:
		return true
	}
	return false
}

func hasSource(in kvm.Instr) bool {
	switch in.Op {
	case kvm.OpMov, kvm.OpAdd, kvm.OpSub, kvm.OpAddI, kvm.OpAnd, kvm.OpOr,
		kvm.OpXor, kvm.OpShlI, kvm.OpShrI, kvm.OpLd, kvm.OpSt, kvm.OpLdB,
		kvm.OpStB, kvm.OpPush:
		return true
	}
	return false
}

// relationalSwap swaps strict and non-strict comparisons (the off-by-one
// fault: > vs >=, < vs <=). Non-relational ops map to themselves.
func relationalSwap(op kvm.Op) kvm.Op {
	switch op {
	case kvm.OpBlt:
		return kvm.OpBle
	case kvm.OpBle:
		return kvm.OpBlt
	case kvm.OpBgt:
		return kvm.OpBge
	case kvm.OpBge:
		return kvm.OpBgt
	}
	return op
}

// mutateInstrs rewrites up to count instructions matched by sel.
func mutateInstrs(m *machine.Machine, count int, rng *sim.Rand,
	sel func(kvm.Instr) bool, mutate func(*kvm.Instr)) {
	mutateInstrsBias(m, count, rng, BallastBias, sel, mutate)
}

// mutateInstrsBias is mutateInstrs with an explicit ballast preference.
func mutateInstrsBias(m *machine.Machine, count int, rng *sim.Rand, bias float64,
	sel func(kvm.Instr) bool, mutate func(*kvm.Instr)) {
	// Collect candidates once; mutations may overlap, as real injectors'
	// do.
	var candidates []int
	for pc := 0; pc < m.Text.Len(); pc++ {
		if sel(m.Text.At(pc)) {
			candidates = append(candidates, pc)
		}
	}
	if len(candidates) == 0 {
		return
	}
	for i := 0; i < count; i++ {
		pc := pickPCBias(m, rng, candidates, bias)
		in := m.Text.At(pc)
		mutate(&in)
		m.Text.SetWord(pc, in.Encode())
	}
}

// injectPointer implements the pointer-corruption model: find a load or
// store, then delete the most recent prior instruction that modifies its
// base register (never the stack pointer, which the paper excludes).
func injectPointer(m *machine.Machine, count int, rng *sim.Rand) {
	type site struct{ def int }
	var sites []site
	for pc := 0; pc < m.Text.Len(); pc++ {
		in := m.Text.At(pc)
		if !in.Op.IsMemAccess() || in.Rs1 == kvm.SP {
			continue
		}
		base := in.Rs1
		proc, ok := m.Text.ProcAt(pc)
		if !ok {
			continue
		}
		for back := pc - 1; back >= proc.Entry; back-- {
			prev := m.Text.At(back)
			if hasDest(prev) && prev.Rd == base {
				sites = append(sites, site{def: back})
				break
			}
		}
	}
	if len(sites) == 0 {
		return
	}
	defs := make([]int, len(sites))
	for i, s := range sites {
		defs[i] = s.def
	}
	for i := 0; i < count; i++ {
		m.Text.SetWord(pickPC(m, rng, defs), kvm.Instr{Op: kvm.OpNop}.Encode())
	}
}

// armStackFlip flips bits in the *live* portion of the kernel stack —
// saved return addresses and spilled registers above the current SP — at
// procedure entries. Flipping only between operations would be harmless
// here (each kernel entry rebuilds its frames), unlike a real kernel whose
// stacks hold long-lived interrupted frames; the hook recreates the
// paper's exposure.
func armStackFlip(m *machine.Machine, rng *sim.Rand) {
	next := rng.Range(80, 320)
	hook := func(v *kvm.VM) {
		next--
		if next > 0 {
			return
		}
		next = rng.Range(80, 320)
		sp := v.Reg[kvm.SP]
		if sp < kernel.StackLimit || sp >= kernel.StackTop {
			return
		}
		live := int(kernel.StackTop - sp)
		if live <= 0 {
			return
		}
		for i := 0; i < 4; i++ {
			addr := sp + uint64(rng.Intn(live))
			m.Mem.FlipBit(kernel.StackPhys(addr), uint(rng.Intn(8)))
		}
	}
	// Hook every procedure that is reached by call (pushes frames).
	for _, p := range m.Text.Procs() {
		m.Kernel.VM.EntryHooks[p.Entry] = hook
	}
}

// armAllocFault makes malloc occasionally free the block it just returned
// after a short delay. The cadence is scaled down from the paper's
// 1000-4000 calls to this simulator's allocation volume.
func armAllocFault(m *machine.Machine, rng *sim.Rand) {
	// The paper's fault fires every 1000-4000 malloc calls — roughly once
	// per 15-second pre-crash window. The first firing lands early in the
	// run; repeats are much rarer.
	next := rng.Range(15, 60)
	m.Kernel.Heap.PrematureFree = func() int {
		next--
		if next <= 0 {
			next = rng.Range(120, 480)
			return rng.Range(1, 3) // free after 1-3 further mallocs
		}
		return 0
	}
}

// armCopyOverrun hooks bcopy's entry and occasionally inflates its length
// argument. The overrun length distribution follows the paper: 50% one
// byte, 44% 2-1024 bytes, 6% 2-4 KB.
func armCopyOverrun(m *machine.Machine, rng *sim.Rand) {
	proc := m.Text.MustProc("bcopy")
	next := rng.Range(150, 600)
	m.Kernel.VM.EntryHooks[proc.Entry] = func(v *kvm.VM) {
		next--
		if next > 0 {
			return
		}
		next = rng.Range(600, 2400) // repeats are rare, as in the paper

		var overrun int
		switch p := rng.Float64(); {
		case p < 0.50:
			overrun = 1
		case p < 0.94:
			overrun = rng.Range(2, 1024)
		default:
			overrun = rng.Range(2048, 4096)
		}
		v.Reg[3] += uint64(overrun) // r3 is bcopy's length argument
	}
}

// armSyncFault randomly elides lock acquires/releases.
func armSyncFault(m *machine.Machine, rng *sim.Rand) {
	m.Kernel.Locks.ElideAcquire = func() bool { return rng.Float64() < 0.05 }
	m.Kernel.Locks.ElideRelease = func() bool { return rng.Float64() < 0.05 }
}
