package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Cell is one aggregated row of a scenario report: a (system × fault)
// pair for crash scenarios, the one crash-under-load row for server
// scenarios, a fleet fault kind for fleet scenarios. Cells are built
// by folding per-plan slots in plan order, so their bytes are
// independent of the worker count. Wall-clock timing deliberately
// lives in json-excluded fields: the JSON report is the determinism
// artifact (diffed across worker counts), the latency table is not.
type Cell struct {
	Label string `json:"label"`
	// Runs = plans folded; Crashed = plans whose fault actually took
	// the system down (crash kind); Discarded = plans that never
	// crashed within the attempt budget, as in the paper.
	Runs      int `json:"runs"`
	Crashed   int `json:"crashed,omitempty"`
	Discarded int `json:"discarded,omitempty"`

	// Verdict columns.
	Checked     int `json:"checked"`
	Corrupted   int `json:"corrupted"`             // runs with any corruption
	Corruptions int `json:"corruptions"`           // total corruption entries
	Lost        int `json:"lost"`                  // silent acked-state loss (the zero gate)
	Torn        int `json:"torn"`                  // half-applied multi-step ops (the zero gate)
	Stale       int `json:"stale"`                 // fleet: deposed-primary stale reads (zero gate)
	TornMasked  int `json:"torn_masked,omitempty"` // convictions downgraded by recovery-reported damage
	LostMasked  int `json:"lost_masked,omitempty"`

	// Traffic columns (server/fleet kinds).
	Acked   int `json:"acked,omitempty"`
	Unacked int `json:"unacked,omitempty"`

	// Recovery observability (crash kind).
	ChecksumDetected    int `json:"checksum_detected,omitempty"`
	ProtectionInvoked   int `json:"protection_invoked,omitempty"`
	Quarantined         int `json:"quarantined,omitempty"`
	Salvaged            int `json:"salvaged,omitempty"`
	VolumeLost          int `json:"volume_lost,omitempty"`
	RecoveryInterrupted int `json:"recovery_interrupted,omitempty"`

	Errors    int    `json:"errors,omitempty"`
	LastError string `json:"last_error,omitempty"`

	// ElapsedNs is wall-clock time spent on this cell's plans, summed
	// in fold order; zero when the runner has no clock. Excluded from
	// the JSON artifact: timing may differ across worker counts, the
	// report may not.
	ElapsedNs int64 `json:"-"`
}

// Totals sums the gate columns across cells.
type Totals struct {
	Runs        int `json:"runs"`
	Checked     int `json:"checked"`
	Corrupted   int `json:"corrupted"`
	Corruptions int `json:"corruptions"`
	Lost        int `json:"lost"`
	Torn        int `json:"torn"`
	Stale       int `json:"stale"`
	Errors      int `json:"errors"`
}

// Result is one scenario's complete report.
type Result struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	Seed     uint64 `json:"seed"`
	Runs     int    `json:"runs"`
	Cells    []Cell `json:"cells"`
	Totals   Totals `json:"totals"`

	// ElapsedNs is the scenario's total wall time (json-excluded, see
	// Cell.ElapsedNs).
	ElapsedNs int64 `json:"-"`
}

// finish computes Totals from the folded cells.
func (r *Result) finish() {
	t := Totals{}
	for i := range r.Cells {
		c := &r.Cells[i]
		t.Runs += c.Runs
		t.Checked += c.Checked
		t.Corrupted += c.Corrupted
		t.Corruptions += c.Corruptions
		t.Lost += c.Lost
		t.Torn += c.Torn
		t.Stale += c.Stale
		t.Errors += c.Errors
	}
	r.Totals = t
}

// Gate returns a non-nil error when the scenario breached a zero gate:
// silent acked loss, torn commits, stale reads, or harness errors.
// Detected corruption is NOT gated — measuring it is the experiment.
func (r *Result) Gate() error {
	var bad []string
	if r.Totals.Lost > 0 {
		bad = append(bad, fmt.Sprintf("%d acked writes silently lost", r.Totals.Lost))
	}
	if r.Totals.Torn > 0 {
		bad = append(bad, fmt.Sprintf("%d torn commits", r.Totals.Torn))
	}
	if r.Totals.Stale > 0 {
		bad = append(bad, fmt.Sprintf("%d stale reads", r.Totals.Stale))
	}
	if r.Totals.Errors > 0 {
		bad = append(bad, fmt.Sprintf("%d harness errors", r.Totals.Errors))
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("scenario %s: %s", r.Name, strings.Join(bad, ", "))
}

// JSON renders the canonical report: the artifact CI diffs across
// worker counts.
func (r *Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Table renders the aligned corruption table (no timing — see
// LatencyTable).
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (kind=%s", r.Name, r.Kind)
	if r.Workload != "" {
		fmt.Fprintf(&b, ", workload=%s", r.Workload)
	}
	fmt.Fprintf(&b, ", seed=%d, runs=%d)\n", r.Seed, r.Runs)
	fmt.Fprintf(&b, "%-34s %5s %6s %5s %8s %6s %5s %5s %6s %7s\n",
		"cell", "runs", "crash", "disc", "checked", "corru", "lost", "torn", "stale", "errors")
	row := func(label string, c *Cell) {
		fmt.Fprintf(&b, "%-34s %5d %6d %5d %8d %6d %5d %5d %6d %7d\n",
			label, c.Runs, c.Crashed, c.Discarded, c.Checked, c.Corruptions,
			c.Lost, c.Torn, c.Stale, c.Errors)
	}
	for i := range r.Cells {
		row(r.Cells[i].Label, &r.Cells[i])
	}
	tot := Cell{Runs: r.Totals.Runs, Checked: r.Totals.Checked,
		Corruptions: r.Totals.Corruptions, Lost: r.Totals.Lost,
		Torn: r.Totals.Torn, Stale: r.Totals.Stale, Errors: r.Totals.Errors}
	for i := range r.Cells {
		tot.Crashed += r.Cells[i].Crashed
		tot.Discarded += r.Cells[i].Discarded
	}
	row("total", &tot)
	return b.String()
}

// LatencyTable renders per-cell wall-clock timing. Empty when the
// runner had no clock (determinism-diff mode). Printed separately from
// the canonical report so timing never leaks into diffed bytes.
func (r *Result) LatencyTable() string {
	if r.ElapsedNs == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s timing\n", r.Name)
	fmt.Fprintf(&b, "%-34s %5s %12s %14s\n", "cell", "runs", "total", "per-run")
	for i := range r.Cells {
		c := &r.Cells[i]
		per := int64(0)
		if c.Runs > 0 {
			per = c.ElapsedNs / int64(c.Runs)
		}
		fmt.Fprintf(&b, "%-34s %5d %10.3fms %12.3fms\n",
			c.Label, c.Runs, float64(c.ElapsedNs)/1e6, float64(per)/1e6)
	}
	fmt.Fprintf(&b, "%-34s %5d %10.3fms\n", "total", r.Totals.Runs, float64(r.ElapsedNs)/1e6)
	return b.String()
}
