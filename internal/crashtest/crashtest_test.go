package crashtest

import (
	"strings"
	"testing"

	"rio/internal/fault"
	"rio/internal/kernel"
)

func TestRunOneCleanWithoutCrash(t *testing.T) {
	// A fault type that rarely crashes quickly may return Crashed=false;
	// that path must be clean (no corruption claims, no error).
	cfg := DefaultRunConfig(12345)
	cfg.MaxOps = 20 // short window: off-by-one unlikely to trigger
	res, err := RunOne(RioProt, fault.Alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed && res.OpsToCrash == 0 {
		t.Fatal("crashed with zero ops")
	}
	if !res.Crashed && (res.Corrupted || len(res.Corruptions) > 0) {
		t.Fatal("non-crashing run claims corruption")
	}
}

func TestRunOneDeterministic(t *testing.T) {
	cfg := DefaultRunConfig(777)
	a, err := RunOne(RioNoProt, fault.TextFlip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(RioNoProt, fault.TextFlip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashed != b.Crashed || a.Corrupted != b.Corrupted ||
		a.CrashKind != b.CrashKind || a.OpsToCrash != b.OpsToCrash {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunOneAllSystemsOneFault(t *testing.T) {
	// One full run per system; each must either be discarded or complete
	// the crash-recover-verify cycle without harness errors.
	for _, sys := range Systems {
		for i := uint64(0); i < 4; i++ {
			res, err := RunOne(sys, fault.DeleteRandom, DefaultRunConfig(9000+i))
			if err != nil {
				t.Fatalf("%v run %d: %v", sys, i, err)
			}
			_ = res
		}
	}
}

func TestProtectionTrapsRecorded(t *testing.T) {
	// Copy overrun under Rio protection reliably invokes the protection
	// mechanism in this kernel (every bcopy ends at a page boundary).
	invoked := false
	for i := uint64(0); i < 10 && !invoked; i++ {
		res, err := RunOne(RioProt, fault.CopyOverrun, DefaultRunConfig(3000+i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashed && res.ProtectionInvoked {
			invoked = true
			if res.CrashKind != kernel.CrashProtection {
				t.Fatal("protection invocation with wrong crash kind")
			}
		}
	}
	if !invoked {
		t.Fatal("protection never invoked for copy overrun")
	}
}

// TestRunOneDoubleFaultNeverAborts is the acceptance criterion for the
// double-fault dimension: with storage faults injected during recovery
// and a second crash interrupting the warm reboot, every crashing run
// must end restored-or-quarantined — recovery never aborts half-way.
func TestRunOneDoubleFaultNeverAborts(t *testing.T) {
	crashed, interrupted := 0, 0
	for i := uint64(0); i < 10; i++ {
		cfg := DefaultRunConfig(4100 + i)
		cfg.DiskFaults = true
		cfg.MemTestBytes = 1 << 19
		res, err := RunOne(RioProt, fault.TextFlip, cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !res.Crashed {
			continue
		}
		crashed++
		if res.RecoveryAborted {
			t.Fatalf("run %d: recovery aborted: %v", i, res.Corruptions)
		}
		if res.RecoveryInterrupted {
			interrupted++
		}
	}
	if crashed == 0 {
		t.Fatal("no run crashed; test is vacuous")
	}
	if interrupted == 0 {
		t.Fatal("no recovery was interrupted; second-crash injection inert")
	}
}

// TestRunOneDoubleFaultDeterministic: the recovery-path randomness (fault
// plan, second-crash step) derives purely from the run seed, so a
// double-fault run replays exactly.
func TestRunOneDoubleFaultDeterministic(t *testing.T) {
	cfg := DefaultRunConfig(777)
	cfg.DiskFaults = true
	cfg.MemTestBytes = 1 << 19
	a, err := RunOne(RioNoProt, fault.TextFlip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(RioNoProt, fault.TextFlip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashed != b.Crashed || a.Corrupted != b.Corrupted ||
		a.RecoveryInterrupted != b.RecoveryInterrupted ||
		a.Quarantined != b.Quarantined || a.Salvaged != b.Salvaged ||
		a.VolumeLost != b.VolumeLost {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestMiniCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	cfg := DefaultCampaignConfig(2026)
	cfg.RunsPerCell = 2
	cfg.MaxAttemptsFactor = 8
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range Systems {
		for ft, cell := range rep.Cells[sys] {
			if cell.Errors > 0 {
				t.Errorf("%v/%v: %d harness errors: %s", sys, ft, cell.Errors, cell.LastError)
			}
		}
	}
	tbl := rep.Table()
	if !strings.Contains(tbl, "Total") || !strings.Contains(tbl, "copy overrun") {
		t.Fatalf("table malformed:\n%s", tbl)
	}
	if bd := rep.CrashKindBreakdown(RioProt); bd == "" {
		t.Fatal("empty crash-kind breakdown")
	}
}

func TestMTTFYears(t *testing.T) {
	// Paper §3.3: disk 7/650 -> ~15 years, rio-noprot 10/650 -> ~11 years
	// at one crash every two months.
	if y := MTTFYears(7, 650); y < 13 || y > 18 {
		t.Fatalf("disk MTTF = %.1f years, want ~15", y)
	}
	if y := MTTFYears(10, 650); y < 9 || y > 13 {
		t.Fatalf("rio MTTF = %.1f years, want ~11", y)
	}
	if MTTFYears(0, 650) >= 0 {
		t.Fatal("zero corruptions should report unbounded MTTF")
	}
}

func TestSystemStrings(t *testing.T) {
	for _, s := range Systems {
		if s.String() == "" || strings.HasPrefix(s.String(), "System(") {
			t.Fatalf("bad name for system %d", int(s))
		}
	}
}

func TestStaticFilesDetectCorruption(t *testing.T) {
	cfg := DefaultRunConfig(55)
	m, err := buildMachine(RioNoProt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := setupStatic(m); err != nil {
		t.Fatal(err)
	}
	if checkStatic(m) {
		t.Fatal("fresh static files flagged")
	}
	f, err := m.FS.Open(staticPath(1, true))
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte{0xff}, 10)
	f.Close()
	if !checkStatic(m) {
		t.Fatal("static corruption missed")
	}
}
