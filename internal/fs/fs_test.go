package fs_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/sim"
)

func boot(t *testing.T, kind fs.PolicyKind) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(kind))
	opt.FastPath = true // functional tests don't need interpreted copies
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func writeFile(t *testing.T, m *machine.Machine, path string, data []byte) {
	t.Helper()
	f, err := m.FS.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func readFile(t *testing.T, m *machine.Machine, path string) []byte {
	t.Helper()
	f, err := m.FS.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	st, err := m.FS.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	f.Close()
	return buf
}

func TestCreateWriteReadSmall(t *testing.T) {
	for _, kind := range []fs.PolicyKind{fs.PolicyRio, fs.PolicyUFS, fs.PolicyMFS, fs.PolicyUFSWTWrite} {
		m := boot(t, kind)
		data := []byte("hello from the " + kind.String() + " configuration")
		writeFile(t, m, "/hello.txt", data)
		if got := readFile(t, m, "/hello.txt"); !bytes.Equal(got, data) {
			t.Fatalf("%v: got %q", kind, got)
		}
	}
}

func TestLargeFileMultiBlock(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	data := kernel.FillBytes(3*fs.BlockSize+777, 42)
	writeFile(t, m, "/big", data)
	if got := readFile(t, m, "/big"); !bytes.Equal(got, data) {
		t.Fatal("multi-block file mismatch")
	}
	st, _ := m.FS.Stat("/big")
	if st.Size != int64(len(data)) {
		t.Fatalf("size %d, want %d", st.Size, len(data))
	}
}

func TestIndirectBlocks(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	// Past the 12 direct blocks.
	data := kernel.FillBytes((fs.NDirect+3)*fs.BlockSize, 9)
	writeFile(t, m, "/huge", data)
	if got := readFile(t, m, "/huge"); !bytes.Equal(got, data) {
		t.Fatal("indirect file mismatch")
	}
}

func TestSparseWrite(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	f, _ := m.FS.Create("/sparse")
	payload := []byte("tail")
	if _, err := f.WriteAt(payload, 5*fs.BlockSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st, _ := m.FS.Stat("/sparse")
	if st.Size != 5*fs.BlockSize+4 {
		t.Fatalf("size %d", st.Size)
	}
	got := readFile(t, m, "/sparse")
	if !bytes.Equal(got[5*fs.BlockSize:], payload) {
		t.Fatal("tail mismatch")
	}
	for _, b := range got[:16] {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestOverwriteMiddle(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	data := kernel.FillBytes(2*fs.BlockSize, 3)
	writeFile(t, m, "/f", data)
	f, _ := m.FS.Open("/f")
	patch := []byte("PATCHED ACROSS THE BLOCK BOUNDARY")
	off := int64(fs.BlockSize - 10)
	if _, err := f.WriteAt(patch, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	copy(data[off:], patch)
	if got := readFile(t, m, "/f"); !bytes.Equal(got, data) {
		t.Fatal("overwrite mismatch")
	}
}

func TestMkdirTreeAndReadDir(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	mustMkdir := func(p string) {
		if err := m.FS.Mkdir(p); err != nil {
			t.Fatalf("mkdir %s: %v", p, err)
		}
	}
	mustMkdir("/a")
	mustMkdir("/a/b")
	mustMkdir("/a/b/c")
	writeFile(t, m, "/a/b/file1", []byte("one"))
	writeFile(t, m, "/a/b/file2", []byte("two"))

	ents, err := m.FS.ReadDir("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name] = true
	}
	if !names["c"] || !names["file1"] || !names["file2"] || len(ents) != 3 {
		t.Fatalf("readdir: %v", ents)
	}
	st, err := m.FS.Stat("/a/b/c")
	if err != nil || !st.IsDir {
		t.Fatalf("stat dir: %+v %v", st, err)
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	data := kernel.FillBytes(4*fs.BlockSize, 5)
	writeFile(t, m, "/doomed", data)
	if err := m.FS.Unlink("/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Open("/doomed"); err != fs.ErrNotFound {
		t.Fatalf("open after unlink: %v", err)
	}
	// Space is reusable: write many files of the same total size.
	for i := 0; i < 5; i++ {
		writeFile(t, m, "/again", data)
		if err := m.FS.Unlink("/again"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRmdirSemantics(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	m.FS.Mkdir("/d")
	writeFile(t, m, "/d/f", []byte("x"))
	if err := m.FS.Rmdir("/d"); err != fs.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	m.FS.Unlink("/d/f")
	if err := m.FS.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Stat("/d"); err != fs.ErrNotFound {
		t.Fatalf("stat after rmdir: %v", err)
	}
}

func TestRename(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	writeFile(t, m, "/old", []byte("contents"))
	m.FS.Mkdir("/dir")
	if err := m.FS.Rename("/old", "/dir/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Stat("/old"); err != fs.ErrNotFound {
		t.Fatal("old name survived rename")
	}
	if got := readFile(t, m, "/dir/new"); string(got) != "contents" {
		t.Fatalf("got %q", got)
	}
	// Rename over an existing file replaces it.
	writeFile(t, m, "/other", []byte("loser"))
	if err := m.FS.Rename("/dir/new", "/other"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, m, "/other"); string(got) != "contents" {
		t.Fatalf("replace: got %q", got)
	}
}

func TestErrors(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	writeFile(t, m, "/f", []byte("x"))
	m.FS.Mkdir("/d")

	cases := []struct {
		name string
		err  error
		want error
	}{
		{"open missing", func() error { _, e := m.FS.Open("/nope"); return e }(), fs.ErrNotFound},
		{"create exists", func() error { _, e := m.FS.Create("/f"); return e }(), fs.ErrExists},
		{"mkdir exists", m.FS.Mkdir("/d"), fs.ErrExists},
		{"open dir", func() error { _, e := m.FS.Open("/d"); return e }(), fs.ErrIsDir},
		{"unlink dir", m.FS.Unlink("/d"), fs.ErrIsDir},
		{"rmdir file", m.FS.Rmdir("/f"), fs.ErrNotDir},
		{"lookup through file", func() error { _, e := m.FS.Stat("/f/sub"); return e }(), fs.ErrNotDir},
	}
	for _, c := range cases {
		if c.err != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.err, c.want)
		}
	}
}

func TestNameTooLong(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	long := make([]byte, fs.MaxNameLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := m.FS.Create("/" + string(long)); err != fs.ErrNameTooLong {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedFileOps(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	f, _ := m.FS.Create("/f")
	f.Close()
	if _, err := f.Write([]byte("x")); err != fs.ErrClosed {
		t.Fatalf("write: %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); err != fs.ErrClosed {
		t.Fatalf("read: %v", err)
	}
	if err := f.Close(); err != fs.ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	// Force directory growth past one block (128 entries per block).
	m := boot(t, fs.PolicyRio)
	for i := 0; i < 200; i++ {
		writeFile(t, m, "/f"+itoa(i), []byte{byte(i)})
	}
	ents, err := m.FS.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 200 {
		t.Fatalf("%d entries", len(ents))
	}
	for i := 0; i < 200; i++ {
		got := readFile(t, m, "/f"+itoa(i))
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("file %d content wrong", i)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestDataSurvivesCacheEviction(t *testing.T) {
	// Shrink the UBC so data round-trips through the disk.
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyUFS))
	opt.FastPath = true
	opt.DataCap = 4
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	var files [][]byte
	for i := 0; i < 8; i++ {
		data := kernel.FillBytes(fs.BlockSize+i*100, uint64(i+1))
		files = append(files, data)
		writeFile(t, m, "/f"+itoa(i), data)
	}
	for i, want := range files {
		if got := readFile(t, m, "/f"+itoa(i)); !bytes.Equal(got, want) {
			t.Fatalf("file %d lost through eviction", i)
		}
	}
	if m.Cache.Stats.Evictions == 0 {
		t.Fatal("test exercised no evictions")
	}
}

func TestPersistenceAcrossRemount(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	data := kernel.FillBytes(2*fs.BlockSize, 77)
	m.FS.Mkdir("/keep")
	writeFile(t, m, "/keep/data", data)
	m.FS.Unmount()

	// Cold boot: memory scrambled, everything must come from disk.
	m.Mem.Scramble(123)
	if err := m.Boot(nil); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, m, "/keep/data"); !bytes.Equal(got, data) {
		t.Fatal("data lost across remount")
	}
}

func TestRioNeverWritesToDisk(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	before := m.Disk.Stats.Writes
	for i := 0; i < 20; i++ {
		writeFile(t, m, "/f"+itoa(i), kernel.FillBytes(fs.BlockSize, uint64(i+1)))
	}
	m.FS.Sync() // no-op under Rio
	f, _ := m.FS.Open("/f0")
	m.FS.Fsync(f) // also a no-op
	f.Close()
	if m.Disk.Stats.Writes != before {
		t.Fatalf("Rio wrote %d blocks to disk", m.Disk.Stats.Writes-before)
	}
	if m.FS.PendingWrites() != 0 {
		t.Fatal("Rio queued async writes")
	}
}

func TestWriteThroughWritesImmediately(t *testing.T) {
	m := boot(t, fs.PolicyUFSWTWrite)
	f, _ := m.FS.Create("/f")
	before := m.Disk.Stats.Writes
	f.Write(kernel.FillBytes(fs.BlockSize, 5))
	if m.Disk.Stats.Writes == before {
		t.Fatal("write-through did not reach disk")
	}
	f.Close()
}

func TestUFSMetadataSynchronous(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	before := m.Disk.Stats.Writes
	m.FS.Mkdir("/newdir")
	if m.Disk.Stats.Writes == before {
		t.Fatal("UFS metadata update did not reach disk synchronously")
	}
}

func TestDelayedPolicyDefersEverything(t *testing.T) {
	m := boot(t, fs.PolicyUFSDelayed)
	before := m.Disk.Stats.Writes
	m.FS.Mkdir("/d")
	writeFile(t, m, "/d/f", kernel.FillBytes(fs.BlockSize, 2))
	if m.Disk.Stats.Writes != before {
		t.Fatal("delayed policy wrote to disk before the update daemon")
	}
}

func TestUpdateDaemonFlushes(t *testing.T) {
	m := boot(t, fs.PolicyUFSDelayed)
	writeFile(t, m, "/f", kernel.FillBytes(fs.BlockSize, 2))
	// Run simulated time past the 30s daemon period.
	m.Engine.Clock.Advance(31 * sim.Second)
	m.Engine.RunUntil(m.Engine.Clock.Now())
	m.FS.CrashIO(m.Rng) // drain queue deterministically
	if m.FS.Stats.DaemonRuns == 0 {
		t.Fatal("daemon never ran")
	}
	if m.Disk.Stats.Writes == 0 {
		t.Fatal("daemon flushed nothing")
	}
}

func TestJournalSequentialWrites(t *testing.T) {
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyAdvFS))
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		writeFile(t, m, "/f"+itoa(i), []byte("x"))
	}
	if m.FS.Stats.JournalWrites == 0 {
		t.Fatal("journaling policy wrote no journal records")
	}
	// Only the occasional group commit is synchronous; in-place metadata
	// is never written synchronously (that is UFS's behaviour).
	if m.FS.Stats.SyncWrites > m.FS.Stats.JournalWrites/3 {
		t.Fatalf("journaling policy too synchronous: %d syncs for %d journal writes",
			m.FS.Stats.SyncWrites, m.FS.Stats.JournalWrites)
	}
}

func TestFsyncFlushesExactlyOneFile(t *testing.T) {
	m := boot(t, fs.PolicyUFSDelayed)
	writeFile(t, m, "/a", kernel.FillBytes(fs.BlockSize, 1))
	writeFile(t, m, "/b", kernel.FillBytes(fs.BlockSize, 2))
	f, _ := m.FS.Open("/a")
	before := m.Disk.Stats.Writes
	if err := m.FS.Fsync(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if m.Disk.Stats.Writes == before {
		t.Fatal("fsync wrote nothing")
	}
}

func TestTimeAdvancesWithWork(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	t0 := m.Elapsed()
	writeFile(t, m, "/f", kernel.FillBytes(4*fs.BlockSize, 3))
	if m.Elapsed() <= t0 {
		t.Fatal("simulated time did not advance")
	}
}

func TestWriteThroughSlowerThanRio(t *testing.T) {
	run := func(kind fs.PolicyKind) sim.Duration {
		m := boot(t, kind)
		for i := 0; i < 10; i++ {
			writeFile(t, m, "/f"+itoa(i), kernel.FillBytes(2*fs.BlockSize, uint64(i+1)))
		}
		return m.Elapsed()
	}
	rio := run(fs.PolicyRio)
	wt := run(fs.PolicyUFSWTWrite)
	if wt < 2*rio {
		t.Fatalf("write-through (%v) should be much slower than Rio (%v)", wt, rio)
	}
}

func TestMkfsGeometry(t *testing.T) {
	sb := fs.Geometry(2048, 1024, 64)
	if sb.InodeStart != 1 {
		t.Fatal("inode start")
	}
	if sb.BitmapStart <= sb.InodeStart || sb.DataStart <= sb.BitmapStart {
		t.Fatalf("layout %+v", sb)
	}
	if sb.JournalStart != 2048-64 {
		t.Fatalf("journal %d", sb.JournalStart)
	}
}

func TestFsckCleanVolume(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	m.FS.Mkdir("/d")
	writeFile(t, m, "/d/f", kernel.FillBytes(fs.BlockSize*2, 4))
	m.FS.Unmount()
	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean volume flagged: %v", rep)
	}
	// Volume still mounts and reads fine after fsck.
	m.Mem.Scramble(5)
	if err := m.Boot(nil); err != nil {
		t.Fatal(err)
	}
	if len(readFile(t, m, "/d/f")) != fs.BlockSize*2 {
		t.Fatal("data lost after fsck")
	}
}

func TestFsckRepairsBadDirent(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	writeFile(t, m, "/victim", []byte("data"))
	m.FS.Unmount()
	// Corrupt: point the dirent at a free inode by freeing the inode
	// behind fsck's back. Easiest: zero the inode table entry on disk.
	sb, _ := fs.ReadSuperblock(m.Disk)
	blk := make([]byte, fs.BlockSize)
	m.Disk.Read(int(sb.InodeStart)*fs.SectorsPerBlock, blk)
	ino, _ := func() (int, error) { return 2, nil }() // first allocated file ino
	for i := 0; i < fs.InodeSize; i++ {
		blk[ino*fs.InodeSize+i] = 0
	}
	m.Disk.Commit(int(sb.InodeStart)*fs.SectorsPerBlock, blk)

	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadDirents == 0 {
		t.Fatalf("fsck missed the dangling dirent: %v", rep)
	}
	// Remount: the victim is gone but the volume works.
	m.Mem.Scramble(6)
	if err := m.Boot(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Open("/victim"); err != fs.ErrNotFound {
		t.Fatalf("victim: %v", err)
	}
	writeFile(t, m, "/new", []byte("works"))
}

func TestFsckFreesOrphans(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	writeFile(t, m, "/a", []byte("aa"))
	m.FS.Unmount()
	// Corrupt: clear the root directory block so /a becomes orphaned.
	sb, _ := fs.ReadSuperblock(m.Disk)
	blk := make([]byte, fs.BlockSize)
	m.Disk.Read(int(sb.InodeStart)*fs.SectorsPerBlock, blk)
	var root fs.Inode
	rootOff := int(sb.RootIno) * fs.InodeSize
	rootBytes := blk[rootOff : rootOff+fs.InodeSize]
	_ = root
	_ = rootBytes
	// Zero the root's first direct block contents.
	var dirBlock uint32
	for i := 0; i < 4; i++ {
		dirBlock |= uint32(rootBytes[16+i]) << (8 * i)
	}
	if dirBlock != 0 {
		m.Disk.Commit(int(dirBlock)*fs.SectorsPerBlock, make([]byte, fs.BlockSize))
	}
	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanInodes == 0 {
		t.Fatalf("orphan not detected: %v", rep)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	writeFile(t, m, "/f", []byte("short"))
	f, _ := m.FS.Open("/f")
	buf := make([]byte, 100)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	n, err = f.ReadAt(buf, 1000)
	if err != nil || n != 0 {
		t.Fatalf("past EOF: n=%d err=%v", n, err)
	}
	f.Close()
}

func TestFileTooBig(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	f, _ := m.FS.Create("/f")
	_, err := f.WriteAt([]byte("x"), int64(fs.MaxFileBlocks)*fs.BlockSize+1)
	if err != fs.ErrTooBig {
		t.Fatalf("err = %v", err)
	}
	f.Close()
}

func TestWriteReadProperty(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	f, err := m.FS.Create("/prop")
	if err != nil {
		t.Fatal(err)
	}
	mirror := make([]byte, 0, 64*1024)
	prop := func(offRaw uint16, lenRaw uint8, seed uint64) bool {
		off := int64(offRaw) % (48 * 1024)
		n := int(lenRaw) + 1
		data := kernel.FillBytes(n, seed|1)
		if _, err := f.WriteAt(data, off); err != nil {
			return false
		}
		if int(off)+n > len(mirror) {
			grown := make([]byte, int(off)+n)
			copy(grown, mirror)
			mirror = grown
		}
		copy(mirror[off:], data)
		got := make([]byte, len(mirror))
		if _, err := f.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, mirror)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
