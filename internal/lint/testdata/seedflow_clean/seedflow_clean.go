// Package seedfix is the seedflow clean fixture: the sanctioned
// derivation (a Mix-style coordinate hash), generator chains running on
// local copies, and one annotated in-generator advance.
package seedfix

// mix mirrors sim.Mix: a splitmix64-style coordinate hash deriving an
// independent, well-dispersed stream per point in a parameter space.
func mix(parent uint64, coords ...uint64) uint64 {
	h := parent
	for _, c := range coords {
		h ^= c + 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// runSeed derives per-run seeds by coordinates, not by counting.
func runSeed(campaignSeed uint64, cell, run int) uint64 {
	return mix(campaignSeed, uint64(cell), uint64(run))
}

// fillPattern runs its generator chain on a local copy of the seed; the
// chain is generator state, not stream derivation.
func fillPattern(dst []byte, seed uint64) {
	x := seed
	for i := range dst {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dst[i] = byte(x)
	}
}

// next advances the seed variable itself; the annotation records why
// this arithmetic is sanctioned.
func next(seed uint64) uint64 {
	//riolint:seedflow xorshift state advance inside the generator, not stream derivation
	seed ^= seed << 13
	x := seed
	x ^= x >> 7
	return x
}
