// Package txn is the WAL-free transaction layer over the protected file
// cache (ROADMAP item 3): multi-op atomicity built on the paper's claim
// that memory with no reliability-induced writes *is* stable storage.
//
// A transaction commits by publishing a commit record into the file
// system — which, under Rio, means into protected cache memory: the
// record is durable the instant the write returns, with no disk barrier
// and no ordering constraint against the data it describes. The
// protocol is
//
//	publish → apply → erase → ack
//
// Publish writes the sealed record (all staged ops, checksummed) to the
// log file. Apply executes the ops; every op is idempotent, so a replay
// after a crash converges to the same state. Erase unlinks the log —
// and because unlinking drops the file's dirty pages from the registry
// without write-back, an erased record can never resurface at warm
// reboot. Ack (the caller answering its client) comes strictly last.
//
// The crash-safety argument follows from that order alone:
//
//   - Crash mid-publish: the record's checksum fails, Recover discards
//     it. The commit was never acked, so nothing promised is lost, and
//     none of its ops ran, so nothing partial is visible.
//   - Crash mid-apply: the record is intact in protected memory.
//     Recover rolls it forward to completion — the transaction becomes
//     visible atomically even though its commit was never acked.
//   - Crash after erase: there is nothing to replay, and the fully
//     applied state is durable (Rio's ordinary write guarantee).
//
// The log therefore never holds an acked transaction: ack happens only
// after erase. Discarding any unparseable tail is always safe, and
// replaying any parseable record is always safe (idempotence). Compare
// the write-ahead log this design rejects: a WAL must be written — and
// synced — *before* the data, which is exactly the reliability-induced
// I/O Rio exists to eliminate; see DESIGN.md §7c.
//
// The package operates on *fs.FS so the riod serving layer, the crash
// harness, and examples can share it without import cycles. It is
// deterministic: no host clock, no map iteration, no randomness.
package txn

import (
	"errors"
	"fmt"
	"sort"

	"rio/internal/fs"
)

// OpKind identifies one transactional operation.
type OpKind uint8

// The transactional op kinds. Reads are not transactional (clients read
// committed state directly); appends are excluded because an append's
// final offset is unknowable at stage time, and replaying it would
// double-apply.
const (
	OpWrite  OpKind = 1 + iota // write Data to Path at Off (absolute)
	OpMkdir                    // create directory Path (mkdir -p)
	OpRemove                   // unlink file / remove empty dir Path
	OpRename                   // rename Path to Path2
)

// Op is one staged operation.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename destination
	Off   int64  // write offset (absolute; never negative)
	Data  []byte // write payload
}

// Record is one sealed transaction: the unit of atomicity.
type Record struct {
	ID  uint64
	Ops []Op
}

// Log paths and limits. The /.txn prefix is reserved: the serving layer
// refuses client operations under it, so the log can never collide with
// user data and Publish may reorder freely against other requests.
const (
	Dir     = "/.txn"
	LogPath = "/.txn/log"

	// MaxOps bounds ops per record; MaxPathLen and MaxDataLen bound the
	// variable fields. Recover validates every declared length against
	// these and the bytes present before allocating, so a corrupt frame
	// cannot balloon recovery's memory.
	MaxOps     = 1024
	MaxPathLen = 4096
	MaxDataLen = 1 << 20
)

// frameMagic opens every record frame ("RioTxn1\n" big-endian). A frame
// whose first 8 bytes differ is a torn tail and parsing stops.
const frameMagic = 0x52696f54786e310a

// ErrInterrupted is returned by RecoverOpts when Options.CrashAtStep
// interrupts the roll-forward, mirroring warmreboot's restart protocol.
var ErrInterrupted = errors.New("txn: recovery interrupted (simulated crash)")

// fnv1a64 is FNV-1a over b (the registry's checksum, reimplemented here
// so the frame format is self-contained).
func fnv1a64(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func appendU16(dst []byte, v uint16) []byte { return append(dst, byte(v>>8), byte(v)) }
func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendRecord appends rec's frame to dst: magic, checksum, then the
// checksummed body (id, op count, ops). The checksum covers everything
// after itself, so a frame torn at any byte fails verification.
func AppendRecord(dst []byte, rec *Record) []byte {
	dst = appendU64(dst, frameMagic)
	cksumAt := len(dst)
	dst = appendU64(dst, 0) // checksum placeholder
	bodyAt := len(dst)
	dst = appendU64(dst, rec.ID)
	dst = appendU32(dst, uint32(len(rec.Ops)))
	for i := range rec.Ops {
		op := &rec.Ops[i]
		dst = append(dst, byte(op.Kind))
		dst = appendU64(dst, uint64(op.Off))
		dst = appendU16(dst, uint16(len(op.Path)))
		dst = append(dst, op.Path...)
		dst = appendU16(dst, uint16(len(op.Path2)))
		dst = append(dst, op.Path2...)
		dst = appendU32(dst, uint32(len(op.Data)))
		dst = append(dst, op.Data...)
	}
	ck := fnv1a64(dst[bodyAt:])
	for i := 0; i < 8; i++ {
		dst[cksumAt+i] = byte(ck >> (56 - 8*i))
	}
	return dst
}

// recCursor is a bounds-checked reader over one frame body. The first
// failure sticks, as in the wire codec.
type recCursor struct {
	buf []byte
	off int
	bad bool
}

func (c *recCursor) take(n int) []byte {
	if c.bad || n < 0 || c.off+n > len(c.buf) || c.off+n < c.off {
		c.bad = true
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *recCursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (c *recCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (c *recCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// parseRecord decodes one frame from the front of buf, returning the
// record and the bytes consumed. ok is false for anything malformed —
// wrong magic, truncation, over-limit length, checksum mismatch — which
// Recover treats as the torn tail: discard it and everything after.
func parseRecord(buf []byte) (rec Record, n int, ok bool) {
	c := &recCursor{buf: buf}
	if c.u64() != frameMagic {
		return rec, 0, false
	}
	declared := c.u64()
	bodyAt := c.off
	rec.ID = c.u64()
	nops := c.u32()
	if c.bad || nops > MaxOps {
		return rec, 0, false
	}
	rec.Ops = make([]Op, 0, nops)
	for i := uint32(0); i < nops; i++ {
		var op Op
		kb := c.take(1)
		if kb == nil {
			return rec, 0, false
		}
		op.Kind = OpKind(kb[0])
		if op.Kind < OpWrite || op.Kind > OpRename {
			return rec, 0, false
		}
		op.Off = int64(c.u64())
		pl := int(c.u16())
		if pl > MaxPathLen {
			return rec, 0, false
		}
		p := c.take(pl)
		if p == nil {
			return rec, 0, false
		}
		op.Path = string(p)
		p2l := int(c.u16())
		if p2l > MaxPathLen {
			return rec, 0, false
		}
		p2 := c.take(p2l)
		if p2 == nil {
			return rec, 0, false
		}
		op.Path2 = string(p2)
		dl := int(c.u32())
		if dl > MaxDataLen {
			return rec, 0, false
		}
		d := c.take(dl)
		if d == nil {
			return rec, 0, false
		}
		if dl > 0 {
			op.Data = append([]byte(nil), d...)
		}
		rec.Ops = append(rec.Ops, op)
	}
	if c.bad {
		return rec, 0, false
	}
	if fnv1a64(buf[bodyAt:c.off]) != declared {
		return rec, 0, false
	}
	return rec, c.off, true
}

// ParseAll decodes the contiguous valid record prefix of data. The first
// malformed frame ends the parse: everything from there on is a torn
// tail, and — because ack strictly follows erase — provably unacked.
func ParseAll(data []byte) []Record {
	var out []Record
	for len(data) > 0 {
		rec, n, ok := parseRecord(data)
		if !ok {
			break
		}
		out = append(out, rec)
		data = data[n:]
	}
	return out
}

// Log is the commit log on one shard's file system. Not safe for
// concurrent use: like the FS it wraps, it belongs to one goroutine.
type Log struct {
	fs *fs.FS
}

// NewLog returns the commit log for fsys.
func NewLog(fsys *fs.FS) *Log { return &Log{fs: fsys} }

// Publish atomically-enough writes the group's sealed records to the
// log: one fresh file per publish (the previous log, if any, was erased
// or is superseded), written front to back so a crash leaves a valid
// record prefix plus a checksummed-detectable torn tail. This is the
// group-commit write — one log publish covers every record in recs.
func (l *Log) Publish(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	if _, err := l.fs.Stat(Dir); err != nil {
		if err := l.fs.Mkdir(Dir); err != nil && err != fs.ErrExists {
			return fmt.Errorf("txn: publish: %w", err)
		}
	}
	// A fresh file per publish: the FS has no truncate, and a stale tail
	// from a longer previous log would replay dropped transactions.
	if err := l.fs.Unlink(LogPath); err != nil && err != fs.ErrNotFound {
		return fmt.Errorf("txn: publish: %w", err)
	}
	f, err := l.fs.Create(LogPath)
	if err != nil {
		return fmt.Errorf("txn: publish: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return fmt.Errorf("txn: publish: %w", err)
	}
	// The durability point. Under Rio this returns immediately — the
	// record already is stable storage; under write-through policies it
	// is the synchronous log write a WAL would have cost.
	if err := l.fs.Fsync(f); err != nil {
		f.Close()
		return fmt.Errorf("txn: publish: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("txn: publish: %w", err)
	}
	return nil
}

// Apply executes rec's ops in order. Every op is idempotent — applying
// a record any number of times, including resuming after a partial
// application, converges to the same state:
//
//   - write: absolute offset, so a re-write lands identically
//   - mkdir: exists is success
//   - remove: not-found is success
//   - rename: a missing source with no destination either way means the
//     rename (or its remove) already happened — success
func (l *Log) Apply(rec *Record) error {
	for i := range rec.Ops {
		op := &rec.Ops[i]
		var err error
		switch op.Kind {
		case OpWrite:
			err = l.applyWrite(op)
		case OpMkdir:
			err = l.mkdirAll(op.Path)
		case OpRemove:
			err = l.applyRemove(op.Path)
		case OpRename:
			err = l.applyRename(op)
		default:
			err = fmt.Errorf("unknown op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("txn: apply record %d op %d (%q): %w", rec.ID, i, op.Path, err)
		}
	}
	return nil
}

func (l *Log) applyWrite(op *Op) error {
	if op.Off < 0 {
		return fmt.Errorf("negative offset %d", op.Off)
	}
	f, err := l.fs.Open(op.Path)
	if err == fs.ErrNotFound {
		if err := l.mkdirAll(parentDir(op.Path)); err != nil {
			return err
		}
		f, err = l.fs.Create(op.Path)
	}
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(op.Data, op.Off); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (l *Log) applyRemove(path string) error {
	st, err := l.fs.Stat(path)
	if err == fs.ErrNotFound {
		return nil // already removed
	}
	if err != nil {
		return err
	}
	if st.IsDir {
		err = l.fs.Rmdir(path)
	} else {
		err = l.fs.Unlink(path)
	}
	if err == fs.ErrNotFound {
		return nil
	}
	return err
}

func (l *Log) applyRename(op *Op) error {
	if _, err := l.fs.Stat(op.Path); err == fs.ErrNotFound {
		// Source gone: on replay this means the rename already ran.
		return nil
	} else if err != nil {
		return err
	}
	if err := l.mkdirAll(parentDir(op.Path2)); err != nil {
		return err
	}
	return l.fs.Rename(op.Path, op.Path2)
}

func (l *Log) mkdirAll(path string) error {
	if path == "" || path == "/" {
		return nil
	}
	if st, err := l.fs.Stat(path); err == nil {
		if st.IsDir {
			return nil
		}
		return fs.ErrNotDir
	}
	if err := l.mkdirAll(parentDir(path)); err != nil {
		return err
	}
	if err := l.fs.Mkdir(path); err != nil && err != fs.ErrExists {
		return err
	}
	return nil
}

func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

// Erase unlinks the log. Unlink drops the file's dirty pages from the
// registry without write-back, so erased records are gone from every
// recovery path — warm reboot cannot restore them and salvage cannot
// resurrect them. That is what makes erase-then-ack sufficient: a
// record still visible to recovery is by construction unacked.
func (l *Log) Erase() error {
	if err := l.fs.Unlink(LogPath); err != nil && err != fs.ErrNotFound {
		return fmt.Errorf("txn: erase: %w", err)
	}
	return nil
}

// Options parameterises Recover for crash testing, mirroring
// warmreboot.Options: CrashAtStep > 0 interrupts the roll-forward with
// ErrInterrupted before that step executes. Recovery restarts from
// scratch; every step is idempotent, so the restart converges.
type Options struct {
	CrashAtStep int
}

// RecoverStats reports what a recovery found and did.
type RecoverStats struct {
	Records     int // valid records found (log + salvage)
	Applied     int // records rolled forward
	SalvageLogs int // /lost+found files recognised as txn-log salvage
}

// Recover rolls the published log forward after a crash: parse the
// valid record prefix, apply every record, erase. It also sweeps
// /lost+found for salvaged log pages — if the crash cost the log file
// its metadata, warm reboot reassembles the orphaned pages at their
// original offsets under /lost+found, where the frame magic identifies
// them — and rolls those forward too. Anything in either place is
// unacked-or-mid-apply, so replaying is always safe and dropping a
// torn tail never loses a promised commit.
func (l *Log) Recover() (RecoverStats, error) {
	return l.RecoverOpts(Options{})
}

// RecoverOpts is Recover with crash-injection options.
func (l *Log) RecoverOpts(opts Options) (RecoverStats, error) {
	var st RecoverStats
	step := 0
	tick := func() bool {
		step++
		return opts.CrashAtStep > 0 && step >= opts.CrashAtStep
	}

	recs := ParseAll(l.readFile(LogPath))
	salvage := l.salvageLogs()
	st.SalvageLogs = len(salvage)
	for _, sv := range salvage {
		recs = append(recs, sv.recs...)
	}
	st.Records = len(recs)

	for i := range recs {
		if tick() {
			return st, ErrInterrupted
		}
		if err := l.Apply(&recs[i]); err != nil {
			return st, err
		}
		st.Applied++
	}
	for _, sv := range salvage {
		if tick() {
			return st, ErrInterrupted
		}
		if err := l.fs.Unlink(sv.path); err != nil && err != fs.ErrNotFound {
			return st, fmt.Errorf("txn: recover: %w", err)
		}
	}
	if tick() {
		return st, ErrInterrupted
	}
	if err := l.Erase(); err != nil {
		return st, err
	}
	return st, nil
}

// readFile returns path's contents, or nil if it is missing or
// unreadable — recovery treats an unreadable log as an empty one (its
// records were unacked; see the package comment).
func (l *Log) readFile(path string) []byte {
	st, err := l.fs.Stat(path)
	if err != nil || st.IsDir || st.Size < 0 || st.Size > (MaxDataLen+64)*64 {
		return nil
	}
	f, err := l.fs.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil
	}
	return buf
}

type salvagedLog struct {
	path string
	recs []Record
}

// salvageLogs scans /lost+found for files whose content opens with the
// frame magic — warm reboot's salvage of an orphaned txn log — and
// parses their record prefixes. Files are visited in sorted name order
// so recovery is deterministic.
func (l *Log) salvageLogs() []salvagedLog {
	ents, err := l.fs.ReadDir("/lost+found")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir && !e.IsSymlink {
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	var out []salvagedLog
	for _, name := range names {
		path := "/lost+found/" + name
		data := l.readFile(path)
		if len(data) < 8 {
			continue
		}
		var magic uint64
		for _, b := range data[:8] {
			magic = magic<<8 | uint64(b)
		}
		if magic != frameMagic {
			continue
		}
		if recs := ParseAll(data); len(recs) > 0 {
			out = append(out, salvagedLog{path: path, recs: recs})
		}
	}
	return out
}
