// Package rio is a from-scratch reproduction of the Rio file cache
// ("The Rio File Cache: Surviving Operating System Crashes", Chen et al.,
// ASPLOS 1996) as a simulated full system in pure Go.
//
// Rio makes ordinary main memory safe for permanent file data: file-cache
// pages are write-protected against wild kernel stores, a registry
// describes every cached buffer, and after a crash a warm reboot restores
// the file cache into the file system — so every write is as permanent as
// disk the moment it completes, with no reliability-induced disk I/O.
//
// Because Rio's mechanisms live below the operating system, this package
// ships the whole stack as a simulation: physical memory and an MMU with a
// KSEG physical window, a disk with a 1996-era latency model, a small
// kernel whose data-movement procedures run in an interpreted instruction
// set (so the paper's thirteen fault models can corrupt real kernel code),
// two file caches (buffer cache + UBC), a Unix-like file system with all
// eight write policies of the paper's Table 2, fault injection, crash
// testing, and a warm-reboot implementation.
//
// Quick start:
//
//	sys, _ := rio.New(rio.Config{Policy: rio.PolicyRio})
//	sys.WriteFile("/notes", []byte("safe the instant the write returns"))
//	sys.Crash("power button")        // no sync ever ran
//	rep, _ := sys.WarmReboot()
//	data, _ := sys.ReadFile("/notes") // intact
//
// The two headline experiments are exposed directly: RunCrashCampaign
// reproduces Table 1 (corruption rates across 13 fault types on three
// systems) and RunPerfTable reproduces Table 2 (workload times across
// eight file-system configurations).
package rio

import (
	"fmt"
	"time"

	"rio/internal/fs"
	"rio/internal/machine"
	"rio/internal/sim"
)

// Policy names a file-system write policy (a Table 2 row).
type Policy string

// The eight configurations of the paper.
const (
	// PolicyRio is Rio with memory protection — the paper's recommended
	// configuration.
	PolicyRio Policy = "rio"
	// PolicyRioNoProtect is Rio relying on warm reboot alone.
	PolicyRioNoProtect Policy = "rio-noprotect"
	// PolicyMFS is the memory file system (never writes to disk).
	PolicyMFS Policy = "mfs"
	// PolicyUFSDelayed delays all data and metadata to the update daemon.
	PolicyUFSDelayed Policy = "ufs-delayed"
	// PolicyAdvFS journals metadata sequentially.
	PolicyAdvFS Policy = "advfs"
	// PolicyUFS is default UFS: async data, synchronous metadata.
	PolicyUFS Policy = "ufs"
	// PolicyUFSWTClose adds fsync on every close.
	PolicyUFSWTClose Policy = "ufs-wt-close"
	// PolicyUFSWTWrite is the fully synchronous mount.
	PolicyUFSWTWrite Policy = "ufs-wt-write"
)

func (p Policy) internal() (fs.Policy, error) {
	switch p {
	case PolicyRio, "":
		return fs.DefaultPolicy(fs.PolicyRio), nil
	case PolicyRioNoProtect:
		pol := fs.DefaultPolicy(fs.PolicyRio)
		pol.Protect = false
		return pol, nil
	case PolicyMFS:
		return fs.DefaultPolicy(fs.PolicyMFS), nil
	case PolicyUFSDelayed:
		return fs.DefaultPolicy(fs.PolicyUFSDelayed), nil
	case PolicyAdvFS:
		return fs.DefaultPolicy(fs.PolicyAdvFS), nil
	case PolicyUFS:
		return fs.DefaultPolicy(fs.PolicyUFS), nil
	case PolicyUFSWTClose:
		return fs.DefaultPolicy(fs.PolicyUFSWTClose), nil
	case PolicyUFSWTWrite:
		return fs.DefaultPolicy(fs.PolicyUFSWTWrite), nil
	default:
		return fs.Policy{}, fmt.Errorf("rio: unknown policy %q", p)
	}
}

// Policies lists every supported policy name.
func Policies() []Policy {
	return []Policy{PolicyRio, PolicyRioNoProtect, PolicyMFS, PolicyUFSDelayed,
		PolicyAdvFS, PolicyUFS, PolicyUFSWTClose, PolicyUFSWTWrite}
}

// Config configures a simulated machine. The zero value is a Rio machine
// with protection and default sizes.
type Config struct {
	// Policy selects the file-system configuration (default PolicyRio).
	Policy Policy
	// MemoryMB is physical memory size (default 16).
	MemoryMB int
	// DiskMB is disk capacity (default 32).
	DiskMB int
	// Seed drives all machine randomness; a seed reproduces a machine
	// exactly (default 1).
	Seed uint64
	// Interpreted runs kernel bulk operations instruction-by-instruction
	// in the kernel VM instead of the accelerated path. Fault injection
	// requires it; it is slower in real time. (Simulated times agree
	// between modes.)
	Interpreted bool
}

func (c Config) options() (machine.Options, error) {
	pol, err := c.Policy.internal()
	if err != nil {
		return machine.Options{}, err
	}
	opt := machine.DefaultOptions(pol)
	opt.FastPath = !c.Interpreted
	opt.Checksums = true
	if c.Seed != 0 {
		opt.Seed = c.Seed
	}
	if c.MemoryMB > 0 {
		opt.MemPages = c.MemoryMB << 20 / 8192
	} else {
		opt.MemPages = 2048
	}
	if c.DiskMB > 0 {
		opt.DiskBlocks = int64(c.DiskMB) << 20 / 8192
	} else {
		opt.DiskBlocks = 4096
	}
	// Size the caches and registry to the memory.
	opt.DataCap = opt.MemPages / 3
	opt.MetaCap = opt.MemPages / 8
	opt.RegistryFrames = (opt.DataCap+opt.MetaCap)/128 + 1
	return opt, nil
}

// Exported error codes. File-system operations return exactly these
// values for their respective conditions, so callers — and wire-level
// services like riod that must map failures to typed status codes —
// can branch with == instead of matching message strings.
var (
	ErrNotFound = fs.ErrNotFound
	ErrExists   = fs.ErrExists
	ErrNotDir   = fs.ErrNotDir
	ErrIsDir    = fs.ErrIsDir
	ErrNotEmpty = fs.ErrNotEmpty
	ErrNoSpace  = fs.ErrNoSpace
	ErrNoInodes = fs.ErrNoInodes
	ErrReadOnly = fs.ErrReadOnly
)

// System is a booted simulated machine with a mounted file system.
//
// A System is single-threaded: it models one machine, and its methods
// must not be called concurrently. Services that want parallelism run
// several Systems side by side (see NewShards) with each instance owned
// by exactly one goroutine.
type System struct {
	m   *machine.Machine
	cfg Config
}

// New formats a disk and boots a machine on it.
func New(cfg Config) (*System, error) {
	opt, err := cfg.options()
	if err != nil {
		return nil, err
	}
	m, err := machine.New(opt, nil)
	if err != nil {
		return nil, err
	}
	return &System{m: m, cfg: cfg}, nil
}

// NewShards boots n independent Systems from one Config for a sharded
// service. Each shard's seed is derived with sim.Mix(cfg.Seed, shard),
// so shard i's machine is identical no matter how many shards exist
// beside it, and no two shards share a random stream. The Systems are
// fully independent (separate memory, disk, file system); the caller
// provides any cross-shard routing and must keep each System on a
// single goroutine.
func NewShards(n int, cfg Config) ([]*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rio: NewShards needs n > 0, got %d", n)
	}
	base := cfg.Seed
	if base == 0 {
		base = 1
	}
	systems := make([]*System, n)
	for i := range systems {
		c := cfg
		c.Seed = sim.Mix(base, uint64(i))
		if c.Seed == 0 {
			c.Seed = 1 // Config treats 0 as "default"; keep shards explicit
		}
		sys, err := New(c)
		if err != nil {
			return nil, fmt.Errorf("rio: shard %d: %w", i, err)
		}
		systems[i] = sys
	}
	return systems, nil
}

// Machine exposes the underlying simulated machine for advanced use (the
// types live in internal packages; most callers never need this).
func (s *System) Machine() *machine.Machine { return s.m }

// Elapsed returns the simulated time since boot.
func (s *System) Elapsed() time.Duration {
	return time.Duration(s.m.Elapsed())
}

// Crashed reports whether the kernel has crashed, and how.
func (s *System) Crashed() (bool, string) {
	if c := s.m.Crashed(); c != nil {
		return true, c.Error()
	}
	return false, ""
}

// Stats is a snapshot of system activity counters.
type Stats struct {
	SimulatedSeconds float64
	Syscalls         uint64
	DiskReads        uint64
	DiskWrites       uint64
	DiskBytesWritten uint64
	CacheHits        uint64
	CacheMisses      uint64
	DirtyBuffers     int
	ProtectionFaults uint64
	KernelSteps      uint64
}

// Stats returns current counters.
func (s *System) Stats() Stats {
	cs := s.m.Cache.Stats
	dirty := len(s.m.Cache.DirtyBufs(0)) + len(s.m.Cache.DirtyBufs(1))
	return Stats{
		SimulatedSeconds: sim.Duration(s.m.Elapsed()).Seconds(),
		Syscalls:         s.m.FS.Stats.Syscalls,
		DiskReads:        s.m.Disk.Stats.Reads,
		DiskWrites:       s.m.Disk.Stats.Writes,
		DiskBytesWritten: s.m.Disk.Stats.BytesWritten,
		CacheHits:        cs.MetaHits + cs.DataHits,
		CacheMisses:      cs.MetaMisses + cs.DataMisses,
		DirtyBuffers:     dirty,
		ProtectionFaults: s.m.MMU.Stats.Traps,
		KernelSteps:      s.m.Kernel.Steps(),
	}
}
