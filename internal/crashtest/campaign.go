package crashtest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rio/internal/fault"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// CampaignConfig parameterises a full Table 1 campaign.
type CampaignConfig struct {
	// Seed drives the whole campaign; the same seed reproduces the same
	// table at any worker count.
	Seed uint64
	// RunsPerCell is the number of *crashing* runs per (system, fault)
	// cell. The paper used 50, discarding runs that did not crash.
	RunsPerCell int
	// MaxAttemptsFactor bounds attempts per cell at RunsPerCell × factor
	// (some fault types crash rarely).
	MaxAttemptsFactor int
	// Workers is the number of goroutines executing crash runs; 0 uses
	// runtime.GOMAXPROCS(0). The report's counts do not depend on it.
	Workers int
	// Run is the per-run configuration template (its Seed is overridden).
	Run RunConfig
	// Progress, if non-nil, receives a line per completed cell plus
	// throttled campaign-level updates. Invocations are serialised, but
	// cell completion order varies with scheduling.
	Progress func(string)

	// runner stands in for RunOne in scheduler tests.
	runner func(System, fault.Type, RunConfig) (RunResult, error)
	// clock stands in for the host clock in timing tests.
	clock wallClock
}

// wallClock abstracts the host's real-time clock. Campaign telemetry
// (Cell.Elapsed, Summary.WallTime/RunsPerSec, progress throttling) is
// the one part of a campaign that deliberately reflects the host rather
// than the simulation, so it reads time through this seam: tests inject
// a fake, and the riolint walltime analyzer sees exactly one sanctioned
// host-clock site in the tree — hostClock.Now below.
type wallClock interface {
	Now() time.Time
}

// hostClock is the production wallClock.
type hostClock struct{}

func (hostClock) Now() time.Time {
	//riolint:walltime campaign telemetry reports host wall-clock rates; sim outcomes never read this
	return time.Now()
}

// DefaultCampaignConfig mirrors the paper's protocol at 50 runs/cell.
func DefaultCampaignConfig(seed uint64) CampaignConfig {
	return CampaignConfig{
		Seed:              seed,
		RunsPerCell:       50,
		MaxAttemptsFactor: 6,
		Run:               DefaultRunConfig(0),
	}
}

// RunSeed derives the PRNG seed for one crash run purely from the
// campaign seed and the run's coordinates: system, fault type, and
// attempt index within its cell. No shared counter is involved, so a
// cell's seeds are independent of how many attempts every other cell
// consumed — changing RunsPerCell, MaxAttemptsFactor, or the fault list
// leaves all remaining cells' runs bit-identical, and cells can execute
// concurrently in any order. (An earlier version advanced one seed
// counter across the whole campaign, which silently resampled every
// later cell whenever an earlier cell's attempt count changed.)
func RunSeed(campaignSeed uint64, sys System, ft fault.Type, attempt int) uint64 {
	return sim.Mix(campaignSeed, uint64(sys), uint64(ft), uint64(attempt))
}

const (
	// Memory tripwire: a faulted simulator can, in principle, drive some
	// path into pathological allocation; surface that rather than letting
	// the OS OOM-kill the campaign. ReadMemStats stops the world, so it
	// is sampled once per heapCheckEvery runs on a shared counter instead
	// of before every one of a campaign's thousands of runs.
	heapCheckEvery = 32
	heapLimit      = 4 << 30

	// progressInterval throttles campaign-level progress lines.
	progressInterval = 2 * time.Second
)

// runTask asks a worker to execute one attempt of one cell.
type runTask struct {
	sys     System
	ft      fault.Type
	attempt int
	reply   chan<- runOutcome
}

// runOutcome is the result of one attempt, tagged for in-order folding.
type runOutcome struct {
	attempt int
	res     RunResult
	err     error
	elapsed time.Duration
}

// campaign is the shared state of one RunCampaign invocation.
type campaign struct {
	cfg    CampaignConfig
	runner func(System, fault.Type, RunConfig) (RunResult, error)
	tasks  chan runTask
	done   chan struct{} // closed on abort (heap tripwire)
	clock  wallClock
	epoch  time.Time

	abortOnce sync.Once
	abortErr  error

	started   atomic.Int64 // runs handed to workers (heap sampling cadence)
	merged    atomic.Int64 // runs folded into cells
	crashes   atomic.Int64
	wasted    atomic.Int64 // speculative runs executed but never folded
	cellsDone atomic.Int64

	progressMu   sync.Mutex
	lastProgress atomic.Int64 // unix nanos of the last throttled line
}

func (c *campaign) abort(err error) {
	c.abortOnce.Do(func() {
		c.abortErr = err
		close(c.done)
	})
}

// worker executes tasks until the queue closes or the campaign aborts.
// Every accepted task is answered: reply channels are sized to the issue
// window, so the send cannot block even if the cell driver has moved on.
func (c *campaign) worker() {
	for {
		select {
		case <-c.done:
			return
		case t, ok := <-c.tasks:
			if !ok {
				return
			}
			if n := c.started.Add(1); n%heapCheckEvery == 0 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > heapLimit {
					c.abort(fmt.Errorf("crashtest: heap ballooned to %d MB during campaign (at sys=%v fault=%v attempt=%d)",
						ms.HeapAlloc>>20, t.sys, t.ft, t.attempt))
				}
			}
			run := c.cfg.Run
			run.Seed = RunSeed(c.cfg.Seed, t.sys, t.ft, t.attempt)
			start := c.clock.Now()
			res, err := c.runner(t.sys, t.ft, run)
			t.reply <- runOutcome{attempt: t.attempt, res: res, err: err, elapsed: c.clock.Now().Sub(start)}
		}
	}
}

// runCell drives one (system, fault) cell: it keeps up to window attempts
// in flight on the shared worker pool and folds outcomes back strictly in
// attempt order, so the cell is a pure function of the campaign seed no
// matter how many workers run or in what order attempts complete. Runs
// that finish after the cell has reached RunsPerCell crashes are
// speculative overshoot and are dropped unmerged.
func (c *campaign) runCell(sys System, ft fault.Type, window int) *Cell {
	cell := &Cell{ByKind: make(map[kernel.CrashKind]int)}
	maxAttempts := c.cfg.RunsPerCell * c.cfg.MaxAttemptsFactor
	reply := make(chan runOutcome, window)
	pending := make(map[int]runOutcome)
	next, outstanding := 0, 0

	for cell.Crashes < c.cfg.RunsPerCell && cell.Attempts < maxAttempts {
		// Keep the issue window full; stop issuing on abort.
		issuing := true
		for issuing && outstanding < window && next < maxAttempts {
			select {
			case c.tasks <- runTask{sys: sys, ft: ft, attempt: next, reply: reply}:
				next++
				outstanding++
			case <-c.done:
				issuing = false
			}
		}
		if outstanding == 0 {
			break // aborted, or attempt budget exhausted
		}
		out := <-reply
		outstanding--
		pending[out.attempt] = out
		// Fold the contiguous prefix; cell.Attempts is the fold cursor.
		for cell.Crashes < c.cfg.RunsPerCell && cell.Attempts < maxAttempts {
			o, ok := pending[cell.Attempts]
			if !ok {
				break
			}
			delete(pending, cell.Attempts)
			cell.fold(o)
			c.noteMerged(o)
		}
	}

	// Anything still in flight or buffered out-of-order is overshoot.
	for outstanding > 0 {
		<-reply
		outstanding--
		c.wasted.Add(1)
	}
	c.wasted.Add(int64(len(pending)))
	return cell
}

// noteMerged counts a folded run and emits a throttled campaign-level
// progress line. The CAS on the timestamp keeps concurrent cell drivers
// from double-emitting inside one interval.
func (c *campaign) noteMerged(o runOutcome) {
	n := c.merged.Add(1)
	if o.err == nil && o.res.Crashed {
		c.crashes.Add(1)
	}
	if c.cfg.Progress == nil {
		return
	}
	now := c.clock.Now().UnixNano()
	last := c.lastProgress.Load()
	if now-last < int64(progressInterval) || !c.lastProgress.CompareAndSwap(last, now) {
		return
	}
	rate := 0.0
	if s := c.clock.Now().Sub(c.epoch).Seconds(); s > 0 {
		rate = float64(n) / s
	}
	c.emit(fmt.Sprintf("campaign: %d/%d cells, %d runs (%d crashes), %.1f runs/s",
		c.cellsDone.Load(), len(Systems)*len(fault.AllTypes), n, c.crashes.Load(), rate))
}

// emit serialises Progress callbacks across cell drivers.
func (c *campaign) emit(line string) {
	c.progressMu.Lock()
	defer c.progressMu.Unlock()
	c.cfg.Progress(line)
}

// RunCampaign executes the full crash matrix on a pool of worker
// goroutines. Each of the 39 (system, fault) cells is driven
// independently — every run's seed comes from RunSeed, and outcomes fold
// in attempt order — so the same seed and config yield identical cell
// counts, totals, and rendered Table at any Workers value. Timing fields
// (Cell.Elapsed, Summary.WallTime/RunsPerSec/SpeculativeRuns) reflect the
// host and are outside that guarantee.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	clock := cfg.clock
	if clock == nil {
		clock = hostClock{}
	}
	c := &campaign{
		cfg:    cfg,
		runner: cfg.runner,
		tasks:  make(chan runTask),
		done:   make(chan struct{}),
		clock:  clock,
		epoch:  clock.Now(),
	}
	if c.runner == nil {
		c.runner = RunOne
	}

	var workerWG sync.WaitGroup
	workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer workerWG.Done()
			c.worker()
		}()
	}

	// Per-cell speculation window: all cells issue concurrently, so the
	// pool stays busy even with a small window, but near the end of a
	// campaign only a few slow cells remain — scale with the pool, capped
	// so a cell cannot overshoot by more than one round of RunsPerCell.
	window := workers
	if cfg.RunsPerCell > 0 && window > cfg.RunsPerCell {
		window = cfg.RunsPerCell
	}
	if window < 1 {
		window = 1
	}

	rep := &Report{
		Config: cfg,
		Cells:  make(map[System]map[fault.Type]*Cell, len(Systems)),
	}
	for _, sys := range Systems {
		rep.Cells[sys] = make(map[fault.Type]*Cell, len(fault.AllTypes))
	}
	var cellMu sync.Mutex
	var cellWG sync.WaitGroup
	for _, sys := range Systems {
		for _, ft := range fault.AllTypes {
			sys, ft := sys, ft
			cellWG.Add(1)
			go func() {
				defer cellWG.Done()
				cell := c.runCell(sys, ft, window)
				cellMu.Lock()
				rep.Cells[sys][ft] = cell
				cellMu.Unlock()
				c.cellsDone.Add(1)
				if cfg.Progress != nil {
					c.emit(fmt.Sprintf("%-12s %-20s crashes=%d corrupted=%d discarded=%d errors=%d attempts=%d cpu=%v",
						sys, ft, cell.Crashes, cell.Corrupted, cell.Discarded,
						cell.Errors, cell.Attempts, cell.Elapsed.Round(time.Millisecond)))
				}
			}()
		}
	}
	cellWG.Wait()
	close(c.tasks)
	workerWG.Wait()

	rep.Summary = c.summarize(rep, workers)
	return rep, c.abortErr
}

// summarize fills the campaign-level summary from the merged cells.
func (c *campaign) summarize(rep *Report, workers int) Summary {
	s := Summary{
		Seed:            c.cfg.Seed,
		RunsPerCell:     c.cfg.RunsPerCell,
		Workers:         workers,
		WallTime:        c.clock.Now().Sub(c.epoch),
		SpeculativeRuns: int(c.wasted.Load()),
	}
	for _, bySys := range rep.Cells {
		for _, cell := range bySys {
			s.Cells++
			s.Runs += cell.Attempts
			s.Crashes += cell.Crashes
			s.Discarded += cell.Discarded
			s.Errors += cell.Errors
			s.Corrupted += cell.Corrupted
			s.Interrupted += cell.Interrupted
			s.Aborted += cell.Aborted
			s.Quarantined += cell.Quarantined
			s.Salvaged += cell.Salvaged
			s.VolumeLost += cell.VolumeLost
		}
	}
	if s.Runs > 0 {
		s.DiscardRate = float64(s.Discarded) / float64(s.Runs)
		s.ErrorRate = float64(s.Errors) / float64(s.Runs)
	}
	if secs := s.WallTime.Seconds(); secs > 0 {
		s.RunsPerSec = float64(s.Runs) / secs
	}
	return s
}
