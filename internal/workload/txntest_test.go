package workload

import (
	"testing"

	"rio/internal/txn"
)

func cleanVerdict(t *testing.T, v TxnVerdict) {
	t.Helper()
	if len(v.Failures) != 0 || v.Mixed || v.LostAcked || v.Future {
		t.Fatalf("verdict not clean: %+v", v)
	}
}

func TestTxnTestCommitsAreConsistent(t *testing.T) {
	m := newRio(t)
	tt := NewTxnTest(7, 3)
	if err := tt.Setup(m.FS); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tt.Commit(m.FS); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if tt.LastAcked != 21 || tt.LastAttempt != 21 {
		t.Fatalf("acked %d attempt %d, want 21/21", tt.LastAcked, tt.LastAttempt)
	}
	v := tt.Verify(m.FS)
	cleanVerdict(t, v)
	if len(v.IDs) != 3 || v.IDs[0] != 21 {
		t.Fatalf("ids = %v, want three 21s", v.IDs)
	}
}

func TestTxnTestDetectsTornState(t *testing.T) {
	m := newRio(t)
	tt := NewTxnTest(7, 3)
	if err := tt.Setup(m.FS); err != nil {
		t.Fatal(err)
	}
	if err := tt.Commit(m.FS); err != nil {
		t.Fatal(err)
	}
	// Roll one account back to id 1 by hand: a torn write mix.
	old := tt.acctContent(1, 1)
	f, err := m.FS.Open(tt.path(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := tt.Verify(m.FS)
	if !v.Mixed {
		t.Fatalf("mixed ids not flagged: %+v", v)
	}
	if len(v.Failures) == 0 {
		t.Fatal("mixed state produced no failure entry")
	}
}

func TestTxnTestDetectsSmashedFrame(t *testing.T) {
	m := newRio(t)
	tt := NewTxnTest(7, 3)
	if err := tt.Setup(m.FS); err != nil {
		t.Fatal(err)
	}
	f, err := m.FS.Open(tt.path(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, acctHeader+3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v := tt.Verify(m.FS)
	if v.Mixed {
		t.Fatal("a smashed frame must not count as torn")
	}
	if len(v.Failures) != 1 || v.Failures[0].Path != tt.path(2) {
		t.Fatalf("failures = %v, want one undecodable account", v.Failures)
	}
	if len(v.IDs) != 2 {
		t.Fatalf("ids = %v, want the two intact accounts", v.IDs)
	}
}

func TestTxnTestDetectsLostAck(t *testing.T) {
	m := newRio(t)
	tt := NewTxnTest(7, 2)
	if err := tt.Setup(m.FS); err != nil {
		t.Fatal(err)
	}
	if err := tt.Commit(m.FS); err != nil {
		t.Fatal(err)
	}
	// Rewrite every account back to the baseline: consistent, but the
	// acked id 2 is gone.
	for j := 0; j < tt.Accounts; j++ {
		f, err := m.FS.Open(tt.path(j))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(tt.acctContent(1, j), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	v := tt.Verify(m.FS)
	if !v.LostAcked {
		t.Fatalf("lost ack not flagged: %+v", v)
	}
}

// An interrupted commit that left a published record behind must be
// rolled forward by the next Commit, not published over: the mid state
// with only some accounts rewritten would otherwise become permanent.
func TestTxnTestDirtyLogRollsForwardBeforeNextCommit(t *testing.T) {
	m := newRio(t)
	tt := NewTxnTest(7, 3)
	if err := tt.Setup(m.FS); err != nil {
		t.Fatal(err)
	}
	// Simulate a commit that published and half-applied, then errored:
	// publish the record, apply it to account 0 only, keep the log.
	tt.LastAttempt++
	id := tt.LastAttempt
	rec := tt.record(id)
	l := txn.NewLog(m.FS)
	if err := l.Publish([]txn.Record{rec}); err != nil {
		t.Fatal(err)
	}
	one := txn.Record{ID: id, Ops: rec.Ops[:1]}
	if err := l.Apply(&one); err != nil {
		t.Fatal(err)
	}
	tt.dirty = true
	// The accounts now disagree (torn mid state), but the record is
	// still published; the next commit must converge, not tear.
	if err := tt.Commit(m.FS); err != nil {
		t.Fatal(err)
	}
	v := tt.Verify(m.FS)
	cleanVerdict(t, v)
	if v.IDs[0] != tt.LastAcked {
		t.Fatalf("accounts at id %d, want acked id %d", v.IDs[0], tt.LastAcked)
	}
}

func TestTxnTestDeterministicContent(t *testing.T) {
	a := NewTxnTest(42, 3).acctContent(9, 1)
	b := NewTxnTest(42, 3).acctContent(9, 1)
	if string(a) != string(b) {
		t.Fatal("account content not a pure function of (seed, id, acct)")
	}
	c := NewTxnTest(43, 3).acctContent(9, 1)
	if string(a) == string(c) {
		t.Fatal("seed does not reach account content")
	}
}
