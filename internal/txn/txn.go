// Package txn is the WAL-free transaction layer over the protected file
// cache (ROADMAP item 3): multi-op atomicity built on the paper's claim
// that memory with no reliability-induced writes *is* stable storage.
//
// A transaction commits by publishing a commit record into the file
// system — which, under Rio, means into protected cache memory: the
// record is durable the instant the write returns, with no disk barrier
// and no ordering constraint against the data it describes. The
// protocol is
//
//	publish → apply → erase → ack
//
// Publish writes the sealed record (all staged ops, checksummed) to the
// log file. Apply executes the ops; every op is idempotent, so a replay
// after a crash converges to the same state. Erase unlinks the log —
// and because unlinking drops the file's dirty pages from the registry
// without write-back, an erased record can never resurface at warm
// reboot. Ack (the caller answering its client) comes strictly last.
//
// The crash-safety argument follows from that order alone:
//
//   - Crash mid-publish: the record's checksum fails, Recover discards
//     it. The commit was never acked, so nothing promised is lost, and
//     none of its ops ran, so nothing partial is visible.
//   - Crash mid-apply: the record is intact in protected memory.
//     Recover rolls it forward to completion — the transaction becomes
//     visible atomically even though its commit was never acked.
//   - Crash after erase: there is nothing to replay, and the fully
//     applied state is durable (Rio's ordinary write guarantee).
//
// The log therefore never holds an acked transaction: ack happens only
// after erase. Discarding any unparseable tail is always safe, and
// replaying any parseable record is always safe (idempotence). Compare
// the write-ahead log this design rejects: a WAL must be written — and
// synced — *before* the data, which is exactly the reliability-induced
// I/O Rio exists to eliminate; see DESIGN.md §7c.
//
// The package operates on *fs.FS so the riod serving layer, the crash
// harness, and examples can share it without import cycles. It is
// deterministic: no host clock, no map iteration, no randomness.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"rio/internal/fs"
)

// OpKind identifies one transactional operation.
type OpKind uint8

// The transactional op kinds. Reads are not transactional (clients read
// committed state directly); appends are excluded because an append's
// final offset is unknowable at stage time, and replaying it would
// double-apply.
const (
	OpWrite  OpKind = 1 + iota // write Data to Path at Off (absolute)
	OpMkdir                    // create directory Path (mkdir -p)
	OpRemove                   // unlink file / remove empty dir Path
	OpRename                   // rename Path to Path2
)

// Op is one staged operation.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename destination
	Off   int64  // write offset (absolute; never negative)
	Data  []byte // write payload
}

// Record is one sealed transaction: the unit of atomicity.
type Record struct {
	ID  uint64
	Ops []Op
}

// Log paths and limits. The /.txn prefix is reserved: the serving layer
// refuses client operations under it, so the log can never collide with
// user data and Publish may reorder freely against other requests.
const (
	Dir            = "/.txn"
	LogPath        = "/.txn/log"
	QuarantinePath = "/.txn/quarantine"

	// MaxOps bounds ops per record; MaxPathLen and MaxDataLen bound the
	// variable fields. Recover validates every declared length against
	// these and the bytes present before allocating, so a corrupt frame
	// cannot balloon recovery's memory. Publish enforces the same limits
	// on the way in (validateRecord), so a frame that parseRecord would
	// reject as torn can never be published in the first place.
	MaxOps     = 1024
	MaxPathLen = 4096
	MaxDataLen = 1 << 20
)

// maxFileBytes is the largest file the fs can hold; the log is one file,
// so it also bounds a publish.
const maxFileBytes = int64(fs.MaxFileBlocks) * fs.BlockSize

// MaxPublishBytes bounds one group publish: the encoded frames of every
// record in the group must fit a single fs file. Publish refuses larger
// groups before touching the log; group-commit callers budget batches
// against it with Record.EncodedSize and defer commits that do not fit.
const MaxPublishBytes = maxFileBytes

// maxLogBytes bounds how large a log readFile will load. No legitimate
// log can exceed MaxPublishBytes (Publish enforces it, and the fs cannot
// hold a larger file anyway); a var only so tests can shrink it.
var maxLogBytes = MaxPublishBytes

// frameMagic opens every record frame ("RioTxn1\n" big-endian). A frame
// whose first 8 bytes differ is a torn tail and parsing stops.
const frameMagic = 0x52696f54786e310a

// quarantineMagic opens the quarantine file ("RioTxnQ\n" big-endian).
// It differs from frameMagic so neither ParseAll nor lost+found salvage
// can ever mistake quarantined records for a replayable log.
const quarantineMagic = 0x52696f54786e510a

// ErrInterrupted is returned by RecoverOpts when Options.CrashAtStep
// interrupts the roll-forward, mirroring warmreboot's restart protocol.
var ErrInterrupted = errors.New("txn: recovery interrupted (simulated crash)")

// CanonicalPath normalizes path to the single spelling the fs resolves
// it as: a leading "/", components joined by single slashes, no trailing
// slash ("/" itself for the root). It returns ok=false for paths the fs
// would refuse — the empty string or any ".", "..", or empty component.
// The fs trims outer slashes before splitting (splitPath), so "a",
// "//a", and "/a/" all reach the same file; every layer that compares
// path strings — shard routing, the /.txn reservation, the precheck
// overlay — must compare canonical spellings or an alias slips past it.
func CanonicalPath(path string) (string, bool) {
	if isCanonical(path) {
		return path, true
	}
	if path == "" {
		return "", false
	}
	trimmed := strings.Trim(path, "/")
	if trimmed == "" {
		return "/", true
	}
	comps := strings.Split(trimmed, "/")
	for _, c := range comps {
		if c == "" || c == "." || c == ".." {
			return "", false
		}
	}
	return "/" + strings.Join(comps, "/"), true
}

// isCanonical reports whether path is already in canonical form, without
// allocating — the common case on the serving path.
func isCanonical(path string) bool {
	if len(path) < 2 || path[0] != '/' || path[len(path)-1] == '/' {
		return false
	}
	start := 1
	for i := 1; i <= len(path); i++ {
		if i < len(path) && path[i] != '/' {
			continue
		}
		switch path[start:i] {
		case "", ".", "..":
			return false
		}
		start = i + 1
	}
	return true
}

// fnv1a64 is FNV-1a over b (the registry's checksum, reimplemented here
// so the frame format is self-contained).
func fnv1a64(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func appendU16(dst []byte, v uint16) []byte { return append(dst, byte(v>>8), byte(v)) }
func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendRecord appends rec's frame to dst: magic, checksum, then the
// checksummed body (id, op count, ops). The checksum covers everything
// after itself, so a frame torn at any byte fails verification.
func AppendRecord(dst []byte, rec *Record) []byte {
	dst = appendU64(dst, frameMagic)
	cksumAt := len(dst)
	dst = appendU64(dst, 0) // checksum placeholder
	bodyAt := len(dst)
	dst = appendU64(dst, rec.ID)
	dst = appendU32(dst, uint32(len(rec.Ops)))
	for i := range rec.Ops {
		op := &rec.Ops[i]
		dst = append(dst, byte(op.Kind))
		dst = appendU64(dst, uint64(op.Off))
		dst = appendU16(dst, uint16(len(op.Path)))
		dst = append(dst, op.Path...)
		dst = appendU16(dst, uint16(len(op.Path2)))
		dst = append(dst, op.Path2...)
		dst = appendU32(dst, uint32(len(op.Data)))
		dst = append(dst, op.Data...)
	}
	ck := fnv1a64(dst[bodyAt:])
	for i := 0; i < 8; i++ {
		dst[cksumAt+i] = byte(ck >> (56 - 8*i))
	}
	return dst
}

// EncodedSize returns the exact byte length AppendRecord emits for r.
// Group-commit callers budget a batch against MaxPublishBytes with it.
func (r *Record) EncodedSize() int {
	n := 28 // magic + checksum + id + op count
	for i := range r.Ops {
		op := &r.Ops[i]
		n += 17 + len(op.Path) + len(op.Path2) + len(op.Data)
	}
	return n
}

// recCursor is a bounds-checked reader over one frame body. The first
// failure sticks, as in the wire codec.
type recCursor struct {
	buf []byte
	off int
	bad bool
}

func (c *recCursor) take(n int) []byte {
	if c.bad || n < 0 || c.off+n > len(c.buf) || c.off+n < c.off {
		c.bad = true
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *recCursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (c *recCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (c *recCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// parseRecord decodes one frame from the front of buf, returning the
// record and the bytes consumed. ok is false for anything malformed —
// wrong magic, truncation, over-limit length, checksum mismatch — which
// Recover treats as the torn tail: discard it and everything after.
func parseRecord(buf []byte) (rec Record, n int, ok bool) {
	c := &recCursor{buf: buf}
	if c.u64() != frameMagic {
		return rec, 0, false
	}
	declared := c.u64()
	bodyAt := c.off
	rec.ID = c.u64()
	nops := c.u32()
	if c.bad || nops > MaxOps {
		return rec, 0, false
	}
	rec.Ops = make([]Op, 0, nops)
	for i := uint32(0); i < nops; i++ {
		var op Op
		kb := c.take(1)
		if kb == nil {
			return rec, 0, false
		}
		op.Kind = OpKind(kb[0])
		if op.Kind < OpWrite || op.Kind > OpRename {
			return rec, 0, false
		}
		op.Off = int64(c.u64())
		pl := int(c.u16())
		if pl > MaxPathLen {
			return rec, 0, false
		}
		p := c.take(pl)
		if p == nil {
			return rec, 0, false
		}
		op.Path = string(p)
		p2l := int(c.u16())
		if p2l > MaxPathLen {
			return rec, 0, false
		}
		p2 := c.take(p2l)
		if p2 == nil {
			return rec, 0, false
		}
		op.Path2 = string(p2)
		dl := int(c.u32())
		if dl > MaxDataLen {
			return rec, 0, false
		}
		d := c.take(dl)
		if d == nil {
			return rec, 0, false
		}
		if dl > 0 {
			op.Data = append([]byte(nil), d...)
		}
		rec.Ops = append(rec.Ops, op)
	}
	if c.bad {
		return rec, 0, false
	}
	if fnv1a64(buf[bodyAt:c.off]) != declared {
		return rec, 0, false
	}
	return rec, c.off, true
}

// ParseAll decodes the contiguous valid record prefix of data. The first
// malformed frame ends the parse: everything from there on is a torn
// tail, and — because ack strictly follows erase — provably unacked.
func ParseAll(data []byte) []Record {
	var out []Record
	for len(data) > 0 {
		rec, n, ok := parseRecord(data)
		if !ok {
			break
		}
		out = append(out, rec)
		data = data[n:]
	}
	return out
}

// Log is the commit log on one shard's file system. Not safe for
// concurrent use: like the FS it wraps, it belongs to one goroutine.
type Log struct {
	fs *fs.FS
}

// NewLog returns the commit log for fsys.
func NewLog(fsys *fs.FS) *Log { return &Log{fs: fsys} }

// validateRecord refuses records whose frames parseRecord would reject.
// Publishing one would be a trap: the record applies at commit time yet
// vanishes from crash recovery as a "torn tail" — exactly the corruption
// the frame format exists to rule out. The riod staging layer stays
// within these limits by construction; a direct library user gets the
// error instead of a silently unrecoverable frame. Paths must already be
// canonical (CanonicalPath): the precheck overlay and every string
// comparison downstream assume one spelling per file.
func validateRecord(rec *Record) error {
	if len(rec.Ops) > MaxOps {
		return fmt.Errorf("txn: record %d: %d ops exceeds MaxOps=%d", rec.ID, len(rec.Ops), MaxOps)
	}
	for i := range rec.Ops {
		op := &rec.Ops[i]
		if op.Kind < OpWrite || op.Kind > OpRename {
			return fmt.Errorf("txn: record %d op %d: unknown kind %d", rec.ID, i, op.Kind)
		}
		if len(op.Path) > MaxPathLen || len(op.Path2) > MaxPathLen {
			return fmt.Errorf("txn: record %d op %d: path exceeds MaxPathLen=%d", rec.ID, i, MaxPathLen)
		}
		if cp, ok := CanonicalPath(op.Path); !ok || cp != op.Path {
			return fmt.Errorf("txn: record %d op %d: path %q is not canonical", rec.ID, i, op.Path)
		}
		if op.Kind == OpRename {
			if cp, ok := CanonicalPath(op.Path2); !ok || cp != op.Path2 {
				return fmt.Errorf("txn: record %d op %d: rename destination %q is not canonical", rec.ID, i, op.Path2)
			}
		} else if op.Path2 != "" {
			return fmt.Errorf("txn: record %d op %d: path2 is only valid for rename", rec.ID, i)
		}
		if op.Kind == OpWrite {
			if op.Off < 0 {
				return fmt.Errorf("txn: record %d op %d: negative offset %d", rec.ID, i, op.Off)
			}
			if len(op.Data) > MaxDataLen {
				return fmt.Errorf("txn: record %d op %d: %d data bytes exceeds MaxDataLen=%d", rec.ID, i, len(op.Data), MaxDataLen)
			}
		} else {
			if len(op.Data) != 0 {
				return fmt.Errorf("txn: record %d op %d: data is only valid for write", rec.ID, i)
			}
			if op.Off != 0 {
				return fmt.Errorf("txn: record %d op %d: offset is only valid for write", rec.ID, i)
			}
		}
	}
	return nil
}

// Publish atomically-enough writes the group's sealed records to the
// log: one fresh file per publish (the previous log, if any, was erased
// or is superseded), written front to back so a crash leaves a valid
// record prefix plus a checksummed-detectable torn tail. This is the
// group-commit write — one log publish covers every record in recs.
// Records are validated (validateRecord) and the group sized against
// MaxPublishBytes before the log is touched, so a publish can only fail
// mid-write for resource or crash reasons — and then the partial file is
// unlinked, because a surviving valid prefix would replay commits the
// caller never acked as published.
func (l *Log) Publish(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	total := 0
	for i := range recs {
		if err := validateRecord(&recs[i]); err != nil {
			return err
		}
		total += recs[i].EncodedSize()
	}
	if int64(total) > MaxPublishBytes {
		return fmt.Errorf("txn: publish: group of %d records encodes to %d bytes, over MaxPublishBytes=%d; split the group", len(recs), total, MaxPublishBytes)
	}
	buf := make([]byte, 0, total)
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	if _, err := l.fs.Stat(Dir); err != nil {
		if err := l.fs.Mkdir(Dir); err != nil && err != fs.ErrExists {
			return fmt.Errorf("txn: publish: %w", err)
		}
	}
	// A fresh file per publish: the FS has no truncate, and a stale tail
	// from a longer previous log would replay dropped transactions.
	if err := l.fs.Unlink(LogPath); err != nil && err != fs.ErrNotFound {
		return fmt.Errorf("txn: publish: %w", err)
	}
	f, err := l.fs.Create(LogPath)
	if err != nil {
		return fmt.Errorf("txn: publish: %w", err)
	}
	// On any failure past this point a partial log may exist; unlink it
	// (best effort — if even that fails the machine is crashing and the
	// caller's crash path owns the at-least-once ambiguity).
	fail := func(err error) error {
		f.Close()
		l.fs.Unlink(LogPath)
		return fmt.Errorf("txn: publish: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fail(err)
	}
	// The durability point. Under Rio this returns immediately — the
	// record already is stable storage; under write-through policies it
	// is the synchronous log write a WAL would have cost.
	if err := l.fs.Fsync(f); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		l.fs.Unlink(LogPath)
		return fmt.Errorf("txn: publish: %w", err)
	}
	return nil
}

// CheckError reports that Apply's precheck refused a record before
// executing any of its ops: the op at OpIndex cannot succeed against the
// current tree, and retrying will fail identically. Nothing was mutated
// — the failure is atomic, so the caller may answer the commit with a
// typed error and drop the record without leaving partial state behind.
type CheckError struct {
	RecID   uint64
	OpIndex int
	Err     error
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("txn: precheck record %d op %d: %v", e.RecID, e.OpIndex, e.Err)
}

func (e *CheckError) Unwrap() error { return e.Err }

// deterministic reports whether err is a shape-of-the-tree error that
// recurs identically on every retry, as opposed to resource pressure
// (ErrNoSpace, ErrNoInodes), a degraded mount (ErrReadOnly), or crash
// fallout — all of which a later recovery might not see. Callers must
// rule out a crash first (Options.Crashed): after a kernel panic the fs
// serves zeroes and unwinds with arbitrary-looking errors, including
// these sentinels.
func deterministic(err error) bool {
	for _, sentinel := range []error{
		fs.ErrNotFound, fs.ErrExists, fs.ErrNotDir, fs.ErrIsDir,
		fs.ErrNotEmpty, fs.ErrTooBig, fs.ErrNameTooLong, fs.ErrSymlinkLoop,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// entKind is the precheck overlay's belief about one path after the ops
// simulated so far.
type entKind uint8

const (
	entGone entKind = 1 + iota // removed or renamed away
	entFile
	entDir
)

// checker simulates a record's ops against the live tree plus an overlay
// of the record's own effects, mirroring Apply's idempotent semantics op
// for op, so a refused record provably mutated nothing.
type checker struct {
	l  *Log
	ov map[string]entKind
	// ovKeys is ov's insertion order; iterating it instead of the map
	// keeps precheck deterministic (the package promises no map
	// iteration).
	ovKeys []string
}

func (c *checker) set(path string, k entKind) {
	if _, seen := c.ov[path]; !seen {
		c.ovKeys = append(c.ovKeys, path)
	}
	c.ov[path] = k
}

// stat resolves path through the overlay first, then the live fs.
func (c *checker) stat(path string) (entKind, error) {
	if k, ok := c.ov[path]; ok {
		if k == entGone {
			return 0, fs.ErrNotFound
		}
		return k, nil
	}
	st, err := c.l.fs.Stat(path)
	if err != nil {
		return 0, err
	}
	if st.IsDir {
		return entDir, nil
	}
	return entFile, nil
}

func (c *checker) write(op *Op) error {
	if op.Off < 0 {
		return fmt.Errorf("negative offset %d", op.Off)
	}
	if op.Off+int64(len(op.Data)) > maxFileBytes {
		return fs.ErrTooBig
	}
	k, err := c.stat(op.Path)
	switch {
	case err == fs.ErrNotFound:
		if err := c.mkdirAll(parentDir(op.Path)); err != nil {
			return err
		}
		c.set(op.Path, entFile)
	case err != nil:
		return err
	case k == entDir:
		return fs.ErrIsDir
	}
	return nil
}

func (c *checker) mkdirAll(path string) error {
	if path == "" || path == "/" {
		return nil
	}
	k, err := c.stat(path)
	switch {
	case err == fs.ErrNotFound:
		if err := c.mkdirAll(parentDir(path)); err != nil {
			return err
		}
		c.set(path, entDir)
	case err != nil:
		return err
	case k == entFile:
		return fs.ErrNotDir
	}
	return nil
}

func (c *checker) remove(path string) error {
	k, err := c.stat(path)
	if err == fs.ErrNotFound {
		return nil // already removed: replay success
	}
	if err != nil {
		return err
	}
	if k == entDir {
		empty, err := c.dirEmpty(path)
		if err != nil {
			return err
		}
		if !empty {
			return fs.ErrNotEmpty
		}
	}
	c.set(path, entGone)
	return nil
}

func (c *checker) rename(op *Op) error {
	srcKind, err := c.stat(op.Path)
	if err == fs.ErrNotFound {
		return nil // source gone: the rename already ran
	}
	if err != nil {
		return err
	}
	if err := c.mkdirAll(parentDir(op.Path2)); err != nil {
		return err
	}
	dstKind, err := c.stat(op.Path2)
	switch {
	case err == fs.ErrNotFound:
	case err != nil:
		return err
	case dstKind == entDir:
		return fs.ErrIsDir
	}
	c.set(op.Path, entGone)
	c.set(op.Path2, srcKind)
	return nil
}

// dirEmpty reports whether path would be empty: live children not
// overlay-deleted, plus overlay entries created under it.
func (c *checker) dirEmpty(path string) (bool, error) {
	ents, err := c.l.fs.ReadDir(path)
	switch err {
	case nil:
	case fs.ErrNotFound, fs.ErrNotDir:
		// Overlay-only directory: any children live in the overlay.
		ents = nil
	default:
		return false, err
	}
	prefix := path + "/"
	if path == "/" {
		prefix = "/"
	}
	for _, e := range ents {
		if k, ok := c.ov[prefix+e.Name]; ok && k == entGone {
			continue
		}
		return false, nil
	}
	for _, k := range c.ovKeys {
		if strings.HasPrefix(k, prefix) && k != path && c.ov[k] != entGone {
			return false, nil
		}
	}
	return true, nil
}

// checkPath canonicalizes a record path for the precheck overlay and
// refuses components the fs itself would refuse, so spelling can neither
// alias two overlay keys nor fail deterministically mid-apply.
func checkPath(p string) (string, error) {
	cp, ok := CanonicalPath(p)
	if !ok {
		return "", fmt.Errorf("malformed path %q", p)
	}
	if cp != "/" {
		for _, comp := range strings.Split(cp[1:], "/") {
			if len(comp) > fs.MaxNameLen {
				return "", fs.ErrNameTooLong
			}
		}
	}
	return cp, nil
}

// precheck simulates rec against the live tree before Apply mutates
// anything, so a record the tree's shape rejects fails atomically (a
// *CheckError) instead of stranding a partial application. Passing does
// not guarantee Apply succeeds — space can run out, the machine can
// crash — it guarantees no *deterministic* failure strikes mid-record.
func (l *Log) precheck(rec *Record) error {
	c := &checker{l: l, ov: make(map[string]entKind)}
	for i := range rec.Ops {
		cop := rec.Ops[i]
		var err error
		cop.Path, err = checkPath(cop.Path)
		if err == nil && cop.Kind == OpRename {
			cop.Path2, err = checkPath(cop.Path2)
		}
		if err == nil {
			switch cop.Kind {
			case OpWrite:
				err = c.write(&cop)
			case OpMkdir:
				err = c.mkdirAll(cop.Path)
			case OpRemove:
				err = c.remove(cop.Path)
			case OpRename:
				err = c.rename(&cop)
			default:
				err = fmt.Errorf("unknown op kind %d", cop.Kind)
			}
		}
		if err != nil {
			return &CheckError{RecID: rec.ID, OpIndex: i, Err: err}
		}
	}
	return nil
}

// Apply executes rec's ops in order, after precheck proves the tree's
// shape cannot reject any of them partway (a shape rejection surfaces as
// a *CheckError with nothing mutated). Every op is idempotent — applying
// a record any number of times, including resuming after a partial
// application, converges to the same state:
//
//   - write: absolute offset, so a re-write lands identically
//   - mkdir: exists is success
//   - remove: not-found is success
//   - rename: a missing source with no destination either way means the
//     rename (or its remove) already happened — success
func (l *Log) Apply(rec *Record) error {
	if err := l.precheck(rec); err != nil {
		return err
	}
	for i := range rec.Ops {
		op := &rec.Ops[i]
		var err error
		switch op.Kind {
		case OpWrite:
			err = l.applyWrite(op)
		case OpMkdir:
			err = l.mkdirAll(op.Path)
		case OpRemove:
			err = l.applyRemove(op.Path)
		case OpRename:
			err = l.applyRename(op)
		default:
			err = fmt.Errorf("unknown op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("txn: apply record %d op %d (%q): %w", rec.ID, i, op.Path, err)
		}
	}
	return nil
}

func (l *Log) applyWrite(op *Op) error {
	if op.Off < 0 {
		return fmt.Errorf("negative offset %d", op.Off)
	}
	f, err := l.fs.Open(op.Path)
	if err == fs.ErrNotFound {
		if err := l.mkdirAll(parentDir(op.Path)); err != nil {
			return err
		}
		f, err = l.fs.Create(op.Path)
	}
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(op.Data, op.Off); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (l *Log) applyRemove(path string) error {
	st, err := l.fs.Stat(path)
	if err == fs.ErrNotFound {
		return nil // already removed
	}
	if err != nil {
		return err
	}
	if st.IsDir {
		err = l.fs.Rmdir(path)
	} else {
		err = l.fs.Unlink(path)
	}
	if err == fs.ErrNotFound {
		return nil
	}
	return err
}

func (l *Log) applyRename(op *Op) error {
	if _, err := l.fs.Stat(op.Path); err == fs.ErrNotFound {
		// Source gone: on replay this means the rename already ran.
		return nil
	} else if err != nil {
		return err
	}
	if err := l.mkdirAll(parentDir(op.Path2)); err != nil {
		return err
	}
	return l.fs.Rename(op.Path, op.Path2)
}

func (l *Log) mkdirAll(path string) error {
	if path == "" || path == "/" {
		return nil
	}
	if st, err := l.fs.Stat(path); err == nil {
		if st.IsDir {
			return nil
		}
		return fs.ErrNotDir
	}
	if err := l.mkdirAll(parentDir(path)); err != nil {
		return err
	}
	if err := l.fs.Mkdir(path); err != nil && err != fs.ErrExists {
		return err
	}
	return nil
}

func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

// Erase unlinks the log. Unlink drops the file's dirty pages from the
// registry without write-back, so erased records are gone from every
// recovery path — warm reboot cannot restore them and salvage cannot
// resurrect them. That is what makes erase-then-ack sufficient: a
// record still visible to recovery is by construction unacked.
func (l *Log) Erase() error {
	if err := l.fs.Unlink(LogPath); err != nil && err != fs.ErrNotFound {
		return fmt.Errorf("txn: erase: %w", err)
	}
	return nil
}

// Quarantine appends rec's frame to the quarantine file: the audit
// trail of records recovery refused to apply. The file opens with
// quarantineMagic, not frameMagic, so no recovery path — ParseAll on the
// log, salvage in /lost+found — can ever replay it; it exists for the
// operator, and duplicates (a crash between quarantine and erase) are
// harmless.
func (l *Log) Quarantine(rec *Record) error {
	if _, err := l.fs.Stat(Dir); err != nil {
		if err := l.fs.Mkdir(Dir); err != nil && err != fs.ErrExists {
			return fmt.Errorf("txn: quarantine: %w", err)
		}
	}
	off := int64(0)
	if st, err := l.fs.Stat(QuarantinePath); err == nil && !st.IsDir {
		off = st.Size
	}
	var buf []byte
	if off == 0 {
		buf = appendU64(buf, quarantineMagic)
	}
	buf = AppendRecord(buf, rec)
	f, err := l.fs.Open(QuarantinePath)
	if err == fs.ErrNotFound {
		f, err = l.fs.Create(QuarantinePath)
	}
	if err != nil {
		return fmt.Errorf("txn: quarantine: %w", err)
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		f.Close()
		return fmt.Errorf("txn: quarantine: %w", err)
	}
	if err := l.fs.Fsync(f); err != nil {
		f.Close()
		return fmt.Errorf("txn: quarantine: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("txn: quarantine: %w", err)
	}
	return nil
}

// Options parameterises Recover, mirroring warmreboot.Options:
// CrashAtStep > 0 interrupts the roll-forward with ErrInterrupted before
// that step executes. Recovery restarts from scratch; every step is
// idempotent, so the restart converges.
type Options struct {
	CrashAtStep int

	// Crashed reports whether the machine under the fs has crashed.
	// After a kernel panic the fs serves zeroes and unwinds with
	// arbitrary-looking errors, so recovery must not classify an apply
	// failure as deterministic (and quarantine the record) without
	// consulting it. Nil means "cannot crash mid-call" — fine for tests
	// and offline tools, wrong for a live shard.
	Crashed func() bool
}

// RecoverStats reports what a recovery found and did.
type RecoverStats struct {
	Records     int // valid records found (log + salvage)
	Applied     int // records rolled forward
	Quarantined int // records refused deterministically and quarantined
	SalvageLogs int // /lost+found files recognised as txn-log salvage
}

// Recover rolls the published log forward after a crash: parse the
// valid record prefix, apply every record, erase. It also sweeps
// /lost+found for salvaged log pages — if the crash cost the log file
// its metadata, warm reboot reassembles the orphaned pages at their
// original offsets under /lost+found, where the frame magic identifies
// them — and rolls those forward too. Anything in either place is
// unacked-or-mid-apply, so replaying is always safe and dropping a
// torn tail never loses a promised commit.
func (l *Log) Recover() (RecoverStats, error) {
	return l.RecoverOpts(Options{})
}

// RecoverOpts is Recover with crash-injection options.
func (l *Log) RecoverOpts(opts Options) (RecoverStats, error) {
	var st RecoverStats
	step := 0
	tick := func() bool {
		step++
		return opts.CrashAtStep > 0 && step >= opts.CrashAtStep
	}

	data, err := l.readFile(LogPath)
	if err != nil {
		// An unreadable log is not an empty one: erasing it would
		// silently discard published (possibly mid-apply) records, so
		// recovery refuses to proceed instead of guessing.
		return st, err
	}
	recs := ParseAll(data)
	salvage := l.salvageLogs()
	st.SalvageLogs = len(salvage)
	for _, sv := range salvage {
		recs = append(recs, sv.recs...)
	}
	st.Records = len(recs)

	for i := range recs {
		if tick() {
			return st, ErrInterrupted
		}
		if err := l.Apply(&recs[i]); err != nil {
			if opts.Crashed != nil && opts.Crashed() {
				return st, err
			}
			var ce *CheckError
			if errors.As(err, &ce) || deterministic(err) {
				// The tree's shape rejects this record and always will;
				// retrying forever would wedge the shard on one bad
				// record. It was never acked — erase follows apply and
				// ack follows erase — so dropping it breaks no promise.
				// Keep the evidence and move on.
				if qerr := l.Quarantine(&recs[i]); qerr != nil {
					return st, qerr
				}
				st.Quarantined++
				continue
			}
			return st, err
		}
		st.Applied++
	}
	for _, sv := range salvage {
		if tick() {
			return st, ErrInterrupted
		}
		if err := l.fs.Unlink(sv.path); err != nil && err != fs.ErrNotFound {
			return st, fmt.Errorf("txn: recover: %w", err)
		}
	}
	if tick() {
		return st, ErrInterrupted
	}
	if err := l.Erase(); err != nil {
		return st, err
	}
	return st, nil
}

// readFile returns path's contents. A missing file is (nil, nil): an
// erased or never-published log. Anything else that prevents reading is
// an error, never an empty result — a caller that mistook "could not
// read" for "nothing there" would erase a log whose published records
// may be mid-apply.
func (l *Log) readFile(path string) ([]byte, error) {
	st, err := l.fs.Stat(path)
	if err == fs.ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("txn: read %s: %w", path, err)
	}
	if st.IsDir {
		return nil, fmt.Errorf("txn: read %s: %w", path, fs.ErrIsDir)
	}
	if st.Size < 0 || st.Size > maxLogBytes {
		return nil, fmt.Errorf("txn: read %s: implausible size %d (max %d)", path, st.Size, maxLogBytes)
	}
	f, err := l.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("txn: read %s: %w", path, err)
	}
	defer f.Close()
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("txn: read %s: %w", path, err)
	}
	return buf, nil
}

type salvagedLog struct {
	path string
	recs []Record
}

// salvageLogs scans /lost+found for files whose content opens with the
// frame magic — warm reboot's salvage of an orphaned txn log — and
// parses their record prefixes. Files are visited in sorted name order
// so recovery is deterministic.
func (l *Log) salvageLogs() []salvagedLog {
	ents, err := l.fs.ReadDir("/lost+found")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir && !e.IsSymlink {
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	var out []salvagedLog
	for _, name := range names {
		path := "/lost+found/" + name
		data, err := l.readFile(path)
		if err != nil {
			// Unreadable salvage candidates stay in place: skipping one
			// never erases it, so nothing published is discarded.
			continue
		}
		if len(data) < 8 {
			continue
		}
		var magic uint64
		for _, b := range data[:8] {
			magic = magic<<8 | uint64(b)
		}
		if magic != frameMagic {
			continue
		}
		if recs := ParseAll(data); len(recs) > 0 {
			out = append(out, salvagedLog{path: path, recs: recs})
		}
	}
	return out
}
