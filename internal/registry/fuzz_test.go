package registry

import (
	"testing"

	"rio/internal/mem"
)

// splitmix64 for the fuzz streams (local copy, same idiom as the kvm
// fuzzer; the stream needs no cross-version stability).
func next(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestParseTotalOnHostileInputs is the warm-reboot path's safety net:
// Parse consumes a memory dump and a frame list from a crashed kernel,
// and must never Go-panic no matter how truncated the dump or how
// garbage the frame indices — a recovery routine that crashes on bad
// input is itself a reliability bug. Every hostile frame must be fully
// accounted as BadEntries, never silently skipped.
func TestParseTotalOnHostileInputs(t *testing.T) {
	seed := uint64(0x5210)
	perFrame := mem.PageSize / EntrySize
	for round := 0; round < 500; round++ {
		// Dumps of awkward sizes: empty, sub-page, unaligned, multi-page.
		dlen := int(next(&seed) % (4 * mem.PageSize))
		if round%7 == 0 {
			dlen = 0
		}
		dump := make([]byte, dlen)
		for i := 0; i < dlen/17; i++ {
			dump[next(&seed)%uint64(dlen)] = byte(next(&seed))
		}

		// Frame lists mixing plausible, out-of-range, negative, and
		// overflow-inducing indices.
		nf := 1 + int(next(&seed)%5)
		frames := make([]int, nf)
		hostile := 0
		for i := range frames {
			switch next(&seed) % 5 {
			case 0:
				frames[i] = int(next(&seed) % 8) // plausible
			case 1:
				frames[i] = -1 - int(next(&seed)%1000) // negative
				hostile++
			case 2:
				frames[i] = 1 << 40 // far past any dump
				hostile++
			case 3:
				frames[i] = int(uint64(1)<<51 + next(&seed)%100) // FrameBase overflow
				hostile++
			default:
				frames[i] = dlen/mem.PageSize + int(next(&seed)%4) // near the end
			}
		}

		entries, bad := Parse(dump, frames) // must return, never panic
		if bad < hostile*perFrame {
			t.Fatalf("round %d: %d hostile frames but only %d bad entries (want >= %d)",
				round, hostile, bad, hostile*perFrame)
		}
		// Anything Parse does return must at least be internally valid.
		for _, e := range entries {
			if e.Kind != KindMeta && e.Kind != KindData {
				t.Fatalf("round %d: parsed entry with kind %d", round, e.Kind)
			}
		}
	}
}

// TestParseTruncatedDumpSizes pins the specific satellite bug: a dump shorter
// than the registry region (e.g. a partial swap write) must be counted
// as bad entries, not sliced past the end.
func TestParseTruncatedDumpSizes(t *testing.T) {
	perFrame := mem.PageSize / EntrySize
	for _, dlen := range []int{0, 1, EntrySize - 1, mem.PageSize - 1, mem.PageSize + 3} {
		dump := make([]byte, dlen)
		entries, bad := Parse(dump, []int{0, 1})
		if len(entries) != 0 {
			t.Fatalf("dump len %d: parsed %d entries from zeroes", dlen, len(entries))
		}
		wantBad := 2 * perFrame
		if dlen >= mem.PageSize {
			wantBad = perFrame // frame 0 fits (all zero slots), frame 1 does not
		}
		if bad != wantBad {
			t.Fatalf("dump len %d: bad = %d, want %d", dlen, bad, wantBad)
		}
	}
}
