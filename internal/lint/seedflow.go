package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Seedflow flags seed values derived by arithmetic — seed++, seed+i,
// base^constant — instead of sim.Mix. This is the PR-1 bug class: a
// shared counter (or any arithmetic chain) couples streams, so changing
// how many seeds one consumer draws silently resamples every later
// consumer, and nearby seeds feed correlated state into weak PRNG
// seeding. sim.Mix(parent, coordinates...) derives an independent,
// well-dispersed stream per point in a parameter space and is the only
// sanctioned derivation.
//
// The heuristic keys on names: any identifier or field whose name
// contains "seed" that is incremented, compound-assigned with an
// arithmetic operator, assigned from an arithmetic expression, or used
// as an operand of one, is flagged. One diagnostic per source line;
// suppress deliberate non-derivation arithmetic with
// `//riolint:seedflow <reason>`.
var Seedflow = &Analyzer{
	Name:      "seedflow",
	Directive: "seedflow",
	Doc:       "seeds derived by counter/arithmetic instead of sim.Mix",
	Run:       runSeedflow,
}

var arithAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.XOR_ASSIGN: true, token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

var arithBinOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.OR: true, token.AND: true,
	token.AND_NOT: true,
}

func runSeedflow(p *Pass) {
	seen := make(map[string]map[int]bool) // file -> line -> reported
	report := func(pos token.Pos, format string, args ...any) {
		position := p.Fset.Position(pos)
		lines := seen[position.Filename]
		if lines == nil {
			lines = make(map[int]bool)
			seen[position.Filename] = lines
		}
		if lines[position.Line] {
			return
		}
		lines[position.Line] = true
		p.Reportf(pos, format, args...)
	}

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IncDecStmt:
				if seedNamed(p, s.X) {
					report(s.Pos(),
						"%s%s derives seeds from a shared counter, coupling every later stream; derive each seed as sim.Mix(parent, coordinates...)",
						types.ExprString(s.X), s.Tok)
				}

			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if !seedNamed(p, lhs) {
						continue
					}
					if arithAssignOps[s.Tok] {
						report(s.Pos(),
							"%s %s … advances a seed arithmetically; derive independent seeds with sim.Mix(parent, coordinates...)",
							types.ExprString(lhs), s.Tok)
					} else if (s.Tok == token.ASSIGN || s.Tok == token.DEFINE) && i < len(s.Rhs) {
						if b, ok := unparen(s.Rhs[i]).(*ast.BinaryExpr); ok && arithBinOps[b.Op] {
							report(s.Pos(),
								"%s is derived by arithmetic (%s); nearby seeds are correlated — use sim.Mix(parent, coordinates...)",
								types.ExprString(lhs), types.ExprString(s.Rhs[i]))
						}
					}
				}

			case *ast.BinaryExpr:
				if !arithBinOps[s.Op] || !isInteger(p, s) {
					return true
				}
				if seedNamed(p, s.X) || seedNamed(p, s.Y) {
					report(s.Pos(),
						"seed arithmetic %s produces correlated streams; use sim.Mix(parent, coordinates...)",
						types.ExprString(s))
					return false // one report per chain
				}
			}
			return true
		})
	}
}

// seedNamed reports whether the expression names a seed: an identifier,
// field, or element whose (rightmost) name contains "seed".
func seedNamed(p *Pass, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "seed") || seedNamed(p, x.X)
	case *ast.IndexExpr:
		return seedNamed(p, x.X)
	case *ast.StarExpr:
		return seedNamed(p, x.X)
	case *ast.UnaryExpr:
		return seedNamed(p, x.X)
	case *ast.CallExpr:
		// Look through conversions: uint64(seed) is still the seed.
		if tv, ok := p.Pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return seedNamed(p, x.Args[0])
		}
	}
	return false
}

func isInteger(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
