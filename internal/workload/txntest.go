package workload

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/sim"
	"rio/internal/txn"
)

// TxnTest is the transactional oracle workload for the crash campaign:
// a fixed set of "account" files that must always carry the same commit
// id. Every commit rewrites all accounts to a new id in one transaction
// through the publish -> apply -> erase cycle of internal/txn, so after
// a crash plus recovery the accounts must either all show the crashed
// commit's id or all show an earlier (but never pre-ack) one. Accounts
// disagreeing after a clean recovery is a torn transaction — the defect
// the transaction layer exists to rule out.
//
// Each account file is a self-validating frame
//
//	magic u64 | id u64 | acct u32 | plen u32 | payload | cksum u64
//
// whose payload is a pure function of (seed, id, acct), so Verify can
// decode an id with confidence and distinguish "old but intact" from
// "smashed": a frame either checks out byte-for-byte against the oracle
// or counts as detected corruption, never as a plausible stale state.
type TxnTest struct {
	// Accounts is the number of account files rewritten per commit.
	Accounts int

	// LastAcked is the newest commit id whose full publish -> apply ->
	// erase cycle completed: the durability floor. LastAttempt is the
	// newest id whose commit began. After recovery the consistent id
	// must land in [LastAcked, LastAttempt].
	LastAcked   uint64
	LastAttempt uint64

	seed uint64

	// dirty is true while the log may hold a published record that was
	// not fully applied and erased (a commit errored short of a crash).
	// The next commit must roll it forward before publishing over it,
	// exactly as the server's shard does between batches.
	dirty bool
}

// txnAcctDir holds the account files; the txn log itself lives under
// txn.Dir and is owned by the transaction layer.
const txnAcctDir = "/txnacct"

// Account frame layout.
const (
	acctMagic  = 0x52696f41636374 // "RioAcct" tag; version in the low byte
	acctHeader = 8 + 8 + 4 + 4    // magic, id, acct, plen
	acctFooter = 8                // cksum
)

// NewTxnTest returns a workload over `accounts` files, all randomness
// and payload content derived from seed.
func NewTxnTest(seed uint64, accounts int) *TxnTest {
	if accounts < 2 {
		accounts = 2 // one account cannot tear
	}
	return &TxnTest{Accounts: accounts, seed: seed}
}

func (tt *TxnTest) path(acct int) string {
	return fmt.Sprintf("%s/a%02d", txnAcctDir, acct)
}

// payloadLen is a per-account constant so every rewrite of an account
// is exactly the same size: applyWrite does not truncate, and a
// variable length would leave stale frame tails behind older commits.
func (tt *TxnTest) payloadLen(acct int) int {
	return 64 + int(sim.Mix(tt.seed, uint64(acct))%448)
}

// acctContent builds the oracle frame for (id, acct).
func (tt *TxnTest) acctContent(id uint64, acct int) []byte {
	plen := tt.payloadLen(acct)
	buf := make([]byte, 0, acctHeader+plen+acctFooter)
	buf = binary.BigEndian.AppendUint64(buf, acctMagic<<8|1)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(acct))
	buf = binary.BigEndian.AppendUint32(buf, uint32(plen))
	buf = append(buf, kernel.FillBytes(plen, sim.Mix(tt.seed, id, uint64(acct)))...)
	sum := acctCksum(buf[8:])
	return binary.BigEndian.AppendUint64(buf, sum)
}

// acctCksum is FNV-1a-64 over everything after the magic.
func acctCksum(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// record builds the commit record rewriting every account to id.
func (tt *TxnTest) record(id uint64) txn.Record {
	rec := txn.Record{ID: id}
	for j := 0; j < tt.Accounts; j++ {
		rec.Ops = append(rec.Ops, txn.Op{
			Kind: txn.OpWrite,
			Path: tt.path(j),
			Data: tt.acctContent(id, j),
		})
	}
	return rec
}

// Setup creates the account directory and commits the baseline id so
// Verify always has a floor to check against.
func (tt *TxnTest) Setup(fsys *fs.FS) error {
	if err := fsys.Mkdir(txnAcctDir); err != nil && err != fs.ErrExists {
		return err
	}
	return tt.Commit(fsys)
}

// Commit runs one full transaction: publish the record, apply it to
// every account, erase the log, and only then advance LastAcked (the
// workload's ack). An error at any step leaves LastAcked behind and
// marks the log dirty; the next Commit rolls the leftover forward
// before publishing, mirroring the server's discipline that a
// published record is never discarded unapplied.
func (tt *TxnTest) Commit(fsys *fs.FS) error {
	l := txn.NewLog(fsys)
	if tt.dirty {
		// The crash probe keeps recovery from mistaking crash fallout
		// (the fs serves zeroes mid-panic) for a deterministic refusal
		// and quarantining a record that would replay fine at warmboot.
		opts := txn.Options{Crashed: func() bool { return fsys.K.Crashed() != nil }}
		if _, err := l.RecoverOpts(opts); err != nil {
			return err
		}
		tt.dirty = false
	}
	tt.LastAttempt++
	id := tt.LastAttempt
	rec := tt.record(id)
	tt.dirty = true // publish may leave a torn tail; recovery drops it
	if err := l.Publish([]txn.Record{rec}); err != nil {
		return err
	}
	if err := l.Apply(&rec); err != nil {
		return err
	}
	if err := l.Erase(); err != nil {
		return err
	}
	tt.dirty = false
	tt.LastAcked = id
	return nil
}

// TxnVerdict is Verify's judgement of the recovered accounts.
type TxnVerdict struct {
	// IDs holds the decoded id per account, valid entries only, in
	// account order (len < Accounts means some account was undecodable).
	IDs []uint64
	// Mixed: every account decoded but the ids disagree — a torn
	// transaction if recovery reported the storage itself clean.
	Mixed bool
	// LostAcked: a consistent state older than LastAcked — an acked
	// commit was un-done, a durability violation.
	LostAcked bool
	// Future: a consistent state newer than LastAttempt — a commit
	// nobody issued, which would mean the oracle itself is broken.
	Future bool
	// Failures lists every defect found, one entry per account at most
	// plus one for a mixed/ordering violation.
	Failures []Corruption
}

// Verify decodes every account and classifies the recovered state.
// Decode failures are detected corruption (the storage lost data and
// said so, in effect); only a set of fully valid frames with differing
// ids counts toward the torn-transaction verdict.
func (tt *TxnTest) Verify(fsys *fs.FS) TxnVerdict {
	var v TxnVerdict
	allValid := true
	for j := 0; j < tt.Accounts; j++ {
		id, detail := tt.decodeAcct(fsys, j)
		if detail != "" {
			allValid = false
			v.Failures = append(v.Failures, Corruption{tt.path(j), detail})
			continue
		}
		v.IDs = append(v.IDs, id)
	}
	if !allValid {
		return v
	}
	for _, id := range v.IDs[1:] {
		if id != v.IDs[0] {
			v.Mixed = true
			v.Failures = append(v.Failures, Corruption{txnAcctDir,
				fmt.Sprintf("accounts tore across commits: ids %v", v.IDs)})
			return v
		}
	}
	id := v.IDs[0]
	if id < tt.LastAcked {
		v.LostAcked = true
		v.Failures = append(v.Failures, Corruption{txnAcctDir,
			fmt.Sprintf("acked commit lost: accounts at id %d, acked through %d", id, tt.LastAcked)})
	}
	if id > tt.LastAttempt {
		v.Future = true
		v.Failures = append(v.Failures, Corruption{txnAcctDir,
			fmt.Sprintf("phantom commit: accounts at id %d, newest attempt %d", id, tt.LastAttempt)})
	}
	return v
}

// decodeAcct reads one account file and validates its frame end to
// end against the oracle. Returns the decoded id, or a non-empty
// detail describing why the frame is invalid.
func (tt *TxnTest) decodeAcct(fsys *fs.FS, acct int) (uint64, string) {
	p := tt.path(acct)
	f, err := fsys.Open(p)
	if err != nil {
		return 0, "missing: " + err.Error()
	}
	defer f.Close()
	st, err := fsys.Stat(p)
	if err != nil {
		return 0, "stat failed: " + err.Error()
	}
	want := acctHeader + tt.payloadLen(acct) + acctFooter
	if st.Size != int64(want) {
		return 0, fmt.Sprintf("size %d, want %d", st.Size, want)
	}
	data := make([]byte, want)
	if _, err := f.ReadAt(data, 0); err != nil {
		return 0, "read failed: " + err.Error()
	}
	if binary.BigEndian.Uint64(data) != acctMagic<<8|1 {
		return 0, "bad magic"
	}
	id := binary.BigEndian.Uint64(data[8:])
	if got := binary.BigEndian.Uint32(data[16:]); got != uint32(acct) {
		return 0, fmt.Sprintf("account field %d, want %d", got, acct)
	}
	if got := binary.BigEndian.Uint32(data[20:]); got != uint32(tt.payloadLen(acct)) {
		return 0, fmt.Sprintf("payload length field %d, want %d", got, tt.payloadLen(acct))
	}
	if got := binary.BigEndian.Uint64(data[want-acctFooter:]); got != acctCksum(data[8:want-acctFooter]) {
		return 0, "checksum mismatch"
	}
	// The frame is internally consistent; it must also match the oracle
	// bit for bit — content is a pure function of (seed, id, acct).
	if !bytes.Equal(data, tt.acctContent(id, acct)) {
		return 0, fmt.Sprintf("payload does not match oracle for id %d", id)
	}
	return id, ""
}
