// Command rioshell is an interactive shell on a simulated Rio machine:
// create and inspect files, inject the paper's faults, crash the machine,
// and watch a warm reboot bring the file cache back.
//
// Usage:
//
//	rioshell [-policy rio|ufs|mfs|...] [-seed S]
//
// Commands: ls [dir], cat <file>, write <file> <text...>, append <file>
// <text...>, mkdir <dir>, rm <path>, mv <old> <new>, stat <path>, sync,
// batch, stats, faults, inject <fault>, crash, warmboot, coldboot,
// policies, help, quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"rio"
)

func main() {
	policy := flag.String("policy", "rio", "file-system policy")
	seed := flag.Uint64("seed", 1, "machine seed")
	flag.Parse()

	sys, err := rio.New(rio.Config{
		Policy:      rio.Policy(*policy),
		Seed:        *seed,
		Interpreted: true, // so inject works
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioshell:", err)
		os.Exit(1)
	}
	fmt.Printf("rio shell — policy %s (type 'help')\n", *policy)

	sc := bufio.NewScanner(os.Stdin)
	for {
		if crashed, why := sys.Crashed(); crashed {
			fmt.Printf("[machine crashed: %s]\n", why)
		}
		fmt.Print("rio> ")
		if !sc.Scan() {
			// EOF is a normal quit; a read error (closed pipe, oversized
			// line) should be reported, not silently swallowed.
			if err := sc.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "rioshell: stdin:", err)
				os.Exit(1)
			}
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		if done := execute(sys, args); done {
			return
		}
	}
}

func execute(sys *rio.System, args []string) (quit bool) {
	fail := func(err error) {
		if err != nil {
			fmt.Println("error:", err)
		}
	}
	switch args[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("ls [dir] | cat f | write f text | append f text | mkdir d |",
			"rm p | mv a b | ln t l | readlink l | stat p | sync | batch |",
			"stats | faults | inject <fault> | crash | warmboot | coldboot |",
			"ups | powerfail | upsboot | policies | quit")
	case "ls":
		dir := "/"
		if len(args) > 1 {
			dir = args[1]
		}
		ents, err := sys.ReadDir(dir)
		if err != nil {
			fail(err)
			return
		}
		for _, e := range ents {
			kind := "file"
			if e.IsDir {
				kind = "dir "
			}
			fmt.Printf("%s %8d  %s\n", kind, e.Size, e.Name)
		}
	case "cat":
		if len(args) < 2 {
			fmt.Println("usage: cat <file>")
			return
		}
		data, err := sys.ReadFile(args[1])
		if err != nil {
			fail(err)
			return
		}
		fmt.Println(string(data))
	case "write", "append":
		if len(args) < 3 {
			fmt.Println("usage:", args[0], "<file> <text...>")
			return
		}
		text := strings.Join(args[2:], " ")
		if args[0] == "write" {
			fail(sys.WriteFile(args[1], []byte(text)))
			return
		}
		f, err := sys.Open(args[1])
		if err != nil {
			fail(err)
			return
		}
		sz, _ := f.Size()
		_, err = f.WriteAt([]byte(text), sz)
		fail(err)
		fail(f.Close())
	case "mkdir":
		if len(args) < 2 {
			fmt.Println("usage: mkdir <dir>")
			return
		}
		fail(sys.Mkdir(args[1]))
	case "rm":
		if len(args) < 2 {
			fmt.Println("usage: rm <path>")
			return
		}
		fail(sys.Remove(args[1]))
	case "mv":
		if len(args) < 3 {
			fmt.Println("usage: mv <old> <new>")
			return
		}
		fail(sys.Rename(args[1], args[2]))
	case "ln":
		if len(args) < 3 {
			fmt.Println("usage: ln <target> <link>")
			return
		}
		fail(sys.Symlink(args[1], args[2]))
	case "readlink":
		if len(args) < 2 {
			fmt.Println("usage: readlink <link>")
			return
		}
		tgt, err := sys.Readlink(args[1])
		if err != nil {
			fail(err)
			return
		}
		fmt.Println(tgt)
	case "stat":
		if len(args) < 2 {
			fmt.Println("usage: stat <path>")
			return
		}
		st, err := sys.Stat(args[1])
		if err != nil {
			fail(err)
			return
		}
		fmt.Printf("%+v\n", st)
	case "sync":
		sys.Sync()
		fmt.Println("sync complete (under Rio this is a no-op for reliability — " +
			"writes were already permanent)")
	case "batch":
		// Deliberate no-op: riod batches at the server's shard queues;
		// the shell is one client on one machine, so there is nothing to
		// batch here. Listed in help so users discover the distinction.
		fmt.Println("batching happens server-side (riod drains shard queues in " +
			"batches); no-op in the shell")
	case "stats":
		st := sys.Stats()
		fmt.Printf("simulated time %.3fs, %d syscalls, disk %d reads / %d writes (%d bytes),\n",
			st.SimulatedSeconds, st.Syscalls, st.DiskReads, st.DiskWrites, st.DiskBytesWritten)
		fmt.Printf("cache %d hits / %d misses, %d dirty buffers, %d MMU traps, %d kernel steps\n",
			st.CacheHits, st.CacheMisses, st.DirtyBuffers, st.ProtectionFaults, st.KernelSteps)
	case "faults":
		for _, ft := range rio.FaultTypes() {
			fmt.Println(" ", ft)
		}
	case "inject":
		if len(args) < 2 {
			fmt.Println("usage: inject <fault> (see 'faults')")
			return
		}
		if err := sys.InjectFault(rio.FaultType(args[1])); err != nil {
			fail(err)
			return
		}
		fmt.Println("fault armed; keep using the machine until it crashes")
	case "crash":
		sys.Crash("operator-induced crash")
		fmt.Println("machine halted; 'warmboot' restores the file cache, 'coldboot' loses memory")
	case "warmboot":
		rep, err := sys.WarmReboot()
		if err != nil {
			fail(err)
			return
		}
		fmt.Printf("warm reboot: %d registry entries (%d bad), %d meta + %d data buffers restored,\n",
			rep.RegistryEntries, rep.BadEntries, rep.MetaRestored, rep.DataRestored)
		fmt.Printf("%d checksum mismatches, %d mid-write; fsck: %s\n",
			rep.ChecksumMismatches, rep.Changing, rep.FsckSummary)
	case "coldboot":
		fail(sys.ColdReboot())
		fmt.Println("cold reboot complete; memory contents were lost")
	case "ups":
		if err := sys.AttachUPS(); err != nil {
			fail(err)
			return
		}
		fmt.Println("UPS attached (swap disk sized to memory)")
	case "powerfail":
		battery, err := sys.PowerFail()
		if err != nil {
			fail(err)
			return
		}
		if battery > 0 {
			fmt.Printf("power lost; UPS dumped memory to swap in %v of battery\n", battery)
			fmt.Println("recover with 'upsboot'")
		} else {
			fmt.Println("power lost; no UPS — memory is gone ('coldboot' to recover the disk)")
		}
	case "upsboot":
		rep, err := sys.RecoverFromUPS()
		if err != nil {
			fail(err)
			return
		}
		fmt.Printf("recovered from UPS dump: %d meta + %d data buffers restored\n",
			rep.MetaRestored, rep.DataRestored)
	case "policies":
		for _, p := range rio.Policies() {
			fmt.Println(" ", p)
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", args[0])
	}
	return false
}
