package workload

import (
	"encoding/binary"
	"fmt"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// Scan is append-and-scan analytics: a handful of large segment files
// under /scan, each a generation header followed by fixed-size batch
// frames. Writers append batches; scanners read a whole segment
// front-to-back validating every frame (the long sequential reads that
// churn the cache's clean pages); compaction retires a segment and
// starts the next generation empty. The crash questions are the
// log-shaped ones: did an acked append survive, and is the tail after
// recovery a clean frame boundary rather than an interleaving of
// generations?
//
// Segment layout:
//
//	header: magic u64 | seg u64 | gen u64 | cksum u64
//	batch:  batch# u64 | payload (blen-24 bytes) | cksum u64
//
// Batch payloads are pure functions of (seed, seg, gen, batch#), and
// every batch in a segment has the same frame size, so Check can
// decode any prefix and date what it finds.
type Scan struct {
	// Segments is the segment count; BatchesPerSeg triggers compaction
	// when a segment fills.
	Segments      int
	BatchesPerSeg int
	// WriteThrough fsyncs every append and compaction.
	WriteThrough bool

	seed uint64
	rng  *sim.Rand

	gen     []uint64 // current generation per segment (starts at 1 after setup)
	batches []int    // acked batch count in the current generation
	steps   int

	inFlight *scanOp

	// ReadMismatches counts online scan-side frame failures.
	ReadMismatches int
}

// scanOp is the one in-flight segment mutation.
type scanOp struct {
	seg   int
	phase int // scAppend (batch write) or scCompact (unlink+new header)
}

const (
	scAppend = iota
	scCompact
)

const (
	scanMagic  = 0x52696f5363616e30 // "RioScan0"
	scanHeader = 8 + 8 + 8 + 8
)

// NewScan returns the workload over `segments` segment files.
func NewScan(seed uint64, segments, batchesPerSeg int) *Scan {
	if segments < 1 {
		segments = 4
	}
	if batchesPerSeg < 2 {
		batchesPerSeg = 32
	}
	return &Scan{
		Segments:      segments,
		BatchesPerSeg: batchesPerSeg,
		seed:          seed,
		rng:           sim.NewRand(sim.Mix(seed, 0x5CA4F10D)),
		gen:           make([]uint64, segments),
		batches:       make([]int, segments),
	}
}

// Name implements Workload.
func (sc *Scan) Name() string { return "scan" }

func (sc *Scan) path(seg int) string { return fmt.Sprintf("/scan/seg%03d", seg) }

// blen is the fixed batch-frame size for a segment: one or a few
// cache-block-scale rows per frame.
func (sc *Scan) blen(seg int) int {
	return 256 + int(sim.Mix(sc.seed, uint64(seg), 0xB1E4)%1024)
}

// headerFrame builds the segment header for (seg, gen).
func (sc *Scan) headerFrame(seg int, gen uint64) []byte {
	buf := make([]byte, 0, scanHeader)
	buf = binary.BigEndian.AppendUint64(buf, scanMagic)
	buf = binary.BigEndian.AppendUint64(buf, uint64(seg))
	buf = binary.BigEndian.AppendUint64(buf, gen)
	return binary.BigEndian.AppendUint64(buf, fnv64(buf[8:24]))
}

// batchFrame builds batch frame b of (seg, gen).
func (sc *Scan) batchFrame(seg int, gen uint64, b int) []byte {
	n := sc.blen(seg)
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint64(buf, uint64(b))
	buf = append(buf, kernel.FillBytes(n-16, sim.Mix(sc.seed, uint64(seg), gen, uint64(b))|1)...)
	return binary.BigEndian.AppendUint64(buf, fnv64(buf[:n-8]))
}

// Setup creates /scan and generation-1 headers for every segment.
func (sc *Scan) Setup(fsys *fs.FS) error {
	if err := fsys.Mkdir("/scan"); err != nil && err != fs.ErrExists {
		return err
	}
	for seg := 0; seg < sc.Segments; seg++ {
		f, err := fsys.Create(sc.path(seg))
		if err != nil {
			return err
		}
		if _, err := f.Write(sc.headerFrame(seg, 1)); err != nil {
			return err
		}
		if err := fsys.Fsync(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		sc.gen[seg] = 1
		sc.batches[seg] = 0
	}
	return nil
}

// Step appends a batch, scans a segment, or compacts a full one.
func (sc *Scan) Step(fsys *fs.FS) error {
	sc.steps++
	seg := sc.rng.Intn(sc.Segments)
	if sc.batches[seg] >= sc.BatchesPerSeg {
		return sc.doCompact(fsys, seg)
	}
	if sc.rng.Float64() < 0.55 {
		return sc.doAppend(fsys, seg)
	}
	return sc.doScan(fsys, seg)
}

// doAppend appends the next batch frame to seg.
func (sc *Scan) doAppend(fsys *fs.FS, seg int) error {
	b := sc.batches[seg]
	off := int64(scanHeader + b*sc.blen(seg))
	sc.inFlight = &scanOp{seg: seg, phase: scAppend}
	f, err := fsys.Open(sc.path(seg))
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(sc.batchFrame(seg, sc.gen[seg], b), off); err != nil {
		return err
	}
	if sc.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	sc.batches[seg] = b + 1
	sc.inFlight = nil
	return nil
}

// doScan reads the whole segment sequentially and validates every
// frame online.
func (sc *Scan) doScan(fsys *fs.FS, seg int) error {
	f, err := fsys.Open(sc.path(seg))
	if err != nil {
		return err
	}
	size := int64(scanHeader + sc.batches[seg]*sc.blen(seg))
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d := sc.decodeSegment(seg, buf, sc.gen[seg], sc.batches[seg], -1); d != "" {
		sc.ReadMismatches++
	}
	return nil
}

// doCompact retires the full segment: unlink, then a fresh header at
// the next generation.
func (sc *Scan) doCompact(fsys *fs.FS, seg int) error {
	gen := sc.gen[seg] + 1
	sc.inFlight = &scanOp{seg: seg, phase: scCompact}
	if err := fsys.Unlink(sc.path(seg)); err != nil {
		return err
	}
	f, err := fsys.Create(sc.path(seg))
	if err != nil {
		return err
	}
	if _, err := f.Write(sc.headerFrame(seg, gen)); err != nil {
		return err
	}
	if sc.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	sc.gen[seg] = gen
	sc.batches[seg] = 0
	sc.inFlight = nil
	return nil
}

// Check implements Workload: each segment must decode at its acked
// (gen, batches) — or, when the in-flight op touches it, at the
// adjacent states that op could have left behind.
func (sc *Scan) Check(fsys *fs.FS) Verdict {
	var v Verdict
	fl := sc.inFlight
	for seg := 0; seg < sc.Segments; seg++ {
		v.Checked++
		appendHere := fl != nil && fl.seg == seg && fl.phase == scAppend
		compactHere := fl != nil && fl.seg == seg && fl.phase == scCompact

		f, err := fsys.Open(sc.path(seg))
		if err != nil {
			if compactHere {
				continue // caught between unlink and new header
			}
			v.Lost++
			v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg),
				"segment missing: " + err.Error()})
			continue
		}
		st, err := fsys.Stat(sc.path(seg))
		if err != nil {
			f.Close()
			v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg),
				"stat failed: " + err.Error()})
			continue
		}
		buf := make([]byte, st.Size)
		if _, err := f.ReadAt(buf, 0); err != nil {
			f.Close()
			v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg),
				"read failed: " + err.Error()})
			continue
		}
		f.Close()

		gen, derr := sc.decodeHeader(seg, buf)
		if derr != "" {
			if !compactHere {
				v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg), derr})
			}
			continue
		}
		switch {
		case gen == sc.gen[seg]:
			// Current generation: the acked batches must all be there.
			// An in-flight append may add one whole or partial frame at
			// the tail; anything else at the tail is wreckage.
			tail := -1
			want := sc.batches[seg]
			if appendHere {
				tail = want
			}
			if d := sc.decodeSegment(seg, buf, gen, want, tail); d != "" {
				if d == "short segment" && !appendHere {
					// Acked appends vanished below the acked count.
					v.Lost++
				}
				v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg),
					fmt.Sprintf("gen %d: %s", gen, d)})
			}
		case compactHere && gen == sc.gen[seg]+1:
			// Compaction's new header landed; segment must be empty or
			// a clean prefix of nothing (header only).
			if len(buf) != scanHeader {
				v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg),
					fmt.Sprintf("fresh gen %d segment has %d trailing bytes",
						gen, len(buf)-scanHeader)})
			}
		case gen < sc.gen[seg]:
			v.Lost++
			v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg),
				fmt.Sprintf("at gen %d, acked gen %d (compaction lost)", gen, sc.gen[seg])})
		default:
			v.Corruptions = append(v.Corruptions, Corruption{sc.path(seg),
				fmt.Sprintf("phantom gen %d (acked gen %d)", gen, sc.gen[seg])})
		}
	}
	return v
}

// decodeHeader validates the segment header; returns the generation or
// a non-empty failure detail.
func (sc *Scan) decodeHeader(seg int, b []byte) (uint64, string) {
	if len(b) < scanHeader {
		return 0, fmt.Sprintf("truncated header (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint64(b) != scanMagic ||
		binary.BigEndian.Uint64(b[8:]) != uint64(seg) ||
		binary.BigEndian.Uint64(b[24:]) != fnv64(b[8:24]) {
		return 0, "smashed header"
	}
	return binary.BigEndian.Uint64(b[16:]), ""
}

// decodeSegment validates `want` batch frames of (seg, gen) after the
// header, plus an optional maskable tail frame index (tailOK = the one
// batch number allowed to be absent, whole, or partial; -1 for none).
// Returns "" or a failure detail; "short segment" means fewer than
// `want` complete, valid batches.
func (sc *Scan) decodeSegment(seg int, b []byte, gen uint64, want, tailOK int) string {
	n := sc.blen(seg)
	body := b[scanHeader:]
	for i := 0; i < want; i++ {
		fr := body
		if len(fr) < n {
			return "short segment"
		}
		fr = fr[:n]
		expect := sc.batchFrame(seg, gen, i)
		for j := range expect {
			if fr[j] != expect[j] {
				return fmt.Sprintf("batch %d byte %d disagrees with oracle", i, j)
			}
		}
		body = body[n:]
	}
	if len(body) == 0 {
		return ""
	}
	if tailOK < 0 {
		return fmt.Sprintf("%d trailing bytes past acked tail", len(body))
	}
	// In-flight append: the tail may be any prefix of the next frame,
	// but the bytes present must match it.
	expect := sc.batchFrame(seg, gen, tailOK)
	if len(body) > len(expect) {
		return fmt.Sprintf("%d trailing bytes past in-flight tail", len(body)-len(expect))
	}
	for j := range body {
		if body[j] != expect[j] {
			return fmt.Sprintf("in-flight tail byte %d disagrees", j)
		}
	}
	return ""
}
