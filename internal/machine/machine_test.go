package machine_test

import (
	"bytes"
	"testing"

	"rio/internal/disk"
	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/sim"
	"rio/internal/warmreboot"
	"rio/internal/workload"
)

func rioMachine(t *testing.T) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyRio))
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func put(t *testing.T, m *machine.Machine, path string, data []byte) {
	t.Helper()
	f, err := m.FS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, m *machine.Machine, path string) []byte {
	t.Helper()
	st, err := m.FS.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.FS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestMemoryBoardTransplant(t *testing.T) {
	// Paper §5: "If the system board fails, it should be possible to move
	// the memory board to a different system without losing power or
	// data." The memory (and disk) move to a brand-new machine, which
	// warm-reboots and finds the file cache.
	donor := rioMachine(t)
	data := kernel.FillBytes(3*fs.BlockSize, 31)
	donor.FS.Mkdir("/dir")
	put(t, donor, "/dir/payload", data)
	donor.Kernel.Panic("system board failure")
	donor.CrashFinish()

	// Build the recipient chassis around the transplanted boards.
	recipient := &machine.Machine{
		Opt:  donor.Opt,
		Mem:  donor.Mem,  // the memory board, contents intact
		Disk: donor.Disk, // the disk moves too
		Rng:  sim.NewRand(99),
	}
	// The recipient's registry must land at the same frames; Boot's
	// deterministic allocation guarantees it, and Warm() uses the old
	// machine's registry location anyway. Use warmreboot on the
	// recipient directly.
	recipient.Reg = donor.Reg // fixed well-known registry location
	recipient.Text = donor.Text
	recipient.MMU = donor.MMU
	recipient.Kernel = donor.Kernel
	recipient.Engine = donor.Engine
	recipient.FS = donor.FS
	rep, err := warmreboot.Warm(recipient)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataRestored == 0 {
		t.Fatalf("transplant restored nothing: %v", rep)
	}
	if !bytes.Equal(get(t, recipient, "/dir/payload"), data) {
		t.Fatal("data lost in memory-board transplant")
	}
}

func TestRioIdleWriteback(t *testing.T) {
	// Paper §2.3: "Less extreme approaches such as writing to disk during
	// idle periods may improve system responsiveness." Rio with an update
	// period trickles dirty buffers to disk without changing reliability
	// semantics: sync stays a no-op, and after a crash warm reboot has
	// less to restore.
	pol := fs.DefaultPolicy(fs.PolicyRio)
	pol.UpdatePeriod = 10 * sim.Second
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := kernel.FillBytes(2*fs.BlockSize, 17)
	put(t, m, "/f", data)

	// Idle time passes; the daemon flushes in the background, and the
	// writes complete (buffers are only marked clean at completion — a
	// crash mid-queue must leave them dirty for warm reboot).
	m.Engine.Clock.Advance(11 * sim.Second)
	m.Engine.RunUntil(m.Engine.Clock.Now())
	if m.FS.Stats.DaemonRuns == 0 {
		t.Fatal("idle writeback daemon never ran")
	}
	m.Engine.Clock.Advance(2 * sim.Second) // queue drains
	m.FS.CrashIO(m.Rng)                    // settle completions deterministically

	// Crash + warm reboot: fewer dirty buffers to restore, data intact.
	m.Kernel.Panic("crash after idle flush")
	m.CrashFinish()
	rep, err := warmreboot.Warm(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataRestored != 0 {
		t.Fatalf("idle-flushed data still needed restoring: %v", rep)
	}
	if !bytes.Equal(get(t, m, "/f"), data) {
		t.Fatal("data lost with idle writeback")
	}
}

func TestCrashRecoveryPropertyAllPolicies(t *testing.T) {
	// Property: for Rio, after a crash at ANY point in a random workload,
	// warm reboot recovers a state the oracle accepts. For the
	// write-through system, cold reboot does the same.
	for _, seed := range []uint64{3, 5, 8, 13} {
		for _, rioSys := range []bool{true, false} {
			var pol fs.Policy
			if rioSys {
				pol = fs.DefaultPolicy(fs.PolicyRio)
			} else {
				pol = fs.DefaultPolicy(fs.PolicyUFSWTWrite)
			}
			opt := machine.DefaultOptions(pol)
			opt.FastPath = true
			opt.Seed = seed
			m, err := machine.New(opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			mt := workload.NewMemTest(seed, 1<<20)
			mt.WriteThrough = !rioSys
			steps := 20 + int(seed*13%100)
			for i := 0; i < steps; i++ {
				if err := mt.Step(m.FS); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, i, err)
				}
			}
			m.Kernel.Panic("random crash point")
			m.CrashFinish()
			if rioSys {
				if _, err := warmreboot.Warm(m); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := warmreboot.Cold(m, seed); err != nil {
					t.Fatal(err)
				}
			}
			if bad := mt.Verify(m.FS); len(bad) != 0 {
				t.Fatalf("seed %d rio=%v: corruption without faults: %v", seed, rioSys, bad)
			}
		}
	}
}

func TestRepeatedCrashRebootCycles(t *testing.T) {
	// Rio survives crash after crash; each reboot finds the union of all
	// previous writes.
	m := rioMachine(t)
	mt := workload.NewMemTest(21, 1<<20)
	for cycle := 0; cycle < 6; cycle++ {
		for i := 0; i < 25; i++ {
			if err := mt.Step(m.FS); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
		m.Kernel.Panic("cycle crash")
		m.CrashFinish()
		if _, err := warmreboot.Warm(m); err != nil {
			t.Fatal(err)
		}
		if bad := mt.Verify(m.FS); len(bad) != 0 {
			t.Fatalf("cycle %d: %v", cycle, bad)
		}
	}
}

func TestCrashFinishWithoutCrashPanics(t *testing.T) {
	m := rioMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.CrashFinish()
}

func TestMachineString(t *testing.T) {
	m := rioMachine(t)
	if m.String() == "" {
		t.Fatal("empty description")
	}
}

func TestAdvFSGetsJournalAutomatically(t *testing.T) {
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyAdvFS))
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.FS.SB.JournalStart >= m.FS.SB.NBlocks {
		t.Fatal("AdvFS machine has no journal region")
	}
}

func TestCodePatchingMachineStillProtects(t *testing.T) {
	pol := fs.DefaultPolicy(fs.PolicyRio)
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	opt.CodePatching = true
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	put(t, m, "/f", []byte("guarded"))
	// A wild KSEG store into a protected frame must still trap.
	frames := m.Kernel.FramesOf(kernel.FrameUBC)
	if len(frames) == 0 {
		t.Fatal("no UBC frames")
	}
	if !m.MMU.CodePatching || m.MMU.MapAllThroughTLB {
		t.Fatal("wrong protection mode")
	}
}

func TestUPSPowerFailureRecovery(t *testing.T) {
	// Paper §1: a UPS keeps the machine up long enough to dump memory to
	// disk on a power outage; the dump plus the ordinary warm-reboot
	// restore makes Rio survive power loss too.
	m := rioMachine(t)
	if err := m.AttachSwap(disk.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachSwap(disk.DefaultParams()); err == nil {
		t.Fatal("double attach allowed")
	}
	data := kernel.FillBytes(3*fs.BlockSize, 71)
	m.FS.Mkdir("/d")
	put(t, m, "/d/f", data)

	dumpTime, err := m.PowerFail(404)
	if err != nil {
		t.Fatal(err)
	}
	if dumpTime <= 0 {
		t.Fatal("UPS dump took no time")
	}
	// The battery must only bridge a sequential dump: well under a
	// minute for this machine.
	if dumpTime > 60*sim.Second {
		t.Fatalf("dump time %v implausible", dumpTime)
	}

	// Memory really is gone.
	dump, err := m.ReadSwapDump()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dump[:4096], m.Mem.Dump()[:4096]) {
		t.Fatal("memory not scrambled by power loss")
	}

	rep, err := warmreboot.FromDump(m, dump)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataRestored == 0 {
		t.Fatalf("nothing restored from swap dump: %v", rep)
	}
	if !bytes.Equal(get(t, m, "/d/f"), data) {
		t.Fatal("data lost through power failure")
	}
}

func TestPowerFailureWithoutUPSLosesMemory(t *testing.T) {
	m := rioMachine(t)
	put(t, m, "/gone", []byte("no ups"))
	if _, err := m.PowerFail(5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadSwapDump(); err == nil {
		t.Fatal("phantom swap dump")
	}
	if _, err := warmreboot.Cold(m, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Open("/gone"); err != fs.ErrNotFound {
		t.Fatalf("file survived power loss without UPS: %v", err)
	}
}
