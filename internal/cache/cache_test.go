package cache

import (
	"bytes"
	"testing"

	"rio/internal/kernel"
	"rio/internal/mem"
	"rio/internal/mmu"
	"rio/internal/registry"
)

type env struct {
	k *kernel.Kernel
	r *registry.Registry
	c *Cache
}

func newEnv(t *testing.T, protect bool, metaCap, dataCap int) *env {
	t.Helper()
	m := mem.New(256 * mem.PageSize)
	u := mmu.New(m)
	if protect {
		u.EnforceProtection = true
		u.MapAllThroughTLB = true
	}
	k := kernel.New(m, u, kernel.BuildText())
	r, err := registry.New(k, 2, protect)
	if err != nil {
		t.Fatal(err)
	}
	c := New(k, r, metaCap, dataCap)
	c.Protect = protect
	c.Checksums = true
	return &env{k: k, r: r, c: c}
}

func TestInsertAndLookupMeta(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	content := kernel.FillBytes(BlockSize, 7)
	b, err := e.c.InsertMeta(5, content)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.c.LookupMeta(5); got != b {
		t.Fatal("lookup missed")
	}
	if e.c.LookupMeta(6) != nil {
		t.Fatal("phantom hit")
	}
	if e.c.Stats.MetaHits != 1 || e.c.Stats.MetaMisses != 1 {
		t.Fatalf("stats %+v", e.c.Stats)
	}
	// Content landed in the frame.
	if !bytes.Equal(e.c.Contents(b), content) {
		t.Fatal("content mismatch")
	}
	// Registry entry created and consistent.
	ent, ok := e.r.Get(b.Slot)
	if !ok || ent.Kind != registry.KindMeta || ent.Block != 5 {
		t.Fatalf("registry entry %+v", ent)
	}
	if ent.Cksum != kernel.CksumBytes(content) {
		t.Fatal("registry checksum wrong")
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	if _, err := e.c.InsertMeta(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.InsertMeta(1, nil); err == nil {
		t.Fatal("duplicate insert allowed")
	}
	if _, err := e.c.InsertData(1, 0, -1, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.InsertData(1, 0, -1, nil, 0); err == nil {
		t.Fatal("duplicate data insert allowed")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, protect := range []bool{false, true} {
		e := newEnv(t, protect, 8, 8)
		b, err := e.c.InsertData(3, 2, -1, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("rio write path round trip")
		if err := e.c.Write(b, 100, payload, 100+len(payload)); err != nil {
			t.Fatalf("protect=%v: %v", protect, err)
		}
		got, err := e.c.Read(b, 100, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("protect=%v: got %q", protect, got)
		}
		if !b.Dirty {
			t.Fatal("write did not dirty buffer")
		}
		ent, _ := e.r.Get(b.Slot)
		if ent.Flags&registry.FlagDirty == 0 {
			t.Fatal("registry not dirty")
		}
		if ent.Flags&registry.FlagChanging != 0 {
			t.Fatal("changing flag left set after successful write")
		}
		if ent.Cksum != kernel.CksumBytes(e.c.Contents(b)) {
			t.Fatal("checksum stale after write")
		}
		if ent.Size != uint32(100+len(payload)) {
			t.Fatalf("entry size %d", ent.Size)
		}
	}
}

func TestWriteKeepsFrameProtected(t *testing.T) {
	e := newEnv(t, true, 8, 8)
	b, _ := e.c.InsertData(1, 0, -1, nil, 0)
	if !e.k.Mem.Frame(b.Frame).WriteProtected {
		t.Fatal("idle buffer not protected")
	}
	if err := e.c.Write(b, 0, []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if !e.k.Mem.Frame(b.Frame).WriteProtected {
		t.Fatal("buffer left unprotected after write")
	}
	// Wild store into the buffer traps.
	if trap := e.k.MMU.StoreByte(b.Addr, 0xff); trap == nil {
		t.Fatal("wild store succeeded on protected buffer")
	}
}

func TestWildStoreBreaksChecksum(t *testing.T) {
	// Protection off: a wild store lands, and the registry checksum then
	// disagrees with the contents — exactly how crash tests detect direct
	// corruption.
	e := newEnv(t, false, 8, 8)
	b, _ := e.c.InsertData(1, 0, -1, nil, 0)
	if err := e.c.Write(b, 0, []byte("good data"), 9); err != nil {
		t.Fatal(err)
	}
	if trap := e.k.MMU.StoreByte(b.Addr+3, 0xee); trap != nil {
		t.Fatalf("unexpected trap: %v", trap)
	}
	ent, _ := e.r.Get(b.Slot)
	if ent.Cksum == kernel.CksumBytes(e.c.Contents(b)) {
		t.Fatal("checksum still matches after wild store")
	}
}

func TestShadowWrite(t *testing.T) {
	for _, protect := range []bool{false, true} {
		e := newEnv(t, protect, 8, 8)
		oldData := kernel.FillBytes(BlockSize, 11)
		b, err := e.c.InsertMeta(9, oldData)
		if err != nil {
			t.Fatal(err)
		}
		newData := kernel.FillBytes(BlockSize, 22)
		if err := e.c.WriteShadow(b, newData); err != nil {
			t.Fatalf("protect=%v: %v", protect, err)
		}
		if !bytes.Equal(e.c.Contents(b), newData) {
			t.Fatal("shadow write lost data")
		}
		ent, _ := e.r.Get(b.Slot)
		if int(ent.Frame) != b.Frame {
			t.Fatal("registry not pointed back at original")
		}
		if ent.Cksum != kernel.CksumBytes(newData) {
			t.Fatal("checksum not updated")
		}
		if e.c.Stats.ShadowWrites != 1 {
			t.Fatal("shadow write not counted")
		}
		// Shadow frame returned to the pool.
		if got := len(e.k.FramesOf(kernel.FrameMeta)); got != 1 {
			t.Fatalf("leaked shadow frame: %d meta frames", got)
		}
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	e := newEnv(t, false, 8, 2)
	b0, _ := e.c.InsertData(1, 0, -1, []byte("zero"), 4)
	b1, _ := e.c.InsertData(1, 1, -1, []byte("one"), 3)
	_ = b1
	// Touch b0 so b1 is the LRU victim.
	e.c.LookupData(1, 0)
	_, err := e.c.InsertData(1, 2, -1, []byte("two"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.c.LookupData(1, 1) != nil {
		t.Fatal("LRU victim survived")
	}
	if e.c.LookupData(1, 0) != b0 {
		t.Fatal("recently used buffer evicted")
	}
	if e.c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", e.c.Stats.Evictions)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	e := newEnv(t, false, 8, 1)
	var flushed []*Buf
	e.c.WriteBack = func(b *Buf) error {
		flushed = append(flushed, b)
		return e.c.MarkClean(b)
	}
	b0, _ := e.c.InsertData(1, 0, 50, nil, 0)
	if err := e.c.Write(b0, 0, []byte("dirty"), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.InsertData(1, 1, 51, nil, 0); err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 1 || flushed[0] != b0 {
		t.Fatalf("flushed %v", flushed)
	}
}

func TestDirtyEvictionWithoutWriteBackFails(t *testing.T) {
	e := newEnv(t, false, 8, 1)
	b0, _ := e.c.InsertData(1, 0, -1, nil, 0)
	e.c.Write(b0, 0, []byte("d"), 1)
	if _, err := e.c.InsertData(1, 1, -1, nil, 0); err == nil {
		t.Fatal("dirty eviction without WriteBack allowed")
	}
}

func TestRemoveReleasesResources(t *testing.T) {
	e := newEnv(t, true, 8, 8)
	framesBefore := e.k.FreeFrameCount()
	regBefore := e.r.LiveCount()
	b, _ := e.c.InsertData(1, 0, -1, nil, 0)
	if err := e.c.Remove(b); err != nil {
		t.Fatal(err)
	}
	if e.k.FreeFrameCount() != framesBefore {
		t.Fatal("frame leaked")
	}
	if e.r.LiveCount() != regBefore {
		t.Fatal("registry slot leaked")
	}
	// Frame no longer protected or flagged.
	if e.k.Mem.Frame(b.Frame).WriteProtected || e.k.Mem.Frame(b.Frame).FileCache {
		t.Fatal("frame flags not cleared")
	}
}

func TestMetaRemoveUnmaps(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	b, _ := e.c.InsertMeta(4, nil)
	addr := b.Addr
	if err := e.c.Remove(b); err != nil {
		t.Fatal(err)
	}
	if _, trap := e.k.MMU.LoadByte(addr); trap == nil {
		t.Fatal("stale mapping survived removal")
	}
}

func TestDropFileData(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	e.c.InsertData(7, 0, -1, nil, 0)
	e.c.InsertData(7, 1, -1, nil, 0)
	e.c.InsertData(7, 2, -1, nil, 0)
	e.c.InsertData(8, 0, -1, nil, 0)
	if err := e.c.DropFileData(7, 1); err != nil {
		t.Fatal(err)
	}
	if e.c.LookupData(7, 0) == nil {
		t.Fatal("block before truncation point dropped")
	}
	if e.c.LookupData(7, 1) != nil || e.c.LookupData(7, 2) != nil {
		t.Fatal("truncated blocks survived")
	}
	if e.c.LookupData(8, 0) == nil {
		t.Fatal("other file's data dropped")
	}
}

func TestDirtyBufsOrder(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	b0, _ := e.c.InsertData(1, 0, -1, nil, 0)
	b1, _ := e.c.InsertData(1, 1, -1, nil, 0)
	b2, _ := e.c.InsertData(1, 2, -1, nil, 0)
	e.c.Write(b0, 0, []byte("a"), 1)
	e.c.Write(b2, 0, []byte("c"), 1)
	_ = b1
	dirty := e.c.DirtyBufs(Data)
	if len(dirty) != 2 {
		t.Fatalf("dirty count %d", len(dirty))
	}
	// b0 written before b2, but both were touched by Write; LRU-back-first
	// order puts b1 (clean, skipped) aside and b0 before b2.
	if dirty[0] != b0 || dirty[1] != b2 {
		t.Fatal("dirty order unexpected")
	}
}

func TestMarkCleanClearsRegistryFlag(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	b, _ := e.c.InsertData(1, 0, -1, nil, 0)
	e.c.Write(b, 0, []byte("x"), 1)
	if err := e.c.MarkClean(b); err != nil {
		t.Fatal(err)
	}
	ent, _ := e.r.Get(b.Slot)
	if ent.Flags&registry.FlagDirty != 0 {
		t.Fatal("registry dirty flag survived MarkClean")
	}
	if b.Dirty {
		t.Fatal("buf dirty flag survived")
	}
}

func TestSetDiskBlock(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	b, _ := e.c.InsertData(1, 0, -1, nil, 0)
	if err := e.c.SetDiskBlock(b, 123); err != nil {
		t.Fatal(err)
	}
	ent, _ := e.r.Get(b.Slot)
	if ent.Block != 123 || b.Block != 123 {
		t.Fatal("disk block not recorded")
	}
}

func TestAllAndLen(t *testing.T) {
	e := newEnv(t, false, 8, 8)
	e.c.InsertMeta(1, nil)
	e.c.InsertMeta(2, nil)
	e.c.InsertData(1, 0, -1, nil, 0)
	if e.c.Len(Meta) != 2 || e.c.Len(Data) != 1 {
		t.Fatalf("lens %d %d", e.c.Len(Meta), e.c.Len(Data))
	}
	if len(e.c.All(Meta)) != 2 || len(e.c.All(Data)) != 1 {
		t.Fatal("All lengths wrong")
	}
}

func TestChangingFlagVisibleDuringCrashMidWrite(t *testing.T) {
	// Simulate a crash mid-copy: protection traps the sanctioned write
	// because we deliberately re-protect the frame behind the cache's
	// back. The registry entry must be left with FlagChanging set.
	e := newEnv(t, false, 8, 8)
	b, _ := e.c.InsertData(1, 0, -1, nil, 0)
	e.k.MMU.EnforceProtection = true
	e.k.MMU.MapAllThroughTLB = true
	e.k.MMU.SetFrameProtection(b.Frame, true) // cache thinks it's unprotected
	err := e.c.Write(b, 0, []byte("never lands"), 11)
	if err == nil {
		t.Fatal("write should have crashed")
	}
	ent, _ := e.r.Get(b.Slot)
	if ent.Flags&registry.FlagChanging == 0 {
		t.Fatal("changing flag lost on mid-write crash")
	}
}
