package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleRequests() []*Request {
	return []*Request{
		{ID: 1, Op: OpOpen, Shard: -1, Path: "/a"},
		{ID: 2, Op: OpRead, Shard: -1, Offset: 4096, Len: 8192, Path: "/bench/k0001"},
		{ID: 3, Op: OpWrite, Shard: -1, Offset: -1, Path: "/log", Data: []byte("hello, rio")},
		{ID: 4, Op: OpMkdir, Shard: -1, Path: "/dir"},
		{ID: 5, Op: OpRm, Shard: -1, Path: "/dir"},
		{ID: 6, Op: OpMv, Shard: -1, Path: "/a", Path2: "/b"},
		{ID: 7, Op: OpStat, Shard: -1, Path: "/b"},
		{ID: 8, Op: OpSync, Shard: -1},
		{ID: 9, Op: OpCrash, Shard: 2},
		{ID: 10, Op: OpWarmboot, Shard: 2},
		{ID: 11, Op: OpTxnBegin, Shard: -1, Path: "/a"},
		{ID: 12, Op: OpWrite, Shard: -1, Txn: 3<<32 | 1, Path: "/a", Data: []byte("staged")},
		{ID: 13, Op: OpTxnCommit, Shard: -1, Txn: 3<<32 | 1},
		{ID: 14, Op: OpTxnAbort, Shard: -1, Txn: 3<<32 | 2},
		{ID: 15, Op: OpReplBatch, Shard: 5, Data: []byte("batch sub-frame")},
		{ID: 16, Op: OpReplPull, Shard: 5, Offset: 99},
		{ID: 17, Op: OpSnapshot, Shard: 5, Offset: 4096},
		{ID: 18, Op: OpHeartbeat, Shard: -1, Data: []byte("routing")},
		{ID: ^uint64(0), Op: OpWrite, Shard: -1, Offset: 1<<62 - 1, Path: "/x", Data: make([]byte, 3000)},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range sampleRequests() {
		buf := AppendRequest(nil, want)
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", want.Op, err)
		}
		if want.Data == nil {
			want.Data = got.Data // nil vs empty: both encode to length 0
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %v:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	samples := []*Response{
		{ID: 1, Status: StatusOK, Size: 42, Data: []byte("payload")},
		{ID: 2, Status: StatusNotFound, Msg: "fs: no such file or directory"},
		{ID: 3, Status: StatusAgain, Msg: "shard 2 down (awaiting warmboot)"},
		{ID: 4, Status: StatusOK, Flags: FlagDir | FlagSymlink, Size: 8192},
	}
	for _, want := range samples {
		buf := AppendResponse(nil, want)
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if want.Data == nil {
			want.Data = got.Data
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

// Every strict prefix of a valid encoding must decode to ErrTruncated
// (or a length error), never succeed and never panic.
func TestDecodeRequestTruncations(t *testing.T) {
	full := AppendRequest(nil, &Request{
		ID: 7, Op: OpMv, Shard: -1, Path: "/old/name", Path2: "/new/name",
		Data: []byte("x"),
	})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeRequest(full[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(full))
		}
	}
	if _, err := DecodeRequest(append(full[:len(full):len(full)], 0)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: got %v, want ErrTrailing", err)
	}
}

func TestDecodeRequestOversizeLengths(t *testing.T) {
	// A path length prefix of 0xffff exceeds MaxPath.
	buf := AppendRequest(nil, &Request{ID: 1, Op: OpOpen, Path: "/x"})
	// Path prefix starts after ID(8)+Op(1)+Shard(4)+Offset(8)+Len(4)+Txn(8) = 33.
	buf[33], buf[34] = 0xff, 0xff
	if _, err := DecodeRequest(buf); err == nil {
		t.Fatal("oversize path length decoded without error")
	}
	// Declared read length beyond MaxData is rejected.
	buf2 := AppendRequest(nil, &Request{ID: 1, Op: OpRead, Len: MaxData + 1, Path: "/x"})
	if _, err := DecodeRequest(buf2); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversize read len: got %v, want ErrTooLong", err)
	}
}

func TestDecodeRequestUnknownOp(t *testing.T) {
	buf := AppendRequest(nil, &Request{ID: 1, Op: Op(200), Path: "/x"})
	if _, err := DecodeRequest(buf); err == nil {
		t.Fatal("unknown op decoded without error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var b bytes.Buffer
	payload := AppendRequest(nil, &Request{ID: 9, Op: OpSync})
	if err := WriteFrame(&b, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&b, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame payload mismatch")
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	// Header declaring 1GB: must be rejected before allocation.
	hdr := []byte{0x40, 0x00, 0x00, 0x00}
	if _, err := ReadFrame(bytes.NewReader(hdr), MaxFrame); !errors.Is(err, ErrFrame) {
		t.Fatalf("got %v, want ErrFrame", err)
	}
}

func TestStatusRetryable(t *testing.T) {
	if !StatusAgain.Retryable() {
		t.Fatal("StatusAgain must be retryable")
	}
	for _, s := range []Status{StatusOK, StatusNotFound, StatusClosed, StatusIO, StatusInvalid,
		StatusCrossShard, StatusNoTxn, StatusTxnLimit, StatusMoved, StatusTimeout} {
		if s.Retryable() {
			t.Fatalf("%v must not be retryable", s)
		}
	}
}

// A StatusMoved redirect carries the new primary's address verbatim in
// Msg. It must round-trip every address shape a fleet can mint — node
// names, host:port, IPv6 — up to the wire bound, and an address past
// MaxMsg must be rejected by the decoder, not truncated silently.
func TestStatusMovedRoundTrip(t *testing.T) {
	longest := string(bytes.Repeat([]byte{'a'}, MaxMsg))
	for _, addr := range []string{
		"node3",
		"127.0.0.1:8002",
		"[::1]:8002",
		"fleet-host.example.com:7979",
		"",
		longest,
	} {
		want := &Response{ID: 42, Status: StatusMoved, Size: 7, Msg: addr}
		got, err := DecodeResponse(AppendResponse(nil, want))
		if err != nil {
			t.Fatalf("decode moved(%q): %v", addr, err)
		}
		if got.Status != StatusMoved || got.Msg != addr || got.Size != want.Size || got.ID != want.ID {
			t.Fatalf("moved round trip: got %+v want %+v", got, want)
		}
	}
	// One byte past MaxMsg: the u16 prefix can express it, the decoder
	// must refuse it.
	over := AppendResponse(nil, &Response{Status: StatusMoved})
	// Msg prefix is the trailing u16; rewrite it to MaxMsg+1 and pad.
	over = over[:len(over)-2]
	over = append(over, byte((MaxMsg+1)>>8), byte((MaxMsg+1)&0xff))
	over = append(over, bytes.Repeat([]byte{'b'}, MaxMsg+1)...)
	if _, err := DecodeResponse(over); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversize moved address: got %v, want ErrTooLong", err)
	}
}

// Every defined op and status must have a name: a missing table entry
// would render as the numeric fallback and break log greppability.
func TestNamesComplete(t *testing.T) {
	for o := OpInvalid; o < opMax; o++ {
		if int(o) >= len(opNames) || opNames[o] == "" {
			t.Fatalf("op %d has no name", uint8(o))
		}
	}
	for s := StatusOK; s < statusMax; s++ {
		if int(s) >= len(statusNames) || statusNames[s] == "" {
			t.Fatalf("status %d has no name", uint8(s))
		}
	}
}
