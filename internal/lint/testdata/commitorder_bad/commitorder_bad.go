// Package commitfix is a commitorder violating fixture: every shape of
// commit-protocol misordering the analyzer must catch, each a
// reconstruction of a torn-commit window — acking a transaction the
// crash can still un-do, or erasing a record the crash can still need.
package commitfix

type Record struct{ ID uint64 }

type Log struct{}

func (l *Log) Publish(recs []Record) error { return nil }
func (l *Log) Apply(rec *Record) error     { return nil }
func (l *Log) Erase() error                { return nil }

type task struct{}
type response struct{}

type shard struct{ log Log }

func (sh *shard) ackCommit(t task, r *response) {}

// ackFirst answers the client before the record exists anywhere
// durable: a crash after the ack tears the transaction.
func (sh *shard) ackFirst(t task, recs []Record) {
	sh.ackCommit(t, &response{}) // want commitorder "acked before its record was published"
	sh.log.Publish(recs)
	for i := range recs {
		sh.log.Apply(&recs[i])
	}
	sh.log.Erase()
}

// ackBetween publishes first but acks before the apply: the ack
// promises a state the cache does not hold yet.
func (sh *shard) ackBetween(t task, recs []Record) {
	sh.log.Publish(recs)
	sh.ackCommit(t, &response{}) // want commitorder "acked before its record was applied"
	for i := range recs {
		sh.log.Apply(&recs[i])
	}
	sh.log.Erase()
}

// eraseEarly drops the log before the record has been applied: a crash
// in between loses a committed transaction.
func (sh *shard) eraseEarly(t task, recs []Record) {
	sh.log.Publish(recs)
	sh.log.Erase() // want commitorder "erased before its record was applied"
	for i := range recs {
		sh.log.Apply(&recs[i])
	}
	sh.ackCommit(t, &response{})
}

// applyUnpublished mutates the tree before the record is durable: a
// crash mid-apply leaves a partial state no recovery can complete.
func (sh *shard) applyUnpublished(recs []Record) {
	for i := range recs {
		sh.log.Apply(&recs[i]) // want commitorder "applied before it was published"
	}
	sh.log.Publish(recs)
	sh.log.Erase()
}

// eraseThenPublish erases by hand before publishing; Publish replaces
// the log itself, so the explicit erase can only drop a record some
// other path still needed.
func (sh *shard) eraseThenPublish(recs []Record) {
	sh.log.Erase() // want commitorder "erased before the batch was published"
	sh.log.Publish(recs)
	for i := range recs {
		sh.log.Apply(&recs[i])
	}
}
