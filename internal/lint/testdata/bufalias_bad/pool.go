// Fixture: every sanctioned-window violation bufalias must catch —
// pooled buffers escaping to fields, globals, channels, and goroutines,
// leaks through helper calls (the interprocedural cases), use after
// release, and an Into-style function that retains its destination.
package kernelpool

// kern mimics internal/kernel's bulk scratch.
type kern struct {
	bulkBuf []byte
}

func (k *kern) scratchBytes(n int) []byte { return k.bulkBuf[:n] }

// fsT mimics internal/fs's block pool.
type fsT struct {
	blockPool [][]byte
	readBuf   []byte
}

func (f *fsT) getPooledBlock() []byte {
	if n := len(f.blockPool); n > 0 {
		b := f.blockPool[n-1]
		f.blockPool = f.blockPool[:n-1]
		return b
	}
	return make([]byte, 512)
}

func (f *fsT) putPooledBlock(b []byte) {
	if len(f.blockPool) < 64 {
		f.blockPool = append(f.blockPool, b)
	}
}

// readBlock hands out the shared read buffer: a transitive pool source.
func (f *fsT) readBlock() []byte { return f.readBuf }

type srv struct {
	k    *kern
	held []byte
}

var captured [][]byte

// keepField stores a scratch alias in a field that outlives the window.
func (s *srv) keepField() {
	s.held = s.k.scratchBytes(8) // want bufalias "stored in s.held"
}

// keepGlobal appends a scratch alias to a package-level slice.
func keepGlobal(k *kern) {
	captured = append(captured, k.scratchBytes(4)) // want bufalias "stored in package-level captured"
}

// crossGoroutine hands a pooled block to a goroutine that will read it
// after the pool reuses it.
func crossGoroutine(f *fsT, sink func([]byte)) {
	b := f.getPooledBlock()
	go sink(b) // want bufalias "handed to a goroutine"
}

// crossChannel sends the shared read buffer to another goroutine.
func crossChannel(f *fsT, ch chan []byte) {
	ch <- f.readBlock() // want bufalias "sent on a channel"
}

// retain is a helper that stores its argument; passing it a pooled
// buffer leaks through the call (seen via retain's summary).
func retain(s *srv, b []byte) {
	s.held = b
}

func leakThroughCall(s *srv, k *kern) {
	retain(s, k.scratchBytes(16)) // want bufalias "passed to retain, which retains it"
}

// wrap returns a pooled alias; the leak is two calls from the pool.
func wrap(k *kern) []byte { return k.scratchBytes(32) }

func leakTransitive(s *srv, k *kern) {
	s.held = wrap(k) // want bufalias "stored in s.held"
}

// useAfterPut reads a block after returning it to the pool.
func useAfterPut(f *fsT) byte {
	b := f.getPooledBlock()
	b[0] = 1
	f.putPooledBlock(b)
	return b[0] // want bufalias "used after being released to the pool"
}

// cacheT mimics internal/cache; ReadInto is on the zero-copy contract
// surface and must never retain dst.
type cacheT struct {
	data []byte
	last []byte
}

func (c *cacheT) ReadInto(off int, dst []byte) { // want bufalias "ReadInto must not retain its destination buffer"
	copy(dst, c.data[off:])
	c.last = dst
}

// framePoolT mimics internal/server's wire-frame pool for the zero-copy
// read path.
type framePoolT struct {
	frameBufs [][]byte
}

func (p *framePoolT) get() []byte {
	if n := len(p.frameBufs); n > 0 {
		b := p.frameBufs[n-1]
		p.frameBufs = p.frameBufs[:n-1]
		return b
	}
	return make([]byte, 0, 4096)
}

func (p *framePoolT) putFrameBuf(b []byte) {
	if len(p.frameBufs) < 64 {
		p.frameBufs = append(p.frameBufs, b[:0])
	}
}

// frameUseAfterRelease writes a response frame, releases it, then reads
// the header back out of a buffer the pool may already have reissued.
func frameUseAfterRelease(p *framePoolT) byte {
	frame := p.get()
	frame = append(frame, 0, 0, 0, 1)
	p.putFrameBuf(frame)
	return frame[0] // want bufalias "used after being released to the pool"
}

// frameKeptOnConn parks a pooled frame in a connection struct that
// outlives the serve window.
type connT struct {
	lastFrame []byte
}

func (c *connT) frameKeptOnConn(p *framePoolT) {
	c.lastFrame = p.get() // want bufalias "stored in c.lastFrame"
}

// ReadDirect is on the zero-copy contract surface: retaining dst breaks
// every caller that passes a pooled response frame.
func (c *cacheT) ReadDirect(off int, dst []byte) { // want bufalias "ReadDirect must not retain its destination buffer"
	copy(dst, c.data[off:])
	c.last = dst
}
