package server

import (
	"net"
	"time"

	"rio/internal/wire"
)

// Client is the transport-independent face of a riod server: tests and
// the load generator speak to an in-process server and a TCP server
// through the same interface.
type Client interface {
	// Do submits one request and blocks for its response. A non-nil
	// error means the transport failed; server-side failures come back
	// as typed statuses in the response.
	Do(req *wire.Request) (*wire.Response, error)
	Close() error
}

// MemClient is the in-process transport: calls land directly on the
// server with no sockets or frames in between. Deterministic given a
// deterministic caller, which is what the golden-transcript tests use.
type MemClient struct{ S *Server }

// Do implements Client.
func (c MemClient) Do(req *wire.Request) (*wire.Response, error) { return c.S.Do(req), nil }

// Close implements Client (the server's lifecycle is the caller's).
func (c MemClient) Close() error { return nil }

// TCPClient is a synchronous wire-protocol client over one TCP
// connection. Not safe for concurrent use; closed-loop load clients
// hold one each.
type TCPClient struct {
	conn net.Conn
	buf  []byte
}

// DialTCP connects to a riod server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{conn: conn, buf: make([]byte, 0, 4096)}, nil
}

// Do implements Client.
func (c *TCPClient) Do(req *wire.Request) (*wire.Response, error) {
	if err := wire.WriteFrame(c.conn, wire.AppendRequest(c.buf[:0], req)); err != nil {
		return nil, err
	}
	payload, err := wire.ReadFrame(c.conn, wire.MaxFrame)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResponse(payload)
}

// Close implements Client.
func (c *TCPClient) Close() error { return c.conn.Close() }

// RetryPolicy bounds a client's EAGAIN loop. It is ioretry.Policy's
// shape on the client side of the wire — bounded attempts, exponential
// backoff, a cap — with wall-clock delays, because load clients live
// outside the simulation.
type RetryPolicy struct {
	// MaxRetries is re-submissions after the first attempt.
	MaxRetries int
	// BaseDelay backs off the first retry; each further retry doubles
	// it, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy rides out a shard warm reboot: ~10 attempts
// backing off 1ms -> 128ms covers several hundred milliseconds of
// outage before giving up.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 10, BaseDelay: time.Millisecond, MaxDelay: 128 * time.Millisecond}
}

// RetryStats counts what the retry loop absorbed.
type RetryStats struct {
	Retries   uint64 // re-submissions issued
	Exhausted uint64 // requests that stayed retryable after MaxRetries
	Backoff   time.Duration
}

// RetryClient wraps a Client with the EAGAIN discipline: responses
// whose status is Retryable are re-submitted with exponential backoff.
// All other responses, and transport errors, pass through. Not safe
// for concurrent use (wraps a single-connection client).
type RetryClient struct {
	C     Client
	Pol   RetryPolicy
	Stats RetryStats
}

// Do implements Client.
func (r *RetryClient) Do(req *wire.Request) (*wire.Response, error) {
	resp, err := r.C.Do(req)
	if err != nil {
		return resp, err
	}
	for n := 0; n < r.Pol.MaxRetries && resp.Status.Retryable(); n++ {
		d := r.Pol.BaseDelay << uint(n)
		if r.Pol.MaxDelay > 0 && d > r.Pol.MaxDelay {
			d = r.Pol.MaxDelay
		}
		if d > 0 {
			r.Stats.Backoff += d
			time.Sleep(d)
		}
		r.Stats.Retries++
		if resp, err = r.C.Do(req); err != nil {
			return resp, err
		}
	}
	if resp.Status.Retryable() {
		r.Stats.Exhausted++
	}
	return resp, nil
}

// Close implements Client.
func (r *RetryClient) Close() error { return r.C.Close() }
