package crashtest

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rio/internal/fault"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// fakeRunner is a fast stand-in for RunOne whose outcome is a pure
// function of the run seed, so scheduler tests exercise the worker pool
// and the in-order fold without paying for real simulations.
func fakeRunner(sys System, ft fault.Type, cfg RunConfig) (RunResult, error) {
	r := sim.NewRand(cfg.Seed)
	res := RunResult{System: sys, Fault: ft, Seed: cfg.Seed}
	roll := r.Float64()
	switch {
	case roll < 0.05:
		return res, fmt.Errorf("synthetic harness error (seed %d)", cfg.Seed)
	case roll < 0.45:
		return res, nil // discarded: never crashed
	}
	res.Crashed = true
	res.CrashKind = kernel.CrashKind(r.Intn(3))
	res.OpsToCrash = 1 + r.Intn(100)
	res.Corrupted = r.Float64() < 0.15
	res.ChecksumDetected = res.Corrupted && r.Bool()
	res.ProtectionInvoked = sys == RioProt && r.Float64() < 0.1
	if cfg.DiskFaults && sys != DiskWT {
		res.RecoveryInterrupted = r.Bool()
		res.Quarantined = r.Intn(4)
		res.Salvaged = r.Intn(3)
		res.VolumeLost = r.Float64() < 0.03
	}
	return res, nil
}

// normalize strips host-dependent timing so reports can be compared for
// the determinism the scheduler guarantees.
func normalize(rep *Report) {
	for _, bySys := range rep.Cells {
		for _, c := range bySys {
			c.Elapsed = 0
		}
	}
	rep.Summary = Summary{}
	rep.Config = CampaignConfig{}
}

func TestCampaignSchedulerDeterministicAcrossWorkers(t *testing.T) {
	base := CampaignConfig{
		Seed:              1996,
		RunsPerCell:       10,
		MaxAttemptsFactor: 4,
		Run:               RunConfig{DiskFaults: true}, // recovery columns fold too
		runner:            fakeRunner,
	}
	run := func(workers int) (*Report, string) {
		cfg := base
		cfg.Workers = workers
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tbl := rep.Table() + rep.RecoveryTable()
		bd := rep.CrashKindBreakdown(RioProt)
		normalize(rep)
		return rep, tbl + "\n" + bd
	}
	ref, refText := run(1)
	for _, w := range []int{2, 3, 8, 16} {
		rep, text := run(w)
		if text != refText {
			t.Fatalf("workers=%d rendered output diverged from workers=1:\n%s\nvs\n%s", w, text, refText)
		}
		if !reflect.DeepEqual(rep.Cells, ref.Cells) {
			t.Fatalf("workers=%d cells diverged from workers=1", w)
		}
	}
}

func TestRunSeedsIndependentOfEarlierCells(t *testing.T) {
	// Record the seed every (system, fault, attempt) coordinate actually
	// receives, under two configs that consume very different attempt
	// counts in earlier cells. With the old shared seed counter the
	// later cells resampled; with coordinate seeding they must not.
	record := func(runsPerCell, factor int) map[[3]int]uint64 {
		seeds := make(map[[3]int]uint64)
		var mu sync.Mutex
		attempt := make(map[[2]int]int) // per-cell issue order is attempt order at Workers=1
		cfg := CampaignConfig{
			Seed:              7,
			RunsPerCell:       runsPerCell,
			MaxAttemptsFactor: factor,
			Workers:           1,
			runner: func(sys System, ft fault.Type, rc RunConfig) (RunResult, error) {
				mu.Lock()
				cellKey := [2]int{int(sys), int(ft)}
				k := [3]int{int(sys), int(ft), attempt[cellKey]}
				attempt[cellKey]++
				seeds[k] = rc.Seed
				mu.Unlock()
				return fakeRunner(sys, ft, rc)
			},
		}
		if _, err := RunCampaign(cfg); err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	a := record(3, 2)
	b := record(9, 5)
	shared := 0
	for k, seedA := range a {
		if seedB, ok := b[k]; ok {
			shared++
			if seedA != seedB {
				t.Fatalf("coordinate %v resampled: %d vs %d", k, seedA, seedB)
			}
		}
	}
	if shared == 0 {
		t.Fatal("configs shared no coordinates; test is vacuous")
	}
	// And the derivation itself is pure: no config field feeds RunSeed.
	if RunSeed(7, RioProt, fault.Sync, 5) != RunSeed(7, RioProt, fault.Sync, 5) {
		t.Fatal("RunSeed is not a pure function")
	}
}

func TestRunSeedCoordinatesDisperse(t *testing.T) {
	seen := make(map[uint64][3]int)
	for s := 0; s < len(Systems); s++ {
		for f := 0; f < int(fault.NumTypes); f++ {
			for a := 0; a < 300; a++ {
				seed := RunSeed(1, System(s), fault.Type(f), a)
				if prev, dup := seen[seed]; dup {
					t.Fatalf("seed collision between %v and %v", prev, [3]int{s, f, a})
				}
				seen[seed] = [3]int{s, f, a}
			}
		}
	}
}

func TestCampaignProgressSerialisedUnderConcurrency(t *testing.T) {
	// The callback deliberately mutates unsynchronised state: the
	// campaign promises serialised invocations, and the race detector
	// (make check runs this package with -race) enforces it.
	lines := 0
	cellLines := 0
	cfg := CampaignConfig{
		Seed:              3,
		RunsPerCell:       6,
		MaxAttemptsFactor: 4,
		Workers:           8,
		runner:            fakeRunner,
		Progress: func(s string) {
			lines++
			if strings.Contains(s, "crashes=") {
				cellLines++
			}
		},
	}
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	want := len(Systems) * len(fault.AllTypes)
	if cellLines != want {
		t.Fatalf("got %d cell completion lines, want %d", cellLines, want)
	}
	if lines < cellLines {
		t.Fatalf("line accounting broken: %d < %d", lines, cellLines)
	}
}

func TestCampaignSummaryAccounting(t *testing.T) {
	cfg := CampaignConfig{
		Seed:              11,
		RunsPerCell:       8,
		MaxAttemptsFactor: 3,
		Workers:           4,
		runner:            fakeRunner,
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Cells != len(Systems)*len(fault.AllTypes) {
		t.Fatalf("cells = %d", s.Cells)
	}
	if s.Runs != s.Crashes+s.Discarded+s.Errors {
		t.Fatalf("runs %d != crashes %d + discarded %d + errors %d",
			s.Runs, s.Crashes, s.Discarded, s.Errors)
	}
	wantAttempts := 0
	for _, bySys := range rep.Cells {
		for _, c := range bySys {
			wantAttempts += c.Attempts
			if c.Attempts != c.Crashes+c.Discarded+c.Errors {
				t.Fatalf("cell attempt accounting broken: %+v", c)
			}
		}
	}
	if s.Runs != wantAttempts {
		t.Fatalf("summary runs %d != summed cell attempts %d", s.Runs, wantAttempts)
	}
	if s.Workers != 4 || s.RunsPerCell != 8 || s.Seed != 11 {
		t.Fatalf("summary config echo wrong: %+v", s)
	}
	if s.WallTime <= 0 || s.RunsPerSec <= 0 {
		t.Fatalf("summary timing not populated: %+v", s)
	}
}

func TestReportJSONExport(t *testing.T) {
	cfg := CampaignConfig{
		Seed:              5,
		RunsPerCell:       4,
		MaxAttemptsFactor: 3,
		Workers:           2,
		runner:            fakeRunner,
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ReportExport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("export does not round-trip: %v", err)
	}
	if len(back.Cells) != len(Systems)*len(fault.AllTypes) {
		t.Fatalf("exported %d cells", len(back.Cells))
	}
	// Cells come out in Table 1 order with self-describing names.
	if back.Cells[0].System != DiskWT.String() || back.Cells[0].Fault != fault.TextFlip.String() {
		t.Fatalf("first cell out of order: %+v", back.Cells[0])
	}
	if back.Summary.Runs != rep.Summary.Runs {
		t.Fatal("summary not exported")
	}
	if !strings.Contains(back.Table, "Total") {
		t.Fatal("rendered table missing from export")
	}
	for _, c := range back.Cells {
		if c.Crashes > 0 && len(c.ByKind) == 0 {
			t.Fatalf("cell %s/%s has crashes but no kind breakdown", c.System, c.Fault)
		}
	}
}

func TestTableColumnsAligned(t *testing.T) {
	cfg := CampaignConfig{
		Seed:              2,
		RunsPerCell:       30, // large enough for 2-digit totals and corruption cells
		MaxAttemptsFactor: 3,
		Workers:           4,
		runner:            fakeRunner,
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	lines := strings.Split(strings.TrimRight(tbl, "\n"), "\n")
	if len(lines) != 1+len(fault.AllTypes)+1 {
		t.Fatalf("table has %d lines:\n%s", len(lines), tbl)
	}
	// Every row — header, per-fault, and the Total row — is fully padded,
	// so all rows have identical width and columns sit under the headers.
	for i, ln := range lines {
		if len(ln) != len(lines[0]) {
			t.Fatalf("row %d width %d != header width %d:\n%s", i, len(ln), len(lines[0]), tbl)
		}
	}
	if !strings.HasPrefix(lines[len(lines)-1], "Total") {
		t.Fatalf("last row is not the Total row:\n%s", tbl)
	}
}

// TestCampaignRealDeterministicAcrossWorkers is the acceptance check on
// real simulations: a reduced campaign renders a byte-identical Table 1
// at Workers=1 and Workers=4.
func TestCampaignRealDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	base := DefaultCampaignConfig(42)
	base.RunsPerCell = 1
	base.MaxAttemptsFactor = 2
	base.Run.WarmupOps = 10
	base.Run.MaxOps = 80
	base.Run.MemTestBytes = 1 << 19
	run := func(workers int) (*Report, string) {
		cfg := base
		cfg.Workers = workers
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tbl := rep.Table()
		normalize(rep)
		return rep, tbl
	}
	seq, seqTbl := run(1)
	par, parTbl := run(4)
	if seqTbl != parTbl {
		t.Fatalf("Table 1 differs across worker counts:\n%s\nvs\n%s", seqTbl, parTbl)
	}
	if !reflect.DeepEqual(seq.Cells, par.Cells) {
		t.Fatal("cell counts differ across worker counts")
	}
}

// TestCampaignRealDoubleFaultDeterministic is the double-fault acceptance
// check on real simulations: with storage faults and second crashes
// enabled, the report — Table 1 plus the recovery columns — is
// byte-identical at Workers=1 and Workers=8, and no recovery aborted.
func TestCampaignRealDoubleFaultDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	base := DefaultCampaignConfig(1996)
	base.RunsPerCell = 1
	base.MaxAttemptsFactor = 2
	base.Run.WarmupOps = 10
	base.Run.MaxOps = 80
	base.Run.MemTestBytes = 1 << 19
	base.Run.DiskFaults = true
	run := func(workers int) (*Report, string) {
		cfg := base
		cfg.Workers = workers
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tbl := rep.Table() + rep.RecoveryTable()
		normalize(rep)
		return rep, tbl
	}
	seq, seqTbl := run(1)
	par, parTbl := run(8)
	if seqTbl != parTbl {
		t.Fatalf("double-fault report differs across worker counts:\n%s\nvs\n%s", seqTbl, parTbl)
	}
	if !reflect.DeepEqual(seq.Cells, par.Cells) {
		t.Fatal("cell counts differ across worker counts")
	}
	for sys, bySys := range seq.Cells {
		for ft, c := range bySys {
			if c.Aborted > 0 {
				t.Errorf("%v/%v: %d recoveries aborted (want none): %s",
					sys, ft, c.Aborted, c.LastError)
			}
		}
	}
}

// fakeClock is a deterministic wallClock: every Now call advances the
// reading by one fixed step, and the call count is recorded so tests can
// compute exactly what the campaign's telemetry should report.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	step  time.Duration
	calls int
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	c.now = c.now.Add(c.step)
	return c.now
}

func (c *fakeClock) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// TestSummaryTimingUsesInjectedClock pins the campaign's telemetry to
// the wallClock seam: WallTime must span exactly from the epoch reading
// to the summarize reading of the injected clock (the host clock must
// not leak in), and RunsPerSec must be derived from that same span.
func TestSummaryTimingUsesInjectedClock(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0), step: time.Millisecond}
	cfg := CampaignConfig{
		Seed:              7,
		RunsPerCell:       3,
		MaxAttemptsFactor: 4,
		Workers:           2,
		runner:            fakeRunner,
		clock:             clk,
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	// The first Now call is the epoch, the last is summarize's WallTime
	// reading; every call advances the fake by one step.
	wantWall := time.Duration(clk.Calls()-1) * clk.step
	if rep.Summary.WallTime != wantWall {
		t.Errorf("WallTime = %v, want %v (from %d fake-clock calls)",
			rep.Summary.WallTime, wantWall, clk.Calls())
	}
	wantRate := float64(rep.Summary.Runs) / wantWall.Seconds()
	if rep.Summary.RunsPerSec != wantRate {
		t.Errorf("RunsPerSec = %v, want %v", rep.Summary.RunsPerSec, wantRate)
	}
	// Each folded run contributes at least one clock step of CPU time.
	for _, bySys := range rep.Cells {
		for _, c := range bySys {
			if c.Elapsed < time.Duration(c.Attempts)*clk.step {
				t.Errorf("cell Elapsed = %v for %d attempts, want >= %v",
					c.Elapsed, c.Attempts, time.Duration(c.Attempts)*clk.step)
			}
		}
	}
}
