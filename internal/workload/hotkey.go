package workload

import (
	"encoding/binary"
	"fmt"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/sim"
)

// HotKey is a key-value update stream with zipfian popularity and
// flash crowds: each key is one small framed file under /hot, the key
// choice comes from the shared KeyCDF, and every EpochLen steps the
// popularity ranking is re-rooted at a new hot key (a pure function of
// (seed, epoch) via sim.Mix) — the "everyone suddenly hammers one new
// object" pattern of cache front-ends. The hottest keys are rewritten
// so often that their blocks essentially live dirty in the file cache,
// which makes this the sharpest probe of write-back loss: without
// protection a crash discards the most valuable keys first.
//
// Key frame: magic u64 | key u64 | ver u64 | plen u32 | payload | cksum u64
// Payload is a pure function of (seed, key, ver), so Check can date any
// decodable frame. A frame at an older version than acked is Lost; a
// frame that decodes at no version is a Corruption.
type HotKey struct {
	// Keys is the key-space size; Skew the zipf exponent; EpochLen the
	// steps between flash crowds.
	Keys     int
	EpochLen int
	// WriteThrough fsyncs every update.
	WriteThrough bool

	seed uint64
	rng  *sim.Rand
	cdf  KeyCDF

	ver   []uint64 // acked version per key; 0 = never written
	steps int

	inFlight *hkOp

	// ReadMismatches counts online read-side mismatches.
	ReadMismatches int
}

// hkOp is the one in-flight update.
type hkOp struct {
	key int
	ver uint64
}

const (
	hkMagic  = 0x52696f486f744b65 // "RioHotKe"
	hkHeader = 8 + 8 + 8 + 4
)

// NewHotKey returns the workload over `keys` keys.
func NewHotKey(seed uint64, keys int, skew float64, epochLen int) *HotKey {
	if keys < 1 {
		keys = 64
	}
	if epochLen < 1 {
		epochLen = 200
	}
	return &HotKey{
		Keys:     keys,
		EpochLen: epochLen,
		seed:     seed,
		rng:      sim.NewRand(sim.Mix(seed, 0x407CE77E)),
		cdf:      NewKeyCDF(keys, skew),
		ver:      make([]uint64, keys),
	}
}

// Name implements Workload.
func (hk *HotKey) Name() string { return "hotkey" }

func (hk *HotKey) path(k int) string { return fmt.Sprintf("/hot/k%04d", k) }

// plen is the value length for key k — constant per key so rewrites
// are exactly in place.
func (hk *HotKey) plen(k int) int {
	return 64 + int(sim.Mix(hk.seed, uint64(k), 0x1E4)%768)
}

// pickKey maps the CDF's popularity rank onto a concrete key, rotated
// by the current epoch's flash-crowd offset: rank 0 lands on a
// different key every epoch, so the hot set moves abruptly.
func (hk *HotKey) pickKey() int {
	rank := hk.cdf.Pick(hk.rng)
	epoch := uint64(hk.steps / hk.EpochLen)
	shift := int(sim.Mix(hk.seed, 0xF1A54, epoch) % uint64(hk.Keys))
	return (rank + shift) % hk.Keys
}

// frame builds the key image at version ver.
func (hk *HotKey) frame(k int, ver uint64) []byte {
	p := kernel.FillBytes(hk.plen(k), sim.Mix(hk.seed, uint64(k), ver, 0xB0D4)|1)
	buf := make([]byte, 0, hkHeader+len(p)+8)
	buf = binary.BigEndian.AppendUint64(buf, hkMagic)
	buf = binary.BigEndian.AppendUint64(buf, uint64(k))
	buf = binary.BigEndian.AppendUint64(buf, ver)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
	buf = append(buf, p...)
	return binary.BigEndian.AppendUint64(buf, fnv64(buf[8:]))
}

// Setup creates /hot.
func (hk *HotKey) Setup(fsys *fs.FS) error {
	if err := fsys.Mkdir("/hot"); err != nil && err != fs.ErrExists {
		return err
	}
	return nil
}

// Step updates or reads one popularity-picked key.
func (hk *HotKey) Step(fsys *fs.FS) error {
	hk.steps++
	k := hk.pickKey()
	if hk.rng.Float64() < 0.6 || hk.ver[k] == 0 {
		return hk.doUpdate(fsys, k)
	}
	return hk.doRead(fsys, k)
}

// doUpdate rewrites key k at its next version.
func (hk *HotKey) doUpdate(fsys *fs.FS, k int) error {
	ver := hk.ver[k] + 1
	hk.inFlight = &hkOp{key: k, ver: ver}
	f, err := fsys.Open(hk.path(k))
	if err == fs.ErrNotFound {
		f, err = fsys.Create(hk.path(k))
	}
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(hk.frame(k, ver), 0); err != nil {
		return err
	}
	if hk.WriteThrough {
		if err := fsys.Fsync(f); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	hk.ver[k] = ver
	hk.inFlight = nil
	return nil
}

// doRead reads key k and verifies it online against the acked version.
func (hk *HotKey) doRead(fsys *fs.FS, k int) error {
	hk.inFlight = nil
	want := hk.frame(k, hk.ver[k])
	f, err := fsys.Open(hk.path(k))
	if err != nil {
		return err
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for j := range want {
		if got[j] != want[j] {
			hk.ReadMismatches++
			break
		}
	}
	return nil
}

// Check implements Workload: every written key must decode at its
// acked version (or the in-flight one), byte-exact.
func (hk *HotKey) Check(fsys *fs.FS) Verdict {
	var v Verdict
	fl := hk.inFlight
	for k := 0; k < hk.Keys; k++ {
		keyInFlight := fl != nil && fl.key == k
		if hk.ver[k] == 0 && !keyInFlight {
			continue
		}
		v.Checked++
		ver, derr := hk.readKey(fsys, k)
		switch {
		case derr != "":
			if keyInFlight && hk.ver[k] == 0 {
				continue // first write was in flight; any wreckage is masked
			}
			if keyInFlight && derr == "half-written frame" {
				continue // rewrite caught mid-frame
			}
			v.Corruptions = append(v.Corruptions, Corruption{hk.path(k), derr})
			if hk.ver[k] > 0 && (derr == "unreadable" || derr == "missing") {
				v.Lost++
			}
		case ver == hk.ver[k]:
			// acked state intact
		case keyInFlight && ver == fl.ver:
			// in-flight update landed whole; fine
		case ver < hk.ver[k]:
			v.Lost++
			v.Corruptions = append(v.Corruptions, Corruption{hk.path(k),
				fmt.Sprintf("acked update lost: at v%d, acked v%d", ver, hk.ver[k])})
		default:
			v.Corruptions = append(v.Corruptions, Corruption{hk.path(k),
				fmt.Sprintf("phantom version v%d (acked v%d)", ver, hk.ver[k])})
		}
	}
	return v
}

// readKey decodes key k's frame: returns its version, or a non-empty
// failure detail ("missing", "unreadable", "half-written frame" for a
// frame that is internally consistent at no version, etc).
func (hk *HotKey) readKey(fsys *fs.FS, k int) (uint64, string) {
	want := hkHeader + hk.plen(k) + 8
	f, err := fsys.Open(hk.path(k))
	if err == fs.ErrNotFound {
		return 0, "missing"
	}
	if err != nil {
		return 0, "unreadable"
	}
	defer f.Close()
	st, err := fsys.Stat(hk.path(k))
	if err != nil || st.Size != int64(want) {
		return 0, "half-written frame"
	}
	b := make([]byte, want)
	if _, err := f.ReadAt(b, 0); err != nil {
		return 0, "unreadable"
	}
	if binary.BigEndian.Uint64(b) != hkMagic ||
		binary.BigEndian.Uint64(b[8:]) != uint64(k) ||
		binary.BigEndian.Uint64(b[want-8:]) != fnv64(b[8:want-8]) {
		return 0, "half-written frame"
	}
	ver := binary.BigEndian.Uint64(b[16:])
	p := kernel.FillBytes(hk.plen(k), sim.Mix(hk.seed, uint64(k), ver, 0xB0D4)|1)
	for j := range p {
		if b[hkHeader+j] != p[j] {
			return 0, fmt.Sprintf("payload disagrees with oracle for v%d", ver)
		}
	}
	return ver, ""
}
