package server

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rio/internal/wire"
)

// listenAndServe starts a loopback listener served by s and returns its
// address.
func listenAndServe(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.Serve(ln)
	return ln.Addr().String()
}

// pathOnShard returns a path that routes to the given shard.
func pathOnShard(t *testing.T, s *Server, shard int, stem string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("/%s-%d", stem, i)
		if s.ShardOf(p) == shard {
			return p
		}
	}
	t.Fatalf("no path hashing to shard %d", shard)
	return ""
}

// TestMuxClientPipelines drives one connection from many goroutines at
// once and checks every caller gets its own answer back: distinct
// payloads round-trip to distinct paths, and the caller's request ID is
// restored on the response even though the wire carried a rewritten
// tag.
func TestMuxClientPipelines(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, Seed: 7})
	addr := listenAndServe(t, s)

	cl, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 16
	const rounds = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				path := fmt.Sprintf("/mux-w%02d-r%02d", w, r)
				payload := bytes.Repeat([]byte{byte(w), byte(r)}, 64)
				// Every caller uses the same request ID on purpose:
				// only the mux tags keep the streams apart.
				resp, err := cl.Do(&wire.Request{ID: 7, Op: wire.OpWrite,
					Shard: -1, Path: path, Data: payload})
				if err != nil {
					errs[w] = err
					return
				}
				if resp.Status != wire.StatusOK || resp.ID != 7 {
					errs[w] = fmt.Errorf("write %s: %+v", path, resp)
					return
				}
				resp, err = cl.Do(&wire.Request{ID: 7, Op: wire.OpRead, Shard: -1, Path: path})
				if err != nil {
					errs[w] = err
					return
				}
				if resp.Status != wire.StatusOK || !bytes.Equal(resp.Data, payload) {
					errs[w] = fmt.Errorf("read %s: status %v, %d bytes", path, resp.Status, len(resp.Data))
					return
				}
				if resp.ID != 7 {
					errs[w] = fmt.Errorf("read %s: response ID %d, want caller's 7", path, resp.ID)
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestPipelinedConnOutOfOrder proves the serving path really is
// pipelined: with shard 0 stalled behind a gate, a later request to
// shard 1 on the same connection is answered first, and the stalled
// request's answer arrives after the gate opens. A strictly synchronous
// serveConn would deadlock-order the two responses.
func TestPipelinedConnOutOfOrder(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	s := newTestServer(t, Config{Shards: 2, Seed: 7,
		testGate: func(shard int) {
			if shard == 0 {
				<-gate
			}
		}})
	addr := listenAndServe(t, s)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	slow := pathOnShard(t, s, 0, "slow")
	fast := pathOnShard(t, s, 1, "fast")
	var buf []byte
	buf = wire.AppendRequest(buf[:0], &wire.Request{ID: 1, Op: wire.OpOpen, Shard: -1, Path: slow})
	if err := wire.WriteFrame(conn, buf); err != nil {
		t.Fatal(err)
	}
	buf = wire.AppendRequest(buf[:0], &wire.Request{ID: 2, Op: wire.OpOpen, Shard: -1, Path: fast})
	if err := wire.WriteFrame(conn, buf); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	readResp := func() *wire.Response {
		t.Helper()
		payload, err := wire.ReadFrame(conn, wire.MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := readResp()
	if first.ID != 2 || first.Status != wire.StatusOK {
		t.Fatalf("first response %+v, want ID 2 overtaking the stalled shard", first)
	}
	released = true
	close(gate)
	second := readResp()
	if second.ID != 1 || second.Status != wire.StatusOK {
		t.Fatalf("second response %+v, want the released ID 1", second)
	}
}

// TestMuxClientFailsOutstandingOnClose: closing the connection wakes
// every blocked Do with an error instead of leaving it hung.
func TestMuxClientFailsOutstandingOnClose(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	s := newTestServer(t, Config{Shards: 1, Seed: 7,
		testGate: func(int) { <-gate }})
	addr := listenAndServe(t, s)

	cl, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := cl.Do(&wire.Request{ID: 1, Op: wire.OpOpen, Shard: -1, Path: "/hung"})
		errc <- err
	}()
	// Wait until the request is registered and on the wire, then cut
	// the connection under it.
	for i := 0; ; i++ {
		cl.mu.Lock()
		n := len(cl.pending)
		cl.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("request never became pending")
		}
		time.Sleep(time.Millisecond)
	}
	cl.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Do returned nil error after Close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do stayed blocked after Close")
	}
	released = true
	close(gate)
}
