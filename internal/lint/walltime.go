package lint

import (
	"go/ast"
	"strings"
)

// Walltime forbids reading the host clock or the host's random number
// generator inside simulation packages. Every simulated outcome must be
// a pure function of seeds: time flows through the sim clock
// (sim.Clock), randomness through sim.Mix and sim.Rand, whose streams
// are stable across Go releases (math/rand's are not, and campaigns
// cite seeds that must reproduce forever). Host-time telemetry that
// deliberately reports wall-clock rates gets a `//riolint:walltime
// <reason>` annotation — the tree sanctions exactly one such site, the
// crash campaign's injectable clock.
var Walltime = &Analyzer{
	Name:      "walltime",
	Directive: "walltime",
	Doc:       "host clock and math/rand use in simulation packages",
	Run:       runWalltime,
}

// wallFuncs are the package time functions that read the host clock or
// block on it. Types and constants (time.Duration, time.Second) remain
// free to use.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

func runWalltime(p *Pass) {
	if !detPackages[p.Pkg.Name] {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(),
					"%s is forbidden in simulation packages: its streams change across Go releases; use sim.Rand (seeded via sim.Mix)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wallFuncs[obj.Name()] {
				return true
			}
			p.Reportf(sel.Pos(),
				"time.%s reads the host clock inside a simulation package; route time through the sim clock or annotate //riolint:walltime <reason>",
				obj.Name())
			return true
		})
	}
}
