// Fixture: the decode-path bounds mistakes wirebounds must catch — a
// decoded length driving a slice with no checks at all, with only the
// remaining-bytes half, sizing an allocation unbounded, and flowing
// into a take-style reader without its protocol maximum (the
// length-before-bounds-check bug class, reconstructed).
package wire

import (
	"encoding/binary"
	"errors"
)

var errTruncated = errors.New("truncated")

const maxData = 1 << 20

// decodeNoChecks slices with the raw decoded length: a truncated frame
// panics, an adversarial one reads past the payload.
func decodeNoChecks(buf []byte) []byte {
	n := binary.BigEndian.Uint32(buf)
	return buf[4 : 4+n] // want wirebounds "no bounds check at all"
}

// decodeNoMax checks the remaining bytes but accepts any declared size.
func decodeNoMax(buf []byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(buf)
	if uint32(len(buf)) < 4+n {
		return nil, errTruncated
	}
	return buf[4 : 4+n], nil // want wirebounds "without a protocol-maximum bound"
}

// allocNoMax lets a 4-byte header demand a 4 GiB allocation.
func allocNoMax(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	return make([]byte, n) // want wirebounds "sizes an allocation without a protocol-maximum bound"
}

// cur is a take-style sticky-error reader: take bounds its argument
// against the remaining buffer, but knows no protocol maximum.
type cur struct {
	buf []byte
	err error
}

func (c *cur) take(n int) []byte {
	if n < 0 || n > len(c.buf) {
		c.err = errTruncated
		return nil
	}
	b := c.buf[:n]
	c.buf = c.buf[n:]
	return b
}

func (c *cur) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// blobNoMax trusts a u32 length straight into take: bounded by the
// remaining bytes, unbounded by the protocol.
func (c *cur) blobNoMax() []byte {
	return c.take(int(c.u32())) // want wirebounds "reaches take"
}
