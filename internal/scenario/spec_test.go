package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseMinimalCrashSpec(t *testing.T) {
	s, err := Parse([]byte(`{"name":"t","kind":"crash","seed":1,"runs":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload.Name != "memtest" {
		t.Fatalf("default workload: %q", s.Workload.Name)
	}
	if len(s.Topology.Systems) != 3 {
		t.Fatalf("default systems: %v", s.Topology.Systems)
	}
	if s.Schedule.WarmupOps == 0 || s.Schedule.MaxOps == 0 {
		t.Fatalf("schedule defaults not filled: %+v", s.Schedule)
	}
	if s.Faults.Count == 0 {
		t.Fatal("fault count default not filled")
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ``},
		{"not json", `{{`},
		{"unknown field", `{"name":"t","kind":"crash","runs":1,"bogus":1}`},
		{"unknown kind", `{"name":"t","kind":"chaos","runs":1}`},
		{"missing name", `{"kind":"crash","runs":1}`},
		{"zero runs", `{"name":"t","kind":"crash"}`},
		{"negative runs", `{"name":"t","kind":"crash","runs":-1}`},
		{"huge runs", `{"name":"t","kind":"crash","runs":9999999}`},
		{"unknown workload", `{"name":"t","kind":"crash","runs":1,"workload":{"name":"forkbomb"}}`},
		{"unknown fault", `{"name":"t","kind":"crash","runs":1,"faults":{"types":["lasers"]}}`},
		{"unknown system", `{"name":"t","kind":"crash","runs":1,"topology":{"systems":["ntfs"]}}`},
		{"trailing data", `{"name":"t","kind":"crash","runs":1}{"x":1}`},
		{"fleet with workload", `{"name":"t","kind":"fleet","runs":1,"workload":{"name":"memtest"}}`},
		{"fleet bad kind", `{"name":"t","kind":"fleet","runs":1,"topology":{"fleet_faults":["meteor"]}}`},
		{"fleet replicas exceed nodes", `{"name":"t","kind":"fleet","runs":1,"topology":{"nodes":2,"replicas":3}}`},
		{"server with systems", `{"name":"t","kind":"server","runs":1,"topology":{"systems":["rio-prot"]}}`},
		{"server workload", `{"name":"t","kind":"server","runs":1,"workload":{"name":"mailspool"}}`},
		{"server outage too long", `{"name":"t","kind":"server","runs":1,"schedule":{"max_ops":100,"crash_at":50,"outage_ops":60}}`},
		{"crash with shards", `{"name":"t","kind":"crash","runs":1,"topology":{"shards":4}}`},
		{"crash with crash_at", `{"name":"t","kind":"crash","runs":1,"schedule":{"crash_at":5}}`},
		{"txntest on disk", `{"name":"t","kind":"crash","runs":1,"workload":{"name":"txntest"},"topology":{"systems":["disk-based"]}}`},
		{"skew out of range", `{"name":"t","kind":"crash","runs":1,"workload":{"name":"hotkey","skew":99}}`},
		{"negative bytes", `{"name":"t","kind":"crash","runs":1,"workload":{"bytes":-5}}`},
		{"faults on fleet", `{"name":"t","kind":"fleet","runs":1,"faults":{"count":5}}`},
		{"long name", `{"name":"` + strings.Repeat("x", 200) + `","kind":"crash","runs":1}`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseRejectsOversized(t *testing.T) {
	big := append([]byte(`{"name":"t"`), bytes.Repeat([]byte(" "), MaxSpecBytes)...)
	if _, err := Parse(big); err == nil {
		t.Fatal("oversized spec accepted")
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	specs := []string{
		`{"name":"a","kind":"crash","seed":7,"runs":12,"workload":{"name":"hotkey","keys":32},"faults":{"types":["kernel text"],"disk_faults":true}}`,
		`{"name":"b","kind":"server","seed":9,"runs":4,"workload":{"name":"hotkey"},"topology":{"shards":2}}`,
		`{"name":"c","kind":"fleet","seed":1,"runs":10,"topology":{"fleet_faults":["kill-primary","partition-pair"]}}`,
		`{"name":"d","kind":"crash","runs":2,"workload":{"name":"txntest","accounts":4}}`,
	}
	for _, in := range specs {
		s, err := Parse([]byte(in))
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		enc1, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Parse(enc1)
		if err != nil {
			t.Fatalf("re-parse of canonical form failed: %v\n%s", err, enc1)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encode not a fixpoint:\n%s\nvs\n%s", enc1, enc2)
		}
	}
}

func TestTxnTestDefaultsToRioSystems(t *testing.T) {
	s, err := Parse([]byte(`{"name":"t","kind":"crash","runs":1,"workload":{"name":"txntest"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Topology.Systems) != 2 {
		t.Fatalf("txntest systems: %v", s.Topology.Systems)
	}
	for _, sys := range s.Topology.Systems {
		if sys == "disk-based" {
			t.Fatal("txntest defaulted onto the disk-based column")
		}
	}
}
