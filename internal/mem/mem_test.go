package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewSizing(t *testing.T) {
	m := New(16 * PageSize)
	if m.Size() != 16*PageSize {
		t.Fatalf("Size = %d", m.Size())
	}
	if m.NumFrames() != 16 {
		t.Fatalf("NumFrames = %d", m.NumFrames())
	}
}

func TestNewRejectsBadSize(t *testing.T) {
	for _, size := range []int{0, -PageSize, PageSize + 1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", size)
				}
			}()
			New(size)
		}()
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(4 * PageSize)
	data := []byte("the rio file cache survives crashes")
	m.WriteAt(PageSize+100, data)
	got := make([]byte, len(data))
	m.ReadAt(PageSize+100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %q", got)
	}
}

func TestWord64RoundTrip(t *testing.T) {
	m := New(PageSize)
	m.SetWord64(40, 0xdeadbeefcafebabe)
	if got := m.Word64(40); got != 0xdeadbeefcafebabe {
		t.Fatalf("Word64 = %#x", got)
	}
	// Little-endian layout.
	if m.Byte(40) != 0xbe {
		t.Fatalf("low byte = %#x, want 0xbe", m.Byte(40))
	}
}

func TestWord64Property(t *testing.T) {
	m := New(PageSize)
	f := func(v uint64, off uint16) bool {
		addr := uint64(off) % (PageSize - 8)
		m.SetWord64(addr, v)
		return m.Word64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameOfAndBase(t *testing.T) {
	if FrameOf(0) != 0 || FrameOf(PageSize-1) != 0 || FrameOf(PageSize) != 1 {
		t.Fatal("FrameOf boundary wrong")
	}
	if FrameBase(3) != 3*PageSize {
		t.Fatalf("FrameBase(3) = %d", FrameBase(3))
	}
	for n := 0; n < 100; n++ {
		if FrameOf(FrameBase(n)) != n {
			t.Fatalf("FrameOf(FrameBase(%d)) = %d", n, FrameOf(FrameBase(n)))
		}
	}
}

func TestContainsRange(t *testing.T) {
	m := New(2 * PageSize)
	cases := []struct {
		addr uint64
		n    int
		want bool
	}{
		{0, 0, true},
		{0, 2 * PageSize, true},
		{0, 2*PageSize + 1, false},
		{2 * PageSize, 0, true},
		{2 * PageSize, 1, false},
		{PageSize, PageSize, true},
		{0, -1, false},
		{^uint64(0), 1, false},
	}
	for _, c := range cases {
		if got := m.ContainsRange(c.addr, c.n); got != c.want {
			t.Errorf("ContainsRange(%#x, %d) = %v, want %v", c.addr, c.n, got, c.want)
		}
	}
}

func TestRawOutOfRangePanics(t *testing.T) {
	m := New(PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range raw write did not panic")
		}
	}()
	m.WriteAt(PageSize-4, make([]byte, 8))
}

func TestFlipBit(t *testing.T) {
	m := New(PageSize)
	m.SetByte(10, 0b00001000)
	m.FlipBit(10, 3)
	if m.Byte(10) != 0 {
		t.Fatalf("after flip: %#b", m.Byte(10))
	}
	m.FlipBit(10, 7)
	if m.Byte(10) != 0b10000000 {
		t.Fatalf("after second flip: %#b", m.Byte(10))
	}
}

func TestFrameMetadata(t *testing.T) {
	m := New(4 * PageSize)
	f := m.Frame(2)
	f.FileCache = true
	f.WriteProtected = true
	if !m.Frame(2).FileCache || !m.Frame(2).WriteProtected {
		t.Fatal("frame metadata not retained")
	}
	if m.Frame(1).FileCache {
		t.Fatal("metadata leaked to wrong frame")
	}
}

func TestDumpIsCopy(t *testing.T) {
	m := New(PageSize)
	m.SetByte(0, 0xaa)
	d := m.Dump()
	m.SetByte(0, 0xbb)
	if d[0] != 0xaa {
		t.Fatal("Dump aliases live memory")
	}
	if len(d) != PageSize {
		t.Fatalf("dump len = %d", len(d))
	}
}

func TestScramble(t *testing.T) {
	m := New(2 * PageSize)
	m.Frame(0).FileCache = true
	m.WriteAt(0, []byte("precious data"))
	m.Scramble(1)
	if m.Frame(0).FileCache {
		t.Fatal("Scramble did not clear frame flags")
	}
	if bytes.Equal(m.Slice(0, 13), []byte("precious data")) {
		t.Fatal("Scramble did not overwrite data")
	}
	// Deterministic for a given seed.
	m2 := New(2 * PageSize)
	m2.Scramble(1)
	if !bytes.Equal(m.Dump(), m2.Dump()) {
		t.Fatal("Scramble not deterministic")
	}
}

func TestClearFlagsPreservesData(t *testing.T) {
	m := New(PageSize)
	m.WriteAt(64, []byte("survives"))
	m.Frame(0).WriteProtected = true
	m.ClearFlags()
	if m.Frame(0).WriteProtected {
		t.Fatal("flags not cleared")
	}
	got := make([]byte, 8)
	m.ReadAt(64, got)
	if string(got) != "survives" {
		t.Fatalf("data lost: %q", got)
	}
}

func TestPageCopy(t *testing.T) {
	m := New(2 * PageSize)
	m.SetByte(PageSize+5, 0x42)
	p := m.Page(1)
	if p[5] != 0x42 {
		t.Fatal("Page contents wrong")
	}
	p[5] = 0
	if m.Byte(PageSize+5) != 0x42 {
		t.Fatal("Page aliases live memory")
	}
}

func TestSliceAliases(t *testing.T) {
	m := New(PageSize)
	s := m.Slice(100, 4)
	s[0] = 0x7f
	if m.Byte(100) != 0x7f {
		t.Fatal("Slice must alias live memory")
	}
}
