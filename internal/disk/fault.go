package disk

import (
	"errors"
	"fmt"

	"rio/internal/sim"
)

// Storage fault injection. The paper's reliability argument assumes the
// disk itself is perfect: a write either completes or tears, and every
// read returns what was last written. Real drives fail in richer ways —
// transient command failures, latent sector errors that sit undetected
// until the next read, and misdirected writes that land on the wrong
// track. The FaultPlan injects all three deterministically so the
// recovery path (fsck, warm reboot) can be tested against an adversarial
// device, not just an adversarial kernel.
//
// Determinism contract: every fault decision is a pure function of
// (plan seed, per-disk operation index, sector, operation kind) via
// sim.Mix. No shared PRNG stream is consumed, so two machines running
// the same operation sequence against the same plan inject identical
// faults — which is what lets the double-fault crash campaign render a
// byte-identical report at any worker count.

// FaultKind classifies an injected storage fault.
type FaultKind int

const (
	// FaultTransient is a command-level failure (bus reset, ECC retry
	// exhaustion) that a retry may clear.
	FaultTransient FaultKind = iota + 1
	// FaultLatent is a latent sector error: the medium under one sector
	// has degraded and every read fails until the sector is rewritten.
	FaultLatent
	// FaultMisdirect is a misdirected write: the data lands, intact, on
	// the wrong sector — the drive reports success.
	FaultMisdirect
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultLatent:
		return "latent-sector"
	case FaultMisdirect:
		return "misdirected-write"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// errTransient and errLatent are the sentinel roots of disk I/O errors;
// use IsTransient / IsLatent (or errors.Is) to classify, not equality on
// the returned error, which carries operation context.
var (
	errTransient = errors.New("transient I/O error")
	errLatent    = errors.New("latent sector error")
)

// IOError is a failed disk operation. It wraps one of the sentinel
// causes so errors.Is works through it.
type IOError struct {
	Op     string // "read", "write", "commit"
	Sector int
	cause  error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("disk: %s sector %d: %v", e.Op, e.Sector, e.cause)
}

func (e *IOError) Unwrap() error { return e.cause }

// IsTransient reports whether err is a transient disk error: the same
// operation, retried, may succeed.
func IsTransient(err error) bool { return errors.Is(err, errTransient) }

// IsLatent reports whether err is a latent sector error: reads of the
// sector fail until it is rewritten; retrying the read is futile.
func IsLatent(err error) bool { return errors.Is(err, errLatent) }

// FaultPlan parameterises deterministic storage fault injection. A nil
// plan (the default) injects nothing and the disk behaves as before.
// Rates are per-operation probabilities in [0, 1).
type FaultPlan struct {
	// Seed drives every fault decision (via sim.Mix with the operation
	// coordinates); the same seed and operation sequence inject the
	// same faults.
	Seed uint64
	// TransientRead / TransientWrite are the probabilities that a read
	// or write fails with a retryable error and transfers nothing.
	TransientRead  float64
	TransientWrite float64
	// LatentRate is the probability that a read discovers the medium
	// under its first sector has degraded: the read fails and the
	// sector stays unreadable until rewritten.
	LatentRate float64
	// MisdirectRate is the probability that a write lands on the wrong
	// sector while reporting success.
	MisdirectRate float64
	// MaxFaults bounds the total number of injected faults (0 = no
	// bound). Keeps long campaigns from degenerating into pure noise.
	MaxFaults int
}

// DefaultFaultPlan returns rates tuned for recovery testing: frequent
// enough that a multi-step restore almost always sees several faults,
// bounded so the volume stays recoverable more often than not.
func DefaultFaultPlan(seed uint64) FaultPlan {
	return FaultPlan{
		Seed:           seed,
		TransientRead:  0.05,
		TransientWrite: 0.05,
		LatentRate:     0.01,
		MisdirectRate:  0.005,
		MaxFaults:      24,
	}
}

// FaultStats counts injected faults by kind, plus latent-map state.
type FaultStats struct {
	Transient  uint64 // transient read/write failures injected
	Latent     uint64 // latent sector errors planted
	LatentHits uint64 // reads that failed on an already-latent sector
	Misdirects uint64 // writes that landed on the wrong sector
	Cleared    uint64 // latent sectors healed by rewrite
}

// Total returns the number of injected faults (excluding repeat hits on
// already-latent sectors, which are consequences, not new faults).
func (s FaultStats) Total() uint64 { return s.Transient + s.Latent + s.Misdirects }

// SetFaultPlan installs (or, with nil, removes) the disk's fault plan.
// Removing the plan stops new fault arrivals; sectors already latent
// stay unreadable until rewritten — damage to the medium does not heal
// because the test harness stopped injecting.
func (d *Disk) SetFaultPlan(p *FaultPlan) {
	if p != nil {
		cp := *p
		d.plan = &cp
		if d.latent == nil {
			d.latent = make(map[int]bool)
		}
	} else {
		d.plan = nil
	}
}

// FaultPlanActive reports whether a fault plan is installed.
func (d *Disk) FaultPlanActive() bool { return d.plan != nil }

// LatentSectors returns the number of sectors currently unreadable.
func (d *Disk) LatentSectors() int { return len(d.latent) }

// opRead/opWrite tag the operation kind in the fault-decision hash so a
// read and a write at the same (op index, sector) draw independently.
const (
	opRead uint64 = iota + 1
	opWrite
)

// decide rolls the fault dice for one operation. It advances the
// per-disk operation counter (so decisions are position-dependent) and
// returns the fault to inject, if any, plus a hash for any secondary
// choice (misdirect target).
func (d *Disk) decide(kind uint64, sector int) (FaultKind, uint64) {
	if d.plan == nil {
		return 0, 0
	}
	d.faultOps++
	if d.plan.MaxFaults > 0 && d.FaultStats.Total() >= uint64(d.plan.MaxFaults) {
		return 0, 0
	}
	h := sim.Mix(d.plan.Seed, d.faultOps, kind, uint64(sector))
	u := float64(h>>11) / (1 << 53)
	switch kind {
	case opRead:
		if u < d.plan.TransientRead {
			return FaultTransient, h
		}
		if u < d.plan.TransientRead+d.plan.LatentRate {
			return FaultLatent, h
		}
	case opWrite:
		if u < d.plan.TransientWrite {
			return FaultTransient, h
		}
		if u < d.plan.TransientWrite+d.plan.MisdirectRate {
			return FaultMisdirect, h
		}
	}
	return 0, 0
}

// latentIn returns the first latent sector in [sector, sector+ns), or
// -1 if the range is clean.
func (d *Disk) latentIn(sector, ns int) int {
	if len(d.latent) == 0 {
		return -1
	}
	for s := sector; s < sector+ns; s++ {
		if d.latent[s] {
			return s
		}
	}
	return -1
}

// clearLatent heals latent sectors in [sector, sector+ns): a rewrite
// remaps the sector, as real drives do.
func (d *Disk) clearLatent(sector, ns int) {
	if len(d.latent) == 0 {
		return
	}
	for s := sector; s < sector+ns; s++ {
		if d.latent[s] {
			delete(d.latent, s)
			d.FaultStats.Cleared++
		}
	}
}

// misdirectTarget derives the wrong sector a misdirected write lands on:
// deterministic from the decision hash, never the intended sector.
func (d *Disk) misdirectTarget(h uint64, sector, ns int) int {
	n := d.NumSectors() - ns
	if n <= 1 {
		return sector
	}
	t := int(sim.Mix(h, 0xBAD) % uint64(n))
	if t >= sector && t < sector+ns {
		t = (t + ns) % n
	}
	return t
}

// readFault returns the error to inject for a read of ns sectors at
// sector, or nil. Latent hits take priority: a degraded sector fails
// every read regardless of the dice.
func (d *Disk) readFault(sector, ns int) error {
	if s := d.latentIn(sector, ns); s >= 0 {
		d.FaultStats.LatentHits++
		return &IOError{Op: "read", Sector: s, cause: errLatent}
	}
	switch k, _ := d.decide(opRead, sector); k {
	case FaultTransient:
		d.FaultStats.Transient++
		return &IOError{Op: "read", Sector: sector, cause: errTransient}
	case FaultLatent:
		d.FaultStats.Latent++
		d.latent[sector] = true
		return &IOError{Op: "read", Sector: sector, cause: errLatent}
	}
	return nil
}

// writeFault resolves fault injection for a write of ns sectors at
// sector. It returns (target, nil) on success — target differs from
// sector when the write was misdirected — or (0, err) on a transient
// failure that wrote nothing.
func (d *Disk) writeFault(op string, sector, ns int) (int, error) {
	k, h := d.decide(opWrite, sector)
	switch k {
	case FaultTransient:
		d.FaultStats.Transient++
		return 0, &IOError{Op: op, Sector: sector, cause: errTransient}
	case FaultMisdirect:
		if t := d.misdirectTarget(h, sector, ns); t != sector {
			d.FaultStats.Misdirects++
			return t, nil
		}
	}
	return sector, nil
}
