// Command rioscn executes scenario files: declarative workload ×
// fault × topology specs (internal/scenario) compiled onto the
// deterministic campaign engines — single-machine crashtest, the
// sharded riod server, or the replicated fleet.
//
// Usage:
//
//	rioscn [-workers N] [-json-dir DIR] [-quiet] [-no-timing] path...
//
// Each path is a scenario file or a directory of *.json scenarios
// (run in sorted name order). For every scenario rioscn prints the
// aligned corruption table and a wall-clock latency table, and — with
// -json-dir — writes the canonical JSON report to DIR/<name>.json.
// The JSON bytes are a pure function of the spec: identical at any
// -workers value, which scripts/check.sh verifies by diffing -workers
// 1 against -workers 4. Timing never enters the JSON artifact.
//
// Exit status is non-zero when any scenario fails its zero gates:
// silently lost acked writes, torn commits, stale reads, or harness
// errors. Detected corruption does not fail the gate — measuring it is
// the experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rio/internal/scenario"
)

// collect expands the argument list into a sorted scenario file list.
func collect(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		ents, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				files = append(files, filepath.Join(arg, e.Name()))
			}
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no scenario files found in %v", args)
	}
	return files, nil
}

func main() {
	workers := flag.Int("workers", 0, "worker goroutines per scenario (0 = all cores)")
	jsonDir := flag.String("json-dir", "", "write each scenario's canonical JSON report to this directory")
	quiet := flag.Bool("quiet", false, "suppress per-plan progress")
	noTiming := flag.Bool("no-timing", false, "skip the wall-clock latency table")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rioscn [-workers N] [-json-dir DIR] <scenario.json | dir>...")
		os.Exit(2)
	}
	files, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioscn:", err)
		os.Exit(1)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "rioscn:", err)
			os.Exit(1)
		}
	}

	r := &scenario.Runner{Workers: *workers}
	if !*noTiming {
		r.Now = time.Now
	}
	if !*quiet {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	failed := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rioscn:", err)
			os.Exit(1)
		}
		spec, err := scenario.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rioscn: %s: %v\n", file, err)
			os.Exit(1)
		}
		res, err := r.Run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rioscn: %s: %v\n", file, err)
			os.Exit(1)
		}
		fmt.Print(res.Table())
		if lt := res.LatencyTable(); lt != "" {
			fmt.Println()
			fmt.Print(lt)
		}
		fmt.Println()
		if *jsonDir != "" {
			js, err := res.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "rioscn:", err)
				os.Exit(1)
			}
			out := filepath.Join(*jsonDir, res.Name+".json")
			if err := os.WriteFile(out, js, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "rioscn:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		}
		if err := res.Gate(); err != nil {
			fmt.Fprintln(os.Stderr, "rioscn: FAIL:", err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rioscn: %d of %d scenarios breached their zero gates\n", failed, len(files))
		os.Exit(1)
	}
	fmt.Printf("%d scenarios: zero acked-write loss, zero torn commits, zero stale reads\n", len(files))
}
