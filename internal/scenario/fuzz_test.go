package scenario

import (
	"bytes"
	"testing"
)

// FuzzParseScenario is the satellite fuzz target: hostile specs must
// never panic or over-allocate, and any spec that parses must have a
// canonical form that is a re-encode fixpoint.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`{"name":"t","kind":"crash","seed":1,"runs":3}`))
	f.Add([]byte(`{"name":"s","kind":"server","runs":2,"workload":{"name":"hotkey","keys":16,"skew":1.2}}`))
	f.Add([]byte(`{"name":"f","kind":"fleet","runs":5,"topology":{"nodes":3,"shards":2,"replicas":2,"fleet_faults":["os-crash"]}}`))
	f.Add([]byte(`{"name":"d","kind":"crash","runs":6,"workload":{"name":"scan","segments":2,"batches_per_seg":4},"faults":{"disk_faults":true,"count":10}}`))
	f.Add([]byte(`{"name":"x","kind":"crash","runs":1,"workload":{"name":"metacache","files":8,"skew":0.9},"schedule":{"warmup_ops":10,"max_ops":50}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"name":"t","kind":"crash","runs":1e9}`))
	f.Add([]byte(`{"name":"t","kind":"crash","runs":1,"seed":18446744073709551615}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data) // must not panic
		if err != nil {
			return
		}
		// Parsed specs are validated: spot-check the bounds that guard
		// allocation downstream.
		if s.Runs <= 0 || s.Runs > maxRuns {
			t.Fatalf("validated spec has runs out of bounds: %d", s.Runs)
		}
		if s.Workload.Bytes < 0 || s.Workload.Bytes > maxBytes {
			t.Fatalf("validated spec has bytes out of bounds: %d", s.Workload.Bytes)
		}
		if s.Workload.Keys < 0 || s.Workload.Keys > maxObjects {
			t.Fatalf("validated spec has keys out of bounds: %d", s.Workload.Keys)
		}
		// Canonical re-encode must be a fixpoint.
		enc1, err := s.Encode()
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		s2, err := Parse(enc1)
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v\n%s", err, enc1)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatalf("canonical form failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encode not a fixpoint:\n%q\nvs\n%q", enc1, enc2)
		}
	})
}
