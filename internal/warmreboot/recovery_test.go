package warmreboot

import (
	"fmt"
	"sort"
	"testing"

	"rio/internal/disk"
	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/registry"
	"rio/internal/sim"
)

// logicalState renders the mounted tree as a deterministic string:
// every path with its size and content checksum, sorted. Two volumes
// with equal logicalState hold the same files with the same bytes —
// the comparison the idempotency contract is stated in (raw disk
// images may differ in free-block noise, file bytes may not).
func logicalState(t *testing.T, fsys *fs.FS) string {
	t.Helper()
	var lines []string
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			t.Fatalf("readdir %s: %v", dir, err)
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				lines = append(lines, p+"/")
				walk(p)
				continue
			}
			f, err := fsys.Open(p)
			if err != nil {
				t.Fatalf("open %s: %v", p, err)
			}
			buf := make([]byte, e.Size)
			if e.Size > 0 {
				if _, err := f.ReadAt(buf, 0); err != nil {
					t.Fatalf("read %s: %v", p, err)
				}
			}
			f.Close()
			lines = append(lines, fmt.Sprintf("%s size=%d cksum=%x", p, e.Size, kernel.CksumBytes(buf)))
		}
	}
	walk("/")
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// crashedRioMachine builds a Rio machine with a dirty file cache, crashes
// it, and returns the machine plus an immutable memory dump and a disk
// snapshot taken at crash time — the fixture for replaying recovery.
func crashedRioMachine(t *testing.T, seed uint64) (*machine.Machine, []byte, []byte) {
	t.Helper()
	m := rioMachine(t, false)
	rng := sim.NewRand(seed)
	m.FS.Mkdir("/d")
	for i := 0; i < 6; i++ {
		data := kernel.FillBytes(1+int(rng.Uint64()%uint64(2*fs.BlockSize)), rng.Uint64()|1)
		put(t, m, fmt.Sprintf("/d/f%d", i), data)
	}
	m.Kernel.Panic("injected test crash")
	m.CrashFinish()
	dump := m.Mem.Dump()
	return m, dump, m.Disk.Snapshot()
}

// TestRecoveryIdempotentAfterInterruption is the satellite's contract:
// crash the warm reboot at every step (and a few past the end), rerun it
// from the same dump, and require the final file-system state to be
// byte-identical to an uninterrupted pass.
func TestRecoveryIdempotentAfterInterruption(t *testing.T) {
	m, dump, diskSnap := crashedRioMachine(t, 1996)

	// Reference: uninterrupted recovery.
	rep, err := FromDump(m, dump)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VolumeLost || rep.DataRestored == 0 {
		t.Fatalf("reference recovery degenerate: %v", rep)
	}
	want := logicalState(t, m.FS)
	steps := rep.Steps
	if steps < 3 {
		t.Fatalf("too few steps (%d) to exercise interruption", steps)
	}

	for k := 0; k <= steps+1; k++ {
		m.Disk.Restore(diskSnap)
		opts := DefaultOptions()
		opts.CrashAtStep = k
		_, err := FromDumpOpts(m, dump, opts)
		if k < steps {
			if err != ErrInterrupted {
				t.Fatalf("crash at step %d/%d: err = %v, want ErrInterrupted", k, steps, err)
			}
			// Restart from the same dump — the idempotent second pass.
			if _, err := FromDump(m, dump); err != nil {
				t.Fatalf("restart after crash at step %d: %v", k, err)
			}
		} else if err != nil {
			// Crash point past the protocol's end: completes normally.
			t.Fatalf("crash at step %d >= %d steps: %v", k, steps, err)
		}
		if got := logicalState(t, m.FS); got != want {
			t.Errorf("state after crash at step %d diverges from uninterrupted run:\ngot:\n%swant:\n%s", k, got, want)
		}
	}
}

// TestQuarantineContinuesPastBadEntry pins the early-return bug: one
// unrestorable data page (offset past the file-size limit) must be
// quarantined while every other page is still restored.
func TestQuarantineContinuesPastBadEntry(t *testing.T) {
	m := rioMachine(t, false)
	good1 := kernel.FillBytes(fs.BlockSize+100, 21)
	good2 := kernel.FillBytes(fs.BlockSize/2, 22)
	put(t, m, "/good1", good1)
	put(t, m, "/bad", kernel.FillBytes(200, 23))
	put(t, m, "/good2", good2)

	// Sabotage /bad's data entry: an offset beyond the largest legal
	// file makes its WriteAt fail deterministically during restore.
	var badIno uint32
	if st, err := m.FS.Stat("/bad"); err == nil {
		badIno = st.Ino
	} else {
		t.Fatal(err)
	}
	found := false
	for s := 0; s < m.Reg.Cap(); s++ {
		if e, ok := m.Reg.Get(s); ok && e.Kind == registry.KindData && e.Ino == badIno {
			if err := m.Reg.Mutate(s, func(e *registry.Entry) {
				e.Off = int64(fs.MaxFileBlocks+10) * fs.BlockSize
			}); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no data entry for /bad")
	}

	m.Kernel.Panic("injected test crash")
	m.CrashFinish()
	rep, err := Warm(m)
	if err != nil {
		t.Fatalf("restore aborted instead of quarantining: %v", err)
	}
	if rep.DataFailed == 0 {
		t.Fatalf("bad page not quarantined: %v", rep)
	}
	if rep.DataRestored < 2 {
		t.Fatalf("pages after the bad one abandoned: %v", rep)
	}
	for path, want := range map[string][]byte{"/good1": good1, "/good2": good2} {
		if got := get(t, m, path); string(got) != string(want) {
			t.Fatalf("%s corrupted by quarantine handling", path)
		}
	}
}

// TestRecoveryUnderStorageFaults runs the warm reboot against a disk
// injecting transient, latent, and misdirected faults and requires the
// pass to complete with every dirty page accounted — restored, failed,
// salvaged, or orphaned — never aborted.
func TestRecoveryUnderStorageFaults(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		m, dump, _ := crashedRioMachine(t, seed)
		plan := disk.DefaultFaultPlan(seed * 977)
		m.Disk.SetFaultPlan(&plan)
		rep, err := FromDump(m, dump)
		if err != nil {
			t.Fatalf("seed %d: recovery aborted: %v", seed, err)
		}
		m.Disk.SetFaultPlan(nil)
		if rep.VolumeLost {
			continue // a destroyed superblock is a reported outcome
		}
		// Machine must be booted and the tree walkable afterwards.
		_ = logicalState(t, m.FS)
	}
}

// TestRecoverySurvivesDoubleFault injects both adversaries at once: a
// second crash mid-recovery AND storage faults during both attempts.
func TestRecoverySurvivesDoubleFault(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		m, dump, _ := crashedRioMachine(t, seed+100)
		plan := disk.DefaultFaultPlan(seed * 1373)
		m.Disk.SetFaultPlan(&plan)
		opts := DefaultOptions()
		opts.CrashAtStep = int(seed) // early interruption
		_, err := FromDumpOpts(m, dump, opts)
		if err != nil && err != ErrInterrupted {
			t.Fatalf("seed %d: first attempt: %v", seed, err)
		}
		if err == ErrInterrupted {
			rep, err := FromDump(m, dump)
			if err != nil {
				t.Fatalf("seed %d: restart aborted: %v", seed, err)
			}
			if rep.VolumeLost {
				continue
			}
		}
		m.Disk.SetFaultPlan(nil)
		_ = logicalState(t, m.FS)
	}
}

// TestTruncatedDumpHandled feeds FromDump a dump cut short (a partial
// UPS write): the pass must complete without panicking, counting the
// missing frames rather than restoring garbage.
func TestTruncatedDumpHandled(t *testing.T) {
	m, dump, _ := crashedRioMachine(t, 7)
	for _, frac := range []int{1, 2, 7, 100} {
		short := dump[:len(dump)/frac]
		rep, err := FromDump(m, short)
		if err != nil {
			t.Fatalf("frac 1/%d: %v", frac, err)
		}
		if frac > 1 && rep.DataRestored > 0 && rep.BadEntries == 0 && rep.SkippedInvalid == 0 {
			t.Fatalf("frac 1/%d: truncation invisible in report: %v", frac, rep)
		}
	}
}
