package kvm

import "fmt"

// Text is the kernel's object code: the assembled instruction words plus
// the procedure table. Fault injection mutates the words in place, exactly
// as the paper's injector modified the kernel object code of Digital Unix.
type Text struct {
	words    []uint64
	procs    map[string]Proc
	procList []Proc
}

// Len returns the number of instruction words.
func (t *Text) Len() int { return len(t.words) }

// Word returns the raw instruction word at address pc.
func (t *Text) Word(pc int) uint64 { return t.words[pc] }

// SetWord overwrites the raw instruction word at pc (fault injection).
func (t *Text) SetWord(pc int, w uint64) { t.words[pc] = w }

// FlipBit inverts one bit of the instruction word at pc (kernel-text
// bit-flip fault model).
func (t *Text) FlipBit(pc int, bit uint) {
	if bit > 63 {
		panic("kvm: bit index out of range")
	}
	t.words[pc] ^= 1 << bit
}

// At decodes the instruction at pc.
func (t *Text) At(pc int) Instr { return Decode(t.words[pc]) }

// Proc looks up a procedure by name.
func (t *Text) Proc(name string) (Proc, bool) {
	p, ok := t.procs[name]
	return p, ok
}

// MustProc looks up a procedure, panicking if absent (simulator bug).
func (t *Text) MustProc(name string) Proc {
	p, ok := t.procs[name]
	if !ok {
		panic(fmt.Sprintf("kvm: unknown procedure %q", name))
	}
	return p
}

// Procs returns all procedures in assembly order.
func (t *Text) Procs() []Proc { return t.procList }

// ProcAt returns the procedure containing address pc, if any.
func (t *Text) ProcAt(pc int) (Proc, bool) {
	for _, p := range t.procList {
		if pc >= p.Entry && pc < p.End {
			return p, true
		}
	}
	return Proc{}, false
}

// Clone returns a deep copy of the text. Each crash-test run injects faults
// into a clone so the pristine kernel is never damaged.
func (t *Text) Clone() *Text {
	w := make([]uint64, len(t.words))
	copy(w, t.words)
	return &Text{words: w, procs: t.procs, procList: t.procList}
}

// Disassemble renders instructions [from, to) for debugging.
func (t *Text) Disassemble(from, to int) string {
	if from < 0 {
		from = 0
	}
	if to > len(t.words) {
		to = len(t.words)
	}
	out := ""
	for pc := from; pc < to; pc++ {
		name := ""
		if p, ok := t.ProcAt(pc); ok && p.Entry == pc {
			name = p.Name + ":"
		}
		out += fmt.Sprintf("%-12s %4d: %s\n", name, pc, t.At(pc))
	}
	return out
}
