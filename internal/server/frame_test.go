package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"testing"

	"rio/internal/wire"
)

// TestDoFrameRoundTrip: a frame-path read returns one complete,
// decodable wire frame whose payload is byte-identical to what the
// plain path returns, with resp.Data left nil (the payload lives only
// in the frame). Non-read ops and failed reads come back frameless,
// exactly as Do would answer them.
func TestDoFrameRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 11})
	payload := bytes.Repeat([]byte{0xAB, 0x5A, 0x01}, 3000)
	if r := s.Do(&wire.Request{ID: 1, Op: wire.OpWrite, Path: "/ff/data", Data: payload}); r.Status != wire.StatusOK {
		t.Fatalf("write: %+v", r)
	}

	frame, resp := s.DoFrame(&wire.Request{ID: 2, Op: wire.OpRead, Path: "/ff/data"})
	if resp.Status != wire.StatusOK {
		t.Fatalf("frame read: %+v", resp)
	}
	if frame == nil {
		t.Fatal("successful frame read returned no frame")
	}
	if resp.Data != nil {
		t.Fatalf("frame read also carried %d bytes of resp.Data", len(resp.Data))
	}
	if n := binary.BigEndian.Uint32(frame[:4]); int(n) != len(frame)-4 {
		t.Fatalf("frame prefix %d, payload %d", n, len(frame)-4)
	}
	dec, err := wire.DecodeResponse(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != 2 || dec.Status != wire.StatusOK || dec.Size != int64(len(payload)) {
		t.Fatalf("decoded header: %+v", dec)
	}
	if !bytes.Equal(dec.Data, payload) {
		t.Fatal("frame payload differs from written data")
	}
	s.ReleaseFrame(frame)

	// Ranged read: offset+len honoured through the frame path.
	frame, resp = s.DoFrame(&wire.Request{ID: 3, Op: wire.OpRead, Path: "/ff/data", Offset: 100, Len: 37})
	if resp.Status != wire.StatusOK || frame == nil {
		t.Fatalf("ranged frame read: %+v", resp)
	}
	dec, err = wire.DecodeResponse(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Data, payload[100:137]) {
		t.Fatal("ranged frame payload mismatch")
	}
	s.ReleaseFrame(frame)

	// Failures and non-reads are frameless.
	if f, r := s.DoFrame(&wire.Request{ID: 4, Op: wire.OpRead, Path: "/ff/missing"}); f != nil || r.Status != wire.StatusNotFound {
		t.Fatalf("missing-file frame read: frame=%v resp=%+v", f != nil, r)
	}
	if f, r := s.DoFrame(&wire.Request{ID: 5, Op: wire.OpStat, Path: "/ff/data"}); f != nil || r.Status != wire.StatusOK {
		t.Fatalf("stat via DoFrame: frame=%v resp=%+v", f != nil, r)
	}
}

// TestServedReadAllocs pins the zero-copy read path's allocation
// budget: a steady-state DoFrame of a block-sized file must allocate
// at most 1 object per op (the wire.Response header) across client and
// shard goroutines combined. This is the regression guard for the
// whole chain — pooled frame buffers, pooled reply channels, the
// shard's reusable serve scratch, and the split-free path resolver.
func TestServedReadAllocs(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Seed: 13})
	if r := s.Do(&wire.Request{ID: 1, Op: wire.OpWrite, Path: "/a/blk", Data: bytes.Repeat([]byte{7}, 8192)}); r.Status != wire.StatusOK {
		t.Fatalf("write: %+v", r)
	}
	req := &wire.Request{ID: 2, Op: wire.OpRead, Path: "/a/blk"}
	read := func() {
		frame, resp := s.DoFrame(req)
		if resp.Status != wire.StatusOK || frame == nil {
			t.Fatalf("frame read: %+v", resp)
		}
		s.ReleaseFrame(frame)
	}
	for i := 0; i < 64; i++ {
		read() // warm the pools and the dcache
	}
	if allocs := testing.AllocsPerRun(200, read); allocs > 1 {
		t.Fatalf("served frame read allocates %.1f objects/op, want <= 1", allocs)
	}
}

// TestWriterEncodeReuse is the regression test for the discarded-growth
// bug in the old TCP writer: it encoded with AppendResponse(buf[:0], r)
// and threw the grown copy away, so every response beyond the seed
// capacity allocated afresh forever. encodeBatch returns its growth to
// the caller; once warm, encoding a batch of block-sized responses must
// not allocate at all, and the same backing array must be reused.
func TestWriterEncodeReuse(t *testing.T) {
	batch := make([]reply, 8)
	for i := range batch {
		batch[i] = reply{resp: &wire.Response{ID: uint64(i), Status: wire.StatusOK,
			Data: bytes.Repeat([]byte{byte(i)}, 8192)}}
	}
	var encBuf []byte
	var spans []int
	var iov net.Buffers
	encBuf, spans = encodeBatch(encBuf, spans, batch) // growth run
	warm := &encBuf[:1][0]
	if allocs := testing.AllocsPerRun(100, func() {
		encBuf, spans = encodeBatch(encBuf, spans, batch)
		iov = buildIov(iov, encBuf, spans, batch)
	}); allocs != 0 {
		t.Fatalf("warm encode of 8x8KB batch allocates %.1f objects, want 0", allocs)
	}
	if &encBuf[:1][0] != warm {
		t.Fatal("encode buffer was reallocated on a warm run")
	}
}

// TestBuildIovCoalesces checks the vector layout: runs of encoded
// responses collapse to one entry, zero-copy frames interleave in batch
// order, and the concatenation of all entries is exactly the frames the
// client must see, in order.
func TestBuildIovCoalesces(t *testing.T) {
	mk := func(id uint64, data []byte) *wire.Response {
		return &wire.Response{ID: id, Status: wire.StatusOK, Data: data}
	}
	frameFor := func(r *wire.Response) []byte { return wire.AppendResponseFrame(nil, r) }

	// enc, enc, FRAME, enc, FRAME, FRAME, enc
	batch := []reply{
		{resp: mk(0, []byte("aa"))},
		{resp: mk(1, nil)},
		{frame: frameFor(mk(2, []byte("frame-2"))), resp: &wire.Response{ID: 2, Status: wire.StatusOK}},
		{resp: mk(3, []byte("ccc"))},
		{frame: frameFor(mk(4, nil)), resp: &wire.Response{ID: 4, Status: wire.StatusOK}},
		{frame: frameFor(mk(5, []byte("frame-5"))), resp: &wire.Response{ID: 5, Status: wire.StatusOK}},
		{resp: mk(6, []byte("d"))},
	}
	encBuf, spans := encodeBatch(nil, nil, batch)
	iov := buildIov(nil, encBuf, spans, batch)
	if len(iov) != 6 { // run(0,1), frame2, run(3), frame4, frame5, run(6)
		t.Fatalf("iov has %d entries, want 6", len(iov))
	}

	var stream []byte
	for _, b := range iov {
		stream = append(stream, b...)
	}
	for i := uint64(0); i < 7; i++ {
		if len(stream) < 4 {
			t.Fatalf("stream truncated before response %d", i)
		}
		n := binary.BigEndian.Uint32(stream[:4])
		dec, err := wire.DecodeResponse(stream[4 : 4+n])
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if dec.ID != i {
			t.Fatalf("response %d decoded with ID %d: ordering broken", i, dec.ID)
		}
		stream = stream[4+n:]
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes after batch", len(stream))
	}
}

// TestWritevCoalescing drives a pipelined burst over real TCP and
// checks the server-side writev accounting: with many requests in
// flight on one connection, responses must leave in multi-frame
// vectored writes (avg frames/call > 1), and every byte must still
// round-trip correctly.
func TestWritevCoalescing(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 17})
	addr := listenAndServe(t, s)

	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/wv/f%d", i)
		if r := s.Do(&wire.Request{ID: 1, Op: wire.OpWrite, Path: p,
			Data: bytes.Repeat([]byte{byte(i)}, 2048)}); r.Status != wire.StatusOK {
			t.Fatalf("seed write %d: %+v", i, r)
		}
	}

	mux, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const rounds = 50
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			p := fmt.Sprintf("/wv/f%d", w)
			wantByte := byte(w)
			for r := 0; r < rounds; r++ {
				resp, err := mux.Do(&wire.Request{ID: uint64(w*rounds + r), Op: wire.OpRead, Path: p})
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				if resp.Status != wire.StatusOK || len(resp.Data) != 2048 || resp.Data[0] != wantByte {
					errs <- fmt.Errorf("worker %d round %d: %+v", w, r, resp)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	m := s.Metrics()
	if m.Writev == nil || m.Writev.Calls == 0 {
		t.Fatal("no writev accounting after TCP traffic")
	}
	if m.Writev.Frames != 8*rounds {
		t.Fatalf("writev carried %d frames, want %d", m.Writev.Frames, 8*rounds)
	}
	if m.Writev.AvgFrames <= 1.0 {
		t.Fatalf("avg %.2f frames per writev under 8-way pipelining, want > 1", m.Writev.AvgFrames)
	}
}
