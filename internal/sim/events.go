package sim

import "container/heap"

// Event is a callback scheduled to fire at a simulated time.
type Event struct {
	At   Time   // when the event fires
	Name string // human-readable label for tracing
	Fire func() // callback; runs with the clock advanced to At

	seq   uint64 // tie-break so equal-time events fire in schedule order
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop bound to a Clock.
//
// The engine is cooperative: callers schedule events and then either Step
// through them or RunUntil a deadline. Event callbacks may schedule further
// events. The engine is not safe for concurrent use; the whole simulator is
// single-goroutine by design (determinism).
type Engine struct {
	Clock *Clock
	queue eventHeap
	seq   uint64
}

// NewEngine returns an engine driving the given clock. If clock is nil a
// fresh clock is created.
func NewEngine(clock *Clock) *Engine {
	if clock == nil {
		clock = NewClock()
	}
	return &Engine{Clock: clock}
}

// Schedule registers fire to run at absolute time at. Scheduling in the past
// (before the current clock) panics. Returns the event for cancellation.
func (e *Engine) Schedule(at Time, name string, fire func()) *Event {
	if at < e.Clock.Now() {
		panic("sim: event scheduled in the past")
	}
	ev := &Event{At: at, Name: name, Fire: fire, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fire to run d after the current time.
func (e *Engine) After(d Duration, name string, fire func()) *Event {
	return e.Schedule(e.Clock.Now().Add(d), name, fire)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
}

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Step fires the earliest event, advancing the clock to its time. It
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.Clock.AdvanceTo(ev.At)
	ev.Fire()
	return true
}

// RunUntil fires all events with At <= deadline, then advances the clock to
// the deadline. Events scheduled by callbacks are honoured if they land
// before the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	e.Clock.AdvanceTo(deadline)
}

// Drain fires every queued event (including newly scheduled ones) until the
// queue is empty. A safety cap guards against event loops that reschedule
// themselves forever; exceeding it panics.
func (e *Engine) Drain() {
	const cap = 50_000_000
	for i := 0; e.Step(); i++ {
		if i > cap {
			panic("sim: Drain exceeded event cap (self-rescheduling loop?)")
		}
	}
}

// Reset drops all pending events and rewinds the clock. Used at reboot.
func (e *Engine) Reset() {
	e.queue = nil
	e.Clock.Reset()
}
