package server

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"rio/internal/wire"
)

// connInflight bounds how many decoded requests one connection may have
// outstanding inside the server at once. Pipelined clients past this
// depth see backpressure on the TCP stream itself (the reader stops
// pulling frames), not an error — the bound exists so one connection
// cannot hold unbounded decoded frames in memory.
const connInflight = 64

// Connection deadline defaults (Config.IdleTimeout / WriteTimeout; a
// negative value disables). A serving goroutine must never be pinned
// forever by a peer that went silent — a hung client, or a machine on
// the wrong side of a network partition, would otherwise hold its
// reader goroutine and up to connInflight decoded requests until
// process exit.
const (
	defaultIdleTimeout  = 5 * time.Minute
	defaultWriteTimeout = 30 * time.Second
)

// Serve accepts connections on ln and serves each on its own
// goroutine until ln is closed (Accept then returns an error) — the
// caller owns the listener's lifecycle. Connections are pipelined: the
// reader keeps pulling frames while earlier requests are still in the
// shard queues, so one connection can keep many shards busy at once.
// Responses are written as they complete, matched to requests by the
// echoed ID — a synchronous client (one request in flight) observes
// exactly the old one-in, one-out behaviour.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one connection. Three roles share the socket: this
// goroutine reads and decodes frames, a bounded pool of dispatch
// goroutines (at most connInflight) runs each request through the shard
// queues, and a single writer goroutine serializes response frames back
// onto the stream. Responses leave in completion order, not arrival
// order; the echoed request ID is the tag a pipelined client matches
// on. Any transport or decode error ends the connection: the framing
// carries no resync marker, so after a bad frame the stream cannot be
// trusted.
//
// Both directions carry deadlines: the reader arms an idle timeout
// before each frame (a peer that sends nothing for IdleTimeout is
// dropped), and the writer arms a per-frame write deadline (a peer
// that stops draining its receive window cannot block the writer
// forever). Either deadline firing closes the connection.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	idle, write := s.cfg.IdleTimeout, s.cfg.WriteTimeout

	// The writer owns the socket's write side. A write failure or
	// deadline closes the connection (unblocking the reader) but keeps
	// draining the channel — releasing any pooled frames — so
	// dispatchers never block on a dead peer.
	out := make(chan reply, connInflight)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.connWriter(conn, out, write)
	}()

	inflight := make(chan struct{}, connInflight)
	var dispatchWG sync.WaitGroup
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		payload, err := wire.ReadFrame(conn, wire.MaxFrame)
		if err != nil {
			break
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// The ID is unknowable from a frame that did not decode;
			// answer ID 0 so the peer sees why, then drop the stream.
			out <- reply{resp: &wire.Response{Status: wire.StatusInvalid, Msg: "bad request frame: " + err.Error()}}
			break
		}
		inflight <- struct{}{}
		dispatchWG.Add(1)
		go func() {
			defer dispatchWG.Done()
			out <- s.do(req, true)
			<-inflight
		}()
	}
	dispatchWG.Wait()
	close(out)
	writerWG.Wait()
}

// connWriter drains one connection's reply channel onto the socket.
// Each wakeup collects every reply already queued and flushes them as
// ONE vectored write (net.Buffers, i.e. writev): zero-copy read frames
// go into the vector as-is — the pooled buffer filled from cache frames
// is handed to the kernel untouched — and all other responses are
// serialized back-to-back into a persistent encode buffer whose
// contiguous runs each contribute a single vector entry. A pipelined
// burst of K responses therefore costs one syscall, not K, and the
// encode buffer's growth is kept across iterations (the old per-frame
// writer grew a throwaway copy on every response larger than its seed).
func (s *Server) connWriter(conn net.Conn, out <-chan reply, write time.Duration) {
	var (
		batch  []reply
		encBuf []byte // persistent arena for non-frame responses
		spans  []int  // encBuf offset after each batch entry (parallel to batch)
		iov    net.Buffers
	)
	broken := false
	for first := range out {
		// One scheduler pass before draining: the dispatchers holding
		// the rest of a served batch are runnable but have not yet
		// forwarded their replies; letting them run turns K wakeups
		// into one vectored write.
		runtime.Gosched()
		batch = append(batch[:0], first)
	drain:
		for len(batch) < connInflight {
			select {
			case r, ok := <-out:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if broken {
			// The peer is gone; keep consuming so dispatchers finish,
			// and return their frames to the pool.
			s.releaseBatch(batch)
			continue
		}

		encBuf, spans = encodeBatch(encBuf, spans, batch)
		iov = buildIov(iov, encBuf, spans, batch)
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		// WriteTo consumes the header it is called on (that is how it
		// resumes partial writes), so hand it a copy and keep iov as
		// the reusable scratch.
		toWrite := iov
		if _, err := toWrite.WriteTo(conn); err != nil {
			broken = true
			conn.Close()
		} else {
			s.recordWritev(len(batch))
		}
		s.releaseBatch(batch)
		// Drop the frame references before the next batch: the pool may
		// hand those buffers to another connection at any moment.
		for i := range iov {
			iov[i] = nil
		}
	}
}

// releaseBatch returns every pooled frame in batch to the pool.
func (s *Server) releaseBatch(batch []reply) {
	for _, r := range batch {
		s.ReleaseFrame(r.frame)
	}
}

// encodeBatch serializes every non-frame reply in batch into encBuf,
// back to back, recording in spans the encBuf offset after each batch
// entry (frame entries contribute nothing, so their span repeats the
// previous offset). Both slices are the caller's reusable scratch:
// growth is returned and kept, which is the fix for the old per-frame
// writer whose grown encode buffer was a discarded copy — every
// response larger than the 4KB seed allocated afresh, forever.
func encodeBatch(encBuf []byte, spans []int, batch []reply) ([]byte, []int) {
	encBuf = encBuf[:0]
	spans = spans[:0]
	for _, r := range batch {
		if r.frame == nil {
			encBuf = wire.AppendResponseFrame(encBuf, r.resp)
		}
		spans = append(spans, len(encBuf))
	}
	return encBuf, spans
}

// buildIov appends the batch's vector entries to iov (reset first), in
// batch order. Consecutive encoded responses are contiguous in encBuf
// by construction, so each run of them is a single vector entry;
// zero-copy frames interleave as their own entries. Entries must be
// sliced only after encodeBatch finishes, since an append there may
// move encBuf — which is why this is a second pass.
func buildIov(iov net.Buffers, encBuf []byte, spans []int, batch []reply) net.Buffers {
	iov = iov[:0]
	runStart := 0
	for i, r := range batch {
		if r.frame == nil {
			continue // tail of the current encoded run
		}
		if spans[i] > runStart {
			iov = append(iov, encBuf[runStart:spans[i]])
			runStart = spans[i]
		}
		iov = append(iov, r.frame)
	}
	if len(encBuf) > runStart {
		iov = append(iov, encBuf[runStart:])
	}
	return iov
}
