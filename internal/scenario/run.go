package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"rio/internal/crashtest"
	"rio/internal/crashtest/fleetcampaign"
	"rio/internal/fault"
	"rio/internal/kernel"
	"rio/internal/server"
	"rio/internal/sim"
	"rio/internal/wire"
	"rio/internal/workload"
)

// Salts namespacing the scenario engine's derived seed streams. Every
// plan seed is sim.Mix(spec.Seed, salt, coordinates...) — no stream is
// ever shared between plans, so plans parallelise freely.
const (
	crashPlanSalt  = 0x5CECA5F7
	serverPlanSalt = 0x5CE5E44E
	serverKeySalt  = 0xC0FFEE42
	serverShard    = 0xC7A54D0
	serverDataSalt = 0xDA7AB10B
)

// crashAttempts bounds fault-injection retries per crash plan: a plan
// whose faults never take the system down within this many derived
// seeds is scored discarded, as in the paper (about half their runs).
const crashAttempts = 6

// Runner executes scenarios. The zero value runs at GOMAXPROCS with no
// clock: byte-identical reports, empty latency tables. cmd/rioscn
// passes Now=time.Now to populate timing.
type Runner struct {
	// Workers caps plan-level parallelism; 0 = GOMAXPROCS.
	Workers int
	// Now, when non-nil, is the wall clock for latency accounting.
	// Timing never enters the canonical JSON report. Determinism-
	// critical code must not read wall time; the clock is injected
	// here, at the edge, by non-deterministic callers only.
	Now func() time.Time
	// Progress, when set, receives one line per folded plan.
	Progress func(string)
}

// Run compiles and executes one validated spec.
func (r *Runner) Run(spec *Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindCrash:
		return r.runCrash(spec)
	case KindServer:
		return r.runServer(spec)
	case KindFleet:
		return r.runFleet(spec)
	}
	return nil, fmt.Errorf("scenario: unknown kind %q", spec.Kind)
}

// elapsed returns a closure measuring wall time since now; zero
// duration without a clock.
func (r *Runner) elapsed() func() int64 {
	if r.Now == nil {
		return func() int64 { return 0 }
	}
	start := r.Now()
	return func() int64 { return int64(r.Now().Sub(start)) }
}

// forEach runs fn(i) for i in [0,n) on the worker pool. fn writes only
// its own slot.
func (r *Runner) forEach(n int, fn func(i int)) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// compileWorkload turns the workload spec into a per-run factory.
func compileWorkload(w WorkloadSpec) crashtest.WorkloadFactory {
	return func(seed uint64, writeThrough bool) workload.Workload {
		switch w.Name {
		case "txntest":
			return workload.NewTxnTest(seed, w.Accounts)
		case "metacache":
			mc := workload.NewMetaCache(seed, w.Files, w.Skew)
			mc.WriteThrough = writeThrough
			return mc
		case "mailspool":
			ms := workload.NewMailSpool(seed, w.Queue)
			ms.WriteThrough = writeThrough
			return ms
		case "hotkey":
			hk := workload.NewHotKey(seed, w.Keys, w.Skew, w.EpochLen)
			hk.WriteThrough = writeThrough
			return hk
		case "scan":
			sc := workload.NewScan(seed, w.Segments, w.BatchesPerSeg)
			sc.WriteThrough = writeThrough
			return sc
		default: // memtest (Validate guarantees the name set)
			mt := workload.NewMemTest(seed, w.Bytes)
			mt.WriteThrough = writeThrough
			return mt
		}
	}
}

// --- crash kind ---

// crashPlanOutcome is one plan's slot.
type crashPlanOutcome struct {
	cell      int
	crashed   bool
	res       crashtest.WorkloadResult
	err       error
	elapsedNs int64
}

func (r *Runner) runCrash(spec *Spec) (*Result, error) {
	systems := make([]crashtest.System, len(spec.Topology.Systems))
	for i, name := range spec.Topology.Systems {
		systems[i], _ = systemByName(name) // Validate already resolved
	}
	var fts []fault.Type
	if len(spec.Faults.Types) == 0 {
		fts = append(fts, fault.AllTypes...)
	} else {
		for _, name := range spec.Faults.Types {
			ft, _ := faultByName(name)
			fts = append(fts, ft)
		}
	}

	out := &Result{Name: spec.Name, Kind: spec.Kind, Workload: spec.Workload.Name,
		Seed: spec.Seed, Runs: spec.Runs}
	for _, sys := range systems {
		for _, ft := range fts {
			out.Cells = append(out.Cells, Cell{Label: sys.String() + "/" + ft.String()})
		}
	}
	mk := compileWorkload(spec.Workload)

	slots := make([]crashPlanOutcome, spec.Runs)
	total := r.elapsed()
	r.forEach(spec.Runs, func(i int) {
		sysIdx := i % len(systems)
		ftIdx := (i / len(systems)) % len(fts)
		o := &slots[i]
		o.cell = sysIdx*len(fts) + ftIdx
		tick := r.elapsed()
		// Fault-injection attempts: first seed that actually crashes is
		// the scored run; a plan that never crashes is discarded.
		for a := 0; a < crashAttempts; a++ {
			cfg := crashtest.RunConfig{
				Seed:         sim.Mix(spec.Seed, crashPlanSalt, uint64(i), uint64(a)),
				WarmupOps:    spec.Schedule.WarmupOps,
				MaxOps:       spec.Schedule.MaxOps,
				FaultCount:   spec.Faults.Count,
				MemTestBytes: spec.Workload.Bytes,
				VMBudget:     400_000,
				DiskFaults:   spec.Faults.DiskFaults,
			}
			res, err := crashtest.RunWorkloadOne(systems[sysIdx], fts[ftIdx], cfg, mk)
			if err != nil {
				o.err = err
				break
			}
			if res.Crashed {
				o.crashed = true
				o.res = res
				break
			}
		}
		o.elapsedNs = tick()
	})

	// Fold in plan order.
	for i := range slots {
		o := &slots[i]
		c := &out.Cells[o.cell]
		c.Runs++
		c.ElapsedNs += o.elapsedNs
		switch {
		case o.err != nil:
			c.Errors++
			c.LastError = o.err.Error()
		case !o.crashed:
			c.Discarded++
		default:
			c.Crashed++
			foldWorkloadResult(c, &o.res)
		}
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("%s plan %03d %s: crashed=%v lost=%d torn=%d corruptions=%d",
				spec.Name, i, out.Cells[o.cell].Label, o.crashed,
				o.res.Verdict.Lost, o.res.Verdict.Torn, len(o.res.Verdict.Corruptions)))
		}
	}
	out.finish()
	out.ElapsedNs = total()
	return out, nil
}

// foldWorkloadResult accumulates one scored crash run into its cell.
func foldWorkloadResult(c *Cell, res *crashtest.WorkloadResult) {
	c.Checked += res.Verdict.Checked
	c.Corruptions += len(res.Verdict.Corruptions)
	if res.Corrupted {
		c.Corrupted++
	}
	c.Lost += res.Verdict.Lost
	c.Torn += res.Verdict.Torn
	c.TornMasked += res.TornMasked
	c.LostMasked += res.LostMasked
	if res.ChecksumDetected {
		c.ChecksumDetected++
	}
	if res.ProtectionInvoked {
		c.ProtectionInvoked++
	}
	c.Quarantined += res.Quarantined
	c.Salvaged += res.Salvaged
	if res.VolumeLost {
		c.VolumeLost++
	}
	if res.RecoveryInterrupted {
		c.RecoveryInterrupted++
	}
}

// --- server kind ---

// serverPlanOutcome is one crash-under-load run's slot.
type serverPlanOutcome struct {
	acked     int
	unacked   int
	lost      int
	corrupt   int
	checked   int
	err       error
	elapsedNs int64
}

func (r *Runner) runServer(spec *Spec) (*Result, error) {
	out := &Result{Name: spec.Name, Kind: spec.Kind, Workload: spec.Workload.Name,
		Seed: spec.Seed, Runs: spec.Runs,
		Cells: []Cell{{Label: fmt.Sprintf("server/%d-shards/crash-under-load", spec.Topology.Shards)}}}

	slots := make([]serverPlanOutcome, spec.Runs)
	total := r.elapsed()
	r.forEach(spec.Runs, func(i int) {
		tick := r.elapsed()
		slots[i] = runServerPlan(spec, sim.Mix(spec.Seed, serverPlanSalt, uint64(i)))
		slots[i].elapsedNs = tick()
	})

	c := &out.Cells[0]
	for i := range slots {
		o := &slots[i]
		c.Runs++
		c.Crashed++ // every server plan crashes a shard by schedule
		c.ElapsedNs += o.elapsedNs
		if o.err != nil {
			c.Errors++
			c.LastError = o.err.Error()
			continue
		}
		c.Acked += o.acked
		c.Unacked += o.unacked
		c.Lost += o.lost
		c.Corruptions += o.corrupt
		c.Checked += o.checked
		if o.corrupt > 0 {
			c.Corrupted++
		}
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("%s plan %03d: acked=%d unacked=%d lost=%d",
				spec.Name, i, o.acked, o.unacked, o.lost))
		}
	}
	out.finish()
	out.ElapsedNs = total()
	return out, nil
}

// serverPayload derives the bytes of write op `op` to key `key`. The
// length is a function of the key alone: server writes land at offset
// 0 without truncation, so a shorter rewrite of a hot key would leave
// the old tail in place and the byte-equal read-back would wrongly
// convict it. Content still varies per op, so version confusion is
// caught.
func serverPayload(seed uint64, key, op int) []byte {
	n := 24 + int(sim.Mix(seed, serverDataSalt, uint64(key))%104)
	return kernel.FillBytes(n, sim.Mix(seed, serverDataSalt+1, uint64(op))|1)
}

// runServerPlan is one deterministic crash-under-load run: a
// single-threaded client drives a popularity-keyed write stream
// straight into the server (no retry sleeps — a refused write is
// scored unacked and the stream moves on), a schedule-fixed op crashes
// one shard, a later one warm-reboots it, and every acked write must
// read back byte-equal at the end.
func runServerPlan(spec *Spec, seed uint64) (o serverPlanOutcome) {
	defer func() {
		if p := recover(); p != nil {
			o.err = fmt.Errorf("server plan panic (seed=%d): %v", seed, p)
		}
	}()
	s, err := server.New(server.Config{
		Shards:   spec.Topology.Shards,
		Seed:     seed,
		MemoryMB: 4,
		DiskMB:   8,
	})
	if err != nil {
		o.err = err
		return o
	}
	defer s.Close()

	cdf := workload.NewKeyCDF(spec.Workload.Keys, spec.Workload.Skew)
	rng := sim.NewRand(sim.Mix(seed, serverKeySalt))
	crashShard := int32(sim.Mix(seed, serverShard) % uint64(spec.Topology.Shards))
	rebootAt := spec.Schedule.CrashAt + spec.Schedule.OutageOps

	// acked maps path -> op index of the last acknowledged write; the
	// verify pass walks it in sorted path order.
	acked := make(map[string]int)
	for op := 0; op < spec.Schedule.MaxOps; op++ {
		switch op {
		case spec.Schedule.CrashAt:
			if resp := s.Do(&wire.Request{Op: wire.OpCrash, Shard: crashShard}); resp.Status != wire.StatusOK {
				o.err = fmt.Errorf("admin crash of shard %d: status %v", crashShard, resp.Status)
				return o
			}
		case rebootAt:
			if resp := s.Do(&wire.Request{Op: wire.OpWarmboot, Shard: crashShard}); resp.Status != wire.StatusOK {
				o.err = fmt.Errorf("admin warmboot of shard %d: status %v", crashShard, resp.Status)
				return o
			}
		}
		key := cdf.Pick(rng)
		path := fmt.Sprintf("/k%04d", key)
		resp := s.Do(&wire.Request{Op: wire.OpWrite, Shard: -1, Path: path,
			Data: serverPayload(seed, key, op)})
		switch resp.Status {
		case wire.StatusOK:
			o.acked++
			acked[path] = op
		case wire.StatusAgain:
			// The down shard refuses; it does not half-apply. The
			// closed-loop client moves on — durability is owed only to
			// acknowledged writes.
			o.unacked++
		default:
			o.err = fmt.Errorf("write %s at op %d: status %v", path, op, resp.Status)
			return o
		}
	}

	// The durability gate: every acked write reads back byte-equal
	// after the outage and warm reboot.
	paths := make([]string, 0, len(acked))
	for p := range acked {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		o.checked++
		var key int
		fmt.Sscanf(p, "/k%04d", &key)
		want := serverPayload(seed, key, acked[p])
		resp := s.Do(&wire.Request{Op: wire.OpRead, Shard: -1, Path: p})
		if resp.Status != wire.StatusOK {
			o.lost++
			continue
		}
		if string(resp.Data) != string(want) {
			o.corrupt++
		}
	}
	return o
}

// --- fleet kind ---

func (r *Runner) runFleet(spec *Spec) (*Result, error) {
	var kinds []fleetcampaign.FaultKind
	for _, name := range spec.Topology.FleetFaults {
		k, _ := fleetFaultByName(name) // Validate already resolved
		kinds = append(kinds, k)
	}
	cfg := fleetcampaign.Config{
		Seed:     spec.Seed,
		Runs:     spec.Runs,
		Workers:  r.Workers,
		Kinds:    kinds,
		Nodes:    spec.Topology.Nodes,
		Shards:   spec.Topology.Shards,
		Replicas: spec.Topology.Replicas,
	}
	if r.Progress != nil {
		cfg.Progress = func(line string) { r.Progress(spec.Name + " " + line) }
	}
	total := r.elapsed()
	rep, err := fleetcampaign.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{Name: spec.Name, Kind: spec.Kind, Seed: spec.Seed, Runs: spec.Runs}
	for i := range rep.Cells {
		fc := &rep.Cells[i]
		if fc.Runs == 0 {
			continue // kind not in this scenario's set
		}
		out.Cells = append(out.Cells, Cell{
			Label:     "fleet/" + fleetcampaign.FaultKind(i).String(),
			Runs:      fc.Runs,
			Crashed:   fc.Runs, // every fleet plan injects its fault
			Checked:   fc.Acked,
			Acked:     fc.Acked,
			Unacked:   fc.Unacked,
			Lost:      fc.Lost,
			Stale:     fc.Stale,
			Errors:    fc.Errors,
			LastError: fc.LastError,
		})
	}
	out.finish()
	out.ElapsedNs = total()
	if len(out.Cells) > 0 {
		// Fleet timing is campaign-level; attribute it to the first
		// cell so per-cell tables still sum to the total.
		out.Cells[0].ElapsedNs = out.ElapsedNs
	}
	return out, nil
}
