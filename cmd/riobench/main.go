// Command riobench is the core-op microbenchmark harness: it measures
// the simulator's per-operation hot-path cost (host wall-clock and host
// allocations — the simulator's own speed, not the simulated 1996 disk)
// for create, deep-path lookup, read, write, and unlink, at a
// configurable directory depth and fanout.
//
// Usage:
//
//	riobench [-depth 6] [-fanout 64] [-iters 4000] [-size 8192]
//	         [-filesize 262144] [-policy rio] [-seed 1]
//	         [-out BENCH_core.json] [-baseline old.json]
//	         [-cpuprofile cpu.out]
//	riobench -diff OLD.json NEW.json
//
// Each op reports ns/op, allocs/op, B/op (host), and simulated µs/op.
// -baseline embeds a previous run's results in the report and computes
// speedups (old-ns / new-ns) and allocation ratios, so BENCH_core.json
// carries its own before/after story. -diff compares two report files
// and prints the deltas (scripts/benchdiff.sh wraps it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rio"
	"rio/internal/server"
	"rio/internal/wire"
)

type benchConfig struct {
	Depth    int    `json:"depth"`
	Fanout   int    `json:"fanout"`
	Iters    int    `json:"iters"`
	Size     int    `json:"chunk_bytes"`
	FileSize int    `json:"file_bytes"`
	Policy   string `json:"policy"`
	Seed     uint64 `json:"seed"`
}

type opResult struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	SimUsPerOp  float64 `json:"sim_us_per_op"`
}

type baselineBlock struct {
	Results []opResult         `json:"results"`
	Speedup map[string]float64 `json:"speedup_ns"`  // old ns/op over new ns/op
	Allocs  map[string]float64 `json:"alloc_ratio"` // new allocs/op over old allocs/op
}

type benchReport struct {
	Bench    string         `json:"bench"`
	Config   benchConfig    `json:"config"`
	Results  []opResult     `json:"results"`
	Baseline *baselineBlock `json:"baseline,omitempty"`
}

func main() {
	var cfg benchConfig
	flag.IntVar(&cfg.Depth, "depth", 6, "directory depth of the lookup path")
	flag.IntVar(&cfg.Fanout, "fanout", 64, "files per leaf directory")
	flag.IntVar(&cfg.Iters, "iters", 4000, "measured iterations per op")
	flag.IntVar(&cfg.Size, "size", 8192, "bytes per read/write op")
	flag.IntVar(&cfg.FileSize, "filesize", 262144, "read/write target file size")
	flag.StringVar(&cfg.Policy, "policy", "rio", "file-system policy")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "machine seed")
	out := flag.String("out", "BENCH_core.json", "JSON report path (empty = skip)")
	baseline := flag.String("baseline", "", "previous BENCH_core.json to embed and compare against")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured loops")
	diff := flag.Bool("diff", false, "compare two report files (riobench -diff OLD NEW) and exit")
	gate := flag.String("gate-allocs", "", "comma list of op=max allocs/op budgets to enforce (e.g. served-read=1)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "riobench: -diff needs exactly two report files")
			os.Exit(2)
		}
		cur, err := printDiff(flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "riobench:", err)
			os.Exit(1)
		}
		if err := gateAllocs(cur.Results, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "riobench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riobench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "riobench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	report := benchReport{Bench: "riobench-core", Config: cfg}
	results, err := runAll(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riobench:", err)
		os.Exit(1)
	}
	served, err := runServed(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riobench:", err)
		os.Exit(1)
	}
	results = append(results, served...)
	report.Results = results

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riobench: baseline:", err)
			os.Exit(1)
		}
		report.Baseline = compare(base.Results, results)
	}

	printReport(&report)

	if err := gateAllocs(results, *gate); err != nil {
		fmt.Fprintln(os.Stderr, "riobench:", err)
		os.Exit(1)
	}

	if *out != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "riobench: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// bench measures fn over n iterations: wall ns/op, host allocs/op and
// B/op (ReadMemStats deltas), and simulated µs/op. A GC runs first so
// the allocation counters measure the loop, not the setup's garbage.
func bench(name string, sys *rio.System, n int, fn func(i int) error) (opResult, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	simStart := sys.Elapsed()
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return opResult{}, fmt.Errorf("%s op %d: %w", name, i, err)
		}
	}
	wall := time.Since(start)
	simWall := sys.Elapsed() - simStart
	runtime.ReadMemStats(&after)
	return opResult{
		Name:        name,
		Ops:         n,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		SimUsPerOp:  float64(simWall.Microseconds()) / float64(n),
	}, nil
}

// runAll boots one machine and measures the five core ops against it.
func runAll(cfg benchConfig) ([]opResult, error) {
	sys, err := rio.New(rio.Config{Policy: rio.Policy(cfg.Policy), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	// Build the deep directory chain /b0/b1/.../b{depth-1} and the leaf
	// file population the lookup benchmark will resolve through.
	deep := ""
	for d := 0; d < cfg.Depth; d++ {
		deep = fmt.Sprintf("%s/b%d", deep, d)
		if err := sys.Mkdir(deep); err != nil {
			return nil, err
		}
	}
	leafFiles := make([]string, cfg.Fanout)
	for i := range leafFiles {
		leafFiles[i] = fmt.Sprintf("%s/f%03d", deep, i)
		if err := sys.WriteFile(leafFiles[i], []byte("x")); err != nil {
			return nil, err
		}
	}

	// Read/write target: one warm multi-block file.
	rw, err := sys.Create("/rwbench")
	if err != nil {
		return nil, err
	}
	defer rw.Close()
	payload := make([]byte, cfg.Size)
	for i := range payload {
		payload[i] = byte(i)
	}
	for off := 0; off < cfg.FileSize; off += cfg.Size {
		if _, err := rw.WriteAt(payload, int64(off)); err != nil {
			return nil, err
		}
	}
	chunks := cfg.FileSize / cfg.Size
	rbuf := make([]byte, cfg.Size)

	var results []opResult
	add := func(r opResult, err error) error {
		if err != nil {
			return err
		}
		results = append(results, r)
		return nil
	}

	// create/unlink run in rounds of `fanout` files so the inode table
	// never fills; the per-op figures aggregate across rounds.
	if err := sys.Mkdir("/churn"); err != nil {
		return nil, err
	}
	rounds := (cfg.Iters + cfg.Fanout - 1) / cfg.Fanout
	var createNs, unlinkNs time.Duration
	var createAllocs, unlinkAllocs, createBytes, unlinkBytes uint64
	var createSim, unlinkSim time.Duration
	total := 0
	for r := 0; r < rounds; r++ {
		runtime.GC()
		var m0, m1, m2 runtime.MemStats
		names := make([]string, cfg.Fanout)
		for i := range names {
			names[i] = fmt.Sprintf("/churn/f%03d", i)
		}
		runtime.ReadMemStats(&m0)
		sim0 := sys.Elapsed()
		t0 := time.Now()
		for _, p := range names {
			f, err := sys.Create(p)
			if err != nil {
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
		t1 := time.Now()
		sim1 := sys.Elapsed()
		runtime.ReadMemStats(&m1)
		for _, p := range names {
			if err := sys.Remove(p); err != nil {
				return nil, err
			}
		}
		t2 := time.Now()
		sim2 := sys.Elapsed()
		runtime.ReadMemStats(&m2)
		createNs += t1.Sub(t0)
		unlinkNs += t2.Sub(t1)
		createSim += sim1 - sim0
		unlinkSim += sim2 - sim1
		createAllocs += m1.Mallocs - m0.Mallocs
		unlinkAllocs += m2.Mallocs - m1.Mallocs
		createBytes += m1.TotalAlloc - m0.TotalAlloc
		unlinkBytes += m2.TotalAlloc - m1.TotalAlloc
		total += cfg.Fanout
	}
	results = append(results,
		opResult{Name: "create", Ops: total,
			NsPerOp:     float64(createNs.Nanoseconds()) / float64(total),
			AllocsPerOp: float64(createAllocs) / float64(total),
			BytesPerOp:  float64(createBytes) / float64(total),
			SimUsPerOp:  float64(createSim.Microseconds()) / float64(total)},
		opResult{Name: "unlink", Ops: total,
			NsPerOp:     float64(unlinkNs.Nanoseconds()) / float64(total),
			AllocsPerOp: float64(unlinkAllocs) / float64(total),
			BytesPerOp:  float64(unlinkBytes) / float64(total),
			SimUsPerOp:  float64(unlinkSim.Microseconds()) / float64(total)})

	// Deep-path lookup: every component re-resolves through the chain.
	if err := add(bench("lookup-deep", sys, cfg.Iters, func(i int) error {
		_, err := sys.Stat(leafFiles[i%len(leafFiles)])
		return err
	})); err != nil {
		return nil, err
	}

	// Warm read path: every chunk is a cache hit.
	if err := add(bench("read", sys, cfg.Iters, func(i int) error {
		_, err := rw.ReadAt(rbuf, int64(i%chunks)*int64(cfg.Size))
		return err
	})); err != nil {
		return nil, err
	}

	// Warm write path: overwrites of cached blocks.
	if err := add(bench("write", sys, cfg.Iters, func(i int) error {
		_, err := rw.WriteAt(payload, int64(i%chunks)*int64(cfg.Size))
		return err
	})); err != nil {
		return nil, err
	}

	return results, nil
}

// benchHost measures fn over n iterations with host-side counters only
// (no simulated clock — served ops cross a shard goroutine, so the op
// cost is wall time plus whatever every goroutine allocated). A GC runs
// first so the counters measure the loop, not setup garbage; a short
// re-warm follows it, because the GC empties sync.Pools and the refill
// allocations belong to the pools' steady state, not to the ops.
func benchHost(name string, n int, fn func(i int) error) (opResult, error) {
	runtime.GC()
	for i := 0; i < 16; i++ {
		if err := fn(i); err != nil {
			return opResult{}, fmt.Errorf("%s warmup op %d: %w", name, i, err)
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return opResult{}, fmt.Errorf("%s op %d: %w", name, i, err)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return opResult{
		Name:        name,
		Ops:         n,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}

// runServed boots a one-shard in-process server and measures the served
// hot paths end to end: the zero-copy frame read (DoFrame, data copied
// once from the cache frame into the pooled wire frame) and the write
// path through the shard queue. Host allocations are counted across
// every goroutine — caller, shard, and pool bookkeeping together — so
// served-read allocs/op is exactly the figure scripts/benchdiff.sh
// gates at <= 1.
func runServed(cfg benchConfig) ([]opResult, error) {
	srv, err := server.New(server.Config{Shards: 1, Policy: rio.Policy(cfg.Policy), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	payload := make([]byte, cfg.Size)
	for i := range payload {
		payload[i] = byte(i)
	}
	wreq := &wire.Request{ID: 1, Op: wire.OpWrite, Path: "/served/bench", Data: payload}
	if r := srv.Do(wreq); r.Status != wire.StatusOK {
		return nil, fmt.Errorf("served seed write: status %d: %s", r.Status, r.Msg)
	}

	rreq := &wire.Request{ID: 2, Op: wire.OpRead, Path: "/served/bench"}
	for i := 0; i < 64; i++ { // warm the frame pool, reply channels, dcache
		frame, resp := srv.DoFrame(rreq)
		if resp.Status != wire.StatusOK {
			return nil, fmt.Errorf("served warm read: status %d: %s", resp.Status, resp.Msg)
		}
		srv.ReleaseFrame(frame)
	}

	var results []opResult
	r, err := benchHost("served-read", cfg.Iters, func(i int) error {
		frame, resp := srv.DoFrame(rreq)
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("status %d: %s", resp.Status, resp.Msg)
		}
		srv.ReleaseFrame(frame)
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)

	r, err = benchHost("served-write", cfg.Iters, func(i int) error {
		if resp := srv.Do(wreq); resp.Status != wire.StatusOK {
			return fmt.Errorf("status %d: %s", resp.Status, resp.Msg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = append(results, r)
	return results, nil
}

// gateAllocs enforces a comma list of op=max allocs/op budgets (e.g.
// "served-read=1,write=1") against results. A named op missing from the
// results is an error too — a silently skipped gate is no gate.
func gateAllocs(results []opResult, spec string) error {
	if spec == "" {
		return nil
	}
	byName := map[string]opResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, clause := range strings.Split(spec, ",") {
		name, maxStr, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return fmt.Errorf("bad -gate-allocs clause %q (want op=max)", clause)
		}
		max, err := strconv.ParseFloat(maxStr, 64)
		if err != nil {
			return fmt.Errorf("bad -gate-allocs budget %q: %v", maxStr, err)
		}
		r, found := byName[name]
		if !found {
			return fmt.Errorf("gate-allocs: op %q not in report", name)
		}
		if r.AllocsPerOp > max {
			return fmt.Errorf("gate-allocs: %s allocates %.2f objects/op, budget %g", name, r.AllocsPerOp, max)
		}
		fmt.Printf("gate-allocs: %s %.2f allocs/op within budget %g\n", name, r.AllocsPerOp, max)
	}
	return nil
}

func compare(old, cur []opResult) *baselineBlock {
	b := &baselineBlock{
		Results: old,
		Speedup: map[string]float64{},
		Allocs:  map[string]float64{},
	}
	byName := map[string]opResult{}
	for _, r := range old {
		byName[r.Name] = r
	}
	for _, r := range cur {
		o, ok := byName[r.Name]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		b.Speedup[r.Name] = o.NsPerOp / r.NsPerOp
		if o.AllocsPerOp > 0 {
			b.Allocs[r.Name] = r.AllocsPerOp / o.AllocsPerOp
		}
	}
	return b
}

func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func printReport(r *benchReport) {
	fmt.Printf("%-12s %8s %12s %12s %12s %12s\n",
		"op", "ops", "ns/op", "allocs/op", "B/op", "sim-µs/op")
	for _, res := range r.Results {
		fmt.Printf("%-12s %8d %12.0f %12.1f %12.0f %12.2f",
			res.Name, res.Ops, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.SimUsPerOp)
		if r.Baseline != nil {
			if s, ok := r.Baseline.Speedup[res.Name]; ok {
				fmt.Printf("   %.2fx vs baseline", s)
			}
		}
		fmt.Println()
	}
}

// printDiff renders the delta between two report files and returns the
// NEW report so the caller can gate on it.
func printDiff(oldPath, newPath string) (*benchReport, error) {
	old, err := readReport(oldPath)
	if err != nil {
		return nil, err
	}
	cur, err := readReport(newPath)
	if err != nil {
		return nil, err
	}
	byName := map[string]opResult{}
	for _, r := range old.Results {
		byName[r.Name] = r
	}
	fmt.Printf("%-12s %14s %14s %9s   %14s %14s %9s\n",
		"op", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, r := range cur.Results {
		o, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-12s %14s %14.0f %9s\n", r.Name, "(new)", r.NsPerOp, "")
			continue
		}
		fmt.Printf("%-12s %14.0f %14.0f %+8.1f%%   %14.1f %14.1f %+8.1f%%\n",
			r.Name, o.NsPerOp, r.NsPerOp, pct(o.NsPerOp, r.NsPerOp),
			o.AllocsPerOp, r.AllocsPerOp, pct(o.AllocsPerOp, r.AllocsPerOp))
	}
	for _, o := range old.Results {
		found := false
		for _, r := range cur.Results {
			if r.Name == o.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-12s %14.0f %14s\n", o.Name, o.NsPerOp, "(removed)")
		}
	}
	return cur, nil
}

// pct returns the relative change from old to new in percent.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}
