// Package kvm implements the kernel virtual machine: a small register
// machine in which the simulated kernel's data-movement inner loops run.
//
// Why interpret kernel code at all? The paper's fault models operate at the
// level of machine instructions — flip a bit in kernel text, change a
// source or destination register, delete the instruction that most recently
// set a load/store base register, swap > for >=. For those faults to have
// their real consequences (wild stores that the MMU may or may not catch,
// consistency checks that panic, loops that run away), there must be an
// instruction stream to corrupt and an MMU in the loop. The kvm provides
// both: every load and store an interpreted procedure issues goes through
// mmu.MMU, so a corrupted pointer really does hit the file cache — or
// really does trap.
//
// The instruction set is tiny (a couple of dozen opcodes) but sufficient to
// express the kernel's copy/checksum/fill loops and composite buffer-write
// procedures with realistic structure: a stack in simulated memory (so
// stack bit-flips corrupt return addresses), magic-number consistency
// asserts (so heap corruption panics the way production kernels do), and
// intrinsic calls into the kernel runtime (malloc, locks) whose fault hooks
// implement the allocation, copy-overrun, and synchronization fault models.
package kvm

import "fmt"

// Op is an opcode. The encoded instruction word is:
//
//	bits 0..7    op
//	bits 8..15   rd
//	bits 16..23  rs1
//	bits 24..31  rs2
//	bits 32..63  imm (signed 32-bit)
//
// Register fields are decoded modulo NumRegs, so a bit flip in a register
// field silently redirects the operand — the realistic outcome — rather
// than faulting. A bit flip in the op field may produce a different valid
// opcode or an illegal one (which traps, as on real hardware).
type Op uint8

const (
	OpNop    Op = iota
	OpMovI      // rd = imm (sign-extended)
	OpMovHi     // rd = (rd & 0xffffffff) | imm<<32
	OpMov       // rd = rs1
	OpAdd       // rd = rs1 + rs2
	OpSub       // rd = rs1 - rs2
	OpAddI      // rd = rs1 + imm
	OpAnd       // rd = rs1 & rs2
	OpOr        // rd = rs1 | rs2
	OpXor       // rd = rs1 ^ rs2
	OpShlI      // rd = rs1 << imm
	OpShrI      // rd = rs1 >> imm (logical)
	OpLd        // rd = mem64[rs1 + imm]
	OpSt        // mem64[rs1 + imm] = rs2
	OpLdB       // rd = mem8[rs1 + imm]
	OpStB       // mem8[rs1 + imm] = rs2
	OpBeq       // if rs1 == rs2: pc += imm
	OpBne       // if rs1 != rs2: pc += imm
	OpBlt       // if rs1 <  rs2 (signed): pc += imm
	OpBge       // if rs1 >= rs2 (signed): pc += imm
	OpBle       // if rs1 <= rs2 (signed): pc += imm
	OpBgt       // if rs1 >  rs2 (signed): pc += imm
	OpJmp       // pc += imm
	OpCall      // push pc+1; pc = imm (absolute)
	OpRet       // pc = pop()
	OpPush      // mem64[--sp] = rs1
	OpPop       // rd = mem64[sp++]
	OpIntr      // r0 = intrinsic(imm, r1, r2, r3)
	OpAssert    // if rs1 != rs2: kernel consistency panic
	OpHalt      // stop execution (top-level return)

	numOps // sentinel; ops >= numOps are illegal
)

var opNames = [...]string{
	OpNop: "nop", OpMovI: "movi", OpMovHi: "movhi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpAddI: "addi", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShlI: "shli", OpShrI: "shri", OpLd: "ld", OpSt: "st",
	OpLdB: "ldb", OpStB: "stb", OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpBge: "bge", OpBle: "ble", OpBgt: "bgt", OpJmp: "jmp", OpCall: "call",
	OpRet: "ret", OpPush: "push", OpPop: "pop", OpIntr: "intr",
	OpAssert: "assert", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o decodes to a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= OpBeq && o <= OpBgt }

// IsMemAccess reports whether o loads or stores through a base register.
func (o Op) IsMemAccess() bool {
	return o == OpLd || o == OpSt || o == OpLdB || o == OpStB
}

// NumRegs is the number of general-purpose registers. Register 15 is the
// stack pointer by convention (SP).
const NumRegs = 16

// SP is the conventional stack-pointer register.
const SP = 15

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode packs the instruction into its 64-bit word form.
func (i Instr) Encode() uint64 {
	return uint64(i.Op) |
		uint64(i.Rd)<<8 |
		uint64(i.Rs1)<<16 |
		uint64(i.Rs2)<<24 |
		uint64(uint32(i.Imm))<<32
}

// Decode unpacks an instruction word. Register fields are reduced modulo
// NumRegs; the opcode is preserved as-is so invalid opcodes can trap.
func Decode(w uint64) Instr {
	return Instr{
		Op:  Op(w & 0xff),
		Rd:  uint8(w>>8) % NumRegs,
		Rs1: uint8(w>>16) % NumRegs,
		Rs2: uint8(w>>24) % NumRegs,
		Imm: int32(uint32(w >> 32)),
	}
}

// String renders the instruction in a readable assembly-like form.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpRet, OpHalt:
		return i.Op.String()
	case OpMovI, OpMovHi:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Rs1)
	case OpAddI, OpShlI, OpShrI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpLd, OpLdB:
		return fmt.Sprintf("%s r%d, [r%d%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpSt, OpStB:
		return fmt.Sprintf("%s [r%d%+d], r%d", i.Op, i.Rs1, i.Imm, i.Rs2)
	case OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt:
		return fmt.Sprintf("%s r%d, r%d, %+d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp %+d", i.Imm)
	case OpCall:
		return fmt.Sprintf("call %d", i.Imm)
	case OpPush:
		return fmt.Sprintf("push r%d", i.Rs1)
	case OpPop:
		return fmt.Sprintf("pop r%d", i.Rd)
	case OpIntr:
		return fmt.Sprintf("intr %d", i.Imm)
	case OpAssert:
		return fmt.Sprintf("assert r%d == r%d", i.Rs1, i.Rs2)
	default:
		return fmt.Sprintf("illegal(%d)", uint8(i.Op))
	}
}
