package kvm

import (
	"fmt"
	"strings"
)

// The paper treats its crashed kernels as black boxes and explicitly defers
// fault-propagation tracing ("this is extremely challenging... beyond the
// scope of this paper", §3.3 footnote). A simulator has no such excuse:
// the Tracer records the tail of execution — instructions retired and
// stores issued — so a post-mortem can show exactly how an injected fault
// became a wild store or a consistency panic.

// TraceEntry is one retired instruction.
type TraceEntry struct {
	Seq   uint64 // global step number
	PC    int
	Word  uint64 // raw instruction word (decode may differ after mutation)
	Store bool   // the instruction issued a store
	Addr  uint64 // store target (virtual/KSEG), when Store
	Val   uint64 // store value, when Store
}

// Instr decodes the entry's instruction word.
func (e TraceEntry) Instr() Instr { return Decode(e.Word) }

// Tracer is a fixed-size ring of recent TraceEntries. Attach to VM.Trace;
// nil disables tracing (no overhead on the hot path beyond one branch).
type Tracer struct {
	ring []TraceEntry
	pos  int
	full bool
	seq  uint64
}

// NewTracer returns a tracer remembering the last n instructions.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		panic("kvm: tracer size must be positive")
	}
	return &Tracer{ring: make([]TraceEntry, n)}
}

func (t *Tracer) record(e TraceEntry) {
	e.Seq = t.seq
	t.seq++
	t.ring[t.pos] = e
	t.pos = (t.pos + 1) % len(t.ring)
	if t.pos == 0 {
		t.full = true
	}
}

// Steps returns the total number of instructions recorded over the
// tracer's lifetime.
func (t *Tracer) Steps() uint64 { return t.seq }

// Tail returns the recorded entries, oldest first.
func (t *Tracer) Tail() []TraceEntry {
	if !t.full {
		out := make([]TraceEntry, t.pos)
		copy(out, t.ring[:t.pos])
		return out
	}
	out := make([]TraceEntry, 0, len(t.ring))
	out = append(out, t.ring[t.pos:]...)
	out = append(out, t.ring[:t.pos]...)
	return out
}

// Stores returns only the store entries from the tail, oldest first.
func (t *Tracer) Stores() []TraceEntry {
	var out []TraceEntry
	for _, e := range t.Tail() {
		if e.Store {
			out = append(out, e)
		}
	}
	return out
}

// Format renders the last n entries with procedure annotations from text.
func (t *Tracer) Format(text *Text, n int) string {
	tail := t.Tail()
	if n > 0 && len(tail) > n {
		tail = tail[len(tail)-n:]
	}
	var b strings.Builder
	for _, e := range tail {
		proc := "?"
		if p, ok := text.ProcAt(e.PC); ok {
			proc = p.Name
		}
		fmt.Fprintf(&b, "%8d  %-12s %4d: %-28s", e.Seq, proc, e.PC, e.Instr())
		if e.Store {
			fmt.Fprintf(&b, " => [%#x] = %#x", e.Addr, e.Val)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
