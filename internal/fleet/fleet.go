package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rio"
	"rio/internal/wire"
)

// Config sizes a fleet.
type Config struct {
	// Nodes is the machine count (default 3).
	Nodes int
	// Replicas is R: copies of each shard, primary included (default 2).
	// A write is acknowledged only when all R replicas hold it, so the
	// fleet survives R-1 simultaneous machine losses without losing an
	// acked write.
	Replicas int
	// Shards is the global shard count (default 4).
	Shards int
	// Seed drives placement and every machine's randomness.
	Seed uint64
	// MissThreshold is consecutive missed heartbeats before a node is
	// declared dead (default 3).
	MissThreshold int

	Policy   rio.Policy
	MemoryMB int
	DiskMB   int

	TailLen     int
	ReplRetries int
	RetryDelay  time.Duration
	Sleep       func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.Nodes {
		c.Replicas = c.Nodes
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	return c
}

// Metrics counts the coordinator's control-plane actions.
type Metrics struct {
	Ticks            uint64
	Heartbeats       uint64
	MissedHeartbeats uint64
	DeclaredDead     uint64
	Promotions       uint64
	Reconfigs        uint64 // epoch bumps that were not promotions
	Repairs          uint64 // backups (re)installed by snapshot
}

// Fleet is the coordinator: it owns placement, detects machine loss by
// missed heartbeats, promotes the most-advanced backup when a primary
// dies, and repairs under-replicated shards by snapshot + tail replay.
// One coordinator per fleet; Tick is its entire event loop, called
// manually by deterministic harnesses and from a ticker goroutine by
// live servers.
type Fleet struct {
	cfg Config
	tr  *MemTransport

	mu      sync.Mutex
	nodeIDs []string // sorted; the fleet's one iteration order
	nodes   map[string]*Node
	routes  []Route // by shard index
	missed  map[string]int
	dead    map[string]bool
	status  map[string][]ReplicaStatus // last heartbeat per node
	met     Metrics
}

// New boots a fleet: cfg.Nodes machines on an in-process transport,
// every shard placed on its rendezvous-best R nodes at epoch 1, and the
// initial routing table distributed.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:    cfg,
		tr:     NewMemTransport(),
		nodes:  make(map[string]*Node),
		missed: make(map[string]int),
		dead:   make(map[string]bool),
		status: make(map[string][]ReplicaStatus),
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := fmt.Sprintf("node%d", i)
		n := NewNode(NodeConfig{
			ID: id, Shards: cfg.Shards, Seed: cfg.Seed,
			Policy: cfg.Policy, MemoryMB: cfg.MemoryMB, DiskMB: cfg.DiskMB,
			Transport: f.tr, TailLen: cfg.TailLen, ReplRetries: cfg.ReplRetries,
			RetryDelay: cfg.RetryDelay, Sleep: cfg.Sleep,
		})
		f.nodes[id] = n
		f.nodeIDs = append(f.nodeIDs, id)
		f.tr.Attach(n)
	}
	sort.Strings(f.nodeIDs)
	for shard := 0; shard < cfg.Shards; shard++ {
		set := Place(cfg.Seed, f.nodeIDs, shard, cfg.Replicas)
		backups := append([]string(nil), set[1:]...)
		sort.Strings(backups)
		f.routes = append(f.routes, Route{Shard: shard, Epoch: 1, Primary: set[0], Backups: backups})
		for i, id := range set {
			role := RoleBackup
			if i == 0 {
				role = RolePrimary
			}
			if err := f.nodes[id].AddReplica(shard, role, 1, backups); err != nil {
				return nil, fmt.Errorf("fleet: boot shard %d on %s: %w", shard, id, err)
			}
		}
	}
	t := f.tableLocked()
	for _, id := range f.nodeIDs {
		f.nodes[id].applyView(t)
	}
	return f, nil
}

// tableLocked snapshots the routing table. Caller holds f.mu (or is
// New, before the fleet is shared).
func (f *Fleet) tableLocked() *Table {
	t := &Table{}
	for _, r := range f.routes {
		cp := r
		cp.Backups = append([]string(nil), r.Backups...)
		t.Routes = append(t.Routes, cp)
	}
	return t
}

// Table returns the current routing table (the client's bootstrap and
// refresh source).
func (f *Fleet) Table() *Table {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tableLocked()
}

// Node returns a node by id (tests and the load harness).
func (f *Fleet) Node(id string) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[id]
}

// NodeIDs returns the fleet's node names, sorted.
func (f *Fleet) NodeIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.nodeIDs...)
}

// Transport exposes the fabric for fault injection beyond the Kill /
// Isolate helpers.
func (f *Fleet) Transport() *MemTransport { return f.tr }

// Metrics snapshots coordinator counters.
func (f *Fleet) Metrics() Metrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.met
}

// NodeMetrics sums every node's replication counters (sorted fold, so
// the totals are deterministic).
func (f *Fleet) NodeMetrics() NodeMetrics {
	f.mu.Lock()
	ids := append([]string(nil), f.nodeIDs...)
	f.mu.Unlock()
	var tot NodeMetrics
	for _, id := range ids {
		m := f.Node(id).Metrics()
		tot.ReplSent += m.ReplSent
		tot.ReplRetries += m.ReplRetries
		tot.ReplApplied += m.ReplApplied
		tot.ReplDups += m.ReplDups
		tot.Replays += m.Replays
		tot.Fenced += m.Fenced
		tot.Redirects += m.Redirects
		tot.Degraded += m.Degraded
		tot.ReadFences += m.ReadFences
		tot.Crashes += m.Crashes
		tot.Warmboots += m.Warmboots
		tot.SnapshotsSent += m.SnapshotsSent
	}
	return tot
}

// Kill simulates machine loss: the node drops off the network and its
// memory — replicas, protected caches, tail rings — is gone. The
// coordinator notices via missed heartbeats; nothing is told directly,
// because real machine death announces itself exactly this way.
func (f *Fleet) Kill(id string) {
	f.tr.Kill(id)
	f.mu.Lock()
	n := f.nodes[id]
	f.mu.Unlock()
	if n != nil {
		n.Wipe()
	}
}

// Revive brings a killed machine back, empty. The next Tick re-recruits
// it for under-replicated shards by snapshot.
func (f *Fleet) Revive(id string) {
	f.tr.Revive(id)
	f.mu.Lock()
	f.dead[id] = false
	f.missed[id] = 0
	f.mu.Unlock()
}

// Isolate partitions a node from everything (peers, coordinator,
// clients); Rejoin heals it. The node keeps its state — the difference
// between a partition and a kill is exactly that.
func (f *Fleet) Isolate(id string) { f.tr.Isolate(id) }

// Rejoin heals an Isolate.
func (f *Fleet) Rejoin(id string) {
	f.tr.Rejoin(id)
	f.mu.Lock()
	f.missed[id] = 0
	f.dead[id] = false
	f.mu.Unlock()
}

// Tick runs one coordinator round: heartbeat every node, declare the
// silent ones dead, promote replacements for dead primaries, evict dead
// or unreachable backups, repair under-replication by snapshot, and
// push the updated routing table. Deterministic given the fleet's
// state — the campaign calls it manually; riod runs it on a ticker.
func (f *Fleet) Tick() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.met.Ticks++

	// Heartbeat round. The request carries the routing table (so nodes
	// converge on the newest view); the response carries each replica's
	// position and its primary's suspect list. reach records who
	// answered THIS round — the only nodes repair may recruit, because
	// a machine that just died is unreachable ticks before it crosses
	// the miss threshold and gets declared dead.
	reach := make(map[string]bool)
	blob := EncodeTable(f.tableLocked())
	for _, id := range f.nodeIDs {
		if f.dead[id] {
			continue
		}
		resp, err := f.tr.Send(CoordName, id, &wire.Request{Op: wire.OpHeartbeat, Data: blob})
		if err != nil || resp.Status != wire.StatusOK {
			f.missed[id]++
			f.met.MissedHeartbeats++
			if f.missed[id] >= f.cfg.MissThreshold {
				f.dead[id] = true
				f.met.DeclaredDead++
			}
			continue
		}
		f.missed[id] = 0
		f.met.Heartbeats++
		reach[id] = true
		if sts, err := DecodeStatus(resp.Data); err == nil {
			f.status[id] = sts
		}
	}

	// Reconfigure each shard, in shard order.
	changed := false
	for i := range f.routes {
		r := &f.routes[i]
		if f.dead[r.Primary] {
			if f.promoteLocked(r) {
				changed = true
			}
			continue
		}
		// Evict backups the coordinator knows are dead, and backups the
		// primary reports unreachable (a link partition the coordinator
		// cannot see from its own seat — the primary's suspect list is
		// the arbitration evidence).
		suspects := f.suspectsLocked(r)
		var keep []string
		for _, b := range r.Backups {
			if !f.dead[b] && !suspects[b] {
				keep = append(keep, b)
			}
		}
		if len(keep) != len(r.Backups) {
			r.Backups = keep
			r.Epoch++
			f.met.Reconfigs++
			changed = true
		}
	}

	// Repair under-replicated shards from live spares.
	for i := range f.routes {
		if f.repairLocked(&f.routes[i], reach) {
			changed = true
		}
	}

	// Push the new view so primaries learn their backup sets before the
	// next client write, not a tick later.
	if changed {
		blob = EncodeTable(f.tableLocked())
		for _, id := range f.nodeIDs {
			if f.dead[id] {
				continue
			}
			f.tr.Send(CoordName, id, &wire.Request{Op: wire.OpHeartbeat, Data: blob})
		}
	}
}

// suspectsLocked collects the primary's reported unreachable backups
// for route r from its last heartbeat.
func (f *Fleet) suspectsLocked(r *Route) map[string]bool {
	out := make(map[string]bool)
	for _, st := range f.status[r.Primary] {
		if st.Shard == r.Shard && st.Role == RolePrimary {
			for _, s := range st.Suspect {
				out[s] = true
			}
		}
	}
	return out
}

// promoteLocked replaces a dead primary with the most-advanced
// reachable backup: highest (epoch, seq), lowest id on ties. False if
// no backup is reachable — the shard is unavailable until one is.
func (f *Fleet) promoteLocked(r *Route) bool {
	best := ""
	var bestEpoch, bestSeq uint64
	var rest []string
	for _, b := range r.Backups {
		if f.dead[b] {
			continue
		}
		resp, err := f.tr.Send(CoordName, b, &wire.Request{Op: wire.OpHeartbeat})
		if err != nil || resp.Status != wire.StatusOK {
			continue
		}
		sts, err := DecodeStatus(resp.Data)
		if err != nil {
			continue
		}
		for _, st := range sts {
			if st.Shard != r.Shard {
				continue
			}
			if best == "" || st.Epoch > bestEpoch || (st.Epoch == bestEpoch && st.Seq > bestSeq) {
				if best != "" {
					rest = append(rest, best)
				}
				best, bestEpoch, bestSeq = b, st.Epoch, st.Seq
			} else {
				rest = append(rest, b)
			}
		}
	}
	if best == "" {
		return false
	}
	sort.Strings(rest)
	r.Primary = best
	r.Backups = rest
	r.Epoch++
	f.met.Promotions++
	return true
}

// repairLocked recruits reachable spares for an under-replicated
// shard: snapshot from the primary, install on the spare, replay the
// tail the snapshot missed, then admit the spare to the replica set at
// a new epoch. Only nodes that answered this tick's heartbeat are
// candidates. False if nothing changed.
func (f *Fleet) repairLocked(r *Route, reach map[string]bool) bool {
	if f.dead[r.Primary] {
		return false // no source to copy from; promotion failed too
	}
	have := 1 + len(r.Backups)
	if have >= f.cfg.Replicas {
		return false
	}
	var live []string
	for _, id := range f.nodeIDs {
		if reach[id] {
			live = append(live, id)
		}
	}
	added := false
	for _, cand := range Place(f.cfg.Seed, live, r.Shard, len(live)) {
		if have >= f.cfg.Replicas {
			break
		}
		if cand == r.Primary || contains(r.Backups, cand) {
			continue
		}
		if err := f.catchUpLocked(r, cand); err != nil {
			continue
		}
		r.Backups = append(r.Backups, cand)
		sort.Strings(r.Backups)
		have++
		added = true
		f.met.Repairs++
	}
	if added {
		r.Epoch++
	}
	return added
}

// snapPullRounds bounds how many times a chunked snapshot pull restarts
// when writes land mid-pull and break the checksum.
const snapPullRounds = 3

// catchUpLocked copies shard state from r.Primary onto cand: chunked
// snapshot pull over the wire, install, then tail replay until cand is
// at the primary's seq.
func (f *Fleet) catchUpLocked(r *Route, cand string) error {
	shard := int32(r.Shard)
	var blob []byte
	for round := 0; round < snapPullRounds; round++ {
		blob = blob[:0]
		for {
			resp, err := f.tr.Send(CoordName, r.Primary,
				&wire.Request{Op: wire.OpSnapshot, Shard: shard, Offset: int64(len(blob))})
			if err != nil {
				return err
			}
			if resp.Status != wire.StatusOK {
				return fmt.Errorf("fleet: snapshot pull: %s", resp.Msg)
			}
			blob = append(blob, resp.Data...)
			if int64(len(blob)) >= resp.Size {
				break
			}
			if len(resp.Data) == 0 {
				return fmt.Errorf("fleet: snapshot pull stalled at %d/%d bytes", len(blob), resp.Size)
			}
		}
		if err := f.nodes[cand].InstallSnapshot(r.Shard, blob); err == nil {
			goto installed
		} else if round == snapPullRounds-1 {
			return err
		}
	}
installed:
	// Replay whatever landed after the snapshot was cut.
	snapEpoch, snapSeq, err := snapHeader(blob)
	if err != nil {
		return err
	}
	_ = snapEpoch
	at := snapSeq
	for {
		pull, err := f.tr.Send(CoordName, r.Primary,
			&wire.Request{Op: wire.OpReplPull, Shard: shard, Offset: int64(at)})
		if err != nil {
			return err
		}
		if pull.Status != wire.StatusOK {
			return fmt.Errorf("fleet: tail pull: %s", pull.Msg)
		}
		if uint64(pull.Size) <= at || len(pull.Data) == 0 {
			return nil // caught up
		}
		d := dec{buf: pull.Data}
		for len(d.buf) > 0 && d.err == nil {
			n := int(d.u32())
			if n > wire.MaxData {
				return fmt.Errorf("fleet: tail frame declares %d bytes (max %d)", n, wire.MaxData)
			}
			frame := d.take(n)
			if d.err != nil {
				break
			}
			resp, err := f.tr.Send(CoordName, cand,
				&wire.Request{Op: wire.OpReplBatch, Shard: shard, Data: frame})
			if err != nil {
				return err
			}
			if resp.Status != wire.StatusOK {
				return fmt.Errorf("fleet: tail replay: %s", resp.Msg)
			}
			at = uint64(resp.Size)
		}
		if d.err != nil {
			return d.err
		}
	}
}
