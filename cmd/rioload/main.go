// Command rioload is a load generator for riod: N client connections
// each issue requests against the server — over TCP or against an
// in-process server (-net memory) — with a configurable read/write
// mix, key count, and key-space skew. Clients follow the EAGAIN
// discipline: retryable statuses are re-submitted with exponential
// backoff, so a shard crash plus warm reboot under load shows up as a
// latency blip, not an error storm.
//
// By default each connection is closed-loop: one request at a time.
// -pipeline P runs P concurrent request streams per connection —
// pipelined over a shared MuxClient in TCP mode, matched to responses
// by tag — so the shard queues see real depth and batch draining
// amortises queue handoffs (watch avg_batch in the per-shard metrics).
//
// Usage:
//
//	rioload [-net memory|tcp] [-addr host:7979] [-clients 8]
//	        [-pipeline 1] [-duration 10s] [-writes 0.5] [-keys 900]
//	        [-size 8192] [-skew 0] [-seed 1] [-out BENCH_server.json]
//	        [-shards 4] [-mem 16] [-disk 32]        (memory mode sizing)
//	        [-compare N]                            (memory mode: baseline at N shards)
//	        [-crash-shard K -crash-at D -crash-down D]
//	        [-fleet -peers 3 -replicas 2]           (replicated fleet, machine kill mid-run)
//
// The run prints a throughput/latency table and writes a JSON report.
// -compare N first runs the identical load against an N-shard server
// and reports the aggregate speedup — the serving-path scaling
// trajectory (more shards = more independent file caches and shorter
// per-shard directory scans, so a 4-shard server outruns a 1-shard
// server even on one core).
//
// -crash-shard K crashes shard K at -crash-at into the measured run
// and warm-reboots it -crash-down later, demonstrating crash-under-
// load recovery: acknowledged writes survive, the other shards never
// stall, and the report counts how many requests the retry loop
// absorbed.
//
// -fleet runs the load against an in-process replicated fleet
// (internal/fleet) instead of a single server: -peers nodes, each
// shard on -replicas of them, a coordinator ticking in the background.
// At -crash-at the primary of shard 0 is killed outright — the machine,
// not just its OS — and revived -crash-down later; the run ends with a
// verification pass that every key reads back byte-equal, and exits
// nonzero on any loss. This is machine-loss-under-live-load: the
// promotion, the client redirects, and the snapshot repair all happen
// while the load is running.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime/pprof"
	"sync"
	"time"

	"rio"
	"rio/internal/fleet"
	"rio/internal/server"
	"rio/internal/sim"
	"rio/internal/wire"
	"rio/internal/workload"
)

type loadConfig struct {
	Net      string        `json:"net"`
	Addr     string        `json:"addr,omitempty"`
	Shards   int           `json:"shards"`
	Clients  int           `json:"clients"`
	Pipeline int           `json:"pipeline"`
	Duration time.Duration `json:"-"`
	Writes   float64       `json:"write_fraction"`
	Keys     int           `json:"keys"`
	Size     int           `json:"value_bytes"`
	Skew     float64       `json:"skew"`
	Seed     uint64        `json:"seed"`
	Policy   string        `json:"policy"`
	MemMB    int           `json:"mem_mb"`
	DiskMB   int           `json:"disk_mb"`
	Queue    int           `json:"queue_depth"`
	Batch    int           `json:"max_batch"`

	CrashShard int           `json:"crash_shard,omitempty"`
	CrashAt    time.Duration `json:"-"`
	CrashDown  time.Duration `json:"-"`

	TCPProbe    time.Duration `json:"-"`
	TCPProbeSec float64       `json:"tcp_probe_sec,omitempty"`
}

type latencyJSON struct {
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

type runResult struct {
	WallSeconds float64     `json:"wall_seconds"`
	Ops         uint64      `json:"ops"`
	OpsPerSec   float64     `json:"ops_per_sec"`
	Bytes       uint64      `json:"bytes"`
	MBPerSec    float64     `json:"mb_per_sec"`
	Reads       uint64      `json:"reads"`
	Writes      uint64      `json:"writes"`
	AckedWrites uint64      `json:"acked_writes"`
	Errors      uint64      `json:"errors"`
	Retries     uint64      `json:"retries"`
	Exhausted   uint64      `json:"exhausted"`
	Latency     latencyJSON `json:"latency_us"`

	hist server.Histogram
}

type benchReport struct {
	Bench    string          `json:"bench"`
	Config   loadConfig      `json:"config"`
	Duration float64         `json:"duration_sec"`
	Result   runResult       `json:"result"`
	Shards   *server.Metrics `json:"server_metrics,omitempty"`
	Baseline *baselineReport `json:"baseline,omitempty"`
	Fleet    *fleetReport    `json:"fleet,omitempty"`
}

type baselineReport struct {
	Shards    int     `json:"shards"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup"` // main ops/s over baseline ops/s
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.Net, "net", "tcp", "transport: tcp or memory (in-process server)")
	flag.StringVar(&cfg.Addr, "addr", "localhost:7979", "riod address (tcp mode)")
	flag.IntVar(&cfg.Clients, "clients", 8, "concurrent client connections")
	flag.IntVar(&cfg.Pipeline, "pipeline", 1, "request streams in flight per connection (1 = closed loop)")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "measured run length")
	flag.Float64Var(&cfg.Writes, "writes", 0.5, "write fraction of the op mix [0,1]")
	// 900 keys fit one machine's 1024-entry inode table, so a -compare 1
	// baseline can hold the whole key set on a single shard; at 8 KB each
	// they still overflow one shard's data cache, which is where the
	// multi-shard capacity win comes from.
	flag.IntVar(&cfg.Keys, "keys", 900, "distinct keys (flat files; each shard holds at most 1024 inodes)")
	flag.IntVar(&cfg.Size, "size", 8192, "bytes per write")
	flag.Float64Var(&cfg.Skew, "skew", 0, "key-space skew exponent (0 = uniform; 1 ≈ zipf)")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "load seed (per-client streams derived via sim.Mix)")
	flag.IntVar(&cfg.Shards, "shards", 4, "shards (memory mode)")
	flag.StringVar(&cfg.Policy, "policy", "rio", "file-system policy (memory mode)")
	flag.IntVar(&cfg.MemMB, "mem", 16, "memory per shard, MB (memory mode)")
	flag.IntVar(&cfg.DiskMB, "disk", 32, "disk per shard, MB (memory mode)")
	flag.IntVar(&cfg.Queue, "queue", 128, "per-shard queue depth (memory mode)")
	flag.IntVar(&cfg.Batch, "batch", 32, "max batch per drain (memory mode)")
	compare := flag.Int("compare", 0, "also run a baseline at this shard count (memory mode) and report speedup")
	flag.IntVar(&cfg.CrashShard, "crash-shard", -1, "crash this shard mid-run (-1 = no crash)")
	flag.DurationVar(&cfg.CrashAt, "crash-at", 2*time.Second, "when to crash, measured from run start")
	flag.DurationVar(&cfg.CrashDown, "crash-down", 500*time.Millisecond, "outage length before the warm reboot")
	flag.DurationVar(&cfg.TCPProbe, "tcp-probe", 0, "memory mode: after the measured run, serve the same server over loopback TCP for this long with pipelined reads to sample the writev batch distribution (0 = off)")
	fleetFlag := flag.Bool("fleet", false, "load an in-process replicated fleet; kill shard 0's primary at -crash-at, revive -crash-down later")
	peers := flag.Int("peers", 3, "fleet mode: node count")
	replicas := flag.Int("replicas", 2, "fleet mode: replicas per shard")
	out := flag.String("out", "BENCH_server.json", "JSON report path (empty = skip)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured run")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rioload:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rioload:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if cfg.Writes < 0 || cfg.Writes > 1 {
		fmt.Fprintln(os.Stderr, "rioload: -writes must be in [0,1]")
		os.Exit(2)
	}
	if cfg.Net != "tcp" && cfg.Net != "memory" {
		fmt.Fprintf(os.Stderr, "rioload: unknown -net %q (want tcp or memory)\n", cfg.Net)
		os.Exit(2)
	}
	if cfg.Pipeline < 1 {
		fmt.Fprintln(os.Stderr, "rioload: -pipeline must be >= 1")
		os.Exit(2)
	}

	cfg.TCPProbeSec = cfg.TCPProbe.Seconds()
	report := benchReport{Bench: "riod-load", Config: cfg, Duration: cfg.Duration.Seconds()}

	if *fleetFlag {
		runFleetMain(cfg, *peers, *replicas, *out)
		return
	}

	if *compare > 0 {
		if cfg.Net != "memory" {
			fmt.Fprintln(os.Stderr, "rioload: -compare needs -net memory")
			os.Exit(2)
		}
		base := cfg
		base.Shards = *compare
		base.CrashShard = -1
		fmt.Printf("rioload: baseline run, %d shard(s)...\n", base.Shards)
		baseRes, _, err := runLoad(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rioload:", err)
			os.Exit(1)
		}
		report.Baseline = &baselineReport{Shards: base.Shards, OpsPerSec: baseRes.OpsPerSec}
		printRun(fmt.Sprintf("baseline (%d shard)", base.Shards), baseRes)
	}

	res, metrics, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioload:", err)
		os.Exit(1)
	}
	report.Result = *res
	report.Shards = metrics
	printRun(fmt.Sprintf("run (%d shard)", cfg.Shards), res)
	if metrics != nil {
		fmt.Println("\nper-shard server metrics:")
		fmt.Print(metrics.Table())
		fmt.Printf("aggregate avg_batch: %.2f requests per drain (pipeline depth %d)\n",
			metrics.AvgBatch, cfg.Pipeline)
	}
	if report.Baseline != nil && report.Baseline.OpsPerSec > 0 {
		report.Baseline.Speedup = res.OpsPerSec / report.Baseline.OpsPerSec
		fmt.Printf("\nshard scaling: %d shards at %.0f ops/s vs %d at %.0f ops/s -> %.2fx\n",
			cfg.Shards, res.OpsPerSec, report.Baseline.Shards,
			report.Baseline.OpsPerSec, report.Baseline.Speedup)
	}

	if *out != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rioload: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func printRun(name string, r *runResult) {
	fmt.Printf("%-20s %9d ops  %9.0f ops/s  %7.1f MB/s  errors %d  retries %d  p50 %.0fµs  p95 %.0fµs  p99 %.0fµs\n",
		name, r.Ops, r.OpsPerSec, r.MBPerSec, r.Errors, r.Retries,
		r.Latency.P50us, r.Latency.P95us, r.Latency.P99us)
}

// dial returns one client connection for the given transport. With
// -pipeline > 1 a TCP connection must multiplex concurrent callers, so
// it gets a MuxClient; MemClient is already safe to share.
func dial(cfg loadConfig, srv *server.Server) (server.Client, error) {
	if srv != nil {
		return server.MemClient{S: srv}, nil
	}
	if cfg.Pipeline > 1 {
		return server.DialMux(cfg.Addr)
	}
	return server.DialTCP(cfg.Addr)
}

// runLoad executes populate + measured phases and returns the merged
// result (plus server metrics in memory mode).
func runLoad(cfg loadConfig) (*runResult, *server.Metrics, error) {
	var srv *server.Server
	if cfg.Net == "memory" {
		var err error
		srv, err = server.New(server.Config{
			Shards: cfg.Shards, QueueDepth: cfg.Queue, MaxBatch: cfg.Batch,
			Policy: rio.Policy(cfg.Policy), Seed: cfg.Seed,
			MemoryMB: cfg.MemMB, DiskMB: cfg.DiskMB,
		})
		if err != nil {
			return nil, nil, err
		}
		defer srv.Close()
	}

	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("/bench-k%05d", i)
	}
	cdf := workload.NewKeyCDF(cfg.Keys, cfg.Skew)
	payload := make([]byte, cfg.Size)
	for i := range payload {
		payload[i] = byte(i)
	}

	// Populate: every key written once so measured reads mostly hit.
	if err := populate(cfg, srv, keys, payload); err != nil {
		return nil, nil, err
	}

	// Measured phase: cfg.Clients connections, each shared by
	// cfg.Pipeline worker streams (so total concurrency is their
	// product). Every worker keeps one request in flight; on a
	// pipelined connection the workers' requests overlap on the wire.
	workers := cfg.Clients * cfg.Pipeline
	results := make([]runResult, workers)
	errs := make([]error, workers)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		cl, err := dial(cfg, srv)
		if err != nil {
			return nil, nil, fmt.Errorf("dial connection %d: %w", c, err)
		}
		conn := cl
		streams := make([]int, 0, cfg.Pipeline)
		for p := 0; p < cfg.Pipeline; p++ {
			streams = append(streams, c*cfg.Pipeline+p)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			var cwg sync.WaitGroup
			for _, w := range streams {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					errs[w] = worker(cfg, conn, w, keys, cdf, payload, deadline, &results[w])
				}()
			}
			cwg.Wait()
		}()
	}
	if cfg.CrashShard >= 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crashController(cfg, srv, start)
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	merged := &runResult{WallSeconds: wall.Seconds()}
	for c := range results {
		if errs[c] != nil {
			return nil, nil, fmt.Errorf("worker %d: %w", c, errs[c])
		}
		r := &results[c]
		merged.Ops += r.Ops
		merged.Bytes += r.Bytes
		merged.Reads += r.Reads
		merged.Writes += r.Writes
		merged.AckedWrites += r.AckedWrites
		merged.Errors += r.Errors
		merged.Retries += r.Retries
		merged.Exhausted += r.Exhausted
		merged.hist.Merge(&r.hist)
	}
	merged.OpsPerSec = float64(merged.Ops) / wall.Seconds()
	merged.MBPerSec = float64(merged.Bytes) / 1e6 / wall.Seconds()
	merged.Latency = latencyJSON{
		P50us: merged.hist.Quantile(0.50),
		P95us: merged.hist.Quantile(0.95),
		P99us: merged.hist.Quantile(0.99),
	}
	var metrics *server.Metrics
	if srv != nil {
		m := srv.Metrics()
		metrics = &m
	}
	if srv != nil && cfg.TCPProbe > 0 {
		// The probe runs after the metrics snapshot so the measured
		// run's per-shard table stays pure; only the writev counters
		// (which exist solely because of the probe's TCP traffic) are
		// merged back in.
		probeOps, err := tcpProbe(cfg, srv, keys)
		if err != nil {
			return nil, nil, fmt.Errorf("tcp probe: %w", err)
		}
		m2 := srv.Metrics()
		metrics.Writev = m2.Writev
		fmt.Printf("tcp probe: %d pipelined reads over loopback TCP in %v\n", probeOps, cfg.TCPProbe)
	}
	return merged, metrics, nil
}

// tcpProbe re-serves the in-process server over loopback TCP and drives
// cfg.Clients pipelined connections of read-only load at it, so a
// memory-mode benchmark run can still report the scatter-gather writer's
// frames-per-writev distribution from real socket traffic.
func tcpProbe(cfg loadConfig, srv *server.Server, keys []string) (uint64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	go srv.Serve(ln)
	addr := ln.Addr().String()

	cdf := workload.NewKeyCDF(len(keys), cfg.Skew)
	deadline := time.Now().Add(cfg.TCPProbe)
	var wg sync.WaitGroup
	var opsMu sync.Mutex
	var ops uint64
	errs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		mux, err := server.DialMux(addr)
		if err != nil {
			errs[c] = err
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer mux.Close()
			var pwg sync.WaitGroup
			for p := 0; p < cfg.Pipeline; p++ {
				w := c*cfg.Pipeline + p
				pwg.Add(1)
				go func() {
					defer pwg.Done()
					rc := &server.RetryClient{C: mux, Pol: server.DefaultRetryPolicy()}
					rng := sim.NewRand(sim.Mix(cfg.Seed, uint64(w), 0x7C9))
					var n uint64
					id := uint64(w)<<32 | 1<<31
					for time.Now().Before(deadline) {
						id++
						resp, err := rc.Do(&wire.Request{ID: id, Op: wire.OpRead,
							Shard: -1, Path: keys[cdf.Pick(rng)]})
						if err != nil || resp.Status != wire.StatusOK {
							errs[c] = fmt.Errorf("probe read: %v %+v", err, resp)
							return
						}
						n++
					}
					opsMu.Lock()
					ops += n
					opsMu.Unlock()
				}()
			}
			pwg.Wait()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ops, err
		}
	}
	return ops, nil
}

// populate writes every key once, split across the client count.
func populate(cfg loadConfig, srv *server.Server, keys []string, payload []byte) error {
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := dial(cfg, srv)
			if err != nil {
				errs[c] = err
				return
			}
			defer cl.Close()
			rc := &server.RetryClient{C: cl, Pol: server.DefaultRetryPolicy()}
			for i := c; i < len(keys); i += cfg.Clients {
				resp, err := rc.Do(&wire.Request{ID: uint64(i), Op: wire.OpWrite,
					Shard: -1, Path: keys[i], Data: payload})
				if err != nil {
					errs[c] = err
					return
				}
				if resp.Status != wire.StatusOK {
					errs[c] = fmt.Errorf("populate %s: %v %s", keys[i], resp.Status, resp.Msg)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// worker is one load stream: a closed loop over a client connection it
// may share with other workers. Each worker gets its own RetryClient
// (RetryClient's stats are not synchronized) around the shared,
// concurrency-safe transport.
func worker(cfg loadConfig, cl server.Client, idx int, keys []string,
	cdf workload.KeyCDF, payload []byte, deadline time.Time, out *runResult) error {
	rc := &server.RetryClient{C: cl, Pol: server.DefaultRetryPolicy()}
	rng := sim.NewRand(sim.Mix(cfg.Seed, uint64(idx), 0x10ad))

	id := uint64(idx) << 32
	for time.Now().Before(deadline) {
		key := keys[cdf.Pick(rng)]
		id++
		req := &wire.Request{ID: id, Shard: -1, Path: key}
		isWrite := rng.Float64() < cfg.Writes
		if isWrite {
			req.Op = wire.OpWrite
			req.Data = payload
		} else {
			req.Op = wire.OpRead
		}
		begin := time.Now()
		resp, err := rc.Do(req)
		if err != nil {
			return err
		}
		out.hist.Observe(time.Since(begin))
		out.Ops++
		out.Bytes += uint64(len(req.Data) + len(resp.Data))
		if isWrite {
			out.Writes++
			if resp.Status == wire.StatusOK {
				out.AckedWrites++
			}
		} else {
			out.Reads++
		}
		if resp.Status != wire.StatusOK && !resp.Status.Retryable() {
			out.Errors++
		}
	}
	out.Retries = rc.Stats.Retries
	out.Exhausted = rc.Stats.Exhausted
	out.Latency = latencyJSON{
		P50us: out.hist.Quantile(0.50),
		P95us: out.hist.Quantile(0.95),
		P99us: out.hist.Quantile(0.99),
	}
	return nil
}

// crashController crashes cfg.CrashShard at cfg.CrashAt into the run
// and warm-reboots it cfg.CrashDown later.
func crashController(cfg loadConfig, srv *server.Server, start time.Time) {
	cl, err := dial(cfg, srv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioload: crash controller:", err)
		return
	}
	defer cl.Close()
	time.Sleep(time.Until(start.Add(cfg.CrashAt)))
	if resp, err := cl.Do(&wire.Request{ID: 1, Op: wire.OpCrash, Shard: int32(cfg.CrashShard)}); err != nil || resp.Status != wire.StatusOK {
		fmt.Fprintf(os.Stderr, "rioload: crash op: %v %+v\n", err, resp)
		return
	}
	fmt.Fprintf(os.Stderr, "rioload: crashed shard %d at +%v\n", cfg.CrashShard, cfg.CrashAt)
	time.Sleep(cfg.CrashDown)
	if resp, err := cl.Do(&wire.Request{ID: 2, Op: wire.OpWarmboot, Shard: int32(cfg.CrashShard)}); err != nil || resp.Status != wire.StatusOK {
		fmt.Fprintf(os.Stderr, "rioload: warmboot op: %v %+v\n", err, resp)
		return
	}
	fmt.Fprintf(os.Stderr, "rioload: warm-rebooted shard %d after %v down\n", cfg.CrashShard, cfg.CrashDown)
}

// fleetReport is the fleet-mode section of the JSON report.
type fleetReport struct {
	Peers       int    `json:"peers"`
	Replicas    int    `json:"replicas"`
	Killed      string `json:"killed"`
	Promotions  uint64 `json:"promotions"`
	Reconfigs   uint64 `json:"reconfigs"`
	Repairs     uint64 `json:"repairs"`
	ReplSent    uint64 `json:"repl_sent"`
	ReplApplied uint64 `json:"repl_applied"`
	Replays     uint64 `json:"replays"`
	Fenced      uint64 `json:"fenced"`
	Snapshots   uint64 `json:"snapshots"`
	Redirects   uint64 `json:"redirects"`
	Verified    int    `json:"verified_keys"`
	Lost        int    `json:"lost_keys"`
}

// runFleetMain is the -fleet entry point: machine loss under live load.
func runFleetMain(cfg loadConfig, peers, replicas int, out string) {
	res, fr, err := runFleetLoad(cfg, peers, replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rioload:", err)
		os.Exit(1)
	}
	printRun(fmt.Sprintf("fleet (%d nodes xR%d)", peers, replicas), res)
	fmt.Printf("\nfleet: killed %s mid-run; promotions %d, reconfigs %d, repairs %d, snapshots %d\n",
		fr.Killed, fr.Promotions, fr.Reconfigs, fr.Repairs, fr.Snapshots)
	fmt.Printf("replication: sent %d, applied %d, replays %d, fenced %d; client redirects %d\n",
		fr.ReplSent, fr.ReplApplied, fr.Replays, fr.Fenced, fr.Redirects)
	fmt.Printf("verification: %d keys byte-equal, %d lost\n", fr.Verified, fr.Lost)

	if out != "" {
		report := benchReport{Bench: "riod-fleet-load", Config: cfg,
			Duration: cfg.Duration.Seconds(), Result: *res, Fleet: fr}
		data, err := json.MarshalIndent(&report, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rioload: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if fr.Lost != 0 {
		fmt.Fprintln(os.Stderr, "rioload: acked writes lost across machine loss")
		os.Exit(1)
	}
}

// runFleetLoad drives cfg.Clients concurrent load streams against a
// replicated fleet while a coordinator goroutine ticks, a controller
// kills and later revives shard 0's primary, and a final pass verifies
// every populated key reads back byte-equal.
func runFleetLoad(cfg loadConfig, peers, replicas int) (*runResult, *fleetReport, error) {
	f, err := fleet.New(fleet.Config{
		Nodes: peers, Replicas: replicas, Shards: cfg.Shards, Seed: cfg.Seed,
		Policy: rio.Policy(cfg.Policy), MemoryMB: cfg.MemMB, DiskMB: cfg.DiskMB,
	})
	if err != nil {
		return nil, nil, err
	}

	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("/bench-k%05d", i)
	}
	cdf := workload.NewKeyCDF(cfg.Keys, cfg.Skew)
	payload := make([]byte, cfg.Size)
	for i := range payload {
		payload[i] = byte(i)
	}

	newClient := func() *fleet.Client {
		cl := f.Client(time.Sleep)
		cl.RetryDelay = time.Millisecond
		return cl
	}

	// Populate every key once, pre-fault, so the verify pass has a
	// known acked byte-equal expectation for the whole key space.
	{
		var wg sync.WaitGroup
		errs := make([]error, cfg.Clients)
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl := newClient()
				for i := c; i < len(keys); i += cfg.Clients {
					resp, err := cl.Do(&wire.Request{ID: uint64(i), Op: wire.OpWrite,
						Shard: -1, Path: keys[i], Data: payload})
					if err != nil {
						errs[c] = err
						return
					}
					if resp.Status != wire.StatusOK {
						errs[c] = fmt.Errorf("populate %s: %v %s", keys[i], resp.Status, resp.Msg)
						return
					}
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	}

	// Coordinator heartbeat loop: ~20ms ticks, the fleet's failure
	// detector under live load.
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		tk := time.NewTicker(20 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-tk.C:
				f.Tick()
			}
		}
	}()

	victim := f.Table().Routes[0].Primary
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup

	// Fault controller: machine loss at -crash-at, revival (and
	// snapshot repair) -crash-down later.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Until(start.Add(cfg.CrashAt)))
		f.Kill(victim)
		fmt.Fprintf(os.Stderr, "rioload: killed %s at +%v\n", victim, cfg.CrashAt)
		time.Sleep(cfg.CrashDown)
		f.Revive(victim)
		fmt.Fprintf(os.Stderr, "rioload: revived %s after %v down\n", victim, cfg.CrashDown)
	}()

	results := make([]runResult, cfg.Clients)
	var redirects uint64
	var redirMu sync.Mutex
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := newClient()
			out := &results[c]
			rng := sim.NewRand(sim.Mix(cfg.Seed, uint64(c), 0xF1EE7))
			id := uint64(c) << 32
			for time.Now().Before(deadline) {
				key := keys[cdf.Pick(rng)]
				id++
				req := &wire.Request{ID: id, Shard: -1, Path: key}
				isWrite := rng.Float64() < cfg.Writes
				if isWrite {
					req.Op = wire.OpWrite
					req.Data = payload
				} else {
					req.Op = wire.OpRead
				}
				begin := time.Now()
				resp, err := cl.Do(req)
				out.hist.Observe(time.Since(begin))
				out.Ops++
				if err != nil {
					// Unreachable across the whole retry budget — the
					// mid-kill window. Count it and keep loading.
					out.Errors++
					continue
				}
				out.Bytes += uint64(len(req.Data) + len(resp.Data))
				if isWrite {
					out.Writes++
					if resp.Status == wire.StatusOK {
						out.AckedWrites++
					}
				} else {
					out.Reads++
				}
				if resp.Status != wire.StatusOK && !resp.Status.Retryable() {
					out.Errors++
				}
			}
			out.Retries = cl.Stats.Retries
			redirMu.Lock()
			redirects += cl.Stats.Redirects
			redirMu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(stopTick)
	tickWG.Wait()

	// Post-run convergence, then the gate: every populated (acked) key
	// reads back byte-equal. Measured-phase writes reuse the same
	// payload, so one expectation covers both phases.
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	verified, lost := 0, 0
	vcl := newClient()
	for _, key := range keys {
		ok := false
		for round := 0; round < 8; round++ {
			resp, err := vcl.Do(&wire.Request{Op: wire.OpRead, Shard: -1, Path: key})
			if err == nil && resp.Status == wire.StatusOK && string(resp.Data) == string(payload) {
				ok = true
				break
			}
			f.Tick()
		}
		if ok {
			verified++
		} else {
			lost++
		}
	}

	merged := &runResult{WallSeconds: wall.Seconds()}
	for c := range results {
		r := &results[c]
		merged.Ops += r.Ops
		merged.Bytes += r.Bytes
		merged.Reads += r.Reads
		merged.Writes += r.Writes
		merged.AckedWrites += r.AckedWrites
		merged.Errors += r.Errors
		merged.Retries += r.Retries
		merged.hist.Merge(&r.hist)
	}
	merged.OpsPerSec = float64(merged.Ops) / wall.Seconds()
	merged.MBPerSec = float64(merged.Bytes) / 1e6 / wall.Seconds()
	merged.Latency = latencyJSON{
		P50us: merged.hist.Quantile(0.50),
		P95us: merged.hist.Quantile(0.95),
		P99us: merged.hist.Quantile(0.99),
	}

	m := f.Metrics()
	nm := f.NodeMetrics()
	fr := &fleetReport{
		Peers: peers, Replicas: replicas, Killed: victim,
		Promotions: m.Promotions, Reconfigs: m.Reconfigs, Repairs: m.Repairs,
		ReplSent: nm.ReplSent, ReplApplied: nm.ReplApplied, Replays: nm.Replays,
		Fenced: nm.Fenced, Snapshots: nm.SnapshotsSent, Redirects: redirects,
		Verified: verified, Lost: lost,
	}
	return merged, fr, nil
}
