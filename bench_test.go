// Benchmarks regenerating the paper's evaluation. One benchmark per
// experiment (see DESIGN.md's experiment index):
//
//	BenchmarkTable1Campaign    — Table 1 (crash tests; reports corruption %)
//	BenchmarkTable2Perf        — Table 2 (reports simulated seconds + speedups)
//	BenchmarkProtectionOverhead— in-text §4: protection is essentially free
//	BenchmarkCodePatching      — in-text §2.1: software checks cost 20-50%
//	BenchmarkWarmReboot        — reboot-path cost (registry scan + restore)
//	BenchmarkRioWrite / BenchmarkWriteThroughWrite — the microscopic view of
//	  the Table 2 gap: one 8 KB durable write on each system
//	BenchmarkKVMInterpreter    — substrate speed (interpreted kernel MIPS)
//
// Benchmarks report simulated metrics via b.ReportMetric; wall-clock ns/op
// measures the simulator itself.
package rio

import (
	"fmt"
	"runtime"
	"testing"

	"rio/internal/crashtest"
	"rio/internal/fault"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/mem"
	"rio/internal/mmu"
	"rio/internal/perf"
	"rio/internal/registry"
	"rio/internal/sim"

	internalfs "rio/internal/fs"
)

// BenchmarkTable1Campaign runs a reduced Table 1 campaign per iteration
// and reports corruption rates for the three systems (percent of crashing
// runs with corrupted file data). Paper: disk 1.1%, Rio w/o protection
// 1.5%, Rio w/ protection 0.6%.
func BenchmarkTable1Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := crashtest.DefaultCampaignConfig(uint64(1996 + i))
		cfg.RunsPerCell = 3 // full 50-run campaign lives in cmd/riocrash
		rep, err := crashtest.RunCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for s, name := range map[crashtest.System]string{
			crashtest.DiskWT:    "disk_corrupt_pct",
			crashtest.RioNoProt: "rio_noprot_corrupt_pct",
			crashtest.RioProt:   "rio_prot_corrupt_pct",
		} {
			crashes, corrupted := rep.Totals(s)
			if crashes > 0 {
				b.ReportMetric(100*float64(corrupted)/float64(crashes), name)
			}
		}
	}
}

// BenchmarkTable1CampaignWorkers measures campaign throughput at one
// worker versus all cores. The scheduler fans (system, fault, attempt)
// runs across a worker pool with deterministic in-order merging, so the
// runs/s metric should scale near-linearly with cores while the rendered
// table stays byte-identical.
func BenchmarkTable1CampaignWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := crashtest.DefaultCampaignConfig(1996)
				cfg.RunsPerCell = 2
				cfg.Workers = w
				rep, err := crashtest.RunCampaign(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Summary.RunsPerSec, "runs/s")
				b.ReportMetric(float64(rep.Summary.SpeculativeRuns), "spec_runs")
			}
		})
	}
}

// BenchmarkTable1Cell benchmarks a single crash-test run (inject, crash,
// warm reboot, verify) on Rio with protection.
func BenchmarkTable1Cell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := crashtest.RunOne(crashtest.RioProt, fault.CopyOverrun,
			crashtest.DefaultRunConfig(uint64(7000+i)))
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkTable2Perf regenerates Table 2 per iteration (reduced scale)
// and reports the headline simulated times and speedups.
func BenchmarkTable2Perf(b *testing.B) {
	cfg := perf.DefaultConfig()
	cfg.CpRm.TreeBytes = 1 << 20
	cfg.Sdet.OpsPerScript = 60
	cfg.Andrew.TreeBytes = 200 << 10
	for i := 0; i < b.N; i++ {
		rows, err := cfg.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		r := perf.ComputeRatios(rows)
		b.ReportMetric(r.VsWriteThroughWrite[0], "speedup_vs_wtwrite_cprm")
		b.ReportMetric(r.VsUFS[0], "speedup_vs_ufs_cprm")
		b.ReportMetric(r.VsDelayed[0], "speedup_vs_delayed_cprm")
		b.ReportMetric(r.VsMFS[0], "ratio_vs_mfs_cprm")
		for _, row := range rows {
			if row.Spec.Label == "Rio with protection" {
				b.ReportMetric(row.CpRm().Seconds(), "rio_cprm_sim_s")
			}
		}
	}
}

// BenchmarkTable2Row benchmarks a single configuration's full workload
// trio (Rio with protection).
func BenchmarkTable2Row(b *testing.B) {
	cfg := perf.DefaultConfig()
	cfg.CpRm.TreeBytes = 1 << 20
	cfg.Sdet.OpsPerScript = 60
	cfg.Andrew.TreeBytes = 200 << 10
	spec := perf.Rows()[7] // Rio with protection
	for i := 0; i < b.N; i++ {
		if _, err := cfg.RunRow(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtectionOverhead reports the simulated cost of Rio's
// protection on cp+rm (paper: ~0%, 24s vs 25s).
func BenchmarkProtectionOverhead(b *testing.B) {
	cfg := perf.DefaultConfig()
	cfg.CpRm.TreeBytes = 1 << 20
	for i := 0; i < b.N; i++ {
		without, with, err := cfg.ProtectionOverhead()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(float64(with)/float64(without)-1), "protection_overhead_pct")
	}
}

// BenchmarkCodePatching reports the simulated overhead of the
// software-check protection fallback (paper: 20-50%).
func BenchmarkCodePatching(b *testing.B) {
	cfg := perf.DefaultConfig()
	for i := 0; i < b.N; i++ {
		tlb, patched, err := cfg.CodePatchingOverhead()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(float64(patched)/float64(tlb)-1), "patching_overhead_pct")
	}
}

// BenchmarkWarmReboot measures the full crash + warm reboot + restore
// cycle with a populated file cache.
func BenchmarkWarmReboot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := New(Config{Policy: PolicyRio, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 20; j++ {
			if err := sys.WriteFile(fmt.Sprintf("/f%02d", j), make([]byte, 10000)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		sys.Crash("bench")
		rep, err := sys.WarmReboot()
		if err != nil {
			b.Fatal(err)
		}
		if rep.DataRestored == 0 {
			b.Fatal("nothing restored")
		}
	}
}

// benchDurableWrite measures one durable 8 KB write+commit on a policy.
func benchDurableWrite(b *testing.B, policy Policy) {
	sys, err := New(Config{Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	f, err := sys.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	block := make([]byte, 8192)
	start := sys.Elapsed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(block, int64(i%64)*8192); err != nil {
			b.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	simPer := float64(sys.Elapsed()-start) / float64(b.N)
	b.ReportMetric(simPer/1000, "sim_us/write")
}

// BenchmarkRioWrite: durable write on Rio — microseconds of simulated
// time, no disk.
func BenchmarkRioWrite(b *testing.B) { benchDurableWrite(b, PolicyRio) }

// BenchmarkWriteThroughWrite: the same durable write on the synchronous
// mount — milliseconds of simulated disk time.
func BenchmarkWriteThroughWrite(b *testing.B) { benchDurableWrite(b, PolicyUFSWTWrite) }

// BenchmarkKVMInterpreter measures the kernel VM's raw interpretation
// speed (simulated MIPS of the substrate).
func BenchmarkKVMInterpreter(b *testing.B) {
	m := mem.New(kernel.MinMemory)
	u := mmu.New(m)
	k := kernel.New(m, u, kernel.BuildText())
	src := k.StageIn(make([]byte, 8192))
	before := k.VM.Steps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.BCopy(kernel.HeapBase+4096, src, 8192); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	steps := k.VM.Steps - before
	b.ReportMetric(float64(steps)/float64(b.N), "instr/op")
}

// BenchmarkRegistryUpdate measures the sanctioned registry write path
// (protection open, store, CRC, protection close).
func BenchmarkRegistryUpdate(b *testing.B) {
	pol := internalfs.DefaultPolicy(internalfs.PolicyRio)
	opt := machine.DefaultOptions(pol)
	opt.FastPath = true
	m, err := machine.New(opt, nil)
	if err != nil {
		b.Fatal(err)
	}
	f, err := m.FS.Create("/f")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 8192), 0); err != nil {
		b.Fatal(err)
	}
	buf := m.Cache.LookupData(f.Ino, 0)
	if buf == nil {
		b.Fatal("no buffer")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := m.Reg.Mutate(buf.Slot, func(e *registry.Entry) {
			e.Cksum = uint64(i)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = sim.Second
}
