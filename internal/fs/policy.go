package fs

import "rio/internal/sim"

// PolicyKind selects one of the eight file-system configurations of
// Table 2.
type PolicyKind int

const (
	// PolicyMFS is the Memory File System: completely memory-resident, no
	// disk I/O ever. The paper's "optimal performance" row.
	PolicyMFS PolicyKind = iota
	// PolicyUFSDelayed delays all data AND metadata until the update
	// daemon runs — the optimal "no-order" system of [Ganger94]. Risks
	// losing 30 seconds of everything.
	PolicyUFSDelayed
	// PolicyAdvFS models the journaling file system: metadata updates are
	// appended sequentially to a log; data is delayed.
	PolicyAdvFS
	// PolicyUFS is the default Digital Unix behaviour: data written
	// asynchronously once 64 KB accumulates (or on non-sequential
	// writes, or when update runs); metadata written synchronously.
	PolicyUFS
	// PolicyUFSWTClose adds write-through on close: fsync on every close.
	PolicyUFSWTClose
	// PolicyUFSWTWrite is the fully synchronous mount: every write goes
	// through to disk before returning (plus fsync on close). The only
	// non-Rio configuration with Rio's reliability guarantee.
	PolicyUFSWTWrite
	// PolicyRio never writes for reliability: sync/fsync return
	// immediately, panic does not flush, dirty blocks stay in memory
	// indefinitely (until the cache overflows). Memory is made safe by
	// protection + warm reboot instead.
	PolicyRio
)

func (k PolicyKind) String() string {
	switch k {
	case PolicyMFS:
		return "memory-fs"
	case PolicyUFSDelayed:
		return "ufs-delayed"
	case PolicyAdvFS:
		return "advfs-journal"
	case PolicyUFS:
		return "ufs"
	case PolicyUFSWTClose:
		return "ufs-wt-close"
	case PolicyUFSWTWrite:
		return "ufs-wt-write"
	case PolicyRio:
		return "rio"
	default:
		return "?"
	}
}

// Policy configures write-back behaviour.
type Policy struct {
	Kind PolicyKind

	// Protect enables Rio's memory protection (meaningful for PolicyRio;
	// the "Rio with protection" row).
	Protect bool

	// UpdatePeriod is the update daemon interval (0 disables; the classic
	// value is 30 s).
	UpdatePeriod sim.Duration

	// AsyncDataThreshold is PolicyUFS's accumulation threshold before
	// asynchronously writing a file's dirty data (64 KB in Digital Unix).
	AsyncDataThreshold int
}

// DefaultPolicy returns the standard configuration for a kind.
func DefaultPolicy(kind PolicyKind) Policy {
	p := Policy{Kind: kind, AsyncDataThreshold: 64 << 10}
	switch kind {
	case PolicyMFS, PolicyRio:
		// no daemon: nothing to flush for reliability
	default:
		p.UpdatePeriod = 30 * sim.Second
	}
	if kind == PolicyRio {
		p.Protect = true
	}
	return p
}

// metaSync reports whether metadata mutations must reach disk
// synchronously before the operation returns.
func (p Policy) metaSync() bool {
	switch p.Kind {
	case PolicyUFS, PolicyUFSWTClose, PolicyUFSWTWrite:
		return true
	}
	return false
}

// metaJournal reports whether metadata mutations are logged sequentially.
func (p Policy) metaJournal() bool { return p.Kind == PolicyAdvFS }

// metaShadow reports whether in-memory metadata updates must be atomic
// (Rio: the buffer cache is now permanent storage, §2.3).
func (p Policy) metaShadow() bool { return p.Kind == PolicyRio }

// dataWriteThrough reports whether each file write is synchronous.
func (p Policy) dataWriteThrough() bool { return p.Kind == PolicyUFSWTWrite }

// fsyncOnClose reports whether close implies fsync.
func (p Policy) fsyncOnClose() bool {
	return p.Kind == PolicyUFSWTClose || p.Kind == PolicyUFSWTWrite
}

// syncIsNoop reports whether sync/fsync return immediately (Rio: memory is
// already permanent; MFS: nothing is ever permanent).
func (p Policy) syncIsNoop() bool {
	return p.Kind == PolicyRio || p.Kind == PolicyMFS
}

// neverWrite reports whether the volume does no disk I/O at all.
func (p Policy) neverWrite() bool { return p.Kind == PolicyMFS }

// asyncDataOnThreshold reports whether UFS-style accumulation write-back
// applies.
func (p Policy) asyncDataOnThreshold() bool { return p.Kind == PolicyUFS }

// panicFlushes reports whether the stock panic path writes dirty data back
// to disk as the system goes down. Rio explicitly disables this (a dying,
// possibly corrupt kernel must not touch permanent data); MFS has no disk.
func (p Policy) panicFlushes() bool {
	return p.Kind != PolicyRio && p.Kind != PolicyMFS
}

// Costs parameterises the CPU side of the performance model. All the disk
// costs live in disk.Params.
type Costs struct {
	// StepNs is nanoseconds per retired kernel instruction
	// (instruction-equivalents in fast mode).
	StepNs int64
	// Syscall is the fixed per-system-call overhead.
	Syscall sim.Duration
	// ProtToggle is the cost of one protection open/close (a PTE update
	// plus TLB shootdown, in-kernel — no syscall, which is why Rio's
	// protection is so much cheaper than user-level mprotect schemes).
	ProtToggle sim.Duration
	// PatchCheck is the per-store cost of the code-patching ablation.
	PatchCheck sim.Duration
}

// DefaultCosts approximates the paper's DEC 3000/600 (175 MHz Alpha 21064).
func DefaultCosts() Costs {
	return Costs{
		StepNs:     6,
		Syscall:    20 * sim.Microsecond,
		ProtToggle: 500 * sim.Nanosecond,
		PatchCheck: 16 * sim.Nanosecond, // ~3 inserted instructions per store
	}
}
