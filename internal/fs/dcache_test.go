package fs_test

import (
	"bytes"
	"testing"

	"rio/internal/fs"
	"rio/internal/machine"
)

// statHits runs Stat twice and returns the dcache hit delta — the second
// Stat of a warm path must be answered by the cache.
func statHits(t *testing.T, m *machine.Machine, path string) uint64 {
	t.Helper()
	if _, err := m.FS.Stat(path); err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	before := m.FS.Stats.DcacheHits
	if _, err := m.FS.Stat(path); err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	return m.FS.Stats.DcacheHits - before
}

func TestDcacheServesRepeatLookups(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	if err := m.FS.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := m.FS.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, m, "/a/b/leaf", []byte("x"))
	// Three components — a warm Stat must resolve all of them from the
	// cache without touching a directory block.
	reads := m.FS.Stats.SyncReads
	if got := statHits(t, m, "/a/b/leaf"); got != 3 {
		t.Fatalf("warm deep Stat made %d dcache hits, want 3", got)
	}
	if m.FS.Stats.SyncReads != reads {
		t.Fatal("warm lookup read the disk")
	}
}

func TestDcacheInvalidateUnlink(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	if err := m.FS.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, m, "/d/a", []byte("first"))
	if statHits(t, m, "/d/a") == 0 {
		t.Fatal("entry never cached")
	}
	if err := m.FS.Unlink("/d/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Stat("/d/a"); err != fs.ErrNotFound {
		t.Fatalf("stat after unlink: %v, want ErrNotFound", err)
	}
	// Recreating the name must bind to the new file, not a stale inode.
	writeFile(t, m, "/d/a", []byte("second"))
	if got := readFile(t, m, "/d/a"); !bytes.Equal(got, []byte("second")) {
		t.Fatalf("reborn file reads %q", got)
	}
}

func TestDcacheInvalidateRename(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	if err := m.FS.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, m, "/d/a", []byte("payload-a"))
	writeFile(t, m, "/d/c", []byte("payload-c"))
	statHits(t, m, "/d/a") // warm both names into the cache
	statHits(t, m, "/d/c")
	if err := m.FS.Rename("/d/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Stat("/d/a"); err != fs.ErrNotFound {
		t.Fatalf("stat of renamed-away name: %v, want ErrNotFound", err)
	}
	if got := readFile(t, m, "/d/b"); !bytes.Equal(got, []byte("payload-a")) {
		t.Fatalf("/d/b reads %q", got)
	}
	// Replacing rename: /d/c's cached entry must not survive pointing at
	// the freed inode.
	if err := m.FS.Rename("/d/b", "/d/c"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, m, "/d/c"); !bytes.Equal(got, []byte("payload-a")) {
		t.Fatalf("/d/c after replace reads %q", got)
	}
	if _, err := m.FS.Stat("/d/b"); err != fs.ErrNotFound {
		t.Fatalf("stat of moved name: %v, want ErrNotFound", err)
	}
}

// TestDcacheRenamedParentDirectory checks that entries keyed under a
// directory's inode survive (correctly) when the directory itself is
// renamed: the children are reachable under the new path and gone under
// the old one.
func TestDcacheRenamedParentDirectory(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	if err := m.FS.Mkdir("/old"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, m, "/old/child", []byte("kid"))
	statHits(t, m, "/old/child")
	if err := m.FS.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Stat("/old/child"); err != fs.ErrNotFound {
		t.Fatalf("stat under old dir name: %v, want ErrNotFound", err)
	}
	if got := readFile(t, m, "/new/child"); !bytes.Equal(got, []byte("kid")) {
		t.Fatalf("/new/child reads %q", got)
	}
}

func TestDcacheInvalidateRmdir(t *testing.T) {
	m := boot(t, fs.PolicyRio)
	if err := m.FS.Mkdir("/p"); err != nil {
		t.Fatal(err)
	}
	if err := m.FS.Mkdir("/p/sub"); err != nil {
		t.Fatal(err)
	}
	if statHits(t, m, "/p/sub") == 0 {
		t.Fatal("directory entry never cached")
	}
	if err := m.FS.Rmdir("/p/sub"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FS.Stat("/p/sub"); err != fs.ErrNotFound {
		t.Fatalf("stat after rmdir: %v, want ErrNotFound", err)
	}
	// The name must be reusable for a file with the same path.
	writeFile(t, m, "/p/sub", []byte("now a file"))
	st, err := m.FS.Stat("/p/sub")
	if err != nil || st.IsDir {
		t.Fatalf("reborn path: %v isDir=%v", err, st.IsDir)
	}
}
