package fs_test

import (
	"bytes"
	"testing"

	"rio/internal/fs"
	"rio/internal/kernel"
	"rio/internal/machine"
	"rio/internal/sim"
)

func bootOpt(t *testing.T, kind fs.PolicyKind, mod func(*machine.Options)) *machine.Machine {
	t.Helper()
	opt := machine.DefaultOptions(fs.DefaultPolicy(kind))
	opt.FastPath = true
	if mod != nil {
		mod(&opt)
	}
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDropCachesRoundTrip(t *testing.T) {
	m := boot(t, fs.PolicyUFSDelayed)
	data := kernel.FillBytes(2*fs.BlockSize+100, 77)
	writeFile(t, m, "/f", data)
	misses := m.Cache.Stats.DataMisses
	if err := m.FS.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Len(0) != 0 || m.Cache.Len(1) != 0 {
		t.Fatal("caches not empty after DropCaches")
	}
	// Re-read comes from disk, intact.
	if got := readFile(t, m, "/f"); !bytes.Equal(got, data) {
		t.Fatal("data lost through DropCaches")
	}
	if m.Cache.Stats.DataMisses == misses {
		t.Fatal("re-read did not miss (caches not actually dropped)")
	}
}

func TestDropCachesNoopForRioAndMFS(t *testing.T) {
	for _, kind := range []fs.PolicyKind{fs.PolicyRio, fs.PolicyMFS} {
		m := boot(t, kind)
		writeFile(t, m, "/f", []byte("memory resident"))
		if err := m.FS.DropCaches(); err != nil {
			t.Fatal(err)
		}
		// Data must still be readable (for MFS it exists nowhere else).
		if string(readFile(t, m, "/f")) != "memory resident" {
			t.Fatalf("%v: DropCaches destroyed memory-resident data", kind)
		}
	}
}

func TestAsyncCommitCallbacksOnlyOnCommit(t *testing.T) {
	// Delayed policy: daemon queues async writes; a crash before their
	// completion must leave the buffers dirty (callbacks not run).
	m := boot(t, fs.PolicyUFSDelayed)
	writeFile(t, m, "/f", kernel.FillBytes(fs.BlockSize, 9))
	// Force the daemon now.
	m.Engine.Clock.Advance(31 * sim.Second)
	m.Engine.RunUntil(m.Engine.Clock.Now())
	if m.FS.PendingWrites() == 0 {
		t.Fatal("daemon queued nothing")
	}
	// Buffers stay dirty until the queue drains.
	dirtyBefore := len(m.FS.C.DirtyBufs(0)) + len(m.FS.C.DirtyBufs(1))
	if dirtyBefore == 0 {
		t.Fatal("buffers marked clean before commit")
	}
	// Let the queue complete, then settle: now they are clean.
	m.Engine.Clock.Advance(5 * sim.Second)
	m.FS.CrashIO(m.Rng)
	dirtyAfter := len(m.FS.C.DirtyBufs(0)) + len(m.FS.C.DirtyBufs(1))
	if dirtyAfter != 0 {
		t.Fatalf("%d buffers still dirty after commit", dirtyAfter)
	}
}

func TestCrashIODropsUncommittedAndTears(t *testing.T) {
	m := boot(t, fs.PolicyUFSDelayed)
	writeFile(t, m, "/f", kernel.FillBytes(fs.BlockSize, 3))
	m.Engine.Clock.Advance(31 * sim.Second)
	m.Engine.RunUntil(m.Engine.Clock.Now())
	pend := m.FS.PendingWrites()
	if pend == 0 {
		t.Fatal("nothing queued")
	}
	// Crash immediately: queue completion times are in the future.
	m.FS.CrashIO(m.Rng)
	if m.FS.PendingWrites() != 0 {
		t.Fatal("queue survived crash")
	}
	// Buffers still dirty (their write never completed).
	if len(m.FS.C.DirtyBufs(0))+len(m.FS.C.DirtyBufs(1)) == 0 {
		t.Fatal("crash marked uncommitted buffers clean")
	}
}

func TestJournalWrapAround(t *testing.T) {
	opt := machine.DefaultOptions(fs.DefaultPolicy(fs.PolicyAdvFS))
	opt.FastPath = true
	opt.JournalBlocks = 4 // tiny journal to force wrap
	m, err := machine.New(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		writeFile(t, m, "/f"+itoa(i), []byte("x"))
	}
	if m.FS.Stats.JournalWrites < 30 {
		t.Fatalf("only %d journal writes", m.FS.Stats.JournalWrites)
	}
	// Volume still consistent after heavy journal churn.
	m.FS.Unmount()
	rep, err := fs.Fsck(m.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("journal wrap corrupted volume: %v", rep)
	}
}

func TestRioEvictionIsSynchronous(t *testing.T) {
	// Rio's only disk writes happen at cache overflow, and they must be
	// synchronous: the evicted frame is reused immediately.
	m := bootOpt(t, fs.PolicyRio, func(o *machine.Options) {
		o.DataCap = 4
	})
	preSync := m.FS.Stats.SyncWrites
	var files [][]byte
	for i := 0; i < 10; i++ {
		data := kernel.FillBytes(fs.BlockSize, uint64(i+1))
		files = append(files, data)
		writeFile(t, m, "/f"+itoa(i), data)
	}
	if m.FS.Stats.SyncWrites == preSync {
		t.Fatal("Rio eviction did not write synchronously")
	}
	if m.FS.Stats.AsyncWrites != 0 {
		t.Fatal("Rio eviction used the async queue")
	}
	// Everything still readable (early files round-trip via disk).
	for i, want := range files {
		if got := readFile(t, m, "/f"+itoa(i)); !bytes.Equal(got, want) {
			t.Fatalf("file %d lost through Rio eviction", i)
		}
	}
}

func TestUFSOrderedVsUnorderedMetadata(t *testing.T) {
	// Creating a file must sync ordered metadata (inode init + dirent);
	// growing it must not sync anything (size updates are unordered).
	m := boot(t, fs.PolicyUFS)
	f, err := m.FS.Create("/grow")
	if err != nil {
		t.Fatal(err)
	}
	createSyncs := m.FS.Stats.SyncWrites
	if createSyncs == 0 {
		t.Fatal("create synced no ordered metadata")
	}
	if _, err := f.WriteAt(kernel.FillBytes(1000, 3), 0); err != nil {
		t.Fatal(err)
	}
	if m.FS.Stats.SyncWrites != createSyncs {
		t.Fatalf("size-growing write synced metadata (%d -> %d)",
			createSyncs, m.FS.Stats.SyncWrites)
	}
	f.Close()
}

func TestUFSNonSequentialWriteFlushes(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	f, _ := m.FS.Create("/f")
	f.WriteAt(kernel.FillBytes(1000, 1), 0)
	async := m.FS.Stats.AsyncWrites
	// Non-sequential write triggers the async flush of accumulated data.
	f.WriteAt(kernel.FillBytes(1000, 2), 50000)
	if m.FS.Stats.AsyncWrites == async {
		t.Fatal("non-sequential write did not trigger async write-back")
	}
	f.Close()
}

func TestUFSThresholdFlush(t *testing.T) {
	m := boot(t, fs.PolicyUFS)
	f, _ := m.FS.Create("/f")
	async := m.FS.Stats.AsyncWrites
	// Sequential writes accumulate; crossing 64 KB flushes.
	var off int64
	for i := 0; i < 10; i++ {
		f.WriteAt(kernel.FillBytes(fs.BlockSize, uint64(i+1)), off)
		off += fs.BlockSize
	}
	if m.FS.Stats.AsyncWrites == async {
		t.Fatal("64KB threshold never triggered")
	}
	f.Close()
}

func TestElapsedMonotonicAcrossPolicies(t *testing.T) {
	for _, kind := range []fs.PolicyKind{fs.PolicyMFS, fs.PolicyUFS, fs.PolicyRio, fs.PolicyAdvFS} {
		m := boot(t, kind)
		last := m.Engine.Clock.Now()
		for i := 0; i < 30; i++ {
			writeFile(t, m, "/f"+itoa(i), kernel.FillBytes(1000, uint64(i+1)))
			now := m.Engine.Clock.Now()
			if now < last {
				t.Fatalf("%v: time went backwards", kind)
			}
			last = now
		}
	}
}

func TestPendingDrainOnSyncRead(t *testing.T) {
	// A sync read after queued async writes must see their content
	// (device-order preservation).
	m := boot(t, fs.PolicyUFSDelayed)
	data := kernel.FillBytes(fs.BlockSize, 5)
	writeFile(t, m, "/f", data)
	m.Engine.Clock.Advance(31 * sim.Second) // daemon queues
	m.Engine.RunUntil(m.Engine.Clock.Now())
	if err := m.FS.DropCaches(); err != nil { // forces sync writes + read path
		t.Fatal(err)
	}
	if got := readFile(t, m, "/f"); !bytes.Equal(got, data) {
		t.Fatal("sync read missed queued content")
	}
}
