package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// TestRequestSizeExact pins RequestSize to the encoder for every defined
// op, with every variable-length field populated at assorted lengths: a
// cold AppendRequest presized by RequestSize must never grow.
func TestRequestSizeExact(t *testing.T) {
	for op := OpInvalid + 1; op < opMax; op++ {
		for _, shape := range []*Request{
			{ID: 1, Op: op, Shard: -1},
			{ID: 2, Op: op, Shard: 3, Offset: -1, Len: 8192, Txn: 7 << 32, Path: "/a"},
			{ID: 3, Op: op, Shard: -1, Path: "/deep/path/of/moderate/length", Path2: "/elsewhere",
				Data: bytes.Repeat([]byte{0xA5}, 3000)},
			{ID: 4, Op: op, Shard: -1, Path: string(bytes.Repeat([]byte{'p'}, MaxPath)),
				Path2: string(bytes.Repeat([]byte{'q'}, MaxPath)), Data: make([]byte, MaxData)},
		} {
			enc := AppendRequest(nil, shape)
			if got, want := RequestSize(shape), len(enc); got != want {
				t.Fatalf("op %v: RequestSize %d, encoded %d bytes", op, got, want)
			}
		}
	}
}

// TestResponseSizeExact does the same for every defined status.
func TestResponseSizeExact(t *testing.T) {
	for st := StatusOK; st < statusMax; st++ {
		for _, shape := range []*Response{
			{ID: 1, Status: st},
			{ID: 2, Status: st, Flags: FlagDir, Size: 1 << 40, Msg: "typed detail"},
			{ID: 3, Status: st, Data: bytes.Repeat([]byte{7}, 8192)},
			{ID: 4, Status: st, Data: make([]byte, MaxData),
				Msg: string(bytes.Repeat([]byte{'m'}, MaxMsg))},
		} {
			enc := AppendResponse(nil, shape)
			if got, want := ResponseSize(shape), len(enc); got != want {
				t.Fatalf("status %v: ResponseSize %d, encoded %d bytes", st, got, want)
			}
		}
	}
}

// TestAppendGrowsOnce: an append into a buffer with no spare capacity
// reallocates exactly once (grow reserves the exact need up front), and
// an append into a presized buffer does not reallocate at all.
func TestAppendGrowsOnce(t *testing.T) {
	r := &Response{ID: 9, Status: StatusOK, Data: make([]byte, 300000)}
	presized := make([]byte, 0, ResponseSize(r))
	out := AppendResponse(presized, r)
	if &out[0] != &presized[:1][0] {
		t.Fatal("presized append reallocated")
	}
	req := &Request{ID: 9, Op: OpWrite, Shard: -1, Path: "/k", Data: make([]byte, 300000)}
	preq := make([]byte, 0, RequestSize(req))
	rout := AppendRequest(preq, req)
	if &rout[0] != &preq[:1][0] {
		t.Fatal("presized request append reallocated")
	}
}

// TestAppendResponseFrame: the framed encoding is the length prefix plus
// exactly the AppendResponse bytes, and packing several frames into one
// buffer keeps each decodable in sequence.
func TestAppendResponseFrame(t *testing.T) {
	rs := []*Response{
		{ID: 1, Status: StatusOK, Size: 7, Data: []byte("payload")},
		{ID: 2, Status: StatusNotFound, Msg: "gone"},
		{ID: 3, Status: StatusOK},
	}
	var buf []byte
	for _, r := range rs {
		buf = AppendResponseFrame(buf, r)
	}
	for _, want := range rs {
		n := binary.BigEndian.Uint32(buf[:4])
		if int(n) != ResponseSize(want) {
			t.Fatalf("frame length %d, want %d", n, ResponseSize(want))
		}
		got, err := DecodeResponse(buf[4 : 4+n])
		if err != nil {
			t.Fatal(err)
		}
		if want.Data == nil {
			want.Data = got.Data
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("packed frame decode:\n got %+v\nwant %+v", got, want)
		}
		buf = buf[4+n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after packed frames", len(buf))
	}
}

// TestReserveResponseFrame: a frame whose data region is reserved first
// and filled afterwards decodes identically to the ordinary encoding of
// the same response with that data.
func TestReserveResponseFrame(t *testing.T) {
	payload := bytes.Repeat([]byte{0xC3, 0x11}, 4100)
	r := &Response{ID: 77, Status: StatusOK, Size: 12345}
	buf, off := ReserveResponseFrame(nil, r, len(payload))
	copy(buf[off:off+len(payload)], payload)

	n := binary.BigEndian.Uint32(buf[:4])
	if int(n) != len(buf)-4 {
		t.Fatalf("frame declares %d payload bytes, buffer holds %d", n, len(buf)-4)
	}
	got, err := DecodeResponse(buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	want := &Response{ID: 77, Status: StatusOK, Size: 12345, Data: payload}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reserved frame decode:\n got %+v\nwant %+v", got, want)
	}

	// Equivalence with the one-shot encoder, byte for byte.
	direct := AppendResponseFrame(nil, want)
	if !bytes.Equal(buf, direct) {
		t.Fatal("reserved-then-filled frame differs from AppendResponseFrame encoding")
	}

	// A zero-length reservation is a complete, decodable frame as-is.
	zbuf, zoff := ReserveResponseFrame(nil, &Response{ID: 5, Status: StatusAgain, Msg: "retry"}, 0)
	if zoff != len(zbuf)-2-len("retry") {
		t.Fatalf("zero reserve offset %d in %d-byte frame", zoff, len(zbuf))
	}
	zgot, err := DecodeResponse(zbuf[4:])
	if err != nil || zgot.Status != StatusAgain || zgot.Msg != "retry" {
		t.Fatalf("zero-reserve decode: %+v, %v", zgot, err)
	}
}
