package server

import (
	"bytes"
	"net"
	"testing"
	"time"

	"rio/internal/wire"
)

// TestTCPTransport runs the full wire path: listener, frames, codec,
// shard execution, response frames.
func TestTCPTransport(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Seed: 7})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.Serve(ln)

	cl, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	payload := bytes.Repeat([]byte("rio"), 100)
	resp, err := cl.Do(&wire.Request{ID: 1, Op: wire.OpWrite, Shard: -1, Path: "/tcp", Data: payload})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("write over tcp: %v %+v", err, resp)
	}
	resp, err = cl.Do(&wire.Request{ID: 2, Op: wire.OpRead, Shard: -1, Path: "/tcp"})
	if err != nil || resp.Status != wire.StatusOK || !bytes.Equal(resp.Data, payload) {
		t.Fatalf("read over tcp: %v %+v", err, resp)
	}
	if resp.ID != 2 {
		t.Fatalf("response ID = %d, want 2", resp.ID)
	}
	// Typed errors cross the wire typed.
	resp, err = cl.Do(&wire.Request{ID: 3, Op: wire.OpRead, Shard: -1, Path: "/missing"})
	if err != nil || resp.Status != wire.StatusNotFound {
		t.Fatalf("missing over tcp: %v %+v", err, resp)
	}

	// A second connection works concurrently with the first.
	cl2, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	resp, err = cl2.Do(&wire.Request{ID: 4, Op: wire.OpStat, Shard: -1, Path: "/tcp"})
	if err != nil || resp.Status != wire.StatusOK || resp.Size != int64(len(payload)) {
		t.Fatalf("stat on second conn: %v %+v", err, resp)
	}
}

// TestTCPBadFrameClosesConn: a frame that does not decode gets a typed
// refusal and the stream ends.
func TestTCPBadFrameClosesConn(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Seed: 7})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn, wire.MaxFrame)
	if err != nil {
		t.Fatalf("expected a refusal response, got %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil || resp.Status != wire.StatusInvalid {
		t.Fatalf("refusal: %v %+v", err, resp)
	}
	// The server hangs up after a bad frame.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(conn, wire.MaxFrame); err == nil {
		t.Fatal("connection stayed open after a bad frame")
	}
}

// fakeClient scripts a status sequence for retry testing.
type fakeClient struct {
	statuses []wire.Status
	calls    int
}

func (f *fakeClient) Do(req *wire.Request) (*wire.Response, error) {
	st := f.statuses[len(f.statuses)-1]
	if f.calls < len(f.statuses) {
		st = f.statuses[f.calls]
	}
	f.calls++
	return &wire.Response{ID: req.ID, Status: st}, nil
}
func (f *fakeClient) Close() error { return nil }

func TestRetryClientRidesOutEAGAIN(t *testing.T) {
	fc := &fakeClient{statuses: []wire.Status{wire.StatusAgain, wire.StatusAgain, wire.StatusOK}}
	rc := &RetryClient{C: fc, Pol: RetryPolicy{MaxRetries: 5, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}}
	resp, err := rc.Do(&wire.Request{ID: 1, Op: wire.OpSync})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("got %v %+v", err, resp)
	}
	if fc.calls != 3 || rc.Stats.Retries != 2 || rc.Stats.Exhausted != 0 {
		t.Fatalf("calls=%d stats=%+v", fc.calls, rc.Stats)
	}
}

func TestRetryClientExhausts(t *testing.T) {
	fc := &fakeClient{statuses: []wire.Status{wire.StatusAgain}}
	rc := &RetryClient{C: fc, Pol: RetryPolicy{MaxRetries: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}}
	resp, err := rc.Do(&wire.Request{ID: 1, Op: wire.OpSync})
	if err != nil || resp.Status != wire.StatusAgain {
		t.Fatalf("got %v %+v", err, resp)
	}
	if fc.calls != 4 || rc.Stats.Exhausted != 1 {
		t.Fatalf("calls=%d stats=%+v", fc.calls, rc.Stats)
	}
}

func TestRetryClientPassesThroughNonRetryable(t *testing.T) {
	fc := &fakeClient{statuses: []wire.Status{wire.StatusNotFound}}
	rc := &RetryClient{C: fc, Pol: DefaultRetryPolicy()}
	resp, _ := rc.Do(&wire.Request{ID: 1, Op: wire.OpStat, Path: "/x"})
	if resp.Status != wire.StatusNotFound || fc.calls != 1 {
		t.Fatalf("calls=%d resp=%+v", fc.calls, resp)
	}
}
