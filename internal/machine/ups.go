package machine

import (
	"fmt"

	"rio/internal/disk"
	"rio/internal/sim"
)

// The paper's §1 dismisses power outages in one sentence: "A $119
// uninterruptible power supply can keep a system running long enough to
// dump memory to disk in the event of a power outage." This file is that
// sentence, executable: a swap disk, a UPS-triggered dump, and recovery
// that reuses the ordinary warm-reboot restore on the saved image.

// AttachSwap adds a swap disk large enough to hold a full memory dump.
// Returns an error if one is already attached.
func (m *Machine) AttachSwap(params disk.Params) error {
	if m.Swap != nil {
		return fmt.Errorf("machine: swap disk already attached")
	}
	m.Swap = disk.New(m.Mem.Size(), params)
	return nil
}

// PowerFail simulates a power outage. With a swap disk attached, the UPS
// holds the machine up while it dumps all of physical memory to swap (the
// returned duration is the dump's disk time — what the UPS battery must
// cover); then power is lost and memory contents are destroyed. Without a
// swap disk, memory is simply lost.
//
// The dump is sequential, so even a 1996 disk absorbs it at full media
// rate: 128 MB at 5 MB/s is under 30 seconds of battery.
func (m *Machine) PowerFail(scrambleSeed uint64) (sim.Duration, error) {
	var dumpTime sim.Duration
	if m.Swap != nil {
		dump := m.Mem.Dump()
		// One big sequential write, sector by sector for the latency
		// model; contents via Commit.
		dumpTime = m.Swap.AccessTime(0, len(dump))
		m.Swap.Commit(0, dump)
	}
	// Power is gone: the disk queue dies with the machine...
	if m.Kernel.Crashed() == nil {
		m.Kernel.Panic("power failure")
	}
	m.FS.CrashIO(m.Rng)
	// ...and then so does memory.
	m.Mem.Scramble(scrambleSeed)
	return dumpTime, nil
}

// ReadSwapDump reads back the memory image the UPS saved.
func (m *Machine) ReadSwapDump() ([]byte, error) {
	if m.Swap == nil {
		return nil, fmt.Errorf("machine: no swap disk attached")
	}
	dump := make([]byte, m.Mem.Size())
	m.Swap.Read(0, dump)
	return dump, nil
}
