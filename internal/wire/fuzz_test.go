package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest is the serving edge's safety net, mirroring
// registry.FuzzParse on the recovery edge: DecodeRequest consumes bytes
// straight off a TCP socket from an arbitrary peer and must be total —
// any input either decodes to a well-formed request or returns an
// error. It must never Go-panic, and a lying length prefix must never
// make it allocate past the frame it was handed.
func FuzzDecodeRequest(f *testing.F) {
	for _, r := range []*Request{
		{ID: 1, Op: OpOpen, Shard: -1, Path: "/a"},
		{ID: 2, Op: OpRead, Shard: -1, Offset: 8192, Len: 512, Path: "/bench/k7"},
		{ID: 3, Op: OpWrite, Shard: -1, Offset: -1, Path: "/f", Data: []byte("data")},
		{ID: 4, Op: OpMv, Shard: -1, Path: "/a", Path2: "/b"},
		{ID: 5, Op: OpCrash, Shard: 3},
		{ID: 6, Op: OpTxnBegin, Shard: -1, Path: "/t"},
		{ID: 7, Op: OpWrite, Shard: -1, Txn: 1<<32 | 9, Path: "/t", Data: []byte("staged")},
		{ID: 8, Op: OpTxnCommit, Shard: -1, Txn: 1<<32 | 9},
		{ID: 9, Op: OpTxnAbort, Shard: -1, Txn: 2<<32 | 4},
		{ID: 10, Op: OpReplBatch, Shard: 2, Data: []byte("\x00\x01fleet batch payload")},
		{ID: 11, Op: OpReplPull, Shard: 2, Offset: 41},
		{ID: 12, Op: OpSnapshot, Shard: 0, Offset: 1 << 19},
		{ID: 13, Op: OpHeartbeat, Shard: -1, Data: []byte("routing table bytes")},
	} {
		f.Add(AppendRequest(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data) // must return, never panic
		if err != nil {
			return
		}
		// No over-allocation: everything the decoder materialised came
		// out of the input, so it can never exceed the input's length.
		if len(r.Path)+len(r.Path2)+len(r.Data) > len(data) {
			t.Fatalf("decoded fields total %d bytes from a %d-byte input",
				len(r.Path)+len(r.Path2)+len(r.Data), len(data))
		}
		if len(r.Path) > MaxPath || len(r.Path2) > MaxPath || len(r.Data) > MaxData {
			t.Fatalf("decoded field exceeds protocol limit: path %d path2 %d data %d",
				len(r.Path), len(r.Path2), len(r.Data))
		}
		if !r.Op.Valid() {
			t.Fatalf("decoder accepted invalid op %d", uint8(r.Op))
		}
		// A successful decode must re-encode to the identical bytes
		// (the encoding is canonical), and the input must have been
		// consumed exactly.
		if re := AppendRequest(nil, r); !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeResponse gives the client-side decoder the same guarantee.
func FuzzDecodeResponse(f *testing.F) {
	for _, r := range []*Response{
		{ID: 1, Status: StatusOK, Size: 10, Data: []byte("payload")},
		{ID: 2, Status: StatusNotFound, Msg: "nope"},
		{ID: 3, Status: StatusMoved, Msg: "127.0.0.1:8002"},
		{ID: 4, Status: StatusTimeout, Msg: "drain timeout"},
		{ID: 5, Status: StatusAgain, Size: 17, Msg: "replica behind: applied 17"},
	} {
		f.Add(AppendResponse(nil, r))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x41}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResponse(data)
		if err != nil {
			return
		}
		if len(r.Data)+len(r.Msg) > len(data) {
			t.Fatalf("decoded fields total %d bytes from a %d-byte input",
				len(r.Data)+len(r.Msg), len(data))
		}
		if re := AppendResponse(nil, r); !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, re)
		}
	})
}
