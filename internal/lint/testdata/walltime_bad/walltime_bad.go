// Package sim is a walltime violating fixture: the motivating bug shape
// is host time read inside a simulation package, where it silently makes
// outcomes depend on the machine instead of the seed.
package sim

import (
	"math/rand" // want walltime "math/rand"
	"time"
)

type event struct {
	at int64
}

// stamp reads the host clock for a simulated event timestamp.
func stamp() event {
	t := time.Now() // want walltime "time.Now"
	return event{at: t.UnixNano()}
}

// jitter draws host randomness and blocks the simulation on host time.
func jitter() int64 {
	d := rand.Int63n(1000)
	time.Sleep(time.Duration(d)) // want walltime "time.Sleep"
	return d
}

// age measures a simulated duration against the host clock.
func age(e event) time.Duration {
	return time.Since(time.Unix(0, e.at)) // want walltime "time.Since"
}
