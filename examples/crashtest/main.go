// Crashtest: watch Rio's protection catch a wild kernel store.
//
// Two identical machines get the paper's "copy overrun" fault — the kernel
// bcopy occasionally copies extra bytes past the end of its target buffer,
// straight toward neighbouring file-cache pages. On the unprotected
// machine the overrun lands silently and the registry checksums expose the
// damage at warm reboot. On the protected machine the first illegal store
// trips the MMU and halts the system before any file data changes.
//
// Run: go run ./examples/crashtest
package main

import (
	"fmt"
	"log"

	"rio"
)

func run(policy rio.Policy) {
	fmt.Printf("--- %s ---\n", policy)
	sys, err := rio.New(rio.Config{
		Policy:      policy,
		Interpreted: true, // faults act on interpreted kernel code
		Seed:        123,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A file set for the overrun to threaten.
	if err := sys.Mkdir("/data"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		path := fmt.Sprintf("/data/file%02d", i)
		// Block-sized files: copies that end exactly at a page boundary
		// are the ones a one-byte overrun pushes into the next frame.
		payload := make([]byte, 8192)
		for j := range payload {
			payload[j] = byte(i)
		}
		if err := sys.WriteFile(path, payload); err != nil {
			log.Fatal(err)
		}
	}

	if err := sys.InjectFault(rio.FaultCopyOverrun); err != nil {
		log.Fatal(err)
	}
	fmt.Println("copy-overrun fault armed; running file traffic until the machine dies...")

	ops := 0
	for ; ops < 5000; ops++ {
		path := fmt.Sprintf("/data/file%02d", ops%12)
		payload := make([]byte, 8192*(1+ops%2))
		for j := range payload {
			payload[j] = byte(ops % 12)
		}
		_ = sys.WriteFile(path, payload)
		if crashed, _ := sys.Crashed(); crashed {
			break
		}
	}
	crashed, why := sys.Crashed()
	if crashed {
		fmt.Printf("crashed after %d operations: %s\n", ops+1, why)
	} else {
		// Without protection a wild store often leaves the system
		// *running* — the paper notes such faults simply propagate.
		// Halt it ourselves and audit the file cache.
		fmt.Println("machine limped through the whole run; halting to audit the file cache")
	}
	sys.Crash("finalize") // resolve crash-time disk state
	rep, err := sys.WarmReboot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm reboot: %d buffers restored, %d checksum mismatches\n",
		rep.MetaRestored+rep.DataRestored, rep.ChecksumMismatches)
	if rep.ChecksumMismatches > 0 {
		fmt.Println("=> direct corruption reached the file cache (no protection)")
	} else {
		fmt.Println("=> file cache intact")
	}
	fmt.Println()
}

func main() {
	// Without protection the overrun can silently corrupt file pages;
	// with protection the MMU halts the machine at the first illegal
	// store (the paper logged 6 such invocations for copy overrun).
	run(rio.PolicyRioNoProtect)
	run(rio.PolicyRio)
}
