// Command riolint runs the repo's static-analysis suite: eight analyzers
// enforcing the determinism, protection-discipline, commit-ordering,
// buffer-aliasing, replication-ordering, and wire-bounds invariants the
// compiler cannot see (see internal/lint and DESIGN.md "Enforced
// invariants"). The interprocedural analyzers (bufalias, replorder,
// wirebounds) share a module-wide call graph and per-function dataflow
// summaries built once per run.
//
// Usage:
//
//	riolint [flags] [patterns]
//
// Patterns are package directories relative to the module root:
// "./..." (default) lints every package, "./internal/..." a subtree,
// "./internal/cache" one package. A pattern naming a directory outside
// the module's package graph (e.g. a fixture under testdata) is loaded
// as a standalone package.
//
// Flags:
//
//	-json        emit findings plus per-analyzer wall time as JSON
//	-tests       include in-package _test.go files
//	-maporder, -walltime, -protpair, -seedflow, -commitorder,
//	-bufalias, -replorder, -wirebounds
//	             enable/disable individual analyzers (all default true)
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rio/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	tests := flag.Bool("tests", false, "include in-package _test.go files")
	enabled := map[string]*bool{}
	for _, a := range lint.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+a.Doc+")")
	}
	flag.Parse()

	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}

	loader := lint.NewLoader()
	loader.IncludeTests = *tests
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		return fail(err)
	}

	selected, err := selectPackages(loader, root, cwd, pkgs, patterns)
	if err != nil {
		return fail(err)
	}

	diags, times := lint.RunTimed(loader.Fset, selected, analyzers)
	// Print file paths relative to the working directory, as go vet does.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		type jsonTime struct {
			Analyzer string  `json:"analyzer"`
			Millis   float64 `json:"millis"`
		}
		type jsonReport struct {
			Findings []jsonDiag `json:"findings"`
			Timings  []jsonTime `json:"timings"`
		}
		out := jsonReport{Findings: make([]jsonDiag, 0, len(diags)), Timings: make([]jsonTime, 0, len(times))}
		for _, d := range diags {
			out.Findings = append(out.Findings, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		for _, tm := range times {
			out.Timings = append(out.Timings, jsonTime{tm.Name, float64(tm.Elapsed.Microseconds()) / 1000})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "riolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// selectPackages resolves the CLI patterns against the loaded module
// packages, falling back to standalone directory loads for paths outside
// the module graph (testdata fixtures).
func selectPackages(loader *lint.Loader, root, cwd string, pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	byDir := make(map[string]*lint.Package, len(pkgs))
	for _, p := range pkgs {
		byDir[p.Dir] = p
	}
	var out []*lint.Package
	seen := make(map[*lint.Package]bool)
	add := func(p *lint.Package) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base, err := filepath.Abs(filepath.Join(cwd, strings.TrimSuffix(pat, "/...")))
			if err != nil {
				return nil, err
			}
			n := 0
			for _, p := range pkgs {
				if p.Dir == base || strings.HasPrefix(p.Dir, base+string(filepath.Separator)) {
					add(p)
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("riolint: pattern %q matches no packages", pat)
			}
		default:
			dir, err := filepath.Abs(filepath.Join(cwd, pat))
			if err != nil {
				return nil, err
			}
			if p, ok := byDir[dir]; ok {
				add(p)
				continue
			}
			if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
				p, err := loader.LoadDir(dir)
				if err != nil {
					return nil, err
				}
				add(p)
				continue
			}
			return nil, fmt.Errorf("riolint: pattern %q matches no package directory", pat)
		}
	}
	return out, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 2
}
