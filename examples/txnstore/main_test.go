package main

import (
	"fmt"
	"testing"

	"rio"
)

// commitOracle commits n puts with deterministic keys/values and
// returns the raw WAL bytes plus the expected table after each record
// count (oracle[i] = table after i records).
func commitOracle(t *testing.T, n int) ([]byte, []map[string]string) {
	t.Helper()
	sys, err := rio.New(rio.Config{Policy: rio.PolicyRio})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(sys)
	if err != nil {
		t.Fatal(err)
	}
	oracle := []map[string]string{{}}
	cur := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%02d", i%4) // overwrites exercise replay order
		v := fmt.Sprintf("value-%04d", i)
		if err := store.Commit(k, v); err != nil {
			t.Fatal(err)
		}
		cur[k] = v
		snap := map[string]string{}
		for kk, vv := range cur {
			snap[kk] = vv
		}
		oracle = append(oracle, snap)
	}
	wal, err := sys.ReadFile("/wal")
	if err != nil {
		t.Fatal(err)
	}
	return wal, oracle
}

func recoverFromBytes(t *testing.T, wal []byte) (*Store, int, int) {
	t.Helper()
	sys, err := rio.New(rio.Config{Policy: rio.PolicyRio})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteFile("/wal", wal); err != nil {
		t.Fatal(err)
	}
	s, records, torn, err := Recover(sys)
	if err != nil {
		t.Fatal(err)
	}
	return s, records, torn
}

// A log truncated at every possible byte offset — every torn-write
// crash shape — must recover to exactly the complete prefix of
// records: the torn tail is discarded (it was never acked), and no
// partial or corrupt value is ever surfaced. This is the regression
// test for the bug where recovery split on newlines and happily
// installed the torn half of a record as a real value.
func TestRecoverTruncatedAtEveryOffset(t *testing.T) {
	const n = 12
	wal, oracle := commitOracle(t, n)

	// Frame boundaries: prefix[i] = bytes holding exactly i records.
	boundaries := []int{0}
	for off := 0; off < len(wal); {
		plen := int(wal[off])<<24 | int(wal[off+1])<<16 | int(wal[off+2])<<8 | int(wal[off+3])
		off += walHeader + plen
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != n+1 || boundaries[n] != len(wal) {
		t.Fatalf("frame walk found %d records in %d bytes", len(boundaries)-1, len(wal))
	}

	for cut := 0; cut <= len(wal); cut++ {
		s, records, torn := recoverFromBytes(t, wal[:cut])
		// records must be the largest i with boundaries[i] <= cut.
		want := 0
		for i, b := range boundaries {
			if b <= cut {
				want = i
			}
		}
		if records != want {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, records, want)
		}
		if got := cut - boundaries[want]; torn != got {
			t.Fatalf("cut=%d: torn=%d bytes, want %d", cut, torn, got)
		}
		if len(s.kv) != len(oracle[want]) {
			t.Fatalf("cut=%d: %d keys, want %d", cut, len(s.kv), len(oracle[want]))
		}
		for k, v := range oracle[want] {
			if s.kv[k] != v {
				t.Fatalf("cut=%d: kv[%q] = %q, want %q (unacked or torn value surfaced)",
					cut, k, s.kv[k], v)
			}
		}
	}
}

// A tail that is long enough but corrupt (bit flipped anywhere in the
// last record) must also be discarded, not replayed.
func TestRecoverDiscardsCorruptTail(t *testing.T) {
	const n = 5
	wal, oracle := commitOracle(t, n)
	// Find the last frame's start.
	start := 0
	for off := 0; off < len(wal); {
		start = off
		plen := int(wal[off])<<24 | int(wal[off+1])<<16 | int(wal[off+2])<<8 | int(wal[off+3])
		off += walHeader + plen
	}
	for i := start; i < len(wal); i++ {
		mut := append([]byte(nil), wal...)
		mut[i] ^= 0x40
		s, records, _ := recoverFromBytes(t, mut)
		// Flipping a length byte can make the frame read as short or
		// absurdly long; either way the tail must not replay, and the
		// intact prefix must.
		if records != n-1 {
			t.Fatalf("flip at %d: replayed %d records, want %d", i, records, n-1)
		}
		for k, v := range oracle[n-1] {
			if s.kv[k] != v {
				t.Fatalf("flip at %d: kv[%q] = %q, want %q", i, k, s.kv[k], v)
			}
		}
	}
}

// The WAL-free store's commits are atomic across a crash: after warm
// reboot plus txn roll-forward, a two-key transfer is all-or-nothing.
func TestTxnStoreSurvivesCrash(t *testing.T) {
	sys, err := rio.New(rio.Config{Policy: rio.PolicyRio})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenTxnStore(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		err := store.Commit(map[string]string{
			"alice": fmt.Sprintf("%d", 100-i),
			"bob":   fmt.Sprintf("%d", 100+i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sys.Crash("test crash")
	if _, err := sys.WarmReboot(); err != nil {
		t.Fatal(err)
	}
	if _, err := txnRecover(sys); err != nil {
		t.Fatal(err)
	}
	a, err := store.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Get("bob")
	if err != nil {
		t.Fatal(err)
	}
	if a != "71" || b != "129" {
		t.Fatalf("transfer torn: alice=%s bob=%s", a, b)
	}
}
