package crashtest

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"rio/internal/fault"
	"rio/internal/kernel"
)

// CampaignConfig parameterises a full Table 1 campaign.
type CampaignConfig struct {
	// Seed drives the whole campaign; the same seed reproduces the same
	// table.
	Seed uint64
	// RunsPerCell is the number of *crashing* runs per (system, fault)
	// cell. The paper used 50, discarding runs that did not crash.
	RunsPerCell int
	// MaxAttemptsFactor bounds attempts per cell at RunsPerCell × factor
	// (some fault types crash rarely).
	MaxAttemptsFactor int
	// Run is the per-run configuration template (its Seed is overridden).
	Run RunConfig
	// Progress, if non-nil, receives a line per completed cell.
	Progress func(string)
}

// DefaultCampaignConfig mirrors the paper's protocol at 50 runs/cell.
func DefaultCampaignConfig(seed uint64) CampaignConfig {
	return CampaignConfig{
		Seed:              seed,
		RunsPerCell:       50,
		MaxAttemptsFactor: 6,
		Run:               DefaultRunConfig(0),
	}
}

// Cell aggregates one (system, fault) cell of Table 1.
type Cell struct {
	Crashes    int // runs that crashed (counted toward RunsPerCell)
	Discarded  int // runs that survived MaxOps (discarded, as in paper)
	Corrupted  int // crashing runs with corrupted durable data
	Checksum   int // corruptions (or intact runs) flagged by checksums
	Protection int // crashes where Rio protection trapped the store
	ByKind     map[kernel.CrashKind]int
	Errors     int // harness errors (should be zero)
	LastError  string
}

// Report is a full campaign result.
type Report struct {
	Config CampaignConfig
	Cells  map[System]map[fault.Type]*Cell
}

// Totals sums a system's column.
func (r *Report) Totals(sys System) (crashes, corrupted int) {
	for _, c := range r.Cells[sys] {
		crashes += c.Crashes
		corrupted += c.Corrupted
	}
	return
}

// ProtectionInvocations counts protection-trap crashes for a system.
func (r *Report) ProtectionInvocations(sys System) int {
	n := 0
	for _, c := range r.Cells[sys] {
		n += c.Protection
	}
	return n
}

// RunCampaign executes the full crash matrix.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	rep := &Report{
		Config: cfg,
		Cells:  make(map[System]map[fault.Type]*Cell),
	}
	seed := cfg.Seed
	for _, sys := range Systems {
		rep.Cells[sys] = make(map[fault.Type]*Cell)
		for _, ft := range fault.AllTypes {
			cell := &Cell{ByKind: make(map[kernel.CrashKind]int)}
			rep.Cells[sys][ft] = cell
			attempts := 0
			maxAttempts := cfg.RunsPerCell * cfg.MaxAttemptsFactor
			for cell.Crashes < cfg.RunsPerCell && attempts < maxAttempts {
				attempts++
				seed++
				run := cfg.Run
				run.Seed = seed*2654435761 + uint64(sys)<<32 + uint64(ft)<<40
				// Memory tripwire: a faulted simulator can, in principle,
				// drive some path into pathological allocation. Surface
				// the run rather than letting the OS OOM-kill a campaign.
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > 4<<30 {
					return rep, fmt.Errorf("crashtest: heap ballooned to %d MB before run sys=%v fault=%v seed=%d",
						ms.HeapAlloc>>20, sys, ft, run.Seed)
				}
				res, err := RunOne(sys, ft, run)
				if err != nil {
					cell.Errors++
					cell.LastError = err.Error()
					continue
				}
				if !res.Crashed {
					cell.Discarded++
					continue
				}
				cell.Crashes++
				cell.ByKind[res.CrashKind]++
				if res.Corrupted {
					cell.Corrupted++
				}
				if res.ChecksumDetected {
					cell.Checksum++
				}
				if res.ProtectionInvoked {
					cell.Protection++
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("%-12s %-20s crashes=%d corrupted=%d discarded=%d errors=%d",
					sys, ft, cell.Crashes, cell.Corrupted, cell.Discarded, cell.Errors))
			}
		}
	}
	return rep, nil
}

// Table renders the report in the layout of the paper's Table 1.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %12s %12s\n", "Fault Type",
		"Disk-Based", "Rio w/o Prot", "Rio w/ Prot")
	for _, ft := range fault.AllTypes {
		fmt.Fprintf(&b, "%-22s", ft)
		for _, sys := range Systems {
			c := r.Cells[sys][ft]
			if c == nil || c.Corrupted == 0 {
				fmt.Fprintf(&b, " %12s", "")
			} else {
				fmt.Fprintf(&b, " %12d", c.Corrupted)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-22s", "Total")
	for _, sys := range Systems {
		crashes, corrupted := r.Totals(sys)
		pct := 0.0
		if crashes > 0 {
			pct = 100 * float64(corrupted) / float64(crashes)
		}
		fmt.Fprintf(&b, " %d of %d (%.1f%%)", corrupted, crashes, pct)
	}
	b.WriteByte('\n')
	return b.String()
}

// CrashKindBreakdown summarises how systems died (the paper cites 74
// unique error messages; we report by manifestation class).
func (r *Report) CrashKindBreakdown(sys System) string {
	agg := make(map[kernel.CrashKind]int)
	for _, c := range r.Cells[sys] {
		for k, n := range c.ByKind {
			agg[k] += n
		}
	}
	kinds := make([]kernel.CrashKind, 0, len(agg))
	for k := range agg {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return agg[kinds[i]] > agg[kinds[j]] })
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-35s %d\n", k, agg[k])
	}
	return b.String()
}

// MTTFYears converts a corruption rate into the paper's §3.3 illustration:
// with one crash every two months, MTTF (years) = 2 months / p(corruption)
// expressed in years.
func MTTFYears(corrupted, crashes int) float64 {
	if corrupted == 0 {
		return -1 // effectively unbounded at this sample size
	}
	p := float64(corrupted) / float64(crashes)
	crashesPerYear := 6.0 // one every two months
	return 1 / (p * crashesPerYear)
}
