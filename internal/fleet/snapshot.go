package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"rio"
	"rio/internal/server"
	"rio/internal/wire"
)

// Snapshots are how a replica joins from nothing: a machine revived
// after a kill has no memory, and a replica whose gap outruns the tail
// window cannot be replayed forward. The snapshot is a deterministic
// walk of the source tree — sorted DFS, fleet metadata excluded — with
// the (epoch, seq) it captures in the header, so the installer knows
// exactly which tail frames come after it.
//
// Layout: magic u32 | epoch u64 | seq u64 | nrec u32 |
//
//	nrec×(kind u8, path str16, data u32+bytes) | fnv64
const snapMagic uint32 = 0x52534E31 // "RSN1"

const (
	snapDir  = 0
	snapFile = 1
)

// buildSnapshot serializes r's tree. Caller holds r.mu.
func buildSnapshot(r *replica) ([]byte, error) {
	buf := binary.BigEndian.AppendUint32(nil, snapMagic)
	buf = binary.BigEndian.AppendUint64(buf, r.epoch)
	buf = binary.BigEndian.AppendUint64(buf, r.seq)
	nrecAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0)
	nrec := uint32(0)

	var walk func(dir string) error
	walk = func(dir string) error {
		ents, err := r.sys.ReadDir(dir)
		if err != nil {
			return err
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if reservedFleetPath(p) {
				continue
			}
			if e.IsDir {
				buf = append(buf, snapDir)
				buf = appendStr(buf, p)
				buf = binary.BigEndian.AppendUint32(buf, 0)
				nrec++
				if err := walk(p); err != nil {
					return err
				}
				continue
			}
			data, err := r.sys.ReadFile(p)
			if err != nil {
				return err
			}
			buf = append(buf, snapFile)
			buf = appendStr(buf, p)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
			buf = append(buf, data...)
			nrec++
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[nrecAt:], nrec)
	h := fnv.New64a()
	h.Write(buf)
	return binary.BigEndian.AppendUint64(buf, h.Sum64()), nil
}

// serveSnapshot returns one chunk of the replica's snapshot:
// Data = snapshot[Offset : Offset+MaxData], Size = total bytes. The
// blob is rebuilt per call; the trailing checksum is what lets a puller
// detect that writes landed between its chunks (the reassembled blob
// fails verification) and start over.
func (n *Node) serveSnapshot(req *wire.Request) *wire.Response {
	r := n.replicaFor(int(req.Shard))
	if r == nil {
		return &wire.Response{ID: req.ID, Status: wire.StatusNotFound,
			Msg: fmt.Sprintf("node %s holds no replica of shard %d", n.cfg.ID, req.Shard)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		return &wire.Response{ID: req.ID, Status: wire.StatusAgain,
			Msg: fmt.Sprintf("shard %d down (awaiting warmboot)", r.shard)}
	}
	snap, err := buildSnapshot(r)
	if err != nil {
		return &wire.Response{ID: req.ID, Status: wire.StatusIO, Msg: "snapshot: " + err.Error()}
	}
	off := req.Offset
	if off < 0 || off > int64(len(snap)) {
		return &wire.Response{ID: req.ID, Status: wire.StatusInvalid,
			Msg: fmt.Sprintf("snapshot offset %d out of range [0,%d]", off, len(snap))}
	}
	end := off + wire.MaxData
	if end > int64(len(snap)) {
		end = int64(len(snap))
	}
	n.count(func(m *NodeMetrics) { m.SnapshotsSent++ })
	return &wire.Response{ID: req.ID, Status: wire.StatusOK,
		Size: int64(len(snap)), Data: snap[off:end]}
}

// snapHeader peeks a snapshot's (epoch, seq) without a full decode.
func snapHeader(blob []byte) (epoch, seq uint64, err error) {
	if len(blob) < 24 {
		return 0, 0, fmt.Errorf("fleet: snapshot truncated (%d bytes)", len(blob))
	}
	if m := binary.BigEndian.Uint32(blob); m != snapMagic {
		return 0, 0, fmt.Errorf("fleet: bad snapshot magic %#x", m)
	}
	return binary.BigEndian.Uint64(blob[4:]), binary.BigEndian.Uint64(blob[12:]), nil
}

// InstallSnapshot replaces (or creates) the node's replica of shard
// from blob, as a backup at the snapshot's (epoch, seq). The replica
// gets a fresh machine — an installing node either lost its memory or
// diverged, and either way the snapshot is the whole truth.
func (n *Node) InstallSnapshot(shard int, blob []byte) error {
	if len(blob) < 24+8 {
		return fmt.Errorf("fleet: snapshot truncated (%d bytes)", len(blob))
	}
	body, sum := blob[:len(blob)-8], binary.BigEndian.Uint64(blob[len(blob)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return fmt.Errorf("fleet: snapshot checksum mismatch")
	}
	epoch, seq, err := snapHeader(blob)
	if err != nil {
		return err
	}
	sys, err := n.newSystem(shard)
	if err != nil {
		return err
	}
	nrec := binary.BigEndian.Uint32(body[20:])
	d := dec{buf: body[24:]}
	for i := uint32(0); i < nrec; i++ {
		kind := d.u8()
		path := d.str()
		//riolint:wirebounds a record is a whole file with no protocol maximum of its own; take bounds it by the checksummed blob's remaining bytes, themselves ≤ wire.MaxData
		data := d.take(int(d.u32()))
		if d.err != nil {
			return d.err
		}
		switch kind {
		case snapDir:
			if err := server.MkdirAll(sys, path); err != nil {
				return fmt.Errorf("fleet: snapshot mkdir %s: %w", path, err)
			}
		case snapFile:
			if err := writeWhole(sys, path, data); err != nil {
				return fmt.Errorf("fleet: snapshot write %s: %w", path, err)
			}
		default:
			return fmt.Errorf("fleet: snapshot record %d has kind %d", i, kind)
		}
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("fleet: %d trailing bytes after snapshot records", len(d.buf))
	}
	r := &replica{shard: shard, sys: sys, role: RoleBackup, epoch: epoch, seq: seq,
		suspect: make(map[string]bool)}
	if err := r.persistSeq(); err != nil {
		return err
	}
	n.mu.Lock()
	n.reps[shard] = r
	n.mu.Unlock()
	return nil
}

// writeWhole creates path (parents included) with exactly data.
func writeWhole(sys *rio.System, path string, data []byte) error {
	if err := server.MkdirAll(sys, parentOf(path)); err != nil {
		return err
	}
	return sys.WriteFile(path, data)
}

// parentOf returns path's parent directory ("/a/b" -> "/a").
func parentOf(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}
