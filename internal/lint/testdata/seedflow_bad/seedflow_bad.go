// Package seedfix is a seedflow violating fixture. nextSeeds is a
// regression-test reconstruction of the PR-1 motivating bug: a shared
// seed counter handed out consecutive seeds, so inserting one extra run
// in an early cell silently resampled every later cell, and consecutive
// seeds fed correlated state into the PRNG's seeding.
package seedfix

// nextSeeds is the seed++ chain: the PR-1 bug.
func nextSeeds(campaign uint64, runs int) []uint64 {
	seed := campaign
	var out []uint64
	for i := 0; i < runs; i++ {
		out = append(out, seed)
		seed++ // want seedflow "shared counter"
	}
	return out
}

// offsetSeed derives a run seed by adding the attempt index.
func offsetSeed(campaignSeed uint64, attempt int) uint64 {
	return campaignSeed + uint64(attempt) // want seedflow "correlated"
}

// saltedSeed derives a substream by xoring a constant.
func saltedSeed(seed uint64) uint64 {
	derived := seed ^ 0xdead // want seedflow "correlated"
	return derived
}

// advance walks a seed arithmetically between consumers.
func advance(seed *uint64) {
	*seed += 1 // want seedflow "arithmetically"
}

type runCfg struct {
	Seed uint64
}

// stride plants arithmetic into a config field.
func stride(base runCfg, i uint64) runCfg {
	var cfg runCfg
	cfg.Seed = base.Seed * i // want seedflow "arithmetic"
	return cfg
}
