package mmu

import (
	"bytes"
	"testing"
	"testing/quick"

	"rio/internal/mem"
)

func newMMU(frames int) *MMU {
	return New(mem.New(frames * mem.PageSize))
}

func TestKSEGConversions(t *testing.T) {
	if !IsKSEG(KSEGBase) || IsKSEG(KSEGBase-1) {
		t.Fatal("IsKSEG boundary wrong")
	}
	if KSEGToPhys(PhysToKSEG(12345)) != 12345 {
		t.Fatal("KSEG round trip failed")
	}
}

func TestVirtualMapAndAccess(t *testing.T) {
	u := newMMU(4)
	u.Map(10, 2, true)
	addr := uint64(10*mem.PageSize + 64)
	if trap := u.Store64(addr, 0x1122334455667788); trap != nil {
		t.Fatalf("store trapped: %v", trap)
	}
	v, trap := u.Load64(addr)
	if trap != nil || v != 0x1122334455667788 {
		t.Fatalf("load = %#x, %v", v, trap)
	}
	// Data landed in frame 2.
	if u.Mem.Word64(2*mem.PageSize+64) != 0x1122334455667788 {
		t.Fatal("data not in mapped frame")
	}
}

func TestUnmappedTrapsIllegalAddress(t *testing.T) {
	u := newMMU(2)
	_, trap := u.Load64(99 * mem.PageSize)
	if trap == nil || trap.Kind != TrapIllegalAddress {
		t.Fatalf("trap = %v", trap)
	}
	if trap.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestReadOnlyPTE(t *testing.T) {
	u := newMMU(2)
	u.Map(0, 0, false)
	if trap := u.StoreByte(8, 1); trap == nil || trap.Kind != TrapProtection {
		t.Fatalf("store to read-only page: trap = %v", trap)
	}
	if _, trap := u.LoadByte(8); trap != nil {
		t.Fatalf("load from read-only page trapped: %v", trap)
	}
}

func TestUnalignedWord(t *testing.T) {
	u := newMMU(1)
	u.Map(0, 0, true)
	if _, trap := u.Load64(3); trap == nil || trap.Kind != TrapIllegalAddress {
		t.Fatalf("unaligned load trap = %v", trap)
	}
	if trap := u.Store64(5, 1); trap == nil {
		t.Fatal("unaligned store did not trap")
	}
}

func TestKSEGBypassWithoutRioBit(t *testing.T) {
	// Stock kernel: KSEG stores bypass protection even on protected frames.
	u := newMMU(2)
	u.EnforceProtection = true
	u.Mem.Frame(1).FileCache = true
	u.SetFrameProtection(1, true)

	addr := PhysToKSEG(uint64(mem.PageSize + 8))
	if trap := u.Store64(addr, 0xbad); trap != nil {
		t.Fatalf("KSEG store should bypass protection on stock kernel: %v", trap)
	}
	if u.Mem.Word64(mem.PageSize+8) != 0xbad {
		t.Fatal("bypassing store did not land")
	}
}

func TestKSEGCheckedWithRioBit(t *testing.T) {
	u := newMMU(2)
	u.EnforceProtection = true
	u.MapAllThroughTLB = true
	u.SetFrameProtection(1, true)

	addr := PhysToKSEG(uint64(mem.PageSize + 8))
	if trap := u.Store64(addr, 0xbad); trap == nil || trap.Kind != TrapProtection {
		t.Fatalf("KSEG store to protected frame: trap = %v", trap)
	}
	// Loads are always fine.
	if _, trap := u.Load64(addr); trap != nil {
		t.Fatalf("KSEG load trapped: %v", trap)
	}
	// Opening protection admits the store.
	u.SetFrameProtection(1, false)
	if trap := u.Store64(addr, 0x600d); trap != nil {
		t.Fatalf("store after opening protection trapped: %v", trap)
	}
}

func TestCodePatchingChecksKSEG(t *testing.T) {
	u := newMMU(2)
	u.EnforceProtection = true
	u.CodePatching = true
	u.SetFrameProtection(1, true)

	addr := PhysToKSEG(uint64(mem.PageSize))
	if trap := u.StoreByte(addr, 1); trap == nil || trap.Kind != TrapProtection {
		t.Fatalf("code patching missed protected store: %v", trap)
	}
	if u.Stats.ProtChecks == 0 {
		t.Fatal("code patching did not count checks")
	}
}

func TestEnforceProtectionMasterSwitch(t *testing.T) {
	// Protection bits set but enforcement off (Rio without protection):
	// stores proceed.
	u := newMMU(2)
	u.MapAllThroughTLB = true
	u.EnforceProtection = false
	u.SetFrameProtection(1, true)
	if trap := u.StoreByte(PhysToKSEG(uint64(mem.PageSize)), 7); trap != nil {
		t.Fatalf("store trapped with enforcement off: %v", trap)
	}
}

func TestVirtualStoreToProtectedFrame(t *testing.T) {
	// A virtual mapping with a writable PTE still traps if the frame is
	// Rio-protected: frame protection overrides.
	u := newMMU(2)
	u.EnforceProtection = true
	u.Map(0, 1, true)
	u.SetFrameProtection(1, true)
	if trap := u.StoreByte(0, 1); trap == nil || trap.Kind != TrapProtection {
		t.Fatalf("trap = %v", trap)
	}
}

func TestTLBShootdownOnProtectionChange(t *testing.T) {
	u := newMMU(2)
	u.EnforceProtection = true
	u.Map(0, 1, true)
	// Prime the TLB with a writable entry.
	if trap := u.StoreByte(0, 1); trap != nil {
		t.Fatalf("priming store trapped: %v", trap)
	}
	// Protect the frame; the cached TLB entry must not let stores through.
	u.SetFrameProtection(1, true)
	if trap := u.StoreByte(1, 2); trap == nil {
		t.Fatal("stale TLB entry allowed store to protected frame")
	}
	// And unprotecting must re-enable stores.
	u.SetFrameProtection(1, false)
	if trap := u.StoreByte(2, 3); trap != nil {
		t.Fatalf("store after unprotect trapped: %v", trap)
	}
}

func TestTLBShootdownOnUnmap(t *testing.T) {
	u := newMMU(2)
	u.Map(0, 0, true)
	if _, trap := u.LoadByte(0); trap != nil {
		t.Fatal("prime failed")
	}
	u.Unmap(0)
	if _, trap := u.LoadByte(0); trap == nil {
		t.Fatal("stale TLB entry survived unmap")
	}
}

func TestTLBHitCounting(t *testing.T) {
	u := newMMU(2)
	u.Map(0, 0, true)
	u.LoadByte(0)
	u.LoadByte(1)
	u.LoadByte(2)
	if u.Stats.TLBMisses != 1 {
		t.Fatalf("TLB misses = %d, want 1", u.Stats.TLBMisses)
	}
	if u.Stats.TLBHits != 2 {
		t.Fatalf("TLB hits = %d, want 2", u.Stats.TLBHits)
	}
}

func TestReadWriteBytesAcrossPages(t *testing.T) {
	u := newMMU(4)
	u.Map(0, 2, true)
	u.Map(1, 0, true) // discontiguous frames
	u.Map(2, 3, true)
	data := make([]byte, mem.PageSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	start := uint64(mem.PageSize - 50)
	if trap := u.WriteBytes(start, data); trap != nil {
		t.Fatalf("WriteBytes trapped: %v", trap)
	}
	got := make([]byte, len(data))
	if trap := u.ReadBytes(start, got); trap != nil {
		t.Fatalf("ReadBytes trapped: %v", trap)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}
}

func TestWriteBytesPartialTrap(t *testing.T) {
	u := newMMU(2)
	u.Map(0, 0, true) // page 1 unmapped
	data := make([]byte, 2*mem.PageSize)
	trap := u.WriteBytes(0, data)
	if trap == nil || trap.Kind != TrapIllegalAddress {
		t.Fatalf("trap = %v", trap)
	}
}

func TestKSEGOutOfRange(t *testing.T) {
	u := newMMU(1)
	_, trap := u.LoadByte(PhysToKSEG(uint64(4 * mem.PageSize)))
	if trap == nil || trap.Kind != TrapIllegalAddress {
		t.Fatalf("trap = %v", trap)
	}
}

func TestStatsCounting(t *testing.T) {
	u := newMMU(2)
	u.Map(0, 0, true)
	u.StoreByte(0, 1)
	u.LoadByte(0)
	u.StoreByte(PhysToKSEG(uint64(mem.PageSize)), 2)
	u.LoadByte(PhysToKSEG(uint64(mem.PageSize)))
	s := u.Stats
	if s.VirtStores != 1 || s.VirtLoads != 1 || s.KSEGStores != 1 || s.KSEGLoads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTranslateProperty(t *testing.T) {
	// Round-trip property: any mapped virtual byte store is readable back
	// through the same address and lands in the mapped frame.
	u := newMMU(8)
	for p := 0; p < 8; p++ {
		u.Map(uint64(p), 7-p, true)
	}
	f := func(off uint32, val byte) bool {
		addr := uint64(off) % (8 * mem.PageSize)
		if trap := u.StoreByte(addr, val); trap != nil {
			return false
		}
		got, trap := u.LoadByte(addr)
		return trap == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapBadFramePanics(t *testing.T) {
	u := newMMU(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Map to bad frame did not panic")
		}
	}()
	u.Map(0, 5, true)
}

func TestFlushTLB(t *testing.T) {
	u := newMMU(1)
	u.Map(0, 0, true)
	u.LoadByte(0)
	u.FlushTLB()
	before := u.Stats.TLBMisses
	u.LoadByte(0)
	if u.Stats.TLBMisses != before+1 {
		t.Fatal("FlushTLB did not invalidate entries")
	}
}
