package fs

import "container/list"

// The name-resolution cache (dcache) maps (directory inode, name) to the
// child's inode number so resolve does not re-read directory blocks for
// every path component — the same trade Digital Unix made with its namei
// cache. It is *simulated* cache state: it lives on the mounted FS, so a
// crash or warm reboot drops it wholesale (Mount builds a fresh one), and
// the two dirent mutators (dirInsert, dirRemove) keep it coherent — there
// is no other writer of directory entries on a mounted file system.
//
// Entries are keyed by the parent's inode number, not its path, so a
// rename of an ancestor directory does not stale them. The cache is
// bounded by an LRU list with deterministic eviction order; all map
// accesses are by exact key (no iteration), keeping riolint's
// determinism discipline trivially satisfied.

// dcacheCap bounds the cache. 1024 entries covers the benchmark trees
// and the crash-campaign workloads without letting a pathological
// workload grow the map unboundedly.
const dcacheCap = 1024

type dcacheKey struct {
	dir  uint32
	name string
}

type dcacheEntry struct {
	key dcacheKey
	ino uint32
}

type dcache struct {
	m   map[dcacheKey]*list.Element
	lru *list.List // front = most recently used
}

func newDcache() *dcache {
	return &dcache{m: make(map[dcacheKey]*list.Element), lru: list.New()}
}

// get returns the cached child inode for (dir, name), refreshing its LRU
// position on a hit.
func (dc *dcache) get(dir uint32, name string) (uint32, bool) {
	if dc == nil {
		return 0, false
	}
	el, ok := dc.m[dcacheKey{dir, name}]
	if !ok {
		return 0, false
	}
	dc.lru.MoveToFront(el)
	return el.Value.(*dcacheEntry).ino, true
}

// put records (dir, name) → ino, evicting the least recently used entry
// when the cache is full.
func (dc *dcache) put(dir uint32, name string, ino uint32) {
	if dc == nil {
		return
	}
	key := dcacheKey{dir, name}
	if el, ok := dc.m[key]; ok {
		el.Value.(*dcacheEntry).ino = ino
		dc.lru.MoveToFront(el)
		return
	}
	if dc.lru.Len() >= dcacheCap {
		back := dc.lru.Back()
		delete(dc.m, back.Value.(*dcacheEntry).key)
		dc.lru.Remove(back)
	}
	dc.m[key] = dc.lru.PushFront(&dcacheEntry{key: key, ino: ino})
}

// invalidate removes the entry for (dir, name), if cached.
func (dc *dcache) invalidate(dir uint32, name string) {
	if dc == nil {
		return
	}
	key := dcacheKey{dir, name}
	if el, ok := dc.m[key]; ok {
		delete(dc.m, key)
		dc.lru.Remove(el)
	}
}

// Len reports the number of live entries (tests and stats).
func (dc *dcache) Len() int {
	if dc == nil {
		return 0
	}
	return dc.lru.Len()
}
