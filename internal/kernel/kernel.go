// Package kernel implements the simulated operating-system kernel runtime:
// the virtual-memory layout, the kernel heap, locks, the intrinsic
// interface to the kvm, and the Go-side wrappers through which the file
// system invokes interpreted kernel procedures.
//
// The kernel has two execution modes. In the default (slow) mode every
// bulk data operation — block copies, checksums, fills — executes
// instruction by instruction in the kvm, which is what makes fault
// injection meaningful. In FastPath mode the same operations run as Go
// copies through the MMU (so protection semantics are identical) and
// charge an equivalent instruction count; performance runs use this mode
// since they inject no faults.
package kernel

import (
	"errors"
	"fmt"
	"sort"

	"rio/internal/kvm"
	"rio/internal/mem"
	"rio/internal/mmu"
)

// CrashKind classifies how the kernel died.
type CrashKind int

const (
	// CrashTrap: unhandled MMU trap on an illegal address.
	CrashTrap CrashKind = iota
	// CrashProtection: Rio's protection mechanism trapped an illegal
	// store to the file cache and halted the system.
	CrashProtection
	// CrashPanic: a kernel consistency check failed.
	CrashPanic
	// CrashHang: the watchdog expired (runaway loop or deadlock).
	CrashHang
	// CrashIllegalInstr: the CPU fetched an undecodable instruction.
	CrashIllegalInstr
)

func (k CrashKind) String() string {
	switch k {
	case CrashTrap:
		return "trap (illegal address)"
	case CrashProtection:
		return "protection trap (Rio halt)"
	case CrashPanic:
		return "kernel panic (consistency check)"
	case CrashHang:
		return "hang (watchdog)"
	case CrashIllegalInstr:
		return "illegal instruction"
	default:
		return fmt.Sprintf("CrashKind(%d)", int(k))
	}
}

// Crash records the kernel's death.
type Crash struct {
	Kind   CrashKind
	Reason string
	PC     int
}

func (c *Crash) Error() string {
	return fmt.Sprintf("kernel crashed: %s: %s (pc=%d)", c.Kind, c.Reason, c.PC)
}

// ErrCrashed is returned by kernel operations attempted after a crash.
var ErrCrashed = errors.New("kernel: machine has crashed")

// Kernel is the simulated kernel runtime.
type Kernel struct {
	Mem   *mem.Memory
	MMU   *mmu.MMU
	VM    *kvm.VM
	Heap  *Allocator
	Locks *LockTable
	Text  *kvm.Text

	// FastPath makes bulk operations run as Go copies (with equivalent
	// instruction accounting) instead of interpreted kvm loops. Only
	// fault-free runs may enable it.
	FastPath bool

	// SyntheticSteps accumulates the instruction-equivalents charged by
	// fast-path operations, so CPU-time accounting is mode-independent.
	SyntheticSteps uint64

	crash      *Crash
	freeFrames []int
	frameClass []FrameClass
	nextDynVP  uint64
	nextLock   LockID
	scratch    uint64 // background scratch block (ballast procedures)
	tickSeq    uint64

	// Reusable bulk-op scratch space. The kernel models a single CPU, so
	// every bulk operation completes its copy before the next one starts
	// and one buffer (two for Memcmp's second operand) serves them all —
	// the steady-state read/write path stops allocating per block. The
	// zero buffer backs BZero and must never be written.
	bulkBuf  []byte
	bulkBuf2 []byte
	zeroBuf  []byte
}

// scratchBytes returns a reusable n-byte scratch slice (contents
// undefined). Valid until the next bulk operation.
func (k *Kernel) scratchBytes(n int) []byte {
	if cap(k.bulkBuf) < n {
		k.bulkBuf = make([]byte, n)
	}
	return k.bulkBuf[:n]
}

// scratchBytes2 is a second, independent scratch slice (Memcmp).
func (k *Kernel) scratchBytes2(n int) []byte {
	if cap(k.bulkBuf2) < n {
		k.bulkBuf2 = make([]byte, n)
	}
	return k.bulkBuf2[:n]
}

// zeroBytes returns n zero bytes. Callers must treat the slice as
// read-only; it is shared across all BZero calls.
func (k *Kernel) zeroBytes(n int) []byte {
	if cap(k.zeroBuf) < n {
		k.zeroBuf = make([]byte, n)
	}
	return k.zeroBuf[:n]
}

// MinMemory is the smallest memory a kernel can boot in: the fixed layout
// plus a few pool frames.
const MinMemory = (reservedFrames + 8) * mem.PageSize

// New boots a kernel over m. The text is usually BuildText() or a
// fault-injected clone of it. Pool frame contents are left untouched, so a
// warm reboot can still find pre-crash file data in them (callers dump
// memory before booting anyway).
func New(m *mem.Memory, u *mmu.MMU, text *kvm.Text) *Kernel {
	if m.Size() < MinMemory {
		panic(fmt.Sprintf("kernel: memory %d below minimum %d", m.Size(), MinMemory))
	}
	k := &Kernel{
		Mem:   m,
		MMU:   u,
		Text:  text,
		Locks: NewLockTable(),

		nextDynVP: dynFirstVPage,
		nextLock:  LockDynBase,
	}

	// Map the fixed regions: sparse virtual pages onto compact low
	// frames.
	k.frameClass = make([]FrameClass, m.NumFrames())
	mapRange := func(vfirst uint64, ffirst, pages int, class FrameClass) {
		for i := 0; i < pages; i++ {
			u.Map(vfirst+uint64(i), ffirst+i, true)
			k.frameClass[ffirst+i] = class
		}
	}
	mapRange(stackFirstVPage, stackFirstFrame, StackPages, FrameStack)
	mapRange(heapFirstVPage, heapFirstFrame, HeapPages, FrameHeap)
	mapRange(stagingFirstVPage, stagingFirstFrame, StagingPages, FrameStaging)

	// Remaining frames form the page pool.
	for f := reservedFrames; f < m.NumFrames(); f++ {
		k.freeFrames = append(k.freeFrames, f)
	}

	k.Heap = NewAllocator(u, HeapBase, HeapSize)
	k.VM = kvm.New(text, u)
	k.VM.SetStack(StackTop, StackLimit)
	k.VM.Intr = k
	k.initScratch()
	return k
}

// Crashed returns the crash record, or nil while the kernel is alive.
func (k *Kernel) Crashed() *Crash { return k.crash }

// Panic crashes the kernel with a consistency failure. It is idempotent:
// the first crash wins.
func (k *Kernel) Panic(reason string) *Crash {
	if k.crash == nil {
		k.crash = &Crash{Kind: CrashPanic, Reason: reason, PC: k.VM.PC()}
	}
	return k.crash
}

// crashFromException records the crash corresponding to a kvm exception.
func (k *Kernel) crashFromException(exc *kvm.Exception) *Crash {
	if k.crash != nil {
		return k.crash
	}
	c := &Crash{Reason: exc.Error(), PC: exc.PC}
	switch exc.Kind {
	case kvm.ExcTrap:
		if exc.Trap != nil && exc.Trap.Kind == mmu.TrapProtection {
			c.Kind = CrashProtection
		} else {
			c.Kind = CrashTrap
		}
	case kvm.ExcIllegalInstr:
		c.Kind = CrashIllegalInstr
	case kvm.ExcAssert, kvm.ExcStackOverflow:
		c.Kind = CrashPanic
	case kvm.ExcBudget:
		c.Kind = CrashHang
	case kvm.ExcIntrinsic:
		if exc.Reason == reasonDeadlock {
			c.Kind = CrashHang
		} else {
			c.Kind = CrashPanic
		}
	}
	k.crash = c
	return c
}

// Exec runs a kernel procedure, converting exceptions into a crash.
func (k *Kernel) Exec(proc string, args ...uint64) error {
	if k.crash != nil {
		return ErrCrashed
	}
	if exc := k.VM.Exec(proc, args...); exc != nil {
		return k.crashFromException(exc)
	}
	return nil
}

const reasonDeadlock = "deadlock"

// Intrinsic implements kvm.Intrinsics.
func (k *Kernel) Intrinsic(v *kvm.VM, num int32) *kvm.Exception {
	switch num {
	case IntrMalloc:
		addr, err := k.Heap.Malloc(int(v.Reg[1]))
		if err != nil {
			return &kvm.Exception{Kind: kvm.ExcIntrinsic, PC: v.PC(), Reason: err.Error()}
		}
		v.Reg[0] = addr
	case IntrFree:
		if err := k.Heap.Free(v.Reg[1]); err != nil {
			return &kvm.Exception{Kind: kvm.ExcIntrinsic, PC: v.PC(), Reason: err.Error()}
		}
	case IntrLock:
		if err := k.Locks.Acquire(LockID(v.Reg[1])); err != nil {
			reason := err.Error()
			if _, ok := err.(*ErrDeadlock); ok {
				reason = reasonDeadlock
			}
			return &kvm.Exception{Kind: kvm.ExcIntrinsic, PC: v.PC(), Reason: reason}
		}
	case IntrUnlock:
		if err := k.Locks.Release(LockID(v.Reg[1])); err != nil {
			return &kvm.Exception{Kind: kvm.ExcIntrinsic, PC: v.PC(), Reason: err.Error()}
		}
	default:
		return &kvm.Exception{Kind: kvm.ExcIllegalInstr, PC: v.PC(),
			Reason: fmt.Sprintf("unknown intrinsic %d", num)}
	}
	return nil
}

// --- frame pool ---

// AllocFrame takes a frame from the pool for the given use. It returns -1
// if the pool is empty.
func (k *Kernel) AllocFrame(class FrameClass) int {
	if len(k.freeFrames) == 0 {
		return -1
	}
	f := k.freeFrames[len(k.freeFrames)-1]
	k.freeFrames = k.freeFrames[:len(k.freeFrames)-1]
	k.frameClass[f] = class
	return f
}

// FreeFrame returns a frame to the pool, clearing its cache flags and any
// write protection left on it.
func (k *Kernel) FreeFrame(f int) {
	k.frameClass[f] = FrameFree
	k.Mem.Frame(f).FileCache = false
	k.Mem.Frame(f).Registry = false
	if k.Mem.Frame(f).WriteProtected {
		// The frame is leaving the cache: its write window closes by
		// ceasing to be cache memory, not by re-protection.
		//riolint:protpair freed frame returns to the pool unprotected by design
		k.MMU.SetFrameProtection(f, false)
	}
	k.freeFrames = append(k.freeFrames, f)
}

// FreeFrameCount returns the number of pool frames available.
func (k *Kernel) FreeFrameCount() int { return len(k.freeFrames) }

// FramesOf returns the frames currently assigned to class, in frame
// order (fault targeting and tests — callers index into this with a
// seeded PRNG, so the order must not leak map iteration randomness).
func (k *Kernel) FramesOf(class FrameClass) []int {
	var out []int
	for f, c := range k.frameClass {
		if c == class {
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}

// MapDyn maps frame at the next dynamic virtual page and returns the
// virtual address (metadata buffers).
func (k *Kernel) MapDyn(frame int, writable bool) uint64 {
	vp := k.nextDynVP
	k.nextDynVP++
	k.MMU.Map(vp, frame, writable)
	return vp * mem.PageSize
}

// NewLockID hands out a fresh per-buffer lock id.
func (k *Kernel) NewLockID() LockID {
	id := k.nextLock
	k.nextLock++
	return id
}

// Steps returns total retired instructions, including fast-path
// equivalents.
func (k *Kernel) Steps() uint64 { return k.VM.Steps + k.SyntheticSteps }

// stepsForCopy is the instruction-equivalent of copying n bytes with the
// interpreted bcopy (word loop + tail), used by fast-path accounting.
func stepsForCopy(n int) uint64 {
	return 14 + 7*uint64(n/8) + 7*uint64(n%8)
}

// chargePatchChecks mirrors the per-store software-check count the
// interpreted path would incur under code patching, so fast-path perf runs
// price the ablation identically.
func (k *Kernel) chargePatchChecks(n int) {
	if k.MMU.CodePatching {
		k.MMU.Stats.ProtChecks += uint64(n/8) + uint64(n%8)
	}
}

// --- staging area ---

// StagingAddr returns the staging region's base virtual address; offset
// selects a byte position within it.
func (k *Kernel) StagingAddr(offset int) uint64 {
	if offset < 0 || offset >= StagingSize {
		panic("kernel: staging offset out of range")
	}
	return StagingBase + uint64(offset)
}

// StageIn copies user data into the staging region (copyin) and returns
// its kernel virtual address. The copy itself is trusted simulator code,
// but its CPU cost — one more pass over every byte a write moves — is
// charged like any kernel copy, and under code patching its stores are
// checked too.
func (k *Kernel) StageIn(data []byte) uint64 {
	if len(data) > StagingSize {
		panic("kernel: staging overflow")
	}
	k.SyntheticSteps += stepsForCopy(len(data))
	k.chargePatchChecks(len(data))
	k.Mem.WriteAt(StagingPhysBase, data)
	return StagingBase
}

// StageOut copies n bytes out of the staging region (copyout), charged
// like StageIn.
func (k *Kernel) StageOut(n int) []byte {
	buf := make([]byte, n)
	k.StageOutInto(buf)
	return buf
}

// StageOutInto is StageOut into a caller-supplied buffer, so a hot read
// path can drain the staging area without allocating.
func (k *Kernel) StageOutInto(buf []byte) {
	if len(buf) > StagingSize {
		panic("kernel: staging overflow")
	}
	k.SyntheticSteps += stepsForCopy(len(buf))
	k.chargePatchChecks(len(buf))
	k.Mem.ReadAt(StagingPhysBase, buf)
}

// --- bulk operations ---

// BCopy copies n bytes from src to dst (kernel virtual or KSEG addresses).
func (k *Kernel) BCopy(dst, src uint64, n int) error {
	if k.crash != nil {
		return ErrCrashed
	}
	if k.FastPath {
		k.SyntheticSteps += stepsForCopy(n)
		k.chargePatchChecks(n)
		buf := k.scratchBytes(n)
		if trap := k.MMU.ReadBytes(src, buf); trap != nil {
			return k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
		if trap := k.MMU.WriteBytes(dst, buf); trap != nil {
			return k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
		return nil
	}
	return k.Exec("bcopy", dst, src, uint64(n))
}

// BZero zeroes n bytes at dst.
func (k *Kernel) BZero(dst uint64, n int) error {
	if k.crash != nil {
		return ErrCrashed
	}
	if k.FastPath {
		k.SyntheticSteps += stepsForCopy(n)
		k.chargePatchChecks(n)
		if trap := k.MMU.WriteBytes(dst, k.zeroBytes(n)); trap != nil {
			return k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
		return nil
	}
	return k.Exec("bzero", dst, uint64(n))
}

// Cksum computes the kernel's rolling checksum of [addr, addr+n). The Go
// fast path reproduces the interpreted result bit for bit.
func (k *Kernel) Cksum(addr uint64, n int) (uint64, error) {
	if k.crash != nil {
		return 0, ErrCrashed
	}
	if k.FastPath {
		k.SyntheticSteps += 14 + 9*uint64(n)
		return k.cksumGo(addr, n)
	}
	if err := k.Exec("cksum", addr, uint64(n)); err != nil {
		return 0, err
	}
	return k.VM.Reg[0], nil
}

// cksumGo hashes [addr, addr+n) through the Go fast path. A range inside
// one page — every block checksum, since buffers are frame-aligned — is
// hashed in place through an MMU view; anything else stages through
// scratch. Accounting is identical either way.
func (k *Kernel) cksumGo(addr uint64, n int) (uint64, error) {
	view, trap := k.MMU.ViewBytes(addr, n)
	if trap == nil && view != nil {
		return CksumBytes(view), nil
	}
	if trap == nil {
		buf := k.scratchBytes(n)
		trap = k.MMU.ReadBytes(addr, buf)
		if trap == nil {
			return CksumBytes(buf), nil
		}
	}
	return 0, k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
}

// CksumTrusted computes the kernel checksum through the Go path regardless
// of execution mode. The checksum machinery is measurement apparatus (it
// detects corruption); like the paper's instrumented checksummer it is not
// itself a fault-injection target, so crash campaigns use this to keep runs
// fast while bulk copies still execute in the kvm.
func (k *Kernel) CksumTrusted(addr uint64, n int) (uint64, error) {
	if k.crash != nil {
		return 0, ErrCrashed
	}
	k.SyntheticSteps += 14 + 9*uint64(n)
	return k.cksumGo(addr, n)
}

// Powers of the checksum base, 31^1 .. 31^8 mod 2^64, for the unrolled
// fast path below.
const (
	ckP1 = 31
	ckP2 = ckP1 * 31
	ckP3 = ckP2 * 31
	ckP4 = ckP3 * 31
	ckP5 = ckP4 * 31
	ckP6 = ckP5 * 31
	ckP7 = ckP6 * 31
	ckP8 = ckP7 * 31
)

// Lane-combining powers for the 32-byte fold: 31^16, 31^24, 31^32 mod
// 2^64. These exceed an untyped constant's range, so they are computed
// with wrapping uint64 arithmetic (which is exactly the arithmetic the
// hash is defined in).
var ckP16, ckP24, ckP32 uint64

func init() {
	p8 := uint64(ckP8)
	ckP16 = p8 * p8
	ckP24 = ckP16 * p8
	ckP32 = ckP24 * p8
}

// CksumBytes computes the kernel checksum of b. The hash is the classic
// base-31 polynomial (h = h*31 + c per byte); because all arithmetic is
// mod 2^64, the serial recurrence folds into wider strides with
// precomputed powers of 31. The main loop takes 32 bytes per step: four
// independent 8-byte dot products (pure ILP, no chain) combined as
// h*31^32 + d0*31^24 + d1*31^16 + d2*31^8 + d3, so the loop-carried
// dependency is one multiply per 32 bytes instead of one per byte. The
// result is bit-identical to cksumBytesRef — registry checksums and
// golden crash transcripts depend on that, and TestCksumBytesUnrolled
// holds the two implementations together.
func CksumBytes(b []byte) uint64 {
	var h uint64
	for len(b) >= 32 {
		d0 := uint64(b[0])*ckP7 + uint64(b[1])*ckP6 +
			uint64(b[2])*ckP5 + uint64(b[3])*ckP4 +
			uint64(b[4])*ckP3 + uint64(b[5])*ckP2 +
			uint64(b[6])*ckP1 + uint64(b[7])
		d1 := uint64(b[8])*ckP7 + uint64(b[9])*ckP6 +
			uint64(b[10])*ckP5 + uint64(b[11])*ckP4 +
			uint64(b[12])*ckP3 + uint64(b[13])*ckP2 +
			uint64(b[14])*ckP1 + uint64(b[15])
		d2 := uint64(b[16])*ckP7 + uint64(b[17])*ckP6 +
			uint64(b[18])*ckP5 + uint64(b[19])*ckP4 +
			uint64(b[20])*ckP3 + uint64(b[21])*ckP2 +
			uint64(b[22])*ckP1 + uint64(b[23])
		d3 := uint64(b[24])*ckP7 + uint64(b[25])*ckP6 +
			uint64(b[26])*ckP5 + uint64(b[27])*ckP4 +
			uint64(b[28])*ckP3 + uint64(b[29])*ckP2 +
			uint64(b[30])*ckP1 + uint64(b[31])
		h = h*ckP32 + d0*ckP24 + d1*ckP16 + d2*ckP8 + d3
		b = b[32:]
	}
	for len(b) >= 8 {
		h = h*ckP8 +
			uint64(b[0])*ckP7 + uint64(b[1])*ckP6 +
			uint64(b[2])*ckP5 + uint64(b[3])*ckP4 +
			uint64(b[4])*ckP3 + uint64(b[5])*ckP2 +
			uint64(b[6])*ckP1 + uint64(b[7])
		b = b[8:]
	}
	for _, c := range b {
		h = h*31 + uint64(c)
	}
	return h
}

// cksumBytesRef is the reference byte-serial implementation, kept as the
// oracle the unrolled CksumBytes is tested against (and as the shape the
// interpreted kernel's cksum loop mirrors).
func cksumBytesRef(b []byte) uint64 {
	var h uint64
	for _, c := range b {
		h = h*31 + uint64(c)
	}
	return h
}

// ChargeCopy accounts one bulk copy of n bytes of simulated work without
// executing it: the DMA-style charge the zero-copy serving path pays
// when bytes move straight from a protected cache frame to the wire
// buffer with no staging hop.
func (k *Kernel) ChargeCopy(n int) { k.SyntheticSteps += stepsForCopy(n) }

// Fill writes the xorshift pattern seeded by seed over [dst, dst+n).
func (k *Kernel) Fill(dst uint64, n int, seed uint64) error {
	if k.crash != nil {
		return ErrCrashed
	}
	if k.FastPath {
		k.SyntheticSteps += 14 + 12*uint64(n)
		k.chargePatchChecks(n * 8) // byte loop: one store per byte
		if trap := k.MMU.WriteBytes(dst, FillBytes(n, seed)); trap != nil {
			return k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
		return nil
	}
	return k.Exec("fill", dst, uint64(n), seed)
}

// FillBytes is the reference implementation of the kernel fill pattern:
// an xorshift64 chain over the pattern state, seeded once. (The chain is
// generator state, not seed derivation — callers wanting independent
// patterns derive their seeds with sim.Mix.)
func FillBytes(n int, seed uint64) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		out[i] = byte(x)
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return out
}

// Memcmp compares two kernel ranges; it returns true when equal.
func (k *Kernel) Memcmp(a, b uint64, n int) (bool, error) {
	if k.crash != nil {
		return false, ErrCrashed
	}
	if k.FastPath {
		k.SyntheticSteps += 14 + 10*uint64(n)
		ba := k.scratchBytes(n)
		bb := k.scratchBytes2(n)
		if trap := k.MMU.ReadBytes(a, ba); trap != nil {
			return false, k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
		if trap := k.MMU.ReadBytes(b, bb); trap != nil {
			return false, k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
		for i := range ba {
			if ba[i] != bb[i] {
				return false, nil
			}
		}
		return true, nil
	}
	if err := k.Exec("memcmp", a, b, uint64(n)); err != nil {
		return false, err
	}
	return k.VM.Reg[0] == 0, nil
}

// WriteBlockArgs populates a buffer header in the kernel heap for
// write_block/read_block. Returns the header's virtual address; the caller
// frees it with FreeBufHdr.
func (k *Kernel) WriteBlockArgs(data uint64, size int, src uint64, dstOff int, lock LockID) (uint64, error) {
	hdr, err := k.Heap.Malloc(BufHdrSize)
	if err != nil {
		return 0, k.Panic(err.Error())
	}
	if hdr == 0 {
		return 0, k.Panic("kernel heap exhausted")
	}
	stores := []struct {
		off int
		val uint64
	}{
		{bufHdrOffMag, BufHdrMagic},
		{bufHdrOffData, data},
		{bufHdrOffSize, uint64(size)},
		{bufHdrOffSrc, src},
		{bufHdrOffDst, uint64(dstOff)},
		{bufHdrOffLock, uint64(lock)},
	}
	for _, s := range stores {
		if trap := k.MMU.Store64(hdr+uint64(s.off), s.val); trap != nil {
			return 0, k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
	}
	return hdr, nil
}

// NewBufHdr allocates a persistent buffer header for a cached buffer. The
// cache keeps one per buffer for the buffer's lifetime, which gives the
// kernel-heap fault models long-lived targets — flip a bit in a header's
// data pointer and the next sanctioned write goes somewhere wild, exactly
// the failure mode Rio's protection exists to catch.
func (k *Kernel) NewBufHdr(data uint64, lock LockID) (uint64, error) {
	return k.WriteBlockArgs(data, 0, 0, 0, lock)
}

// SetBufHdrOp fills in the per-operation fields of a persistent buffer
// header before WriteBlock/ReadBlock: transfer size, staging address, and
// byte offset within the buffer.
func (k *Kernel) SetBufHdrOp(hdr uint64, size int, src uint64, dstOff int) error {
	stores := []struct {
		off int
		val uint64
	}{
		{bufHdrOffSize, uint64(size)},
		{bufHdrOffSrc, src},
		{bufHdrOffDst, uint64(dstOff)},
	}
	for _, s := range stores {
		if trap := k.MMU.Store64(hdr+uint64(s.off), s.val); trap != nil {
			return k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
		}
	}
	return nil
}

// SetBufHdrData repoints a header's buffer-data address (shadow paging).
func (k *Kernel) SetBufHdrData(hdr, data uint64) error {
	if trap := k.MMU.Store64(hdr+bufHdrOffData, data); trap != nil {
		return k.crashFromException(&kvm.Exception{Kind: kvm.ExcTrap, Trap: trap})
	}
	return nil
}

// FreeBufHdr releases a buffer header created by WriteBlockArgs.
func (k *Kernel) FreeBufHdr(hdr uint64) {
	// Best effort: if the heap is corrupt this will surface on the next
	// malloc's consistency walk.
	_ = k.Heap.Free(hdr)
}

// WriteBlock runs the sanctioned file-cache write path: staged data ->
// buffer. In FastPath mode the same checks (magic, protection) happen in
// Go.
func (k *Kernel) WriteBlock(hdr uint64) error {
	if k.crash != nil {
		return ErrCrashed
	}
	if k.FastPath {
		return k.fastBlockOp(hdr, true)
	}
	return k.Exec("write_block", hdr)
}

// ReadBlock runs the sanctioned file-cache read path: buffer -> staging.
func (k *Kernel) ReadBlock(hdr uint64) error {
	if k.crash != nil {
		return ErrCrashed
	}
	if k.FastPath {
		return k.fastBlockOp(hdr, false)
	}
	return k.Exec("read_block", hdr)
}

func (k *Kernel) fastBlockOp(hdr uint64, write bool) error {
	ld := func(off int) uint64 {
		v, trap := k.MMU.Load64(hdr + uint64(off))
		if trap != nil {
			panic(trap) // header is in the heap; trusted in fast mode
		}
		return v
	}
	if ld(bufHdrOffMag) != BufHdrMagic {
		return k.Panic("buffer header magic mismatch")
	}
	data := ld(bufHdrOffData) + ld(bufHdrOffDst)
	size := int(ld(bufHdrOffSize))
	src := ld(bufHdrOffSrc)
	lock := LockID(ld(bufHdrOffLock))
	if err := k.Locks.Acquire(lock); err != nil {
		return k.Panic(err.Error())
	}
	var err error
	if write {
		err = k.BCopy(data, src, size)
	} else {
		err = k.BCopy(src, data, size)
	}
	if err != nil {
		return err
	}
	if lerr := k.Locks.Release(lock); lerr != nil {
		return k.Panic(lerr.Error())
	}
	return nil
}
