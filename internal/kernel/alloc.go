package kernel

import (
	"fmt"

	"rio/internal/mmu"
)

// The kernel heap allocator. Blocks live in simulated memory (the heap
// region), each preceded by a 16-byte header:
//
//	+0  magic-and-state word: allocMagic or freeMagic
//	+8  block size in bytes (payload, excluding header)
//
// Keeping headers in simulated memory matters: the "kernel heap" bit-flip
// fault model flips bits in this region, and the allocator's magic checks
// are then real consistency checks that panic the kernel the way Digital
// Unix's sanity checks did.
const (
	allocMagic = 0xA110C8ED_00000001
	freeMagic  = 0xF4EEB10C_00000002
	hdrSize    = 16
	allocAlign = 16
)

// Allocator is a first-fit free-list allocator over [base, base+size).
type Allocator struct {
	u    *mmu.MMU
	base uint64
	size int

	// PrematureFree, if non-nil, is consulted on every Malloc; when it
	// returns a positive delay d, the freshly allocated block is freed
	// again after d further Mallocs — the paper's "allocation management"
	// fault model (malloc starts a thread that sleeps, then prematurely
	// frees the new block).
	PrematureFree func() int

	pending []pendingFree

	// Allocs and Frees count operations (fault-model pacing hooks key off
	// these).
	Allocs uint64
	Frees  uint64
}

type pendingFree struct {
	addr  uint64
	after uint64 // free when Allocs reaches this count
}

// NewAllocator initialises a heap over the given region. The region must be
// mapped writable in u before any allocation.
func NewAllocator(u *mmu.MMU, base uint64, size int) *Allocator {
	a := &Allocator{u: u, base: base, size: size}
	a.setHdr(base, freeMagic, uint64(size-hdrSize))
	return a
}

func (a *Allocator) setHdr(addr uint64, magic, size uint64) {
	if trap := a.u.Store64(addr, magic); trap != nil {
		panic(fmt.Sprintf("kernel: heap header store trapped: %v", trap))
	}
	if trap := a.u.Store64(addr+8, size); trap != nil {
		panic(fmt.Sprintf("kernel: heap header store trapped: %v", trap))
	}
}

func (a *Allocator) hdr(addr uint64) (magic, size uint64, err error) {
	magic, trap := a.u.Load64(addr)
	if trap != nil {
		return 0, 0, trap
	}
	size, trap = a.u.Load64(addr + 8)
	if trap != nil {
		return 0, 0, trap
	}
	return magic, size, nil
}

func align(n uint64) uint64 {
	return (n + allocAlign - 1) &^ (allocAlign - 1)
}

// Malloc allocates size bytes and returns the payload's virtual address.
// It returns an error wrapping a consistency failure if the heap is
// corrupt, and (0, nil) if the heap is simply full.
func (a *Allocator) Malloc(size int) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("kernel: malloc of %d bytes", size)
	}
	a.Allocs++
	a.runPending()
	want := align(uint64(size))

	addr := a.base
	end := a.base + uint64(a.size)
	for addr < end {
		magic, bsize, err := a.hdr(addr)
		if err != nil {
			return 0, fmt.Errorf("kernel: heap walk trapped at %#x: %w", addr, err)
		}
		switch magic {
		case freeMagic:
			if bsize >= want {
				a.carve(addr, bsize, want)
				if pf := a.PrematureFree; pf != nil {
					if d := pf(); d > 0 {
						a.pending = append(a.pending,
							pendingFree{addr: addr + hdrSize, after: a.Allocs + uint64(d)})
					}
				}
				return addr + hdrSize, nil
			}
		case allocMagic:
			// occupied; skip
		default:
			return 0, fmt.Errorf("kernel: heap corruption at %#x (magic %#x)", addr, magic)
		}
		addr += hdrSize + bsize
	}
	return 0, nil // heap full
}

// carve splits a free block at addr (payload capacity bsize) to hold want
// bytes, leaving any worthwhile remainder free.
func (a *Allocator) carve(addr, bsize, want uint64) {
	const minSplit = hdrSize + allocAlign
	if bsize-want >= minSplit {
		rest := addr + hdrSize + want
		a.setHdr(rest, freeMagic, bsize-want-hdrSize)
		a.setHdr(addr, allocMagic, want)
	} else {
		a.setHdr(addr, allocMagic, bsize)
	}
}

// Free releases the block whose payload starts at addr. A bad pointer or a
// corrupted header is a kernel consistency failure.
func (a *Allocator) Free(addr uint64) error {
	a.Frees++
	h := addr - hdrSize
	magic, size, err := a.hdr(h)
	if err != nil {
		return fmt.Errorf("kernel: free(%#x) trapped: %w", addr, err)
	}
	if magic != allocMagic {
		return fmt.Errorf("kernel: free(%#x) of non-allocated block (magic %#x)", addr, magic)
	}
	a.setHdr(h, freeMagic, size)
	a.coalesce()
	return nil
}

// runPending executes premature frees whose delay has elapsed. Errors are
// swallowed: the faulty "thread" frees blindly. The freed payload is
// poisoned, as freed kernel memory is soon scribbled on by its next owner —
// this is what makes use-after-free crash (the original owner's magic
// checks fail) rather than silently linger.
func (a *Allocator) runPending() {
	kept := a.pending[:0]
	for _, p := range a.pending {
		if a.Allocs >= p.after {
			h := p.addr - hdrSize
			if magic, size, err := a.hdr(h); err == nil && magic == allocMagic {
				for off := uint64(0); off+8 <= size; off += 8 {
					if trap := a.u.Store64(p.addr+off, 0xdeadbeefdeadbeef); trap != nil {
						break
					}
				}
				a.setHdr(h, freeMagic, size)
			}
		} else {
			kept = append(kept, p)
		}
	}
	a.pending = kept
}

// AllocatedBlocks returns the payload ranges of live allocations; fault
// injection targets heap bit-flips at real kernel objects rather than at
// free space.
func (a *Allocator) AllocatedBlocks() [][2]uint64 {
	var out [][2]uint64
	addr := a.base
	end := a.base + uint64(a.size)
	for addr < end {
		magic, size, err := a.hdr(addr)
		if err != nil || (magic != freeMagic && magic != allocMagic) {
			return out
		}
		if magic == allocMagic {
			out = append(out, [2]uint64{addr + hdrSize, size})
		}
		addr += hdrSize + size
	}
	return out
}

// coalesce merges adjacent free blocks (single forward pass).
func (a *Allocator) coalesce() {
	addr := a.base
	end := a.base + uint64(a.size)
	for addr < end {
		magic, size, err := a.hdr(addr)
		if err != nil || (magic != freeMagic && magic != allocMagic) {
			return // corrupt; Malloc will report it
		}
		next := addr + hdrSize + size
		if magic == freeMagic && next < end {
			nm, ns, err := a.hdr(next)
			if err == nil && nm == freeMagic {
				a.setHdr(addr, freeMagic, size+hdrSize+ns)
				continue // try to merge further
			}
		}
		addr = next
	}
}

// CheckConsistency walks the heap and returns an error on any corruption —
// the allocator's contribution to the kernel's background sanity checks.
func (a *Allocator) CheckConsistency() error {
	addr := a.base
	end := a.base + uint64(a.size)
	for addr < end {
		magic, size, err := a.hdr(addr)
		if err != nil {
			return fmt.Errorf("kernel: heap walk trapped at %#x: %w", addr, err)
		}
		if magic != freeMagic && magic != allocMagic {
			return fmt.Errorf("kernel: heap corruption at %#x (magic %#x)", addr, magic)
		}
		next := addr + hdrSize + size
		if next <= addr || next > end {
			return fmt.Errorf("kernel: heap block at %#x has impossible size %d", addr, size)
		}
		addr = next
	}
	return nil
}

// FreeBytes returns the total free payload capacity.
func (a *Allocator) FreeBytes() int {
	total := 0
	addr := a.base
	end := a.base + uint64(a.size)
	for addr < end {
		magic, size, err := a.hdr(addr)
		if err != nil || (magic != freeMagic && magic != allocMagic) {
			return total
		}
		if magic == freeMagic {
			total += int(size)
		}
		addr += hdrSize + size
	}
	return total
}
