package crashtest

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"rio/internal/fault"
	"rio/internal/kernel"
)

// Cell aggregates one (system, fault) cell of Table 1.
//
// Counting fields are deterministic for a given campaign seed and config;
// Elapsed is host wall time and is excluded from that guarantee.
type Cell struct {
	Crashes   int // runs that crashed (counted toward RunsPerCell)
	Discarded int // runs that survived MaxOps (discarded, as in paper)
	Corrupted int // crashing runs with corrupted durable data
	// Checksum counts crashing runs where warm reboot's registry checksum
	// sweep flagged direct corruption of a file-cache buffer (Rio systems
	// only). It counts detections, not outcomes — the two detectors
	// overlap but differ, as in the paper: a flagged run need not end in
	// Corrupted (recovery can still restore good data), and a corrupted
	// run need not be flagged (indirect corruption bypasses checksums).
	Checksum   int
	Protection int // crashes where Rio protection trapped the store
	ByKind     map[kernel.CrashKind]int
	// Double-fault recovery columns (populated when Run.DiskFaults is
	// on; all zero otherwise).
	Interrupted int // recoveries a second crash interrupted (then restarted)
	Aborted     int // recoveries that returned an error (must stay zero)
	Quarantined int // dirty pages recovery could not restore, summed over runs
	Salvaged    int // orphaned pages preserved under /lost+found
	VolumeLost  int // runs whose volume fsck could not certify
	Errors      int // harness errors (should be zero)
	LastError   string
	// Attempts is how many runs were merged into this cell
	// (Crashes + Discarded + Errors).
	Attempts int
	// Elapsed sums the execution time of the merged runs. Under parallel
	// execution this is the cell's CPU cost, not campaign wall time.
	Elapsed time.Duration
}

// fold merges one run outcome into the cell. Outcomes must be folded in
// attempt order: the campaign's determinism guarantee rests on every
// worker count folding the same attempt prefix.
func (cell *Cell) fold(o runOutcome) {
	cell.Attempts++
	cell.Elapsed += o.elapsed
	if o.err != nil {
		cell.Errors++
		cell.LastError = o.err.Error()
		return
	}
	if !o.res.Crashed {
		cell.Discarded++
		return
	}
	cell.Crashes++
	cell.ByKind[o.res.CrashKind]++
	if o.res.Corrupted {
		cell.Corrupted++
	}
	if o.res.ChecksumDetected {
		cell.Checksum++
	}
	if o.res.ProtectionInvoked {
		cell.Protection++
	}
	if o.res.RecoveryInterrupted {
		cell.Interrupted++
	}
	if o.res.RecoveryAborted {
		cell.Aborted++
	}
	cell.Quarantined += o.res.Quarantined
	cell.Salvaged += o.res.Salvaged
	if o.res.VolumeLost {
		cell.VolumeLost++
	}
}

// Summary is campaign-level observability. Counting fields are
// deterministic for a given seed and config at any worker count; timing
// fields (WallTime, RunsPerSec) and SpeculativeRuns depend on the host
// and scheduling and are excluded from the determinism guarantee.
type Summary struct {
	Seed        uint64 `json:"seed"`
	RunsPerCell int    `json:"runs_per_cell"`
	Workers     int    `json:"workers"`
	Cells       int    `json:"cells"`
	Runs        int    `json:"runs"` // runs merged into cells
	Crashes     int    `json:"crashes"`
	Discarded   int    `json:"discarded"`
	Errors      int    `json:"errors"`
	Corrupted   int    `json:"corrupted"`
	// Double-fault recovery totals (zero unless Run.DiskFaults was on).
	Interrupted int `json:"recovery_interrupted,omitempty"`
	Aborted     int `json:"recovery_aborted,omitempty"`
	Quarantined int `json:"quarantined_pages,omitempty"`
	Salvaged    int `json:"salvaged_pages,omitempty"`
	VolumeLost  int `json:"volume_lost,omitempty"`
	// DiscardRate / ErrorRate are fractions of merged runs.
	DiscardRate float64       `json:"discard_rate"`
	ErrorRate   float64       `json:"error_rate"`
	WallTime    time.Duration `json:"wall_time_ns"`
	RunsPerSec  float64       `json:"runs_per_sec"`
	// SpeculativeRuns is parallel overshoot: runs that executed but were
	// discarded unmerged because their cell filled first. Zero when
	// Workers is 1.
	SpeculativeRuns int `json:"speculative_runs"`
}

// Report is a full campaign result.
type Report struct {
	Config  CampaignConfig
	Cells   map[System]map[fault.Type]*Cell
	Summary Summary
}

// Totals sums a system's column.
func (r *Report) Totals(sys System) (crashes, corrupted int) {
	for _, c := range r.Cells[sys] {
		crashes += c.Crashes
		corrupted += c.Corrupted
	}
	return
}

// ProtectionInvocations counts protection-trap crashes for a system.
func (r *Report) ProtectionInvocations(sys System) int {
	n := 0
	for _, c := range r.Cells[sys] {
		n += c.Protection
	}
	return n
}

// tableColWidth fits the widest entry, the totals-row "NN of NNN (NN.N%)".
const tableColWidth = 18

// Table renders the report in the layout of the paper's Table 1. The
// rendering is byte-identical for a given seed and config at any worker
// count.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %*s %*s %*s\n", "Fault Type",
		tableColWidth, "Disk-Based", tableColWidth, "Rio w/o Prot",
		tableColWidth, "Rio w/ Prot")
	for _, ft := range fault.AllTypes {
		fmt.Fprintf(&b, "%-22s", ft)
		for _, sys := range Systems {
			c := r.Cells[sys][ft]
			if c == nil || c.Corrupted == 0 {
				fmt.Fprintf(&b, " %*s", tableColWidth, "")
			} else {
				fmt.Fprintf(&b, " %*d", tableColWidth, c.Corrupted)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-22s", "Total")
	for _, sys := range Systems {
		crashes, corrupted := r.Totals(sys)
		pct := 0.0
		if crashes > 0 {
			pct = 100 * float64(corrupted) / float64(crashes)
		}
		fmt.Fprintf(&b, " %*s", tableColWidth,
			fmt.Sprintf("%d of %d (%.1f%%)", corrupted, crashes, pct))
	}
	b.WriteByte('\n')
	return b.String()
}

// RecoveryTable renders the double-fault campaign's recovery columns:
// per system, how many recoveries a second crash interrupted, how many
// aborted (must be zero — every run ends restored-or-quarantined), how
// many pages were quarantined or salvaged, and how many volumes were
// lost outright. Like Table, the rendering is byte-identical for a
// given seed and config at any worker count.
func (r *Report) RecoveryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s %12s\n", "System",
		"interrupted", "aborted", "quarantined", "salvaged", "volume-lost")
	for _, sys := range Systems {
		var in, ab, q, sv, vl int
		for _, c := range r.Cells[sys] {
			in += c.Interrupted
			ab += c.Aborted
			q += c.Quarantined
			sv += c.Salvaged
			vl += c.VolumeLost
		}
		fmt.Fprintf(&b, "%-12s %12d %12d %12d %12d %12d\n", sys, in, ab, q, sv, vl)
	}
	return b.String()
}

// CrashKindBreakdown summarises how systems died (the paper cites 74
// unique error messages; we report by manifestation class).
func (r *Report) CrashKindBreakdown(sys System) string {
	agg := make(map[kernel.CrashKind]int)
	for _, c := range r.Cells[sys] {
		for k, n := range c.ByKind {
			agg[k] += n
		}
	}
	kinds := make([]kernel.CrashKind, 0, len(agg))
	for k := range agg {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if agg[kinds[i]] != agg[kinds[j]] {
			return agg[kinds[i]] > agg[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-35s %d\n", k, agg[k])
	}
	return b.String()
}

// CellExport is one cell of the structured JSON export, self-describing
// (names, not enum ordinals) so downstream tooling survives reordering.
type CellExport struct {
	System     string `json:"system"`
	Fault      string `json:"fault"`
	Crashes    int    `json:"crashes"`
	Discarded  int    `json:"discarded"`
	Corrupted  int    `json:"corrupted"`
	Checksum   int    `json:"checksum_flagged"`
	Protection int    `json:"protection_trapped"`
	// Double-fault recovery columns, omitted when zero so baseline
	// exports are unchanged.
	Interrupted int            `json:"recovery_interrupted,omitempty"`
	Aborted     int            `json:"recovery_aborted,omitempty"`
	Quarantined int            `json:"quarantined_pages,omitempty"`
	Salvaged    int            `json:"salvaged_pages,omitempty"`
	VolumeLost  int            `json:"volume_lost,omitempty"`
	Errors      int            `json:"errors"`
	LastError   string         `json:"last_error,omitempty"`
	Attempts    int            `json:"attempts"`
	ElapsedMS   float64        `json:"elapsed_ms"`
	ByKind      map[string]int `json:"by_kind,omitempty"`
}

// ReportExport is the JSON form of a Report: the campaign summary, every
// cell in Table 1 order, and the rendered table.
type ReportExport struct {
	Summary Summary      `json:"summary"`
	Cells   []CellExport `json:"cells"`
	Table   string       `json:"table"`
}

// Export flattens the report into its JSON form, cells in Systems ×
// fault.AllTypes order.
func (r *Report) Export() ReportExport {
	out := ReportExport{Summary: r.Summary, Table: r.Table()}
	for _, sys := range Systems {
		for _, ft := range fault.AllTypes {
			c := r.Cells[sys][ft]
			if c == nil {
				continue
			}
			ce := CellExport{
				System:      sys.String(),
				Fault:       ft.String(),
				Crashes:     c.Crashes,
				Discarded:   c.Discarded,
				Corrupted:   c.Corrupted,
				Checksum:    c.Checksum,
				Protection:  c.Protection,
				Interrupted: c.Interrupted,
				Aborted:     c.Aborted,
				Quarantined: c.Quarantined,
				Salvaged:    c.Salvaged,
				VolumeLost:  c.VolumeLost,
				Errors:      c.Errors,
				LastError:   c.LastError,
				Attempts:    c.Attempts,
				ElapsedMS:   float64(c.Elapsed) / float64(time.Millisecond),
			}
			if len(c.ByKind) > 0 {
				ce.ByKind = make(map[string]int, len(c.ByKind))
				for k, n := range c.ByKind {
					ce.ByKind[k.String()] = n
				}
			}
			out.Cells = append(out.Cells, ce)
		}
	}
	return out
}

// JSON renders the full report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Export(), "", "  ")
}

// MTTFYears converts a corruption rate into the paper's §3.3 illustration:
// with one crash every two months, MTTF (years) = 2 months / p(corruption)
// expressed in years.
func MTTFYears(corrupted, crashes int) float64 {
	if corrupted == 0 {
		return -1 // effectively unbounded at this sample size
	}
	p := float64(corrupted) / float64(crashes)
	crashesPerYear := 6.0 // one every two months
	return 1 / (p * crashesPerYear)
}
